// Package dummyfill is a high-performance dummy fill insertion and sizing
// framework with coupling (overlay) and uniformity constraints — a
// from-scratch Go reproduction of Lin, Yu & Pan, "High Performance Dummy
// Fill Insertion with Coupling and Uniformity Constraints" (DAC 2015).
//
// The flow (Fig. 3 of the paper):
//
//	input fill regions → target density planning → candidate fill
//	generation (Alg. 1) → density re-planning → dummy fill sizing via
//	alternating-direction dual min-cost flow → output fills
//
// Quick start:
//
//	lay, coeffs, _ := dummyfill.GenerateBenchmark("s")
//	res, _ := dummyfill.Insert(lay, dummyfill.DefaultOptions())
//	report, _ := dummyfill.Score(lay, &res.Solution, coeffs, dummyfill.Measured{})
//	fmt.Println(report)
//
// The package re-exports the building blocks (geometry, density analysis,
// GDSII IO, DRC, scoring, baseline fillers) so downstream tools can
// compose their own flows.
package dummyfill

import (
	"context"
	"fmt"
	"io"
	"time"

	"dummyfill/internal/baseline"
	"dummyfill/internal/drc"
	"dummyfill/internal/fill"
	"dummyfill/internal/fillcache"
	"dummyfill/internal/gdsii"
	"dummyfill/internal/geom"
	"dummyfill/internal/layio"
	"dummyfill/internal/layout"
	"dummyfill/internal/oasis"
	"dummyfill/internal/score"
	"dummyfill/internal/synth"
)

// Core type aliases: the public API of the framework.
type (
	// Layout is a multi-layer design with wires and feasible fill regions.
	Layout = layout.Layout
	// Layer holds one routing layer's wires and fill regions.
	Layer = layout.Layer
	// Rules is the fill DRC rule set (min width/spacing/area, max dim).
	Rules = layout.Rules
	// Fill is one inserted dummy fill shape.
	Fill = layout.Fill
	// Solution is a complete fill assignment.
	Solution = layout.Solution
	// Rect is an integer rectangle in database units.
	Rect = geom.Rect
	// Point is an integer point in database units.
	Point = geom.Point
	// Options tunes the fill engine (λ, γ, η, solver, parallelism,
	// time budget, fault injection).
	Options = fill.Options
	// Result is the engine output (solution + planning diagnostics +
	// health).
	Result = fill.Result
	// Health reports how gracefully a run completed: solver fallback
	// counts, degraded/skipped windows, recovered panics, budget use.
	Health = fill.Health
	// Coefficients are the α/β contest scoring parameters.
	Coefficients = score.Coefficients
	// Report is a fully scored solution (one Table 3 row).
	Report = score.Report
	// Violation is a DRC error found in a solution.
	Violation = drc.Violation
	// FillSink consumes sized fills window by window during a streaming
	// run (InsertStream): EmitWindow is called in canonical window order.
	FillSink = fill.Sink
	// FillSinkFunc adapts a function to a FillSink.
	FillSinkFunc = fill.SinkFunc
	// FillCache is a persistent content-addressed cache of per-window
	// fill results, enabling incremental (ECO) re-fill: assign one to
	// Options.Cache and unchanged windows replay their previous fills
	// byte-identically instead of being re-solved. See OpenFillCache.
	FillCache = fillcache.Cache
	// FillCacheStats is a point-in-time snapshot of a FillCache's
	// hit/miss/corruption counters.
	FillCacheStats = fillcache.Stats
	// SiteGrid is a standard-cell placement lattice (rows × sites); a
	// Layout carrying one can run the site fill mode.
	SiteGrid = layout.SiteGrid
	// FillLib is a discrete filler-cell master library: the legal
	// site-mode fill widths and their master naming.
	FillLib = layout.FillLib
)

// Fill mode names for Options.Mode: the paper's continuous-rect mode and
// the site-grid filler-cell placement mode.
const (
	ModeRect = fill.ModeRect
	ModeSite = fill.ModeSite
)

// DefaultFillLib returns the power-of-two filler master library
// (FILL_X1 … FILL_X32) used when Options.SiteLib is nil.
func DefaultFillLib() *FillLib { return layout.DefaultFillLib() }

// R constructs a rectangle, normalizing swapped bounds.
func R(xl, yl, xh, yh int64) Rect { return geom.R(xl, yl, xh, yh) }

// DefaultOptions returns the engine parameters used in the paper's
// experiments where stated (γ = 1, η = 1).
func DefaultOptions() Options { return fill.DefaultOptions() }

// OpenFillCache opens (creating it if needed) a persistent fill cache
// rooted at dir. Assign the result to Options.Cache: windows whose
// content, rules and plan targets match a cached entry skip candidate
// generation and sizing and replay their stored fills byte-identically;
// everything else is recomputed and written back. The cache is safe for
// concurrent use and survives corruption (damaged entries are detected
// and recomputed). See DESIGN.md §13.
func OpenFillCache(dir string) (*FillCache, error) { return fillcache.Open(dir) }

// Insert runs the full fill insertion flow on a layout.
func Insert(lay *Layout, opts Options) (*Result, error) {
	return InsertContext(context.Background(), lay, opts)
}

// InsertContext is Insert under a context. Cancellation is a hard abort
// with no partial Result; for a graceful time limit that still returns a
// complete, DRC-clean solution, set Options.Budget instead and inspect
// Result.Health.
func InsertContext(ctx context.Context, lay *Layout, opts Options) (*Result, error) {
	e, err := fill.New(lay, opts)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}

// InsertStream runs the flow like InsertContext but streams each window's
// sized fills to sink in canonical window order instead of assembling
// them into Result.Solution (left empty). The emitted fill set is
// identical to InsertContext's for any Options.Workers value; only the
// grouping (per window, window-ordered, not globally sorted) differs.
// Combined with a streaming writer this bounds peak memory: no run stage
// holds every candidate or every sized fill at once.
func InsertStream(ctx context.Context, lay *Layout, opts Options, sink FillSink) (*Result, error) {
	e, err := fill.New(lay, opts)
	if err != nil {
		return nil, err
	}
	return e.RunStream(ctx, sink)
}

// InsertStreamTo runs the flow and writes the result directly to w in
// the named format (see Formats), each window's fills emitted as soon as
// the window clears the reorder buffer. Formats that carry wires (GDSII)
// get the layout's wires first (datatype 0), then fills (datatype 1);
// fills-only formats (OASIS, text solutions) get just the fills. The
// output is deterministic for any Options.Workers value: fills appear in
// canonical window order. Combined with a streaming reader this bounds
// peak memory end to end: no stage holds every candidate or sized fill.
func InsertStreamTo(ctx context.Context, w io.Writer, lay *Layout, opts Options, format string) (*Result, error) {
	f, err := layio.Lookup(format)
	if err != nil {
		return nil, err
	}
	e, err := fill.New(lay, opts)
	if err != nil {
		return nil, err
	}
	sw, err := f.NewShapeWriter(w, layio.Header{Name: lay.Name, Struct: "TOP", Die: lay.Die, Sites: lay.Sites})
	if err != nil {
		return nil, err
	}
	if f.EmitsWires {
		n := 0
		for li, layer := range lay.Layers {
			for _, wr := range layer.Wires {
				// Re-check cancellation periodically: the wire preamble of a
				// large design is written before the engine (which polls ctx
				// itself) ever runs.
				if n%1024 == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				n++
				if err := sw.Write(layio.Shape{Layer: li, Datatype: layio.DatatypeWire, Rect: wr}); err != nil {
					return nil, err
				}
			}
		}
	}
	res, err := e.RunStream(ctx, FillSinkFunc(func(_ int, fills []Fill) error {
		for _, f := range fills {
			if err := sw.Write(layio.Shape{Layer: f.Layer, Datatype: layio.DatatypeFill, Rect: f.Rect}); err != nil {
				return err
			}
		}
		return nil
	}))
	if err != nil {
		return nil, err
	}
	if err := sw.Close(); err != nil {
		return nil, err
	}
	return res, nil
}

// InsertStreamGDS is InsertStreamTo in GDSII: wires plus fills, like
// WriteGDS but window-ordered.
func InsertStreamGDS(ctx context.Context, w io.Writer, lay *Layout, opts Options) (*Result, error) {
	return InsertStreamTo(ctx, w, lay, opts, gdsii.FormatName)
}

// InsertStreamOASIS is InsertStreamTo in OASIS: fills only, like
// WriteOASIS but with modal compression over the natural per-window size
// grouping instead of the global size sort, trading a slightly larger
// file for bounded memory.
func InsertStreamOASIS(ctx context.Context, w io.Writer, lay *Layout, opts Options) (*Result, error) {
	return InsertStreamTo(ctx, w, lay, opts, oasis.FormatName)
}

// CheckDRC verifies a solution against the layout's fill rules, including
// containment in the declared fill regions.
func CheckDRC(lay *Layout, sol *Solution) []Violation {
	return drc.Check(lay, sol, true)
}

// CheckSiteDRC verifies a site-mode solution against the layout's
// placement lattice: site alignment, master-library widths, and the
// padding clearance (in sites) to same-row wires. Run it alongside
// CheckDRC, which covers the geometric overlap rules.
func CheckSiteDRC(lay *Layout, sol *Solution, lib *FillLib, pad int) []Violation {
	return drc.CheckSites(lay, sol, lib, pad)
}

// Measured carries the environment-dependent raw measurements of a run.
// Zero values are allowed (the corresponding scores then read as perfect;
// use RunMethod to measure for real).
type Measured struct {
	FileSizeBytes int64
	Runtime       time.Duration
	MemoryMiB     float64
}

// Score measures the geometric metrics of a solution and combines them
// with the supplied environment measurements into a contest-score report.
func Score(lay *Layout, sol *Solution, c Coefficients, m Measured) (*Report, error) {
	raw, err := score.Measure(lay, sol, m.FileSizeBytes, m.Runtime.Seconds(), m.MemoryMiB)
	if err != nil {
		return nil, err
	}
	return score.Score(raw, c), nil
}

// WriteGDS emits the layout plus solution as a GDSII stream (wires
// datatype 0, fills datatype 1).
func WriteGDS(w io.Writer, lay *Layout, sol *Solution) error {
	return gdsii.FromLayout(lay, sol).Write(w)
}

// GDSSize returns the byte size of the solution GDSII (fills only) — the
// contest's file-size metric — without materializing the file.
func GDSSize(lay *Layout, sol *Solution) (int64, error) {
	return gdsii.FromSolution(lay.Name, sol).EncodedSize()
}

// OASISSize returns the byte size of the solution encoded as OASIS with
// modal-variable compression — the alternative interchange format the
// paper names alongside GDSII. Comparing it with GDSSize shows how much
// of the file-size cost is the shape count itself versus the encoding.
func OASISSize(lay *Layout, sol *Solution) (int64, error) {
	return oasis.FromSolution(lay.Name, sol).EncodedSize()
}

// WriteOASIS emits the solution as an OASIS stream.
func WriteOASIS(w io.Writer, lay *Layout, sol *Solution) error {
	return oasis.FromSolution(lay.Name, sol).Write(w)
}

// ReadGDSShapes parses a GDSII stream and returns per-layer wire and fill
// rectangles (datatype 0 = wires, 1 = fills; polygons are decomposed).
// The stream is consumed incrementally — no intermediate library is
// materialized.
func ReadGDSShapes(r io.Reader) (wires, fills map[int][]Rect, err error) {
	sr := gdsii.NewShapeReader(r, gdsii.DefaultLimits())
	wires, fills = map[int][]Rect{}, map[int][]Rect{}
	for {
		s, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if s.Datatype == gdsii.DatatypeFill {
			fills[s.Layer] = append(fills[s.Layer], s.Rect)
		} else {
			wires[s.Layer] = append(wires[s.Layer], s.Rect)
		}
	}
	return wires, fills, nil
}

// GenerateBenchmark builds one of the synthetic contest-style designs
// ("s", "b" or "m") together with its calibrated score coefficients.
func GenerateBenchmark(name string) (*Layout, Coefficients, error) {
	sp, err := synth.ByName(name)
	if err != nil {
		return nil, Coefficients{}, err
	}
	lay, err := synth.Generate(sp)
	if err != nil {
		return nil, Coefficients{}, err
	}
	c, err := synth.Coefficients(sp, lay)
	if err != nil {
		return nil, Coefficients{}, err
	}
	return lay, c, nil
}

// Calibrate computes a contest-style α/β score table for an arbitrary
// layout (the synthetic designs come pre-calibrated via
// GenerateBenchmark). Runtime/memory βs are the caller's budget.
func Calibrate(lay *Layout, betaRuntimeSec, betaMemoryMiB float64) (Coefficients, error) {
	return synth.Calibrate(lay, betaRuntimeSec, betaMemoryMiB)
}

// Method is one fill approach under comparison.
type Method struct {
	Name string
	Run  func(*Layout) (*Solution, error)
	// RunContext, when set, is the cancellable, health-reporting variant
	// used by RunMethodContext. Ours sets it; the baselines solve without
	// a solver chain and report no health.
	RunContext func(ctx context.Context, lay *Layout) (*Solution, *Health, error)
}

// Ours returns the paper's method as a Method.
func Ours(opts Options) Method {
	runCtx := func(ctx context.Context, lay *Layout) (*Solution, *Health, error) {
		res, err := InsertContext(ctx, lay, opts)
		if err != nil {
			return nil, nil, err
		}
		return &res.Solution, &res.Health, nil
	}
	return Method{
		Name: "ours",
		Run: func(lay *Layout) (*Solution, error) {
			sol, _, err := runCtx(context.Background(), lay)
			return sol, err
		},
		RunContext: runCtx,
	}
}

// Baselines returns the three traditional methods (the contest top-3
// stand-ins): tile-based LP, Monte-Carlo and greedy.
func Baselines() []Method {
	fillers := []baseline.Filler{
		baseline.TileLP{},
		baseline.MonteCarlo{Seed: 42},
		baseline.CouplingConstrained{},
		baseline.Greedy{},
	}
	out := make([]Method, 0, len(fillers))
	for _, f := range fillers {
		f := f
		out = append(out, Method{Name: f.Name(), Run: f.Fill})
	}
	return out
}

// AllMethods is Ours followed by Baselines.
func AllMethods(opts Options) []Method {
	return append([]Method{Ours(opts)}, Baselines()...)
}

// RunMethod executes a method on a layout, measuring wall-clock runtime,
// an approximate peak-live-heap figure and the solution GDSII size, and
// returns the scored report alongside the solution.
func RunMethod(m Method, lay *Layout, c Coefficients) (*Report, *Solution, error) {
	rep, sol, _, err := RunMethodContext(context.Background(), m, lay, c)
	return rep, sol, err
}

// RunMethodContext is RunMethod under a context, additionally returning
// the engine's health report when the method provides one (nil for the
// baselines, which have no degradation modes).
func RunMethodContext(ctx context.Context, m Method, lay *Layout, c Coefficients) (*Report, *Solution, *Health, error) {
	var sol *Solution
	var health *Health
	runtimeSec, memMiB, err := measure(func() error {
		var err error
		if m.RunContext != nil {
			sol, health, err = m.RunContext(ctx, lay)
		} else {
			if err = ctx.Err(); err == nil {
				sol, err = m.Run(lay)
			}
		}
		return err
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dummyfill: method %s: %w", m.Name, err)
	}
	sz, err := GDSSize(lay, sol)
	if err != nil {
		return nil, nil, nil, err
	}
	raw, err := score.Measure(lay, sol, sz, runtimeSec, memMiB)
	if err != nil {
		return nil, nil, nil, err
	}
	return score.Score(raw, c), sol, health, nil
}
