// Command fillgen runs the dummy fill insertion flow on a synthetic
// design and writes the solution (fills only, datatype 1):
//
//	fillgen -design s -o s_fill.gds
//	fillgen -design s -method tile-lp -lambda 1.3
//	fillgen -design m -stream              # bounded-memory streaming emit
//	fillgen -in chip.oas -format auto      # ingest any registered format
//	fillgen -design b -oformat oasis       # emit the solution as OASIS
//
// It prints the scored report for the run (except with -stream, which
// never assembles the solution in memory and so reports only counts and
// health).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	dummyfill "dummyfill"
	"dummyfill/cmd/internal/ingestfmt"
	"dummyfill/internal/deffmt"
	"dummyfill/internal/exp"
	"dummyfill/internal/gdsii"
	"dummyfill/internal/layio"
	"dummyfill/internal/oasis"
	"dummyfill/internal/textfmt"
)

func main() {
	design := flag.String("design", "s", "design name: s, b, m, row or tiny (ignored with -in)")
	in := flag.String("in", "", "input layout file; overrides -design")
	format := flag.String("format", "auto", "input layout format for -in: auto (sniff), "+strings.Join(dummyfill.Formats(), ", "))
	oformat := flag.String("oformat", "gds", "output solution format: "+strings.Join(dummyfill.Formats(), ", "))
	window := flag.Int64("window", 0, "window size for -in layouts without one (0 = die/16)")
	method := flag.String("method", "ours", "fill method: ours, tile-lp, montecarlo, greedy")
	out := flag.String("o", "", "output solution path (default <design>_fill.<ext>)")
	lambda := flag.Float64("lambda", 0, "candidate overfill factor λ (0 = default)")
	workers := flag.Int("workers", 0, "window-level parallelism (0 = all cores)")
	shards := flag.Int("shards", 0, "row-band shards for hierarchical planning and emission (0 = one per core); output is identical for every value")
	deadline := flag.Duration("deadline", 0, "soft time budget: past it, remaining windows emit unshrunk candidates instead of failing (0 = unlimited)")
	stream := flag.Bool("stream", false, "stream fills to the output as windows complete (method ours only; bounded memory, no score report)")
	mode := flag.String("mode", "rect", "fill mode: rect (continuous rectangles) or site (filler-cell placement; needs a layout with rows — DEF input or -design row)")
	pad := flag.Int("pad", 0, "site-mode padding: empty sites kept between fillers and placed cells (ignored with -mode rect)")
	cacheDir := flag.String("cache", "", "persistent fill-cache directory for incremental re-fill (created if missing; method ours only)")
	cacheGC := flag.String("cache-gc", "", "trim the -cache directory to this size (e.g. 256MB) and exit; no fill run")
	cacheGCAge := flag.Duration("cache-gc-age", 0, "with -cache-gc, also drop cache entries older than this (0 = no age bound)")
	diff := flag.String("diff", "", "old layout file: report per-window cache invalidation vs the current input instead of running the flow")
	var prof exp.Profiling
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *deadline < 0 {
		fatal(fmt.Errorf("-deadline must be >= 0 (0 = unlimited), got %v", *deadline))
	}

	// Ctrl-C hard-aborts the run; -deadline degrades it gracefully.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	ofmt, err := layio.Lookup(*oformat)
	if err != nil {
		fatal(err)
	}

	if *cacheGC != "" {
		if err := runCacheGC(*cacheDir, *cacheGC, *cacheGCAge); err != nil {
			fatal(err)
		}
		return
	}

	var lay *dummyfill.Layout
	var coeffs dummyfill.Coefficients
	if *in != "" {
		f, ferr := os.Open(*in)
		if ferr != nil {
			fatal(ferr)
		}
		lay, err = ingestfmt.Read(f, *format, dummyfill.IngestOptions{Window: *window})
		f.Close()
		if err != nil {
			fatal(err)
		}
		*design = lay.Name
		coeffs, err = dummyfill.Calibrate(lay, 60, 4096)
	} else {
		lay, coeffs, err = dummyfill.GenerateBenchmark(*design)
	}
	if err != nil {
		fatal(err)
	}
	opts := dummyfill.DefaultOptions()
	if *lambda > 0 {
		opts.Lambda = *lambda
	}
	opts.Mode = *mode
	opts.SitePad = *pad
	opts.Workers = *workers
	opts.Shards = *shards
	opts.Budget = *deadline
	var cache *dummyfill.FillCache
	if *cacheDir != "" {
		cache, err = dummyfill.OpenFillCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		opts.Cache = cache
	}

	if *diff != "" {
		if err := runDiff(ctx, *diff, *format, *window, lay, opts); err != nil {
			fatal(err)
		}
		return
	}

	if *stream {
		if *method != "ours" {
			fatal(fmt.Errorf("-stream supports only -method ours, got %q", *method))
		}
		path := *out
		if path == "" {
			path = *design + "_fill." + outExt(ofmt.Name)
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		sw, err := ofmt.NewShapeWriter(f, layio.Header{Name: lay.Name, Struct: "FILL", Die: lay.Die, Sites: lay.Sites})
		if err != nil {
			fatal(err)
		}
		nFills := 0
		res, err := dummyfill.InsertStream(ctx, lay, opts, dummyfill.FillSinkFunc(func(_ int, fills []dummyfill.Fill) error {
			nFills += len(fills)
			for _, fl := range fills {
				if err := sw.Write(layio.Shape{Layer: fl.Layer, Datatype: layio.DatatypeFill, Rect: fl.Rect}); err != nil {
					return err
				}
			}
			return nil
		}))
		if err != nil {
			fatal(err)
		}
		if err := sw.Close(); err != nil {
			fatal(err)
		}
		info, err := f.Stat()
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("design %s, method ours (streamed): %d fills\n", *design, nFills)
		fmt.Printf("health: %s\n", res.Health)
		printCacheStats(cache)
		fmt.Printf("wrote %s (%d bytes)\n", path, info.Size())
		return
	}

	var chosen *dummyfill.Method
	for _, m := range dummyfill.AllMethods(opts) {
		if m.Name == *method {
			m := m
			chosen = &m
			break
		}
	}
	if chosen == nil {
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	rep, sol, health, err := dummyfill.RunMethodContext(ctx, *chosen, lay, coeffs)
	if err != nil {
		fatal(err)
	}
	if vs := dummyfill.CheckDRC(lay, sol); len(vs) != 0 {
		fmt.Fprintf(os.Stderr, "fillgen: WARNING: %d DRC violations (first: %v)\n", len(vs), vs[0])
	}
	if opts.Mode == dummyfill.ModeSite && chosen.Name == "ours" {
		if vs := dummyfill.CheckSiteDRC(lay, sol, opts.SiteLib, opts.SitePad); len(vs) != 0 {
			fmt.Fprintf(os.Stderr, "fillgen: WARNING: %d site DRC violations (first: %v)\n", len(vs), vs[0])
		} else {
			fmt.Printf("site DRC: clean (pad %d)\n", opts.SitePad)
		}
	}
	fmt.Printf("design %s, method %s: %d fills\n", *design, chosen.Name, len(sol.Fills))
	if health != nil {
		fmt.Printf("health: %s\n", health)
	}
	printCacheStats(cache)
	fmt.Println(rep)

	path := *out
	if path == "" {
		path = *design + "_fill." + outExt(ofmt.Name)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := writeSolution(f, ofmt.Name, lay, sol); err != nil {
		fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, info.Size())
}

// writeSolution emits the solution deck in the chosen format using the
// batch writers (globally sorted shapes, best compression); the -stream
// path uses the streaming registry writers instead.
func writeSolution(w *os.File, format string, lay *dummyfill.Layout, sol *dummyfill.Solution) error {
	switch format {
	case gdsii.FormatName:
		return gdsii.FromSolution(lay.Name, sol).Write(w)
	case oasis.FormatName:
		return oasis.FromSolution(lay.Name, sol).Write(w)
	case textfmt.FormatName:
		return textfmt.WriteSolution(w, lay.Name, sol)
	case deffmt.FormatName:
		return deffmt.WriteSolution(w, lay, sol)
	default:
		return fmt.Errorf("unknown output format %q", format)
	}
}

// outExt picks the conventional file extension for a format name.
func outExt(format string) string {
	switch format {
	case oasis.FormatName:
		return "oas"
	case textfmt.FormatName:
		return "txt"
	case deffmt.FormatName:
		return "def"
	default:
		return "gds"
	}
}

// printCacheStats reports the fill cache's counters for the run; the CI
// warm-cache smoke greps the hits figure.
func printCacheStats(c *dummyfill.FillCache) {
	if c == nil {
		return
	}
	st := c.Stats()
	fmt.Printf("cache: hits=%d misses=%d corrupt=%d puts=%d put-errors=%d (%s)\n",
		st.Hits, st.Misses, st.Corrupt, st.Puts, st.PutErrors, c.Dir())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fillgen:", err)
	os.Exit(1)
}
