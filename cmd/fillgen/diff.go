package main

import (
	"context"
	"fmt"
	"os"

	dummyfill "dummyfill"
	"dummyfill/cmd/internal/ingestfmt"
	"dummyfill/internal/fill"
)

// runDiff implements `fillgen -diff old.gds`: instead of running the
// flow, it compares the fill-cache content digests of the old layout
// against the current input and reports, window by window, what an
// incremental re-fill with -cache would invalidate and why — edited
// window geometry, neighbour wires reaching across the window border
// (halo), changed free fill regions, or a rules/options fingerprint
// change. Unchanged windows would replay from the cache.
func runDiff(ctx context.Context, oldPath, format string, window int64, newLay *dummyfill.Layout, opts dummyfill.Options) error {
	f, err := os.Open(oldPath)
	if err != nil {
		return err
	}
	oldLay, err := ingestfmt.Read(f, format, dummyfill.IngestOptions{Window: window})
	f.Close()
	if err != nil {
		return fmt.Errorf("-diff %s: %v", oldPath, err)
	}

	gOld, dOld, err := fill.WindowDigests(ctx, oldLay, opts)
	if err != nil {
		return err
	}
	gNew, dNew, err := fill.WindowDigests(ctx, newLay, opts)
	if err != nil {
		return err
	}
	nw := gNew.NumWindows()
	if gOld.NX != gNew.NX || gOld.NY != gNew.NY || oldLay.Die != newLay.Die || len(oldLay.Layers) != len(newLay.Layers) {
		fmt.Printf("diff vs %s: window grid changed (%dx%d, %d layers -> %dx%d, %d layers): full re-fill, all %d windows invalidated\n",
			oldPath, gOld.NX, gOld.NY, len(oldLay.Layers), gNew.NX, gNew.NY, len(newLay.Layers), nw)
		return nil
	}

	type sample struct {
		i, j  int
		cause string
	}
	var counts struct{ geometry, halo, regions, rules int }
	var samples []sample
	invalidated := 0
	for k := range dNew {
		o, n := dOld[k], dNew[k]
		if o.Key == n.Key {
			continue
		}
		invalidated++
		var cause string
		switch {
		case o.Interior != n.Interior:
			cause = "geometry"
			counts.geometry++
		case o.Halo != n.Halo:
			cause = "halo"
			counts.halo++
		case o.Regions != n.Regions:
			cause = "regions"
			counts.regions++
		default:
			cause = "rules"
			counts.rules++
		}
		if len(samples) < 8 {
			samples = append(samples, sample{i: k % gNew.NX, j: k / gNew.NX, cause: cause})
		}
	}

	fmt.Printf("diff vs %s: %d windows, %d unchanged, %d invalidated\n",
		oldPath, nw, nw-invalidated, invalidated)
	if invalidated == 0 {
		return nil
	}
	fmt.Printf("  geometry: %d  (wires inside the window edited)\n", counts.geometry)
	fmt.Printf("  halo:     %d  (neighbour wires crossing the border moved)\n", counts.halo)
	fmt.Printf("  regions:  %d  (free fill regions changed)\n", counts.regions)
	fmt.Printf("  rules:    %d  (rules/options fingerprint changed)\n", counts.rules)
	fmt.Printf("  first invalidated:")
	for _, s := range samples {
		fmt.Printf(" (%d,%d)=%s", s.i, s.j, s.cause)
	}
	if invalidated > len(samples) {
		fmt.Printf(" ... %d more", invalidated-len(samples))
	}
	fmt.Println()
	return nil
}
