package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	dummyfill "dummyfill"
)

// runCacheGC trims the fill cache at dir to at most the given size
// (and, when age > 0, drops entries older than age), then prints the
// pass summary.
func runCacheGC(dir, size string, age time.Duration) error {
	if dir == "" {
		return fmt.Errorf("-cache-gc needs -cache <dir>")
	}
	maxBytes, err := parseSize(size)
	if err != nil {
		return err
	}
	cache, err := dummyfill.OpenFillCache(dir)
	if err != nil {
		return err
	}
	res, err := cache.GC(maxBytes, age, time.Now())
	if err != nil {
		return err
	}
	fmt.Printf("cache-gc %s: %s\n", dir, res)
	return nil
}

// parseSize reads a byte size like "0", "4096", "64KB", "256MB" or
// "2GB" (1024-based suffixes; B/KB/MB/GB, case-insensitive).
func parseSize(s string) (int64, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "GB"):
		mult, t = 1<<30, t[:len(t)-2]
	case strings.HasSuffix(t, "MB"):
		mult, t = 1<<20, t[:len(t)-2]
	case strings.HasSuffix(t, "KB"):
		mult, t = 1<<10, t[:len(t)-2]
	case strings.HasSuffix(t, "B"):
		t = t[:len(t)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad size %q (want e.g. 4096, 64KB, 256MB)", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return n * mult, nil
}
