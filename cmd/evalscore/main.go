// Command evalscore scores a fill solution GDSII against a design:
//
//	evalscore -design s -solution s_fill.gds
//
// The wires come from the regenerated design; the fills from the solution
// file (datatype 1). It prints the raw metrics, the component scores and
// the DRC verdict.
package main

import (
	"flag"
	"fmt"
	"os"

	dummyfill "dummyfill"
)

func main() {
	design := flag.String("design", "s", "design name: s, b, m or tiny")
	solution := flag.String("solution", "", "solution GDSII path (required)")
	flag.Parse()
	if *solution == "" {
		fatal(fmt.Errorf("-solution is required"))
	}

	lay, coeffs, err := dummyfill.GenerateBenchmark(*design)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*solution)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		fatal(err)
	}
	_, fills, err := dummyfill.ReadGDSShapes(f)
	if err != nil {
		fatal(err)
	}
	sol := &dummyfill.Solution{}
	for li, rects := range fills {
		for _, r := range rects {
			sol.Fills = append(sol.Fills, dummyfill.Fill{Layer: li, Rect: r})
		}
	}
	fmt.Printf("design %s: %d fills loaded from %s\n", *design, len(sol.Fills), *solution)

	vs := dummyfill.CheckDRC(lay, sol)
	if len(vs) == 0 {
		fmt.Println("DRC: clean")
	} else {
		fmt.Printf("DRC: %d violations (first: %v)\n", len(vs), vs[0])
	}
	rep, err := dummyfill.Score(lay, sol, coeffs, dummyfill.Measured{FileSizeBytes: info.Size()})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("raw: overlay=%d σ=%.4f line=%.2f outlier=%.4f size=%.2fMiB\n",
		rep.Raw.Overlay, rep.Raw.SumSigma, rep.Raw.SumLine, rep.Raw.SumOutlier,
		float64(rep.Raw.FileSizeB)/(1<<20))
	fmt.Println("scores:", rep)
	fmt.Println("note: runtime/memory scores are 1.0 here (not measured when scoring a file)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evalscore:", err)
	os.Exit(1)
}
