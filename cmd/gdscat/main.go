// Command gdscat inspects GDSII files:
//
//	gdscat file.gds              # library summary
//	gdscat -layers file.gds      # per-layer shape/area breakdown
//
// Only BOUNDARY elements are modeled; other record types are skipped.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dummyfill/internal/gdsii"
	"dummyfill/internal/geom"
)

func main() {
	layers := flag.Bool("layers", false, "print per-layer breakdown")
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("usage: gdscat [-layers] <file.gds>"))
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	lib, err := gdsii.Read(f)
	if err != nil {
		fatal(err)
	}
	nb := 0
	for _, st := range lib.Structs {
		nb += len(st.Boundaries)
	}
	fmt.Printf("library %q: %d structures, %d boundaries, units user=%g meterDBU=%g\n",
		lib.Name, len(lib.Structs), nb, lib.UserUnit, lib.MeterDBU)
	for _, st := range lib.Structs {
		fmt.Printf("  structure %q: %d boundaries\n", st.Name, len(st.Boundaries))
	}
	if !*layers {
		return
	}
	wires, fills, err := lib.ExtractShapes()
	if err != nil {
		fatal(err)
	}
	type row struct {
		layer int
		kind  string
		count int
		area  int64
		bbox  geom.Rect
	}
	var rows []row
	add := func(kind string, m map[int][]geom.Rect) {
		for li, rs := range m {
			r := row{layer: li, kind: kind, count: len(rs)}
			for _, rect := range rs {
				r.area += rect.Area()
				r.bbox = r.bbox.Union(rect)
			}
			rows = append(rows, r)
		}
	}
	add("wire", wires)
	add("fill", fills)
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].layer != rows[b].layer {
			return rows[a].layer < rows[b].layer
		}
		return rows[a].kind < rows[b].kind
	})
	for _, r := range rows {
		fmt.Printf("  layer %d %s: %d shapes, area %d, bbox %v\n", r.layer, r.kind, r.count, r.area, r.bbox)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gdscat:", err)
	os.Exit(1)
}
