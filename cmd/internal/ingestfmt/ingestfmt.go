// Package ingestfmt implements the CLIs' shared -format handling: the
// value "auto" sniffs the stream's format from its first bytes, any
// other value fixes it by registry name, and formats that cannot state
// their own fill rules (the binary ones) get the default contest rule
// deck.
package ingestfmt

import (
	"io"

	dummyfill "dummyfill"
	"dummyfill/internal/ingest"
	"dummyfill/internal/layio"
)

// DefaultRules is the rule deck applied when ingesting a format that
// carries no rule metadata (GDSII, OASIS) and the caller set none.
var DefaultRules = dummyfill.Rules{MinWidth: 8, MinSpace: 8, MinArea: 64, MaxFillDim: 400}

// Read ingests a layout from r. format is "auto" (or empty) to sniff,
// else a name from dummyfill.Formats(). A zero opts.Rules is defaulted
// to DefaultRules unless the stream format states its own rules.
func Read(r io.Reader, format string, opts dummyfill.IngestOptions) (*dummyfill.Layout, error) {
	f, src, err := Resolve(r, format)
	if err != nil {
		return nil, err
	}
	if opts.Rules == (dummyfill.Rules{}) && !f.CarriesMeta {
		opts.Rules = DefaultRules
	}
	return ingest.FromShapes(f.NewShapeReader(src, f.Limits), opts)
}

// Resolve maps a -format flag value to a registered format, sniffing r
// when the value is "auto" or empty. The returned reader replaces r (it
// holds the peeked prefix).
func Resolve(r io.Reader, format string) (layio.Format, io.Reader, error) {
	if format == "" || format == "auto" {
		f, br, err := layio.DetectReader(r)
		if err != nil {
			return layio.Format{}, nil, err
		}
		return f, br, nil
	}
	f, err := layio.Lookup(format)
	if err != nil {
		return layio.Format{}, nil, err
	}
	return f, r, nil
}
