// Command fillserved serves the fill engine over HTTP: POST a layout to
// /fill and get the solution deck back, byte-identical to what
// `fillgen -stream` writes offline for the same input and options.
//
//	fillserved -addr :8080
//	curl -s --data-binary @design.txt \
//	    'localhost:8080/fill?format=text&oformat=gds&deadline=30s' > fill.gds
//
// The server is built for failure first: a bounded admission queue sheds
// load with 429 + Retry-After, per-job deadlines degrade windows instead
// of failing runs, panics are isolated per job, and SIGTERM drains
// in-flight jobs under -drain before hard-aborting stragglers.
// /metrics exposes Prometheus-style serving and Health telemetry;
// /healthz and /stats report liveness and queue state.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dummyfill/cmd/internal/ingestfmt"
	"dummyfill/internal/fillcache"
	"dummyfill/internal/serve"

	_ "dummyfill/internal/gdsii"
	_ "dummyfill/internal/oasis"
	_ "dummyfill/internal/textfmt"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrently running jobs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max jobs waiting for a run slot before shedding with 429 (0 = 2x workers)")
	deadline := flag.Duration("deadline", 60*time.Second, "default per-job deadline when the request names none (must be > 0)")
	maxDeadline := flag.Duration("max-deadline", 5*time.Minute, "upper clamp on client-requested deadlines (must be > 0)")
	drain := flag.Duration("drain", 30*time.Second, "how long SIGTERM waits for in-flight jobs before hard-aborting them")
	maxBody := flag.Int64("max-body", 256<<20, "max ingest payload bytes")
	cacheEntries := flag.Int("cache", 64, "layout cache capacity in entries (negative disables)")
	fillCacheDir := flag.String("fill-cache", "", "persistent per-window fill cache directory (created if missing); resubmitted edited layouts replay their unchanged windows")
	flag.Parse()

	// A non-positive deadline is always a misconfiguration at the serving
	// layer: it would silently disable the degrade-don't-fail contract.
	if *deadline <= 0 {
		fatal(fmt.Errorf("-deadline must be positive, got %v", *deadline))
	}
	if *maxDeadline <= 0 {
		fatal(fmt.Errorf("-max-deadline must be positive, got %v", *maxDeadline))
	}

	var fillCache *fillcache.Cache
	if *fillCacheDir != "" {
		var err error
		fillCache, err = fillcache.Open(*fillCacheDir)
		if err != nil {
			fatal(err)
		}
	}

	s := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MaxBodyBytes:    *maxBody,
		CacheEntries:    *cacheEntries,
		Rules:           ingestfmt.DefaultRules,
		FillCache:       fillCache,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	errs := make(chan error, 1)
	go func() { errs <- hs.ListenAndServe() }()
	log.Printf("fillserved listening on %s", *addr)

	select {
	case err := <-errs:
		fatal(err)
	case sig := <-sigs:
		log.Printf("received %v, draining (up to %v)", sig, *drain)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), *drain)
	defer dcancel()
	if err := s.Shutdown(dctx); err != nil {
		log.Printf("drain deadline expired, stragglers hard-aborted: %v", err)
	} else {
		log.Printf("drained cleanly")
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if err := hs.Shutdown(hctx); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fillserved:", err)
	os.Exit(1)
}
