// Command repro regenerates the paper's experimental tables and figures
// on the synthetic benchmark suite:
//
//	repro -exp table2                       # benchmark statistics + α/β (Table 2)
//	repro -exp table3 -designs s            # method comparison (Table 3)
//	repro -exp fig6                         # the worked dual min-cost-flow example
//	repro -exp cmp                          # post-CMP planarity motivation
//	repro -exp all -designs s,b,m           # everything
//	repro -exp table3 -render csv           # machine-readable output
//	repro -in design.gds -format auto       # Table 3 on an external layout
//
// The experiment logic lives in internal/exp; this command only parses
// flags, measures runtime/memory, and renders.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	dummyfill "dummyfill"
	"dummyfill/cmd/internal/ingestfmt"
	"dummyfill/internal/cmppad"
	"dummyfill/internal/exp"
	"dummyfill/internal/fill"
)

func main() {
	expName := flag.String("exp", "all", "experiment: table2, table3, fig6, cmp, all")
	designs := flag.String("designs", "s,b,m", "comma-separated design list")
	render := flag.String("render", "text", "output rendering: text, csv, md")
	in := flag.String("in", "", "external layout file: run Table 3 on it instead of the synthetic designs")
	formatName := flag.String("format", "auto", "input layout format for -in: auto (sniff), "+strings.Join(dummyfill.Formats(), ", "))
	window := flag.Int64("window", 0, "window size for -in layouts without one (0 = die/16)")
	deadline := flag.Duration("deadline", 0, "soft per-run time budget for the fill engine: past it, remaining windows emit unshrunk candidates instead of failing (0 = unlimited)")
	workers := flag.Int("workers", 0, "window-level parallelism for the fill engine (0 = all cores)")
	shards := flag.Int("shards", 0, "row-band shards for hierarchical planning and emission (0 = one per core); output is identical for every value")
	mode := flag.String("mode", "rect", "fill mode for the engine: rect (continuous rectangles) or site (filler-cell placement; needs a layout with rows, e.g. -designs row)")
	pad := flag.Int("pad", 0, "site-mode padding: empty sites kept between fillers and placed cells (ignored with -mode rect)")
	cacheDir := flag.String("cache", "", "persistent fill-cache directory for incremental re-fill (created if missing); repeated runs replay unchanged windows")
	var prof exp.Profiling
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *deadline < 0 {
		fatal(fmt.Errorf("-deadline must be >= 0 (0 = unlimited), got %v", *deadline))
	}

	// Interrupt (Ctrl-C) hard-aborts in-flight engine runs via context;
	// the -deadline budget, by contrast, degrades gracefully.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	format, err := exp.ParseFormat(*render)
	if err != nil {
		fatal(err)
	}
	var names []string
	for _, n := range strings.Split(*designs, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	opts := fill.DefaultOptions()
	opts.Budget = *deadline
	opts.Workers = *workers
	opts.Shards = *shards
	opts.Mode = *mode
	opts.SitePad = *pad
	if *cacheDir != "" {
		cache, err := dummyfill.OpenFillCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		opts.Cache = cache
	}
	out := os.Stdout
	text := format == exp.Text

	if *in != "" {
		if *expName != "table3" && *expName != "all" {
			fatal(fmt.Errorf("-in supports only -exp table3 (or all), got %q", *expName))
		}
		d, err := loadDesign(*in, *formatName, *window)
		if err != nil {
			fatal(err)
		}
		if text {
			fmt.Printf("== Table 3 on %s (%s) ==\n", *in, d.Name)
		}
		rows, err := exp.Table3Designs(ctx, []exp.Design{d}, opts, measure)
		if err != nil {
			fatal(err)
		}
		if err := exp.RenderTable3(out, format, rows); err != nil {
			fatal(err)
		}
		return
	}

	ran := false
	if *expName == "table2" || *expName == "all" {
		ran = true
		if text {
			fmt.Println("== Table 2: benchmark statistics and score coefficients ==")
		}
		rows, err := exp.Table2(names)
		if err != nil {
			fatal(err)
		}
		if err := exp.RenderTable2(out, format, rows); err != nil {
			fatal(err)
		}
		if text {
			fmt.Println()
		}
	}
	if *expName == "fig6" || *expName == "all" {
		ran = true
		if text {
			fmt.Println("== Fig. 6: dual min-cost-flow worked example (paper: x = [5 0 0 6], objective 29) ==")
		}
		rows, err := exp.Fig6()
		if err != nil {
			fatal(err)
		}
		if err := exp.RenderFig6(out, format, rows); err != nil {
			fatal(err)
		}
		if text {
			fmt.Println()
		}
	}
	if *expName == "table3" || *expName == "all" {
		ran = true
		if text {
			fmt.Println("== Table 3: experimental results (ours vs. baseline methods) ==")
		}
		rows, err := exp.Table3Ctx(ctx, names, opts, measure)
		if err != nil {
			fatal(err)
		}
		if err := exp.RenderTable3(out, format, rows); err != nil {
			fatal(err)
		}
		if text {
			for _, r := range rows {
				if r.Health != nil {
					fmt.Printf("health[%s/%s]: %s\n", r.Design, r.Method, r.Health)
				}
			}
			fmt.Println()
		}
	}
	if *expName == "cmp" || *expName == "all" {
		ran = true
		if text {
			fmt.Println("== CMP motivation: post-polish planarity before/after fill ==")
		}
		rows, err := exp.CMP(names, opts, cmppad.DefaultParams())
		if err != nil {
			fatal(err)
		}
		if err := exp.RenderCMP(out, format, rows); err != nil {
			fatal(err)
		}
		if text {
			fmt.Println()
		}
	}
	if !ran {
		fatal(fmt.Errorf("unknown -exp %q (want table2, table3, fig6, cmp or all)", *expName))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}

// loadDesign ingests an external layout (format "auto" sniffs from the
// first bytes) and calibrates contest-style coefficients for it. Binary
// formats carry no fill rules, so those get the default rule deck; text
// layouts keep the rules they declare.
func loadDesign(path, format string, window int64) (exp.Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return exp.Design{}, err
	}
	defer f.Close()
	lay, err := ingestfmt.Read(f, format, dummyfill.IngestOptions{Window: window})
	if err != nil {
		return exp.Design{}, err
	}
	coeffs, err := dummyfill.Calibrate(lay, 60, 4096)
	if err != nil {
		return exp.Design{}, err
	}
	name := lay.Name
	if name == "" {
		name = path
	}
	return exp.Design{Name: name, Lay: lay, Coeffs: coeffs}, nil
}

// measure times f and samples peak live heap (5 ms period), mirroring the
// public API's instrumentation.
func measure(f func() error) (float64, float64, error) {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	var peak atomic.Int64
	peak.Store(int64(base.HeapInuse))
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if h := int64(ms.HeapInuse); h > peak.Load() {
					peak.Store(h)
				}
			}
		}
	}()
	start := time.Now()
	err := f()
	sec := time.Since(start).Seconds()
	close(stop)
	<-done
	return sec, float64(peak.Load()) / (1 << 20), err
}
