// Command layout2svg renders a design (and optionally its fill solution)
// as an SVG image, or a window-density heat map:
//
//	layout2svg -design tiny -o tiny.svg
//	layout2svg -design tiny -fill -o tiny_filled.svg
//	layout2svg -design tiny -heat -layer 0 -o heat.svg
package main

import (
	"flag"
	"fmt"
	"os"

	dummyfill "dummyfill"
	"dummyfill/internal/render"
	"dummyfill/internal/score"
)

func main() {
	design := flag.String("design", "tiny", "design name: s, b, m or tiny")
	doFill := flag.Bool("fill", false, "run the fill engine and draw the fills too")
	heat := flag.Bool("heat", false, "render a window-density heat map instead of geometry")
	layer := flag.Int("layer", 0, "layer for -heat")
	width := flag.Int("width", 1000, "image width in px")
	gridLines := flag.Bool("grid", true, "draw the window grid")
	out := flag.String("o", "", "output SVG path (default <design>.svg)")
	flag.Parse()

	lay, _, err := dummyfill.GenerateBenchmark(*design)
	if err != nil {
		fatal(err)
	}
	sol := &dummyfill.Solution{}
	if *doFill {
		res, err := dummyfill.Insert(lay, dummyfill.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		sol = &res.Solution
	}
	path := *out
	if path == "" {
		path = *design + ".svg"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	if *heat {
		_, _, _, maps, err := score.MeasureDensity(lay, sol)
		if err != nil {
			fatal(err)
		}
		if *layer < 0 || *layer >= len(maps) {
			fatal(fmt.Errorf("layer %d out of range (%d layers)", *layer, len(maps)))
		}
		if err := render.HeatSVG(f, maps[*layer], *width); err != nil {
			fatal(err)
		}
	} else {
		if err := render.SVG(f, lay, sol, render.Options{
			PixelWidth: *width,
			ShowGrid:   *gridLines,
		}); err != nil {
			fatal(err)
		}
	}
	info, err := f.Stat()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, info.Size())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "layout2svg:", err)
	os.Exit(1)
}
