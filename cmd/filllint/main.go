// Command filllint runs the repo's invariant analyzers (internal/analysis)
// over every package of the module and fails on any finding. It is the CI
// analysis gate behind the determinism, context-flow, pool, locking,
// goroutine-lifecycle, error-flow, narrowing and no-panic contracts; see
// DESIGN.md §10 and §15 for what each analyzer enforces and why.
//
// Usage:
//
//	filllint [-json] [-analyzers list] [-parallel n] [-cache dir] [-list] [packages]
//
// Packages may be "./..." (the default: the whole module) or
// module-relative package directories like ./internal/fill. The whole
// module is always analyzed (analyzers exchange facts across package
// boundaries); the patterns only select which packages' findings are
// reported.
//
// -parallel caps concurrently analyzed packages (default: GOMAXPROCS).
// -cache names a directory of per-package findings+facts entries keyed
// by content chain hashes; warm runs skip type-checking and analysis for
// unchanged packages. Findings are globally sorted, so output — plain or
// -json — is byte-for-byte identical across -parallel values and across
// cold and warm cache states.
//
// Exit status: 0 clean, 1 findings reported, 2 load or usage error.
// Cache trouble is never load trouble: missing, torn, or unwritable
// cache entries degrade to re-analysis (counted as cache-errors in the
// stats line) and cannot turn a clean run into a failing one.
//
// Every run prints a machine-readable accounting line to stderr:
//
//	filllint: packages=N analyzed=X cached=Y cached-facts=Z findings=F
//
// with a trailing " cache-errors=E" field when any entries were torn or
// unwritable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dummyfill/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("filllint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	names := fs.String("analyzers", "", "comma-separated analyzers to run (default: all); prefix with - to disable instead")
	list := fs.Bool("list", false, "list available analyzers and exit")
	dir := fs.String("C", ".", "module root (directory containing go.mod)")
	parallel := fs.Int("parallel", 0, "max concurrently analyzed packages (0 = GOMAXPROCS)")
	cacheDir := fs.String("cache", "", "findings+facts cache directory (empty = no cache)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	enabled, err := selectAnalyzers(all, *names)
	if err != nil {
		fmt.Fprintln(stderr, "filllint:", err)
		return 2
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "filllint:", err)
		return 2
	}

	match, err := packageFilter(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "filllint:", err)
		return 2
	}

	res, err := analysis.RunDriver(root, analysis.DriverOptions{
		Analyzers: enabled,
		Parallel:  *parallel,
		CacheDir:  *cacheDir,
	})
	if err != nil {
		fmt.Fprintln(stderr, "filllint:", err)
		return 2
	}

	diags := res.Diagnostics[:0:0]
	for _, d := range res.Diagnostics {
		if match(pkgDirOf(root, d.Pos.Filename)) {
			diags = append(diags, d)
		}
	}

	if *jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, len(diags))
		for i, d := range diags {
			out[i] = jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "filllint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}

	s := res.Stats
	fmt.Fprintf(stderr, "filllint: packages=%d analyzed=%d cached=%d cached-facts=%d findings=%d",
		s.Packages, s.Analyzed, s.Cached, s.CachedFacts, len(diags))
	if s.CacheErrors > 0 {
		fmt.Fprintf(stderr, " cache-errors=%d", s.CacheErrors)
	}
	fmt.Fprintln(stderr)

	if len(diags) > 0 {
		return 1
	}
	return 0
}

// pkgDirOf maps a diagnostic's file back to its module-relative package
// dir for pattern matching.
func pkgDirOf(root, file string) string {
	rel, err := filepath.Rel(root, file)
	if err != nil {
		return file
	}
	return filepath.ToSlash(filepath.Dir(rel))
}

// selectAnalyzers resolves the -analyzers flag: empty means all, a plain
// list enables exactly those, a list of -prefixed names enables all but
// those. Mixing the two styles is an error.
func selectAnalyzers(all []*analysis.Analyzer, spec string) ([]*analysis.Analyzer, error) {
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	parts := strings.Split(spec, ",")
	disable := strings.HasPrefix(strings.TrimSpace(parts[0]), "-")
	picked := map[string]bool{}
	for _, part := range parts {
		name := strings.TrimSpace(part)
		neg := strings.HasPrefix(name, "-")
		if neg != disable {
			return nil, fmt.Errorf("-analyzers mixes enable and disable entries in %q", spec)
		}
		name = strings.TrimPrefix(name, "-")
		if byName[name] == nil {
			return nil, fmt.Errorf("unknown analyzer %q (run -list)", name)
		}
		picked[name] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if picked[a.Name] != disable {
			out = append(out, a)
		}
	}
	return out, nil
}

// packageFilter turns pattern args into a predicate over module-relative
// package dirs. No args or "./..." selects everything; "./dir/..."
// selects a subtree; "./dir" selects one package.
func packageFilter(patterns []string) (func(dir string) bool, error) {
	if len(patterns) == 0 {
		return func(string) bool { return true }, nil
	}
	type rule struct {
		dir  string
		tree bool
	}
	var rules []rule
	for _, pat := range patterns {
		p := filepath.ToSlash(pat)
		tree := false
		if strings.HasSuffix(p, "/...") {
			tree = true
			p = strings.TrimSuffix(p, "/...")
		}
		p = strings.TrimPrefix(p, "./")
		if p == "" || p == "." {
			return func(string) bool { return true }, nil
		}
		if strings.Contains(p, "...") {
			return nil, fmt.Errorf("unsupported pattern %q (use ./dir, ./dir/... or ./...)", pat)
		}
		rules = append(rules, rule{dir: p, tree: tree})
	}
	return func(dir string) bool {
		d := filepath.ToSlash(dir)
		for _, r := range rules {
			if d == r.dir || (r.tree && strings.HasPrefix(d, r.dir+"/")) {
				return true
			}
		}
		return false
	}, nil
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}
