package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module for the CLI to analyze:
// package a exports a fragile function and an annotated sink, package b
// discards both errors. Exactly one finding (the fragile discard) when
// dirty is true; none when it handles the error instead.
func writeModule(t *testing.T, dirty bool) string {
	t.Helper()
	root := t.TempDir()
	drop := "func Drop() error {\n\ta.Accounted()\n\treturn a.Fail()\n}\n"
	if dirty {
		drop = "func Drop() {\n\ta.Fail()\n\ta.Accounted()\n}\n"
	}
	files := map[string]string{
		"go.mod": "module tmod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"errors\"\n\nfunc Fail() error { return errors.New(\"x\") }\n\n// Accounted tracks its own failures.\n//\n//filllint:errsink\nfunc Accounted() error { return nil }\n",
		"b/b.go": "package b\n\nimport \"tmod/a\"\n\n" + drop,
	}
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// lint invokes the CLI entry point directly and returns (exit, stdout, stderr).
func lint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitTaxonomy(t *testing.T) {
	clean := writeModule(t, false)
	if code, out, stderr := lint(t, "-C", clean); code != 0 {
		t.Fatalf("clean module: exit %d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}

	dirty := writeModule(t, true)
	code, out, _ := lint(t, "-C", dirty)
	if code != 1 {
		t.Fatalf("dirty module: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "Fail") || strings.Contains(out, "Accounted") {
		t.Fatalf("findings should name Fail and spare the annotated Accounted:\n%s", out)
	}

	if code, _, _ := lint(t, "-C", dirty, "-analyzers", "nosuch"); code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", code)
	}
	if code, _, _ := lint(t, "-C", t.TempDir()); code != 2 {
		t.Fatalf("-C outside any module: exit %d, want 2", code)
	}
	if code, _, _ := lint(t, "-C", dirty, "./a/.../b"); code != 2 {
		t.Fatalf("unsupported pattern: exit %d, want 2", code)
	}
}

func TestPackageFilterScopesFindings(t *testing.T) {
	dirty := writeModule(t, true)
	if code, out, _ := lint(t, "-C", dirty, "./a"); code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("filter ./a should hide b's finding: exit %d\n%s", code, out)
	}
	if code, out, _ := lint(t, "-C", dirty, "./b"); code != 1 || !strings.Contains(out, "Fail") {
		t.Fatalf("filter ./b should keep the finding: exit %d\n%s", code, out)
	}
}

// TestJSONDeterministicAcrossParallel is the output contract: -json bytes
// are identical whatever the parallelism and whether the cache is cold
// or warm.
func TestJSONDeterministicAcrossParallel(t *testing.T) {
	dirty := writeModule(t, true)
	var want string
	for _, p := range []string{"1", "2", "8"} {
		cache := t.TempDir()
		for _, state := range []string{"cold", "warm"} {
			code, out, stderr := lint(t, "-C", dirty, "-json", "-parallel", p, "-cache", cache)
			if code != 1 {
				t.Fatalf("parallel=%s %s: exit %d\n%s", p, state, code, stderr)
			}
			if want == "" {
				want = out
			}
			if out != want {
				t.Fatalf("parallel=%s %s output differs:\n%s\nwant:\n%s", p, state, out, want)
			}
			if state == "warm" && !strings.Contains(stderr, "cached=2") {
				t.Fatalf("warm run did not hit cache: %s", stderr)
			}
		}
	}
}

// TestWarmRunServesFactsFromCache pins the stats line the CI warm-cache
// step greps: a warm run reports cache hits and a nonzero cached-facts
// count (the errsink annotation in package a rides the cache).
func TestWarmRunServesFactsFromCache(t *testing.T) {
	clean := writeModule(t, false)
	cache := t.TempDir()
	if code, _, stderr := lint(t, "-C", clean, "-cache", cache); code != 0 {
		t.Fatalf("cold: exit %d\n%s", code, stderr)
	}
	code, _, stderr := lint(t, "-C", clean, "-cache", cache)
	if code != 0 {
		t.Fatalf("warm: exit %d\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "analyzed=0") || !strings.Contains(stderr, "cached=2") {
		t.Fatalf("warm stats: %s", stderr)
	}
	if strings.Contains(stderr, "cached-facts=0") {
		t.Fatalf("warm run should serve a's errsink fact from cache: %s", stderr)
	}
}

// TestTornCacheDegradesNotDies: corrupt cache entries degrade to
// re-analysis with identical findings and exit status — never exit 2.
func TestTornCacheDegradesNotDies(t *testing.T) {
	dirty := writeModule(t, true)
	cache := t.TempDir()
	_, want, _ := lint(t, "-C", dirty, "-cache", cache)

	ents, err := os.ReadDir(cache)
	if err != nil || len(ents) == 0 {
		t.Fatalf("cache dir not populated: %v (%d entries)", err, len(ents))
	}
	for _, e := range ents {
		if err := os.WriteFile(filepath.Join(cache, e.Name()), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	code, out, stderr := lint(t, "-C", dirty, "-cache", cache)
	if code != 1 {
		t.Fatalf("torn cache changed exit status: %d\n%s", code, stderr)
	}
	if out != want {
		t.Fatalf("torn cache changed findings:\n%s\nwant:\n%s", out, want)
	}
	if !strings.Contains(stderr, "cache-errors=") {
		t.Fatalf("torn entries unreported: %s", stderr)
	}

	// The degraded run rewrote good entries; the next one is warm again.
	if _, _, stderr := lint(t, "-C", dirty, "-cache", cache); !strings.Contains(stderr, "cached=2") {
		t.Fatalf("cache did not recover after degrade: %s", stderr)
	}
}
