// Command layoutgen generates one of the synthetic benchmark designs and
// writes it as a GDSII file (wires only, datatype 0):
//
//	layoutgen -design s -o s.gds
//
// The file can be fed to fillgen and gdscat.
package main

import (
	"flag"
	"fmt"
	"os"

	"dummyfill/internal/deffmt"
	"dummyfill/internal/gdsii"
	"dummyfill/internal/synth"
	"dummyfill/internal/textfmt"
)

func main() {
	design := flag.String("design", "s", "design name: s, b, m, row or tiny")
	out := flag.String("o", "", "output path (default <design>.gds, .txt or .def)")
	format := flag.String("format", "gds", "output format: gds, text or def (def carries the placement rows site mode needs)")
	stats := flag.Bool("stats", false, "print layout statistics")
	flag.Parse()

	sp, err := synth.ByName(*design)
	if err != nil {
		fatal(err)
	}
	lay, err := synth.Generate(sp)
	if err != nil {
		fatal(err)
	}
	if *stats {
		st := lay.Statistics()
		fmt.Printf("design %s: layers=%d shapes=%d windows=%d die=%v\n",
			st.Name, st.NumLayers, st.NumShapes, st.NumWindows, lay.Die)
		for li, d := range st.WireDens {
			fmt.Printf("  layer %d: wire density %.4f, fill-region area %d\n", li, d, st.FillArea[li])
		}
	}
	path := *out
	if path == "" {
		ext := ".gds"
		switch *format {
		case "text":
			ext = ".txt"
		case "def":
			ext = ".def"
		}
		path = *design + ext
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	switch *format {
	case "gds":
		err = gdsii.FromLayout(lay, nil).Write(f)
	case "text":
		err = textfmt.WriteLayout(f, lay)
	case "def":
		err = deffmt.WriteLayout(f, lay, nil)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, info.Size())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "layoutgen:", err)
	os.Exit(1)
}
