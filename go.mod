module dummyfill

go 1.22
