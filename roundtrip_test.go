package dummyfill_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"testing"

	dummyfill "dummyfill"
)

// goldenStream pins the SHA-256 of the streaming writers' output (and the
// barrier OASIS writer's) per design, recorded before the layio registry
// refactor. The refactor's contract is byte-identical streams; drift here
// is a regression unless the hashes are deliberately re-recorded with a
// change that justifies it. (The barrier GDS goldens live in
// determinism_test.go.)
var goldenStream = map[string]struct{ streamGDS, streamOASIS, barrierOASIS string }{
	"tiny": {
		streamGDS:    "ec07ae6c07842bb42c6c915edab0a874e4f5dc9ff17117797b45092450feabc6",
		streamOASIS:  "46531af703cff9c35b6433d543881ac530e1abc906e9bde87cefc135e9c0ce1f",
		barrierOASIS: "c79216ee6041f797533d5a5cc7913c3e8daa6fea609d8ff3d6e6c9db8bc59b2e",
	},
	"s": {
		streamGDS:    "a9509a1c4338ce847a37a2263b8242a77d68838a95ddac731358a82119e96cc1",
		streamOASIS:  "6e74f0e235b00428977235de8204003ac53c01c4135edada9766f1de8ef67821",
		barrierOASIS: "f45e3b613b3b0484d65fc21ca0e938ba873f0f88a218be1dd412044b1120709b",
	},
}

func sha(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}

// TestGoldenStreamHashes runs the streaming emitters through the layio
// registry path and checks the output against the pre-refactor hashes.
func TestGoldenStreamHashes(t *testing.T) {
	for _, design := range []string{"tiny", "s"} {
		design := design
		t.Run(design, func(t *testing.T) {
			want := goldenStream[design]
			lay, _, err := dummyfill.GenerateBenchmark(design)
			if err != nil {
				t.Fatal(err)
			}
			opts := dummyfill.DefaultOptions()
			opts.Workers = 4
			var g, o bytes.Buffer
			if _, err := dummyfill.InsertStreamGDS(context.Background(), &g, lay, opts); err != nil {
				t.Fatal(err)
			}
			if got := sha(g.Bytes()); got != want.streamGDS {
				t.Errorf("streamGDS hash %s, want %s", got, want.streamGDS)
			}
			if _, err := dummyfill.InsertStreamOASIS(context.Background(), &o, lay, opts); err != nil {
				t.Fatal(err)
			}
			if got := sha(o.Bytes()); got != want.streamOASIS {
				t.Errorf("streamOASIS hash %s, want %s", got, want.streamOASIS)
			}
			res, err := dummyfill.Insert(lay, opts)
			if err != nil {
				t.Fatal(err)
			}
			var ob bytes.Buffer
			if err := dummyfill.WriteOASIS(&ob, lay, &res.Solution); err != nil {
				t.Fatal(err)
			}
			if got := sha(ob.Bytes()); got != want.barrierOASIS {
				t.Errorf("barrierOASIS hash %s, want %s", got, want.barrierOASIS)
			}
		})
	}
}

// sortedWires canonicalizes a layer's wire set for comparison.
func sortedWires(rs []dummyfill.Rect) []dummyfill.Rect {
	out := append([]dummyfill.Rect(nil), rs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.XL != b.XL {
			return a.XL < b.XL
		}
		if a.YL != b.YL {
			return a.YL < b.YL
		}
		if a.XH != b.XH {
			return a.XH < b.XH
		}
		return a.YH < b.YH
	})
	return out
}

// TestCrossFormatRoundTrip writes one layout's wire deck in every
// registered format and reads each back through the sniffing ReadLayout
// and the explicit ReadLayoutFormat. All three formats must reconstruct
// the same die and per-layer wire sets.
func TestCrossFormatRoundTrip(t *testing.T) {
	lay, _, err := dummyfill.GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	// KeepFills makes the fills-only OASIS deck below ingest its shapes
	// as wires; GDSII and text decks carry no fills, so it is a no-op
	// for them.
	opts := dummyfill.IngestOptions{Die: lay.Die, Window: lay.Window, Rules: lay.Rules, KeepFills: true}

	encode := map[string]func(*dummyfill.Layout) ([]byte, error){
		"gds": func(l *dummyfill.Layout) ([]byte, error) {
			var buf bytes.Buffer
			err := dummyfill.WriteGDS(&buf, l, nil)
			return buf.Bytes(), err
		},
		// OASIS in this subset is a solution format (fills only), so its
		// round trip expresses the wires as fills and relies on KeepFills
		// to bring them back as wires.
		"oasis": func(l *dummyfill.Layout) ([]byte, error) {
			var sol dummyfill.Solution
			for li, layer := range l.Layers {
				for _, w := range layer.Wires {
					sol.Fills = append(sol.Fills, dummyfill.Fill{Layer: li, Rect: w})
				}
			}
			var buf bytes.Buffer
			err := dummyfill.WriteOASIS(&buf, l, &sol)
			return buf.Bytes(), err
		},
		"text": func(l *dummyfill.Layout) ([]byte, error) {
			var buf bytes.Buffer
			err := dummyfill.WriteTextLayout(&buf, l)
			return buf.Bytes(), err
		},
		// DEF encodes every wire as a placed component whose master name
		// carries its geometry, so arbitrary multi-layer layouts survive
		// the single-layer placement grammar.
		"def": func(l *dummyfill.Layout) ([]byte, error) {
			var buf bytes.Buffer
			err := dummyfill.WriteDEFLayout(&buf, l, nil)
			return buf.Bytes(), err
		},
	}
	for _, format := range dummyfill.Formats() {
		format := format
		enc, ok := encode[format]
		if !ok {
			t.Fatalf("registered format %q has no round-trip encoder in this test", format)
		}
		t.Run(format, func(t *testing.T) {
			data, err := enc(lay)
			if err != nil {
				t.Fatal(err)
			}
			sniffed, err := dummyfill.ReadLayout(bytes.NewReader(data), opts)
			if err != nil {
				t.Fatalf("ReadLayout (auto): %v", err)
			}
			explicit, err := dummyfill.ReadLayoutFormat(bytes.NewReader(data), format, opts)
			if err != nil {
				t.Fatalf("ReadLayoutFormat(%q): %v", format, err)
			}
			for _, got := range []*dummyfill.Layout{sniffed, explicit} {
				if got.Die != lay.Die {
					t.Fatalf("die %v, want %v", got.Die, lay.Die)
				}
				if len(got.Layers) != len(lay.Layers) {
					t.Fatalf("%d layers, want %d", len(got.Layers), len(lay.Layers))
				}
				for li := range lay.Layers {
					a := sortedWires(got.Layers[li].Wires)
					b := sortedWires(lay.Layers[li].Wires)
					if len(a) != len(b) {
						t.Fatalf("layer %d: %d wires, want %d", li, len(a), len(b))
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("layer %d wire %d: %v, want %v", li, i, a[i], b[i])
						}
					}
				}
			}
		})
	}
}

// TestStreamWriterReadBack closes the loop on the stream writers: decks
// produced by InsertStreamGDS/InsertStreamOASIS must re-read through the
// streaming readers to exactly the barrier path's wire and fill sets.
func TestStreamWriterReadBack(t *testing.T) {
	lay, _, err := dummyfill.GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	opts := dummyfill.DefaultOptions()
	opts.Workers = 4
	res, err := dummyfill.Insert(lay, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantFills := map[dummyfill.Fill]bool{}
	for _, f := range res.Solution.Fills {
		wantFills[f] = true
	}

	// GDSII stream: wires (datatype 0) plus fills (datatype 1).
	var g bytes.Buffer
	if _, err := dummyfill.InsertStreamGDS(context.Background(), &g, lay, opts); err != nil {
		t.Fatal(err)
	}
	wires, fills, err := dummyfill.ReadGDSShapes(bytes.NewReader(g.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for li, layer := range lay.Layers {
		a, b := sortedWires(wires[li]), sortedWires(layer.Wires)
		if len(a) != len(b) {
			t.Fatalf("layer %d: streamed deck re-read %d wires, want %d", li, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("layer %d wire %d: %v, want %v", li, i, a[i], b[i])
			}
		}
	}
	nf := 0
	for li, rs := range fills {
		for _, r := range rs {
			nf++
			if !wantFills[dummyfill.Fill{Layer: li, Rect: r}] {
				t.Fatalf("streamed GDS carries fill %d/%v not in the barrier solution", li, r)
			}
		}
	}
	if nf != len(res.Solution.Fills) {
		t.Fatalf("streamed GDS re-read %d fills, barrier solution has %d", nf, len(res.Solution.Fills))
	}

	// OASIS stream: fills only; KeepFills ingests them as wires.
	var o bytes.Buffer
	if _, err := dummyfill.InsertStreamOASIS(context.Background(), &o, lay, opts); err != nil {
		t.Fatal(err)
	}
	got, err := dummyfill.ReadLayoutFormat(bytes.NewReader(o.Bytes()), "oasis",
		dummyfill.IngestOptions{Die: lay.Die, Window: lay.Window, Rules: lay.Rules, KeepFills: true})
	if err != nil {
		t.Fatal(err)
	}
	nf = 0
	for li, layer := range got.Layers {
		for _, r := range layer.Wires {
			nf++
			if !wantFills[dummyfill.Fill{Layer: li, Rect: r}] {
				t.Fatalf("streamed OASIS carries fill %d/%v not in the barrier solution", li, r)
			}
		}
	}
	if nf != len(res.Solution.Fills) {
		t.Fatalf("streamed OASIS re-read %d fills, barrier solution has %d", nf, len(res.Solution.Fills))
	}
}

// TestReadLayoutUnknownFormat checks the error surfaces of the
// format-agnostic entry points: unsniffable bytes and unknown names.
func TestReadLayoutUnknownFormat(t *testing.T) {
	if _, err := dummyfill.ReadLayout(bytes.NewReader([]byte("\x00\x01garbage")), dummyfill.IngestOptions{}); err == nil {
		t.Fatal("ReadLayout accepted unsniffable input")
	}
	if _, err := dummyfill.ReadLayoutFormat(bytes.NewReader(nil), "dxf", dummyfill.IngestOptions{}); err == nil {
		t.Fatal("ReadLayoutFormat accepted unknown format name")
	}
}

// TestInsertStreamToCancelledInPreamble checks that a cancelled context
// aborts InsertStreamTo while it is still writing the wire preamble —
// before the fill engine (which polls ctx itself) ever runs.
func TestInsertStreamToCancelledInPreamble(t *testing.T) {
	lay, _, err := dummyfill.GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	_, err = dummyfill.InsertStreamGDS(ctx, &buf, lay, dummyfill.DefaultOptions())
	if err == nil {
		t.Fatal("InsertStreamGDS ignored a cancelled context")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("context canceled")) {
		t.Fatalf("got %v, want context cancellation", err)
	}
	// Nothing past the library preamble may have been committed: the wire
	// loop checks ctx before the first record batch.
	if buf.Len() > 1024 {
		t.Fatalf("cancelled stream still wrote %d bytes", buf.Len())
	}
}
