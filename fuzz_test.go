package dummyfill_test

import (
	"bytes"
	"testing"

	dummyfill "dummyfill"
)

// fuzzLayout builds a small two-layer layout for seeding format fuzzing.
func fuzzLayout() *dummyfill.Layout {
	return &dummyfill.Layout{
		Name:   "fuzz",
		Die:    dummyfill.R(0, 0, 100, 100),
		Window: 25,
		Rules:  dummyfill.Rules{MinWidth: 2, MinSpace: 1, MinArea: 4, MaxFillDim: 20},
		Layers: []*dummyfill.Layer{
			{
				Wires:       []dummyfill.Rect{dummyfill.R(10, 10, 40, 14), dummyfill.R(60, 20, 64, 80)},
				FillRegions: []dummyfill.Rect{dummyfill.R(20, 40, 50, 70)},
			},
			{
				Wires: []dummyfill.Rect{dummyfill.R(5, 5, 95, 9)},
			},
		},
	}
}

// FuzzReadLayout exercises the format-sniffing ingest path with arbitrary
// byte streams: any input must yield a validated layout or a clean error,
// never a panic, regardless of which format the sniffer picks.
// Run with `go test -fuzz FuzzReadLayout .` for deep exploration; plain
// `go test` replays the seed corpus.
func FuzzReadLayout(f *testing.F) {
	lay := fuzzLayout()
	sol := &dummyfill.Solution{Fills: []dummyfill.Fill{{Layer: 0, Rect: dummyfill.R(22, 42, 30, 50)}}}

	var gds bytes.Buffer
	if err := dummyfill.WriteGDS(&gds, lay, sol); err != nil {
		f.Fatal(err)
	}
	f.Add(gds.Bytes())
	var oas bytes.Buffer
	if err := dummyfill.WriteOASIS(&oas, lay, sol); err != nil {
		f.Fatal(err)
	}
	f.Add(oas.Bytes())
	var txt bytes.Buffer
	if err := dummyfill.WriteTextLayout(&txt, lay); err != nil {
		f.Fatal(err)
	}
	f.Add(txt.Bytes())
	var txtSol bytes.Buffer
	if err := dummyfill.WriteTextSolution(&txtSol, "fuzz", sol); err != nil {
		f.Fatal(err)
	}
	f.Add(txtSol.Bytes())
	var def bytes.Buffer
	if err := dummyfill.WriteDEFLayout(&def, lay, sol); err != nil {
		f.Fatal(err)
	}
	f.Add(def.Bytes())
	f.Add([]byte{})
	f.Add([]byte("layout x\n"))
	f.Add([]byte("# comment only\n"))
	f.Add(gds.Bytes()[:8])
	f.Add(oas.Bytes()[:16])
	// Text directives with hostile layer ids (layer-cap path).
	f.Add([]byte("solution s\nfill 999999999 0 0 1 1\n"))
	// DEF seeds: a tiny well-formed deck, truncations, hostile counts, and
	// a filler component with no ROW to size it against.
	f.Add([]byte("VERSION 5.8 ;\nDESIGN d ;\nDIEAREA ( 0 0 ) ( 100 100 ) ;\n" +
		"ROW r cs 0 0 N DO 10 BY 2 STEP 10 50 ;\nCOMPONENTS 1 ;\n" +
		"- fill_0 FILL_X1 + PLACED ( 0 0 ) N ;\nEND COMPONENTS\nEND DESIGN\n"))
	f.Add([]byte("DIEAREA ( 0 0 ) ( 10"))
	f.Add([]byte("# def deck\nVERSION 5.8 ;\nEND DESIGN\n"))
	f.Add([]byte("COMPONENTS 999999999 ;\n- f FILL_X99 + PLACED ( 0 0 ) N ;\n"))
	f.Add([]byte("ROW r cs 0 0 N DO 9999999999 BY 9999999999 STEP 1 1 ;\nCOMPONENTS 0 ;\n"))

	rules := dummyfill.Rules{MinWidth: 2, MinSpace: 1, MinArea: 4}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := dummyfill.ReadLayout(bytes.NewReader(data), dummyfill.IngestOptions{Rules: rules})
		if err == nil {
			if got == nil {
				t.Fatal("nil layout without error")
			}
			// A layout that parsed cleanly must re-emit in the text format
			// (the round-trip writer rejects nothing a Validate pass allows).
			if werr := dummyfill.WriteTextLayout(&bytes.Buffer{}, got); werr != nil {
				t.Fatalf("re-emit of parsed layout failed: %v", werr)
			}
		}
	})
}
