package dummyfill_test

import (
	"fmt"
	"log"

	dummyfill "dummyfill"
)

// ExampleInsert runs the complete fill flow on a hand-built two-window
// layout and reports the DRC verdict.
func ExampleInsert() {
	lay := &dummyfill.Layout{
		Name:   "ex",
		Die:    dummyfill.R(0, 0, 200, 100),
		Window: 100,
		Rules:  dummyfill.Rules{MinWidth: 8, MinSpace: 8, MinArea: 64, MaxFillDim: 80},
		Layers: []*dummyfill.Layer{{
			Wires:       []dummyfill.Rect{dummyfill.R(10, 10, 90, 30)},
			FillRegions: []dummyfill.Rect{dummyfill.R(10, 40, 190, 90)},
		}},
	}
	res, err := dummyfill.Insert(lay, dummyfill.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DRC violations:", len(dummyfill.CheckDRC(lay, &res.Solution)))
	// Output:
	// DRC violations: 0
}

// ExampleScore evaluates an empty solution against a calibrated score
// table: density scores read 0 (nothing improved) while the pass-through
// environment scores read 1.
func ExampleScore() {
	lay, coeffs, err := dummyfill.GenerateBenchmark("tiny")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := dummyfill.Score(lay, &dummyfill.Solution{}, coeffs, dummyfill.Measured{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("variation score without any fill: %.1f\n", rep.Variation)
	fmt.Printf("runtime score (not measured): %.1f\n", rep.Runtime)
	// Output:
	// variation score without any fill: 0.0
	// runtime score (not measured): 1.0
}

// ExampleGDSSize shows the file-size metric: the solution GDSII cost is
// 64 bytes per rectangular fill plus a fixed header.
func ExampleGDSSize() {
	lay := &dummyfill.Layout{
		Name:   "sz",
		Die:    dummyfill.R(0, 0, 100, 100),
		Window: 100,
		Rules:  dummyfill.Rules{MinWidth: 8, MinSpace: 8, MinArea: 64},
		Layers: []*dummyfill.Layer{{}},
	}
	one := &dummyfill.Solution{Fills: []dummyfill.Fill{
		{Layer: 0, Rect: dummyfill.R(0, 0, 10, 10)},
	}}
	two := &dummyfill.Solution{Fills: []dummyfill.Fill{
		{Layer: 0, Rect: dummyfill.R(0, 0, 10, 10)},
		{Layer: 0, Rect: dummyfill.R(20, 0, 30, 10)},
	}}
	s1, _ := dummyfill.GDSSize(lay, one)
	s2, _ := dummyfill.GDSSize(lay, two)
	fmt.Println("bytes per additional fill:", s2-s1)
	// Output:
	// bytes per additional fill: 64
}
