// Benchmark harness regenerating the paper's tables and figures (see
// DESIGN.md §4 for the experiment index):
//
//	BenchmarkTable2_*       — benchmark statistics (Table 2)
//	BenchmarkTable3_*       — method comparison (Table 3); custom metrics
//	                          quality/score/fills are attached per run
//	BenchmarkFig6_*         — the dual min-cost-flow worked example
//	BenchmarkAblation_*     — design-choice studies: dual MCF vs. dense
//	                          simplex, SSP vs. network simplex, λ sweep,
//	                          window-size sweep
//
// Run `go test -bench=. -benchmem` (design m takes minutes per pass), or
// restrict with e.g. `-bench 'Table3/s'`.
package dummyfill_test

import (
	"fmt"
	"math/rand"
	"testing"

	dummyfill "dummyfill"
	"dummyfill/internal/dlp"
	"dummyfill/internal/lps"
	"dummyfill/internal/mcf"
	"dummyfill/internal/synth"
)

// BenchmarkTable2_Statistics regenerates the benchmark-statistics table:
// design generation + coefficient calibration for each design.
func BenchmarkTable2_Statistics(b *testing.B) {
	for _, name := range []string{"s", "b", "m"} {
		b.Run(name, func(b *testing.B) {
			skipLargeInShort(b, name)
			for i := 0; i < b.N; i++ {
				lay, coeffs, err := dummyfill.GenerateBenchmark(name)
				if err != nil {
					b.Fatal(err)
				}
				if coeffs.BetaOverlay <= 0 {
					b.Fatal("calibration failed")
				}
				b.ReportMetric(float64(lay.NumShapes()), "shapes")
			}
		})
	}
}

// BenchmarkTable3_Comparison regenerates the method-comparison table: one
// sub-benchmark per (design, method) with quality/score/fills attached.
func BenchmarkTable3_Comparison(b *testing.B) {
	for _, name := range []string{"s", "b", "m"} {
		if testing.Short() && name == "m" {
			continue // skip before the minutes-long generation/calibration
		}
		lay, coeffs, err := dummyfill.GenerateBenchmark(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range dummyfill.AllMethods(dummyfill.DefaultOptions()) {
			b.Run(name+"/"+m.Name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rep, sol, err := dummyfill.RunMethod(m, lay, coeffs)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(rep.Quality, "quality")
					b.ReportMetric(rep.Total, "score")
					b.ReportMetric(float64(len(sol.Fills)), "fills")
				}
			})
		}
	}
}

// BenchmarkFig6_DualMCF solves the paper's worked example (min x1+2x2+3x3+
// 4x4, x1−x2≥5, x4−x3≥6, 0≤x≤10 → x = 5,0,0,6) through both min-cost-flow
// solvers.
func BenchmarkFig6_DualMCF(b *testing.B) {
	build := func() *dlp.Problem {
		p := dlp.NewProblem(4, 10)
		p.C = []int64{1, 2, 3, 4}
		p.AddConstraint(0, 1, 5)
		p.AddConstraint(3, 2, 6)
		return p
	}
	for _, s := range []struct {
		name   string
		solver dlp.Solver
	}{{"SSP", dlp.SSP}, {"NetworkSimplex", dlp.NetworkSimplex}} {
		b.Run(s.name, func(b *testing.B) {
			p := build()
			for i := 0; i < b.N; i++ {
				x, obj, err := p.SolveWith(s.solver)
				if err != nil {
					b.Fatal(err)
				}
				if obj != 29 || x[0] != 5 {
					b.Fatalf("wrong solution: %v obj %d", x, obj)
				}
			}
		})
	}
}

// skipLargeInShort skips the minutes-long design "m" passes under
// `go test -short` so CI stays fast.
func skipLargeInShort(b *testing.B, design string) {
	b.Helper()
	if testing.Short() && design == "m" {
		b.Skip("design m skipped in -short mode")
	}
}

// sizingLP builds a difference-constraint LP shaped like one per-window
// sizing pass: n fills in a row, spacing chains plus width bounds.
func sizingLP(n int) *dlp.Problem {
	p := dlp.NewProblem(2*n, 0)
	for i := 0; i < n; i++ {
		lo := int64(i * 110)
		hi := lo + 100
		p.Lo[2*i], p.Hi[2*i] = lo, hi-8
		p.Lo[2*i+1], p.Hi[2*i+1] = lo+8, hi
		p.C[2*i+1] = int64(50 + i%17)
		p.C[2*i] = -p.C[2*i+1]
		p.AddConstraint(2*i+1, 2*i, 8) // min width
		if i > 0 {
			p.AddConstraint(2*i, 2*(i-1)+1, 10) // spacing to the left fill
		}
	}
	return p
}

// BenchmarkAblation_MCFvsSimplex is the paper's §3.3.3 claim: the dual
// min-cost-flow formulation beats a general LP solver on the relaxed
// sizing problem (whose constraint matrix is totally unimodular, so the
// LP/ILP optima coincide).
func BenchmarkAblation_MCFvsSimplex(b *testing.B) {
	for _, n := range []int{25, 50, 100, 200} {
		p := sizingLP(n)
		b.Run(fmt.Sprintf("DualMCF/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := p.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Simplex/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lp := lps.NewProblem()
				for v := 0; v < p.N(); v++ {
					lp.AddVar(float64(p.C[v]), float64(p.Lo[v]), float64(p.Hi[v]))
				}
				for _, c := range p.Cons {
					lp.AddConstraint(map[int]float64{c.I: 1, c.J: -1}, lps.GE, float64(c.B))
				}
				if _, err := lp.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_SSPvsNetworkSimplex compares the two min-cost-flow
// solvers on random balanced instances.
func BenchmarkAblation_SSPvsNetworkSimplex(b *testing.B) {
	build := func(n, m int) *mcf.Graph {
		rng := rand.New(rand.NewSource(9))
		g := mcf.NewGraph(n)
		perm := rng.Perm(n)
		for i := 0; i+1 < n; i++ {
			g.AddArc(perm[i], perm[i+1], 1000, int64(rng.Intn(20)))
			g.AddArc(perm[i+1], perm[i], 1000, int64(rng.Intn(20)))
		}
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddArc(u, v, int64(1+rng.Intn(50)), int64(rng.Intn(30)))
			}
		}
		var tot int64
		for i := 0; i < n-1; i++ {
			s := int64(rng.Intn(11) - 5)
			g.SetSupply(i, s)
			tot += s
		}
		g.SetSupply(n-1, -tot)
		return g
	}
	for _, sz := range []struct{ n, m int }{{100, 400}, {400, 1600}} {
		g := build(sz.n, sz.m)
		b.Run(fmt.Sprintf("SSP/n=%d", sz.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := g.SolveSSP(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("NetworkSimplex/n=%d", sz.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := g.SolveNetworkSimplex(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Lambda sweeps the candidate overfill factor λ (Alg. 1)
// on design s, attaching the resulting quality.
func BenchmarkAblation_Lambda(b *testing.B) {
	lay, coeffs, err := dummyfill.GenerateBenchmark("s")
	if err != nil {
		b.Fatal(err)
	}
	for _, lambda := range []float64{1.0, 1.15, 1.5, 2.0} {
		b.Run(fmt.Sprintf("lambda=%.2f", lambda), func(b *testing.B) {
			opts := dummyfill.DefaultOptions()
			opts.Lambda = lambda
			for i := 0; i < b.N; i++ {
				rep, sol, err := dummyfill.RunMethod(dummyfill.Ours(opts), lay, coeffs)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Quality, "quality")
				b.ReportMetric(float64(len(sol.Fills)), "fills")
			}
		})
	}
}

// BenchmarkAblation_WindowSize sweeps the density-analysis window size on
// the tiny design (runtime vs. uniformity resolution trade-off).
func BenchmarkAblation_WindowSize(b *testing.B) {
	sp := synth.DesignTiny()
	for _, win := range []int64{250, 500, 1000} {
		b.Run(fmt.Sprintf("w=%d", win), func(b *testing.B) {
			lay, err := synth.Generate(sp)
			if err != nil {
				b.Fatal(err)
			}
			lay.Window = win
			for i := 0; i < b.N; i++ {
				res, err := dummyfill.Insert(lay, dummyfill.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(res.Solution.Fills)), "fills")
			}
		})
	}
}

// BenchmarkFileFormat_GDSvsOASIS compares the solution encoding cost of
// the two interchange formats the paper names, per method — showing that
// shape count dominates GDSII size while OASIS modal compression flattens
// the gap (the "file size" discussion of §1 and §4).
func BenchmarkFileFormat_GDSvsOASIS(b *testing.B) {
	lay, _, err := dummyfill.GenerateBenchmark("s")
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range dummyfill.AllMethods(dummyfill.DefaultOptions()) {
		sol, err := m.Run(lay)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := dummyfill.GDSSize(lay, sol)
				if err != nil {
					b.Fatal(err)
				}
				o, err := dummyfill.OASISSize(lay, sol)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(g), "gds_bytes")
				b.ReportMetric(float64(o), "oasis_bytes")
				b.ReportMetric(float64(len(sol.Fills)), "fills")
			}
		})
	}
}

// BenchmarkAblation_Eta sweeps the overlay weight η in the sizing
// objective (Eqn. 9a) on design s, attaching overlay score and quality.
func BenchmarkAblation_Eta(b *testing.B) {
	lay, coeffs, err := dummyfill.GenerateBenchmark("s")
	if err != nil {
		b.Fatal(err)
	}
	for _, eta := range []int64{0, 1, 4, 16} {
		b.Run(fmt.Sprintf("eta=%d", eta), func(b *testing.B) {
			opts := dummyfill.DefaultOptions()
			opts.Eta = eta
			for i := 0; i < b.N; i++ {
				rep, _, err := dummyfill.RunMethod(dummyfill.Ours(opts), lay, coeffs)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Overlay, "overlay")
				b.ReportMetric(rep.Quality, "quality")
			}
		})
	}
}

// BenchmarkCMP_PlanarityImprovement quantifies the paper's motivation:
// worst-layer post-CMP height range before vs. after fill.
func BenchmarkCMP_PlanarityImprovement(b *testing.B) {
	lay, _, err := dummyfill.GenerateBenchmark("s")
	if err != nil {
		b.Fatal(err)
	}
	params := dummyfill.DefaultCMPParams()
	for i := 0; i < b.N; i++ {
		before, err := dummyfill.SimulateCMP(lay, nil, params)
		if err != nil {
			b.Fatal(err)
		}
		res, err := dummyfill.Insert(lay, dummyfill.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		after, err := dummyfill.SimulateCMP(lay, &res.Solution, params)
		if err != nil {
			b.Fatal(err)
		}
		var wb, wa float64
		for li := range before {
			if before[li].Range > wb {
				wb = before[li].Range
			}
			if after[li].Range > wa {
				wa = after[li].Range
			}
		}
		b.ReportMetric(wb/wa, "improvement")
	}
}

// BenchmarkAblation_Solver runs the full engine with each LP backend —
// the end-to-end version of the §3.3.3 speedup claim.
func BenchmarkAblation_Solver(b *testing.B) {
	lay, _, err := dummyfill.GenerateBenchmark("tiny")
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []struct {
		name   string
		solver dlp.PSolver // nil keeps the default warm-started factory
	}{
		{"WarmSSP", nil},
		{"SSP", dlp.ViaSSP},
		{"NetworkSimplex", dlp.ViaNetworkSimplex},
		{"Simplex", dlp.ViaSimplexLP},
	} {
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			opts := dummyfill.DefaultOptions()
			if s.solver != nil {
				opts.Solver = s.solver
			}
			for i := 0; i < b.N; i++ {
				if _, err := dummyfill.Insert(lay, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
