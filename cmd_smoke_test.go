package dummyfill_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one cmd/ binary into a shared temp dir (built once
// per test binary).
func buildTool(t *testing.T, name string) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = t.TempDir()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// TestCommandPipeline drives the real binaries end to end:
// layoutgen → fillgen → evalscore → gdscat on the tiny design.
func TestCommandPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	layoutgen := buildTool(t, "layoutgen")
	fillgen := buildTool(t, "fillgen")
	evalscore := buildTool(t, "evalscore")
	gdscat := buildTool(t, "gdscat")

	gds := filepath.Join(dir, "tiny.gds")
	out := run(t, layoutgen, "-design", "tiny", "-stats", "-o", gds)
	if !strings.Contains(out, "design tiny") || !strings.Contains(out, "wrote") {
		t.Fatalf("layoutgen output: %s", out)
	}

	fillGds := filepath.Join(dir, "tiny_fill.gds")
	out = run(t, fillgen, "-design", "tiny", "-o", fillGds)
	if !strings.Contains(out, "method ours") {
		t.Fatalf("fillgen output: %s", out)
	}
	if strings.Contains(out, "WARNING") {
		t.Fatalf("fillgen reported DRC trouble: %s", out)
	}

	out = run(t, evalscore, "-design", "tiny", "-solution", fillGds)
	if !strings.Contains(out, "DRC: clean") {
		t.Fatalf("evalscore output: %s", out)
	}
	if !strings.Contains(out, "quality=") {
		t.Fatalf("evalscore missing scores: %s", out)
	}

	out = run(t, gdscat, "-layers", fillGds)
	if !strings.Contains(out, "fill:") {
		t.Fatalf("gdscat output: %s", out)
	}

	// fillgen -in path: feed the generated wires file back in.
	out = run(t, fillgen, "-in", gds, "-o", filepath.Join(dir, "ext_fill.gds"))
	if !strings.Contains(out, "method ours") {
		t.Fatalf("fillgen -in output: %s", out)
	}
}

// TestReproFig6Command checks the repro tool's figure path.
func TestReproFig6Command(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	repro := buildTool(t, "repro")
	out := run(t, repro, "-exp", "fig6")
	if !strings.Contains(out, "[5 0 0 6]") {
		t.Fatalf("fig6 output wrong: %s", out)
	}
}

// TestFilllintCommand drives the analysis gate the way CI does: the
// repo's own tree must be clean under every analyzer, -list must name
// them all, and -json must emit a parseable (empty) findings array.
func TestFilllintCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and type-checks the module; skipped in -short mode")
	}
	lint := buildTool(t, "filllint")
	root := repoRoot(t)

	runAt := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(lint, args...)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("filllint %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	out := runAt("-list")
	for _, name := range []string{"nodeterm", "ctxflow", "poolpair", "geomcast", "nopanic"} {
		if !strings.Contains(out, name) {
			t.Fatalf("filllint -list missing %s:\n%s", name, out)
		}
	}

	if out = runAt("./..."); strings.TrimSpace(out) != "" {
		t.Fatalf("filllint found violations in the tree:\n%s", out)
	}

	out = runAt("-json", "-analyzers", "nodeterm,nopanic", "./internal/mcf", "./internal/lps/...")
	var findings []map[string]any
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("filllint -json output not JSON: %v\n%s", err, out)
	}
	if len(findings) != 0 {
		t.Fatalf("unexpected findings: %v", findings)
	}
}

// TestLayout2SVGCommand checks the renderer tool.
func TestLayout2SVGCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	tool := buildTool(t, "layout2svg")
	dir := t.TempDir()
	svg := filepath.Join(dir, "t.svg")
	run(t, tool, "-design", "tiny", "-o", svg)
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatalf("not an SVG: %.60s", data)
	}
}
