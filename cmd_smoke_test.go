package dummyfill_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildTool compiles one cmd/ binary into a shared temp dir (built once
// per test binary).
func buildTool(t *testing.T, name string) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = t.TempDir()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// TestCommandPipeline drives the real binaries end to end:
// layoutgen → fillgen → evalscore → gdscat on the tiny design.
func TestCommandPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	layoutgen := buildTool(t, "layoutgen")
	fillgen := buildTool(t, "fillgen")
	evalscore := buildTool(t, "evalscore")
	gdscat := buildTool(t, "gdscat")

	gds := filepath.Join(dir, "tiny.gds")
	out := run(t, layoutgen, "-design", "tiny", "-stats", "-o", gds)
	if !strings.Contains(out, "design tiny") || !strings.Contains(out, "wrote") {
		t.Fatalf("layoutgen output: %s", out)
	}

	fillGds := filepath.Join(dir, "tiny_fill.gds")
	out = run(t, fillgen, "-design", "tiny", "-o", fillGds)
	if !strings.Contains(out, "method ours") {
		t.Fatalf("fillgen output: %s", out)
	}
	if strings.Contains(out, "WARNING") {
		t.Fatalf("fillgen reported DRC trouble: %s", out)
	}

	out = run(t, evalscore, "-design", "tiny", "-solution", fillGds)
	if !strings.Contains(out, "DRC: clean") {
		t.Fatalf("evalscore output: %s", out)
	}
	if !strings.Contains(out, "quality=") {
		t.Fatalf("evalscore missing scores: %s", out)
	}

	out = run(t, gdscat, "-layers", fillGds)
	if !strings.Contains(out, "fill:") {
		t.Fatalf("gdscat output: %s", out)
	}

	// fillgen -in path: feed the generated wires file back in.
	out = run(t, fillgen, "-in", gds, "-o", filepath.Join(dir, "ext_fill.gds"))
	if !strings.Contains(out, "method ours") {
		t.Fatalf("fillgen -in output: %s", out)
	}
}

// TestFillservedSmoke drives the serving daemon the way an operator
// would: start it, submit a layout over HTTP, check the response is
// byte-identical to the offline `fillgen -stream` output for the same
// input, scrape /metrics, and shut down cleanly with SIGTERM.
func TestFillservedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	layoutgen := buildTool(t, "layoutgen")
	fillgen := buildTool(t, "fillgen")
	fillserved := buildTool(t, "fillserved")

	gds := filepath.Join(dir, "tiny.gds")
	run(t, layoutgen, "-design", "tiny", "-o", gds)
	refGds := filepath.Join(dir, "ref_fill.gds")
	run(t, fillgen, "-in", gds, "-stream", "-workers", "2", "-o", refGds)
	ref, err := os.ReadFile(refGds)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := os.ReadFile(gds)
	if err != nil {
		t.Fatal(err)
	}

	// Reserve a port, then hand it to the daemon.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	cmd := exec.Command(fillserved, "-addr", addr, "-drain", "10s")
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	waitUp := func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}
	deadline := time.Now().Add(10 * time.Second)
	for !waitUp() {
		if time.Now().After(deadline) {
			t.Fatalf("fillserved never came up; logs:\n%s", logs.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	post := func() *http.Response {
		t.Helper()
		resp, err := http.Post(base+"/fill?format=gds&oformat=gds&workers=2", "application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			t.Fatalf("POST /fill: %v; logs:\n%s", err, logs.String())
		}
		return resp
	}
	resp := post()
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /fill: status %d, body %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, ref) {
		t.Fatalf("served response (%d bytes) differs from offline fillgen -stream output (%d bytes)",
			len(body), len(ref))
	}

	// Same payload again: the layout cache answers.
	resp = post()
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Fill-Cache"); got != "hit" {
		t.Fatalf("repeat submission: X-Fill-Cache = %q, want hit", got)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), `fillserved_jobs_total{status="ok"} 2`) {
		t.Fatalf("/metrics missing job counts:\n%s", mbody)
	}

	// SIGTERM: the daemon must drain and exit zero.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("fillserved exit: %v; logs:\n%s", err, logs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("fillserved did not exit after SIGTERM; logs:\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "drained cleanly") {
		t.Fatalf("missing clean-drain log line; logs:\n%s", logs.String())
	}
}

// TestFillgenCacheCommand drives the incremental re-fill surface the
// way an ECO loop would: a cold cached run, a warm run that must replay
// every window and emit identical bytes, and a -diff self-compare that
// must report zero invalidated windows.
func TestFillgenCacheCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	layoutgen := buildTool(t, "layoutgen")
	fillgen := buildTool(t, "fillgen")

	gds := filepath.Join(dir, "tiny.gds")
	run(t, layoutgen, "-design", "tiny", "-o", gds)
	cacheDir := filepath.Join(dir, "cache")

	coldGds := filepath.Join(dir, "cold.gds")
	out := run(t, fillgen, "-in", gds, "-stream", "-cache", cacheDir, "-o", coldGds)
	if !strings.Contains(out, "cache: hits=0") {
		t.Fatalf("cold run should start from an empty cache: %s", out)
	}

	warmGds := filepath.Join(dir, "warm.gds")
	out = run(t, fillgen, "-in", gds, "-stream", "-cache", cacheDir, "-o", warmGds)
	if !strings.Contains(out, "misses=0") || strings.Contains(out, "cache: hits=0") {
		t.Fatalf("warm run should replay every window: %s", out)
	}
	cold, err := os.ReadFile(coldGds)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := os.ReadFile(warmGds)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm cached output (%d bytes) differs from cold (%d bytes)", len(warm), len(cold))
	}

	out = run(t, fillgen, "-in", gds, "-diff", gds)
	if !strings.Contains(out, "0 invalidated") {
		t.Fatalf("-diff against the same layout should invalidate nothing: %s", out)
	}
}

// TestReproFig6Command checks the repro tool's figure path.
func TestReproFig6Command(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	repro := buildTool(t, "repro")
	out := run(t, repro, "-exp", "fig6")
	if !strings.Contains(out, "[5 0 0 6]") {
		t.Fatalf("fig6 output wrong: %s", out)
	}
}

// TestFilllintCommand drives the analysis gate the way CI does: the
// repo's own tree must be clean under every analyzer, -list must name
// them all, and -json must emit a parseable (empty) findings array.
func TestFilllintCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and type-checks the module; skipped in -short mode")
	}
	lint := buildTool(t, "filllint")
	root := repoRoot(t)

	// Findings go to stdout; the stats accounting line goes to stderr.
	runAt := func(args ...string) (stdout, stderr string) {
		t.Helper()
		cmd := exec.Command(lint, args...)
		cmd.Dir = root
		var out, errb strings.Builder
		cmd.Stdout = &out
		cmd.Stderr = &errb
		if err := cmd.Run(); err != nil {
			t.Fatalf("filllint %v: %v\n%s%s", args, err, out.String(), errb.String())
		}
		return out.String(), errb.String()
	}

	out, _ := runAt("-list")
	for _, name := range []string{"nodeterm", "ctxflow", "poolpair", "geomcast", "nopanic",
		"lockguard", "goleak", "errsink", "chanbound"} {
		if !strings.Contains(out, name) {
			t.Fatalf("filllint -list missing %s:\n%s", name, out)
		}
	}

	out, stats := runAt("./...")
	if strings.TrimSpace(out) != "" {
		t.Fatalf("filllint found violations in the tree:\n%s", out)
	}
	if !strings.Contains(stats, "findings=0") {
		t.Fatalf("filllint stats line missing:\n%s", stats)
	}

	out, _ = runAt("-json", "-analyzers", "nodeterm,nopanic", "./internal/mcf", "./internal/lps/...")
	var findings []map[string]any
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("filllint -json output not JSON: %v\n%s", err, out)
	}
	if len(findings) != 0 {
		t.Fatalf("unexpected findings: %v", findings)
	}
}

// TestLayout2SVGCommand checks the renderer tool.
func TestLayout2SVGCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	tool := buildTool(t, "layout2svg")
	dir := t.TempDir()
	svg := filepath.Join(dir, "t.svg")
	run(t, tool, "-design", "tiny", "-o", svg)
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatalf("not an SVG: %.60s", data)
	}
}
