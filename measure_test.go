package dummyfill

import (
	"errors"
	"testing"
	"time"
)

func TestMeasureTimesAndSucceeds(t *testing.T) {
	sec, mem, err := measure(func() error {
		time.Sleep(30 * time.Millisecond)
		// Allocate something observable.
		buf := make([]byte, 16<<20)
		for i := range buf {
			buf[i] = byte(i)
		}
		_ = buf
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sec < 0.03 {
		t.Fatalf("measured %.3fs for a 30ms function", sec)
	}
	if mem <= 0 {
		t.Fatalf("memory measurement %v MiB", mem)
	}
}

func TestMeasurePropagatesError(t *testing.T) {
	want := errors.New("boom")
	_, _, err := measure(func() error { return want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
}

func TestMeasureFastFunction(t *testing.T) {
	// A function faster than the sampler period must still measure.
	sec, mem, err := measure(func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if sec < 0 || mem <= 0 {
		t.Fatalf("sec=%v mem=%v", sec, mem)
	}
}
