package dummyfill_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"sort"
	"testing"

	dummyfill "dummyfill"
	"dummyfill/internal/synth"
)

// TestInsertByteIdenticalGDS runs the full flow twice on the same layout
// with parallel workers and requires the serialized GDSII streams to be
// byte-identical — the engine's determinism contract all the way to the
// output file.
func TestInsertByteIdenticalGDS(t *testing.T) {
	lay, _, err := dummyfill.GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	opts := dummyfill.DefaultOptions()
	opts.Workers = 4
	run := func() []byte {
		res, err := dummyfill.Insert(lay, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := dummyfill.WriteGDS(&buf, lay, &res.Solution); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		t.Fatalf("GDSII streams differ: %d vs %d bytes, first divergence at offset %d", len(a), len(b), i)
	}
}

// goldenGDS pins the SHA-256 of the full-flow GDSII output per benchmark
// design. These hashes were recorded before the streaming-pipeline
// restructure; any drift means the engine's output changed, which this
// repository treats as a regression unless the hashes are deliberately
// re-recorded alongside the change that justifies it.
var goldenGDS = map[string]string{
	"tiny": "80d97afb0c4704580c5e606bc5a009ab274f07569b6ca7e23218530279373bbc",
	"s":    "431897dfbcb07ba08181c582c1703054728e17655da2ed5d570f281551fa9af5",
	"b":    "32d77c35e07ad8a867ba8d4de11eb9ab5bc380d4398286b064282c57846087d4",
	"m":    "b1f7bc39a20d5dda850847c6d71cea8175548dfb3ec42952d9530ad4aff6c1f2",
}

func gdsHash(t *testing.T, design string, workers int) string {
	t.Helper()
	return gdsHashSharded(t, design, workers, 0)
}

func gdsHashSharded(t *testing.T, design string, workers, shards int) string {
	t.Helper()
	lay, _, err := dummyfill.GenerateBenchmark(design)
	if err != nil {
		t.Fatal(err)
	}
	opts := dummyfill.DefaultOptions()
	opts.Workers = workers
	opts.Shards = shards
	res, err := dummyfill.Insert(lay, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dummyfill.WriteGDS(&buf, lay, &res.Solution); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// TestGoldenGDSHashes checks the end-to-end output against the pinned
// hashes across worker counts. The small designs run always; the larger
// ones (several seconds each) are skipped under -short so the CI smoke
// stays fast.
func TestGoldenGDSHashes(t *testing.T) {
	workerSets := map[string][]int{
		"tiny": {1, 4, runtime.NumCPU()},
		"s":    {1, 4, runtime.NumCPU()},
		"b":    {4},
		"m":    {4},
	}
	for _, design := range []string{"tiny", "s", "b", "m"} {
		design := design
		t.Run(design, func(t *testing.T) {
			if testing.Short() && (design == "b" || design == "m") {
				t.Skip("large design skipped under -short")
			}
			for _, workers := range workerSets[design] {
				if got := gdsHash(t, design, workers); got != goldenGDS[design] {
					t.Fatalf("workers=%d: GDS hash %s, want %s", workers, got, goldenGDS[design])
				}
			}
		})
	}
}

// TestGoldenGDSHashesSharded checks that row-band sharding never changes
// the output: every (shards, workers) pair must reproduce the same pinned
// golden hashes as the unsharded run. Sharding redistributes planning
// assembly and fill emission across shard-local schedules; the reconciled
// global targets and the per-window sizing are byte-for-byte unaffected.
func TestGoldenGDSHashesSharded(t *testing.T) {
	shardSet := []int{1, 2, 4, runtime.NumCPU()}
	workerSet := []int{1, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		// Force a genuinely parallel schedule even on single-core hosts.
		workerSet = []int{1, 4}
	}
	for _, design := range []string{"tiny", "s"} {
		design := design
		t.Run(design, func(t *testing.T) {
			for _, shards := range shardSet {
				for _, workers := range workerSet {
					if got := gdsHashSharded(t, design, workers, shards); got != goldenGDS[design] {
						t.Fatalf("shards=%d workers=%d: GDS hash %s, want %s",
							shards, workers, got, goldenGDS[design])
					}
				}
			}
		})
	}
}

// TestInsertStreamShardedDeterministic checks the streaming path under
// sharding: every (shards, workers) combination must produce a stream
// byte-identical to the unsharded single-worker reference — the shard
// emitter's head-ordering hands the sink the exact same strictly
// increasing window sequence regardless of shard or worker topology.
func TestInsertStreamShardedDeterministic(t *testing.T) {
	lay, _, err := dummyfill.GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	stream := func(workers, shards int) []byte {
		opts := dummyfill.DefaultOptions()
		opts.Workers = workers
		opts.Shards = shards
		var buf bytes.Buffer
		if _, err := dummyfill.InsertStreamGDS(context.Background(), &buf, lay, opts); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := stream(1, 1)
	for _, shards := range []int{1, 2, 4, runtime.NumCPU()} {
		for _, workers := range []int{1, 2, 4, 7} {
			if got := stream(workers, shards); !bytes.Equal(ref, got) {
				t.Fatalf("streamed GDS differs at shards=%d workers=%d", shards, workers)
			}
		}
	}
}

// TestInsertStreamGDSDeterministic checks the bounded-memory streaming
// writer produces byte-identical GDSII across worker counts, and that the
// streamed fill set equals the barrier path's (streaming changes only the
// emit order — grouped by window instead of globally sorted — never the
// geometry).
func TestInsertStreamGDSDeterministic(t *testing.T) {
	lay, _, err := dummyfill.GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	stream := func(workers int) []byte {
		opts := dummyfill.DefaultOptions()
		opts.Workers = workers
		var buf bytes.Buffer
		if _, err := dummyfill.InsertStreamGDS(context.Background(), &buf, lay, opts); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := stream(1)
	for _, workers := range []int{4, runtime.NumCPU()} {
		if got := stream(workers); !bytes.Equal(ref, got) {
			t.Fatalf("streamed GDS differs between workers=1 and workers=%d", workers)
		}
	}

	// Fill-set equivalence with the barrier path.
	opts := dummyfill.DefaultOptions()
	opts.Workers = 4
	var streamed []dummyfill.Fill
	if _, err := dummyfill.InsertStream(context.Background(), lay, opts, dummyfill.FillSinkFunc(func(_ int, fs []dummyfill.Fill) error {
		streamed = append(streamed, fs...)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	res, err := dummyfill.Insert(lay, opts)
	if err != nil {
		t.Fatal(err)
	}
	canon := func(fs []dummyfill.Fill) []dummyfill.Fill {
		out := append([]dummyfill.Fill(nil), fs...)
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.Layer != b.Layer {
				return a.Layer < b.Layer
			}
			if a.Rect.XL != b.Rect.XL {
				return a.Rect.XL < b.Rect.XL
			}
			if a.Rect.YL != b.Rect.YL {
				return a.Rect.YL < b.Rect.YL
			}
			if a.Rect.XH != b.Rect.XH {
				return a.Rect.XH < b.Rect.XH
			}
			return a.Rect.YH < b.Rect.YH
		})
		return out
	}
	a, b := canon(streamed), canon(res.Solution.Fills)
	if len(a) != len(b) {
		t.Fatalf("streamed %d fills, barrier %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fill %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestGoldenGDSHashesCached adds the fill-cache row to the determinism
// matrix: a cold cache-populating run, warm replaying runs across
// worker/shard topologies, and a partially-invalidated run on an
// ECO-perturbed layout must all reproduce the exact byte stream the
// uncached flow produces — the cache may change wall-clock, never
// geometry.
func TestGoldenGDSHashesCached(t *testing.T) {
	hashWith := func(t *testing.T, lay *dummyfill.Layout, cache *dummyfill.FillCache, workers, shards int) string {
		t.Helper()
		opts := dummyfill.DefaultOptions()
		opts.Workers = workers
		opts.Shards = shards
		opts.Cache = cache
		res, err := dummyfill.Insert(lay, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := dummyfill.WriteGDS(&buf, lay, &res.Solution); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(buf.Bytes())
		return hex.EncodeToString(sum[:])
	}
	for _, design := range []string{"tiny", "s"} {
		design := design
		t.Run(design, func(t *testing.T) {
			if testing.Short() && design == "s" {
				t.Skip("larger design skipped under -short")
			}
			cache, err := dummyfill.OpenFillCache(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			lay, _, err := dummyfill.GenerateBenchmark(design)
			if err != nil {
				t.Fatal(err)
			}
			if got := hashWith(t, lay, cache, 1, 1); got != goldenGDS[design] {
				t.Fatalf("cold cached run: GDS hash %s, want %s", got, goldenGDS[design])
			}
			for _, topo := range [][2]int{{1, 1}, {4, 2}, {2, 4}} {
				if got := hashWith(t, lay, cache, topo[0], topo[1]); got != goldenGDS[design] {
					t.Fatalf("warm workers=%d shards=%d: GDS hash %s, want %s",
						topo[0], topo[1], got, goldenGDS[design])
				}
			}

			// Partial invalidation: a perturbed layout served mostly from
			// the cache must byte-match the same layout computed uncached.
			eco, moved, err := synth.PerturbECO(lay, 0.05, 11)
			if err != nil {
				t.Fatal(err)
			}
			if moved == 0 {
				t.Fatal("perturbation moved no wires; partial-invalidation case is vacuous")
			}
			want := hashWith(t, eco, nil, 4, 2)
			if got := hashWith(t, eco, cache, 4, 2); got != want {
				t.Fatalf("partially-invalidated run: GDS hash %s, want uncached %s", got, want)
			}
		})
	}
}
