package dummyfill_test

import (
	"bytes"
	"testing"

	dummyfill "dummyfill"
)

// TestInsertByteIdenticalGDS runs the full flow twice on the same layout
// with parallel workers and requires the serialized GDSII streams to be
// byte-identical — the engine's determinism contract all the way to the
// output file.
func TestInsertByteIdenticalGDS(t *testing.T) {
	lay, _, err := dummyfill.GenerateBenchmark("tiny")
	if err != nil {
		t.Fatal(err)
	}
	opts := dummyfill.DefaultOptions()
	opts.Workers = 4
	run := func() []byte {
		res, err := dummyfill.Insert(lay, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := dummyfill.WriteGDS(&buf, lay, &res.Solution); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		t.Fatalf("GDSII streams differ: %d vs %d bytes, first divergence at offset %d", len(a), len(b), i)
	}
}
