package dummyfill_test

import (
	"bytes"
	"context"
	"testing"

	dummyfill "dummyfill"
)

// goldenSite pins the SHA-256 of site-mode (filler-cell placement)
// output on the "row" design at pad 1: the full GDSII deck from the
// synthetic layout, and the DEF deck streamed from the DEF-ingested
// round trip below. Site mode inherits the engine's byte-identical
// determinism contract, so every (workers, shards) topology must hit
// the same hash; drift is a regression unless re-recorded deliberately.
const (
	goldenSiteGDS = "49dba3b4aac593d022e6bde6a5e25b7777e46cea3db0c037146a43f9f4a8ce16"
	goldenSiteDEF = "733d71066bff51fc93a8ecc6ce7ac997a324c9434bffb0eea0edac3c4db94ae9"
)

func siteOptions(workers, shards int) dummyfill.Options {
	opts := dummyfill.DefaultOptions()
	opts.Mode = dummyfill.ModeSite
	opts.SitePad = 1
	opts.Workers = workers
	opts.Shards = shards
	return opts
}

// TestGoldenSiteGDSHashesSharded is the site-mode analogue of the
// rect-mode golden hash tests: the full-flow GDSII output on the row
// design must match the pinned hash for every worker × shard topology,
// and the solution must be clean under both the geometric DRC and the
// site-placement DRC (lattice alignment, master widths, padding).
func TestGoldenSiteGDSHashesSharded(t *testing.T) {
	for _, ws := range []struct{ w, s int }{{1, 1}, {4, 1}, {2, 3}, {8, 4}} {
		lay, _, err := dummyfill.GenerateBenchmark("row")
		if err != nil {
			t.Fatal(err)
		}
		res, err := dummyfill.Insert(lay, siteOptions(ws.w, ws.s))
		if err != nil {
			t.Fatalf("workers=%d shards=%d: %v", ws.w, ws.s, err)
		}
		var buf bytes.Buffer
		if err := dummyfill.WriteGDS(&buf, lay, &res.Solution); err != nil {
			t.Fatal(err)
		}
		if got := sha(buf.Bytes()); got != goldenSiteGDS {
			t.Errorf("workers=%d shards=%d: GDS hash %s, want %s", ws.w, ws.s, got, goldenSiteGDS)
		}
		if vs := dummyfill.CheckDRC(lay, &res.Solution); len(vs) != 0 {
			t.Errorf("workers=%d shards=%d: %d DRC violations (first: %v)", ws.w, ws.s, len(vs), vs[0])
		}
		if vs := dummyfill.CheckSiteDRC(lay, &res.Solution, nil, 1); len(vs) != 0 {
			t.Errorf("workers=%d shards=%d: %d site DRC violations (first: %v)", ws.w, ws.s, len(vs), vs[0])
		}
	}
}

// TestSiteDEFRoundTripGolden drives the full DEF interchange loop:
// synthesize the row design, emit its wire deck as DEF, ingest it back
// through the sniffing reader (the derived lattice and synthesized
// rules, not the synthetic originals, drive the fill run), site-fill it,
// and stream the filled deck back out as DEF. The output must be
// byte-identical across topologies and match the pinned hash, and
// re-ingesting the filled deck must recover every wire and fill.
func TestSiteDEFRoundTripGolden(t *testing.T) {
	lay, _, err := dummyfill.GenerateBenchmark("row")
	if err != nil {
		t.Fatal(err)
	}
	var deck bytes.Buffer
	if err := dummyfill.WriteDEFLayout(&deck, lay, nil); err != nil {
		t.Fatal(err)
	}
	lay2, err := dummyfill.ReadLayout(bytes.NewReader(deck.Bytes()), dummyfill.IngestOptions{Window: lay.Window})
	if err != nil {
		t.Fatal(err)
	}
	if lay2.Sites == nil {
		t.Fatal("DEF ingest lost the site lattice")
	}
	if *lay2.Sites != *lay.Sites {
		t.Fatalf("ingested lattice %+v, want %+v", *lay2.Sites, *lay.Sites)
	}
	if got, want := len(lay2.Layers[0].Wires), len(lay.Layers[0].Wires); got != want {
		t.Fatalf("ingested %d wires, want %d", got, want)
	}

	for _, ws := range []struct{ w, s int }{{1, 1}, {4, 2}, {2, 4}} {
		var out bytes.Buffer
		if _, err := dummyfill.InsertStreamTo(context.Background(), &out, lay2, siteOptions(ws.w, ws.s), "def"); err != nil {
			t.Fatalf("workers=%d shards=%d: %v", ws.w, ws.s, err)
		}
		if got := sha(out.Bytes()); got != goldenSiteDEF {
			t.Errorf("workers=%d shards=%d: DEF hash %s, want %s", ws.w, ws.s, got, goldenSiteDEF)
		}
	}

	// Close the loop: the filled deck must re-read to wires + fills.
	res, err := dummyfill.Insert(lay2, siteOptions(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution.Fills) == 0 {
		t.Fatal("site mode placed no fills on the ingested layout")
	}
	var filled bytes.Buffer
	if err := dummyfill.WriteDEFLayout(&filled, lay2, &res.Solution); err != nil {
		t.Fatal(err)
	}
	lay3, err := dummyfill.ReadLayout(bytes.NewReader(filled.Bytes()),
		dummyfill.IngestOptions{Window: lay.Window, KeepFills: true})
	if err != nil {
		t.Fatal(err)
	}
	want := len(lay2.Layers[0].Wires) + len(res.Solution.Fills)
	if got := len(lay3.Layers[0].Wires); got != want {
		t.Fatalf("filled deck re-read %d shapes, want %d wires + %d fills = %d",
			got, len(lay2.Layers[0].Wires), len(res.Solution.Fills), want)
	}
}
