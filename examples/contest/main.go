// Contest: run the full ICCAD-2014-style comparison — our engine against
// the three baseline fillers — on one synthetic design and print a
// Table-3-like scoreboard. This is the programmatic equivalent of
// `cmd/repro -exp table3`.
package main

import (
	"flag"
	"fmt"
	"log"

	dummyfill "dummyfill"
)

func main() {
	design := flag.String("design", "tiny", "design name: s, b, m or tiny")
	flag.Parse()

	lay, coeffs, err := dummyfill.GenerateBenchmark(*design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s: %d wire shapes, %d layers\n\n", *design, lay.NumShapes(), len(lay.Layers))
	fmt.Printf("%-12s %-8s %-8s %-8s %-8s %-8s %-9s %-8s %-8s\n",
		"Method", "Overlay", "Var", "Line", "Outlier", "Size", "Quality", "Score", "#Fills")

	var bestQ float64
	var bestName string
	for _, m := range dummyfill.AllMethods(dummyfill.DefaultOptions()) {
		rep, sol, err := dummyfill.RunMethod(m, lay, coeffs)
		if err != nil {
			log.Fatalf("method %s: %v", m.Name, err)
		}
		if vs := dummyfill.CheckDRC(lay, sol); len(vs) != 0 {
			log.Fatalf("method %s produced %d DRC violations", m.Name, len(vs))
		}
		fmt.Printf("%-12s %-8.3f %-8.3f %-8.3f %-8.3f %-8.3f %-9.3f %-8.3f %-8d\n",
			m.Name, rep.Overlay, rep.Variation, rep.Line, rep.Outlier, rep.Size,
			rep.Quality, rep.Total, len(sol.Fills))
		if rep.Quality > bestQ {
			bestQ, bestName = rep.Quality, m.Name
		}
	}
	fmt.Printf("\nbest testcase quality: %s (%.3f)\n", bestName, bestQ)
}
