// Cmpsim: the physical motivation for dummy filling — simulate
// chemical-mechanical polishing over a design before and after fill
// insertion and compare the resulting surface planarity per layer.
package main

import (
	"flag"
	"fmt"
	"log"

	dummyfill "dummyfill"
)

func main() {
	design := flag.String("design", "tiny", "design name: s, b, m or tiny")
	flag.Parse()

	lay, _, err := dummyfill.GenerateBenchmark(*design)
	if err != nil {
		log.Fatal(err)
	}
	params := dummyfill.DefaultCMPParams()

	before, err := dummyfill.SimulateCMP(lay, nil, params)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dummyfill.Insert(lay, dummyfill.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	after, err := dummyfill.SimulateCMP(lay, &res.Solution, params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("post-CMP topography, design %s (%d fills inserted)\n\n", *design, len(res.Solution.Fills))
	fmt.Printf("%-7s %-24s %-24s\n", "", "height range (max-min)", "height σ")
	fmt.Printf("%-7s %-11s %-12s %-11s %-12s\n", "layer", "unfilled", "filled", "unfilled", "filled")
	for li := range before {
		fmt.Printf("%-7d %-11.1f %-12.1f %-11.2f %-12.2f\n",
			li, before[li].Range, after[li].Range, before[li].Sigma, after[li].Sigma)
	}

	var worstB, worstA float64
	for li := range before {
		if before[li].Range > worstB {
			worstB = before[li].Range
		}
		if after[li].Range > worstA {
			worstA = after[li].Range
		}
	}
	fmt.Printf("\nworst-layer height range: %.1f -> %.1f (%.1fx improvement)\n",
		worstB, worstA, worstB/worstA)
}
