// Densitymap: visualize (as ASCII) the window density distribution of a
// design before and after fill insertion, together with the three
// contest density metrics (variation, line hotspots, outlier hotspots).
// This is the density-analysis half of the flow, usable standalone.
package main

import (
	"flag"
	"fmt"
	"log"

	dummyfill "dummyfill"
)

func main() {
	design := flag.String("design", "tiny", "design name: s, b, m or tiny")
	layer := flag.Int("layer", 0, "layer to visualize")
	flag.Parse()

	lay, _, err := dummyfill.GenerateBenchmark(*design)
	if err != nil {
		log.Fatal(err)
	}
	before, err := dummyfill.Score(lay, &dummyfill.Solution{}, dummyfill.Coefficients{}, dummyfill.Measured{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dummyfill.Insert(lay, dummyfill.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	after, err := dummyfill.Score(lay, &res.Solution, dummyfill.Coefficients{}, dummyfill.Measured{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("design %s, layer %d of %d\n\n", *design, *layer, len(lay.Layers))
	fmt.Println("window density map before fill:")
	printMap(lay, &dummyfill.Solution{}, *layer)
	fmt.Println("\nwindow density map after fill:")
	printMap(lay, &res.Solution, *layer)

	fmt.Printf("\nmetrics (summed over layers):\n")
	fmt.Printf("  %-18s %-12s %-12s\n", "", "before", "after")
	fmt.Printf("  %-18s %-12.4f %-12.4f\n", "variation σ", before.Raw.SumSigma, after.Raw.SumSigma)
	fmt.Printf("  %-18s %-12.2f %-12.2f\n", "line hotspots", before.Raw.SumLine, after.Raw.SumLine)
	fmt.Printf("  %-18s %-12.4f %-12.4f\n", "outlier hotspots", before.Raw.SumOutlier, after.Raw.SumOutlier)
}

// printMap renders the per-window density of one layer as a digit grid
// (0–9 ≈ density 0.0–0.9+).
func printMap(lay *dummyfill.Layout, sol *dummyfill.Solution, layer int) {
	g, err := lay.Grid()
	if err != nil {
		log.Fatal(err)
	}
	perLayer := sol.PerLayer(len(lay.Layers))
	for j := g.NY - 1; j >= 0; j-- {
		fmt.Print("  ")
		for i := 0; i < g.NX; i++ {
			w := g.Window(i, j)
			var area int64
			for _, wr := range lay.Layers[layer].Wires {
				area += wr.Intersect(w).Area()
			}
			for _, f := range perLayer[layer] {
				area += f.Intersect(w).Area()
			}
			d := float64(area) / float64(w.Area())
			digit := int(d * 10)
			if digit > 9 {
				digit = 9
			}
			fmt.Printf("%d", digit)
		}
		fmt.Println()
	}
}
