// GDS IO: write a filled design to a GDSII stream, read it back, and
// verify the round trip — demonstrating the IO path the contest's
// file-size score is measured on.
package main

import (
	"bytes"
	"fmt"
	"log"

	dummyfill "dummyfill"
)

func main() {
	lay, _, err := dummyfill.GenerateBenchmark("tiny")
	if err != nil {
		log.Fatal(err)
	}
	res, err := dummyfill.Insert(lay, dummyfill.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	sol := &res.Solution

	// Full layout + fills in one stream.
	var buf bytes.Buffer
	if err := dummyfill.WriteGDS(&buf, lay, sol); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layout+fills GDSII: %d bytes\n", buf.Len())

	// The contest's file-size metric: the solution (fills-only) stream.
	solSize, err := dummyfill.GDSSize(lay, sol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solution-only GDSII: %d bytes for %d fills (%.1f bytes/fill)\n",
		solSize, len(sol.Fills), float64(solSize)/float64(len(sol.Fills)))

	// Round trip: every wire and fill must come back intact.
	wires, fills, err := dummyfill.ReadGDSShapes(&buf)
	if err != nil {
		log.Fatal(err)
	}
	var nw, nf int
	for _, rs := range wires {
		nw += len(rs)
	}
	for _, rs := range fills {
		nf += len(rs)
	}
	fmt.Printf("read back: %d wires, %d fills\n", nw, nf)
	if nw != lay.NumShapes() || nf != len(sol.Fills) {
		log.Fatalf("round trip mismatch: wrote %d/%d, read %d/%d",
			lay.NumShapes(), len(sol.Fills), nw, nf)
	}

	// Spot-check geometric fidelity of the first fill on each layer.
	perLayer := sol.PerLayer(len(lay.Layers))
	for li, rs := range perLayer {
		if len(rs) == 0 {
			continue
		}
		found := false
		for _, r := range fills[li] {
			if r == rs[0] {
				found = true
				break
			}
		}
		if !found {
			log.Fatalf("layer %d: fill %v lost in round trip", li, rs[0])
		}
	}
	fmt.Println("round trip: exact")
}
