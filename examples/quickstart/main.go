// Quickstart: build a small layout by hand, run the fill engine, and
// inspect the result. This is the minimal end-to-end use of the public
// API: Layout in, DRC-clean Solution out.
package main

import (
	"fmt"
	"log"

	dummyfill "dummyfill"
)

func main() {
	// A 2-layer, 4-window layout. Layer 0 has a dense wire block in the
	// lower-left window; layer 1 is almost empty. Fill regions are the
	// free space at least one spacing unit away from wires.
	lay := &dummyfill.Layout{
		Name:   "quickstart",
		Die:    dummyfill.R(0, 0, 400, 400),
		Window: 200,
		Rules: dummyfill.Rules{
			MinWidth:   8,
			MinSpace:   8,
			MinArea:    64,
			MaxFillDim: 80,
		},
		Layers: []*dummyfill.Layer{
			{
				Wires: []dummyfill.Rect{
					dummyfill.R(20, 20, 160, 60),
					dummyfill.R(20, 80, 160, 120),
					dummyfill.R(240, 300, 380, 340),
				},
				FillRegions: []dummyfill.Rect{
					dummyfill.R(20, 140, 380, 280),
					dummyfill.R(180, 20, 380, 130),
					dummyfill.R(20, 300, 220, 380),
				},
			},
			{
				Wires: []dummyfill.Rect{
					dummyfill.R(300, 40, 340, 200),
				},
				FillRegions: []dummyfill.Rect{
					dummyfill.R(20, 20, 280, 380),
					dummyfill.R(360, 20, 390, 380),
				},
			},
		},
	}

	res, err := dummyfill.Insert(lay, dummyfill.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %d fills (from %d candidates) across %d windows\n",
		len(res.Solution.Fills), res.Candidates, res.Windows)
	fmt.Printf("planned target densities per layer: %.3f\n", res.Targets)

	if vs := dummyfill.CheckDRC(lay, &res.Solution); len(vs) != 0 {
		log.Fatalf("DRC violations: %v", vs)
	}
	fmt.Println("DRC: clean")

	sz, err := dummyfill.GDSSize(lay, &res.Solution)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solution GDSII size: %d bytes\n", sz)

	for _, f := range res.Solution.Fills[:min(5, len(res.Solution.Fills))] {
		fmt.Printf("  fill layer=%d rect=%v\n", f.Layer, f.Rect)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
