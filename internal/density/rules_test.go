package density

import (
	"testing"
)

func TestCheckRules(t *testing.T) {
	m := mapOf(t, 2, 2, 0.1, 0.5, 0.6, 0.95)
	vs := CheckRules(m, 0.2, 0.9)
	if len(vs) != 2 {
		t.Fatalf("violations = %d, want 2 (%v)", len(vs), vs)
	}
	var low, high int
	for _, v := range vs {
		if v.Low {
			low++
			if v.Density != 0.1 {
				t.Fatalf("low violation density %v", v.Density)
			}
		} else {
			high++
			if v.Density != 0.95 {
				t.Fatalf("high violation density %v", v.Density)
			}
		}
	}
	if low != 1 || high != 1 {
		t.Fatalf("low=%d high=%d", low, high)
	}
}

func TestCheckRulesUpperDisabled(t *testing.T) {
	m := mapOf(t, 2, 1, 0.5, 0.99)
	if vs := CheckRules(m, 0.2, 0); len(vs) != 0 {
		t.Fatalf("disabled upper bound still flagged: %v", vs)
	}
}

func TestRulePassRate(t *testing.T) {
	m := mapOf(t, 2, 2, 0.1, 0.5, 0.5, 0.5)
	if got := RulePassRate(m, 0.2, 0.9); got != 0.75 {
		t.Fatalf("pass rate = %v, want 0.75", got)
	}
	clean := mapOf(t, 2, 1, 0.5, 0.5)
	if got := RulePassRate(clean, 0.2, 0.9); got != 1 {
		t.Fatalf("clean pass rate = %v", got)
	}
}

func TestRuleViolationBoundaries(t *testing.T) {
	// Exactly at the bounds is legal.
	m := mapOf(t, 2, 1, 0.2, 0.9)
	if vs := CheckRules(m, 0.2, 0.9); len(vs) != 0 {
		t.Fatalf("boundary densities flagged: %v", vs)
	}
}
