package density

import "testing"

func TestPlanHaloRows(t *testing.T) {
	cases := []struct{ r, want int }{
		{0, 0}, {1, 0}, {2, 1}, {4, 1}, {16, 1},
	}
	for _, c := range cases {
		if got := PlanHaloRows(c.r); got != c.want {
			t.Errorf("PlanHaloRows(%d) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestDivergence(t *testing.T) {
	a := &Plan{Td: []float64{0.375, 0.5, 0.625}}
	b := &Plan{Td: []float64{0.375, 0.75, 0.5}}
	if got := Divergence(a, b); got != 0.25 {
		t.Fatalf("Divergence = %v, want 0.25", got)
	}
	if got := Divergence(a, a); got != 0 {
		t.Fatalf("self Divergence = %v, want 0", got)
	}
	if got := Divergence(nil, a); got != 0 {
		t.Fatalf("nil Divergence = %v, want 0", got)
	}
	// Mismatched lengths compare the common prefix.
	c := &Plan{Td: []float64{0.5}}
	if got := Divergence(a, c); got != 0.125 {
		t.Fatalf("prefix Divergence = %v, want 0.125", got)
	}
}
