package density

import (
	"math"
	"math/rand"
	"testing"

	"dummyfill/internal/geom"
)

func TestMultiWindowUniform(t *testing.T) {
	die := geom.R(0, 0, 100, 100)
	// Full coverage → every window density 1.
	m, err := MultiWindow(die, 50, 2, []geom.Rect{die})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.MinMax()
	if math.Abs(lo-1) > 1e-12 || math.Abs(hi-1) > 1e-12 {
		t.Fatalf("uniform coverage: lo=%v hi=%v, want 1", lo, hi)
	}
}

func TestMultiWindowEmpty(t *testing.T) {
	die := geom.R(0, 0, 100, 100)
	m, err := MultiWindow(die, 50, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, hi := m.MinMax(); hi != 0 {
		t.Fatalf("empty layout has density %v", hi)
	}
}

func TestMultiWindowCatchesStraddlingHotspot(t *testing.T) {
	// A dense block centered exactly on a fixed-window border: the fixed
	// 50-dissection sees density ≤ 0.5 in each window, but the offset
	// window centered on the block sees 1.0.
	die := geom.R(0, 0, 100, 100)
	block := geom.R(25, 25, 75, 75) // straddles the (50,50) corner
	m, err := MultiWindow(die, 50, 2, []geom.Rect{block})
	if err != nil {
		t.Fatal(err)
	}
	_, hi := m.MinMax()
	if hi < 0.999 {
		t.Fatalf("overlapping analysis max density = %v, want 1.0", hi)
	}
	gap, err := WorstWindowGap(die, 50, 2, []geom.Rect{block})
	if err != nil {
		t.Fatal(err)
	}
	if gap <= 0 {
		t.Fatalf("fixed dissection should under-report this hotspot, gap = %v", gap)
	}
}

func TestMultiWindowExtremes(t *testing.T) {
	die := geom.R(0, 0, 200, 200)
	lo, hi, err := MultiWindowExtremes(die, 100, 4, []geom.Rect{geom.R(0, 0, 100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 {
		t.Fatalf("empty corner must have lo=0, got %v", lo)
	}
	if math.Abs(hi-1) > 1e-12 {
		t.Fatalf("covered window must have hi=1, got %v", hi)
	}
}

func TestMultiWindowMatchesFixedAtStride(t *testing.T) {
	// Windows at offsets that are multiples of w must agree with the
	// fixed-dissection densities.
	die := geom.R(0, 0, 120, 120)
	rng := rand.New(rand.NewSource(5))
	var rects []geom.Rect
	for i := 0; i < 30; i++ {
		x, y := rng.Int63n(110), rng.Int63n(110)
		rects = append(rects, geom.R(x, y, x+1+rng.Int63n(10), y+1+rng.Int63n(10)))
	}
	const w, r = 40, 4
	m, err := MultiWindow(die, w, r, rects)
	if err != nil {
		t.Fatal(err)
	}
	for wj := 0; wj < 3; wj++ {
		for wi := 0; wi < 3; wi++ {
			win := geom.R(int64(wi)*w, int64(wj)*w, int64(wi+1)*w, int64(wj+1)*w)
			var clipped []geom.Rect
			for _, rc := range rects {
				if c := rc.Intersect(win); !c.Empty() {
					clipped = append(clipped, c)
				}
			}
			want := float64(geom.UnionArea(clipped)) / float64(win.Area())
			got := m.At(wi*r, wj*r)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("window (%d,%d): overlapping %v vs fixed %v", wi, wj, got, want)
			}
		}
	}
}

func TestMultiWindowOverlapCountedOnce(t *testing.T) {
	die := geom.R(0, 0, 80, 80)
	dup := geom.R(10, 10, 30, 30)
	m1, err := MultiWindow(die, 40, 2, []geom.Rect{dup})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MultiWindow(die, 40, 2, []geom.Rect{dup, dup, dup})
	if err != nil {
		t.Fatal(err)
	}
	for k := range m1.V {
		if math.Abs(m1.V[k]-m2.V[k]) > 1e-12 {
			t.Fatalf("duplicated rects double-counted at %d: %v vs %v", k, m1.V[k], m2.V[k])
		}
	}
}

func TestMultiWindowErrors(t *testing.T) {
	die := geom.R(0, 0, 100, 100)
	if _, err := MultiWindow(die, 50, 0, nil); err == nil {
		t.Fatal("r=0 must error")
	}
	if _, err := MultiWindow(die, 2, 4, nil); err == nil {
		t.Fatal("w/r < 1 must error")
	}
	if _, err := MultiWindow(geom.Rect{}, 50, 2, nil); err == nil {
		t.Fatal("empty die must error")
	}
}
