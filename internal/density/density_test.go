package density

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
)

func mapOf(t *testing.T, nx, ny int, vals ...float64) *grid.Map {
	t.Helper()
	g, err := grid.New(geom.R(0, 0, int64(nx)*10, int64(ny)*10), 10)
	if err != nil {
		t.Fatal(err)
	}
	m := grid.NewMap(g)
	copy(m.V, vals)
	return m
}

func TestVariationUniform(t *testing.T) {
	m := mapOf(t, 2, 2, 0.5, 0.5, 0.5, 0.5)
	if v := Variation(m); v != 0 {
		t.Fatalf("uniform variation = %v, want 0", v)
	}
}

func TestVariationKnown(t *testing.T) {
	// Values 0 and 1 half/half: σ = 0.5.
	m := mapOf(t, 2, 1, 0, 1)
	if v := Variation(m); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("variation = %v, want 0.5", v)
	}
}

func TestLineHotspotsColumnStructure(t *testing.T) {
	// 2 columns × 2 rows. Column 0: (0.2, 0.4) → col mean 0.3, deviations
	// 0.1+0.1. Column 1: (0.5, 0.5) → 0. lh = 0.2.
	g, _ := grid.New(geom.R(0, 0, 20, 20), 10)
	m := grid.NewMap(g)
	m.Set(0, 0, 0.2)
	m.Set(0, 1, 0.4)
	m.Set(1, 0, 0.5)
	m.Set(1, 1, 0.5)
	if lh := LineHotspots(m); math.Abs(lh-0.2) > 1e-12 {
		t.Fatalf("lh = %v, want 0.2", lh)
	}
}

func TestLineHotspotsInsensitiveToColumnShift(t *testing.T) {
	// Adding a constant to an entire column does not change lh.
	g, _ := grid.New(geom.R(0, 0, 30, 30), 10)
	m := grid.NewMap(g)
	rng := rand.New(rand.NewSource(3))
	for k := range m.V {
		m.V[k] = rng.Float64()
	}
	base := LineHotspots(m)
	for j := 0; j < g.NY; j++ {
		m.Add(1, j, 0.37)
	}
	if got := LineHotspots(m); math.Abs(got-base) > 1e-9 {
		t.Fatalf("lh changed by column shift: %v -> %v", base, got)
	}
}

func TestOutlierHotspots(t *testing.T) {
	// Nearly uniform map with one extreme spike: σ small, spike deviates
	// beyond 3σ → positive outlier score.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 0.5
	}
	vals[0] = 0.9
	m := mapOf(t, 10, 10, vals...)
	if oh := OutlierHotspots(m); oh <= 0 {
		t.Fatalf("spiked map outlier = %v, want > 0", oh)
	}
	// Uniform: zero.
	for i := range vals {
		vals[i] = 0.5
	}
	m2 := mapOf(t, 10, 10, vals...)
	if oh := OutlierHotspots(m2); oh != 0 {
		t.Fatalf("uniform outlier = %v, want 0", oh)
	}
}

func TestQuickVariationShiftInvariant(t *testing.T) {
	f := func(seed int64, shiftQ uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, _ := grid.New(geom.R(0, 0, 40, 40), 10)
		m := grid.NewMap(g)
		for k := range m.V {
			m.V[k] = rng.Float64()
		}
		base := Variation(m)
		shift := float64(shiftQ) / 64
		for k := range m.V {
			m.V[k] += shift
		}
		return math.Abs(Variation(m)-base) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func boundsOf(t *testing.T, lower, upper []float64, nx, ny int) LayerBounds {
	t.Helper()
	return LayerBounds{
		Lower: mapOf(t, nx, ny, lower...),
		Upper: mapOf(t, nx, ny, upper...),
	}
}

var testWeights = PlanWeights{
	AlphaVar: 0.2, BetaVar: 0.5,
	AlphaLine: 0.2, BetaLine: 5,
	AlphaOutlier: 0.15, BetaOutlier: 1,
}

func TestRealizeClamping(t *testing.T) {
	b := boundsOf(t, []float64{0.2, 0.6}, []float64{0.5, 0.9}, 2, 1)
	m := Realize(b, 0.4)
	if m.V[0] != 0.4 { // within range
		t.Fatalf("window 0 = %v, want 0.4", m.V[0])
	}
	if m.V[1] != 0.6 { // td below lower bound → lower
		t.Fatalf("window 1 = %v, want 0.6", m.V[1])
	}
	m = Realize(b, 0.95)
	if m.V[0] != 0.5 || m.V[1] != 0.9 { // clamped to uppers
		t.Fatalf("clamped = %v", m.V)
	}
}

func TestPlanCaseITrivial(t *testing.T) {
	// All windows can reach the max wire density 0.6 → perfect uniformity.
	b := boundsOf(t,
		[]float64{0.2, 0.6, 0.3, 0.4},
		[]float64{0.8, 0.9, 0.7, 0.8}, 2, 2)
	plan, err := PlanTargets([]LayerBounds{b}, testWeights, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Td[0]-0.6) > 1e-9 {
		t.Fatalf("Case I target = %v, want 0.6", plan.Td[0])
	}
	real := Realize(b, plan.Td[0])
	if Variation(real) != 0 {
		t.Fatalf("Case I must be perfectly uniform, σ = %v", Variation(real))
	}
}

func TestPlanCaseIISearch(t *testing.T) {
	// One window is capped at 0.5 while max wire density is 0.8: planning
	// must pick a target in the contested band and beat the naive
	// td=maxLower plan or match it.
	b := boundsOf(t,
		[]float64{0.1, 0.8, 0.1, 0.1},
		[]float64{0.5, 0.9, 0.9, 0.9}, 2, 2)
	plan, err := PlanTargets([]LayerBounds{b}, testWeights, 32)
	if err != nil {
		t.Fatal(err)
	}
	naive := DensityScore([]*grid.Map{Realize(b, 0.8)}, testWeights)
	if plan.Score+1e-12 < naive {
		t.Fatalf("planned score %v worse than naive %v", plan.Score, naive)
	}
	if plan.Td[0] < 0.5-1e-9 || plan.Td[0] > 0.8+1e-9 {
		t.Fatalf("Case II target %v outside contested band [0.5,0.8]", plan.Td[0])
	}
}

func TestPlanMultiLayerJoint(t *testing.T) {
	b1 := boundsOf(t, []float64{0.3, 0.3}, []float64{0.9, 0.9}, 2, 1)
	b2 := boundsOf(t, []float64{0.1, 0.7}, []float64{0.4, 0.8}, 2, 1)
	plan, err := PlanTargets([]LayerBounds{b1, b2}, testWeights, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Td) != 2 {
		t.Fatalf("want 2 targets, got %v", plan.Td)
	}
	if plan.Td[0] != 0.3 {
		t.Fatalf("layer 1 is Case I with maxLower 0.3, got %v", plan.Td[0])
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := PlanTargets(nil, testWeights, 8); err == nil {
		t.Fatal("no layers must error")
	}
	bad := boundsOf(t, []float64{0.9}, []float64{0.1}, 1, 1)
	if _, err := PlanTargets([]LayerBounds{bad}, testWeights, 8); err == nil {
		t.Fatal("lower > upper must error")
	}
}

func TestDensityScoreMonotoneInBeta(t *testing.T) {
	m := mapOf(t, 2, 1, 0.2, 0.8)
	w1 := testWeights
	w2 := testWeights
	w2.BetaVar *= 10
	if DensityScore([]*grid.Map{m}, w2) < DensityScore([]*grid.Map{m}, w1) {
		t.Fatal("larger β must not decrease the score")
	}
}
