package density

import "dummyfill/internal/grid"

// This file implements density-rule checking: §1 of the paper describes
// density analysis as identifying "regions with violations of density
// rules (lower/upper bound)". Foundry decks specify a minimum and maximum
// metal density per window; windows outside the band are rule violations
// that fill insertion (minimum side) or slotting (maximum side) must fix.

// RuleViolation reports one window outside the allowed density band.
type RuleViolation struct {
	I, J    int     // window coordinates
	Density float64 // measured density
	Low     bool    // true: below the minimum; false: above the maximum
}

// CheckRules returns the windows of m whose density lies outside
// [minDensity, maxDensity]. Use maxDensity <= 0 to disable the upper
// check.
func CheckRules(m *grid.Map, minDensity, maxDensity float64) []RuleViolation {
	g := m.G
	var out []RuleViolation
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			d := m.At(i, j)
			switch {
			case d < minDensity:
				out = append(out, RuleViolation{I: i, J: j, Density: d, Low: true})
			case maxDensity > 0 && d > maxDensity:
				out = append(out, RuleViolation{I: i, J: j, Density: d})
			}
		}
	}
	return out
}

// RulePassRate returns the fraction of windows inside the density band.
func RulePassRate(m *grid.Map, minDensity, maxDensity float64) float64 {
	n := m.G.NumWindows()
	if n == 0 {
		return 1
	}
	v := len(CheckRules(m, minDensity, maxDensity))
	return float64(n-v) / float64(n)
}
