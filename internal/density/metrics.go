// Package density implements the paper's density analysis: the three
// per-layer distribution metrics (variation σ, line hotspots, outlier
// hotspots; §2.2, Eqns. 1–2) and target density planning (§3.1).
package density

import (
	"math"

	"dummyfill/internal/grid"
)

// Variation returns the standard deviation σ of the window densities
// (population deviation, as in the contest definition).
func Variation(m *grid.Map) float64 {
	n := len(m.V)
	if n == 0 {
		return 0
	}
	mean := m.Mean()
	var ss float64
	for _, v := range m.V {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// LineHotspots computes Eqn. (1): the summed absolute deviation of each
// window density from its column mean,
//
//	lh = Σ_i Σ_j |d(i,j) − mean_j d(i,j)|.
func LineHotspots(m *grid.Map) float64 {
	g := m.G
	var lh float64
	for i := 0; i < g.NX; i++ {
		var colSum float64
		for j := 0; j < g.NY; j++ {
			colSum += m.At(i, j)
		}
		colMean := colSum / float64(g.NY)
		for j := 0; j < g.NY; j++ {
			lh += math.Abs(m.At(i, j) - colMean)
		}
	}
	return lh
}

// OutlierHotspots computes Eqn. (2): the summed deviation of window
// densities beyond the 3σ band around the layout mean,
//
//	oh = Σ_i Σ_j max(0, |d(i,j) − d̄| − 3σ).
func OutlierHotspots(m *grid.Map) float64 {
	mean := m.Mean()
	sigma := Variation(m)
	var oh float64
	for _, v := range m.V {
		if dev := math.Abs(v-mean) - 3*sigma; dev > 0 {
			oh += dev
		}
	}
	return oh
}

// Metrics bundles the three distribution metrics of one density map.
type Metrics struct {
	Sigma, Line, Outlier float64
}

// Measure computes all three metrics of m.
func Measure(m *grid.Map) Metrics {
	return Metrics{
		Sigma:   Variation(m),
		Line:    LineHotspots(m),
		Outlier: OutlierHotspots(m),
	}
}
