package density

import (
	"fmt"
	"math"

	"dummyfill/internal/grid"
)

// LayerBounds carries the per-window density bounds of one layer used in
// target density planning: Lower is the existing wire density l(i,j) and
// Upper the achievable density u(i,j) given the feasible fill regions.
type LayerBounds struct {
	Lower, Upper *grid.Map
}

// Realize applies Eqn. (5): each window's planned density is the target
// density td clamped into the window's feasible [l,u] range.
func Realize(b LayerBounds, td float64) *grid.Map {
	out := grid.NewMap(b.Lower.G)
	for k, l := range b.Lower.V {
		u := b.Upper.V[k]
		switch {
		case td < l:
			out.V[k] = l
		case td > u:
			out.V[k] = u
		default:
			out.V[k] = td
		}
	}
	return out
}

// PlanWeights are the density-score coefficients used as the planning
// objective (the α/β of the variation, line-hotspot and outlier-hotspot
// components of Eqn. 3/4; overlay is deliberately ignored at this stage,
// as in §3.1).
type PlanWeights struct {
	AlphaVar, BetaVar         float64
	AlphaLine, BetaLine       float64
	AlphaOutlier, BetaOutlier float64
}

// scoreF is Eqn. (4): f(x) = max(0, 1 - x/β).
func scoreF(x, beta float64) float64 {
	if beta <= 0 {
		return 0
	}
	s := 1 - x/beta
	if s < 0 {
		return 0
	}
	return s
}

// DensityScore evaluates the combined density score of one realized
// density map per layer under w. Per Eqn. (3): variation and line-hotspot
// raw values are summed across layers; the outlier component uses
// Σσ(l)·Σoh(l).
func DensityScore(maps []*grid.Map, w PlanWeights) float64 {
	var sumSigma, sumLine, sumOut float64
	for _, m := range maps {
		met := Measure(m)
		sumSigma += met.Sigma
		sumLine += met.Line
		sumOut += met.Outlier
	}
	return w.AlphaVar*scoreF(sumSigma, w.BetaVar) +
		w.AlphaLine*scoreF(sumLine, w.BetaLine) +
		w.AlphaOutlier*scoreF(sumSigma*sumOut, w.BetaOutlier)
}

// Plan is the result of target density planning.
type Plan struct {
	Td    []float64 // one target density per layer
	Score float64   // density score of the realized plan
}

// PlanTargets finds per-layer target densities maximizing the density
// score (§3.1). Case I: when every window of a layer can reach the
// layer's maximum wire density, that value is optimal for the layer
// (perfectly uniform). Case II: otherwise candidate targets between
// max l(k,n) and min u(k,n) are searched with `steps` steps — jointly
// across layers when the combination count is small, by coordinate
// descent otherwise.
func PlanTargets(bounds []LayerBounds, w PlanWeights, steps int) (*Plan, error) {
	nl := len(bounds)
	if nl == 0 {
		return nil, fmt.Errorf("density: no layers to plan")
	}
	if steps < 2 {
		steps = 2
	}
	cands := make([][]float64, nl)
	for l, b := range bounds {
		maxLower := math.Inf(-1)
		minUpper := math.Inf(1)
		for k, lo := range b.Lower.V {
			up := b.Upper.V[k]
			if lo > up+1e-12 {
				return nil, fmt.Errorf("density: layer %d window %d has lower %.4f > upper %.4f", l, k, lo, up)
			}
			if lo > maxLower {
				maxLower = lo
			}
			if up < minUpper {
				minUpper = up
			}
		}
		if maxLower <= minUpper {
			// Case I: td = max wire density is reachable everywhere; the
			// realized map is perfectly uniform and no search can do
			// better, but we still include it among candidates so Case II
			// layers can trade off against it in the joint search.
			cands[l] = []float64{maxLower}
			continue
		}
		// Case II: sweep the contested band.
		lo, hi := minUpper, maxLower
		cs := make([]float64, 0, steps+1)
		for s := 0; s <= steps; s++ {
			cs = append(cs, lo+(hi-lo)*float64(s)/float64(steps))
		}
		cands[l] = cs
	}

	// Memoize the per-(layer, candidate) realized-map metrics once: the
	// density score decomposes into per-layer sums (Σσ, Σline, Σoh), so a
	// combination's score is three array sums instead of nl map
	// realizations and metric passes. The search below then evaluates tens
	// of thousands of combinations over a few dozen precomputed triples,
	// with float accumulation in the same layer order as DensityScore —
	// the chosen plan is bit-identical to the unmemoized search.
	mets := make([][]Metrics, nl)
	var buf grid.Map
	for l, b := range bounds {
		mets[l] = make([]Metrics, len(cands[l]))
		for ci, c := range cands[l] {
			realizeInto(&buf, b, c)
			mets[l][ci] = Measure(&buf)
		}
	}
	evalIdx := func(idx []int) float64 {
		var sumSigma, sumLine, sumOut float64
		for l := 0; l < nl; l++ {
			m := mets[l][idx[l]]
			sumSigma += m.Sigma
			sumLine += m.Line
			sumOut += m.Outlier
		}
		return w.AlphaVar*scoreF(sumSigma, w.BetaVar) +
			w.AlphaLine*scoreF(sumLine, w.BetaLine) +
			w.AlphaOutlier*scoreF(sumSigma*sumOut, w.BetaOutlier)
	}

	combos := 1
	for _, cs := range cands {
		combos *= len(cs)
		if combos > 1<<16 {
			break
		}
	}

	best := &Plan{Td: make([]float64, nl), Score: math.Inf(-1)}
	idx := make([]int, nl)
	if combos <= 1<<16 {
		// Exhaustive joint search.
		var rec func(l int)
		rec = func(l int) {
			if l == nl {
				if s := evalIdx(idx); s > best.Score {
					best.Score = s
					for l, ci := range idx {
						best.Td[l] = cands[l][ci]
					}
				}
				return
			}
			for ci := range cands[l] {
				idx[l] = ci
				rec(l + 1)
			}
		}
		rec(0)
	} else {
		// Coordinate descent from the per-layer midpoints.
		for l := range idx {
			idx[l] = len(cands[l]) / 2
		}
		cur := evalIdx(idx)
		for pass := 0; pass < 8; pass++ {
			improved := false
			for l := 0; l < nl; l++ {
				bestC, bestS := idx[l], cur
				for ci := range cands[l] {
					idx[l] = ci
					if s := evalIdx(idx); s > bestS {
						bestC, bestS = ci, s
					}
				}
				idx[l] = bestC
				if bestS > cur {
					cur = bestS
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		best.Score = cur
		for l, ci := range idx {
			best.Td[l] = cands[l][ci]
		}
	}
	return best, nil
}

// Divergence measures how far two plans' per-layer targets are apart:
// the maximum absolute target-density difference across layers. The
// shard-parallel planner uses it to report how much a shard's halo-local
// proposal disagreed with the reconciled global plan — the quantity a
// future fully-distributed planner would have to smooth away. Layer
// counts must match; extra layers in either plan are ignored.
func Divergence(a, b *Plan) float64 {
	if a == nil || b == nil {
		return 0
	}
	n := len(a.Td)
	if len(b.Td) < n {
		n = len(b.Td)
	}
	var worst float64
	for l := 0; l < n; l++ {
		d := a.Td[l] - b.Td[l]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// realizeInto is Realize into a reused map buffer (same clamping, no
// allocation once dst has grown to the layer's window count).
func realizeInto(dst *grid.Map, b LayerBounds, td float64) {
	dst.G = b.Lower.G
	n := len(b.Lower.V)
	if cap(dst.V) < n {
		dst.V = make([]float64, n)
	}
	dst.V = dst.V[:n]
	for k, l := range b.Lower.V {
		u := b.Upper.V[k]
		switch {
		case td < l:
			dst.V[k] = l
		case td > u:
			dst.V[k] = u
		default:
			dst.V[k] = td
		}
	}
}
