package density

import (
	"fmt"

	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
)

// This file implements multi-window (overlapping-dissection) density
// analysis in the style of Kahng et al.'s multilevel density control
// (reference [3] of the paper): windows of size w are evaluated at every
// offset that is a multiple of w/r, not just the fixed dissection, so
// density extremes that straddle fixed-window borders are not missed.

// MultiWindow computes the density of every w×w window placed at offsets
// that are multiples of w/r across the die, given rectangles of covered
// area (wires + fills; overlaps among rects are counted once per tile).
// It returns a Map over the fine (w/r)-grid where each entry holds the
// density of the window whose lower-left corner is at that fine cell —
// windows are clipped at the die boundary (partial windows normalized by
// their true area).
//
// r must divide into w reasonably (w/r >= 1); typical r is 2 or 4.
func MultiWindow(die geom.Rect, w int64, r int, covered []geom.Rect) (*grid.Map, error) {
	if r < 1 {
		return nil, fmt.Errorf("density: r must be >= 1, got %d", r)
	}
	step := w / int64(r)
	if step < 1 {
		return nil, fmt.Errorf("density: window %d too small for r=%d", w, r)
	}
	fine, err := grid.New(die, step)
	if err != nil {
		return nil, err
	}
	// Exact per-tile covered area on the fine grid.
	perTile := make([][]geom.Rect, fine.NumWindows())
	for _, c := range covered {
		fine.RangeOverlapping(c, func(i, j int, clip geom.Rect) {
			k := j*fine.NX + i
			perTile[k] = append(perTile[k], clip)
		})
	}
	tileArea := grid.NewMap(fine)
	for k, rects := range perTile {
		if len(rects) > 0 {
			tileArea.V[k] = float64(geom.UnionArea(rects))
		}
	}
	// Sliding-window sums over r×r fine tiles via prefix sums.
	nx, ny := fine.NX, fine.NY
	pref := make([]float64, (nx+1)*(ny+1))
	at := func(i, j int) float64 { return pref[j*(nx+1)+i] }
	for j := 1; j <= ny; j++ {
		for i := 1; i <= nx; i++ {
			pref[j*(nx+1)+i] = tileArea.V[(j-1)*nx+(i-1)] + at(i-1, j) + at(i, j-1) - at(i-1, j-1)
		}
	}
	out := grid.NewMap(fine)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			i1, j1 := i+r, j+r
			if i1 > nx {
				i1 = nx
			}
			if j1 > ny {
				j1 = ny
			}
			area := at(i1, j1) - at(i, j1) - at(i1, j) + at(i, j)
			// True window extent (clipped at the die).
			win := geom.Rect{
				XL: die.XL + int64(i)*step,
				YL: die.YL + int64(j)*step,
				XH: die.XL + int64(i)*step + w,
				YH: die.YL + int64(j)*step + w,
			}.Intersect(die)
			if wa := float64(win.Area()); wa > 0 {
				out.V[j*nx+i] = area / wa
			}
		}
	}
	return out, nil
}

// PlanHaloRows returns how many fixed-dissection window rows a shard's
// halo ring must span so that every overlapping w×w analysis window whose
// lower-left corner lies inside the shard is fully covered by shard+halo
// data — the multi-window coupling radius, in rows.
//
// Overlapping windows are placed at offsets that are multiples of w/r, so
// the farthest such window starts (r−1)·(w/r) past a row boundary and
// overhangs the next row by w − w/r < w: strictly less than one full row
// for every r ≥ 2, hence one halo row always suffices. At r = 1 the
// overlapping dissection degenerates to the fixed one — no window crosses
// a row boundary and no halo is needed.
func PlanHaloRows(r int) int {
	if r <= 1 {
		return 0
	}
	return 1
}

// MultiWindowExtremes returns the minimum and maximum density over all
// overlapping windows — the multi-window analogue of density-rule
// checking (lower/upper bound violations).
func MultiWindowExtremes(die geom.Rect, w int64, r int, covered []geom.Rect) (lo, hi float64, err error) {
	m, err := MultiWindow(die, w, r, covered)
	if err != nil {
		return 0, 0, err
	}
	lo, hi = m.MinMax()
	return lo, hi, nil
}

// WorstWindowGap reports how much worse the overlapping-window density
// range is compared to the fixed dissection: the difference between the
// overlapping max-min spread and the fixed-grid max-min spread. A positive
// value means the fixed dissection under-reports variation (the classic
// argument for multi-window analysis).
func WorstWindowGap(die geom.Rect, w int64, r int, covered []geom.Rect) (float64, error) {
	over, err := MultiWindow(die, w, r, covered)
	if err != nil {
		return 0, err
	}
	g, err := grid.New(die, w)
	if err != nil {
		return 0, err
	}
	perWin := make([][]geom.Rect, g.NumWindows())
	for _, c := range covered {
		g.RangeOverlapping(c, func(i, j int, clip geom.Rect) {
			k := j*g.NX + i
			perWin[k] = append(perWin[k], clip)
		})
	}
	fixed := grid.NewMap(g)
	for k, rects := range perWin {
		wa := float64(g.Window(k%g.NX, k/g.NX).Area())
		if wa > 0 && len(rects) > 0 {
			fixed.V[k] = float64(geom.UnionArea(rects)) / wa
		}
	}
	oLo, oHi := over.MinMax()
	fLo, fHi := fixed.MinMax()
	return (oHi - oLo) - (fHi - fLo), nil
}
