package synth

import (
	"testing"

	"dummyfill/internal/density"
	"dummyfill/internal/geom"
)

func TestGenerateDesignS(t *testing.T) {
	sp := DesignS()
	lay, err := Generate(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(lay.Layers) != sp.NumLayer {
		t.Fatalf("layers = %d, want %d", len(lay.Layers), sp.NumLayer)
	}
	st := lay.Statistics()
	if st.NumShapes < sp.WiresPerLayer*sp.NumLayer {
		t.Fatalf("shape count %d below spec %d", st.NumShapes, sp.WiresPerLayer*sp.NumLayer)
	}
	// Wire density should be non-trivial but leave room for fills.
	for li, d := range st.WireDens {
		if d < 0.02 || d > 0.6 {
			t.Fatalf("layer %d wire density %.3f outside sane band", li, d)
		}
	}
	// Every layer must have feasible fill regions.
	for li, fa := range st.FillArea {
		if fa == 0 {
			t.Fatalf("layer %d has no fill regions", li)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DesignS())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DesignS())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Layers[0].Wires) != len(b.Layers[0].Wires) {
		t.Fatal("generation is not deterministic (wire count)")
	}
	for i := range a.Layers[0].Wires {
		if a.Layers[0].Wires[i] != b.Layers[0].Wires[i] {
			t.Fatalf("wire %d differs across runs", i)
		}
	}
}

func TestGenerateHasHotspotStructure(t *testing.T) {
	lay, err := Generate(DesignS())
	if err != nil {
		t.Fatal(err)
	}
	g, _ := lay.Grid()
	anyOutlier := false
	for li := range lay.Layers {
		m := density.Measure(lay.WireDensityMap(g, li))
		if m.Sigma <= 0 || m.Line <= 0 {
			t.Fatalf("layer %d lacks density variation: %+v", li, m)
		}
		if m.Outlier > 0 {
			anyOutlier = true
		}
	}
	if !anyOutlier {
		t.Fatal("no layer has outlier windows; hotspot cluster missing")
	}
}

func TestFillRegionsRespectKeepout(t *testing.T) {
	lay, err := Generate(DesignS())
	if err != nil {
		t.Fatal(err)
	}
	// Spot check: no fill region within MinSpace of a wire (sampled).
	layer := lay.Layers[0]
	ix := geom.NewIndex(lay.Die, 0)
	for _, w := range layer.Wires {
		ix.Insert(w)
	}
	for i, fr := range layer.FillRegions {
		if i%37 != 0 {
			continue // sampling keeps the test fast
		}
		if ix.AnyWithin(fr, lay.Rules.MinSpace, -1) {
			t.Fatalf("fill region %v is within MinSpace of a wire", fr)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"s", "b", "m"} {
		sp, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Name != name {
			t.Fatalf("ByName(%q) = %q", name, sp.Name)
		}
	}
	if _, err := ByName("x"); err == nil {
		t.Fatal("unknown design must error")
	}
}

func TestDesignScaling(t *testing.T) {
	s, b, m := DesignS(), DesignB(), DesignM()
	if !(s.WiresPerLayer < b.WiresPerLayer && b.WiresPerLayer < m.WiresPerLayer) {
		t.Fatal("designs must scale s < b < m in shape count")
	}
	if !(s.DieSize < b.DieSize && b.DieSize < m.DieSize) {
		t.Fatal("designs must scale s < b < m in die size")
	}
}

func TestCoefficients(t *testing.T) {
	sp := DesignS()
	lay, err := Generate(sp)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Coefficients(sp, lay)
	if err != nil {
		t.Fatal(err)
	}
	if c.BetaVar <= 0 || c.BetaLine <= 0 || c.BetaOutlier <= 0 ||
		c.BetaOverlay <= 0 || c.BetaSize <= 0 {
		t.Fatalf("all βs must be positive: %+v", c)
	}
	if c.BetaRuntime != sp.BetaRuntime || c.BetaMemory != sp.BetaMemory {
		t.Fatalf("runtime/memory βs must come from the spec: %+v", c)
	}
	// The unfilled layout must score zero on density components (raw = 2β).
	if got := 1 - 2.0; c.BetaVar*2 > 0 && got > 0 {
		t.Fatal("unreachable")
	}
}

func TestGenerateInvalidSpec(t *testing.T) {
	if _, err := Generate(Spec{}); err == nil {
		t.Fatal("zero spec must error")
	}
}
