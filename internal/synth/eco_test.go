package synth_test

import (
	"context"
	"reflect"
	"testing"

	"dummyfill/internal/fill"
	"dummyfill/internal/synth"
)

// TestPerturbECOLocality is the contract incremental re-fill depends on:
// the perturbation changes some windows' content but leaves every window
// outside the patch hashing to its original cache key, and the planned
// target densities do not drift.
func TestPerturbECOLocality(t *testing.T) {
	lay, err := synth.Generate(synth.DesignTiny())
	if err != nil {
		t.Fatal(err)
	}
	const frac = 0.10
	eco, changed, err := synth.PerturbECO(lay, frac, 99)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 {
		t.Fatal("perturbation moved no wires")
	}

	ctx := context.Background()
	opts := fill.DefaultOptions()
	g, before, err := fill.WindowDigests(ctx, lay, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, after, err := fill.WindowDigests(ctx, eco, opts)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for k := range before {
		if before[k].Key != after[k].Key {
			diff++
		}
	}
	nw := g.NumWindows()
	budget := int(2*frac*float64(nw)) + 4
	if diff == 0 {
		t.Fatal("no window keys changed; perturbation is invisible")
	}
	if diff > budget {
		t.Fatalf("%d of %d window keys changed, want <= %d (localized patch)", diff, nw, budget)
	}

	// Target densities must be bit-identical, otherwise every cached
	// window outside the patch goes stale instead of replaying.
	refEng, err := fill.New(lay, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refEng.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ecoEng, err := fill.New(eco, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ecoEng.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.FirstTargets, res.FirstTargets) || !reflect.DeepEqual(ref.Targets, res.Targets) {
		t.Errorf("plan targets drifted:\n round1 %v -> %v\n round2 %v -> %v",
			ref.FirstTargets, res.FirstTargets, ref.Targets, res.Targets)
	}
}

// TestPerturbECODeterministic: same layout, fraction and seed produce the
// same perturbed layout; a different seed produces a different one.
func TestPerturbECODeterministic(t *testing.T) {
	lay, err := synth.Generate(synth.DesignTiny())
	if err != nil {
		t.Fatal(err)
	}
	a, ca, err := synth.PerturbECO(lay, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, cb, err := synth.PerturbECO(lay, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb || !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different perturbations")
	}
	c, _, err := synth.PerturbECO(lay, 0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical perturbations")
	}
}

// TestPerturbECORejectsBadFraction covers the argument contract.
func TestPerturbECORejectsBadFraction(t *testing.T) {
	lay, err := synth.Generate(synth.DesignTiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0, -0.5, 1.5} {
		if _, _, err := synth.PerturbECO(lay, frac, 1); err == nil {
			t.Errorf("frac %v: want error", frac)
		}
	}
}
