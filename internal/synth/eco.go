package synth

import (
	"fmt"
	"math"
	"math/rand"

	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
	"dummyfill/internal/layout"
)

// PerturbECO applies an engineering-change-order style edit to a
// synth-generated layout: a localized patch covering roughly frac of the
// fill windows is picked, every wire lying strictly inside the patch is
// jittered by a few DBU, and the feasible fill regions of the affected
// layers are re-extracted. The perturbation is built so that incremental
// re-fill invalidates only the patch:
//
//   - Only wires whose keepout expansion (plus the maximum jitter) lies
//     inside the patch move, so no window outside the patch sees a
//     different wire clip or free region — those windows hash to the same
//     fill-cache key and replay.
//   - Jitter is pure translation (wire areas are preserved) and the patch
//     placement avoids the windows that pin the density planner's
//     candidate range (the global max-lower / min-upper windows), so the
//     planned target densities — and with them every untouched window's
//     solution — stay bit-identical in practice.
//
// Free regions are re-derived with the same extractor Generate uses, so
// the untouched-window guarantee holds for synth layouts (whose
// FillRegions came from that extractor); for foreign layouts the edit is
// still valid but untouched windows may not replay.
//
// The same (layout, frac, seed) always yields the same perturbed layout.
// It returns the perturbed copy (the input is not modified) and the
// number of wires moved.
func PerturbECO(lay *layout.Layout, frac float64, seed int64) (*layout.Layout, int, error) {
	if frac <= 0 || frac > 1 {
		return nil, 0, fmt.Errorf("synth: eco fraction %v outside (0, 1]", frac)
	}
	g, err := lay.Grid()
	if err != nil {
		return nil, 0, err
	}
	nx, ny := g.NX, g.NY
	target := frac * float64(nx*ny)
	pw := int(math.Round(math.Sqrt(target)))
	if pw < 1 {
		pw = 1
	}
	if pw > nx {
		pw = nx
	}
	ph := int(math.Round(target / float64(pw)))
	if ph < 1 {
		ph = 1
	}
	if ph > ny {
		ph = ny
	}

	rng := rand.New(rand.NewSource(seed))
	hot := hotWindows(lay, g)
	i0, j0 := placePatch(g, pw, ph, hot, rng)
	lo := g.Window(i0, j0)
	hi := g.Window(i0+pw-1, j0+ph-1)
	patch := geom.R(lo.XL, lo.YL, hi.XH, hi.YH)

	// A wire may move only if its keepout halo stays inside the patch for
	// every possible shift; then windows outside the patch see exactly the
	// same geometry before and after.
	maxShift := 2 * lay.Rules.MinSpace
	if maxShift < 1 {
		maxShift = 1
	}
	inner := patch.Expand(-(lay.Rules.MinSpace + maxShift))

	eco := &layout.Layout{
		Name:   lay.Name,
		Die:    lay.Die,
		Window: lay.Window,
		Rules:  lay.Rules,
		Layers: make([]*layout.Layer, len(lay.Layers)),
	}
	changed := 0
	for li, layer := range lay.Layers {
		wires := make([]geom.Rect, len(layer.Wires))
		copy(wires, layer.Wires)
		mutated := false
		if !inner.Empty() {
			for wi, wr := range wires {
				if !inner.ContainsRect(wr) {
					continue
				}
				dx := rng.Int63n(2*maxShift+1) - maxShift
				dy := rng.Int63n(2*maxShift+1) - maxShift
				if dx == 0 && dy == 0 {
					continue
				}
				wires[wi] = wr.Translate(dx, dy)
				changed++
				mutated = true
			}
		}
		nl := &layout.Layer{Wires: wires}
		if mutated {
			// Re-extract window by window, exactly as Generate does: the
			// windows whose wires did not move reproduce their original
			// free pieces bit-for-bit, in the same order.
			nl.FillRegions = freeRegions(g, wires, lay.Rules, li%2 == 1)
		} else {
			nl.FillRegions = append([]geom.Rect(nil), layer.FillRegions...)
		}
		eco.Layers[li] = nl
	}
	if err := eco.Validate(); err != nil {
		return nil, 0, fmt.Errorf("synth: eco perturbation produced invalid layout: %v", err)
	}
	return eco, changed, nil
}

// hotWindows flags the windows that pin the density planner's candidate
// range on any layer: those at (or within tolerance of) the layer's
// maximum wire density or minimum achievable density. Moving wires there
// would shift the planner's search grid and drift the target densities,
// staling every cached window instead of just the patch.
func hotWindows(lay *layout.Layout, g *grid.Grid) []bool {
	const tol = 0.02
	nw := g.NumWindows()
	hot := make([]bool, nw)
	upper := make([]float64, nw)
	for li := range lay.Layers {
		wd := lay.WireDensityMap(g, li)
		fa := lay.FillRegionAreaMap(g, li)
		maxLower, minUpper := math.Inf(-1), math.Inf(1)
		for k := 0; k < nw; k++ {
			aw := float64(g.Window(k%g.NX, k/g.NX).Area())
			upper[k] = wd.V[k]
			if aw > 0 {
				upper[k] += fa.V[k] / aw
			}
			if wd.V[k] > maxLower {
				maxLower = wd.V[k]
			}
			if upper[k] < minUpper {
				minUpper = upper[k]
			}
		}
		for k := 0; k < nw; k++ {
			if wd.V[k] > maxLower-tol || upper[k] < minUpper+tol {
				hot[k] = true
			}
		}
	}
	return hot
}

// placePatch picks a pw×ph window-block origin avoiding hot windows: a
// bounded number of seeded random placements are scored by how many hot
// windows they cover and the first fully-cold one wins (fewest-hot
// otherwise). Deterministic for a given rng state.
func placePatch(g *grid.Grid, pw, ph int, hot []bool, rng *rand.Rand) (i0, j0 int) {
	bestI, bestJ, bestScore := 0, 0, math.MaxInt
	for try := 0; try < 128; try++ {
		ci, cj := 0, 0
		if g.NX > pw {
			ci = rng.Intn(g.NX - pw + 1)
		}
		if g.NY > ph {
			cj = rng.Intn(g.NY - ph + 1)
		}
		score := 0
		for j := cj; j < cj+ph; j++ {
			for i := ci; i < ci+pw; i++ {
				if hot[j*g.NX+i] {
					score++
				}
			}
		}
		if score < bestScore {
			bestI, bestJ, bestScore = ci, cj, score
		}
		if bestScore == 0 {
			break
		}
	}
	return bestI, bestJ
}
