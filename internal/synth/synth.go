// Package synth generates deterministic synthetic multi-layer layouts that
// stand in for the proprietary ICCAD 2014 contest benchmarks. Each design
// has clustered wiring that produces density gradients, line hotspots and
// outlier windows — the features the contest metrics measure — plus
// feasible fill regions extracted as wire-keepout-free space, exactly the
// input shape the paper's flow consumes.
package synth

import (
	"fmt"
	"math/rand"

	"dummyfill/internal/density"
	"dummyfill/internal/gdsii"
	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
	"dummyfill/internal/layout"
	"dummyfill/internal/score"
)

// Spec parameterizes one synthetic design.
type Spec struct {
	Name     string
	Seed     int64
	DieSize  int64 // square die edge in DBU
	Window   int64
	NumLayer int
	Rules    layout.Rules
	// WiresPerLayer is the approximate wire shape count per layer.
	WiresPerLayer int
	// Clusters is the number of high-density wiring clusters per layer.
	Clusters int
	// WireWidth and MeanWireLen set wire geometry.
	WireWidth   int64
	MeanWireLen int64
	// BetaRuntime/BetaMemory are the runtime/memory score scales (the
	// other βs are calibrated from the generated layout).
	BetaRuntime, BetaMemory float64
	// Sites, when non-nil, makes the design row-based: instead of
	// clustered wiring, the generator places standard-cell-like blocks
	// snapped to this lattice and the layout carries the site grid — the
	// input shape of the site fill mode. Clusters/WireWidth/MeanWireLen
	// are ignored for row-based designs.
	Sites *layout.SiteGrid
	// RowUtil is the mean row utilization of a row-based design (fraction
	// of sites occupied by placed cells, before the row-gradient skew).
	RowUtil float64
}

// The three designs mirror Table 2's s/b/m at laptop scale: the shape
// counts scale ~1:6:20 like the contest's 382K:8.1M:31.8M.
func DesignS() Spec {
	return Spec{
		Name: "s", Seed: 1001,
		DieSize: 16000, Window: 1000, NumLayer: 3,
		Rules:         layout.Rules{MinWidth: 8, MinSpace: 8, MinArea: 64, MaxFillDim: 400},
		WiresPerLayer: 7000, Clusters: 6,
		WireWidth: 16, MeanWireLen: 400,
		BetaRuntime: 10, BetaMemory: 1024,
	}
}

func DesignB() Spec {
	return Spec{
		Name: "b", Seed: 2002,
		DieSize: 40000, Window: 2000, NumLayer: 3,
		Rules:         layout.Rules{MinWidth: 8, MinSpace: 8, MinArea: 64, MaxFillDim: 800},
		WiresPerLayer: 40000, Clusters: 12,
		WireWidth: 16, MeanWireLen: 500,
		BetaRuntime: 60, BetaMemory: 4096,
	}
}

func DesignM() Spec {
	return Spec{
		Name: "m", Seed: 3003,
		DieSize: 64000, Window: 2000, NumLayer: 3,
		Rules:         layout.Rules{MinWidth: 8, MinSpace: 8, MinArea: 64, MaxFillDim: 800},
		WiresPerLayer: 130000, Clusters: 20,
		WireWidth: 16, MeanWireLen: 500,
		BetaRuntime: 120, BetaMemory: 8192,
	}
}

// DesignTiny is a fast, sub-second design for tests, examples and smoke
// runs. It is not part of the contest trio.
func DesignTiny() Spec {
	return Spec{
		Name: "tiny", Seed: 4004,
		DieSize: 4000, Window: 500, NumLayer: 3,
		Rules:         layout.Rules{MinWidth: 8, MinSpace: 8, MinArea: 64, MaxFillDim: 200},
		WiresPerLayer: 800, Clusters: 3,
		WireWidth: 16, MeanWireLen: 250,
		BetaRuntime: 2, BetaMemory: 512,
	}
}

// DesignRow is the row-based placement design for the site fill mode: a
// single placement layer of cells snapped to a lattice that exactly
// covers the die, with a bottom-to-top utilization gradient so the
// density planner has real work. MinSpace is 0 — abutting fillers are
// legal on a placement lattice — and the rules admit the smallest
// default-library filler (1 site × 1 row).
func DesignRow() Spec {
	return Spec{
		Name: "row", Seed: 5005,
		DieSize: 6000, Window: 600, NumLayer: 1,
		Rules:       layout.Rules{MinWidth: 10, MinSpace: 0, MinArea: 1200, MaxFillDim: 400},
		Sites:       &layout.SiteGrid{SiteW: 10, RowH: 120, Rows: 50, Sites: 600},
		RowUtil:     0.55,
		BetaRuntime: 2, BetaMemory: 512,
	}
}

// Designs returns the three standard designs in contest order.
func Designs() []Spec { return []Spec{DesignS(), DesignB(), DesignM()} }

// ByName resolves a design name.
func ByName(name string) (Spec, error) {
	for _, s := range append(Designs(), DesignTiny(), DesignRow()) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("synth: unknown design %q (have s, b, m, row, tiny)", name)
}

// Generate builds the layout of a spec. Generation is deterministic for a
// given spec.
func Generate(sp Spec) (*layout.Layout, error) {
	if sp.Sites != nil {
		return generateRow(sp)
	}
	if sp.DieSize <= 0 || sp.NumLayer <= 0 || sp.WiresPerLayer <= 0 {
		return nil, fmt.Errorf("synth: invalid spec %+v", sp)
	}
	die := geom.R(0, 0, sp.DieSize, sp.DieSize)
	lay := &layout.Layout{
		Name:   sp.Name,
		Die:    die,
		Window: sp.Window,
		Rules:  sp.Rules,
	}
	g, err := grid.New(die, sp.Window)
	if err != nil {
		return nil, err
	}
	for li := 0; li < sp.NumLayer; li++ {
		rng := rand.New(rand.NewSource(sp.Seed + int64(li)*7919))
		layer := &layout.Layer{}
		layer.Wires = genWires(rng, sp, li)
		// Odd layers route vertically; vertical slab decomposition keeps
		// their free regions fat instead of shredded into thin bands.
		layer.FillRegions = freeRegions(g, layer.Wires, sp.Rules, li%2 == 1)
		lay.Layers = append(lay.Layers, layer)
	}
	if err := lay.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated invalid layout: %v", err)
	}
	return lay, nil
}

// generateRow builds a row-based design: per placement row, an
// alternation of random gaps and placed cells, all snapped to the
// lattice. Gap sizes grow with the row index so the lower rows are
// dense and the upper sparse — a density gradient the planner must
// equalize. The free regions are the exact complement of the placed
// cells (MinSpace 0), decomposed into horizontal slabs that align with
// the row gaps.
func generateRow(sp Spec) (*layout.Layout, error) {
	if sp.DieSize <= 0 || sp.RowUtil <= 0 || sp.RowUtil >= 1 {
		return nil, fmt.Errorf("synth: invalid row spec %+v", sp)
	}
	sg := *sp.Sites
	if err := sg.Validate(); err != nil {
		return nil, err
	}
	die := geom.R(0, 0, sp.DieSize, sp.DieSize)
	lay := &layout.Layout{
		Name:   sp.Name,
		Die:    die,
		Window: sp.Window,
		Rules:  sp.Rules,
		Sites:  &sg,
	}
	g, err := grid.New(die, sp.Window)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sp.Seed))
	// Mean cell width (sites) and the gap mean that hits RowUtil.
	const minCell, cellSpread = 4, 37 // widths 4..40, mean 22
	meanCell := float64(minCell) + float64(cellSpread-1)/2
	meanGap := meanCell * (1 - sp.RowUtil) / sp.RowUtil
	layer := &layout.Layer{}
	for j := 0; j < sg.Rows; j++ {
		// Utilization gradient: gaps stretch toward the top rows.
		scale := 0.4 + 1.6*float64(j)/float64(sg.Rows)
		maxGap := int(2*meanGap*scale) + 1
		for x := 0; x < sg.Sites; {
			x += 1 + rng.Intn(maxGap)
			w := minCell + rng.Intn(cellSpread)
			if x+w > sg.Sites {
				break
			}
			layer.Wires = append(layer.Wires, geom.Rect{
				XL: sg.SiteX(x), YL: sg.RowY(j),
				XH: sg.SiteX(x + w), YH: sg.RowY(j) + sg.RowH,
			})
			x += w
		}
	}
	layer.FillRegions = freeRegions(g, layer.Wires, sp.Rules, false)
	lay.Layers = append(lay.Layers, layer)
	if err := lay.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated invalid layout: %v", err)
	}
	return lay, nil
}

// genWires produces clustered manhattan wiring. Even layers route
// horizontally, odd layers vertically (as real routing stacks do), which
// also creates the cross-layer overlap structure the overlay metric cares
// about.
func genWires(rng *rand.Rand, sp Spec, li int) []geom.Rect {
	die := geom.R(0, 0, sp.DieSize, sp.DieSize)
	horizontal := li%2 == 0

	// Cluster centers with per-cluster intensity; one corner cluster is
	// made extreme to guarantee outlier windows.
	type cluster struct {
		cx, cy int64
		sigma  float64
		weight float64
	}
	clusters := make([]cluster, sp.Clusters)
	for c := range clusters {
		clusters[c] = cluster{
			cx:     rng.Int63n(sp.DieSize),
			cy:     rng.Int63n(sp.DieSize),
			sigma:  float64(sp.DieSize) * (0.04 + 0.1*rng.Float64()),
			weight: 0.5 + rng.Float64(),
		}
	}
	clusters[0].cx, clusters[0].cy = sp.DieSize/10, sp.DieSize/10
	clusters[0].sigma = float64(sp.DieSize) * 0.03
	clusters[0].weight = 3.0
	var totalW float64
	for _, c := range clusters {
		totalW += c.weight
	}

	wires := make([]geom.Rect, 0, sp.WiresPerLayer)
	for len(wires) < sp.WiresPerLayer {
		// Pick a cluster by weight; 20% of wires are uniform background.
		var x, y int64
		if rng.Float64() < 0.2 {
			x = rng.Int63n(sp.DieSize)
			y = rng.Int63n(sp.DieSize)
		} else {
			r := rng.Float64() * totalW
			var cl cluster
			for _, c := range clusters {
				if r -= c.weight; r <= 0 {
					cl = c
					break
				}
			}
			x = cl.cx + int64(rng.NormFloat64()*cl.sigma)
			y = cl.cy + int64(rng.NormFloat64()*cl.sigma)
		}
		length := int64(rng.ExpFloat64() * float64(sp.MeanWireLen))
		if length < sp.WireWidth {
			length = sp.WireWidth
		}
		var r geom.Rect
		if horizontal {
			r = geom.R(x, y, x+length, y+sp.WireWidth)
		} else {
			r = geom.R(x, y, x+sp.WireWidth, y+length)
		}
		r = r.Intersect(die)
		if r.Empty() || r.W() < sp.WireWidth || r.H() < sp.WireWidth {
			continue
		}
		wires = append(wires, r)
	}
	return wires
}

// freeRegions extracts, window by window, the free space left after
// expanding every wire by the minimum spacing — the feasible fill regions.
func freeRegions(g *grid.Grid, wires []geom.Rect, rules layout.Rules, vertical bool) []geom.Rect {
	// Bin wires (expanded by keepout) by window.
	perWin := make([][]geom.Rect, g.NumWindows())
	for _, w := range wires {
		ex := w.Expand(rules.MinSpace)
		g.RangeOverlapping(ex, func(i, j int, clip geom.Rect) {
			k := j*g.NX + i
			perWin[k] = append(perWin[k], clip)
		})
	}
	var out []geom.Rect
	for k := 0; k < g.NumWindows(); k++ {
		i, j := k%g.NX, k/g.NX
		win := g.Window(i, j)
		for _, f := range geom.DifferenceOriented(win, perWin[k], vertical) {
			// Drop slivers that can never host a legal fill.
			if f.W() >= rules.MinWidth && f.H() >= rules.MinWidth && f.Area() >= rules.MinArea {
				out = append(out, f)
			}
		}
	}
	return out
}

// Coefficients calibrates the α/β score table for a generated layout (our
// Table 2 analogue). α weights are the contest's; βs are set from the
// unfilled layout's raw metrics so that scores land in the same [0,1]
// working band the contest scores occupy:
//
//   - density βs: the unfilled layout's raw metric, so a component score
//     reads as the fractional improvement over no fill at all;
//   - overlay β: the expected overlay of density-equivalent random fill
//     placement between adjacent layers;
//   - size β: four times the input (wires-only) GDSII size, mirroring the
//     contest's β/input ratios;
//   - runtime/memory βs: fixed per design in the spec.
func Coefficients(sp Spec, lay *layout.Layout) (score.Coefficients, error) {
	return Calibrate(lay, sp.BetaRuntime, sp.BetaMemory)
}

// Calibrate computes the α/β score table for an arbitrary layout using
// the same rules as Coefficients; runtime/memory βs are supplied by the
// caller (they depend on the machine budget, not the layout).
func Calibrate(lay *layout.Layout, betaRuntime, betaMemory float64) (score.Coefficients, error) {
	c := score.ContestAlphas()
	g, err := lay.Grid()
	if err != nil {
		return c, err
	}
	var sumSigma, sumLine, sumOut float64
	for li := range lay.Layers {
		m := density.Measure(lay.WireDensityMap(g, li))
		sumSigma += m.Sigma
		sumLine += m.Line
		sumOut += m.Outlier
	}
	c.BetaVar = sumSigma
	c.BetaLine = sumLine
	c.BetaOutlier = sumSigma * sumOut
	if c.BetaVar <= 0 {
		c.BetaVar = 0.01
	}
	if c.BetaLine <= 0 {
		c.BetaLine = 0.1
	}
	if c.BetaOutlier <= 0 {
		c.BetaOutlier = 1e-4
	}

	dieArea := float64(lay.Die.Area())
	var expOv float64
	for l := 0; l+1 < len(lay.Layers); l++ {
		fa0 := float64(geom.TotalArea(lay.Layers[l].FillRegions))
		fa1 := float64(geom.TotalArea(lay.Layers[l+1].FillRegions))
		wa1 := float64(geom.UnionArea(lay.Layers[l+1].Wires))
		wa0 := float64(geom.UnionArea(lay.Layers[l].Wires))
		// Random-placement expectation: fills(l) against everything above
		// plus wires(l) against fills above.
		expOv += fa0*(fa1+wa1)/dieArea + wa0*fa1/dieArea
	}
	c.BetaOverlay = expOv
	if c.BetaOverlay <= 0 {
		c.BetaOverlay = 1
	}

	// The contest's size score measures the solution (fills-only) GDSII;
	// β of the order of the input wire GDSII size mirrors the contest's
	// β/input ratios (0.7–1.9).
	sz, err := gdsii.FromLayout(lay, nil).EncodedSize()
	if err != nil {
		return c, err
	}
	c.BetaSize = 4 * float64(sz) / (1 << 20)
	if c.BetaSize <= 0 {
		c.BetaSize = 1
	}
	c.BetaRuntime = betaRuntime
	c.BetaMemory = betaMemory
	return c, nil
}
