// Package layout models the input to the fill flow: a die, a stack of
// routing layers with signal wires and feasible fill regions, the DRC rule
// set governing fills, and the window dissection parameters.
package layout

import (
	"fmt"

	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
)

// Rules is the DRC rule set for dummy fills (Table 1 of the paper:
// minimum spacing sm, minimum width wm, minimum area am) plus a maximum
// fill dimension, which industrial fill rule decks impose and which the
// candidate generator uses to tile large free regions.
type Rules struct {
	MinWidth   int64 // wm: minimum fill width/height
	MinSpace   int64 // sm: minimum fill-to-fill and fill-to-wire spacing
	MinArea    int64 // am: minimum fill area
	MaxFillDim int64 // maximum fill width/height (0 = unlimited)
}

// Validate checks rule sanity.
func (r Rules) Validate() error {
	if r.MinWidth <= 0 {
		return fmt.Errorf("layout: MinWidth must be positive, got %d", r.MinWidth)
	}
	if r.MinSpace < 0 {
		return fmt.Errorf("layout: MinSpace must be non-negative, got %d", r.MinSpace)
	}
	if r.MinArea < r.MinWidth*r.MinWidth {
		return fmt.Errorf("layout: MinArea %d below MinWidth² %d", r.MinArea, r.MinWidth*r.MinWidth)
	}
	if r.MaxFillDim != 0 && r.MaxFillDim < r.MinWidth {
		return fmt.Errorf("layout: MaxFillDim %d below MinWidth %d", r.MaxFillDim, r.MinWidth)
	}
	return nil
}

// Layer holds the shapes of one routing layer.
type Layer struct {
	// Wires are the signal shapes (rectangles; polygons are converted on
	// input).
	Wires []geom.Rect
	// FillRegions are the feasible fill regions: disjoint rectangles where
	// dummy fills may be placed. They already exclude wires and the
	// wire-spacing keepout.
	FillRegions []geom.Rect
}

// Layout is a multi-layer design.
type Layout struct {
	Name   string
	Die    geom.Rect
	Window int64 // window size for density analysis
	Rules  Rules
	Layers []*Layer
	// Sites is the standard-cell placement lattice, when the layout has
	// one (DEF ingest, the synthetic row design). Required by the
	// site-grid fill mode; nil for pure continuous-rect layouts.
	Sites *SiteGrid
}

// Validate checks structural consistency: shapes inside the die, fill
// regions disjoint from wires.
func (l *Layout) Validate() error {
	if l.Die.Empty() {
		return fmt.Errorf("layout: empty die")
	}
	if l.Window <= 0 {
		return fmt.Errorf("layout: window size must be positive, got %d", l.Window)
	}
	if err := l.Rules.Validate(); err != nil {
		return err
	}
	if len(l.Layers) == 0 {
		return fmt.Errorf("layout: no layers")
	}
	if l.Sites != nil {
		if err := l.Sites.Validate(); err != nil {
			return err
		}
	}
	for li, layer := range l.Layers {
		ix := geom.NewIndex(l.Die, 0)
		for _, w := range layer.Wires {
			if !l.Die.ContainsRect(w) {
				return fmt.Errorf("layout: layer %d wire %v escapes die %v", li, w, l.Die)
			}
			ix.Insert(w)
		}
		for _, fr := range layer.FillRegions {
			if !l.Die.ContainsRect(fr) {
				return fmt.Errorf("layout: layer %d fill region %v escapes die %v", li, fr, l.Die)
			}
			hit := false
			ix.Query(fr, func(_ int, _ geom.Rect) bool { hit = true; return false })
			if hit {
				return fmt.Errorf("layout: layer %d fill region %v overlaps a wire", li, fr)
			}
		}
	}
	return nil
}

// Grid returns the window dissection of the layout.
func (l *Layout) Grid() (*grid.Grid, error) { return grid.New(l.Die, l.Window) }

// NumShapes returns the total wire rectangle count across layers (the
// "#P" statistic of Table 2).
func (l *Layout) NumShapes() int {
	n := 0
	for _, layer := range l.Layers {
		n += len(layer.Wires)
	}
	return n
}

// Fill is one inserted dummy fill shape.
type Fill struct {
	Layer int
	Rect  geom.Rect
}

// Solution is a complete fill assignment for a layout.
type Solution struct {
	Fills []Fill
}

// PerLayer splits the solution's fill rects by layer, sized to the layout.
func (s *Solution) PerLayer(numLayers int) [][]geom.Rect {
	out := make([][]geom.Rect, numLayers)
	for _, f := range s.Fills {
		if f.Layer >= 0 && f.Layer < numLayers {
			out[f.Layer] = append(out[f.Layer], f.Rect)
		}
	}
	return out
}

// Stats summarises a layout for reporting.
type Stats struct {
	Name       string
	NumLayers  int
	NumShapes  int
	DieArea    int64
	WireArea   []int64   // per layer
	FillArea   []int64   // per layer (feasible fill region area)
	WireDens   []float64 // per layer, whole-die wire density
	NumWindows int
}

// Statistics computes summary statistics of the layout.
func (l *Layout) Statistics() Stats {
	st := Stats{
		Name:      l.Name,
		NumLayers: len(l.Layers),
		NumShapes: l.NumShapes(),
		DieArea:   l.Die.Area(),
	}
	if g, err := l.Grid(); err == nil {
		st.NumWindows = g.NumWindows()
	}
	for _, layer := range l.Layers {
		wa := geom.UnionArea(layer.Wires)
		fa := geom.TotalArea(layer.FillRegions)
		st.WireArea = append(st.WireArea, wa)
		st.FillArea = append(st.FillArea, fa)
		st.WireDens = append(st.WireDens, float64(wa)/float64(l.Die.Area()))
	}
	return st
}

// WireDensityMap returns the per-window wire density of layer li.
func (l *Layout) WireDensityMap(g *grid.Grid, li int) *grid.Map {
	// Wires may overlap each other (routes + vias); compute exact union
	// area per window by clipping each wire to windows, then removing
	// double counting per window.
	perWin := make(map[int][]geom.Rect)
	for _, w := range l.Layers[li].Wires {
		g.RangeOverlapping(w, func(i, j int, clip geom.Rect) {
			k := j*g.NX + i
			perWin[k] = append(perWin[k], clip)
		})
	}
	area := grid.NewMap(g)
	for k := range area.V {
		if rects := perWin[k]; len(rects) > 0 {
			area.V[k] = float64(geom.UnionArea(rects))
		}
	}
	return grid.DensityMap(area)
}

// FillRegionAreaMap returns the per-window feasible fill-region area of
// layer li (fill regions are disjoint by construction, so plain
// accumulation is exact).
func (l *Layout) FillRegionAreaMap(g *grid.Grid, li int) *grid.Map {
	return grid.AreaMap(g, l.Layers[li].FillRegions)
}
