package layout

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"dummyfill/internal/geom"
)

// SiteGrid describes a uniform standard-cell placement lattice: Rows
// horizontal placement rows of height RowH stacked from Origin upward,
// each divided into Sites columns of width SiteW. Placed components —
// and site-mode dummy fillers — occupy whole sites of whole rows, so
// every legal shape is an integer number of sites wide and exactly one
// row tall. DEF layouts carry the lattice in their ROW statements; the
// synthetic row design generates one covering the die.
type SiteGrid struct {
	Origin geom.Point // lower-left corner of row 0, site 0
	SiteW  int64      // site width (placement pitch)
	RowH   int64      // row height
	Rows   int        // number of rows
	Sites  int        // number of sites per row
}

// Validate checks lattice sanity.
func (s SiteGrid) Validate() error {
	if s.SiteW <= 0 || s.RowH <= 0 {
		return fmt.Errorf("layout: site grid needs positive SiteW and RowH, got %d×%d", s.SiteW, s.RowH)
	}
	if s.Rows <= 0 || s.Sites <= 0 {
		return fmt.Errorf("layout: site grid needs positive Rows and Sites, got %d×%d", s.Rows, s.Sites)
	}
	return nil
}

// RowY returns the bottom edge of row j.
func (s SiteGrid) RowY(j int) int64 { return s.Origin.Y + int64(j)*s.RowH }

// SiteX returns the left edge of site i.
func (s SiteGrid) SiteX(i int) int64 { return s.Origin.X + int64(i)*s.SiteW }

// Bounds returns the rectangle covered by the whole lattice.
func (s SiteGrid) Bounds() geom.Rect {
	return geom.Rect{
		XL: s.Origin.X, YL: s.Origin.Y,
		XH: s.SiteX(s.Sites), YH: s.RowY(s.Rows),
	}
}

// Aligned reports whether r is a legal site-grid shape: bottom on a row
// boundary, exactly one row tall, and both vertical edges on site
// boundaries within the lattice.
func (s SiteGrid) Aligned(r geom.Rect) bool {
	if r.H() != s.RowH || (r.YL-s.Origin.Y)%s.RowH != 0 {
		return false
	}
	if (r.XL-s.Origin.X)%s.SiteW != 0 || (r.XH-s.Origin.X)%s.SiteW != 0 {
		return false
	}
	b := s.Bounds()
	return r.XL >= b.XL && r.XH <= b.XH && r.YL >= b.YL && r.YH <= b.YH
}

// FillLib is a discrete filler-cell master library: the legal fill
// widths, in sites, a site-mode filler may take. Master names follow the
// OpenROAD filler convention Prefix + width-in-sites (FILL_X1, FILL_X2,
// …); the writer derives the master from a filler's width and the reader
// recovers the width from the name, so no LEF is needed for the subset.
type FillLib struct {
	Prefix string  // master name prefix, e.g. "FILL_X"
	Widths []int64 // legal widths in sites, ascending, all positive
}

// DefaultFillLib returns the power-of-two library the synthetic row
// design and the CLIs use when no explicit library is configured.
func DefaultFillLib() *FillLib {
	return &FillLib{Prefix: "FILL_X", Widths: []int64{1, 2, 4, 8, 16, 32}}
}

// Validate checks library sanity.
func (fl *FillLib) Validate() error {
	if fl.Prefix == "" {
		return fmt.Errorf("layout: fill library needs a master name prefix")
	}
	if len(fl.Widths) == 0 {
		return fmt.Errorf("layout: fill library needs at least one width")
	}
	for i, w := range fl.Widths {
		if w <= 0 {
			return fmt.Errorf("layout: fill library width %d must be positive, got %d", i, w)
		}
		if i > 0 && w <= fl.Widths[i-1] {
			return fmt.Errorf("layout: fill library widths must be strictly ascending, got %v", fl.Widths)
		}
	}
	return nil
}

// ID is the library's identity string for cache fingerprints and
// benchmark rows: the prefix plus the width list.
func (fl *FillLib) ID() string {
	var b strings.Builder
	b.WriteString(fl.Prefix)
	for i, w := range fl.Widths {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(w, 10))
	}
	return b.String()
}

// Master names the library master of a filler that is sites sites wide.
func (fl *FillLib) Master(sites int64) string {
	return fl.Prefix + strconv.FormatInt(sites, 10)
}

// WidthFor returns the largest library width not exceeding maxSites, or
// 0 when even the smallest master does not fit.
func (fl *FillLib) WidthFor(maxSites int64) int64 {
	i := sort.Search(len(fl.Widths), func(i int) bool { return fl.Widths[i] > maxSites })
	if i == 0 {
		return 0
	}
	return fl.Widths[i-1]
}
