package layout

import (
	"testing"

	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
)

func testRules() Rules {
	return Rules{MinWidth: 2, MinSpace: 2, MinArea: 4, MaxFillDim: 50}
}

func smallLayout() *Layout {
	return &Layout{
		Name:   "t",
		Die:    geom.R(0, 0, 100, 100),
		Window: 50,
		Rules:  testRules(),
		Layers: []*Layer{
			{
				Wires:       []geom.Rect{geom.R(0, 0, 40, 10)},
				FillRegions: []geom.Rect{geom.R(0, 20, 100, 100)},
			},
			{
				Wires:       []geom.Rect{geom.R(60, 60, 100, 100)},
				FillRegions: []geom.Rect{geom.R(0, 0, 50, 50)},
			},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := smallLayout().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadShapes(t *testing.T) {
	l := smallLayout()
	l.Layers[0].Wires = append(l.Layers[0].Wires, geom.R(90, 90, 120, 120))
	if err := l.Validate(); err == nil {
		t.Fatal("wire escaping die must fail")
	}

	l = smallLayout()
	l.Layers[0].FillRegions = []geom.Rect{geom.R(0, 0, 50, 50)} // overlaps wire
	if err := l.Validate(); err == nil {
		t.Fatal("fill region overlapping wire must fail")
	}

	l = smallLayout()
	l.Window = 0
	if err := l.Validate(); err == nil {
		t.Fatal("zero window must fail")
	}

	l = smallLayout()
	l.Layers = nil
	if err := l.Validate(); err == nil {
		t.Fatal("no layers must fail")
	}
}

func TestRulesValidate(t *testing.T) {
	cases := []struct {
		r  Rules
		ok bool
	}{
		{Rules{MinWidth: 2, MinSpace: 2, MinArea: 4, MaxFillDim: 50}, true},
		{Rules{MinWidth: 0, MinSpace: 2, MinArea: 4}, false},
		{Rules{MinWidth: 2, MinSpace: -1, MinArea: 4}, false},
		{Rules{MinWidth: 2, MinSpace: 2, MinArea: 1}, false},                 // below wm²
		{Rules{MinWidth: 5, MinSpace: 2, MinArea: 25, MaxFillDim: 3}, false}, // max < min
		{Rules{MinWidth: 2, MinSpace: 0, MinArea: 4, MaxFillDim: 0}, true},   // unlimited max
	}
	for i, c := range cases {
		err := c.r.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestStatistics(t *testing.T) {
	l := smallLayout()
	st := l.Statistics()
	if st.NumLayers != 2 || st.NumShapes != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.WireArea[0] != 400 {
		t.Fatalf("layer 0 wire area = %d, want 400", st.WireArea[0])
	}
	if st.WireDens[0] != 0.04 {
		t.Fatalf("layer 0 wire density = %v, want 0.04", st.WireDens[0])
	}
	if st.NumWindows != 4 {
		t.Fatalf("windows = %d, want 4", st.NumWindows)
	}
}

func TestWireDensityMapOverlapHandling(t *testing.T) {
	l := smallLayout()
	// Duplicate a wire exactly: union density must not double count.
	l.Layers[0].Wires = append(l.Layers[0].Wires, l.Layers[0].Wires[0])
	g, err := l.Grid()
	if err != nil {
		t.Fatal(err)
	}
	m := l.WireDensityMap(g, 0)
	// Window (0,0) is 50x50 = 2500; wire covers 40x10 = 400.
	if got := m.At(0, 0); got != 400.0/2500 {
		t.Fatalf("density = %v, want %v", got, 400.0/2500)
	}
}

func TestFillRegionAreaMap(t *testing.T) {
	l := smallLayout()
	g, _ := l.Grid()
	m := l.FillRegionAreaMap(g, 1)
	if m.At(0, 0) != 2500 {
		t.Fatalf("fill region area (0,0) = %v, want 2500", m.At(0, 0))
	}
	if m.At(1, 1) != 0 {
		t.Fatalf("fill region area (1,1) = %v, want 0", m.At(1, 1))
	}
}

func TestSolutionPerLayer(t *testing.T) {
	s := &Solution{Fills: []Fill{
		{0, geom.R(0, 0, 5, 5)},
		{1, geom.R(10, 10, 15, 15)},
		{0, geom.R(20, 20, 25, 25)},
		{7, geom.R(0, 0, 1, 1)}, // out of range: dropped
	}}
	per := s.PerLayer(2)
	if len(per[0]) != 2 || len(per[1]) != 1 {
		t.Fatalf("per-layer split wrong: %v", per)
	}
}

func TestGridAccessor(t *testing.T) {
	l := smallLayout()
	g, err := l.Grid()
	if err != nil {
		t.Fatal(err)
	}
	var _ *grid.Grid = g
	if g.NX != 2 || g.NY != 2 {
		t.Fatalf("grid %dx%d, want 2x2", g.NX, g.NY)
	}
}
