package layout

import (
	"strings"
	"testing"

	"dummyfill/internal/geom"
)

func TestBuilderBuild(t *testing.T) {
	rules := Rules{MinWidth: 2, MinSpace: 1, MinArea: 4}
	lay, err := NewBuilder().
		SetName("chip").
		SetDie(geom.Rect{XL: 0, YL: 0, XH: 100, YH: 100}).
		SetWindow(25).
		SetRules(rules).
		AddWire(0, geom.Rect{XL: 10, YL: 10, XH: 20, YH: 20}).
		AddWire(1, geom.Rect{XL: 30, YL: 30, XH: 40, YH: 40}).
		AddFillRegion(0, geom.Rect{XL: 50, YL: 50, XH: 60, YH: 60}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if lay.Name != "chip" || len(lay.Layers) != 2 {
		t.Fatalf("built %q with %d layers, want chip with 2", lay.Name, len(lay.Layers))
	}
	if len(lay.Layers[0].Wires) != 1 || len(lay.Layers[0].FillRegions) != 1 || len(lay.Layers[1].Wires) != 1 {
		t.Fatalf("shape counts wrong: %+v", lay.Layers)
	}
}

func TestBuilderStickyError(t *testing.T) {
	b := NewBuilder().AddWire(-3, geom.Rect{XL: 0, YL: 0, XH: 1, YH: 1})
	if b.Err() == nil || !strings.Contains(b.Err().Error(), "negative layer id -3") {
		t.Fatalf("Err() = %v, want negative layer id", b.Err())
	}
	// Every later call must be a no-op and Build must report the first
	// error, not a validation error from the half-built layout.
	first := b.Err()
	b.SetName("late").AddWire(0, geom.Rect{XL: 0, YL: 0, XH: 1, YH: 1})
	if b.NumLayers() != 0 {
		t.Fatalf("sticky builder still grew to %d layers", b.NumLayers())
	}
	if _, err := b.Build(); err != first {
		t.Fatalf("Build() error %v, want first error %v", err, first)
	}
}

func TestBuilderLayerCap(t *testing.T) {
	b := NewBuilder().EnsureLayers(MaxBuilderLayers)
	if b.Err() != nil {
		t.Fatalf("EnsureLayers(cap) failed: %v", b.Err())
	}
	b = NewBuilder().AddWire(MaxBuilderLayers, geom.Rect{XL: 0, YL: 0, XH: 1, YH: 1})
	if b.Err() == nil || !strings.Contains(b.Err().Error(), "exceeds cap") {
		t.Fatalf("Err() = %v, want layer-cap error", b.Err())
	}
}

func TestBuilderValidates(t *testing.T) {
	// A wire escaping the die must fail Build via Layout.Validate.
	_, err := NewBuilder().
		SetDie(geom.Rect{XL: 0, YL: 0, XH: 10, YH: 10}).
		SetWindow(5).
		SetRules(Rules{MinWidth: 1, MinArea: 1}).
		AddWire(0, geom.Rect{XL: 5, YL: 5, XH: 15, YH: 15}).
		Build()
	if err == nil || !strings.Contains(err.Error(), "escapes die") {
		t.Fatalf("Build() error %v, want escapes-die validation error", err)
	}
}
