package layout

import (
	"fmt"

	"dummyfill/internal/geom"
)

// MaxBuilderLayers caps the layer stack a Builder will grow to. Layer
// ids come straight off untrusted streams; without a cap a single
// hostile shape on layer 2^40 would allocate a dense slice that large.
// Real processes stop well short of 65536 routing layers.
const MaxBuilderLayers = 1 << 16

// Builder constructs a Layout incrementally, so streaming readers can
// add shapes as they are parsed without materializing an intermediate
// per-format library. Errors are sticky: after the first failure every
// method is a no-op and Build reports the error, so call sites can chain
// adds unchecked.
type Builder struct {
	lay *Layout
	err error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{lay: &Layout{}}
}

// SetName sets the layout name.
func (b *Builder) SetName(name string) *Builder {
	if b.err == nil {
		b.lay.Name = name
	}
	return b
}

// SetDie sets the die rectangle.
func (b *Builder) SetDie(die geom.Rect) *Builder {
	if b.err == nil {
		b.lay.Die = die
	}
	return b
}

// SetWindow sets the density-analysis window size.
func (b *Builder) SetWindow(w int64) *Builder {
	if b.err == nil {
		b.lay.Window = w
	}
	return b
}

// SetRules sets the fill rule set.
func (b *Builder) SetRules(r Rules) *Builder {
	if b.err == nil {
		b.lay.Rules = r
	}
	return b
}

// SetSites sets the standard-cell placement lattice.
func (b *Builder) SetSites(s SiteGrid) *Builder {
	if b.err == nil {
		sites := s
		b.lay.Sites = &sites
	}
	return b
}

// EnsureLayers grows the layer stack to at least n layers.
func (b *Builder) EnsureLayers(n int) *Builder {
	if b.err != nil {
		return b
	}
	if n > MaxBuilderLayers {
		b.err = fmt.Errorf("layout: layer count %d exceeds cap %d", n, MaxBuilderLayers)
		return b
	}
	for len(b.lay.Layers) < n {
		b.lay.Layers = append(b.lay.Layers, &Layer{})
	}
	return b
}

// AddWire appends a wire rectangle to the given layer, growing the
// stack as needed.
func (b *Builder) AddWire(layer int, r geom.Rect) *Builder {
	if l := b.layer(layer); l != nil {
		l.Wires = append(l.Wires, r)
	}
	return b
}

// AddFillRegion appends a feasible-fill-region rectangle to the given
// layer, growing the stack as needed.
func (b *Builder) AddFillRegion(layer int, r geom.Rect) *Builder {
	if l := b.layer(layer); l != nil {
		l.FillRegions = append(l.FillRegions, r)
	}
	return b
}

func (b *Builder) layer(li int) *Layer {
	if b.err != nil {
		return nil
	}
	if li < 0 {
		b.err = fmt.Errorf("layout: negative layer id %d", li)
		return nil
	}
	if b.EnsureLayers(li + 1); b.err != nil {
		return nil
	}
	return b.lay.Layers[li]
}

// NumLayers reports the current layer-stack depth.
func (b *Builder) NumLayers() int { return len(b.lay.Layers) }

// Err reports the first error any earlier call recorded.
func (b *Builder) Err() error { return b.err }

// Build validates and returns the layout. The Builder must not be used
// afterwards.
func (b *Builder) Build() (*Layout, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.lay.Validate(); err != nil {
		return nil, err
	}
	return b.lay, nil
}
