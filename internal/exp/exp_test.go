package exp

import (
	"bytes"
	"strings"
	"testing"

	"dummyfill/internal/cmppad"
	"dummyfill/internal/fill"
)

// stubMeasure runs the workload without instrumentation.
func stubMeasure(f func() error) (float64, float64, error) { return 0, 0, f() }

func TestTable2Tiny(t *testing.T) {
	rows, err := Table2([]string{"tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Design != "tiny" || r.Shapes != 2400 || r.Layers != 3 || r.FileSizeB <= 0 {
		t.Fatalf("row %+v", r)
	}
	if r.Coeffs.BetaVar <= 0 {
		t.Fatalf("uncalibrated: %+v", r.Coeffs)
	}
	if _, err := Table2([]string{"bogus"}); err == nil {
		t.Fatal("bad design must error")
	}
}

func TestTable3TinyOursWins(t *testing.T) {
	rows, err := Table3([]string{"tiny"}, fill.DefaultOptions(), stubMeasure)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // ours + 4 baselines
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	var oursQ float64
	for _, r := range rows {
		if r.Method == "ours" {
			oursQ = r.Report.Quality
		}
	}
	for _, r := range rows {
		if r.Method != "ours" && r.Report.Quality >= oursQ {
			t.Fatalf("%s quality %.3f >= ours %.3f", r.Method, r.Report.Quality, oursQ)
		}
	}
}

func TestFig6Exact(t *testing.T) {
	rows, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Objective != 29 {
			t.Fatalf("%s objective = %d", r.Solver, r.Objective)
		}
		want := []int64{5, 0, 0, 6}
		for i := range want {
			if r.X[i] != want[i] {
				t.Fatalf("%s x = %v", r.Solver, r.X)
			}
		}
	}
}

func TestCMPTinyImproves(t *testing.T) {
	rows, err := CMP([]string{"tiny"}, fill.DefaultOptions(), cmppad.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 layers", len(rows))
	}
	for _, r := range rows {
		if r.Improvement <= 1 {
			t.Fatalf("layer %d improvement %.2f <= 1", r.Layer, r.Improvement)
		}
	}
}

func TestRenderFormats(t *testing.T) {
	rows, err := Table2([]string{"tiny"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Format{Text, CSV, Markdown} {
		var buf bytes.Buffer
		if err := RenderTable2(&buf, f, rows); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if !strings.Contains(out, "tiny") {
			t.Fatalf("format %s missing data: %s", f, out)
		}
		lines := strings.Count(out, "\n")
		switch f {
		case CSV:
			if lines != 2 {
				t.Fatalf("csv lines = %d", lines)
			}
			if !strings.HasPrefix(out, "design,shapes") {
				t.Fatalf("csv header wrong: %s", out)
			}
		case Markdown:
			if lines != 3 || !strings.HasPrefix(out, "| design |") {
				t.Fatalf("markdown shape wrong: %s", out)
			}
		}
	}
}

func TestRenderCSVQuoting(t *testing.T) {
	var buf bytes.Buffer
	err := table(&buf, CSV, []string{"a", "b"}, [][]string{{`x,y`, `he said "hi"`}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n"
	if buf.String() != want {
		t.Fatalf("csv quoting: %q", buf.String())
	}
}

func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"text", "csv", "md"} {
		if _, err := ParseFormat(ok); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Fatal("unknown format must error")
	}
}

func TestRenderFig6AndCMP(t *testing.T) {
	f6, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderFig6(&buf, Text, f6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[5 0 0 6]") {
		t.Fatalf("fig6 render: %s", buf.String())
	}
	buf.Reset()
	if err := RenderCMP(&buf, CSV, []CMPRow{{Design: "d", Layer: 0, RangeBefore: 2, RangeAfter: 1, Improvement: 2}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2.0x") {
		t.Fatalf("cmp render: %s", buf.String())
	}
}
