package exp

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers for -pprof
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiling bundles the standard profiling options shared by the CLIs
// (repro, fillgen, benchjson): a CPU profile, an exit heap profile and a
// live net/http/pprof endpoint. Register the flags, then wrap the work in
// Start/stop:
//
//	var prof exp.Profiling
//	prof.RegisterFlags(flag.CommandLine)
//	flag.Parse()
//	stop, err := prof.Start()
//	if err != nil { ... }
//	defer stop()
type Profiling struct {
	CPUProfile string
	MemProfile string
	PprofAddr  string
}

// RegisterFlags registers -cpuprofile, -memprofile and -pprof on fs.
func (p *Profiling) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&p.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while running")
}

// Start begins the requested profiling and returns a stop function to
// defer: it finalizes the CPU profile and writes the heap profile.
// Failures after Start (pprof server, heap profile write) are reported to
// stderr rather than aborting the run — the measured work matters more
// than the measurement.
func (p *Profiling) Start() (stop func(), err error) {
	if p.PprofAddr != "" {
		addr := p.PprofAddr
		//filllint:allow goleak -- the debug pprof listener intentionally lives for the whole process; there is no join or cancel edge to prove
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof server:", err)
			}
		}()
	}
	var cpuFile *os.File
	if p.CPUProfile != "" {
		cpuFile, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	memProfile := p.MemProfile
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memProfile != "" {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "heap profile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "heap profile:", err)
			}
		}
	}, nil
}
