package exp

import (
	"fmt"
	"io"
	"strings"
)

// Format selects a renderer.
type Format string

// Supported output formats.
const (
	Text     Format = "text"
	CSV      Format = "csv"
	Markdown Format = "md"
)

// ParseFormat validates a format name.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case Text, CSV, Markdown:
		return Format(s), nil
	default:
		return "", fmt.Errorf("exp: unknown format %q (want text, csv or md)", s)
	}
}

// table renders a header + rows in the chosen format.
func table(w io.Writer, f Format, header []string, rows [][]string) error {
	switch f {
	case CSV:
		write := func(cells []string) error {
			for i, c := range cells {
				if strings.ContainsAny(c, ",\"\n") {
					c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
				}
				if i > 0 {
					if _, err := io.WriteString(w, ","); err != nil {
						return err
					}
				}
				if _, err := io.WriteString(w, c); err != nil {
					return err
				}
			}
			_, err := io.WriteString(w, "\n")
			return err
		}
		if err := write(header); err != nil {
			return err
		}
		for _, r := range rows {
			if err := write(r); err != nil {
				return err
			}
		}
		return nil
	case Markdown:
		fmt.Fprintf(w, "| %s |\n", strings.Join(header, " | "))
		seps := make([]string, len(header))
		for i := range seps {
			seps[i] = "---"
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
		for _, r := range rows {
			fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
		}
		return nil
	default: // Text: aligned columns
		widths := make([]int, len(header))
		for i, h := range header {
			widths[i] = len(h)
		}
		for _, r := range rows {
			for i, c := range r {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		line := func(cells []string) {
			for i, c := range cells {
				fmt.Fprintf(w, "%-*s ", widths[i], c)
			}
			fmt.Fprintln(w)
		}
		line(header)
		for _, r := range rows {
			line(r)
		}
		return nil
	}
}

// RenderTable2 writes Table 2 rows.
func RenderTable2(w io.Writer, f Format, rows []Table2Row) error {
	header := []string{"design", "shapes", "layers", "file_size_bytes",
		"beta_overlay", "beta_var", "beta_line", "beta_outlier", "beta_size_mib", "beta_rt_s", "beta_mem_mib"}
	var cells [][]string
	for _, r := range rows {
		c := r.Coeffs
		cells = append(cells, []string{
			r.Design,
			fmt.Sprintf("%d", r.Shapes),
			fmt.Sprintf("%d", r.Layers),
			fmt.Sprintf("%d", r.FileSizeB),
			fmt.Sprintf("%.3e", c.BetaOverlay),
			fmt.Sprintf("%.4f", c.BetaVar),
			fmt.Sprintf("%.2f", c.BetaLine),
			fmt.Sprintf("%.4f", c.BetaOutlier),
			fmt.Sprintf("%.2f", c.BetaSize),
			fmt.Sprintf("%.0f", c.BetaRuntime),
			fmt.Sprintf("%.0f", c.BetaMemory),
		})
	}
	return table(w, f, header, cells)
}

// RenderTable3 writes Table 3 rows.
func RenderTable3(w io.Writer, f Format, rows []Table3Row) error {
	header := []string{"design", "method", "overlay", "variation", "line",
		"outlier", "size", "runtime", "memory", "quality", "score", "fills"}
	var cells [][]string
	for _, r := range rows {
		rep := r.Report
		cells = append(cells, []string{
			r.Design, r.Method,
			fmt.Sprintf("%.3f", rep.Overlay),
			fmt.Sprintf("%.3f", rep.Variation),
			fmt.Sprintf("%.3f", rep.Line),
			fmt.Sprintf("%.3f", rep.Outlier),
			fmt.Sprintf("%.3f", rep.Size),
			fmt.Sprintf("%.3f", rep.Runtime),
			fmt.Sprintf("%.3f", rep.Memory),
			fmt.Sprintf("%.3f", rep.Quality),
			fmt.Sprintf("%.3f", rep.Total),
			fmt.Sprintf("%d", r.Fills),
		})
	}
	return table(w, f, header, cells)
}

// RenderCMP writes CMP-motivation rows.
func RenderCMP(w io.Writer, f Format, rows []CMPRow) error {
	header := []string{"design", "layer", "range_before", "range_after", "improvement"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Design,
			fmt.Sprintf("%d", r.Layer),
			fmt.Sprintf("%.1f", r.RangeBefore),
			fmt.Sprintf("%.1f", r.RangeAfter),
			fmt.Sprintf("%.1fx", r.Improvement),
		})
	}
	return table(w, f, header, cells)
}

// RenderFig6 writes the worked-example results.
func RenderFig6(w io.Writer, f Format, rows []Fig6Result) error {
	header := []string{"solver", "x", "objective"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Solver,
			fmt.Sprintf("%v", r.X),
			fmt.Sprintf("%d", r.Objective),
		})
	}
	return table(w, f, header, cells)
}
