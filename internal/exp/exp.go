// Package exp runs the paper's experiments as a library: structured rows
// for Table 2 (benchmark statistics), Table 3 (method comparison), the
// Fig. 6 worked example and the CMP-motivation study, plus text / CSV /
// Markdown renderers. cmd/repro is a thin wrapper around this package so
// the experiment logic itself is unit-tested.
package exp

import (
	"context"
	"fmt"

	"dummyfill/internal/baseline"
	"dummyfill/internal/cmppad"
	"dummyfill/internal/dlp"
	"dummyfill/internal/fill"
	"dummyfill/internal/gdsii"
	"dummyfill/internal/layout"
	"dummyfill/internal/score"
	"dummyfill/internal/synth"
)

// Table2Row is one design's statistics and coefficients.
type Table2Row struct {
	Design    string
	Shapes    int
	Layers    int
	FileSizeB int64
	Coeffs    score.Coefficients
}

// Table2 generates the designs and calibrates their coefficients.
func Table2(designs []string) ([]Table2Row, error) {
	var out []Table2Row
	for _, n := range designs {
		sp, err := synth.ByName(n)
		if err != nil {
			return nil, err
		}
		lay, err := synth.Generate(sp)
		if err != nil {
			return nil, err
		}
		c, err := synth.Coefficients(sp, lay)
		if err != nil {
			return nil, err
		}
		sz, err := gdsii.FromLayout(lay, nil).EncodedSize()
		if err != nil {
			return nil, err
		}
		out = append(out, Table2Row{
			Design: sp.Name, Shapes: lay.NumShapes(), Layers: len(lay.Layers),
			FileSizeB: sz, Coeffs: c,
		})
	}
	return out, nil
}

// Table3Row is one (design, method) evaluation. Health is set only for
// the engine method ("ours"); the baselines have no degradation modes.
type Table3Row struct {
	Design string
	Method string
	Report *score.Report
	Fills  int
	Health *fill.Health
}

// Method is a named fill runner. The baselines ignore the context and
// return a nil health report.
type Method struct {
	Name string
	Run  func(ctx context.Context, lay *layout.Layout) (*layout.Solution, *fill.Health, error)
}

// Methods returns the paper's engine plus the four baselines.
func Methods(opts fill.Options) []Method {
	ours := Method{Name: "ours", Run: func(ctx context.Context, lay *layout.Layout) (*layout.Solution, *fill.Health, error) {
		e, err := fill.New(lay, opts)
		if err != nil {
			return nil, nil, err
		}
		res, err := e.RunContext(ctx)
		if err != nil {
			return nil, nil, err
		}
		return &res.Solution, &res.Health, nil
	}}
	out := []Method{ours}
	for _, f := range []baseline.Filler{
		baseline.TileLP{},
		baseline.MonteCarlo{Seed: 42},
		baseline.CouplingConstrained{},
		baseline.Greedy{},
	} {
		f := f
		out = append(out, Method{Name: f.Name(), Run: func(ctx context.Context, lay *layout.Layout) (*layout.Solution, *fill.Health, error) {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			sol, err := f.Fill(lay)
			return sol, nil, err
		}})
	}
	return out
}

// MeasureFn runs a workload and reports (seconds, peak MiB). The harness
// supplies a sampler; tests can supply a stub.
type MeasureFn func(func() error) (float64, float64, error)

// Table3 runs every method on every design. measure supplies the
// runtime/memory instrumentation (pass a stub returning zeros to skip).
func Table3(designs []string, opts fill.Options, measure MeasureFn) ([]Table3Row, error) {
	return Table3Ctx(context.Background(), designs, opts, measure)
}

// Design is one ready-to-run evaluation input: a layout plus its
// calibrated score coefficients. Table3Ctx builds these from the
// synthetic suite; callers with external layouts (ingested GDSII/OASIS/
// text files) construct their own.
type Design struct {
	Name   string
	Lay    *layout.Layout
	Coeffs score.Coefficients
}

// Table3Ctx is Table3 under a context: cancellation aborts between (and,
// for the engine, inside) method runs.
func Table3Ctx(ctx context.Context, designs []string, opts fill.Options, measure MeasureFn) ([]Table3Row, error) {
	ds := make([]Design, 0, len(designs))
	for _, n := range designs {
		sp, err := synth.ByName(n)
		if err != nil {
			return nil, err
		}
		lay, err := synth.Generate(sp)
		if err != nil {
			return nil, err
		}
		coeffs, err := synth.Coefficients(sp, lay)
		if err != nil {
			return nil, err
		}
		ds = append(ds, Design{Name: n, Lay: lay, Coeffs: coeffs})
	}
	return Table3Designs(ctx, ds, opts, measure)
}

// Table3Designs runs every method on every pre-built design.
func Table3Designs(ctx context.Context, designs []Design, opts fill.Options, measure MeasureFn) ([]Table3Row, error) {
	var out []Table3Row
	for _, d := range designs {
		n, lay, coeffs := d.Name, d.Lay, d.Coeffs
		for _, m := range Methods(opts) {
			var sol *layout.Solution
			var health *fill.Health
			sec, mem, err := measure(func() error {
				var err error
				sol, health, err = m.Run(ctx, lay)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("design %s method %s: %w", n, m.Name, err)
			}
			sz, err := gdsii.FromSolution(lay.Name, sol).EncodedSize()
			if err != nil {
				return nil, err
			}
			raw, err := score.Measure(lay, sol, sz, sec, mem)
			if err != nil {
				return nil, err
			}
			out = append(out, Table3Row{
				Design: n, Method: m.Name,
				Report: score.Score(raw, coeffs), Fills: len(sol.Fills),
				Health: health,
			})
		}
	}
	return out, nil
}

// Fig6Result is one solver's answer to the worked example.
type Fig6Result struct {
	Solver    string
	X         []int64
	Objective int64
}

// Fig6 solves the paper's worked example with both dual-MCF backends.
func Fig6() ([]Fig6Result, error) {
	build := func() *dlp.Problem {
		p := dlp.NewProblem(4, 10)
		p.C = []int64{1, 2, 3, 4}
		p.AddConstraint(0, 1, 5)
		p.AddConstraint(3, 2, 6)
		return p
	}
	var out []Fig6Result
	for _, s := range []struct {
		name string
		sv   dlp.Solver
	}{{"SSP", dlp.SSP}, {"NetworkSimplex", dlp.NetworkSimplex}} {
		x, obj, err := build().SolveWith(s.sv)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig6Result{Solver: s.name, X: x, Objective: obj})
	}
	return out, nil
}

// CMPRow is one (design, layer) planarity comparison.
type CMPRow struct {
	Design      string
	Layer       int
	RangeBefore float64
	RangeAfter  float64
	Improvement float64
}

// CMP runs the planarity motivation study.
func CMP(designs []string, opts fill.Options, params cmppad.Params) ([]CMPRow, error) {
	var out []CMPRow
	for _, n := range designs {
		sp, err := synth.ByName(n)
		if err != nil {
			return nil, err
		}
		lay, err := synth.Generate(sp)
		if err != nil {
			return nil, err
		}
		e, err := fill.New(lay, opts)
		if err != nil {
			return nil, err
		}
		res, err := e.Run()
		if err != nil {
			return nil, err
		}
		_, _, _, before, err := score.MeasureDensity(lay, &layout.Solution{})
		if err != nil {
			return nil, err
		}
		_, _, _, after, err := score.MeasureDensity(lay, &res.Solution)
		if err != nil {
			return nil, err
		}
		for li := range lay.Layers {
			pb, err := cmppad.Evaluate(before[li], params)
			if err != nil {
				return nil, err
			}
			pa, err := cmppad.Evaluate(after[li], params)
			if err != nil {
				return nil, err
			}
			imp := 0.0
			if pa.Range > 0 {
				imp = pb.Range / pa.Range
			}
			out = append(out, CMPRow{
				Design: n, Layer: li,
				RangeBefore: pb.Range, RangeAfter: pa.Range, Improvement: imp,
			})
		}
	}
	return out, nil
}
