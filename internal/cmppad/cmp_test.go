package cmppad

import (
	"math"
	"testing"

	"dummyfill/internal/density"
	"dummyfill/internal/fill"
	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
	"dummyfill/internal/score"
	"dummyfill/internal/synth"
)

func mapWith(t *testing.T, nx, ny int, f func(i, j int) float64) *grid.Map {
	t.Helper()
	g, err := grid.New(geom.R(0, 0, int64(nx)*1000, int64(ny)*1000), 1000)
	if err != nil {
		t.Fatal(err)
	}
	m := grid.NewMap(g)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			m.Set(i, j, f(i, j))
		}
	}
	return m
}

func TestUniformDensityIsPlanar(t *testing.T) {
	m := mapWith(t, 8, 8, func(i, j int) float64 { return 0.5 })
	pl, err := Evaluate(m, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Range > 1e-9 || pl.Sigma > 1e-9 {
		t.Fatalf("uniform density must polish planar: %+v", pl)
	}
}

func TestDensityGradientCausesTopography(t *testing.T) {
	m := mapWith(t, 16, 16, func(i, j int) float64 { return 0.1 + 0.05*float64(i) })
	pl, err := Evaluate(m, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Range <= 0 {
		t.Fatalf("gradient must cause topography: %+v", pl)
	}
}

func TestHigherDensityPolishesSlower(t *testing.T) {
	m := mapWith(t, 8, 8, func(i, j int) float64 {
		if i < 4 {
			return 0.2
		}
		return 0.8
	})
	p := DefaultParams()
	p.PlanarizationLength = 500 // essentially no smoothing at 1000-DBU windows
	h, err := Simulate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if h.At(0, 0) >= h.At(7, 0) {
		t.Fatalf("sparse area must sit lower after polish: %v vs %v", h.At(0, 0), h.At(7, 0))
	}
}

func TestEffectiveDensitySmooths(t *testing.T) {
	m := mapWith(t, 16, 16, func(i, j int) float64 {
		if i == 8 && j == 8 {
			return 1
		}
		return 0
	})
	eff := EffectiveDensity(m, 4000)
	if eff.At(8, 8) >= 1 {
		t.Fatalf("spike must be smoothed down: %v", eff.At(8, 8))
	}
	if eff.At(7, 8) <= 0 {
		t.Fatal("neighbour must receive smoothed density")
	}
	// Mean is approximately preserved by the renormalized kernel
	// (boundary renormalization introduces slight distortion).
	if math.Abs(eff.Mean()-m.Mean()) > 0.01*m.Mean()+1e-3 {
		t.Fatalf("smoothing distorted the mean: %v vs %v", eff.Mean(), m.Mean())
	}
}

func TestEffectiveDensityZeroLength(t *testing.T) {
	m := mapWith(t, 4, 4, func(i, j int) float64 { return float64(i) / 4 })
	eff := EffectiveDensity(m, 0)
	for k := range m.V {
		if eff.V[k] != m.V[k] {
			t.Fatal("zero planarization length must be identity")
		}
	}
}

func TestSimulateParamValidation(t *testing.T) {
	m := mapWith(t, 2, 2, func(i, j int) float64 { return 0.5 })
	bad := DefaultParams()
	bad.BlanketRate = 0
	if _, err := Simulate(m, bad); err == nil {
		t.Fatal("zero blanket rate must error")
	}
	bad = DefaultParams()
	bad.PolishTime = -1
	if _, err := Simulate(m, bad); err == nil {
		t.Fatal("negative time must error")
	}
}

func TestLongerPolishLowersSurface(t *testing.T) {
	m := mapWith(t, 4, 4, func(i, j int) float64 { return 0.5 })
	p := DefaultParams()
	h1, err := Simulate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	p.PolishTime *= 2
	h2, err := Simulate(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if h2.At(0, 0) >= h1.At(0, 0) {
		t.Fatal("longer polish must remove more material")
	}
}

// TestFillImprovesPlanarity is the motivation experiment: run the fill
// engine on the tiny synthetic design and verify the simulated post-CMP
// planarity improves on every layer.
func TestFillImprovesPlanarity(t *testing.T) {
	lay, err := synth.Generate(synth.DesignTiny())
	if err != nil {
		t.Fatal(err)
	}
	e, err := fill.New(lay, fill.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := lay.Grid()
	_, _, _, after, err := score.MeasureDensity(lay, &res.Solution)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	for li := range lay.Layers {
		before := lay.WireDensityMap(g, li)
		plB, err := Evaluate(before, p)
		if err != nil {
			t.Fatal(err)
		}
		plA, err := Evaluate(after[li], p)
		if err != nil {
			t.Fatal(err)
		}
		if plA.Range >= plB.Range {
			t.Fatalf("layer %d: post-CMP range did not improve: %.2f -> %.2f",
				li, plB.Range, plA.Range)
		}
		if plA.Sigma >= plB.Sigma {
			t.Fatalf("layer %d: post-CMP σ did not improve: %.3f -> %.3f",
				li, plB.Sigma, plA.Sigma)
		}
	}
	// Sanity tie to the density metric: σ_height correlates with σ_density.
	_ = density.Variation
}

func BenchmarkSimulate64x64(b *testing.B) {
	g, _ := grid.New(geom.R(0, 0, 64000, 64000), 1000)
	m := grid.NewMap(g)
	for k := range m.V {
		m.V[k] = 0.1 + 0.8*float64(k%17)/17
	}
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(m, p); err != nil {
			b.Fatal(err)
		}
	}
}
