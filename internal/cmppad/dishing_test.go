package cmppad

import (
	"testing"

	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
)

func TestMeanFeatureWidth(t *testing.T) {
	g, err := grid.New(geom.R(0, 0, 200, 100), 100)
	if err != nil {
		t.Fatal(err)
	}
	// Window 0: one 10-wide wire. Window 1: one 40-wide block.
	m := MeanFeatureWidth(g, []geom.Rect{
		geom.R(0, 0, 80, 10),    // min dim 10, window 0
		geom.R(120, 0, 160, 90), // min dim 40, window 1
	})
	if m.At(0, 0) != 10 {
		t.Fatalf("window 0 mean width = %v, want 10", m.At(0, 0))
	}
	if m.At(1, 0) != 40 {
		t.Fatalf("window 1 mean width = %v, want 40", m.At(1, 0))
	}
}

func TestMeanFeatureWidthWeighting(t *testing.T) {
	g, _ := grid.New(geom.R(0, 0, 100, 100), 100)
	// Two features: area 100 with min-dim 10, area 900 with min-dim 30.
	m := MeanFeatureWidth(g, []geom.Rect{
		geom.R(0, 0, 10, 10),
		geom.R(20, 0, 50, 30),
	})
	want := (10.0*100 + 30.0*900) / 1000
	if got := m.At(0, 0); got != want {
		t.Fatalf("weighted mean = %v, want %v", got, want)
	}
	// Empty window → 0.
	g2, _ := grid.New(geom.R(0, 0, 100, 100), 50)
	m2 := MeanFeatureWidth(g2, nil)
	if m2.At(1, 1) != 0 {
		t.Fatal("empty window must read 0")
	}
}

func TestSimulateCuDishingGrowsWithWidth(t *testing.T) {
	g, _ := grid.New(geom.R(0, 0, 200, 100), 100)
	dens := grid.NewMap(g)
	dens.V[0], dens.V[1] = 0.5, 0.5
	width := grid.NewMap(g)
	width.V[0], width.V[1] = 100, 4000 // narrow vs wide features
	rep, err := SimulateCu(dens, width, 0, DefaultCuParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dishing.V[1] <= rep.Dishing.V[0] {
		t.Fatalf("wider features must dish more: %v vs %v", rep.Dishing.V[1], rep.Dishing.V[0])
	}
	if rep.MaxDishing != rep.Dishing.V[1] {
		t.Fatalf("max dishing %v != %v", rep.MaxDishing, rep.Dishing.V[1])
	}
}

func TestSimulateCuErosionGrowsWithDensity(t *testing.T) {
	g, _ := grid.New(geom.R(0, 0, 200, 100), 100)
	dens := grid.NewMap(g)
	dens.V[0], dens.V[1] = 0.2, 0.8
	width := grid.NewMap(g)
	rep, err := SimulateCu(dens, width, 0, DefaultCuParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Erosion.V[1] <= rep.Erosion.V[0] {
		t.Fatalf("denser windows must erode more: %v vs %v", rep.Erosion.V[1], rep.Erosion.V[0])
	}
}

func TestSimulateCuValidation(t *testing.T) {
	g, _ := grid.New(geom.R(0, 0, 100, 100), 100)
	dens := grid.NewMap(g)
	width := grid.NewMap(g)
	bad := DefaultCuParams()
	bad.W50 = 0
	if _, err := SimulateCu(dens, width, 0, bad); err == nil {
		t.Fatal("W50=0 must error")
	}
	g2, _ := grid.New(geom.R(0, 0, 100, 100), 50)
	other := grid.NewMap(g2)
	if _, err := SimulateCu(dens, other, 0, DefaultCuParams()); err == nil {
		t.Fatal("mismatched grids must error")
	}
}
