// Package cmppad simulates chemical-mechanical polishing over a layout
// using the classic density-based oxide CMP model (Stine et al., the
// model family behind references [5] and [7] of the paper): the local
// polish rate is inversely proportional to the *effective* pattern
// density — the raw window density convolved with a kernel whose radius
// is the pad's planarization length. It exists to demonstrate the
// physical motivation of dummy filling: uniform density ⇒ uniform
// effective density ⇒ planar post-CMP topography.
package cmppad

import (
	"fmt"
	"math"

	"dummyfill/internal/grid"
)

// Params configure the CMP model.
type Params struct {
	// PlanarizationLength is the pad deformation length in DBU; density
	// within this radius influences the local polish rate. Typical values
	// are tens of windows at modern nodes.
	PlanarizationLength float64
	// StepHeight is the as-deposited oxide step over patterned areas in
	// arbitrary height units (the pre-CMP topography amplitude).
	StepHeight float64
	// BlanketRate is the removal rate over unpatterned (density→0) area
	// per unit time; patterned regions polish at BlanketRate/ρ_eff.
	BlanketRate float64
	// PolishTime is the simulated polish duration.
	PolishTime float64
}

// DefaultParams returns a sane model configuration for layouts measured
// in nm DBU with ~1000 DBU windows.
func DefaultParams() Params {
	return Params{
		PlanarizationLength: 3000,
		StepHeight:          500,
		BlanketRate:         1,
		PolishTime:          400,
	}
}

// EffectiveDensity convolves a window density map with a truncated
// Gaussian kernel of standard deviation PlanarizationLength/2 (truncated
// at 2σ). The result is the effective density ρ_eff driving the local
// polish rate.
func EffectiveDensity(m *grid.Map, planarizationLength float64) *grid.Map {
	g := m.G
	sigmaWin := planarizationLength / (2 * float64(g.W))
	if sigmaWin <= 0 {
		out := m.Clone()
		return out
	}
	radius := int(math.Ceil(2 * sigmaWin))
	if radius < 1 {
		radius = 1
	}
	// Separable Gaussian weights.
	w := make([]float64, 2*radius+1)
	for k := -radius; k <= radius; k++ {
		w[k+radius] = math.Exp(-float64(k*k) / (2 * sigmaWin * sigmaWin))
	}
	// Horizontal pass then vertical pass, renormalizing at boundaries so
	// die edges do not read as artificially sparse.
	tmp := grid.NewMap(g)
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			var s, ws float64
			for k := -radius; k <= radius; k++ {
				ii := i + k
				if ii < 0 || ii >= g.NX {
					continue
				}
				s += w[k+radius] * m.At(ii, j)
				ws += w[k+radius]
			}
			tmp.Set(i, j, s/ws)
		}
	}
	out := grid.NewMap(g)
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			var s, ws float64
			for k := -radius; k <= radius; k++ {
				jj := j + k
				if jj < 0 || jj >= g.NY {
					continue
				}
				s += w[k+radius] * tmp.At(i, jj)
				ws += w[k+radius]
			}
			out.Set(i, j, s/ws)
		}
	}
	return out
}

// Simulate computes the post-CMP surface height per window. The model is
// the two-regime density model: while the step has not cleared, raised
// (patterned) area polishes at rate BlanketRate/ρ_eff; once the step is
// consumed the surface polishes at the blanket rate. Heights are relative
// (only variation matters).
func Simulate(density *grid.Map, p Params) (*grid.Map, error) {
	if p.PolishTime < 0 || p.BlanketRate <= 0 || p.StepHeight < 0 {
		return nil, fmt.Errorf("cmppad: invalid params %+v", p)
	}
	rho := EffectiveDensity(density, p.PlanarizationLength)
	out := grid.NewMap(density.G)
	const rhoFloor = 0.01 // empty die areas polish at the blanket rate cap
	for k, d := range rho.V {
		r := d
		if r < rhoFloor {
			r = rhoFloor
		}
		// Time to clear the local step: the raised area must be removed
		// at the density-amplified rate.
		tClear := p.StepHeight * r / p.BlanketRate
		var h float64
		if p.PolishTime < tClear {
			// Step not cleared: remaining step above the down-area.
			h = p.StepHeight - p.PolishTime*p.BlanketRate/r
		} else {
			// Cleared: planar locally, then blanket removal continues.
			h = -(p.PolishTime - tClear) * p.BlanketRate
		}
		out.V[k] = h
	}
	return out, nil
}

// Planarity summarises a simulated surface.
type Planarity struct {
	// Range is max−min surface height (the hotspot measure fabs care
	// about).
	Range float64
	// Sigma is the height standard deviation.
	Sigma float64
}

// Measure computes planarity metrics of a height map.
func Measure(h *grid.Map) Planarity {
	lo, hi := h.MinMax()
	mean := h.Mean()
	var ss float64
	for _, v := range h.V {
		d := v - mean
		ss += d * d
	}
	n := len(h.V)
	if n == 0 {
		return Planarity{}
	}
	return Planarity{Range: hi - lo, Sigma: math.Sqrt(ss / float64(n))}
}

// Evaluate runs the full pipeline: density map → effective density →
// post-CMP height → planarity.
func Evaluate(density *grid.Map, p Params) (Planarity, error) {
	h, err := Simulate(density, p)
	if err != nil {
		return Planarity{}, err
	}
	return Measure(h), nil
}
