package cmppad

import (
	"fmt"

	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
)

// Copper-CMP overpolish effects. After the oxide/barrier clears, soft
// copper keeps polishing: wide features dish (the pad bows into them) and
// dense arrays erode (the surrounding dielectric thins). Both scale with
// the overpolish time and with the local pattern structure; the standard
// first-order models (after Park/Tugbawa et al.) are
//
//	dishing(w)  ≈ Kd · overpolish · w̄ / (w̄ + w50)
//	erosion(ρ)  ≈ Ke · overpolish · ρ_eff
//
// where w̄ is the mean feature width in the window and w50 the half-
// dishing width constant. This file provides those metrics per window so
// fill strategies can be compared on overpolish robustness: dummy fill
// raises ρ_eff (more erosion) but breaks up wide empty areas (less
// dishing) — a real trade-off the density metrics alone do not show.

// CuParams configure the copper overpolish model.
type CuParams struct {
	// OverpolishTime is the polish duration past clearing.
	OverpolishTime float64
	// Kd and Ke are the dishing and erosion rate constants (height units
	// per unit time).
	Kd, Ke float64
	// W50 is the feature width of half-maximal dishing, in DBU.
	W50 float64
}

// DefaultCuParams returns constants scaled to match DefaultParams' height
// units.
func DefaultCuParams() CuParams {
	return CuParams{OverpolishTime: 50, Kd: 2, Ke: 1, W50: 2000}
}

// CuReport carries per-window dishing and erosion maps plus summary
// extremes.
type CuReport struct {
	Dishing, Erosion       *grid.Map
	MaxDishing, MaxErosion float64
}

// SimulateCu computes dishing and erosion per window. density is the
// window density map; meanWidth the per-window mean feature width in DBU
// (use MeanFeatureWidth). planarizationLength smooths density into ρ_eff
// as in Simulate.
func SimulateCu(density, meanWidth *grid.Map, planarizationLength float64, p CuParams) (*CuReport, error) {
	if p.OverpolishTime < 0 || p.W50 <= 0 {
		return nil, fmt.Errorf("cmppad: invalid Cu params %+v", p)
	}
	if density.G != meanWidth.G {
		return nil, fmt.Errorf("cmppad: density and width maps on different grids")
	}
	rho := EffectiveDensity(density, planarizationLength)
	rep := &CuReport{
		Dishing: grid.NewMap(density.G),
		Erosion: grid.NewMap(density.G),
	}
	for k := range rho.V {
		w := meanWidth.V[k]
		d := p.Kd * p.OverpolishTime * w / (w + p.W50)
		e := p.Ke * p.OverpolishTime * rho.V[k]
		rep.Dishing.V[k] = d
		rep.Erosion.V[k] = e
		if d > rep.MaxDishing {
			rep.MaxDishing = d
		}
		if e > rep.MaxErosion {
			rep.MaxErosion = e
		}
	}
	return rep, nil
}

// MeanFeatureWidth computes, per window, the mean width (minimum
// dimension) of the features overlapping the window, weighted by their
// clipped area. Returns zero for windows with no features.
func MeanFeatureWidth(g *grid.Grid, features []geom.Rect) *grid.Map {
	sumW := grid.NewMap(g)
	sumA := grid.NewMap(g)
	for _, f := range features {
		w := f.W()
		if h := f.H(); h < w {
			w = h
		}
		g.RangeOverlapping(f, func(i, j int, clip geom.Rect) {
			a := float64(clip.Area())
			sumW.Add(i, j, float64(w)*a)
			sumA.Add(i, j, a)
		})
	}
	out := grid.NewMap(g)
	for k := range out.V {
		if sumA.V[k] > 0 {
			out.V[k] = sumW.V[k] / sumA.V[k]
		}
	}
	return out
}
