package render

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
	"dummyfill/internal/layout"
)

func renderLayout() (*layout.Layout, *layout.Solution) {
	lay := &layout.Layout{
		Name: "r", Die: geom.R(0, 0, 400, 200), Window: 100,
		Rules: layout.Rules{MinWidth: 4, MinSpace: 4, MinArea: 16},
		Layers: []*layout.Layer{
			{Wires: []geom.Rect{geom.R(10, 10, 100, 40)}},
			{Wires: []geom.Rect{geom.R(200, 100, 380, 130)}},
		},
	}
	sol := &layout.Solution{Fills: []layout.Fill{
		{Layer: 0, Rect: geom.R(150, 50, 200, 90)},
		{Layer: 1, Rect: geom.R(20, 150, 60, 190)},
	}}
	return lay, sol
}

func TestSVGWellFormed(t *testing.T) {
	lay, sol := renderLayout()
	var buf bytes.Buffer
	if err := SVG(&buf, lay, sol, Options{ShowGrid: true}); err != nil {
		t.Fatal(err)
	}
	// Must be parseable XML.
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	s := buf.String()
	// 1 background + 2 wires + 2 fills = 5 rects.
	if got := strings.Count(s, "<rect"); got != 5 {
		t.Fatalf("rect count = %d, want 5", got)
	}
	// Grid lines: (4+1) vertical + (2+1) horizontal = 8.
	if got := strings.Count(s, "<line"); got != 8 {
		t.Fatalf("grid line count = %d, want 8", got)
	}
}

func TestSVGLayerFilter(t *testing.T) {
	lay, sol := renderLayout()
	var buf bytes.Buffer
	if err := SVG(&buf, lay, sol, Options{Layers: []int{0}}); err != nil {
		t.Fatal(err)
	}
	// 1 background + 1 wire + 1 fill.
	if got := strings.Count(buf.String(), "<rect"); got != 3 {
		t.Fatalf("filtered rect count = %d, want 3", got)
	}
}

func TestSVGNoSolution(t *testing.T) {
	lay, _ := renderLayout()
	var buf bytes.Buffer
	if err := SVG(&buf, lay, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "<rect"); got != 3 { // bg + 2 wires
		t.Fatalf("rect count = %d, want 3", got)
	}
}

func TestSVGEmptyDie(t *testing.T) {
	if err := SVG(&bytes.Buffer{}, &layout.Layout{}, nil, Options{}); err == nil {
		t.Fatal("empty die must error")
	}
}

func TestSVGAspectRatio(t *testing.T) {
	lay, _ := renderLayout() // 400x200 die
	var buf bytes.Buffer
	if err := SVG(&buf, lay, nil, Options{PixelWidth: 400}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `width="400" height="200"`) {
		t.Fatalf("aspect ratio not preserved: %s", buf.String()[:120])
	}
}

func TestHeatSVG(t *testing.T) {
	g, err := grid.New(geom.R(0, 0, 200, 200), 100)
	if err != nil {
		t.Fatal(err)
	}
	m := grid.NewMap(g)
	m.Set(0, 0, 1.0)
	var buf bytes.Buffer
	if err := HeatSVG(&buf, m, 200); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if got := strings.Count(s, "<rect"); got != 4 {
		t.Fatalf("heat cell count = %d, want 4", got)
	}
	// The dense window must be black, an empty one white.
	if !strings.Contains(s, "rgb(0,0,0)") || !strings.Contains(s, "rgb(255,255,255)") {
		t.Fatal("heat map shades wrong")
	}
}

func TestHeatSVGUniform(t *testing.T) {
	g, _ := grid.New(geom.R(0, 0, 100, 100), 50)
	m := grid.NewMap(g)
	for k := range m.V {
		m.V[k] = 0.5
	}
	var buf bytes.Buffer
	if err := HeatSVG(&buf, m, 100); err != nil {
		t.Fatal(err) // zero span must not divide by zero
	}
}
