// Package render draws layouts and fill solutions as SVG — the debugging
// and documentation view of the flow (wires vs. inserted fills per layer,
// window grid, density heat maps).
package render

import (
	"bufio"
	"fmt"
	"io"

	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
	"dummyfill/internal/layout"
)

// Options control SVG rendering.
type Options struct {
	// PixelWidth is the output image width in px (height follows the die
	// aspect ratio). Zero picks 800.
	PixelWidth int
	// Layers restricts rendering to the listed layer indices (nil = all).
	Layers []int
	// ShowGrid draws the density window grid.
	ShowGrid bool
}

// Layer palette: wires solid, fills translucent.
var wireColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#8c564b", "#e377c2"}
var fillColors = []string{"#aec7e8", "#ff9896", "#98df8a", "#c5b0d5", "#c49c94", "#f7b6d2"}

// SVG renders the layout (and optional solution) to w.
func SVG(out io.Writer, lay *layout.Layout, sol *layout.Solution, opts Options) error {
	if lay.Die.Empty() {
		return fmt.Errorf("render: empty die")
	}
	pw := opts.PixelWidth
	if pw <= 0 {
		pw = 800
	}
	scale := float64(pw) / float64(lay.Die.W())
	ph := int(float64(lay.Die.H()) * scale)
	bw := bufio.NewWriter(out)

	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", pw, ph, pw, ph)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", pw, ph)

	want := map[int]bool{}
	for _, li := range opts.Layers {
		want[li] = true
	}
	use := func(li int) bool { return len(want) == 0 || want[li] }

	// px converts a die rect to pixel coordinates (SVG y grows downward).
	px := func(r geom.Rect) (x, y, w, h float64) {
		x = float64(r.XL-lay.Die.XL) * scale
		w = float64(r.W()) * scale
		h = float64(r.H()) * scale
		y = float64(ph) - float64(r.YH-lay.Die.YL)*scale
		return
	}
	emit := func(r geom.Rect, color string, opacity float64) {
		x, y, w, h := px(r)
		fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="%.2f"/>`+"\n",
			x, y, w, h, color, opacity)
	}

	for li, layer := range lay.Layers {
		if !use(li) {
			continue
		}
		c := wireColors[li%len(wireColors)]
		for _, wr := range layer.Wires {
			emit(wr, c, 0.9)
		}
	}
	if sol != nil {
		per := sol.PerLayer(len(lay.Layers))
		for li, fills := range per {
			if !use(li) {
				continue
			}
			c := fillColors[li%len(fillColors)]
			for _, f := range fills {
				emit(f, c, 0.6)
			}
		}
	}
	if opts.ShowGrid {
		if g, err := lay.Grid(); err == nil {
			for i := 0; i <= g.NX; i++ {
				x := float64(int64(i)*g.W) * scale
				if x > float64(pw) {
					x = float64(pw)
				}
				fmt.Fprintf(bw, `<line x1="%.2f" y1="0" x2="%.2f" y2="%d" stroke="#888" stroke-width="0.5"/>`+"\n", x, x, ph)
			}
			for j := 0; j <= g.NY; j++ {
				y := float64(ph) - float64(int64(j)*g.W)*scale
				if y < 0 {
					y = 0
				}
				fmt.Fprintf(bw, `<line x1="0" y1="%.2f" x2="%d" y2="%.2f" stroke="#888" stroke-width="0.5"/>`+"\n", y, pw, y)
			}
		}
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}

// HeatSVG renders a density map as a grayscale heat map (dense = dark).
func HeatSVG(out io.Writer, m *grid.Map, pixelWidth int) error {
	g := m.G
	if pixelWidth <= 0 {
		pixelWidth = 800
	}
	scale := float64(pixelWidth) / float64(g.Die.W())
	ph := int(float64(g.Die.H()) * scale)
	bw := bufio.NewWriter(out)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", pixelWidth, ph)
	lo, hi := m.MinMax()
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			w := g.Window(i, j)
			v := (m.At(i, j) - lo) / span
			shade := int(255 * (1 - v))
			x := float64(w.XL-g.Die.XL) * scale
			y := float64(ph) - float64(w.YH-g.Die.YL)*scale
			fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="rgb(%d,%d,%d)"/>`+"\n",
				x, y, float64(w.W())*scale, float64(w.H())*scale, shade, shade, shade)
		}
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}
