// Package grid implements the fixed-dissection window grid the paper's
// density analysis is based on: the layout is divided into N×M square
// windows (Fig. 2(b)) and per-window densities drive planning and scoring.
package grid

import (
	"fmt"

	"dummyfill/internal/geom"
)

// Grid is a fixed dissection of a die area into square windows of size W.
// Windows at the top/right edge may be partial if the die is not an exact
// multiple of W; their density is normalized by their true area.
type Grid struct {
	Die geom.Rect
	W   int64
	NX  int // columns
	NY  int // rows
}

// New builds a grid over die with window size w.
func New(die geom.Rect, w int64) (*Grid, error) {
	if die.Empty() {
		return nil, fmt.Errorf("grid: empty die %v", die)
	}
	if w <= 0 {
		return nil, fmt.Errorf("grid: window size must be positive, got %d", w)
	}
	nx := int((die.W() + w - 1) / w)
	ny := int((die.H() + w - 1) / w)
	return &Grid{Die: die, W: w, NX: nx, NY: ny}, nil
}

// NumWindows returns NX*NY.
func (g *Grid) NumWindows() int { return g.NX * g.NY }

// Window returns the rect of window (i,j) where i is the column and j the
// row, clipped to the die.
func (g *Grid) Window(i, j int) geom.Rect {
	r := geom.Rect{
		XL: g.Die.XL + int64(i)*g.W,
		YL: g.Die.YL + int64(j)*g.W,
		XH: g.Die.XL + int64(i+1)*g.W,
		YH: g.Die.YL + int64(j+1)*g.W,
	}
	return r.Intersect(g.Die)
}

// Locate returns the window indices containing point p (clamped to the
// grid).
func (g *Grid) Locate(p geom.Point) (i, j int) {
	i = int((p.X - g.Die.XL) / g.W)
	j = int((p.Y - g.Die.YL) / g.W)
	if i < 0 {
		i = 0
	}
	if i >= g.NX {
		i = g.NX - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= g.NY {
		j = g.NY - 1
	}
	return
}

// CellRange returns the inclusive window index ranges [i0,i1]×[j0,j1]
// overlapped by r; ok is false when r misses the die entirely. It is the
// index arithmetic of RangeOverlapping exposed for callers that shard
// work by window row or column.
func (g *Grid) CellRange(r geom.Rect) (i0, j0, i1, j1 int, ok bool) {
	r = r.Intersect(g.Die)
	if r.Empty() {
		return 0, 0, 0, 0, false
	}
	i0 = int((r.XL - g.Die.XL) / g.W)
	j0 = int((r.YL - g.Die.YL) / g.W)
	i1 = int((r.XH - 1 - g.Die.XL) / g.W)
	j1 = int((r.YH - 1 - g.Die.YL) / g.W)
	return i0, j0, i1, j1, true
}

// RangeOverlapping calls fn(i, j, clip) for every window overlapping r,
// where clip is the part of r inside window (i,j).
func (g *Grid) RangeOverlapping(r geom.Rect, fn func(i, j int, clip geom.Rect)) {
	i0, j0, i1, j1, ok := g.CellRange(r)
	if !ok {
		return
	}
	r = r.Intersect(g.Die)
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			w := g.Window(i, j)
			c := r.Intersect(w)
			if !c.Empty() {
				fn(i, j, c)
			}
		}
	}
}

// Map is a per-window scalar field over a grid (densities, areas, bounds).
type Map struct {
	G *Grid
	V []float64 // row-major: V[j*NX+i]
}

// NewMap allocates a zero map over g.
func NewMap(g *Grid) *Map { return &Map{G: g, V: make([]float64, g.NumWindows())} }

// At returns the value at window (i,j).
func (m *Map) At(i, j int) float64 { return m.V[j*m.G.NX+i] }

// Set stores v at window (i,j).
func (m *Map) Set(i, j int, v float64) { m.V[j*m.G.NX+i] = v }

// Add accumulates v at window (i,j).
func (m *Map) Add(i, j int, v float64) { m.V[j*m.G.NX+i] += v }

// Clone returns a deep copy.
func (m *Map) Clone() *Map {
	out := NewMap(m.G)
	copy(out.V, m.V)
	return out
}

// Mean returns the average value.
func (m *Map) Mean() float64 {
	if len(m.V) == 0 {
		return 0
	}
	var s float64
	for _, v := range m.V {
		s += v
	}
	return s / float64(len(m.V))
}

// MinMax returns the extreme values.
func (m *Map) MinMax() (lo, hi float64) {
	if len(m.V) == 0 {
		return 0, 0
	}
	lo, hi = m.V[0], m.V[0]
	for _, v := range m.V[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return
}

// AreaMap accumulates, for each window, the area of the given rectangles
// clipped to that window. Overlaps among rects are counted multiple times;
// pass disjoint rect sets (wires after free-space extraction, fills after
// DRC) for exact densities.
func AreaMap(g *Grid, rects []geom.Rect) *Map {
	m := NewMap(g)
	for _, r := range rects {
		g.RangeOverlapping(r, func(i, j int, clip geom.Rect) {
			m.Add(i, j, float64(clip.Area()))
		})
	}
	return m
}

// DensityMap converts an area map into a density map by dividing by each
// window's true (clipped) area.
func DensityMap(area *Map) *Map {
	g := area.G
	out := NewMap(g)
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			wa := float64(g.Window(i, j).Area())
			if wa > 0 {
				out.Set(i, j, area.At(i, j)/wa)
			}
		}
	}
	return out
}
