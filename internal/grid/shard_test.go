package grid

import (
	"testing"

	"dummyfill/internal/geom"
)

func TestBandsCoverAllRows(t *testing.T) {
	g, err := New(geom.R(0, 0, 1000, 730), 100) // NY = 8 (partial top row)
	if err != nil {
		t.Fatal(err)
	}
	for n := -1; n <= g.NY+3; n++ {
		bands := g.Bands(n)
		want := n
		if want < 1 {
			want = 1
		}
		if want > g.NY {
			want = g.NY
		}
		if len(bands) != want {
			t.Fatalf("Bands(%d): got %d bands, want %d", n, len(bands), want)
		}
		row := 0
		for i, b := range bands {
			if b.J0 != row {
				t.Fatalf("Bands(%d): band %d starts at row %d, want %d", n, i, b.J0, row)
			}
			if b.Rows() < 1 {
				t.Fatalf("Bands(%d): band %d empty", n, i)
			}
			row = b.J1
		}
		if row != g.NY {
			t.Fatalf("Bands(%d): bands end at row %d, want %d", n, row, g.NY)
		}
	}
}

func TestBandWindowRangeContiguous(t *testing.T) {
	g, err := New(geom.R(0, 0, 500, 500), 100)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for _, b := range g.Bands(3) {
		k0, k1 := b.WindowRange(g)
		if k0 != next {
			t.Fatalf("band %+v starts at window %d, want %d", b, k0, next)
		}
		if k1-k0 != b.Windows(g) {
			t.Fatalf("band %+v: range %d..%d disagrees with Windows()=%d", b, k0, k1, b.Windows(g))
		}
		next = k1
	}
	if next != g.NumWindows() {
		t.Fatalf("bands cover %d windows, want %d", next, g.NumWindows())
	}
}

func TestBandHaloClamps(t *testing.T) {
	g, err := New(geom.R(0, 0, 400, 600), 100) // NY = 6
	if err != nil {
		t.Fatal(err)
	}
	b := Band{J0: 2, J1: 4}
	if h := b.Halo(g, 1); h != (Band{J0: 1, J1: 5}) {
		t.Fatalf("Halo(1) = %+v", h)
	}
	if h := b.Halo(g, 10); h != (Band{J0: 0, J1: 6}) {
		t.Fatalf("Halo(10) = %+v, want full grid", h)
	}
	if h := b.Halo(g, 0); h != b {
		t.Fatalf("Halo(0) = %+v, want %+v", h, b)
	}
}

// TestSubGridWindowsMatchParent pins the invariant density views rely on:
// window (i,j) of the sub-grid is window (i, J0+j) of the parent grid,
// including the partial top row at the die edge.
func TestSubGridWindowsMatchParent(t *testing.T) {
	g, err := New(geom.R(0, 0, 430, 730), 100) // partial windows on both axes
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range g.Bands(3) {
		sg := g.SubGrid(b)
		if sg.NX != g.NX || sg.NY != b.Rows() || sg.W != g.W {
			t.Fatalf("SubGrid(%+v) shape: %dx%d W=%d", b, sg.NX, sg.NY, sg.W)
		}
		for j := 0; j < sg.NY; j++ {
			for i := 0; i < sg.NX; i++ {
				if got, want := sg.Window(i, j), g.Window(i, b.J0+j); got != want {
					t.Fatalf("SubGrid(%+v).Window(%d,%d) = %v, want %v", b, i, j, got, want)
				}
			}
		}
	}
}

func TestMapRowsView(t *testing.T) {
	g, err := New(geom.R(0, 0, 300, 500), 100)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMap(g)
	for k := range m.V {
		m.V[k] = float64(k)
	}
	b := Band{J0: 2, J1: 4}
	v := m.Rows(b)
	if len(v.V) != b.Windows(g) {
		t.Fatalf("view has %d values, want %d", len(v.V), b.Windows(g))
	}
	if v.At(1, 0) != m.At(1, 2) || v.At(2, 1) != m.At(2, 3) {
		t.Fatalf("view values misaligned: %v", v.V)
	}
	// The view aliases the parent storage.
	v.Set(0, 0, -1)
	if m.At(0, 2) != -1 {
		t.Fatal("view write not visible in parent map")
	}
}
