package grid

import (
	"math"
	"testing"

	"dummyfill/internal/geom"
)

func TestNewGrid(t *testing.T) {
	g, err := New(geom.R(0, 0, 100, 50), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NX != 10 || g.NY != 5 {
		t.Fatalf("grid dims %dx%d, want 10x5", g.NX, g.NY)
	}
	if g.NumWindows() != 50 {
		t.Fatalf("NumWindows = %d", g.NumWindows())
	}
}

func TestNewGridPartialWindows(t *testing.T) {
	g, err := New(geom.R(0, 0, 105, 50), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NX != 11 {
		t.Fatalf("NX = %d, want 11 (partial last column)", g.NX)
	}
	last := g.Window(10, 0)
	if last.W() != 5 {
		t.Fatalf("partial window width = %d, want 5", last.W())
	}
}

func TestNewGridErrors(t *testing.T) {
	if _, err := New(geom.Rect{}, 10); err == nil {
		t.Fatal("empty die must error")
	}
	if _, err := New(geom.R(0, 0, 10, 10), 0); err == nil {
		t.Fatal("zero window must error")
	}
}

func TestLocate(t *testing.T) {
	g, _ := New(geom.R(0, 0, 100, 100), 10)
	i, j := g.Locate(geom.Point{X: 55, Y: 23})
	if i != 5 || j != 2 {
		t.Fatalf("Locate = (%d,%d), want (5,2)", i, j)
	}
	i, j = g.Locate(geom.Point{X: -5, Y: 200}) // clamped
	if i != 0 || j != 9 {
		t.Fatalf("clamped Locate = (%d,%d), want (0,9)", i, j)
	}
}

func TestRangeOverlapping(t *testing.T) {
	g, _ := New(geom.R(0, 0, 100, 100), 10)
	var total int64
	count := 0
	g.RangeOverlapping(geom.R(5, 5, 25, 15), func(i, j int, clip geom.Rect) {
		total += clip.Area()
		count++
	})
	if total != 200 {
		t.Fatalf("clipped total area = %d, want 200", total)
	}
	if count != 6 { // windows (0..2)x(0..1)
		t.Fatalf("windows touched = %d, want 6", count)
	}
	// Out-of-die rect clips to die.
	total = 0
	g.RangeOverlapping(geom.R(95, 95, 200, 200), func(i, j int, clip geom.Rect) {
		total += clip.Area()
	})
	if total != 25 {
		t.Fatalf("die-clipped area = %d, want 25", total)
	}
}

func TestAreaAndDensityMap(t *testing.T) {
	g, _ := New(geom.R(0, 0, 40, 40), 10)
	rects := []geom.Rect{geom.R(0, 0, 10, 10), geom.R(10, 0, 15, 10)}
	am := AreaMap(g, rects)
	if am.At(0, 0) != 100 {
		t.Fatalf("window (0,0) area = %v, want 100", am.At(0, 0))
	}
	if am.At(1, 0) != 50 {
		t.Fatalf("window (1,0) area = %v, want 50", am.At(1, 0))
	}
	dm := DensityMap(am)
	if dm.At(0, 0) != 1.0 || dm.At(1, 0) != 0.5 {
		t.Fatalf("densities = %v, %v", dm.At(0, 0), dm.At(1, 0))
	}
	if dm.At(3, 3) != 0 {
		t.Fatal("untouched window must have zero density")
	}
}

func TestMapStats(t *testing.T) {
	g, _ := New(geom.R(0, 0, 20, 10), 10)
	m := NewMap(g)
	m.Set(0, 0, 0.25)
	m.Set(1, 0, 0.75)
	if got := m.Mean(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mean = %v, want 0.5", got)
	}
	lo, hi := m.MinMax()
	if lo != 0.25 || hi != 0.75 {
		t.Fatalf("minmax = %v,%v", lo, hi)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone must deep-copy")
	}
	m.Add(0, 0, 0.25)
	if m.At(0, 0) != 0.5 {
		t.Fatalf("Add result %v", m.At(0, 0))
	}
}

func TestDensityMapPartialWindows(t *testing.T) {
	// Die 105 wide with 50-windows: last column windows are 5 wide and
	// densities must normalize by the true (clipped) area.
	g, err := New(geom.R(0, 0, 105, 50), 50)
	if err != nil {
		t.Fatal(err)
	}
	am := AreaMap(g, []geom.Rect{geom.R(100, 0, 105, 50)}) // fills the partial window
	dm := DensityMap(am)
	if got := dm.At(2, 0); got != 1.0 {
		t.Fatalf("partial window density = %v, want 1.0", got)
	}
}

func TestRangeOverlappingFullDie(t *testing.T) {
	g, _ := New(geom.R(0, 0, 100, 100), 10)
	count := 0
	var total int64
	g.RangeOverlapping(g.Die, func(i, j int, clip geom.Rect) {
		count++
		total += clip.Area()
	})
	if count != g.NumWindows() {
		t.Fatalf("full-die range touched %d windows, want %d", count, g.NumWindows())
	}
	if total != g.Die.Area() {
		t.Fatalf("clipped areas sum to %d, want %d", total, g.Die.Area())
	}
}

func TestRangeOverlappingEmptyRect(t *testing.T) {
	g, _ := New(geom.R(0, 0, 100, 100), 10)
	g.RangeOverlapping(geom.Rect{}, func(i, j int, clip geom.Rect) {
		t.Fatal("empty rect must not visit windows")
	})
}
