package grid

// This file implements the row-band sharding of a window grid used by the
// shard-parallel hierarchical density planner: the grid's NY window rows
// are split into contiguous bands, each band owning the row-major window
// index range [J0*NX, J1*NX). Bands are the only shard shape the engine
// uses — full-width row bands keep every shard a contiguous run of
// canonical window indices, which is what makes per-shard output segments
// concatenate back into canonical window order without a global sort.

// Band is a contiguous range of window rows [J0, J1) — one shard of the
// grid. A Band never owns partial rows: shard boundaries are always row
// boundaries, so shard window indices are contiguous in row-major order.
type Band struct {
	J0, J1 int
}

// Rows returns the number of window rows in the band.
func (b Band) Rows() int { return b.J1 - b.J0 }

// WindowRange returns the half-open canonical window index range
// [k0, k1) owned by the band on grid g.
func (b Band) WindowRange(g *Grid) (k0, k1 int) {
	return b.J0 * g.NX, b.J1 * g.NX
}

// Windows returns the number of windows in the band on grid g.
func (b Band) Windows(g *Grid) int { return b.Rows() * g.NX }

// Halo returns the band expanded by `rows` window rows on each side,
// clamped to the grid — the shard plus its halo ring of neighbour rows.
// The halo gives a shard-local computation the cross-shard context it
// needs (e.g. densities of windows an overlapping analysis window can
// reach across the shard border).
func (b Band) Halo(g *Grid, rows int) Band {
	h := Band{J0: b.J0 - rows, J1: b.J1 + rows}
	if h.J0 < 0 {
		h.J0 = 0
	}
	if h.J1 > g.NY {
		h.J1 = g.NY
	}
	return h
}

// Bands splits the grid's window rows into n contiguous near-equal bands.
// n is clamped to [1, NY], so every returned band is non-empty. The split
// depends only on (NY, n) — boundaries are i*NY/n — never on scheduling,
// so a band decomposition is deterministic for a given grid and count.
func (g *Grid) Bands(n int) []Band {
	if n < 1 {
		n = 1
	}
	if n > g.NY {
		n = g.NY
	}
	out := make([]Band, n)
	for i := 0; i < n; i++ {
		out[i] = Band{J0: i * g.NY / n, J1: (i + 1) * g.NY / n}
	}
	return out
}

// SubGrid returns the grid restricted to band b: same window size and
// column count, rows J0..J1-1, die clipped to the band's extent. Window
// (i, j) of the sub-grid is exactly window (i, J0+j) of g — including
// partial windows at the die edge — so per-window areas, and therefore
// densities computed over a sub-grid view, match the parent grid's.
func (g *Grid) SubGrid(b Band) *Grid {
	die := g.Die
	die.YL = g.Die.YL + int64(b.J0)*g.W
	if yh := g.Die.YL + int64(b.J1)*g.W; yh < die.YH {
		die.YH = yh
	}
	return &Grid{Die: die, W: g.W, NX: g.NX, NY: b.Rows()}
}

// Rows returns a view of m restricted to band b: a Map over the band's
// sub-grid whose values alias m's storage (no copy). Writes through the
// view are visible in m; concurrent writers of disjoint bands never
// overlap because bands own disjoint row-major index ranges.
func (m *Map) Rows(b Band) *Map {
	k0, k1 := b.WindowRange(m.G)
	return &Map{G: m.G.SubGrid(b), V: m.V[k0:k1:k1]}
}
