package analysis

import (
	"go/ast"
	"go/types"
)

// ChanBound forbids unbuffered data channels in the pipeline and
// serving packages. The module's concurrency idiom is explicit about
// backpressure: data flows through channels with a stated capacity
// (sized from worker counts or admission slots), while pure signals —
// completion, cancellation, readiness — are unbuffered chan struct{}.
// An unbuffered channel of a data-carrying type couples producer and
// consumer in lockstep and is where pipeline deadlocks breed, so
// make(chan T) and make(chan T, 0) with T other than struct{} are
// findings in these packages.
var ChanBound = &Analyzer{
	Name:     "chanbound",
	Doc:      "pipeline/serve packages must size data channels; only struct{} signals may be unbuffered",
	Packages: pkgScope("internal/fill", "internal/serve", "internal/fillcache", "internal/density", "internal/grid"),
	Run:      runChanBound,
}

func runChanBound(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				return true
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			tv, ok := p.Info.Types[call.Args[0]]
			if !ok {
				return true
			}
			ch, ok := tv.Type.Underlying().(*types.Chan)
			if !ok {
				return true
			}
			unbuffered := len(call.Args) == 1
			if len(call.Args) == 2 {
				if cv, ok := p.Info.Types[call.Args[1]]; ok && cv.Value != nil && cv.Value.String() == "0" {
					unbuffered = true
				}
			}
			if !unbuffered {
				return true
			}
			if isEmptyStruct(ch.Elem()) {
				return true
			}
			p.Reportf(call.Pos(), "unbuffered data channel of %s; size it for backpressure or use chan struct{} for signalling", ch.Elem().String())
			return true
		})
	}
}

// isEmptyStruct reports whether t is struct{} (possibly named).
func isEmptyStruct(t types.Type) bool {
	st, ok := t.Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
