package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"dummyfill/internal/analysis/cfg"
)

// ErrSink requires errors produced by module-internal calls to flow
// somewhere: into a return, into a handler, into health accounting —
// anywhere but the floor. Three shapes are findings:
//
//   - a call statement whose internal callee returns an error that the
//     statement simply drops;
//   - an internal call's error result assigned to the blank identifier;
//   - an error variable assigned from an internal call and then — per
//     reaching-definitions over the function's CFG — never read on any
//     path (named error results count as read at every return).
//
// A function that accounts its own errors internally (metrics, logs,
// degraded-mode counters) can be annotated
//
//	//filllint:errsink
//
// in its doc comment; callers may then drop its error. The annotation
// is exported as a fact, so dependant packages get the same licence,
// and it is itself checked: annotating a function with no error result
// is a finding (the annotation is stale or misplaced).
var ErrSink = &Analyzer{
	Name: "errsink",
	Doc:  "errors from module-internal calls must flow into a return, handler, or annotated sink",
	Run:  runErrSink,
}

// ErrSinkFact marks a function whose error result may be dropped by
// callers because the function accounts failures internally.
type ErrSinkFact struct{}

func (ErrSinkFact) FactName() string { return "errsink.Sink" }

const errsinkPragma = "//filllint:errsink"

var errorType = types.Universe.Lookup("error").Type()

func runErrSink(p *Pass) {
	sinks := collectErrSinks(p)
	for _, f := range p.Files {
		for _, fb := range funcBodies(f) {
			checkDiscards(p, fb, sinks)
			checkDeadErrDefs(p, fb, sinks)
		}
	}
}

// collectErrSinks scans for //filllint:errsink annotations, validates
// them against the signature, and exports the facts.
func collectErrSinks(p *Pass) map[*types.Func]bool {
	sinks := map[*types.Func]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				rest, found := strings.CutPrefix(c.Text, errsinkPragma)
				if !found || (rest != "" && !strings.HasPrefix(strings.TrimSpace(rest), "//")) {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				if len(errorResultIdx(fn)) == 0 {
					p.Reportf(c.Pos(), "stale //filllint:errsink: %s returns no error", fn.Name())
					continue
				}
				sinks[fn] = true
				p.ExportObjectFact(fn, ErrSinkFact{})
			}
		}
	}
	return sinks
}

// checkDiscards flags whole-statement and blank-identifier discards of
// internal error results.
func checkDiscards(p *Pass, fb funcBody, sinks map[*types.Func]bool) {
	walkBody(fb.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := internalErrCallee(p, call, sinks); fn != nil {
				p.Reportf(n.Pos(), "error from %s is discarded; handle it, return it, or annotate the callee //filllint:errsink", fn.Name())
			}
			return false
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := internalErrCallee(p, call, sinks)
			if fn == nil {
				return true
			}
			for _, i := range errorResultIdx(fn) {
				if i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					p.Reportf(id.Pos(), "error from %s is assigned to _; handle it, return it, or annotate the callee //filllint:errsink", fn.Name())
				}
			}
		}
		return true
	})
}

// checkDeadErrDefs runs reaching definitions over the body and flags
// error variables assigned from internal calls but never read on any
// path.
func checkDeadErrDefs(p *Pass, fb funcBody, sinks map[*types.Func]bool) {
	// Cheap pre-pass: any error-typed assignment from an internal call?
	found := false
	walkBody(fb.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && internalErrCallee(p, call, sinks) != nil {
			found = true
		}
		return !found
	})
	if !found {
		return
	}

	// Named error results count as read at every return; they are the
	// only tracked variables declared outside the body span.
	named := map[*types.Var]bool{}
	var liveAtExit []*types.Var
	if fb.typ.Results != nil {
		for _, field := range fb.typ.Results.List {
			for _, name := range field.Names {
				if v, ok := p.Info.Defs[name].(*types.Var); ok && types.Identical(v.Type(), errorType) {
					named[v] = true
					liveAtExit = append(liveAtExit, v)
				}
			}
		}
	}

	g := cfg.New(fb.body)
	r := cfg.ReachingDefs(g, p.Info, func(v *types.Var) bool {
		if !types.Identical(v.Type(), errorType) {
			return false
		}
		// A variable captured from an enclosing function outlives this
		// body: its reads happen beyond the intraprocedural horizon, so a
		// "dead" definition here proves nothing.
		return named[v] || (v.Pos() >= fb.body.Pos() && v.Pos() < fb.body.End())
	})
	for _, d := range r.Dead(liveAtExit) {
		fn := defInternalErrCallee(p, d.Node, sinks)
		if fn == nil {
			continue
		}
		p.Reportf(d.Pos, "%s assigned from %s is never read on any path; the error is silently dropped", d.Var.Name(), fn.Name())
	}
}

// defInternalErrCallee extracts the internal error-returning callee a
// definition node assigns from, if any.
func defInternalErrCallee(p *Pass, n ast.Node, sinks map[*types.Func]bool) *types.Func {
	var rhs []ast.Expr
	switch n := n.(type) {
	case *ast.AssignStmt:
		rhs = n.Rhs
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					rhs = append(rhs, vs.Values...)
				}
			}
		}
	default:
		return nil
	}
	for _, e := range rhs {
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
			if fn := internalErrCallee(p, call, sinks); fn != nil {
				return fn
			}
		}
	}
	return nil
}

// internalErrCallee resolves call's callee when it is module-internal,
// returns at least one error, and is not an annotated sink.
func internalErrCallee(p *Pass, call *ast.CallExpr, sinks map[*types.Func]bool) *types.Func {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if moduleRootOf(fn.Pkg().Path()) != moduleRootOf(p.Pkg.Path()) {
		return nil
	}
	if len(errorResultIdx(fn)) == 0 {
		return nil
	}
	if sinks[fn] {
		return nil
	}
	var sf ErrSinkFact
	if fn.Pkg() != p.Pkg && p.ImportObjectFact(fn, &sf) {
		return nil
	}
	return fn
}

// errorResultIdx returns the indices of fn's error-typed results.
func errorResultIdx(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errorType) {
			idx = append(idx, i)
		}
	}
	return idx
}

// moduleRootOf is the first segment of an import path — identical for
// every package of one module, different for the standard library.
func moduleRootOf(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}
