package analysis

// All returns every registered analyzer in stable (alphabetical) order.
func All() []*Analyzer {
	return []*Analyzer{
		CtxFlow,
		GeomCast,
		NoDeterm,
		NoPanic,
		PoolPair,
	}
}
