package analysis

// All returns every registered analyzer in stable (alphabetical) order.
func All() []*Analyzer {
	return []*Analyzer{
		ChanBound,
		CtxFlow,
		ErrSink,
		GeomCast,
		GoLeak,
		LockGuard,
		NoDeterm,
		NoPanic,
		PoolPair,
	}
}
