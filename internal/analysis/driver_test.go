package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// toyCountFact is a package fact used to prove facts flow dependency-wise
// through the driver, cold and warm alike.
type toyCountFact struct{ Funcs int }

func (toyCountFact) FactName() string { return "toy.Count" }

// toyAnalyzer exports how many functions each package declares and
// reports, in every package, the counts of its local dependencies — so a
// dependent's findings are only correct if the dependency's fact arrived.
func toyAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "toy",
		Doc:  "test analyzer: cross-package function counting",
		Run: func(p *Pass) {
			n := 0
			for _, f := range p.Files {
				for _, d := range f.Decls {
					if _, ok := d.(*ast.FuncDecl); ok {
						n++
					}
				}
			}
			p.ExportPackageFact(toyCountFact{Funcs: n})
			for _, imp := range p.Pkg.Imports() {
				var c toyCountFact
				if p.ImportPackageFact(imp.Path(), &c) {
					p.Reportf(p.Files[0].Pos(), "dep %s has %d funcs", imp.Path(), c.Funcs)
				}
			}
		},
	}
}

// writeTestModule lays out a two-package module, b importing a.
func writeTestModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmod\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc Answer() int { return 42 }\n",
		"b/b.go": "package b\n\nimport \"tmod/a\"\n\nvar N = a.Answer()\n",
	}
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestDriverColdWarmIncremental(t *testing.T) {
	root := writeTestModule(t)
	cache := filepath.Join(root, ".cache")
	opts := DriverOptions{Analyzers: []*Analyzer{toyAnalyzer()}, Parallel: 4, CacheDir: cache}

	cold, err := RunDriver(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Packages != 2 || cold.Stats.Analyzed != 2 || cold.Stats.Cached != 0 {
		t.Fatalf("cold stats: %+v", cold.Stats)
	}
	if len(cold.Diagnostics) != 1 || cold.Diagnostics[0].Message != "dep tmod/a has 1 funcs" {
		t.Fatalf("cold diags: %v", cold.Diagnostics)
	}

	warm, err := RunDriver(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Cached != 2 || warm.Stats.Analyzed != 0 {
		t.Fatalf("warm stats: %+v", warm.Stats)
	}
	if warm.Stats.CachedFacts == 0 {
		t.Fatalf("warm run installed no cached facts: %+v", warm.Stats)
	}
	if !reflect.DeepEqual(cold.Diagnostics, warm.Diagnostics) {
		t.Fatalf("warm diags differ:\ncold: %v\nwarm: %v", cold.Diagnostics, warm.Diagnostics)
	}

	// Editing b must re-analyze only b, which still needs a's fact — now
	// served from a's cache entry.
	bPath := filepath.Join(root, "b/b.go")
	if err := os.WriteFile(bPath, []byte("package b\n\nimport \"tmod/a\"\n\nvar N = a.Answer() + 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	inc, err := RunDriver(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Stats.Cached != 1 || inc.Stats.Analyzed != 1 {
		t.Fatalf("incremental stats: %+v", inc.Stats)
	}
	if inc.Stats.CachedFacts == 0 {
		t.Fatalf("incremental run got no cached facts from a: %+v", inc.Stats)
	}
	if len(inc.Diagnostics) != 1 || inc.Diagnostics[0].Message != "dep tmod/a has 1 funcs" {
		t.Fatalf("incremental diags lost the cross-package fact: %v", inc.Diagnostics)
	}
}

func TestDriverDeterministicAcrossParallelism(t *testing.T) {
	root := writeTestModule(t)
	var base []Diagnostic
	for i, par := range []int{1, 2, 8} {
		res, err := RunDriver(root, DriverOptions{Analyzers: []*Analyzer{toyAnalyzer()}, Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res.Diagnostics
			continue
		}
		if !reflect.DeepEqual(base, res.Diagnostics) {
			t.Fatalf("parallel=%d diags differ from parallel=1:\n%v\n%v", par, base, res.Diagnostics)
		}
	}
}

func TestDriverTornCacheDegradesToMiss(t *testing.T) {
	root := writeTestModule(t)
	cache := filepath.Join(root, ".cache")
	opts := DriverOptions{Analyzers: []*Analyzer{toyAnalyzer()}, Parallel: 2, CacheDir: cache}

	cold, err := RunDriver(root, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Tear every entry mid-write: truncated bodies must fail the integrity
	// check, degrade to re-analysis, and never corrupt findings.
	entries, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		path := filepath.Join(cache, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	torn, err := RunDriver(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if torn.Stats.Cached != 0 || torn.Stats.Analyzed != 2 {
		t.Fatalf("torn entries were not treated as misses: %+v", torn.Stats)
	}
	if torn.Stats.CacheErrors == 0 {
		t.Fatalf("torn entries not counted as cache errors: %+v", torn.Stats)
	}
	if !reflect.DeepEqual(cold.Diagnostics, torn.Diagnostics) {
		t.Fatalf("torn-cache diags differ:\n%v\n%v", cold.Diagnostics, torn.Diagnostics)
	}

	// And the rewritten entries must serve the next run again.
	again, err := RunDriver(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.Cached != 2 {
		t.Fatalf("cache did not recover after rewrite: %+v", again.Stats)
	}
}

func TestFactStoreRoundTrip(t *testing.T) {
	s := NewFactStore()
	k := factKey{pkg: "tmod/a", obj: "Answer", typ: "toy.Count"}
	if err := s.export(k, toyCountFact{Funcs: 3}); err != nil {
		t.Fatal(err)
	}
	recs := s.EncodePackage("tmod/a")
	if len(recs) != 1 {
		t.Fatalf("encode: %v", recs)
	}
	s2 := NewFactStore()
	if n := s2.DecodePackage("tmod/a", recs); n != 1 {
		t.Fatalf("decode count %d", n)
	}
	var got toyCountFact
	if !s2.imp(k, &got) || got.Funcs != 3 {
		t.Fatalf("round-trip lost fact: %+v", got)
	}
}
