package analysis

import (
	"go/ast"
	"go/types"
)

// solverPackages are the three solver stacks. PR 2 replaced their panics
// with the SolverError taxonomy so the engine's fallback chain can treat
// any tier failure as a degradable event; a reintroduced panic would blow
// through the chain (the recover boundary in internal/fill catches it,
// but as a whole-tier crash, not a typed error).
var solverPackages = pkgScope(
	"internal/mcf",
	"internal/dlp",
	"internal/lps",
)

// NoPanic forbids explicit panic calls in solver packages. Errors must
// flow through the error taxonomy; a deliberate recovery-isolated
// boundary can be waived with an allow pragma stating why.
var NoPanic = &Analyzer{
	Name:     "nopanic",
	Doc:      "solver packages return typed errors, never panic",
	Packages: solverPackages,
	Run:      runNoPanic,
}

func runNoPanic(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "panic" {
				p.Reportf(call.Pos(), "panic in a solver package; return a typed solver error so the fallback chain can degrade the window")
			}
			return true
		})
	}
}
