package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
	"sync"
)

// Fact is a typed datum an analyzer attaches to a package-level object
// (function, method, package variable, struct field) or to a whole
// package, and that downstream packages import during the topo-ordered
// run — the whole-module reasoning channel. A fact must round-trip
// through encoding/json: the driver persists each package's exported
// facts inside its cache entry, so a warm run can feed dependents the
// same facts without re-analyzing the exporter.
type Fact interface {
	// FactName returns a stable type tag, unique across analyzers (by
	// convention "<analyzer>.<Kind>"), used to key serialized facts.
	FactName() string
}

// factKey identifies one fact instance.
type factKey struct {
	pkg string // owning package import path
	obj string // object key within the package; "" for a package fact
	typ string // Fact type tag
}

// FactStore holds every fact exported during one module run, keyed by
// (package, object, fact type). It is safe for concurrent use: the
// parallel driver analyzes independent packages concurrently, and
// dependency ordering guarantees a package's facts are complete before
// any dependent imports them.
type FactStore struct {
	mu   sync.RWMutex
	data map[factKey]json.RawMessage
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{data: map[factKey]json.RawMessage{}}
}

func (s *FactStore) export(k factKey, f Fact) error {
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("analysis: encoding fact %s for %s.%s: %w", k.typ, k.pkg, k.obj, err)
	}
	s.mu.Lock()
	s.data[k] = data
	s.mu.Unlock()
	return nil
}

func (s *FactStore) imp(k factKey, f Fact) bool {
	s.mu.RLock()
	data, ok := s.data[k]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	return json.Unmarshal(data, f) == nil
}

// factRec is the serialized form of one fact inside a cache entry.
type factRec struct {
	Obj  string          `json:"obj,omitempty"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// EncodePackage returns the package's exported facts as a deterministic
// (sorted) list for embedding in a cache entry.
func (s *FactStore) EncodePackage(pkg string) []factRec {
	s.mu.RLock()
	var recs []factRec
	for k, data := range s.data {
		if k.pkg == pkg {
			recs = append(recs, factRec{Obj: k.obj, Type: k.typ, Data: data})
		}
	}
	s.mu.RUnlock()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Obj != recs[j].Obj {
			return recs[i].Obj < recs[j].Obj
		}
		return recs[i].Type < recs[j].Type
	})
	return recs
}

// DecodePackage installs a cached package's facts, returning how many
// were loaded.
func (s *FactStore) DecodePackage(pkg string, recs []factRec) int {
	s.mu.Lock()
	for _, r := range recs {
		s.data[factKey{pkg: pkg, obj: r.Obj, typ: r.Type}] = r.Data
	}
	s.mu.Unlock()
	return len(recs)
}

// ObjectKey returns a stable, package-relative key for a package-level
// object: "Name" for package-level functions, variables and types,
// "Recv.Name" for methods (pointer receivers stripped). Struct-field
// keys are formed by analyzers as "Type.Field" (see FieldKey). The
// second result is false for objects facts cannot attach to (locals,
// blank, nil).
func ObjectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil || obj.Name() == "_" {
		return "", false
	}
	if f, ok := obj.(*types.Func); ok {
		if recv := f.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + f.Name(), true
		}
	}
	// Only package-scope objects have stable keys.
	if obj.Parent() != nil && obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Name(), true
}

// FieldKey forms the object key of a struct field.
func FieldKey(typeName, field string) string { return typeName + "." + field }

// ExportObjectFact records a fact about obj, which must belong to the
// package under analysis.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	key, ok := ObjectKey(obj)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != p.Pkg.Path() {
		return
	}
	p.ExportKeyFact(key, f)
}

// ExportKeyFact records a fact under an explicit object key of the
// package under analysis (used for struct fields, where the owning type
// is known to the annotation scanner but not to go/types' object).
func (p *Pass) ExportKeyFact(objKey string, f Fact) {
	if p.facts == nil {
		return
	}
	//filllint:allow errsink -- export fails only when the fact type cannot marshal, a static programming error; a lost fact degrades to a missed cross-package licence, never a wrong finding
	_ = p.facts.export(factKey{pkg: p.Pkg.Path(), obj: objKey, typ: f.FactName()}, f)
}

// ImportObjectFact loads a fact about obj (from any package analyzed
// earlier in the dependency order, including the current one) into f,
// reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	key, ok := ObjectKey(obj)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return p.ImportKeyFact(obj.Pkg().Path(), key, f)
}

// ImportKeyFact loads a fact recorded under (pkgPath, objKey) into f.
func (p *Pass) ImportKeyFact(pkgPath, objKey string, f Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.imp(factKey{pkg: pkgPath, obj: objKey, typ: f.FactName()}, f)
}

// ExportPackageFact records a fact about the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) { p.ExportKeyFact("", f) }

// ImportPackageFact loads a package-level fact of pkgPath into f.
func (p *Pass) ImportPackageFact(pkgPath string, f Fact) bool {
	return p.ImportKeyFact(pkgPath, "", f)
}
