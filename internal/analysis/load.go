package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	Dir   string // directory relative to the module root ("." for the root)
	Path  string // import path
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at root, returning them sorted by import path. It is a
// stdlib-only loader: local imports resolve against the packages being
// loaded (in dependency order), and everything else (the standard
// library) resolves through go/importer's source importer, so no compiled
// export data and no external tooling is required.
//
// Test files (_test.go) are not loaded: the invariants filllint enforces
// are about shipped engine code, and tests legitimately use wall clocks,
// randomness and panics.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type rawPkg struct {
		dir     string
		path    string
		files   []*ast.File
		imports []string
	}
	raw := make(map[string]*rawPkg) // by import path

	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		files, perr := parseDir(fset, p)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(root, p)
		if rerr != nil {
			return rerr
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		rp := &rawPkg{dir: rel, path: ip, files: files}
		seen := map[string]bool{}
		for _, f := range files {
			for _, imp := range f.Imports {
				q := strings.Trim(imp.Path.Value, `"`)
				if !seen[q] {
					seen[q] = true
					rp.imports = append(rp.imports, q)
				}
			}
		}
		raw[ip] = rp
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Type-check in dependency order so local imports always resolve to an
	// already-checked package.
	order, err := topoOrder(raw, func(p *rawPkg) []string {
		var local []string
		for _, q := range p.imports {
			if _, ok := raw[q]; ok {
				local = append(local, q)
			}
		}
		return local
	})
	if err != nil {
		return nil, err
	}

	checked := make(map[string]*types.Package)
	imp := &chainImporter{
		local: checked,
		std:   importer.ForCompiler(fset, "source", nil),
	}
	var out []*Package
	for _, ip := range order {
		rp := raw[ip]
		pkg, info, cerr := CheckFiles(fset, ip, rp.files, imp)
		if cerr != nil {
			return nil, fmt.Errorf("type-checking %s: %w", ip, cerr)
		}
		checked[ip] = pkg
		out = append(out, &Package{Dir: rp.dir, Path: ip, Fset: fset, Files: rp.files, Types: pkg, Info: info})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// CheckFiles type-checks one package's files under the given import path,
// returning the package and the filled-in type info the analyzers need.
// Exported for the fixture-test harness, which checks single files under
// synthetic import paths to exercise package-scoped analyzers.
func CheckFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// StdImporter returns a source-based importer for standard-library
// packages sharing fset. Exported for the fixture-test harness.
func StdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}

// chainImporter serves module-local packages from the checked set and
// delegates everything else to the stdlib source importer.
type chainImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// parseDir parses the non-test, non-ignored .go files directly inside dir
// (no recursion). It returns nil when dir holds no Go files.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, perr := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			return nil, perr
		}
		if buildIgnored(f) {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// buildIgnored reports whether f carries a "//go:build ignore" constraint.
func buildIgnored(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if strings.HasPrefix(text, "//go:build") && strings.Contains(text, "ignore") {
				return true
			}
		}
	}
	return false
}

// topoOrder orders package paths so every local dependency precedes its
// dependents, failing on import cycles.
func topoOrder[T any](nodes map[string]*T, deps func(*T) []string) ([]string, error) {
	keys := make([]string, 0, len(nodes))
	for k := range nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]int, len(nodes))
	var order []string
	var visit func(string) error
	visit = func(k string) error {
		switch state[k] {
		case gray:
			return fmt.Errorf("import cycle through %s", k)
		case black:
			return nil
		}
		state[k] = gray
		d := deps(nodes[k])
		sort.Strings(d)
		for _, q := range d {
			if err := visit(q); err != nil {
				return err
			}
		}
		state[k] = black
		order = append(order, k)
		return nil
	}
	for _, k := range keys {
		if err := visit(k); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
