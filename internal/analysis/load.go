package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	Dir   string // directory relative to the module root ("." for the root)
	Path  string // import path
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// RawPackage is one parsed — but not yet type-checked — package. The
// split exists for the incremental driver: parsing (and content hashing)
// the whole module is cheap, while type-checking through the source
// importer is the expensive step that cache hits get to skip.
type RawPackage struct {
	Dir   string // directory relative to the module root
	Path  string // import path
	Files []*ast.File
	// Hash is the hex SHA-256 of the package's own sources (file names
	// and contents), independent of its dependencies.
	Hash string
	// LocalDeps are the module-local import paths, sorted.
	LocalDeps []string
}

// RawModule is the parsed module: every non-test package with content
// hashes and the local-dependency topological order.
type RawModule struct {
	Root    string
	ModPath string
	Fset    *token.FileSet
	Pkgs    map[string]*RawPackage // by import path
	// Order lists import paths with every local dependency before its
	// dependents.
	Order []string
}

// ParseModule parses every non-test package under the module rooted at
// root. It is a stdlib-only loader; test files (_test.go) are not
// loaded: the invariants filllint enforces are about shipped engine
// code, and tests legitimately use wall clocks, randomness and panics.
func ParseModule(root string) (*RawModule, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &RawModule{
		Root:    root,
		ModPath: modPath,
		Fset:    token.NewFileSet(),
		Pkgs:    map[string]*RawPackage{},
	}
	imports := map[string][]string{}

	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		files, hash, perr := parseDir(m.Fset, p)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(root, p)
		if rerr != nil {
			return rerr
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		rp := &RawPackage{Dir: rel, Path: ip, Files: files, Hash: hash}
		seen := map[string]bool{}
		for _, f := range files {
			for _, imp := range f.Imports {
				q := strings.Trim(imp.Path.Value, `"`)
				if !seen[q] {
					seen[q] = true
					imports[ip] = append(imports[ip], q)
				}
			}
		}
		m.Pkgs[ip] = rp
		return nil
	})
	if err != nil {
		return nil, err
	}

	for ip, rp := range m.Pkgs {
		for _, q := range imports[ip] {
			if _, ok := m.Pkgs[q]; ok {
				rp.LocalDeps = append(rp.LocalDeps, q)
			}
		}
		sort.Strings(rp.LocalDeps)
	}
	m.Order, err = topoOrder(m.Pkgs, func(p *RawPackage) []string { return p.LocalDeps })
	if err != nil {
		return nil, err
	}
	return m, nil
}

// ChainHashes returns, for every package, a hex hash covering the
// package's own sources, its local dependencies' chain hashes, and salt
// (analyzer configuration, versions). Any change in a package or
// anything it depends on — and hence anything that could change its
// findings or the facts flowing into it — changes its chain hash.
func (m *RawModule) ChainHashes(salt string) map[string]string {
	chain := make(map[string]string, len(m.Pkgs))
	for _, ip := range m.Order {
		rp := m.Pkgs[ip]
		h := sha256.New()
		fmt.Fprintf(h, "salt %s\npkg %s %s\n", salt, ip, rp.Hash)
		for _, dep := range rp.LocalDeps {
			fmt.Fprintf(h, "dep %s %s\n", dep, chain[dep])
		}
		chain[ip] = hex.EncodeToString(h.Sum(nil))
	}
	return chain
}

// TypeCheck type-checks the packages selected by need (nil = all) plus,
// transitively, their local dependencies, in dependency order, and
// returns them keyed by import path.
func (m *RawModule) TypeCheck(need func(path string) bool) (map[string]*Package, error) {
	want := map[string]bool{}
	var include func(ip string)
	include = func(ip string) {
		if want[ip] {
			return
		}
		want[ip] = true
		for _, dep := range m.Pkgs[ip].LocalDeps {
			include(dep)
		}
	}
	for _, ip := range m.Order {
		if need == nil || need(ip) {
			include(ip)
		}
	}

	checked := make(map[string]*types.Package)
	imp := &chainImporter{
		local: checked,
		std:   importer.ForCompiler(m.Fset, "source", nil),
	}
	out := make(map[string]*Package, len(want))
	for _, ip := range m.Order {
		if !want[ip] {
			continue
		}
		rp := m.Pkgs[ip]
		pkg, info, cerr := CheckFiles(m.Fset, ip, rp.Files, imp)
		if cerr != nil {
			return nil, fmt.Errorf("type-checking %s: %w", ip, cerr)
		}
		checked[ip] = pkg
		out[ip] = &Package{Dir: rp.Dir, Path: ip, Fset: m.Fset, Files: rp.Files, Types: pkg, Info: info}
	}
	return out, nil
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at root, returning them sorted by import path. Local
// imports resolve against the packages being loaded (in dependency
// order), and everything else (the standard library) resolves through
// go/importer's source importer, so no compiled export data and no
// external tooling is required.
func LoadModule(root string) ([]*Package, error) {
	m, err := ParseModule(root)
	if err != nil {
		return nil, err
	}
	byPath, err := m.TypeCheck(nil)
	if err != nil {
		return nil, err
	}
	out := make([]*Package, 0, len(byPath))
	for _, p := range byPath {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// CheckFiles type-checks one package's files under the given import path,
// returning the package and the filled-in type info the analyzers need.
// Exported for the fixture-test harness, which checks single files under
// synthetic import paths to exercise package-scoped analyzers.
func CheckFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// StdImporter returns a source-based importer for standard-library
// packages sharing fset. Exported for the fixture-test harness.
func StdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}

// chainImporter serves module-local packages from the checked set and
// delegates everything else to the stdlib source importer.
type chainImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// parseDir parses the non-test, non-ignored .go files directly inside dir
// (no recursion) and hashes their names and contents. It returns no files
// when dir holds no Go files.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var files []*ast.File
	h := sha256.New()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		src, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, "", rerr
		}
		f, perr := parser.ParseFile(fset, path, src, parser.ParseComments)
		if perr != nil {
			return nil, "", perr
		}
		if buildIgnored(f) {
			continue
		}
		fmt.Fprintf(h, "file %s %d\n", name, len(src))
		h.Write(src)
		files = append(files, f)
	}
	return files, hex.EncodeToString(h.Sum(nil)), nil
}

// buildIgnored reports whether f carries a "//go:build ignore" constraint.
func buildIgnored(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if strings.HasPrefix(text, "//go:build") && strings.Contains(text, "ignore") {
				return true
			}
		}
	}
	return false
}

// topoOrder orders package paths so every local dependency precedes its
// dependents, failing on import cycles.
func topoOrder[T any](nodes map[string]*T, deps func(*T) []string) ([]string, error) {
	keys := make([]string, 0, len(nodes))
	for k := range nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]int, len(nodes))
	var order []string
	var visit func(string) error
	visit = func(k string) error {
		switch state[k] {
		case gray:
			return fmt.Errorf("import cycle through %s", k)
		case black:
			return nil
		}
		state[k] = gray
		d := deps(nodes[k])
		sort.Strings(d)
		for _, q := range d {
			if err := visit(q); err != nil {
				return err
			}
		}
		state[k] = black
		order = append(order, k)
		return nil
	}
	for _, k := range keys {
		if err := visit(k); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// modulePath reads the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
