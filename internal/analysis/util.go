package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// pkgScope builds a Packages predicate matching import paths that end in
// one of the given module-relative package dirs (e.g. "internal/fill").
// Suffix matching keeps the predicate independent of the module name, so
// fixture packages checked under synthetic paths scope identically.
func pkgScope(dirs ...string) func(string) bool {
	return func(path string) bool {
		for _, d := range dirs {
			if path == d || strings.HasSuffix(path, "/"+d) {
				return true
			}
		}
		return false
	}
}

// calleeFunc resolves the called function or method of call, or nil for
// builtins, type conversions and indirect calls through non-selector
// expressions it cannot name.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name (resolved through the type info, so import renames and
// shadowing are handled).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// funcBodies yields every function body in the file exactly once, each
// paired with its owning declaration context: the FuncDecl for methods and
// functions (nil for function literals). Nested literals are yielded
// separately and excluded from the enclosing body's walk via the visit
// callback's return value.
type funcBody struct {
	decl *ast.FuncDecl // nil for function literals
	typ  *ast.FuncType
	body *ast.BlockStmt
}

func funcBodies(f *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcBody{decl: fn, typ: fn.Type, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{typ: fn.Type, body: fn.Body})
		}
		return true
	})
	return out
}

// walkBody walks stmts of one function body without descending into
// nested function literals (they are separate funcBodies).
func walkBody(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n == nil {
			return true
		}
		return fn(n)
	})
}

// hasCtxParam reports whether ft declares a parameter of type
// context.Context (by type, through the checker, not by name).
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}
