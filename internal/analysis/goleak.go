package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak requires every go statement to have a provable join or cancel
// edge — some mechanism by which the goroutine's lifetime is bounded by
// its spawner rather than by the process. Accepted proofs, matching the
// module's concurrency idioms:
//
//   - the goroutine calls Done on a sync.WaitGroup (worker-pool join);
//   - the goroutine receives from a context's Done channel (cancel
//     propagation: the watcher idiom);
//   - the goroutine closes or sends on a channel that the spawning
//     function receives from (completion signal: the done-channel
//     idiom);
//   - the goroutine is a call to a named function proven joinable by
//     one of the first two rules, in this package or — via exported
//     JoinableFact — any dependency.
//
// A fire-and-forget goroutine that is genuinely intended to live for
// the whole process must say so with an allow pragma.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "every go statement needs a provable join or cancel edge",
	Run:  runGoLeak,
}

// JoinableFact marks a named function whose body contains its own join
// or cancel edge, so `go pkg.Fn(...)` is accepted at spawn sites.
type JoinableFact struct{ Reason string }

func (JoinableFact) FactName() string { return "goleak.Joinable" }

func runGoLeak(p *Pass) {
	// Pass 1: prove named functions joinable and export the facts, so
	// spawn sites here and downstream can accept `go f()`.
	joinable := map[*types.Func]string{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			reason := selfJoinReason(p.Info, fd.Body)
			if reason == "" {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				joinable[fn] = reason
				p.ExportObjectFact(fn, JoinableFact{Reason: reason})
			}
		}
	}

	// Pass 2: judge every go statement against its enclosing body.
	for _, f := range p.Files {
		for _, fb := range funcBodies(f) {
			walkBody(fb.body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(p, fb, gs, joinable)
				return true
			})
		}
	}
}

func checkGoStmt(p *Pass, fb funcBody, gs *ast.GoStmt, joinable map[*types.Func]string) {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		if selfJoinReason(p.Info, lit.Body) != "" {
			return
		}
		// Completion-signal idiom: the goroutine closes or sends on a
		// channel the spawning function receives from.
		signals := signaledChans(p.Info, lit.Body)
		if len(signals) > 0 {
			received := receivedChans(p.Info, fb.body)
			for ch := range signals {
				if received[ch] {
					return
				}
			}
		}
		p.Reportf(gs.Pos(), "goroutine has no provable join or cancel edge (WaitGroup.Done, ctx.Done receive, or signal channel the spawner receives from)")
		return
	}
	// go f(...): accept when the named callee is proven joinable.
	if fn := calleeFunc(p.Info, gs.Call); fn != nil {
		if _, ok := joinable[fn]; ok {
			return
		}
		var jf JoinableFact
		if p.ImportObjectFact(fn, &jf) {
			return
		}
		p.Reportf(gs.Pos(), "go %s: callee has no provable join or cancel edge in its body", fn.Name())
		return
	}
	p.Reportf(gs.Pos(), "goroutine has no provable join or cancel edge")
}

// selfJoinReason inspects a function body (defers and nested literals
// included — a join edge anywhere in the goroutine bounds it) for an
// intrinsic join or cancel edge, returning a short reason or "".
func selfJoinReason(info *types.Info, body *ast.BlockStmt) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isWaitGroupDone(info, n) {
				reason = "calls WaitGroup.Done"
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isCtxDoneChan(info, n.X) {
				reason = "receives from ctx.Done()"
				return false
			}
		case *ast.RangeStmt:
			// for range ctx.Done() — exotic but equivalent.
			if isCtxDoneChan(info, n.X) {
				reason = "receives from ctx.Done()"
				return false
			}
		}
		return true
	})
	return reason
}

// isWaitGroupDone matches wg.Done() on a sync.WaitGroup.
func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Done" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named := derefNamed(recv.Type())
	return named != nil && named.Obj().Name() == "WaitGroup"
}

// isCtxDoneChan matches the expression ctx.Done() for a context.Context.
func isCtxDoneChan(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && isContextType(tv.Type)
}

// signaledChans collects channel variables the body closes or sends on.
func signaledChans(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	note := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				out[v] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			note(n.Chan)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) == 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "close" {
					note(n.Args[0])
				}
			}
		}
		return true
	})
	return out
}

// receivedChans collects channel variables the body receives from —
// plain receives, select comm clauses, and range-over-channel.
func receivedChans(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	note := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				out[v] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				note(n.X)
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					note(n.X)
				}
			}
		}
		return true
	})
	return out
}
