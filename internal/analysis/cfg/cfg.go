// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and runs small worklist dataflow analyses on them. It
// is the substrate under the dataflow analyzers in internal/analysis
// (lockguard's must-hold lock tracking, errsink's reaching-definitions
// dead-error detection): stdlib-only, statement-granular, and built for
// the shapes that actually occur in this module's engine and serving
// code — branches, loops, switch/select, labeled break/continue, goto,
// defer — rather than full language generality.
//
// A Graph is a list of basic blocks. Each block holds the statements and
// control expressions that execute in it, in execution order; nested
// function literals are NOT part of the enclosing graph (they are
// separate function bodies with graphs of their own; see the funcBodies
// walker in internal/analysis). Two nodes are special:
//
//   - a *ast.RangeStmt appearing in a block's node list stands for the
//     loop head only — evaluating the ranged expression and binding the
//     key/value variables for one iteration. Its body belongs to other
//     blocks. Walk such nodes with WalkNode, never raw ast.Inspect.
//   - a *ast.DeferStmt is recorded where it executes (the deferred call's
//     arguments are evaluated there), and additionally collected in
//     Graph.Defers: the calls themselves run at function exit.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// Block is one basic block.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Kind names what created the block ("entry", "if.then", "for.head",
	// ...) for tests and debug dumps.
	Kind string
	// Nodes are the statements and control expressions executed in the
	// block, in order.
	Nodes []ast.Node
	// Succs are the indices of successor blocks.
	Succs []int
	// Live reports whether the block is reachable from the entry block.
	Live bool
}

// Graph is the CFG of one function body.
type Graph struct {
	Blocks []*Block
	// Entry and Exit index the synthetic entry and exit blocks. Every
	// return statement has an edge to Exit, as does the fall-off end of
	// the body.
	Entry, Exit int
	// Defers lists the defer statements of the body in source order;
	// their calls run at every path into Exit, in reverse order.
	Defers []*ast.DeferStmt
}

// New builds the CFG of one function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	entry := b.newBlock("entry")
	exit := b.newBlock("exit")
	b.g.Entry, b.g.Exit = entry.Index, exit.Index
	b.cur = entry
	b.labels = map[string]*Block{}
	b.buildStmt(body)
	b.edge(b.cur, b.block(b.g.Exit))
	b.markLive()
	return b.g
}

func (g *Graph) block(i int) *Block { return g.Blocks[i] }

// String renders the graph for debugging and golden tests.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d(%s)", blk.Index, blk.Kind)
		if !blk.Live {
			sb.WriteString(" dead")
		}
		sb.WriteString(" ->")
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " b%d", s)
		}
		fmt.Fprintf(&sb, " [%d nodes]\n", len(blk.Nodes))
	}
	return sb.String()
}

// WalkNode walks one block node, calling fn in pre-order exactly like
// ast.Inspect, with two exceptions that keep block nodes disjoint: for a
// *ast.RangeStmt node it walks only the key, value and ranged expression
// (the loop head), and it never descends into nested *ast.FuncLit bodies
// (they are separate function bodies). fn returning false prunes the
// subtree, as with ast.Inspect.
func WalkNode(n ast.Node, fn func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		if !fn(r) {
			return
		}
		for _, sub := range []ast.Expr{r.Key, r.Value, r.X} {
			if sub != nil {
				WalkNode(sub, fn)
			}
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if lit, ok := m.(*ast.FuncLit); ok && lit != n {
			return false
		}
		return fn(m)
	})
}

// builder holds the under-construction graph and the control context.
type builder struct {
	g   *builderGraph
	cur *Block
	// frames is the stack of enclosing breakable/continuable constructs.
	frames []frame
	labels map[string]*Block
	// pendingLabel is the label naming the NEXT loop/switch/select frame
	// (set by a LabeledStmt wrapping it).
	pendingLabel string
}

type builderGraph = Graph

// frame is one enclosing construct break/continue can target.
type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) block(i int) *Block { return b.g.Blocks[i] }

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to.Index {
			return
		}
	}
	from.Succs = append(from.Succs, to.Index)
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// startBlock switches construction to a fresh block with NO implicit
// edge from the current one (used after terminating statements).
func (b *builder) startBlock(kind string) {
	b.cur = b.newBlock(kind)
}

// labelBlock returns (creating if needed) the block a label names, for
// goto targets that may be defined after their first use.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) buildStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.buildStmt(st)
		}
	case *ast.IfStmt:
		b.buildStmt(s.Init)
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock("if.then")
		b.edge(cond, then)
		after := b.newBlock("if.done")
		b.cur = then
		b.buildStmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cond, els)
			b.cur = els
			b.buildStmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after
	case *ast.ForStmt:
		label := b.takeLabel()
		b.buildStmt(s.Init)
		head := b.newBlock("for.head")
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock("for.body")
		post := b.newBlock("for.post")
		after := b.newBlock("for.done")
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.frames = append(b.frames, frame{label: label, breakTo: after, continueTo: post})
		b.cur = body
		b.buildStmt(s.Body)
		b.edge(b.cur, post)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = post
		b.buildStmt(s.Post)
		b.edge(b.cur, head)
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		b.edge(b.cur, head)
		// The whole RangeStmt is the head node: one iteration's key/value
		// binding plus the ranged expression. WalkNode keeps the body out.
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock("range.body")
		after := b.newBlock("range.done")
		b.edge(head, body)
		b.edge(head, after)
		b.frames = append(b.frames, frame{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.buildStmt(s.Body)
		b.edge(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after
	case *ast.SwitchStmt:
		b.buildSwitch(s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.buildSwitch(s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock("select.done")
		b.frames = append(b.frames, frame{label: label, breakTo: after})
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock("select.case")
			b.edge(head, blk)
			b.cur = blk
			b.buildStmt(comm.Comm) // nil for default
			for _, st := range comm.Body {
				b.buildStmt(st)
			}
			b.edge(b.cur, after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		// A select with no default blocks until a case is ready; every
		// successor of head is a case, so there is no head->after edge.
		b.cur = after
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.block(b.g.Exit))
		b.startBlock("unreachable")
	case *ast.BranchStmt:
		b.buildBranch(s)
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.buildStmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)
	default:
		// Simple statements: assignments, declarations, expression and
		// send statements, go statements, incdec, empty.
		b.add(s)
	}
}

// buildSwitch covers expression and type switches: init and tag/assign
// evaluate in the head, every case clause gets a block, fallthrough
// chains clause bodies, and a missing default adds a head->after edge.
func (b *builder) buildSwitch(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	b.buildStmt(init)
	if tag != nil {
		b.add(tag)
	}
	b.buildStmt(assign)
	head := b.cur
	after := b.newBlock("switch.done")
	hasDefault := false
	b.frames = append(b.frames, frame{label: label, breakTo: after})
	var clauses []*ast.CaseClause
	var blocks []*Block
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		clauses = append(clauses, cc)
		blk := b.newBlock("switch.case")
		b.edge(head, blk)
		blocks = append(blocks, blk)
		if cc.List == nil {
			hasDefault = true
		}
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		ft := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				ft = true
				break
			}
			b.buildStmt(st)
		}
		if ft && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		b.edge(head, after)
	}
	b.cur = after
}

func (b *builder) buildBranch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		if t := b.findFrame(s.Label, false); t != nil {
			b.edge(b.cur, t)
		}
		b.startBlock("unreachable")
	case "continue":
		if t := b.findFrame(s.Label, true); t != nil {
			b.edge(b.cur, t)
		}
		b.startBlock("unreachable")
	case "goto":
		b.edge(b.cur, b.labelBlock(s.Label.Name))
		b.startBlock("unreachable")
	case "fallthrough":
		// Handled by buildSwitch; a stray one terminates the block.
		b.startBlock("unreachable")
	}
}

// findFrame resolves a break (wantContinue false) or continue target,
// optionally by label.
func (b *builder) findFrame(label *ast.Ident, wantContinue bool) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label != nil && f.label != label.Name {
			continue
		}
		if wantContinue {
			if f.continueTo != nil {
				return f.continueTo
			}
			if label != nil {
				return nil
			}
			continue
		}
		return f.breakTo
	}
	return nil
}

// markLive flags blocks reachable from the entry.
func (b *builder) markLive() {
	var stack []int
	stack = append(stack, b.g.Entry)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		blk := b.g.Blocks[i]
		if blk.Live {
			continue
		}
		blk.Live = true
		stack = append(stack, blk.Succs...)
	}
}
