package cfg

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildFunc parses src (a complete file), type-checks it, and returns
// the graph of the function named name plus the type info.
func buildFunc(t *testing.T, src, name string) (*Graph, *types.Info, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-checking: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return New(fd.Body), info, fd
		}
	}
	t.Fatalf("no function %q", name)
	return nil, nil, nil
}

// reachable collects the set of live block kinds.
func kinds(g *Graph) map[string]int {
	m := map[string]int{}
	for _, b := range g.Blocks {
		if b.Live {
			m[b.Kind]++
		}
	}
	return m
}

func TestBranches(t *testing.T) {
	g, _, _ := buildFunc(t, `package p
func f(a int) int {
	x := 0
	if a > 0 {
		x = 1
	} else if a < 0 {
		x = -1
	}
	return x
}`, "f")
	k := kinds(g)
	if k["if.then"] != 2 || k["if.else"] != 1 || k["if.done"] != 2 {
		t.Fatalf("unexpected if structure: %v\n%s", k, g)
	}
	// The entry must reach the exit along both arms.
	if !g.Blocks[g.Exit].Live {
		t.Fatalf("exit unreachable:\n%s", g)
	}
}

func TestLoops(t *testing.T) {
	g, _, _ := buildFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 9 {
			break
		}
		s += i
	}
	for {
		s--
		if s < 0 {
			return s
		}
	}
}`, "f")
	k := kinds(g)
	if k["for.head"] != 2 || k["for.body"] != 2 {
		t.Fatalf("unexpected loop structure: %v\n%s", k, g)
	}
	// The infinite loop's for.done is unreachable; the first loop's is
	// reachable via cond-false and break.
	dead := 0
	for _, b := range g.Blocks {
		if b.Kind == "for.done" && !b.Live {
			dead++
		}
	}
	if dead != 1 {
		t.Fatalf("want exactly one dead for.done, got %d\n%s", dead, g)
	}
	// Back edges: each head must have an incoming edge from its post.
	back := 0
	for _, b := range g.Blocks {
		if b.Kind != "for.post" {
			continue
		}
		for _, s := range b.Succs {
			if g.Blocks[s].Kind == "for.head" {
				back++
			}
		}
	}
	if back != 2 {
		t.Fatalf("want 2 back edges, got %d\n%s", back, g)
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g, _, _ := buildFunc(t, `package p
func f(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
			s++
		}
	}
	return s
}`, "f")
	if !g.Blocks[g.Exit].Live {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	// continue outer must edge into the outer for.post, break outer into
	// the outer for.done: both outer blocks have >= 2 predecessors.
	preds := map[int]int{}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s]++
		}
	}
	var outerPost, outerDone int
	for _, b := range g.Blocks {
		switch b.Kind {
		case "for.post":
			if outerPost == 0 {
				outerPost = b.Index // first post allocated = outer loop
			}
		case "for.done":
			if outerDone == 0 {
				outerDone = b.Index
			}
		}
	}
	if preds[outerPost] < 2 {
		t.Fatalf("continue outer not wired into outer post:\n%s", g)
	}
	if preds[outerDone] < 2 {
		t.Fatalf("break outer not wired into outer done:\n%s", g)
	}
}

func TestSelectAndSwitch(t *testing.T) {
	g, _, _ := buildFunc(t, `package p
func f(a chan int, b chan int, mode int) int {
	switch mode {
	case 0:
		return -1
	case 1:
		mode = 2
	default:
		mode = 3
	}
	select {
	case v := <-a:
		return v
	case b <- mode:
		return 0
	}
}`, "f")
	k := kinds(g)
	if k["switch.case"] != 3 {
		t.Fatalf("want 3 switch cases, got %v\n%s", k, g)
	}
	if k["select.case"] != 2 {
		t.Fatalf("want 2 select cases, got %v\n%s", k, g)
	}
	// A select with no default never falls through: select.done must be
	// unreachable here (both cases return).
	for _, b := range g.Blocks {
		if b.Kind == "select.done" && b.Live {
			t.Fatalf("select.done reachable despite both cases returning:\n%s", g)
		}
	}
}

func TestDefersRecorded(t *testing.T) {
	g, _, _ := buildFunc(t, `package p
import "sync"
func f(mu *sync.Mutex) int {
	mu.Lock()
	defer mu.Unlock()
	x := 1
	defer func() { x = 0 }()
	return x
}`, "f")
	if len(g.Defers) != 2 {
		t.Fatalf("want 2 recorded defers, got %d", len(g.Defers))
	}
	// Defer statements also appear as block nodes at their source point.
	found := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				found++
			}
		}
	}
	if found != 2 {
		t.Fatalf("want 2 defer nodes in blocks, got %d", found)
	}
}

func TestGoto(t *testing.T) {
	g, _, _ := buildFunc(t, `package p
func f(n int) int {
	i := 0
retry:
	i++
	if i < n {
		goto retry
	}
	return i
}`, "f")
	if !g.Blocks[g.Exit].Live {
		t.Fatalf("exit unreachable:\n%s", g)
	}
	// The label block must have two predecessors: fallthrough and goto.
	preds := map[int]int{}
	var label int
	for _, b := range g.Blocks {
		if strings.HasPrefix(b.Kind, "label.") {
			label = b.Index
		}
		for _, s := range b.Succs {
			preds[s]++
		}
	}
	if preds[label] < 2 {
		t.Fatalf("goto edge missing:\n%s", g)
	}
}

// errVars tracks every variable whose type is error.
func errVars(v *types.Var) bool {
	return v.Type() != nil && v.Type().String() == "error"
}

func deadAt(t *testing.T, src, name string, liveAtExit bool) []Def {
	t.Helper()
	g, info, fd := buildFunc(t, src, name)
	r := ReachingDefs(g, info, errVars)
	var exitLive []*types.Var
	if liveAtExit && fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, n := range f.Names {
				if v, ok := info.Defs[n].(*types.Var); ok {
					exitLive = append(exitLive, v)
				}
			}
		}
	}
	return r.Dead(exitLive)
}

func TestReachingDeadDef(t *testing.T) {
	// err assigned, then overwritten before any use: first def is dead.
	dead := deadAt(t, `package p
import "errors"
func g() error { return errors.New("x") }
func f() error {
	err := g()
	err = g()
	return err
}`, "f", false)
	if len(dead) != 1 {
		t.Fatalf("want 1 dead def, got %d", len(dead))
	}
}

func TestReachingUseOnOneBranchIsEnough(t *testing.T) {
	dead := deadAt(t, `package p
import "errors"
func g() error { return errors.New("x") }
func f(c bool) error {
	err := g()
	if c {
		return err
	}
	return nil
}`, "f", false)
	if len(dead) != 0 {
		t.Fatalf("want no dead defs, got %v", dead)
	}
}

func TestReachingLoopCarriedUse(t *testing.T) {
	// The def at the loop bottom is used on the back edge's next
	// iteration check: not dead.
	dead := deadAt(t, `package p
import "errors"
func g() error { return errors.New("x") }
func f(n int) {
	var err error
	for i := 0; i < n; i++ {
		if err != nil {
			break
		}
		err = g()
	}
	_ = err
}`, "f", false)
	if len(dead) != 0 {
		t.Fatalf("want no dead defs, got %v", dead)
	}
}

func TestReachingDeadInDeadCode(t *testing.T) {
	// A def never followed by a use on any path: dead.
	dead := deadAt(t, `package p
import "errors"
func g() error { return errors.New("x") }
func f() int {
	err := g()
	goto done
	_ = err
done:
	return 1
}`, "f", false)
	if len(dead) != 1 {
		t.Fatalf("want 1 dead def (use is unreachable), got %d", len(dead))
	}
}

func TestReachingNamedResultLiveAtExit(t *testing.T) {
	dead := deadAt(t, `package p
import "errors"
func g() error { return errors.New("x") }
func f() (err error) {
	err = g()
	return
}`, "f", true)
	if len(dead) != 0 {
		t.Fatalf("named result assignment flagged dead: %v", dead)
	}
}

func TestReachingClosureCaptureUntracked(t *testing.T) {
	// err is captured by a literal: untracked, so never reported.
	dead := deadAt(t, `package p
import "errors"
func g() error { return errors.New("x") }
func f() func() error {
	err := g()
	return func() error { return err }
}`, "f", false)
	if len(dead) != 0 {
		t.Fatalf("captured var reported dead: %v", dead)
	}
}

func TestReachingSelectDefUse(t *testing.T) {
	dead := deadAt(t, `package p
import "errors"
func f(c chan error) error {
	var err error
	select {
	case err = <-c:
	default:
		err = errors.New("empty")
	}
	return err
}`, "f", false)
	if len(dead) != 0 {
		t.Fatalf("select-case defs reported dead: %v", dead)
	}
}
