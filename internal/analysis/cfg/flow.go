package cfg

// Forward runs an iterative forward dataflow analysis over g to a
// fixpoint and returns the state at entry and exit of every block.
//
//   - boundary is the state at the entry block's entry (e.g. "no locks
//     held", "no definitions reach").
//   - unvisited is the identity of meet: the optimistic initial state of
//     every other block's entry (the full set for a must-analysis, the
//     empty set for a may-analysis).
//   - transfer maps a block's entry state to its exit state. It must be
//     pure: the driver may call it repeatedly.
//   - meet combines two predecessor exit states.
//   - equal detects the fixpoint.
//
// Only live blocks participate; dead blocks keep the unvisited state.
func Forward[S any](
	g *Graph,
	boundary func() S,
	unvisited func() S,
	transfer func(b *Block, in S) S,
	meet func(a, b S) S,
	equal func(a, b S) bool,
) (in, out []S) {
	n := len(g.Blocks)
	in = make([]S, n)
	out = make([]S, n)
	for i := range in {
		in[i] = unvisited()
		out[i] = unvisited()
	}
	in[g.Entry] = boundary()

	preds := make([][]int, n)
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b.Index)
		}
	}

	// Worklist seeded with every live block in index order (the builder
	// allocates roughly in program order, which converges quickly).
	work := make([]int, 0, n)
	inWork := make([]bool, n)
	push := func(i int) {
		if !inWork[i] && g.Blocks[i].Live {
			inWork[i] = true
			work = append(work, i)
		}
	}
	for _, b := range g.Blocks {
		push(b.Index)
	}
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		inWork[i] = false
		b := g.Blocks[i]
		s := in[i]
		if len(preds[i]) > 0 {
			s = out[preds[i][0]]
			for _, p := range preds[i][1:] {
				s = meet(s, out[p])
			}
			if i == g.Entry {
				s = meet(s, boundary())
			}
			in[i] = s
		}
		next := transfer(b, s)
		if !equal(next, out[i]) {
			out[i] = next
			for _, succ := range b.Succs {
				push(succ)
			}
		}
	}
	return in, out
}

// BitSet is a small dense bit set used as dataflow state.
type BitSet []uint64

// NewBitSet returns a set able to hold n elements.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

func (s BitSet) Has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }
func (s BitSet) Set(i int)      { s[i/64] |= 1 << (i % 64) }
func (s BitSet) Clear(i int)    { s[i/64] &^= 1 << (i % 64) }

// Clone returns an independent copy.
func (s BitSet) Clone() BitSet {
	c := make(BitSet, len(s))
	copy(c, s)
	return c
}

// Union adds every element of o to s.
func (s BitSet) Union(o BitSet) {
	for i := range o {
		s[i] |= o[i]
	}
}

// Intersect keeps only elements present in both.
func (s BitSet) Intersect(o BitSet) {
	for i := range s {
		s[i] &= o[i]
	}
}

// Fill sets every element [0, n).
func (s BitSet) Fill(n int) {
	for i := 0; i < n; i++ {
		s.Set(i)
	}
}

// Equal reports whether two same-capacity sets hold the same elements.
func (s BitSet) Equal(o BitSet) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}
