package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Def is one definition (assignment) of a tracked variable.
type Def struct {
	Var *types.Var
	// Node is the statement or range head performing the definition.
	Node ast.Node
	// Pos is the position of the defined identifier.
	Pos token.Pos
}

// Reaching holds the reaching-definitions solution for one function
// body over a caller-chosen set of local variables.
//
// Tracking is deliberately conservative about aliasing: a variable whose
// address is taken anywhere in the body, or that is captured by a nested
// function literal, is dropped from tracking entirely (writes and reads
// through the alias are invisible to the intraprocedural graph).
type Reaching struct {
	g    *Graph
	info *types.Info
	defs []Def
	// defsOf indexes defs by variable.
	defsOf map[*types.Var][]int
	// in is the set of defs reaching each block's entry.
	in []BitSet
}

// ReachingDefs computes reaching definitions over g for every local
// variable accepted by track (called once per candidate *types.Var).
func ReachingDefs(g *Graph, info *types.Info, track func(*types.Var) bool) *Reaching {
	r := &Reaching{g: g, info: info, defsOf: map[*types.Var][]int{}}

	escaped := escapedVars(g, info)
	tracked := func(v *types.Var) bool {
		return v != nil && !escaped[v] && track(v)
	}

	// Pass 1: enumerate definitions in block/node order.
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		for _, n := range b.Nodes {
			forEachDef(info, n, func(v *types.Var, id *ast.Ident) {
				if !tracked(v) {
					return
				}
				i := len(r.defs)
				r.defs = append(r.defs, Def{Var: v, Node: n, Pos: id.Pos()})
				r.defsOf[v] = append(r.defsOf[v], i)
			})
		}
	}
	if len(r.defs) == 0 {
		r.in = make([]BitSet, len(g.Blocks))
		return r
	}

	nd := len(r.defs)
	boundary := func() BitSet { return NewBitSet(nd) }
	transfer := func(b *Block, in BitSet) BitSet {
		s := in.Clone()
		r.scanBlock(b, s, nil)
		return s
	}
	meet := func(a, b BitSet) BitSet {
		u := a.Clone()
		u.Union(b)
		return u
	}
	in, _ := Forward(g, boundary, boundary, transfer, meet, BitSet.Equal)
	r.in = in
	return r
}

// Dead returns tracked definitions that reach no use of their variable.
// liveAtExit lists variables implicitly consumed at function exit (named
// results); their definitions reaching the exit block count as used.
func (r *Reaching) Dead(liveAtExit []*types.Var) []Def {
	if len(r.defs) == 0 {
		return nil
	}
	used := make([]bool, len(r.defs))
	mark := func(cur BitSet, v *types.Var) {
		for _, i := range r.defsOf[v] {
			if cur.Has(i) {
				used[i] = true
			}
		}
	}
	for _, b := range r.g.Blocks {
		if !b.Live || r.in[b.Index] == nil {
			continue
		}
		cur := r.in[b.Index].Clone()
		r.scanBlock(b, cur, mark)
	}
	exitIn := r.in[r.g.Exit]
	if exitIn != nil {
		for _, v := range liveAtExit {
			for _, i := range r.defsOf[v] {
				if exitIn.Has(i) {
					used[i] = true
				}
			}
		}
	}
	var dead []Def
	for i, d := range r.defs {
		if !used[i] {
			dead = append(dead, d)
		}
	}
	return dead
}

// scanBlock replays a block's nodes over the reaching set cur, invoking
// onUse (if non-nil) for every variable use before applying that node's
// kills and gens. Within a node, uses are processed before definitions
// (right-hand sides evaluate first).
func (r *Reaching) scanBlock(b *Block, cur BitSet, onUse func(BitSet, *types.Var)) {
	for _, n := range b.Nodes {
		if onUse != nil {
			forEachUse(r.info, n, func(v *types.Var) {
				if len(r.defsOf[v]) > 0 {
					onUse(cur, v)
				}
			})
		}
		forEachDef(r.info, n, func(v *types.Var, id *ast.Ident) {
			ds := r.defsOf[v]
			if len(ds) == 0 {
				return
			}
			for _, i := range ds {
				cur.Clear(i)
			}
			for _, i := range ds {
				if r.defs[i].Pos == id.Pos() {
					cur.Set(i)
				}
			}
		})
	}
}

// forEachDef reports the variables a block node defines (assignment LHS
// identifiers, value specs with initializers, incdec operands, range
// key/value bindings).
func forEachDef(info *types.Info, n ast.Node, fn func(*types.Var, *ast.Ident)) {
	report := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			fn(v, id)
		} else if v, ok := info.Uses[id].(*types.Var); ok {
			fn(v, id)
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			report(lhs)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					for _, name := range vs.Names {
						report(name)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		report(n.X)
	case *ast.RangeStmt:
		report(n.Key)
		if n.Value != nil {
			report(n.Value)
		}
	}
}

// forEachUse reports the variable reads a block node performs, excluding
// the defining occurrences on assignment left-hand sides.
func forEachUse(info *types.Info, n ast.Node, fn func(*types.Var)) {
	skip := map[*ast.Ident]bool{}
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Compound assignments (+=, &&= ...) read their left-hand side;
		// only = and := overwrite without reading.
		if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					skip[id] = true
				}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				skip[id] = true
			}
		}
	}
	WalkNode(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			fn(v)
		}
		return true
	})
}

// escapedVars collects variables that escape intraprocedural view:
// captured by a function literal or with their address taken. Scanning
// descends into everything (unlike WalkNode) because over-collection is
// safe — an escaped variable is merely untracked.
func escapedVars(g *Graph, info *types.Info) map[*types.Var]bool {
	escaped := map[*types.Var]bool{}
	noteAll := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					escaped[v] = true
				}
			}
			return true
		})
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.FuncLit:
					noteAll(m.Body)
					return false
				case *ast.UnaryExpr:
					if m.Op == token.AND {
						if id, ok := ast.Unparen(m.X).(*ast.Ident); ok {
							if v, ok := info.Uses[id].(*types.Var); ok {
								escaped[v] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return escaped
}
