package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolPair enforces sync.Pool discipline everywhere: every Get must have
// a matching Put on the same pool in the same function (directly or via
// defer), no return between the Get and the first Put may leak the
// scratch, and when the pooled type declares a Reset/reset method the
// function must invoke it — pooled scratch comes back dirty.
//
// The leak check is a textual-order heuristic, not a full CFG analysis:
// a return statement positioned after a Get is flagged unless some Put on
// the same pool precedes it (or a deferred Put covers the whole
// function). That shape catches the realistic failure — an early error
// return inserted between Get and Put — without false alarms on the
// Get…Put…return pattern the codebase uses.
var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc:  "sync.Pool Get/Put must pair on every return path, with dirty scratch reset",
	Run:  runPoolPair,
}

func runPoolPair(p *Pass) {
	for _, f := range p.Files {
		for _, fb := range funcBodies(f) {
			checkPoolBody(p, fb.body)
		}
	}
}

// poolMethodCall matches call as a (*sync.Pool).Get or Put method call,
// returning the method name and a textual key identifying the pool.
func poolMethodCall(info *types.Info, call *ast.CallExpr) (method, poolKey string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	if fn.Name() != "Get" && fn.Name() != "Put" {
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	ptr, isPtr := recv.Type().(*types.Pointer)
	if !isPtr {
		return "", "", false
	}
	named, isNamed := ptr.Elem().(*types.Named)
	if !isNamed || named.Obj().Name() != "Pool" {
		return "", "", false
	}
	return fn.Name(), types.ExprString(sel.X), true
}

func checkPoolBody(p *Pass, body *ast.BlockStmt) {
	type getInfo struct {
		pos  token.Pos
		call *ast.CallExpr
	}
	gets := map[string][]getInfo{}   // pool key → Get calls
	puts := map[string][]token.Pos{} // pool key → non-deferred Put positions
	deferred := map[string]bool{}    // pool key → has a deferred Put
	asserted := map[*ast.CallExpr]types.Type{}
	var returns []token.Pos
	calledMethods := map[*types.Func]bool{}

	walkBody(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if m, key, ok := poolMethodCall(p.Info, n.Call); ok && m == "Put" {
				deferred[key] = true
			}
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		case *ast.TypeAssertExpr:
			if call, isCall := ast.Unparen(n.X).(*ast.CallExpr); isCall {
				if m, _, ok := poolMethodCall(p.Info, call); ok && m == "Get" {
					if tv, ok := p.Info.Types[n.Type]; ok {
						asserted[call] = tv.Type
					}
				}
			}
		case *ast.CallExpr:
			if m, key, ok := poolMethodCall(p.Info, n); ok {
				switch m {
				case "Get":
					gets[key] = append(gets[key], getInfo{n.Pos(), n})
				case "Put":
					puts[key] = append(puts[key], n.Pos())
				}
			}
			if sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr); isSel {
				if fn, isFn := p.Info.Uses[sel.Sel].(*types.Func); isFn {
					calledMethods[fn] = true
				}
			}
		}
		return true
	})

	for key, gs := range gets {
		if len(puts[key]) == 0 && !deferred[key] {
			p.Reportf(gs[0].pos, "%s.Get without a matching %s.Put in this function; pooled scratch leaks", key, key)
			continue
		}
		if !deferred[key] {
			firstGet := gs[0].pos
			for _, g := range gs[1:] {
				if g.pos < firstGet {
					firstGet = g.pos
				}
			}
			for _, ret := range returns {
				if ret <= firstGet {
					continue
				}
				covered := false
				for _, put := range puts[key] {
					if put > firstGet && put < ret {
						covered = true
						break
					}
				}
				if !covered {
					p.Reportf(ret, "return between %s.Get and its Put leaks pooled scratch; Put before returning or defer the Put", key)
				}
			}
		}
		// Reset discipline: pooled values come back dirty, so a pooled type
		// that declares how to clean itself must be cleaned on every Get.
		for _, g := range gs {
			t, ok := asserted[g.call]
			if !ok {
				continue
			}
			if reset := resetMethod(t); reset != nil && !calledMethods[reset] {
				p.Reportf(g.pos, "pooled %s has a %s method that this function never calls; reset scratch before reuse", t.String(), reset.Name())
			}
		}
	}
}

// resetMethod returns t's Reset/reset method, if it declares one.
func resetMethod(t types.Type) *types.Func {
	for _, name := range [...]string{"Reset", "reset"} {
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			if fn, ok := ms.At(i).Obj().(*types.Func); ok && fn.Name() == name {
				return fn
			}
		}
	}
	return nil
}
