package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// castPackages are the geometry substrate and every wire writer: the
// places where int64 database units meet fixed-width wire fields (GDSII
// 4-byte coordinates, 2-byte layer numbers) or compressed int32 indexes.
var castPackages = pkgScope(
	"internal/geom",
	"internal/layout",
	"internal/layio",
	"internal/ingest",
	"internal/gdsii",
	"internal/oasis",
	"internal/textfmt",
)

// GeomCast forbids bare narrowing conversions of integer coordinates and
// indexes (int/int64 → int32, and int/int64/int32 → int16) in the
// geometry and wire-format packages. A bare cast silently truncates a
// coordinate that overflows the wire field — corrupting output instead of
// failing — so every narrowing must go through the checked helpers
// (geom.I32, geom.I16, geom.Idx32), which are themselves pragma-waived at
// their single internal cast.
var GeomCast = &Analyzer{
	Name:     "geomcast",
	Doc:      "integer narrowing in geometry/wire packages must use checked helpers",
	Packages: castPackages,
	Run:      runGeomCast,
}

func runGeomCast(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := p.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst, ok := tv.Type.Underlying().(*types.Basic)
			if !ok {
				return true
			}
			if dst.Kind() != types.Int32 && dst.Kind() != types.Int16 {
				return true
			}
			argTV, ok := p.Info.Types[call.Args[0]]
			if !ok {
				return true
			}
			src, ok := argTV.Type.Underlying().(*types.Basic)
			if !ok {
				return true
			}
			if !narrowingIntKind(src.Kind(), dst.Kind()) {
				return true
			}
			// Constants that provably fit are fine: the compiler has
			// already range-checked typed constant conversions.
			if argTV.Value != nil && representableInt(argTV.Value, dst.Kind()) {
				return true
			}
			p.Reportf(call.Pos(), "bare narrowing conversion %s → %s may truncate; use the checked geom helpers (I32/I16/Idx32)", src.Name(), dst.Name())
			return true
		})
	}
}

// narrowingIntKind reports whether converting src to dst can lose integer
// range: int/int64 → int32, or int/int64/int32 → int16.
func narrowingIntKind(src, dst types.BasicKind) bool {
	switch dst {
	case types.Int32:
		return src == types.Int || src == types.Int64
	case types.Int16:
		return src == types.Int || src == types.Int64 || src == types.Int32
	}
	return false
}

// representableInt reports whether constant v fits kind.
func representableInt(v constant.Value, kind types.BasicKind) bool {
	i, ok := constant.Int64Val(constant.ToInt(v))
	if !ok {
		return false
	}
	switch kind {
	case types.Int32:
		return i >= -1<<31 && i < 1<<31
	case types.Int16:
		return i >= -1<<15 && i < 1<<15
	}
	return false
}
