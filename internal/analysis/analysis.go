// Package analysis is the repo's self-contained static-analysis framework:
// a stdlib-only miniature of golang.org/x/tools/go/analysis that loads the
// module's packages with go/parser + go/types and runs invariant analyzers
// over them. The analyzers encode the contracts the engine's correctness
// rests on — determinism of emitted geometry, end-to-end context flow,
// sync.Pool discipline, checked narrowing on the wire formats, and the
// no-panic error taxonomy of the solver stack — so that "it compiles" and
// "filllint passes" together mean the invariants still hold.
//
// Suppression: a finding can be waived, with a recorded reason, by a
// pragma comment on the flagged line or the line directly above it:
//
//	//filllint:allow <analyzer> -- <reason>
//
// The reason is mandatory; a pragma without one is itself reported. The
// pragma waives exactly one analyzer on exactly one line, keeping every
// waived invariant grep-able and reviewed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	// Packages reports whether the analyzer applies to a package import
	// path. Analyzers see only packages they opt into; a nil func means
	// every package.
	Packages func(path string) bool
	Run      func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags   *[]Diagnostic
	allowed map[allowKey]bool
}

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an allow pragma waives it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowed[allowKey{p.Analyzer.Name, position.Filename, position.Line}] {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowKey identifies one waived (analyzer, file, line) triple.
type allowKey struct {
	analyzer string
	file     string
	line     int
}

const allowPrefix = "//filllint:allow "

// collectAllows scans a package's comments for allow pragmas. A pragma on
// line N waives findings on lines N and N+1 (its own line, or the line it
// is stacked above). Malformed pragmas — unknown analyzer or missing
// "-- reason" — are reported as findings themselves so a typo cannot
// silently disable enforcement.
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool, diags *[]Diagnostic) map[allowKey]bool {
	allowed := make(map[allowKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				name, reason, ok := strings.Cut(rest, "--")
				name = strings.TrimSpace(name)
				bad := func(format string, args ...any) {
					*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "pragma", Message: fmt.Sprintf(format, args...)})
				}
				if !ok || strings.TrimSpace(reason) == "" {
					bad("allow pragma needs a reason: //filllint:allow %s -- <why>", name)
					continue
				}
				if !known[name] {
					bad("allow pragma names unknown analyzer %q", name)
					continue
				}
				allowed[allowKey{name, pos.Filename, pos.Line}] = true
				allowed[allowKey{name, pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return allowed
}

// RunAnalyzers applies every analyzer (that opts into the package) to one
// loaded package and returns the findings sorted by position.
func RunAnalyzers(analyzers []*Analyzer, pkg *Package) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	allowed := collectAllows(pkg.Fset, pkg.Files, known, &diags)
	for _, a := range analyzers {
		if a.Packages != nil && !a.Packages(pkg.Types.Path()) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
			allowed:  allowed,
		}
		a.Run(pass)
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
