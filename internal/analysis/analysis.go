// Package analysis is the repo's self-contained static-analysis framework:
// a stdlib-only miniature of golang.org/x/tools/go/analysis that loads the
// module's packages with go/parser + go/types and runs invariant analyzers
// over them. The analyzers encode the contracts the engine's correctness
// rests on — determinism of emitted geometry, end-to-end context flow,
// sync.Pool discipline, checked narrowing on the wire formats, and the
// no-panic error taxonomy of the solver stack — so that "it compiles" and
// "filllint passes" together mean the invariants still hold.
//
// Suppression: a finding can be waived, with a recorded reason, by a
// pragma comment on the flagged line or the line directly above it:
//
//	//filllint:allow <analyzer> -- <reason>
//
// The reason is mandatory; a pragma without one is itself reported. The
// pragma waives exactly one analyzer on exactly one line, keeping every
// waived invariant grep-able and reviewed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	// Packages reports whether the analyzer applies to a package import
	// path. Analyzers see only packages they opt into; a nil func means
	// every package.
	Packages func(path string) bool
	Run      func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags   *[]Diagnostic
	allowed map[allowKey]*allowRec
	facts   *FactStore
}

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an allow pragma waives it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if rec := p.allowed[allowKey{p.Analyzer.Name, position.Filename, position.Line}]; rec != nil {
		rec.used = true
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowKey identifies one waived (analyzer, file, line) triple.
type allowKey struct {
	analyzer string
	file     string
	line     int
}

// allowRec is one well-formed allow pragma: both lines it waives point at
// the same record, so a hit on either marks the pragma used. Pragmas that
// stay unused are reported — a waiver that waives nothing is stale and
// hides whatever it once documented.
type allowRec struct {
	name string
	pos  token.Position
	used bool
}

const allowPrefix = "//filllint:allow "

// collectAllows scans a package's comments for allow pragmas. A pragma on
// line N waives findings on lines N and N+1 (its own line, or the line it
// is stacked above). Malformed pragmas — unknown analyzer or missing
// "-- reason" — are reported as findings themselves so a typo cannot
// silently disable enforcement.
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool, diags *[]Diagnostic) (map[allowKey]*allowRec, []*allowRec) {
	allowed := make(map[allowKey]*allowRec)
	var recs []*allowRec
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				name, reason, ok := strings.Cut(rest, "--")
				name = strings.TrimSpace(name)
				bad := func(format string, args ...any) {
					*diags = append(*diags, Diagnostic{Pos: pos, Analyzer: "pragma", Message: fmt.Sprintf(format, args...)})
				}
				if !ok || strings.TrimSpace(reason) == "" {
					bad("allow pragma needs a reason: //filllint:allow %s -- <why>", name)
					continue
				}
				if !known[name] {
					bad("allow pragma names unknown analyzer %q", name)
					continue
				}
				rec := &allowRec{name: name, pos: pos}
				recs = append(recs, rec)
				allowed[allowKey{name, pos.Filename, pos.Line}] = rec
				allowed[allowKey{name, pos.Filename, pos.Line + 1}] = rec
			}
		}
	}
	return allowed, recs
}

// knownNames returns the valid pragma vocabulary for a run: every
// registered analyzer plus whatever subset is enabled. Using the full
// registry keeps `-analyzers ctxflow` from declaring the repo's existing
// poolpair pragmas "unknown".
func knownNames(enabled []*Analyzer) map[string]bool {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range enabled {
		known[a.Name] = true
	}
	return known
}

// runPackage applies the enabled analyzers to one loaded package,
// threading facts (which may be nil for single-package runs) and
// reporting stale allow pragmas, and returns the findings sorted by
// position.
func runPackage(analyzers []*Analyzer, pkg *Package, known map[string]bool, facts *FactStore) []Diagnostic {
	var diags []Diagnostic
	allowed, recs := collectAllows(pkg.Fset, pkg.Files, known, &diags)
	enabled := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = a
	}
	for _, a := range analyzers {
		if a.Packages != nil && !a.Packages(pkg.Types.Path()) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
			allowed:  allowed,
			facts:    facts,
		}
		a.Run(pass)
	}
	// A pragma is only judged stale when its analyzer actually ran here:
	// waivers for disabled analyzers or out-of-scope packages are left
	// alone rather than reported against a check that never looked.
	for _, rec := range recs {
		if rec.used {
			continue
		}
		a := enabled[rec.name]
		if a == nil || (a.Packages != nil && !a.Packages(pkg.Types.Path())) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      rec.pos,
			Analyzer: "pragma",
			Message:  fmt.Sprintf("unused allow pragma: %s reports nothing on this or the next line", rec.name),
		})
	}
	SortDiagnostics(diags)
	return diags
}

// RunAnalyzers applies every analyzer (that opts into the package) to one
// loaded package and returns the findings sorted by position.
func RunAnalyzers(analyzers []*Analyzer, pkg *Package) []Diagnostic {
	return runPackage(analyzers, pkg, knownNames(analyzers), nil)
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
