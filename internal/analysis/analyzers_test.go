package analysis

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// Each analyzer is exercised against a seeded true-positive fixture and a
// clean fixture, type-checked under a package path the analyzer scopes
// on. The // want comments in the fixtures are the expectations.

func TestNoDetermFixtures(t *testing.T) {
	runFixture(t, NoDeterm, fixturePath("nodeterm", "bad.go"), "dummyfill/internal/fill")
	runFixture(t, NoDeterm, fixturePath("nodeterm", "clean.go"), "dummyfill/internal/fill")
	// Shard-scheduler hazards: map-range over shard state, clock-driven
	// shard decisions.
	runFixture(t, NoDeterm, fixturePath("nodeterm", "shard.go"), "dummyfill/internal/fill")
	// Cache-key hazards: timestamped keys never hit, map-order hashing
	// makes identical content key differently across runs.
	runFixture(t, NoDeterm, fixturePath("nodeterm", "fillcache.go"), "dummyfill/internal/fillcache")
	// DEF-writer hazards: timestamped headers and map-order component
	// emission break the round-trip golden.
	runFixture(t, NoDeterm, fixturePath("nodeterm", "deffmt.go"), "dummyfill/internal/deffmt")
	// Site-mode hazards: map-order gap collection and random width
	// tie-breaks break the site golden matrix.
	runFixture(t, NoDeterm, fixturePath("nodeterm", "site.go"), "dummyfill/internal/fill")
}

// TestNoDetermScope checks that the same hazards outside the
// deterministic package set are not findings: the synthetic-design
// generator legitimately uses seeded randomness.
func TestNoDetermScope(t *testing.T) {
	diags := fixtureDiags(t, NoDeterm, fixturePath("nodeterm", "bad.go"), "dummyfill/internal/synth")
	if len(diags) != 0 {
		t.Fatalf("nodeterm fired outside its package scope: %v", diags)
	}
}

func TestCtxFlowFixtures(t *testing.T) {
	runFixture(t, CtxFlow, fixturePath("ctxflow", "bad.go"), "dummyfill/internal/fill")
	runFixture(t, CtxFlow, fixturePath("ctxflow", "clean.go"), "dummyfill/internal/fill")
	// Shard-scheduler hazards: per-shard planning detached from the run
	// context.
	runFixture(t, CtxFlow, fixturePath("ctxflow", "shard.go"), "dummyfill/internal/fill")
	// Serving-layer hazards: jobs detached from the request/drain
	// contexts. internal/serve is in the analyzer's scope so its job
	// paths keep the hard-abort contract.
	runFixture(t, CtxFlow, fixturePath("ctxflow", "serve.go"), "dummyfill/internal/serve")
	// Cache-tier hazards: lookups detached from the engine's run context.
	runFixture(t, CtxFlow, fixturePath("ctxflow", "fillcache.go"), "dummyfill/internal/fillcache")
	// DEF-ingest hazards: decode helpers detached from the pipeline's
	// cancellable context.
	runFixture(t, CtxFlow, fixturePath("ctxflow", "deffmt.go"), "dummyfill/internal/deffmt")
}

// TestCtxFlowServeScope pins internal/serve inside the ctxflow scope: a
// regression that drops it from the package set silences the serving
// fixtures without failing them.
func TestCtxFlowServeScope(t *testing.T) {
	if !CtxFlow.Packages("dummyfill/internal/serve") {
		t.Fatal("ctxflow does not scope over dummyfill/internal/serve")
	}
}

// TestFillcacheScope pins internal/fillcache inside both the nodeterm
// and ctxflow scopes: cache keys feed the golden-hash determinism
// contract, and cache loads run under the engine's cancellable pipeline.
func TestFillcacheScope(t *testing.T) {
	if !NoDeterm.Packages("dummyfill/internal/fillcache") {
		t.Fatal("nodeterm does not scope over dummyfill/internal/fillcache")
	}
	if !CtxFlow.Packages("dummyfill/internal/fillcache") {
		t.Fatal("ctxflow does not scope over dummyfill/internal/fillcache")
	}
}

// TestDeffmtScope pins internal/deffmt inside both the nodeterm and
// ctxflow scopes: emitted DEF decks are golden-hashed like every other
// wire format, and ingest runs under the cancellable pipeline.
func TestDeffmtScope(t *testing.T) {
	if !NoDeterm.Packages("dummyfill/internal/deffmt") {
		t.Fatal("nodeterm does not scope over dummyfill/internal/deffmt")
	}
	if !CtxFlow.Packages("dummyfill/internal/deffmt") {
		t.Fatal("ctxflow does not scope over dummyfill/internal/deffmt")
	}
}

func TestPoolPairFixtures(t *testing.T) {
	// poolpair is unscoped: pool discipline holds module-wide.
	runFixture(t, PoolPair, fixturePath("poolpair", "bad.go"), "dummyfill/internal/geom")
	runFixture(t, PoolPair, fixturePath("poolpair", "clean.go"), "dummyfill/internal/geom")
	// Serving-layer pooled response buffers: leaked on reject paths,
	// reused without Reset.
	runFixture(t, PoolPair, fixturePath("poolpair", "serve.go"), "dummyfill/internal/serve")
	// Cache hasher-scratch pools: leaked Gets and early-return leaks.
	runFixture(t, PoolPair, fixturePath("poolpair", "fillcache.go"), "dummyfill/internal/fillcache")
	// Site-mode candidate-batch scratch: leaked on empty-lattice bails.
	runFixture(t, PoolPair, fixturePath("poolpair", "site.go"), "dummyfill/internal/fill")
}

func TestGeomCastFixtures(t *testing.T) {
	runFixture(t, GeomCast, fixturePath("geomcast", "bad.go"), "dummyfill/internal/gdsii")
	runFixture(t, GeomCast, fixturePath("geomcast", "clean.go"), "dummyfill/internal/gdsii")
}

func TestNoPanicFixtures(t *testing.T) {
	runFixture(t, NoPanic, fixturePath("nopanic", "bad.go"), "dummyfill/internal/mcf")
	runFixture(t, NoPanic, fixturePath("nopanic", "clean.go"), "dummyfill/internal/mcf")
}

func TestMalformedPragmasAreFindings(t *testing.T) {
	runFixture(t, NoPanic, fixturePath("pragma", "bad.go"), "dummyfill/internal/mcf")
}

func TestUnusedPragmasAreFindings(t *testing.T) {
	runFixture(t, NoPanic, fixturePath("pragma", "unused.go"), "dummyfill/internal/mcf")
}

// TestUnusedPragmaNeedsEnabledAnalyzer pins the staleness rule: a pragma
// is only judged unused when its analyzer actually ran, so running a
// subset never flags waivers belonging to the analyzers left out.
func TestUnusedPragmaNeedsEnabledAnalyzer(t *testing.T) {
	diags := fixtureDiags(t, CtxFlow, fixturePath("pragma", "unused.go"), "dummyfill/internal/fill")
	for _, d := range diags {
		if strings.Contains(d.Message, "unused allow pragma") {
			t.Fatalf("nopanic pragma judged stale by a run without nopanic: %v", d)
		}
	}
}

func TestLockGuardFixtures(t *testing.T) {
	// lockguard is unscoped: guard annotations are opt-in per field, so
	// it costs nothing where nothing is annotated.
	runFixture(t, LockGuard, fixturePath("lockguard", "bad.go"), "dummyfill/internal/serve")
	runFixture(t, LockGuard, fixturePath("lockguard", "clean.go"), "dummyfill/internal/serve")
	// The serving drain-gate shape: WaitGroup accounting ordered against
	// the draining flip through drainMu, as in internal/serve.
	runFixture(t, LockGuard, fixturePath("lockguard", "serve.go"), "dummyfill/internal/serve")
}

func TestGoLeakFixtures(t *testing.T) {
	runFixture(t, GoLeak, fixturePath("goleak", "bad.go"), "dummyfill/internal/fill")
	runFixture(t, GoLeak, fixturePath("goleak", "clean.go"), "dummyfill/internal/fill")
}

func TestErrSinkFixtures(t *testing.T) {
	runFixture(t, ErrSink, fixturePath("errsink", "bad.go"), "dummyfill/internal/fill")
	runFixture(t, ErrSink, fixturePath("errsink", "clean.go"), "dummyfill/internal/fill")
}

func TestChanBoundFixtures(t *testing.T) {
	runFixture(t, ChanBound, fixturePath("chanbound", "bad.go"), "dummyfill/internal/serve")
	runFixture(t, ChanBound, fixturePath("chanbound", "clean.go"), "dummyfill/internal/serve")
}

// TestChanBoundScope: unbuffered data channels outside the pipeline and
// serving packages are not chanbound's business.
func TestChanBoundScope(t *testing.T) {
	diags := fixtureDiags(t, ChanBound, fixturePath("chanbound", "bad.go"), "dummyfill/internal/synth")
	if len(diags) != 0 {
		t.Fatalf("chanbound fired outside its package scope: %v", diags)
	}
}

// TestCrossPackageErrSinkFacts drives the two-package fixture module
// through the real driver: package b drops two errors from package a,
// and only the unannotated one is a finding — which requires a's
// ErrSinkFact to reach b, from live analysis on the cold run and from
// the fact cache on the warm one.
func TestCrossPackageErrSinkFacts(t *testing.T) {
	root := filepath.Join("testdata", "factsmod")
	cache := t.TempDir()
	opts := DriverOptions{Analyzers: []*Analyzer{ErrSink}, Parallel: 2, CacheDir: cache}

	cold, err := RunDriver(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Diagnostics) != 1 {
		t.Fatalf("want exactly 1 finding (Fragile discarded), got %v", cold.Diagnostics)
	}
	d := cold.Diagnostics[0]
	if !strings.Contains(d.Message, "Fragile") || !strings.HasSuffix(d.Pos.Filename, "b.go") {
		t.Fatalf("finding should be the Fragile discard in b.go: %v", d)
	}

	warm, err := RunDriver(root, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Cached != 2 || warm.Stats.Analyzed != 0 {
		t.Fatalf("warm stats: %+v", warm.Stats)
	}
	if warm.Stats.CachedFacts == 0 {
		t.Fatalf("warm run loaded no facts from cache: %+v", warm.Stats)
	}
	if !reflect.DeepEqual(cold.Diagnostics, warm.Diagnostics) {
		t.Fatalf("cold/warm findings differ:\n%v\n%v", cold.Diagnostics, warm.Diagnostics)
	}
}

// TestAllUniqueNames guards the registry against duplicate or empty
// analyzer names (the driver's -analyzers flag keys on them).
func TestAllUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v incompletely registered", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
