package analysis

import "testing"

// Each analyzer is exercised against a seeded true-positive fixture and a
// clean fixture, type-checked under a package path the analyzer scopes
// on. The // want comments in the fixtures are the expectations.

func TestNoDetermFixtures(t *testing.T) {
	runFixture(t, NoDeterm, fixturePath("nodeterm", "bad.go"), "dummyfill/internal/fill")
	runFixture(t, NoDeterm, fixturePath("nodeterm", "clean.go"), "dummyfill/internal/fill")
	// Shard-scheduler hazards: map-range over shard state, clock-driven
	// shard decisions.
	runFixture(t, NoDeterm, fixturePath("nodeterm", "shard.go"), "dummyfill/internal/fill")
	// Cache-key hazards: timestamped keys never hit, map-order hashing
	// makes identical content key differently across runs.
	runFixture(t, NoDeterm, fixturePath("nodeterm", "fillcache.go"), "dummyfill/internal/fillcache")
	// DEF-writer hazards: timestamped headers and map-order component
	// emission break the round-trip golden.
	runFixture(t, NoDeterm, fixturePath("nodeterm", "deffmt.go"), "dummyfill/internal/deffmt")
	// Site-mode hazards: map-order gap collection and random width
	// tie-breaks break the site golden matrix.
	runFixture(t, NoDeterm, fixturePath("nodeterm", "site.go"), "dummyfill/internal/fill")
}

// TestNoDetermScope checks that the same hazards outside the
// deterministic package set are not findings: the synthetic-design
// generator legitimately uses seeded randomness.
func TestNoDetermScope(t *testing.T) {
	diags := fixtureDiags(t, NoDeterm, fixturePath("nodeterm", "bad.go"), "dummyfill/internal/synth")
	if len(diags) != 0 {
		t.Fatalf("nodeterm fired outside its package scope: %v", diags)
	}
}

func TestCtxFlowFixtures(t *testing.T) {
	runFixture(t, CtxFlow, fixturePath("ctxflow", "bad.go"), "dummyfill/internal/fill")
	runFixture(t, CtxFlow, fixturePath("ctxflow", "clean.go"), "dummyfill/internal/fill")
	// Shard-scheduler hazards: per-shard planning detached from the run
	// context.
	runFixture(t, CtxFlow, fixturePath("ctxflow", "shard.go"), "dummyfill/internal/fill")
	// Serving-layer hazards: jobs detached from the request/drain
	// contexts. internal/serve is in the analyzer's scope so its job
	// paths keep the hard-abort contract.
	runFixture(t, CtxFlow, fixturePath("ctxflow", "serve.go"), "dummyfill/internal/serve")
	// Cache-tier hazards: lookups detached from the engine's run context.
	runFixture(t, CtxFlow, fixturePath("ctxflow", "fillcache.go"), "dummyfill/internal/fillcache")
	// DEF-ingest hazards: decode helpers detached from the pipeline's
	// cancellable context.
	runFixture(t, CtxFlow, fixturePath("ctxflow", "deffmt.go"), "dummyfill/internal/deffmt")
}

// TestCtxFlowServeScope pins internal/serve inside the ctxflow scope: a
// regression that drops it from the package set silences the serving
// fixtures without failing them.
func TestCtxFlowServeScope(t *testing.T) {
	if !CtxFlow.Packages("dummyfill/internal/serve") {
		t.Fatal("ctxflow does not scope over dummyfill/internal/serve")
	}
}

// TestFillcacheScope pins internal/fillcache inside both the nodeterm
// and ctxflow scopes: cache keys feed the golden-hash determinism
// contract, and cache loads run under the engine's cancellable pipeline.
func TestFillcacheScope(t *testing.T) {
	if !NoDeterm.Packages("dummyfill/internal/fillcache") {
		t.Fatal("nodeterm does not scope over dummyfill/internal/fillcache")
	}
	if !CtxFlow.Packages("dummyfill/internal/fillcache") {
		t.Fatal("ctxflow does not scope over dummyfill/internal/fillcache")
	}
}

// TestDeffmtScope pins internal/deffmt inside both the nodeterm and
// ctxflow scopes: emitted DEF decks are golden-hashed like every other
// wire format, and ingest runs under the cancellable pipeline.
func TestDeffmtScope(t *testing.T) {
	if !NoDeterm.Packages("dummyfill/internal/deffmt") {
		t.Fatal("nodeterm does not scope over dummyfill/internal/deffmt")
	}
	if !CtxFlow.Packages("dummyfill/internal/deffmt") {
		t.Fatal("ctxflow does not scope over dummyfill/internal/deffmt")
	}
}

func TestPoolPairFixtures(t *testing.T) {
	// poolpair is unscoped: pool discipline holds module-wide.
	runFixture(t, PoolPair, fixturePath("poolpair", "bad.go"), "dummyfill/internal/geom")
	runFixture(t, PoolPair, fixturePath("poolpair", "clean.go"), "dummyfill/internal/geom")
	// Serving-layer pooled response buffers: leaked on reject paths,
	// reused without Reset.
	runFixture(t, PoolPair, fixturePath("poolpair", "serve.go"), "dummyfill/internal/serve")
	// Cache hasher-scratch pools: leaked Gets and early-return leaks.
	runFixture(t, PoolPair, fixturePath("poolpair", "fillcache.go"), "dummyfill/internal/fillcache")
	// Site-mode candidate-batch scratch: leaked on empty-lattice bails.
	runFixture(t, PoolPair, fixturePath("poolpair", "site.go"), "dummyfill/internal/fill")
}

func TestGeomCastFixtures(t *testing.T) {
	runFixture(t, GeomCast, fixturePath("geomcast", "bad.go"), "dummyfill/internal/gdsii")
	runFixture(t, GeomCast, fixturePath("geomcast", "clean.go"), "dummyfill/internal/gdsii")
}

func TestNoPanicFixtures(t *testing.T) {
	runFixture(t, NoPanic, fixturePath("nopanic", "bad.go"), "dummyfill/internal/mcf")
	runFixture(t, NoPanic, fixturePath("nopanic", "clean.go"), "dummyfill/internal/mcf")
}

func TestMalformedPragmasAreFindings(t *testing.T) {
	runFixture(t, NoPanic, fixturePath("pragma", "bad.go"), "dummyfill/internal/mcf")
}

// TestAllUniqueNames guards the registry against duplicate or empty
// analyzer names (the driver's -analyzers flag keys on them).
func TestAllUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v incompletely registered", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
