// Seeded chanbound violations: unbuffered data channels in pipeline
// code, by omission and by explicit zero capacity.
package serve

type job struct{ id int }

func plumb() {
	results := make(chan int) // want "unbuffered data channel of int"
	jobs := make(chan job, 0) // want "unbuffered data channel of"
	errs := make(chan error)  // want "unbuffered data channel of error"
	_, _, _ = results, jobs, errs
}
