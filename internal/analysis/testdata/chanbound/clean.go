// Clean chanbound patterns: sized data channels and unbuffered
// struct{} signals.
package serve

type token = struct{}

func plumb(workers int) {
	results := make(chan int, workers)
	errs := make(chan error, 1)
	ready := make(chan struct{})
	slots := make(chan token, workers)
	_, _, _, _ = results, errs, ready, slots
}
