// Seeded nopanic violations: explicit panics in a solver package.
package mcf

import "errors"

var errNegative = errors.New("negative supply")

func solve(n int) error {
	if n < 0 {
		panic("negative supply") // want "panic in a solver package"
	}
	check := func() {
		panic(errNegative) // want "panic in a solver package"
	}
	check()
	return nil
}
