// Clean nopanic fixture: errors flow through the taxonomy; one
// deliberate recovery boundary is pragma-waived with its reason.
package mcf

import (
	"errors"
	"fmt"
)

var errInfeasible = errors.New("infeasible")

func solveClean(n int) error {
	if n < 0 {
		return fmt.Errorf("solve: %w: supply %d", errInfeasible, n)
	}
	return nil
}

func isolatedBoundary(n int) error {
	if n < -1<<30 {
		panic("corrupted arena: cannot continue") //filllint:allow nopanic -- recovery-isolated boundary, caught by the engine's attemptSize recover
	}
	return nil
}
