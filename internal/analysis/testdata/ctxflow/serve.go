// Serving-layer context hazards: every job must run under the request's
// context (with the drain hard-abort linked in) so a hung client or an
// expired drain deadline can unwind it. Minting a fresh root inside the
// job path detaches the engine run from both abort signals — the drain
// would wait forever on a job nothing can cancel.
package serve

import "context"

type job struct{ key uint64 }

func runJob(ctx context.Context, j job) error { return ctx.Err() }

// HandleJob is the exported handler entry; the job inherits its context.
func HandleJob(ctx context.Context, j job) error {
	return runJob(context.Background(), j) // want "already has a context parameter"
}

// dispatch is below the public API: it must take and thread a context,
// not conjure a root that no drain or client cancellation can reach.
func dispatch(j job) error {
	return runJob(context.TODO(), j) // want "below the public API"
}

// handleDetached shows the goroutine variant: the literal is below the
// public API even though the spawner is exported.
func HandleAsync(ctx context.Context, j job) {
	go func() {
		_ = runJob(context.Background(), j) // want "below the public API"
	}()
}

// handleThreaded is the clean counterpart: request context all the way
// down, including into the spawned goroutine.
func handleThreaded(ctx context.Context, j job) error {
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return runJob(jctx, j)
}

// NewServer is an exported constructor with no context parameter: the
// one place a root context may be minted (the server's drain lifetime
// outlives any single request).
func NewServer() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	_ = cancel
	return ctx
}
