// Shard-scheduler context hazards: per-shard planning and emission run
// under the engine's run context so cancellation reaches every shard;
// minting a fresh root inside a shard worker detaches it from the abort
// path (the watcher could never wake a blocked shard).
package fill

import "context"

type planShard struct{ id int }

func planOne(ctx context.Context, s planShard) error { return ctx.Err() }

// PlanShards is the exported entry; shards must inherit its context.
func PlanShards(ctx context.Context, shards []planShard) error {
	for _, s := range shards {
		if err := planOne(context.Background(), s); err != nil { // want "already has a context parameter"
			return err
		}
	}
	return nil
}

func planShardsDetached(shards []planShard) error {
	for _, s := range shards {
		if err := planOne(context.TODO(), s); err != nil { // want "below the public API"
			return err
		}
	}
	return nil
}

// planShardsThreaded is the clean counterpart: the run context flows into
// every per-shard call.
func planShardsThreaded(ctx context.Context, shards []planShard) error {
	for _, s := range shards {
		if err := planOne(ctx, s); err != nil {
			return err
		}
	}
	return nil
}
