// Seeded fillcache ctxflow violations: cache lookups run inside the
// engine's cancellable pipeline, so helpers below the public API must
// not detach themselves from it by minting fresh root contexts.
package fillcache

import "context"

func fetch(ctx context.Context, key [32]byte) error { return ctx.Err() }

// Load is an exported entrance adapter — a root context is legitimate.
func Load(key [32]byte) error {
	return fetch(context.Background(), key)
}

func loadLocked(key [32]byte) error {
	return fetch(context.Background(), key) // want "below the public API"
}

// LoadAll already has a context; minting a fresh root would detach the
// per-entry fetches from the run's cancellation.
func LoadAll(ctx context.Context, keys [][32]byte) error {
	for _, k := range keys {
		if err := fetch(context.Background(), k); err != nil { // want "already has a context parameter"
			return err
		}
	}
	return nil
}
