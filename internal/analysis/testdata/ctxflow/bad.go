// Seeded ctxflow violations: fresh root contexts minted below the public
// API and inside context-bearing functions.
package fill

import "context"

func lower(ctx context.Context) error { return ctx.Err() }

// Public is an exported entrance adapter — the one place a root context
// is legitimate.
func Public() error {
	return lower(context.Background())
}

func helper() error {
	return lower(context.Background()) // want "below the public API"
}

func todoHelper() error {
	return lower(context.TODO()) // want "below the public API"
}

// Threaded already has a context; minting a fresh root detaches the
// callee from cancellation.
func Threaded(ctx context.Context) error {
	return lower(context.Background()) // want "already has a context parameter"
}

// Closure bodies are below the public API regardless of the enclosing
// function's visibility.
func Adapter() func() error {
	return func() error {
		return lower(context.Background()) // want "below the public API"
	}
}
