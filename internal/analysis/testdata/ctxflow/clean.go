// Clean ctxflow fixture: contexts thread from the exported surface down.
package fill

import "context"

func lower2(ctx context.Context) error { return ctx.Err() }

// Run is the exported adapter; everything below passes ctx along.
func Run() error { return RunContext(context.Background()) }

// RunContext threads its context to every callee that takes one.
func RunContext(ctx context.Context) error {
	if err := middle(ctx); err != nil {
		return err
	}
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return lower2(sub)
}

func middle(ctx context.Context) error { return lower2(ctx) }
