// Seeded DEF-ingest ctxflow violations: ingest runs under the engine's
// cancellable pipeline, so reader helpers must not detach a decode from
// the caller's context by minting a fresh root.
package deffmt

import "context"

func ingestDeck(ctx context.Context, decode func(context.Context) error) error {
	return decode(context.Background()) // want "context.Background inside a function that already has a context parameter"
}

func drainComponents(next func(context.Context) (bool, error)) error {
	for {
		more, err := next(context.TODO()) // want "context.TODO below the public API"
		if err != nil || !more {
			return err
		}
	}
}
