// Seeded site-mode poolpair violations: the per-window candidate batch
// scratch is pooled; a selection pass that forgets to return it (or
// bails out on an empty lattice) bleeds a batch allocation per window.
package fill

import "sync"

type siteScratch struct{ batch []int64 }

var sitePool = sync.Pool{New: func() any { return new(siteScratch) }}

func leakedSelect(widths []int64) int {
	ss := sitePool.Get().(*siteScratch) // want "without a matching"
	ss.batch = append(ss.batch[:0], widths...)
	return len(ss.batch)
}

func earlyBailSelect(widths []int64) int {
	ss := sitePool.Get().(*siteScratch)
	if len(widths) == 0 {
		return 0 // want "return between"
	}
	ss.batch = append(ss.batch[:0], widths...)
	n := len(ss.batch)
	sitePool.Put(ss)
	return n
}

func pairedSelect(widths []int64) int {
	ss := sitePool.Get().(*siteScratch)
	defer sitePool.Put(ss)
	ss.batch = append(ss.batch[:0], widths...)
	return len(ss.batch)
}
