// Serving-layer pooled-buffer hazards: the per-job output buffer comes
// from a sync.Pool and must go back on every exit path — a reject path
// that returns between Get and Put leaks scratch under sustained load,
// and reusing a buffer without Reset serves one job's bytes to another.
package serve

import (
	"errors"
	"sync"
)

type outBuf struct{ b []byte }

func (o *outBuf) Reset() { o.b = o.b[:0] }

var outPool = sync.Pool{New: func() any { return new(outBuf) }}

func respondLeaky(fail bool) error {
	buf := outPool.Get().(*outBuf)
	buf.Reset()
	if fail {
		return errors.New("buffer leaked on the reject path") // want "return between"
	}
	outPool.Put(buf)
	return nil
}

func respondLost() int {
	buf := outPool.Get().(*outBuf) // want "without a matching"
	buf.Reset()
	return len(buf.b)
}

func respondStale() int {
	buf := outPool.Get().(*outBuf) // want "never calls"
	defer outPool.Put(buf)
	return len(buf.b)
}

// respondClean is the contract the server follows: Get, Reset, deferred
// Put covering every exit.
func respondClean(fail bool) error {
	buf := outPool.Get().(*outBuf)
	defer outPool.Put(buf)
	buf.Reset()
	if fail {
		return errors.New("still returned to the pool")
	}
	return nil
}
