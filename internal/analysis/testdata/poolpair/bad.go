// Seeded poolpair violations: a leaked Get, an early return between Get
// and Put, and dirty reuse of resettable scratch.
package fill

import (
	"errors"
	"sync"
)

type scratch struct{ buf []int }

var pool = sync.Pool{New: func() any { return new(scratch) }}

type rscratch struct{ n int }

func (r *rscratch) Reset() { r.n = 0 }

var rpool = sync.Pool{New: func() any { return new(rscratch) }}

func leak() int {
	sc := pool.Get().(*scratch) // want "without a matching"
	return len(sc.buf)
}

func earlyReturn(fail bool) error {
	sc := pool.Get().(*scratch)
	if fail {
		return errors.New("scratch leaked on this path") // want "return between"
	}
	pool.Put(sc)
	return nil
}

func dirtyReuse() int {
	sc := rpool.Get().(*rscratch) // want "never calls"
	defer rpool.Put(sc)
	return sc.n
}
