// Seeded fillcache poolpair violations: the per-worker hasher scratch is
// pooled; a lookup that forgets to return it (or bails out early) bleeds
// scratch allocations across the whole cache stage.
package fillcache

import (
	"errors"
	"sync"
)

type hasherScratch struct{ buf [64]byte }

var hasherPool = sync.Pool{New: func() any { return new(hasherScratch) }}

func leakedLookup(content []byte) int {
	hs := hasherPool.Get().(*hasherScratch) // want "without a matching"
	return copy(hs.buf[:], content)
}

func earlyBail(content []byte) error {
	hs := hasherPool.Get().(*hasherScratch)
	if len(content) > len(hs.buf) {
		return errors.New("scratch leaked on this path") // want "return between"
	}
	hasherPool.Put(hs)
	return nil
}

func pairedLookup(content []byte) int {
	hs := hasherPool.Get().(*hasherScratch)
	defer hasherPool.Put(hs)
	return copy(hs.buf[:], content)
}
