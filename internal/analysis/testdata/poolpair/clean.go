// Clean poolpair fixture: paired Get/Put on every path, deferred Put,
// and resettable scratch reset before use.
package fill

import (
	"errors"
	"sync"
)

type scratch2 struct{ buf []int }

var pool2 = sync.Pool{New: func() any { return new(scratch2) }}

type rscratch2 struct{ n int }

func (r *rscratch2) Reset() { r.n = 0 }

var rpool2 = sync.Pool{New: func() any { return new(rscratch2) }}

func pairedEveryPath(fail bool) error {
	sc := pool2.Get().(*scratch2)
	if fail {
		pool2.Put(sc)
		return errors.New("failed, scratch returned")
	}
	sc.buf = sc.buf[:0]
	pool2.Put(sc)
	return nil
}

func deferredPut() int {
	sc := rpool2.Get().(*rscratch2)
	defer rpool2.Put(sc)
	sc.Reset()
	return sc.n
}
