// Seeded pragma violations: malformed waivers must be findings, not
// silent no-ops.
package mcf

func ok() int {
	//filllint:allow nopanic // want "needs a reason"
	//filllint:allow nosuchanalyzer -- some reason // want "unknown analyzer"
	return 0
}
