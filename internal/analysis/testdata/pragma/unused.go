// An allow pragma that waives nothing is stale: the finding it once
// suppressed is gone, and keeping it would silently disarm the analyzer
// for whatever lands on that line next.
package mcf

import "fmt"

//filllint:allow nopanic -- stale: nothing panics here anymore // want "unused allow pragma: nopanic reports nothing"
func calm() error {
	return fmt.Errorf("solver fallback")
}

func used(n int) int {
	if n < 0 {
		//filllint:allow nopanic -- seeded fixture violation stays waived
		panic("negative")
	}
	return n
}
