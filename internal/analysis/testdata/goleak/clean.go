// Clean goleak patterns: every concurrency idiom the module uses with a
// provable join or cancel edge.
package fill

import (
	"context"
	"sync"
)

func wgJoined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func ctxWatcher(ctx context.Context, abort func()) {
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		<-ctx.Done()
		abort()
	}()
	<-watcherDone
}

func doneSignal() error {
	errs := make(chan error, 1)
	go func() {
		errs <- nil
	}()
	return <-errs
}

func selectSignal(stop chan struct{}) {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	select {
	case <-stop:
	case <-done:
	}
}

func joinableWorker(ctx context.Context) {
	<-ctx.Done()
}

func spawnJoinable(ctx context.Context) {
	go joinableWorker(ctx)
}
