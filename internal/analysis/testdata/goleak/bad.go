// Seeded goleak violations: fire-and-forget goroutines with no join or
// cancel edge, a completion signal nobody receives, and a named callee
// with an unbounded body.
package fill

func spin() {
	go func() { // want "no provable join or cancel edge"
		for {
		}
	}()
}

func signalUnreceived() {
	done := make(chan struct{})
	go func() { // want "no provable join or cancel edge"
		defer close(done)
	}()
	_ = done
}

func unboundedBody() {}

func spawnNamed() {
	go unboundedBody() // want "callee has no provable join or cancel edge"
}
