// Shard-scheduler determinism hazards: the band decomposition and the
// shard → window assignment must never flow through map iteration or
// wall-clock reads, or the reconciled plan (and hence the emitted
// geometry) would depend on runtime accidents instead of the input.
package fill

import "time"

type shardBand struct{ k0, k1 int }

func shardSpans(byID map[int]shardBand) (total int) {
	for _, b := range byID { // want "range over a map"
		total += b.k1 - b.k0
	}
	return total
}

func shardDeadline(b shardBand) bool {
	// Scheduling a shard off the clock instead of Options.Budget.
	return time.Now().Unix()%2 == 0 // want "wall-clock read time.Now"
}

// shardSpansOrdered is the clean counterpart: a slice keeps the canonical
// shard order, so iteration is deterministic.
func shardSpansOrdered(bands []shardBand) (total int) {
	for _, b := range bands {
		total += b.k1 - b.k0
	}
	return total
}
