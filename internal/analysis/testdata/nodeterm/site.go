// Seeded site-mode nodeterm violations: filler placement shares the
// byte-identity contract with rect mode, so per-row gap maps must not
// be consumed in map order and width tie-breaks must not be random.
package fill

import "math/rand" // want "imports math/rand"

type siteGap struct{ row, i0, i1 int }

func collectGaps(byRow map[int][]siteGap) []siteGap {
	var out []siteGap
	for _, gaps := range byRow { // want "range over a map"
		out = append(out, gaps...)
	}
	return out
}

func jitterWidths(widths []int64) {
	rand.Shuffle(len(widths), func(i, j int) {
		widths[i], widths[j] = widths[j], widths[i]
	})
}
