// Seeded fillcache nodeterm violations: a cache key must be a pure
// function of window content — a wall-clock timestamp makes every key
// unique (cache never hits), and hashing a map in range order makes the
// same content produce different keys across runs (silent misses).
package fillcache

import (
	"crypto/sha256"
	"encoding/binary"
	"time"
)

func timestampedKey(content []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(content)
	var ts [8]byte
	binary.LittleEndian.PutUint64(ts[:], uint64(time.Now().UnixNano())) // want "wall-clock read time.Now"
	h.Write(ts[:])
	var k [sha256.Size]byte
	h.Sum(k[:0])
	return k
}

func mapOrderKey(layers map[int][]byte) [sha256.Size]byte {
	h := sha256.New()
	for li, content := range layers { // want "range over a map"
		var lb [8]byte
		binary.LittleEndian.PutUint64(lb[:], uint64(li))
		h.Write(lb[:])
		h.Write(content)
	}
	var k [sha256.Size]byte
	h.Sum(k[:0])
	return k
}
