// Clean nodeterm fixture: the deterministic alternatives to everything
// bad.go does, plus a pragma-waived wall-clock read.
package fill

import (
	"sort"
	"time"
)

// sortedSum iterates a map through its sorted key slice — stable order.
func sortedSum(m map[int]int) (s int) {
	keys := make([]int, 0, len(m))
	for k := 0; k < 1<<10; k++ {
		if _, ok := m[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// softBudget is the sanctioned wall-clock pattern: intentionally
// nondeterministic degradation, waived with a recorded reason.
func softBudget(budget time.Duration) bool {
	start := time.Now() //filllint:allow nodeterm -- soft time budget is documented wall-clock behavior
	_ = start
	return budget > 0
}
