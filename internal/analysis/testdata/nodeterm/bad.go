// Seeded nodeterm violations: every determinism hazard the analyzer must
// catch. Checked under a deterministic package path by the fixture test.
package fill

import (
	"math/rand" // want "imports math/rand"
	"time"
)

func clock() int64 {
	return time.Now().UnixNano() // want "wall-clock read time.Now"
}

func elapsed(start time.Time) bool {
	return time.Since(start) > time.Second // want "wall-clock read time.Since"
}

func ranged(m map[int]int) (s int) {
	for _, v := range m { // want "range over a map"
		s += v
	}
	return s
}

func seeded() int {
	return rand.Int()
}
