// Seeded DEF-writer nodeterm violations: emitted decks feed the DEF
// round-trip golden, so component order must not come from map
// iteration and headers must not carry wall-clock timestamps (two runs
// over the same layout must produce the same bytes).
package deffmt

import (
	"fmt"
	"io"
	"time"
)

func writeTimestampHeader(w io.Writer, name string) {
	fmt.Fprintf(w, "# generated %v\nDESIGN %s ;\n", time.Now(), name) // want "wall-clock read time.Now"
}

func writeComponents(w io.Writer, placements map[string][]int64) {
	i := 0
	for master, xs := range placements { // want "range over a map"
		for _, x := range xs {
			fmt.Fprintf(w, "- f_%d %s + PLACED ( %d 0 ) N ;\n", i, master, x)
			i++
		}
	}
}
