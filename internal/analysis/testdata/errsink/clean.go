// Clean errsink patterns: errors returned, branched on, accumulated
// loop-carried, or consumed by a named result.
package fill

import "errors"

func fallible() error { return errors.New("x") }

func returned() error {
	return fallible()
}

func branched() error {
	if err := fallible(); err != nil {
		return err
	}
	return nil
}

func loopCarried(n int) error {
	var err error
	for i := 0; i < n; i++ {
		if err != nil {
			break
		}
		err = fallible()
	}
	return err
}

func namedResult() (err error) {
	err = fallible()
	return
}

// capturedFromClosure mirrors the sharded-emit worker shape: a closure
// assigns the captured error as its last action and the enclosing
// function reads it after the closure runs. Dead-def analysis on the
// closure body alone must not call that assignment dropped.
func capturedFromClosure(run func(func())) error {
	var serr error
	run(func() {
		serr = fallible()
	})
	return serr
}

func stdlibDiscardOK() {
	// Standard-library errors are outside errsink's contract; other
	// analyzers and code review own those.
	_ = errors.Unwrap(errors.New("x"))
}
