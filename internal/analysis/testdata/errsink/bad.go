// Seeded errsink violations: whole-statement discards, blank-identifier
// discards, an error assigned but never read on any path, and a stale
// sink annotation.
package fill

import "errors"

func mayFail() error { return errors.New("boom") }

func mayFailPair() (int, error) { return 0, errors.New("boom") }

//filllint:errsink
func accounted() error { return nil }

//filllint:errsink // want "stale //filllint:errsink: silent returns no error"
func silent() {}

func discards() int {
	mayFail()             // want "error from mayFail is discarded"
	_ = mayFail()         // want "error from mayFail is assigned to _"
	v, _ := mayFailPair() // want "error from mayFailPair is assigned to _"
	_ = accounted()       // annotated sink: callers may drop it
	return v
}

func deadAssign(c bool) error {
	err := mayFail() // want "err assigned from mayFail is never read on any path"
	if c {
		return nil
	}
	err = mayFail()
	return err
}
