// Clean lockguard patterns: RWMutex read paths, lock-around-loop,
// per-iteration locking, constructor initialization of fresh values,
// and composite-literal field setting.
package serve

import "sync"

type table struct {
	mu   sync.RWMutex
	rows map[string]int //filllint:guard mu
}

func newTable() *table {
	t := &table{rows: map[string]int{}}
	t.rows["seed"] = 1 // fresh value, unshared: exempt
	return t
}

func (t *table) read(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[k]
}

func (t *table) write(k string, v int) {
	t.mu.Lock()
	t.rows[k] = v
	t.mu.Unlock()
}

func (t *table) sum(keys []string) int {
	s := 0
	t.mu.RLock()
	for _, k := range keys {
		s += t.rows[k]
	}
	t.mu.RUnlock()
	return s
}

func (t *table) perKey(keys []string) int {
	s := 0
	for _, k := range keys {
		t.mu.RLock()
		s += t.rows[k]
		t.mu.RUnlock()
	}
	return s
}
