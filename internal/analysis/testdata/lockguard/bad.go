// Seeded lockguard violations: guarded state touched without the guard,
// branch-dependent locking, early release, unguarded goroutine access,
// holds-contract call sites, and a stale guard annotation.
package serve

import "sync"

type registry struct {
	mu      sync.Mutex
	entries map[string]int //filllint:guard mu
	count   int            //filllint:guard mu
}

func (r *registry) unlocked(k string) int {
	return r.entries[k] // want "access to r.entries requires r.mu held"
}

func (r *registry) locked(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[k]
}

func (r *registry) branchy(k string, c bool) int {
	if c {
		r.mu.Lock()
	}
	v := r.entries[k] // want "requires r.mu held on every path"
	if c {
		r.mu.Unlock()
	}
	return v
}

func (r *registry) earlyRelease(k string) int {
	r.mu.Lock()
	r.count++
	r.mu.Unlock()
	return r.entries[k] // want "access to r.entries requires r.mu held"
}

func (r *registry) goroutineAccess() {
	go func() {
		r.count++ // want "access to r.count requires r.mu held"
	}()
}

// locked callees: the caller must already hold the guard.
//
//filllint:holds mu
func (r *registry) sizeLocked() int {
	return len(r.entries)
}

func (r *registry) callsLockedBare() int {
	return r.sizeLocked() // want "declared //filllint:holds mu"
}

func (r *registry) callsLockedHeld() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sizeLocked()
}

type misannotated struct {
	notAMutex int
	data      int //filllint:guard notAMutex // want "not a sync.Mutex/RWMutex sibling"
}
