// Serving-layer shape: the drain gate. The jobs accounting must be
// ordered against the draining flip through drainMu, exactly like
// internal/serve's Server; the drain goroutine waiting outside the lock
// is the documented waiver pattern there — here, unwaived, it is the
// seeded finding.
package serve

import (
	"sync"
	"sync/atomic"
)

type drainGate struct {
	drainMu  sync.RWMutex
	draining atomic.Bool
	jobs     sync.WaitGroup //filllint:guard drainMu
}

func (g *drainGate) begin() bool {
	g.drainMu.RLock()
	defer g.drainMu.RUnlock()
	if g.draining.Load() {
		return false
	}
	g.jobs.Add(1)
	return true
}

func (g *drainGate) shutdown() {
	g.drainMu.Lock()
	g.draining.Store(true)
	g.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		g.jobs.Wait() // want "access to g.jobs requires g.drainMu held"
		close(done)
	}()
	<-done
}
