module factsmod

go 1.22
