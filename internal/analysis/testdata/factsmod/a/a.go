// Package a is the exporter half of the facts round-trip fixture: one
// fragile function whose error callers must handle, and one annotated
// sink whose error they may drop. The errsink annotation must reach
// package b as an exported fact — from live analysis on cold runs and
// from the cache entry on warm ones.
package a

import "errors"

// Fragile fails; callers must do something with the error.
func Fragile() error { return errors.New("fragile") }

// Accounted tracks its own failures.
//
//filllint:errsink
func Accounted() error { return nil }
