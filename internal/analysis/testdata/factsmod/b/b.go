// Package b is the importer half of the facts round-trip fixture: it
// drops both errors from package a. Exactly one is a finding — the
// ErrSinkFact on Accounted licences the other.
package b

import "factsmod/a"

// Use discards one fragile error (the finding) and one accounted error
// (licenced by the imported fact).
func Use() {
	a.Fragile()
	a.Accounted()
}
