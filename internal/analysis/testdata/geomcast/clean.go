// Clean geomcast fixture: constants that provably fit, widening
// conversions, and the pragma-waived checked-helper pattern.
package gdsii

const headerVersion int64 = 600

// constantsFit: typed constants within range are compile-checked already.
func constantsFit() (int32, int16) {
	return int32(headerVersion), int16(headerVersion)
}

// widen: widening never truncates.
func widen(v int32) int64 { return int64(v) }

// checkedI32 is the checked-helper shape: the one bare cast lives behind
// a range check and carries the waiver.
func checkedI32(v int64) (int32, bool) {
	if v < -1<<31 || v >= 1<<31 {
		return 0, false
	}
	return int32(v), true //filllint:allow geomcast -- range-checked on the line above
}
