// Seeded geomcast violations: bare narrowing conversions of coordinates
// and indexes. Checked under a wire-writer package path.
package gdsii

func emitCoord(x int64) int32 {
	return int32(x) // want "int64 → int32"
}

func emitLayer(l int) int16 {
	return int16(l) // want "int → int16"
}

func compressIndex(n int) int32 {
	return int32(n) // want "int → int32"
}

func narrowTwice(v int32) int16 {
	return int16(v) // want "int32 → int16"
}
