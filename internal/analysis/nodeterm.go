package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// detPackages are the packages whose emitted bytes are covered by the
// golden-hash determinism tests: the engine, both solver stacks, the
// geometry/density substrate and every wire format. Inside them, wall
// clocks, randomness and map iteration order must not influence output.
var detPackages = pkgScope(
	"internal/fill",
	"internal/fillcache",
	"internal/mcf",
	"internal/dlp",
	"internal/lps",
	"internal/geom",
	"internal/layout",
	"internal/density",
	"internal/grid",
	"internal/ingest",
	"internal/layio",
	"internal/gdsii",
	"internal/oasis",
	"internal/textfmt",
	"internal/deffmt",
)

// NoDeterm reports determinism-contract violations: imports of math/rand,
// wall-clock reads (time.Now/Since/Until), and range statements over maps
// (iteration order is randomized per run). Order-insensitive map ranges
// can be waived with an allow pragma, but the default is to restructure:
// sorted key slices and dense index loops are as fast and provably
// stable.
var NoDeterm = &Analyzer{
	Name:     "nodeterm",
	Doc:      "forbid wall clocks, math/rand and map iteration in deterministic packages",
	Packages: detPackages,
	Run:      runNoDeterm,
}

func runNoDeterm(p *Pass) {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "deterministic package imports %s; outputs must not depend on randomness", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgFunc(p.Info, n, "time", "Now", "Since", "Until") {
					p.Reportf(n.Pos(), "wall-clock read %s in a deterministic package; output must not depend on elapsed time", calleeFunc(p.Info, n).FullName())
				}
			case *ast.RangeStmt:
				if tv, ok := p.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						p.Reportf(n.Pos(), "range over a map has nondeterministic order; iterate sorted keys or a dense index instead")
					}
				}
			}
			return true
		})
	}
}
