package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// cacheVersion salts every chain hash; bump it whenever the cache entry
// format, an analyzer's semantics, or the framework itself changes in a
// way that should invalidate old entries wholesale.
const cacheVersion = "flc1"

// DriverOptions configures a whole-module analysis run.
type DriverOptions struct {
	// Analyzers to run; nil means All().
	Analyzers []*Analyzer
	// Parallel caps concurrently analyzed packages; <=0 means GOMAXPROCS.
	Parallel int
	// CacheDir, when non-empty, holds per-package findings+facts entries
	// keyed by chain hash. Missing or unreadable entries degrade to
	// re-analysis; they are never fatal.
	CacheDir string
}

// DriverStats summarizes where a run's work went.
type DriverStats struct {
	// Packages is the module package count.
	Packages int
	// Analyzed packages were type-checked and run through the analyzers.
	Analyzed int
	// Cached packages were served findings from the cache, skipping both
	// type-checking and analysis.
	Cached int
	// CachedFacts counts facts installed from cache entries.
	CachedFacts int
	// CacheErrors counts unreadable or torn cache entries (each degraded
	// to a re-analysis) plus failed entry writes.
	CacheErrors int
}

// DriverResult is the outcome of a module run.
type DriverResult struct {
	Diagnostics []Diagnostic
	Stats       DriverStats
}

// cacheEntry is the persisted per-package outcome. Facts ride along with
// findings so a warm run can feed dependents an unchanged package's
// exports without re-analyzing it.
type cacheEntry struct {
	Diags []Diagnostic `json:"diags"`
	Facts []factRec    `json:"facts"`
}

// RunDriver analyzes every package of the module rooted at root,
// incrementally and in parallel:
//
//   - The module is parsed (cheap) and each package gets a chain hash
//     covering its sources, its local dependency chain, and the analyzer
//     configuration.
//   - Packages whose chain hash has a cache entry are served from it —
//     findings and exported facts — with no type-checking at all.
//   - The remaining packages (plus their dependency closure, which
//     type-checking needs) are type-checked in dependency order, then
//     analyzed concurrently: a package is scheduled the moment all its
//     local dependencies' facts are installed, so independent subtrees
//     proceed in parallel while fact flow stays topologically sound.
//
// Diagnostics are globally sorted; output is byte-for-byte independent
// of Parallel and of which packages hit the cache.
func RunDriver(root string, opts DriverOptions) (*DriverResult, error) {
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = All()
	}
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}

	m, err := ParseModule(root)
	if err != nil {
		return nil, err
	}

	res := &DriverResult{}
	res.Stats.Packages = len(m.Order)
	facts := NewFactStore()
	known := knownNames(analyzers)
	chain := m.ChainHashes(cacheSalt(analyzers))

	// Phase 1: serve what the cache can. Hits install their facts now so
	// that any miss downstream of a hit sees them during analysis.
	diagsByPkg := make(map[string][]Diagnostic, len(m.Order))
	hit := make(map[string]bool, len(m.Order))
	if opts.CacheDir != "" {
		for _, ip := range m.Order {
			entry, ok, broken := readCacheEntry(opts.CacheDir, chain[ip])
			if broken {
				res.Stats.CacheErrors++
			}
			if !ok {
				continue
			}
			hit[ip] = true
			res.Stats.Cached++
			diagsByPkg[ip] = entry.Diags
			res.Stats.CachedFacts += facts.DecodePackage(ip, entry.Facts)
		}
	}

	// Phase 2: type-check the miss set plus its dependency closure.
	pkgs, err := m.TypeCheck(func(ip string) bool { return !hit[ip] })
	if err != nil {
		return nil, err
	}

	// Phase 3: analyze misses concurrently in dependency order.
	var (
		mu         sync.Mutex
		remaining  = make(map[string]int) // unanalyzed local deps per miss
		dependents = make(map[string][]string)
		ready      []string
	)
	for _, ip := range m.Order {
		if hit[ip] {
			continue
		}
		n := 0
		for _, dep := range m.Pkgs[ip].LocalDeps {
			if !hit[dep] {
				n++
				dependents[dep] = append(dependents[dep], ip)
			}
		}
		remaining[ip] = n
		if n == 0 {
			ready = append(ready, ip)
		}
	}

	work := make(chan string, len(remaining))
	for _, ip := range ready {
		work <- ip
	}
	done := make(chan string, len(remaining))
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ip := range work {
				diags := runPackage(analyzers, pkgs[ip], known, facts)
				mu.Lock()
				diagsByPkg[ip] = diags
				mu.Unlock()
				if opts.CacheDir != "" {
					if err := writeCacheEntry(opts.CacheDir, chain[ip], cacheEntry{
						Diags: diags,
						Facts: facts.EncodePackage(ip),
					}); err != nil {
						mu.Lock()
						res.Stats.CacheErrors++
						mu.Unlock()
					}
				}
				done <- ip
			}
		}()
	}
	// The scheduler drains completions and releases newly unblocked
	// packages until every miss has been analyzed.
	for analyzed := 0; analyzed < len(remaining); analyzed++ {
		ip := <-done
		res.Stats.Analyzed++
		for _, dep := range dependents[ip] {
			remaining[dep]--
			if remaining[dep] == 0 {
				work <- dep
			}
		}
	}
	close(work)
	wg.Wait()

	for _, ip := range m.Order {
		res.Diagnostics = append(res.Diagnostics, diagsByPkg[ip]...)
	}
	SortDiagnostics(res.Diagnostics)
	return res, nil
}

// cacheSalt derives the configuration part of the chain hash: cache
// format version plus the sorted enabled-analyzer names, so changing
// -analyzers never serves findings computed under a different set.
func cacheSalt(analyzers []*Analyzer) string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	return cacheVersion + " " + strings.Join(names, ",")
}

// cachePath places one entry. Entries are content-addressed by chain
// hash, so stale entries are simply never read again; there is no
// invalidation protocol to get wrong.
func cachePath(dir, chainHash string) string {
	return filepath.Join(dir, chainHash+".flc")
}

// readCacheEntry loads one entry. ok reports a usable entry; broken
// reports an entry that existed but was unreadable, torn, or corrupt —
// callers treat both !ok cases as a miss (ErrCorrupt-as-miss, the same
// degradation discipline as fillcache).
func readCacheEntry(dir, chainHash string) (entry cacheEntry, ok, broken bool) {
	data, err := os.ReadFile(cachePath(dir, chainHash))
	if err != nil {
		return entry, false, !os.IsNotExist(err)
	}
	sum, body, found := strings.Cut(string(data), "\n")
	if !found || sum != bodyHash([]byte(body)) {
		return entry, false, true
	}
	if err := json.Unmarshal([]byte(body), &entry); err != nil {
		return entry, false, true
	}
	return entry, true, false
}

// writeCacheEntry persists one entry atomically: temp file in the cache
// directory, then rename, so a crashed or concurrent run can never
// publish a half-written entry under the final name. A leading content
// hash makes even a torn temp-free write (e.g. a filesystem that lies
// about durability) detectable on read.
func writeCacheEntry(dir, chainHash string, entry cacheEntry) error {
	body, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "tmp-*.flc")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := fmt.Fprintf(tmp, "%s\n%s", bodyHash(body), body); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), cachePath(dir, chainHash))
}

func bodyHash(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}
