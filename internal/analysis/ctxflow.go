package analysis

import (
	"go/ast"
)

// ctxPackages are the engine and IO packages where cancellation must flow
// from the public API down to every blocking callee (PR 2's hard-abort
// contract): a fresh root context below the surface silently detaches a
// subtree from cancellation and deadline propagation.
var ctxPackages = pkgScope(
	"internal/fill",
	"internal/fillcache",
	"internal/mcf",
	"internal/dlp",
	"internal/density",
	"internal/ingest",
	"internal/layio",
	"internal/gdsii",
	"internal/oasis",
	"internal/textfmt",
	"internal/deffmt",
	"internal/exp",
	"internal/serve",
)

// CtxFlow enforces the context-threading contract in engine/IO packages:
//
//   - a function that already has a context.Context parameter must not
//     mint a fresh root via context.Background/TODO — not directly, and
//     not as an argument to a callee that takes a context;
//   - below the public API (unexported functions and all function
//     literals), context.Background/TODO is forbidden outright: only
//     exported entry points may adapt a context-free call into the
//     context-threaded core.
var CtxFlow = &Analyzer{
	Name:     "ctxflow",
	Doc:      "context must thread from the public API to every callee that accepts one",
	Packages: ctxPackages,
	Run:      runCtxFlow,
}

func runCtxFlow(p *Pass) {
	for _, f := range p.Files {
		for _, fb := range funcBodies(f) {
			hasCtx := hasCtxParam(p.Info, fb.typ)
			exported := fb.decl != nil && fb.decl.Name.IsExported()
			walkBody(fb.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isPkgFunc(p.Info, call, "context", "Background", "TODO") {
					return true
				}
				name := calleeFunc(p.Info, call).Name()
				switch {
				case hasCtx:
					p.Reportf(call.Pos(), "context.%s inside a function that already has a context parameter; pass the caller's ctx", name)
				case !exported:
					p.Reportf(call.Pos(), "context.%s below the public API; thread a context.Context parameter down instead", name)
				}
				return true
			})
		}
	}
}
