package analysis

import (
	"path/filepath"
	"runtime"
	"testing"
)

// repoRoot finds the module root from this source file's location.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestLoadModule loads and type-checks the entire repo through the
// stdlib-only loader — the same path cmd/filllint takes — and sanity
// checks the package set. Skipped under -short: it type-checks every
// stdlib dependency from source.
func TestLoadModule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	pkgs, err := LoadModule(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("package %s loaded incompletely", p.Path)
		}
	}
	for _, want := range []string{
		"dummyfill",
		"dummyfill/internal/fill",
		"dummyfill/internal/mcf",
		"dummyfill/internal/geom",
		"dummyfill/internal/analysis",
		"dummyfill/cmd/filllint",
	} {
		if byPath[want] == nil {
			t.Errorf("package %s not loaded", want)
		}
	}
	// Test packages and testdata must not leak into the load.
	for _, p := range pkgs {
		if filepath.Base(p.Dir) == "testdata" {
			t.Errorf("testdata package loaded: %s", p.Path)
		}
	}
}
