package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dummyfill/internal/analysis/cfg"
)

// LockGuard enforces annotated lock discipline with a must-hold dataflow
// over each function's CFG. A struct field carrying
//
//	//filllint:guard <mutexField>
//
// (on the field's line or the line above) may only be accessed where
// every control-flow path has acquired the named sibling mutex — via
// Lock or RLock — and not yet released it. A function declaring
//
//	//filllint:holds <mutexField>
//
// is analyzed with the guard held at entry (the caller's obligation),
// and every call site of such a function is checked to actually hold it.
//
// The analysis is deliberately conservative in what it checks rather
// than what it reports: accesses rooted at variables local to the
// current function body (freshly constructed values that no other
// goroutine can see yet) are exempt, deferred statements neither
// acquire nor release (a deferred Unlock runs at return, so the lock
// stays held for the body), and accesses it cannot name by a stable
// path are skipped. Guard annotations are exported as facts, so
// packages accessing an exported guarded field are checked too.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated //filllint:guard mu may only be accessed with mu provably held",
	Run:  runLockGuard,
}

// GuardFact marks a struct field (keyed "Type.Field") as guarded by the
// named sibling mutex field.
type GuardFact struct{ Guard string }

func (GuardFact) FactName() string { return "lockguard.Guard" }

// HoldsFact marks a function as requiring its guards held at entry.
// Undotted guard names are relative to the method receiver.
type HoldsFact struct{ Guards []string }

func (HoldsFact) FactName() string { return "lockguard.Holds" }

const (
	guardPrefix = "//filllint:guard "
	holdsPrefix = "//filllint:holds "
)

// guardedField records one annotated field of the package.
type guardedField struct {
	guard    string // sibling mutex field name
	typeName string // owning type, for the fact key
}

func runLockGuard(p *Pass) {
	guards := collectGuards(p)
	holds := collectHolds(p)
	for _, f := range p.Files {
		for _, fb := range funcBodies(f) {
			checkLockBody(p, fb, guards, holds)
		}
	}
}

// collectGuards scans struct declarations for //filllint:guard
// annotations, validates them against a mutex-typed sibling field, and
// exports each as a GuardFact.
func collectGuards(p *Pass) map[*types.Var]guardedField {
	guards := map[*types.Var]guardedField{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					guard, pos, ok := fieldGuardAnnotation(field)
					if !ok {
						continue
					}
					if !mutexSibling(p, st, guard) {
						p.Reportf(pos, "//filllint:guard names %q, which is not a sync.Mutex/RWMutex sibling field of %s", guard, ts.Name.Name)
						continue
					}
					for _, name := range field.Names {
						v, ok := p.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						guards[v] = guardedField{guard: guard, typeName: ts.Name.Name}
						p.ExportKeyFact(FieldKey(ts.Name.Name, name.Name), GuardFact{Guard: guard})
					}
				}
			}
		}
	}
	return guards
}

// fieldGuardAnnotation extracts a guard annotation from a field's doc or
// trailing comment.
func fieldGuardAnnotation(field *ast.Field) (guard string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, found := strings.CutPrefix(c.Text, strings.TrimSuffix(guardPrefix, " ")); found {
				// Only the first token names the guard; anything after it
				// (trailing commentary) is ignored.
				if fields := strings.Fields(rest); len(fields) > 0 {
					return fields[0], c.Pos(), true
				}
				return "", c.Pos(), true
			}
		}
	}
	return "", 0, false
}

// mutexSibling reports whether st declares a field named guard whose
// type is sync.Mutex, sync.RWMutex, or a pointer to one.
func mutexSibling(p *Pass, st *ast.StructType, guard string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != guard {
				continue
			}
			if v, ok := p.Info.Defs[name].(*types.Var); ok && isMutexType(v.Type()) {
				return true
			}
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// collectHolds scans function declarations for //filllint:holds
// annotations and exports each as a HoldsFact.
func collectHolds(p *Pass) map[*types.Func][]string {
	holds := map[*types.Func][]string{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				rest, found := strings.CutPrefix(c.Text, strings.TrimSuffix(holdsPrefix, " "))
				if !found {
					continue
				}
				spec := ""
				if fields := strings.Fields(rest); len(fields) > 0 {
					spec = fields[0]
				}
				if spec == "" {
					p.Reportf(c.Pos(), "//filllint:holds needs a mutex field name")
					continue
				}
				if !strings.Contains(spec, ".") && recvName(fd) == "" {
					p.Reportf(c.Pos(), "//filllint:holds %s on a non-method needs a dotted path (e.g. c.mu)", spec)
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				holds[fn] = append(holds[fn], spec)
			}
		}
	}
	for fn, specs := range holds {
		p.ExportObjectFact(fn, HoldsFact{Guards: specs})
	}
	return holds
}

func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// lockSite is one point the dataflow must judge: a guarded-field access
// or a call into a //filllint:holds function.
type lockSite struct {
	pos  token.Pos
	key  string // lock path that must be held, e.g. "s.drainMu"
	what string // for the message: the access or call being protected
}

func checkLockBody(p *Pass, fb funcBody, guards map[*types.Var]guardedField, holds map[*types.Func][]string) {
	// Pre-pass: enumerate the lock paths the body manipulates and check
	// whether anything here needs judging at all.
	keys := map[string]int{}
	intern := func(k string) int {
		if i, ok := keys[k]; ok {
			return i
		}
		i := len(keys)
		keys[k] = i
		return i
	}
	interesting := false
	walkBody(fb.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if _, key, ok := mutexOp(p.Info, n); ok {
				intern(key)
			}
			for _, s := range holdsSites(p, n, holds) {
				intern(s.key)
				interesting = true
			}
		case *ast.SelectorExpr:
			if s, ok := guardSite(p, fb, n, guards); ok {
				intern(s.key)
				interesting = true
			}
		}
		return true
	})
	if !interesting {
		return
	}

	// Entry assumption from a //filllint:holds annotation on this decl.
	entry := map[int]bool{}
	if fb.decl != nil {
		if fn, ok := p.Info.Defs[fb.decl.Name].(*types.Func); ok {
			for _, spec := range holds[fn] {
				key := spec
				if !strings.Contains(spec, ".") {
					if r := recvName(fb.decl); r != "" {
						key = r + "." + spec
					} else {
						continue
					}
				}
				entry[intern(key)] = true
			}
		}
	}

	g := cfg.New(fb.body)
	nk := len(keys)
	boundary := func() cfg.BitSet {
		s := cfg.NewBitSet(nk)
		for i := range entry {
			s.Set(i)
		}
		return s
	}
	full := func() cfg.BitSet {
		s := cfg.NewBitSet(nk)
		s.Fill(nk)
		return s
	}
	transfer := func(b *cfg.Block, in cfg.BitSet) cfg.BitSet {
		s := in.Clone()
		replayLocks(p, b, s, keys, fb, guards, holds, nil)
		return s
	}
	meet := func(a, b cfg.BitSet) cfg.BitSet {
		u := a.Clone()
		u.Intersect(b)
		return u
	}
	in, _ := cfg.Forward(g, boundary, full, transfer, meet, cfg.BitSet.Equal)

	seen := map[token.Pos]bool{}
	report := func(s lockSite, held cfg.BitSet) {
		if seen[s.pos] {
			return
		}
		seen[s.pos] = true
		p.Reportf(s.pos, "%s requires %s held on every path to this point", s.what, s.key)
	}
	for _, b := range g.Blocks {
		if !b.Live || in[b.Index] == nil {
			continue
		}
		cur := in[b.Index].Clone()
		replayLocks(p, b, cur, keys, fb, guards, holds, report)
	}
}

// replayLocks walks one block's nodes in order, mutating the held set at
// every Lock/RLock/Unlock/RUnlock and, when check is non-nil, invoking
// it for every guarded access or holds-call whose key is not held.
func replayLocks(p *Pass, b *cfg.Block, held cfg.BitSet, keys map[string]int,
	fb funcBody, guards map[*types.Var]guardedField, holds map[*types.Func][]string,
	check func(lockSite, cfg.BitSet)) {
	for _, n := range b.Nodes {
		cfg.WalkNode(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.DeferStmt:
				// Deferred calls run at return: a deferred Unlock keeps
				// the lock held for the body, and deferred accesses run
				// under whatever is held at exit — out of scope here.
				return false
			case *ast.CallExpr:
				if op, key, ok := mutexOp(p.Info, m); ok {
					if i, known := keys[key]; known {
						switch op {
						case "Lock", "RLock":
							held.Set(i)
						case "Unlock", "RUnlock":
							held.Clear(i)
						}
					}
					return false
				}
				if check != nil {
					for _, s := range holdsSites(p, m, holds) {
						if i, known := keys[s.key]; known && !held.Has(i) {
							check(s, held)
						}
					}
				}
			case *ast.SelectorExpr:
				if s, ok := guardSite(p, fb, m, guards); ok {
					if check != nil {
						if i, known := keys[s.key]; known && !held.Has(i) {
							check(s, held)
						}
					}
				}
			}
			return true
		})
	}
}

// mutexOp matches call as a sync.Mutex/RWMutex Lock, RLock, Unlock or
// RUnlock method call, returning the operation and the textual lock path
// (e.g. "s.drainMu").
func mutexOp(info *types.Info, call *ast.CallExpr) (op, key string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isMutexType(recv.Type()) {
		return "", "", false
	}
	return fn.Name(), types.ExprString(sel.X), true
}

// guardSite resolves sel as an access to a guarded field, returning the
// site to judge. Accesses rooted at variables declared inside this body
// (unshared fresh values, e.g. in constructors) are exempt; variables
// from outside — parameters, receivers, captured variables, globals —
// are checked.
func guardSite(p *Pass, fb funcBody, sel *ast.SelectorExpr, guards map[*types.Var]guardedField) (lockSite, bool) {
	selInfo := p.Info.Selections[sel]
	if selInfo == nil || selInfo.Kind() != types.FieldVal {
		return lockSite{}, false
	}
	v, ok := selInfo.Obj().(*types.Var)
	if !ok {
		return lockSite{}, false
	}
	guard := ""
	if gi, found := guards[v]; found {
		guard = gi.guard
	} else if v.Pkg() != nil && v.Pkg() != p.Pkg {
		if named := derefNamed(selInfo.Recv()); named != nil {
			var gf GuardFact
			if p.ImportKeyFact(v.Pkg().Path(), FieldKey(named.Obj().Name(), v.Name()), &gf) {
				guard = gf.Guard
			}
		}
	}
	if guard == "" {
		return lockSite{}, false
	}
	root := rootIdent(sel.X)
	if root == nil {
		return lockSite{}, false
	}
	rv, ok := p.Info.Uses[root].(*types.Var)
	if !ok {
		return lockSite{}, false
	}
	if rv.Pos() >= fb.body.Pos() && rv.Pos() < fb.body.End() {
		return lockSite{}, false // local fresh value, unshared
	}
	path := types.ExprString(sel.X)
	return lockSite{
		pos:  sel.Sel.Pos(),
		key:  path + "." + guard,
		what: "access to " + path + "." + v.Name(),
	}, true
}

// holdsSites resolves call as an invocation of one or more
// //filllint:holds functions (local or via fact) and returns the keys
// the caller must hold. Only receiver-relative (undotted) guards are
// enforceable at call sites: the callee's receiver is the caller's
// selector base.
func holdsSites(p *Pass, call *ast.CallExpr, holds map[*types.Func][]string) []lockSite {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil
	}
	fn, isFn := p.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return nil
	}
	specs := holds[fn]
	if specs == nil && fn.Pkg() != nil && fn.Pkg() != p.Pkg {
		var hf HoldsFact
		if p.ImportObjectFact(fn, &hf) {
			specs = hf.Guards
		}
	}
	var sites []lockSite
	base := types.ExprString(sel.X)
	for _, spec := range specs {
		if strings.Contains(spec, ".") {
			continue
		}
		sites = append(sites, lockSite{
			pos:  call.Pos(),
			key:  base + "." + spec,
			what: "call to " + base + "." + fn.Name() + " (declared //filllint:holds " + spec + ")",
		})
	}
	return sites
}

// rootIdent returns the leftmost identifier of a selector/index chain,
// or nil when the chain is rooted in something unnameable (a call, a
// literal).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// derefNamed unwraps pointers to the named type underneath, if any.
func derefNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
