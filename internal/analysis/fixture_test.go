package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches expectation comments in fixtures: // want "substring"
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// runFixture type-checks one fixture file under pkgPath (so package-scoped
// analyzers see the path they scope on) and asserts that the analyzer's
// findings match the file's // want comments line for line.
func runFixture(t *testing.T, a *Analyzer, fixture, pkgPath string) {
	t.Helper()
	src, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, fixture, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	files := []*ast.File{f}
	pkg, info, err := CheckFiles(fset, pkgPath, files, StdImporter(fset))
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	diags := RunAnalyzers([]*Analyzer{a}, &Package{
		Dir:   filepath.Dir(fixture),
		Path:  pkgPath,
		Fset:  fset,
		Files: files,
		Types: pkg,
		Info:  info,
	})

	wants := map[int][]string{}
	for i, line := range strings.Split(string(src), "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			wants[i+1] = append(wants[i+1], m[1])
		}
	}

	got := map[int][]string{}
	for _, d := range diags {
		got[d.Pos.Line] = append(got[d.Pos.Line], d.Message)
	}

	for line, subs := range wants {
		msgs := got[line]
		for _, sub := range subs {
			found := false
			for _, msg := range msgs {
				if strings.Contains(msg, sub) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s:%d: want finding containing %q, got %v", fixture, line, sub, msgs)
			}
		}
	}
	for line, msgs := range got {
		if len(wants[line]) == 0 {
			t.Errorf("%s:%d: unexpected finding(s): %v", fixture, line, msgs)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("diagnostic: %s", d)
		}
	}
}

// fixturePath returns testdata/<analyzer>/<name>.
func fixturePath(analyzer, name string) string {
	return filepath.Join("testdata", analyzer, name)
}

// fixtureDiags type-checks a fixture under pkgPath and returns the raw
// findings without matching // want expectations — for scope tests that
// assert an analyzer stays silent on out-of-scope packages.
func fixtureDiags(t *testing.T, a *Analyzer, fixture, pkgPath string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, fixture, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	files := []*ast.File{f}
	pkg, info, err := CheckFiles(fset, pkgPath, files, StdImporter(fset))
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return RunAnalyzers([]*Analyzer{a}, &Package{
		Dir: filepath.Dir(fixture), Path: pkgPath, Fset: fset, Files: files, Types: pkg, Info: info,
	})
}

func TestFixtureFilesCompile(t *testing.T) {
	// Every fixture must at least parse; runFixture type-checks the ones
	// the analyzer tests exercise. This sweep catches stray files.
	err := filepath.WalkDir("testdata", func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		fset := token.NewFileSet()
		if _, perr := parser.ParseFile(fset, p, nil, parser.ParseComments); perr != nil {
			return fmt.Errorf("fixture %s does not parse: %w", p, perr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
