package faultinject

import (
	"errors"
	"sync"
	"testing"
)

func TestNilAndZeroInjectorAreInert(t *testing.T) {
	var nilIn *Injector
	if nilIn.Hit(SiteWarmSolve, 0) {
		t.Fatal("nil injector fired")
	}
	if err := nilIn.Fail(SiteWarmSolve, 0); err != nil {
		t.Fatalf("nil injector Fail = %v", err)
	}
	if nilIn.Hits(SiteWarmSolve) != 0 {
		t.Fatal("nil injector counted a hit")
	}
	nilIn.ResetCounters() // must not panic

	in := New(7)
	for k := uint64(0); k < 1000; k++ {
		if in.Hit(SiteWarmSolve, k) {
			t.Fatal("injector with no rates fired")
		}
	}
}

func TestDeterministicAcrossCallOrder(t *testing.T) {
	const n = 512
	a := New(42).WithRate(SiteWarmSolve, 0.25).WithRate(SitePanic, 0.1)
	b := New(42).WithRate(SiteWarmSolve, 0.25).WithRate(SitePanic, 0.1)

	// Query a forward and b backward, interleaving sites; decisions must
	// agree key-for-key — no hidden call-order state.
	got := make(map[uint64][2]bool, n)
	for k := uint64(0); k < n; k++ {
		got[k] = [2]bool{a.Hit(SiteWarmSolve, k), a.Hit(SitePanic, k)}
	}
	for k := int64(n - 1); k >= 0; k-- {
		key := uint64(k)
		want := got[key]
		if b.Hit(SitePanic, key) != want[1] || b.Hit(SiteWarmSolve, key) != want[0] {
			t.Fatalf("key %d: decisions differ between call orders", key)
		}
	}
	if a.Hits(SiteWarmSolve) != b.Hits(SiteWarmSolve) || a.Hits(SitePanic) != b.Hits(SitePanic) {
		t.Fatalf("hit counts differ: a=(%d,%d) b=(%d,%d)",
			a.Hits(SiteWarmSolve), a.Hits(SitePanic), b.Hits(SiteWarmSolve), b.Hits(SitePanic))
	}
}

func TestRateZeroAndOne(t *testing.T) {
	in := New(3).WithRate(SiteColdSolve, 1).WithRate(SiteCorrupt, 0)
	for k := uint64(0); k < 256; k++ {
		if !in.Hit(SiteColdSolve, k) {
			t.Fatalf("rate-1 site missed at key %d", k)
		}
		if in.Hit(SiteCorrupt, k) {
			t.Fatalf("rate-0 site fired at key %d", k)
		}
	}
	if got := in.Hits(SiteColdSolve); got != 256 {
		t.Fatalf("Hits = %d, want 256", got)
	}
}

func TestRateRoughlyHonoured(t *testing.T) {
	const n = 20000
	in := New(99).WithRate(SiteWarmSolve, 0.25)
	var fired int
	for k := uint64(0); k < n; k++ {
		if in.Hit(SiteWarmSolve, k) {
			fired++
		}
	}
	// 25% of 20000 = 5000; allow ±3% absolute.
	if fired < n/4-600 || fired > n/4+600 {
		t.Fatalf("rate 0.25 fired %d/%d times", fired, n)
	}
}

func TestSeedChangesPattern(t *testing.T) {
	a := New(1).WithRate(SiteWarmSolve, 0.5)
	b := New(2).WithRate(SiteWarmSolve, 0.5)
	same := 0
	const n = 1024
	for k := uint64(0); k < n; k++ {
		if a.Would(SiteWarmSolve, k) == b.Would(SiteWarmSolve, k) {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

func TestWouldMatchesHitWithoutCounting(t *testing.T) {
	in := New(11).WithRate(SitePanic, 0.3)
	for k := uint64(0); k < 256; k++ {
		want := in.Would(SitePanic, k)
		if in.Hits(SitePanic) != 0 {
			t.Fatal("Would incremented the counter")
		}
		if got := in.Hit(SitePanic, k); got != want {
			t.Fatalf("key %d: Hit=%v Would=%v", k, got, want)
		}
		in.ResetCounters()
	}
}

func TestFailWrapsErrInjected(t *testing.T) {
	in := New(5).WithRate(SiteSimplexSolve, 1)
	err := in.Fail(SiteSimplexSolve, 17)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Fail = %v, want ErrInjected", err)
	}
	if in.Fail(SiteBudget, 17) != nil {
		t.Fatal("inactive site returned an error")
	}
}

func TestConcurrentHitsCountExactly(t *testing.T) {
	in := New(8).WithRate(SiteWarmSolve, 1)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				in.Hit(SiteWarmSolve, uint64(w*per+k))
			}
		}()
	}
	wg.Wait()
	if got := in.Hits(SiteWarmSolve); got != workers*per {
		t.Fatalf("Hits = %d, want %d", got, workers*per)
	}
	in.ResetCounters()
	if in.Hits(SiteWarmSolve) != 0 {
		t.Fatal("ResetCounters did not zero")
	}
}

func TestSiteString(t *testing.T) {
	for site, want := range map[Site]string{
		SiteWarmSolve:    "warm-solve",
		SiteColdSolve:    "cold-solve",
		SiteSimplexSolve: "simplex-solve",
		SitePanic:        "panic",
		SiteCorrupt:      "corrupt",
		SiteBudget:       "budget",
		Site(99):         "site(99)",
	} {
		if got := site.String(); got != want {
			t.Fatalf("Site(%d).String() = %q, want %q", uint64(site), got, want)
		}
	}
}
