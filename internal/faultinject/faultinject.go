// Package faultinject provides deterministic, seed-driven fault injection
// for exercising the fill pipeline's degradation paths. An Injector decides
// purely from (seed, site, key) whether a fault fires, so runs are
// reproducible across worker counts and machines: the same seed and the
// same per-window keys produce the same faults no matter how windows are
// scheduled onto goroutines.
//
// The engine consults the injector at well-defined sites (before each
// solver tier, around window sizing, on intermediate results); tests set
// per-site rates to force solver failures, panics, corrupted solutions, or
// timeouts on a deterministic subset of windows and then assert the
// pipeline still produces a DRC-clean, deterministic result with an honest
// Health report.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Site identifies a pipeline location where a fault can be injected.
type Site uint64

const (
	// SiteWarmSolve fails the per-worker warm-started MCF solve, forcing
	// the engine onto the cold SPFA tier.
	SiteWarmSolve Site = iota + 1
	// SiteColdSolve fails the cold SSP solve, forcing the dense simplex.
	SiteColdSolve
	// SiteSimplexSolve fails the dense-simplex tier, exhausting the solver
	// chain and forcing no-shrink degradation.
	SiteSimplexSolve
	// SitePanic makes the sizing worker panic instead of returning an
	// error, exercising the per-window recover isolation.
	SitePanic
	// SiteCorrupt corrupts the solver's solution vector in-place before it
	// is applied, exercising the engine's post-solve Check validation.
	SiteCorrupt
	// SiteBudget simulates the run budget expiring at this window,
	// exercising deadline degradation without wall-clock dependence.
	SiteBudget
	// SiteServeIngest fails the serving layer's layout ingest for a job,
	// exercising the server's rejected-status path on a parse that would
	// otherwise succeed. Keyed by the job's content hash.
	SiteServeIngest
	// SiteServePanic panics inside the serving layer's job runner — above
	// the engine's own per-window isolation — exercising per-job recover
	// and the aborted-status path. Keyed by the job's content hash.
	SiteServePanic
	// SiteServeEmit fails the serving layer's response emission mid-way,
	// exercising downstream write-fault handling. Keyed by the job's
	// content hash.
	SiteServeEmit
	// SiteCacheLoad simulates a torn or corrupt fill-cache entry read:
	// the entry that was loaded is discarded as if its integrity check
	// had failed, forcing a clean recompute of the window. Keyed by the
	// window index. It exercises the cache's failure contract — a bad
	// entry may cost time, never correctness.
	SiteCacheLoad

	// siteMax is the highest valid site; the hit-counter array covers
	// [0, siteMax].
	siteMax = SiteCacheLoad
)

// String names the site for error messages and health reports.
func (s Site) String() string {
	switch s {
	case SiteWarmSolve:
		return "warm-solve"
	case SiteColdSolve:
		return "cold-solve"
	case SiteSimplexSolve:
		return "simplex-solve"
	case SitePanic:
		return "panic"
	case SiteCorrupt:
		return "corrupt"
	case SiteBudget:
		return "budget"
	case SiteServeIngest:
		return "serve-ingest"
	case SiteServePanic:
		return "serve-panic"
	case SiteServeEmit:
		return "serve-emit"
	case SiteCacheLoad:
		return "cache-load"
	default:
		return fmt.Sprintf("site(%d)", uint64(s))
	}
}

// ErrInjected is the sentinel wrapped by every injected solver failure, so
// tests and health accounting can tell injected faults from organic ones.
var ErrInjected = errors.New("faultinject: injected fault")

// Injector decides deterministically whether a fault fires at a given site
// for a given key. The zero value injects nothing; a nil *Injector is
// likewise inert, so the engine can hold one unconditionally.
//
// Rates are per-site probabilities in [0,1] discretised to 1/2^16. The
// decision hashes (seed, site, key) — it involves no global state, no
// time, and no call ordering, which is what keeps fault patterns identical
// across Workers=1 and Workers=N schedules.
type Injector struct {
	seed  uint64
	rates map[Site]uint32 // threshold in [0, 1<<16]
	hits  [siteMax + 1]atomic.Int64
}

// New returns an injector with the given seed and no active sites.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, rates: make(map[Site]uint32)}
}

// WithRate sets the firing probability for a site and returns the injector
// for chaining. Rates outside [0,1] are clamped. Not safe to call
// concurrently with Hit.
func (in *Injector) WithRate(site Site, rate float64) *Injector {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	in.rates[site] = uint32(rate * (1 << 16))
	return in
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hit reports whether the fault at site fires for key, and counts it when
// it does. Deterministic in (seed, site, key); safe for concurrent use.
func (in *Injector) Hit(site Site, key uint64) bool {
	if in == nil {
		return false
	}
	threshold, ok := in.rates[site]
	if !ok || threshold == 0 {
		return false
	}
	h := splitmix64(in.seed ^ splitmix64(uint64(site)<<32^key))
	if uint32(h&0xffff) >= threshold {
		return false
	}
	if site <= siteMax {
		in.hits[site].Add(1)
	}
	return true
}

// Would reports whether Hit(site, key) would fire, without counting it.
// Tests use it to precompute the expected fault set for a run.
func (in *Injector) Would(site Site, key uint64) bool {
	if in == nil {
		return false
	}
	threshold, ok := in.rates[site]
	if !ok || threshold == 0 {
		return false
	}
	h := splitmix64(in.seed ^ splitmix64(uint64(site)<<32^key))
	return uint32(h&0xffff) < threshold
}

// Fail returns an injected-fault error for site/key when the fault fires,
// nil otherwise — the common pattern at solver sites.
func (in *Injector) Fail(site Site, key uint64) error {
	if !in.Hit(site, key) {
		return nil
	}
	return fmt.Errorf("%w: %s at key %d", ErrInjected, site, key)
}

// ActiveAny reports whether any of the given sites has a non-zero rate.
// The fill cache uses it to disable itself while engine-level faults are
// being injected: those faults are keyed by window index, not window
// content, so replaying a cached (healthy) result would silently change
// the deterministic fault pattern a test asked for. Like WithRate it must
// not race with rate mutation, which the engine never does mid-run.
func (in *Injector) ActiveAny(sites ...Site) bool {
	if in == nil {
		return false
	}
	for _, s := range sites {
		if in.rates[s] > 0 {
			return true
		}
	}
	return false
}

// Hits returns how many times the fault at site has fired so far.
func (in *Injector) Hits(site Site) int64 {
	if in == nil || site > siteMax {
		return 0
	}
	return in.hits[site].Load()
}

// ResetCounters zeroes all hit counters (rates and seed are kept), so one
// injector can be reused across runs while asserting per-run counts.
func (in *Injector) ResetCounters() {
	if in == nil {
		return
	}
	for i := range in.hits {
		in.hits[i].Store(0)
	}
}
