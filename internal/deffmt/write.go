package deffmt

import (
	"bufio"
	"fmt"
	"io"

	"dummyfill/internal/geom"
	"dummyfill/internal/layio"
	"dummyfill/internal/layout"
)

// shapeWriter emits a DEF deck. COMPONENTS declares its count up front,
// so shapes buffer until Close, which writes the whole deck: preamble
// (VERSION, DESIGN, UNITS, DIEAREA, ROW), then every component, then the
// trailer. The die defaults to the bounding box of the shapes and the
// lattice when the header carries none.
type shapeWriter struct {
	w     io.Writer
	hdr   layio.Header
	lib   *layout.FillLib
	comps []component
	bbox  geom.Rect
	err   error
}

// component is one buffered COMPONENTS entry.
type component struct {
	shape layio.Shape
}

// NewShapeWriter opens a streaming DEF writer. Header.Sites, when set,
// is emitted as a ROW statement and enables the library filler naming
// for site-aligned fills (Header.FillLib, default layout.DefaultFillLib);
// all other shapes use the explicit geometry-encoding masters.
func NewShapeWriter(w io.Writer, h layio.Header) (layio.ShapeWriter, error) {
	lib := h.FillLib
	if lib == nil {
		lib = layout.DefaultFillLib()
	}
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	if h.Sites != nil {
		if err := h.Sites.Validate(); err != nil {
			return nil, err
		}
	}
	return &shapeWriter{w: w, hdr: h, lib: lib}, nil
}

func (sw *shapeWriter) Write(s layio.Shape) error {
	if sw.err != nil {
		return sw.err
	}
	if s.Datatype != layio.DatatypeWire && s.Datatype != layio.DatatypeFill {
		sw.err = fmt.Errorf("deffmt: DEF carries components only, got datatype %d", s.Datatype)
		return sw.err
	}
	if s.Layer < 0 || s.Rect.Empty() {
		sw.err = fmt.Errorf("deffmt: invalid shape layer=%d rect=%v", s.Layer, s.Rect)
		return sw.err
	}
	sw.bbox = sw.bbox.Union(s.Rect)
	sw.comps = append(sw.comps, component{shape: s})
	return nil
}

// master names a buffered shape's DEF master: library fillers for
// site-aligned fills, explicit geometry encoding otherwise.
func (sw *shapeWriter) master(s layio.Shape) string {
	if s.Datatype == layio.DatatypeFill && s.Layer == 0 && sw.hdr.Sites != nil && sw.hdr.Sites.Aligned(s.Rect) {
		if sites := s.Rect.W() / sw.hdr.Sites.SiteW; sw.lib.WidthFor(sites) == sites {
			return sw.lib.Master(sites)
		}
	}
	kind := byte('W')
	if s.Datatype == layio.DatatypeFill {
		kind = 'F'
	}
	return fmt.Sprintf("%c%d_%dx%d", kind, s.Layer, s.Rect.W(), s.Rect.H())
}

func (sw *shapeWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	bw := bufio.NewWriter(sw.w)
	name := sw.hdr.Name
	if name == "" {
		name = "TOP"
	}
	die := sw.hdr.Die
	if die.Empty() {
		die = sw.bbox
		if sw.hdr.Sites != nil {
			die = die.Union(sw.hdr.Sites.Bounds())
		}
	}
	fmt.Fprintf(bw, "VERSION 5.8 ;\nDESIGN %s ;\nUNITS DISTANCE MICRONS 1000 ;\n", name)
	fmt.Fprintf(bw, "DIEAREA ( %d %d ) ( %d %d ) ;\n", die.XL, die.YL, die.XH, die.YH)
	if sg := sw.hdr.Sites; sg != nil {
		fmt.Fprintf(bw, "ROW core_0 coresite %d %d N DO %d BY %d STEP %d %d ;\n",
			sg.Origin.X, sg.Origin.Y, sg.Sites, sg.Rows, sg.SiteW, sg.RowH)
	}
	fmt.Fprintf(bw, "COMPONENTS %d ;\n", len(sw.comps))
	nw, nf := 0, 0
	for _, c := range sw.comps {
		var inst string
		if c.shape.Datatype == layio.DatatypeFill {
			inst = fmt.Sprintf("fill_%d", nf)
			nf++
		} else {
			inst = fmt.Sprintf("cell_%d", nw)
			nw++
		}
		fmt.Fprintf(bw, "- %s %s + PLACED ( %d %d ) N ;\n",
			inst, sw.master(c.shape), c.shape.Rect.XL, c.shape.Rect.YL)
	}
	fmt.Fprintf(bw, "END COMPONENTS\nEND DESIGN\n")
	return bw.Flush()
}
