// Package deffmt reads and writes the DEF (Design Exchange Format)
// subset the fill flow needs: DESIGN, DIEAREA, ROW and COMPONENTS. It is
// the interchange format of the site fill mode — placement rows carry
// the site lattice, placed components block fill, and inserted fillers
// come back as COMPONENTS named with the OpenROAD filler convention
// (FILL_X<sites>).
//
// DEF carries no LEF, so the subset recovers component geometry from the
// master name alone, by convention:
//
//	FILL_X<k>     a filler k sites wide and one row tall (any library
//	              prefix ending in X works); requires ROW statements
//	W<l>_<w>x<h>  a wire on layer l, w×h database units
//	F<l>_<w>x<h>  a fill on layer l, w×h database units
//
// The writer emits site-aligned fills as library fillers and everything
// else in the explicit W/F form, so any layout round-trips even though
// standard DEF is single-layer placement data.
package deffmt

import (
	"bytes"
	"io"

	"dummyfill/internal/layio"
	"dummyfill/internal/layout"
)

// FormatName is this package's layio registry key.
const FormatName = "def"

func init() {
	layio.Register(layio.Format{
		Name:   FormatName,
		Detect: sniff,
		NewShapeReader: func(r io.Reader, lim layio.Limits) layio.ShapeReader {
			return NewShapeReader(r, lim)
		},
		NewShapeWriter: NewShapeWriter,
		Limits:         layio.DefaultLimits(),
		// Full-layout DEF emission carries the placed components (wires)
		// too — a fills-only DEF would not re-place the design.
		EmitsWires: true,
		// DEF states its own die and rows; the reader synthesizes
		// permissive fill rules (site layouts allow abutting fillers), so
		// ingest must not override them with the binary-format defaults.
		CarriesMeta: true,
		// DEF is keyword text with no magic bytes, and DEF files may open
		// with '#' comments that the generic text sniffer would claim;
		// sniff above the default priority so the keyword probe runs
		// first.
		Priority: 1,
	})
}

// sniff recognizes a DEF stream: after leading whitespace and '#'
// comment lines, it opens with a DEF section keyword.
func sniff(prefix []byte) bool {
	s := prefix
	for {
		s = bytes.TrimLeft(s, " \t\r\n")
		if len(s) == 0 {
			return false
		}
		if s[0] != '#' {
			break
		}
		nl := bytes.IndexByte(s, '\n')
		if nl < 0 {
			return false // comment runs past the sniff window: undecidable
		}
		s = s[nl+1:]
	}
	for _, kw := range [...]string{"VERSION", "DESIGN", "UNITS", "DIEAREA", "ROW", "COMPONENTS"} {
		if len(s) >= len(kw) {
			// A real keyword ends at whitespace ("VERSIONS" is not one).
			if string(s[:len(kw)]) == kw && (len(s) == len(kw) || isSpace(s[len(kw)])) {
				return true
			}
		} else if string(s) == kw[:len(s)] {
			// The sniff window cut the keyword short: plausible DEF.
			return true
		}
	}
	return false
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\r' || b == '\n' }

// WriteLayout emits a full layout (wires, and the solution's fills when
// sol is non-nil) as a DEF deck: the deck a DEF→fill→DEF round trip
// starts from.
func WriteLayout(w io.Writer, lay *layout.Layout, sol *layout.Solution) error {
	sw, err := NewShapeWriter(w, layio.Header{Name: lay.Name, Die: lay.Die, Sites: lay.Sites})
	if err != nil {
		return err
	}
	for li, layer := range lay.Layers {
		for _, r := range layer.Wires {
			if err := sw.Write(layio.Shape{Layer: li, Datatype: layio.DatatypeWire, Rect: r}); err != nil {
				return err
			}
		}
	}
	if sol != nil {
		for _, f := range sol.Fills {
			if err := sw.Write(layio.Shape{Layer: f.Layer, Datatype: layio.DatatypeFill, Rect: f.Rect}); err != nil {
				return err
			}
		}
	}
	return sw.Close()
}

// WriteSolution emits a fills-only DEF deck (an ECO-style fill netlist):
// the die, the layout's lattice, and one filler COMPONENT per fill.
func WriteSolution(w io.Writer, lay *layout.Layout, sol *layout.Solution) error {
	sw, err := NewShapeWriter(w, layio.Header{Name: lay.Name, Die: lay.Die, Sites: lay.Sites})
	if err != nil {
		return err
	}
	for _, f := range sol.Fills {
		if err := sw.Write(layio.Shape{Layer: f.Layer, Datatype: layio.DatatypeFill, Rect: f.Rect}); err != nil {
			return err
		}
	}
	return sw.Close()
}

// DefaultLimits returns the package's ingest caps (the shared layio
// defaults).
func DefaultLimits() layio.Limits { return layio.DefaultLimits() }
