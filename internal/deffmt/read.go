package deffmt

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"sort"
	"strconv"
	"strings"

	"dummyfill/internal/geom"
	"dummyfill/internal/layio"
	"dummyfill/internal/layout"
)

// maxRowRepeat, maxRowPitch and maxRowCoord cap ROW statements at
// implausible-but-safe magnitudes: repetition bounds the per-row origin
// walk in deriveSites, and pitch/origin bounds keep repetition × pitch
// products inside int64.
const (
	maxRowRepeat = 1 << 24
	maxRowPitch  = 1 << 32
	maxRowCoord  = 1 << 48
)

// rowRec is one parsed ROW statement before lattice derivation.
type rowRec struct {
	x, y   int64
	nx, ny int64
	sx, sy int64
}

// shapeReader streams COMPONENTS out of a DEF deck. The preamble
// (DESIGN, DIEAREA, ROW) is parsed on the way to the first component;
// everything the subset does not model (NETS, PINS, TRACKS, …) is
// rejected, so a deck that silently lost geometry cannot pass.
type shapeReader struct {
	sc  *bufio.Scanner
	lim layio.Limits

	hdr     layio.Header
	rows    []rowRec
	stmt    []string // tokens of the statement being assembled
	queue   []string // tokens carried over past a ';' split
	records int64
	shapes  int64

	inComponents bool
	ended        bool
	err          error
}

// NewShapeReader opens a streaming DEF reader. Zero limit fields are
// unlimited.
func NewShapeReader(r io.Reader, lim layio.Limits) layio.ShapeReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	return &shapeReader{sc: sc, lim: lim}
}

func (sr *shapeReader) Header() layio.Header { return sr.hdr }

func (sr *shapeReader) fail(format string, args ...any) (layio.Shape, error) {
	sr.err = fmt.Errorf("deffmt: "+format, args...)
	return layio.Shape{}, sr.err
}

func (sr *shapeReader) Next() (layio.Shape, error) {
	if sr.err != nil {
		return layio.Shape{}, sr.err
	}
	for {
		stmt, err := sr.nextStmt()
		if err == io.EOF {
			if ferr := sr.finishHeader(); ferr != nil {
				sr.err = ferr
				return layio.Shape{}, ferr
			}
			return layio.Shape{}, io.EOF
		}
		if err != nil {
			sr.err = err
			return layio.Shape{}, err
		}
		switch stmt[0] {
		case "VERSION", "UNITS", "BUSBITCHARS", "DIVIDERCHAR", "TECHNOLOGY", "HISTORY":
			// Accepted and ignored: no geometry. Coordinates pass through
			// as database units regardless of UNITS.
		case "DESIGN":
			if len(stmt) >= 2 {
				sr.hdr.Name = stmt[1]
			}
		case "DIEAREA":
			n, err := ints(stmt[1:])
			if err != nil || len(n) != 4 {
				return sr.fail("malformed DIEAREA %v", stmt)
			}
			sr.hdr.Die = geom.R(n[0], n[1], n[2], n[3])
		case "ROW":
			if sr.inComponents {
				return sr.fail("ROW after COMPONENTS")
			}
			rec, err := parseRow(stmt)
			if err != nil {
				return sr.fail("%v", err)
			}
			sr.rows = append(sr.rows, rec)
		case "COMPONENTS":
			if err := sr.deriveSites(); err != nil {
				sr.err = err
				return layio.Shape{}, err
			}
			sr.inComponents = true
		case "-":
			if !sr.inComponents {
				return sr.fail("component statement outside COMPONENTS")
			}
			sr.shapes++
			if sr.lim.MaxShapes > 0 && sr.shapes > sr.lim.MaxShapes {
				return sr.fail("%w: %d components", layio.ErrLimit, sr.shapes)
			}
			s, err := sr.parseComponent(stmt)
			if err != nil {
				sr.err = err
				return layio.Shape{}, err
			}
			if s.Layer >= sr.hdr.NumLayers {
				sr.hdr.NumLayers = s.Layer + 1
			}
			return s, nil
		case "END":
			what := ""
			if len(stmt) > 1 {
				what = stmt[1]
			}
			switch what {
			case "COMPONENTS":
				sr.inComponents = false
			case "DESIGN":
				sr.ended = true
				if err := sr.finishHeader(); err != nil {
					sr.err = err
					return layio.Shape{}, err
				}
				return layio.Shape{}, io.EOF
			default:
				return sr.fail("unexpected END %s", what)
			}
		default:
			return sr.fail("unsupported statement %q (the DEF subset models DESIGN, DIEAREA, ROW and COMPONENTS)", stmt[0])
		}
	}
}

// finishHeader synthesizes the layout metadata a DEF deck implies: the
// derived lattice and permissive fill rules (abutting fillers are legal
// on a placement lattice, so MinSpace is 0 and the free regions are the
// exact complement of the placed components). An inconsistent ROW set in
// a rows-only deck fails the read, exactly as it would have at
// COMPONENTS.
func (sr *shapeReader) finishHeader() error {
	if sr.hdr.Sites == nil {
		if err := sr.deriveSites(); err != nil {
			return err
		}
	}
	sr.hdr.Rules = layout.Rules{MinWidth: 1, MinSpace: 0, MinArea: 1}
	if sr.hdr.NumLayers == 0 && sr.hdr.Sites != nil {
		sr.hdr.NumLayers = 1
	}
	return nil
}

// deriveSites folds the accumulated ROW statements into one uniform
// SiteGrid. Both per-row DEF (one statement per row, DO n BY 1) and the
// compact 2-D repetition (DO n BY m STEP sw rh) are accepted.
func (sr *shapeReader) deriveSites() error {
	if sr.hdr.Sites != nil || len(sr.rows) == 0 {
		return nil
	}
	var minX, minY, maxX, maxY int64
	var siteW, rowH, sites int64
	var ys []int64 // every row origin, sorted+deduped before derivation
	for i, r := range sr.rows {
		if r.nx < 1 || r.ny < 1 || r.sx <= 0 {
			return fmt.Errorf("deffmt: ROW with non-positive repetition %+v", r)
		}
		// Plausibility caps: they bound the y-origin walk below and keep
		// every product off int64 overflow, so a hostile deck cannot spin
		// or wrap the derivation.
		if r.nx > maxRowRepeat || r.ny > maxRowRepeat {
			return fmt.Errorf("deffmt: ROW repetition %dx%d exceeds the %d cap", r.nx, r.ny, maxRowRepeat)
		}
		if r.sx > maxRowPitch || r.sy > maxRowPitch || r.x < -maxRowCoord || r.x > maxRowCoord || r.y < -maxRowCoord || r.y > maxRowCoord {
			return fmt.Errorf("deffmt: ROW geometry out of range %+v", r)
		}
		if siteW == 0 {
			siteW = r.sx
		} else if r.sx != siteW {
			return fmt.Errorf("deffmt: inconsistent site widths %d and %d", siteW, r.sx)
		}
		if r.ny > 1 {
			if r.sy <= 0 {
				return fmt.Errorf("deffmt: ROW repeats %d rows with step %d", r.ny, r.sy)
			}
			if rowH == 0 {
				rowH = r.sy
			} else if r.sy != rowH {
				return fmt.Errorf("deffmt: inconsistent row heights %d and %d", rowH, r.sy)
			}
		}
		for j := int64(0); j < r.ny; j++ {
			ys = append(ys, r.y+j*r.sy)
		}
		if i == 0 || r.x < minX {
			minX = r.x
		}
		if i == 0 || r.y < minY {
			minY = r.y
		}
		if e := r.x + r.nx*r.sx; i == 0 || e > maxX {
			maxX = e
		}
		if e := r.y + (r.ny-1)*r.sy; i == 0 || e > maxY {
			maxY = e
		}
		if r.nx > sites {
			sites = r.nx
		}
	}
	if rowH == 0 {
		// Per-row statements: the row height is the smallest positive
		// spacing between row origins.
		sort.Slice(ys, func(a, b int) bool { return ys[a] < ys[b] })
		ys = slices.Compact(ys)
		for _, y := range ys {
			if d := y - minY; d > 0 && (rowH == 0 || d < rowH) {
				rowH = d
			}
		}
		for _, y := range ys {
			if rowH == 0 || (y-minY)%rowH != 0 {
				return fmt.Errorf("deffmt: cannot derive a uniform row height from ROW origins")
			}
		}
	}
	nrows := int((maxY-minY)/rowH) + 1
	sg := layout.SiteGrid{
		Origin: geom.Point{X: minX, Y: minY},
		SiteW:  siteW, RowH: rowH,
		Rows: nrows, Sites: int(sites),
	}
	if err := sg.Validate(); err != nil {
		return fmt.Errorf("deffmt: derived site grid invalid: %w", err)
	}
	sr.hdr.Sites = &sg
	return nil
}

// parseComponent turns one "- inst master + PLACED ( x y ) orient ;"
// statement into a shape, recovering geometry from the master name.
func (sr *shapeReader) parseComponent(stmt []string) (layio.Shape, error) {
	if len(stmt) < 3 {
		return layio.Shape{}, fmt.Errorf("deffmt: truncated component %v", stmt)
	}
	master := stmt[2]
	var x, y int64
	placed := false
	for i := 3; i < len(stmt); i++ {
		if stmt[i] != "PLACED" && stmt[i] != "FIXED" {
			continue
		}
		if i+2 >= len(stmt) {
			return layio.Shape{}, fmt.Errorf("deffmt: truncated placement in %v", stmt)
		}
		n, err := ints(stmt[i+1 : i+3])
		if err != nil {
			return layio.Shape{}, fmt.Errorf("deffmt: bad placement coordinates in %v", stmt)
		}
		x, y, placed = n[0], n[1], true
		break
	}
	if !placed {
		return layio.Shape{}, fmt.Errorf("deffmt: component %s has no PLACED/FIXED location", stmt[1])
	}
	layer, datatype, w, h, err := parseMaster(master, sr.hdr.Sites)
	if err != nil {
		return layio.Shape{}, err
	}
	return layio.Shape{
		Layer:    layer,
		Datatype: datatype,
		Rect:     geom.Rect{XL: x, YL: y, XH: x + w, YH: y + h},
	}, nil
}

// parseMaster recovers a component's layer, datatype and size from its
// master name per the package's naming convention.
func parseMaster(master string, sg *layout.SiteGrid) (layer, datatype int, w, h int64, err error) {
	// Explicit form: W<l>_<w>x<h> or F<l>_<w>x<h>.
	if len(master) >= 2 && (master[0] == 'W' || master[0] == 'F') && master[1] >= '0' && master[1] <= '9' {
		rest := master[1:]
		us := strings.IndexByte(rest, '_')
		xs := strings.IndexByte(rest, 'x')
		if us > 0 && xs > us {
			l, e1 := strconv.Atoi(rest[:us])
			wv, e2 := strconv.ParseInt(rest[us+1:xs], 10, 64)
			hv, e3 := strconv.ParseInt(rest[xs+1:], 10, 64)
			if e1 == nil && e2 == nil && e3 == nil && l >= 0 && wv > 0 && hv > 0 {
				dt := layio.DatatypeWire
				if master[0] == 'F' {
					dt = layio.DatatypeFill
				}
				return l, dt, wv, hv, nil
			}
		}
	}
	// Filler form: <prefix>X<sites>, one row tall.
	if xi := strings.LastIndexByte(master, 'X'); xi > 0 && xi < len(master)-1 {
		if sites, e := strconv.ParseInt(master[xi+1:], 10, 64); e == nil && sites > 0 {
			if sg == nil {
				return 0, 0, 0, 0, fmt.Errorf("deffmt: filler master %q needs ROW statements to size", master)
			}
			return 0, layio.DatatypeFill, sites * sg.SiteW, sg.RowH, nil
		}
	}
	return 0, 0, 0, 0, fmt.Errorf("deffmt: master %q does not encode geometry (want W<l>_<w>x<h>, F<l>_<w>x<h> or <prefix>X<sites>)", master)
}

// parseRow parses "ROW name site x y orient [DO nx BY ny [STEP sx sy]]".
func parseRow(stmt []string) (rowRec, error) {
	if len(stmt) < 5 {
		return rowRec{}, fmt.Errorf("deffmt: truncated ROW %v", stmt)
	}
	n, err := ints(stmt[3:5])
	if err != nil {
		return rowRec{}, fmt.Errorf("deffmt: bad ROW origin in %v", stmt)
	}
	rec := rowRec{x: n[0], y: n[1], nx: 1, ny: 1}
	for i := 5; i < len(stmt); i++ {
		switch stmt[i] {
		case "DO":
			if i+3 >= len(stmt) || stmt[i+2] != "BY" {
				return rowRec{}, fmt.Errorf("deffmt: malformed DO/BY in %v", stmt)
			}
			c, err := ints([]string{stmt[i+1], stmt[i+3]})
			if err != nil {
				return rowRec{}, fmt.Errorf("deffmt: bad DO/BY counts in %v", stmt)
			}
			rec.nx, rec.ny = c[0], c[1]
		case "STEP":
			if i+2 >= len(stmt) {
				return rowRec{}, fmt.Errorf("deffmt: malformed STEP in %v", stmt)
			}
			c, err := ints(stmt[i+1 : i+3])
			if err != nil {
				return rowRec{}, fmt.Errorf("deffmt: bad STEP values in %v", stmt)
			}
			rec.sx, rec.sy = c[0], c[1]
		}
	}
	if rec.nx > 1 && rec.sx == 0 {
		return rowRec{}, fmt.Errorf("deffmt: ROW repeats %d sites without STEP in %v", rec.nx, stmt)
	}
	if rec.sx == 0 {
		rec.sx = 1 // single-site row: pitch is irrelevant but must be positive
	}
	return rec, nil
}

// nextStmt assembles the next ';'-terminated statement (or a bare END
// line) from the token stream, dropping '(' and ')' — parentheses only
// group coordinates in this subset. Comments run '#' to end of line.
func (sr *shapeReader) nextStmt() ([]string, error) {
	sr.stmt = sr.stmt[:0]
	for {
		// Drain carried-over tokens first.
		for len(sr.queue) > 0 {
			tok := sr.queue[0]
			sr.queue = sr.queue[1:]
			if tok == ";" {
				if len(sr.stmt) == 0 {
					continue // stray semicolon
				}
				return sr.stmt, nil
			}
			sr.stmt = append(sr.stmt, tok)
			if len(sr.stmt) == 1 && tok == "END" {
				// END sections have no ';': take the rest of the line.
				sr.stmt = append(sr.stmt, sr.queue...)
				sr.queue = sr.queue[:0]
				return sr.stmt, nil
			}
		}
		if !sr.sc.Scan() {
			if err := sr.sc.Err(); err != nil {
				return nil, fmt.Errorf("deffmt: %w", err)
			}
			if len(sr.stmt) > 0 {
				return nil, fmt.Errorf("deffmt: unterminated statement %v", sr.stmt)
			}
			return nil, io.EOF
		}
		sr.records++
		if sr.lim.MaxRecords > 0 && sr.records > sr.lim.MaxRecords {
			return nil, fmt.Errorf("deffmt: %w: %d lines", layio.ErrLimit, sr.records)
		}
		line := sr.sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, tok := range strings.Fields(line) {
			// Separate a trailing ';' glued to a token.
			semi := false
			if len(tok) > 1 && strings.HasSuffix(tok, ";") {
				tok, semi = tok[:len(tok)-1], true
			}
			if tok != "(" && tok != ")" {
				sr.queue = append(sr.queue, tok)
			}
			if semi {
				sr.queue = append(sr.queue, ";")
			}
		}
	}
}

// ints parses a token slice as int64s, rejecting any non-numeric token.
func ints(toks []string) ([]int64, error) {
	out := make([]int64, 0, len(toks))
	for _, t := range toks {
		v, err := strconv.ParseInt(t, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
