package deffmt

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"dummyfill/internal/geom"
	"dummyfill/internal/layio"
	"dummyfill/internal/layout"

	_ "dummyfill/internal/textfmt" // registered so the priority test has a rival sniffer
)

func TestSniff(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"VERSION 5.8 ;\nDESIGN d ;\n", true},
		{"DIEAREA ( 0 0 ) ( 10 10 ) ;\n", true},
		{"  \n\t ROW r cs 0 0 N ;\n", true},
		{"# generated deck\n# second comment\nCOMPONENTS 3 ;\n", true},
		{"DIEA", true}, // keyword truncated by the sniff window
		{"layout x\n", false},
		{"", false},
		{"# a comment that never ends within the sniff window so the format is undecidable", false},
		{"VERSIONS 5.8 ;\n", false}, // not a keyword, just a shared prefix
		{"\x00\x01binary", false},
	}
	for _, c := range cases {
		if got := sniff([]byte(c.in)); got != c.want {
			t.Errorf("sniff(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestRegistryPriority checks that the registry consults the DEF sniffer
// before the permissive text sniffer: a '#'-leading DEF deck must detect
// as DEF, while genuine text decks keep detecting as text.
func TestRegistryPriority(t *testing.T) {
	f, err := layio.Detect([]byte("# fill deck\nVERSION 5.8 ;\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != FormatName {
		t.Fatalf("comment-leading DEF detected as %q", f.Name)
	}
	f, err = layio.Detect([]byte("# comment\nlayout x\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "text" {
		t.Fatalf("comment-leading text deck detected as %q", f.Name)
	}
}

// readAll drains a DEF stream, returning the shapes, the final header,
// and the first error (io.EOF excluded).
func readAll(t *testing.T, in string) ([]layio.Shape, layio.Header, error) {
	t.Helper()
	sr := NewShapeReader(strings.NewReader(in), layio.Limits{})
	var shapes []layio.Shape
	for {
		s, err := sr.Next()
		if err == io.EOF {
			return shapes, sr.Header(), nil
		}
		if err != nil {
			return shapes, sr.Header(), err
		}
		shapes = append(shapes, s)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	sg := &layout.SiteGrid{SiteW: 10, RowH: 50, Rows: 4, Sites: 20}
	hdr := layio.Header{Name: "rt", Die: geom.R(0, 0, 200, 200), Sites: sg}
	var buf bytes.Buffer
	sw, err := NewShapeWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []layio.Shape{
		{Layer: 0, Datatype: layio.DatatypeWire, Rect: geom.R(3, 7, 41, 19)},
		{Layer: 2, Datatype: layio.DatatypeWire, Rect: geom.R(100, 100, 130, 140)},
		{Layer: 0, Datatype: layio.DatatypeFill, Rect: geom.R(20, 50, 60, 100)}, // site-aligned: library filler
		{Layer: 1, Datatype: layio.DatatypeFill, Rect: geom.R(5, 5, 9, 9)},      // off-grid: explicit F master
	}
	for _, s := range shapes {
		if err := sw.Write(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FILL_X4") {
		t.Fatalf("site-aligned fill not emitted as a library filler:\n%s", buf.String())
	}

	got, ghdr, err := readAll(t, buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(shapes) {
		t.Fatalf("re-read %d shapes, want %d", len(got), len(shapes))
	}
	for i, s := range shapes {
		if got[i] != s {
			t.Errorf("shape %d: %+v, want %+v", i, got[i], s)
		}
	}
	if ghdr.Name != "rt" || ghdr.Die != hdr.Die {
		t.Errorf("header name/die %q/%v, want %q/%v", ghdr.Name, ghdr.Die, hdr.Name, hdr.Die)
	}
	if ghdr.Sites == nil || *ghdr.Sites != *sg {
		t.Errorf("derived lattice %+v, want %+v", ghdr.Sites, *sg)
	}
	if ghdr.NumLayers != 3 {
		t.Errorf("NumLayers %d, want 3", ghdr.NumLayers)
	}
	if want := (layout.Rules{MinWidth: 1, MinSpace: 0, MinArea: 1}); ghdr.Rules != want {
		t.Errorf("synthesized rules %+v, want %+v", ghdr.Rules, want)
	}
}

// TestDerivePerRowStatements exercises the one-statement-per-row DEF
// style, where the row height must be recovered from the origins.
func TestDerivePerRowStatements(t *testing.T) {
	deck := `VERSION 5.8 ;
DIEAREA ( 0 0 ) ( 100 150 ) ;
ROW r0 cs 0 0 N DO 10 BY 1 STEP 10 0 ;
ROW r1 cs 0 50 N DO 10 BY 1 STEP 10 0 ;
ROW r2 cs 0 100 N DO 8 BY 1 STEP 10 0 ;
COMPONENTS 1 ;
- fill_0 FILL_X2 + PLACED ( 0 50 ) N ;
END COMPONENTS
END DESIGN
`
	shapes, hdr, err := readAll(t, deck)
	if err != nil {
		t.Fatal(err)
	}
	want := layout.SiteGrid{SiteW: 10, RowH: 50, Rows: 3, Sites: 10}
	if hdr.Sites == nil || *hdr.Sites != want {
		t.Fatalf("derived lattice %+v, want %+v", hdr.Sites, want)
	}
	if len(shapes) != 1 || shapes[0].Rect != geom.R(0, 50, 20, 100) {
		t.Fatalf("filler shape %+v, want one 2-site filler at (0,50)", shapes)
	}
}

func TestReaderErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"unsupported section", "NETS 1 ;\n"},
		{"malformed diearea", "DIEAREA ( 0 0 ) ( x y ) ;\n"},
		{"component outside COMPONENTS", "- c W0_4x4 + PLACED ( 0 0 ) N ;\n"},
		{"filler without rows", "COMPONENTS 1 ;\n- f FILL_X2 + PLACED ( 0 0 ) N ;\n"},
		{"unplaced component", "COMPONENTS 1 ;\n- c W0_4x4 ;\n"},
		{"opaque master", "COMPONENTS 1 ;\n- c NAND2 + PLACED ( 0 0 ) N ;\n"},
		{"unterminated statement", "VERSION 5.8"},
		{"inconsistent site widths", "ROW a cs 0 0 N DO 4 BY 1 STEP 10 0 ;\nROW b cs 0 50 N DO 4 BY 1 STEP 20 0 ;\nCOMPONENTS 0 ;\n"},
		{"row repetition without step", "ROW a cs 0 0 N DO 4 BY 1 ;\n"},
		{"unexpected END", "END NETS\n"},
		{"hostile row repetition", "ROW a cs 0 0 N DO 9999999999 BY 9999999999 STEP 1 1 ;\nCOMPONENTS 0 ;\n"},
		{"hostile row pitch", "ROW a cs 0 0 N DO 2 BY 2 STEP 99999999999999 99999999999999 ;\nCOMPONENTS 0 ;\n"},
		// Rows-only decks derive their lattice at END DESIGN / EOF instead
		// of at COMPONENTS; an inconsistent ROW set must fail there too,
		// not silently parse without a lattice.
		{"inconsistent rows-only deck", "ROW a cs 0 0 N DO 4 BY 1 STEP 10 0 ;\nROW b cs 0 50 N DO 4 BY 1 STEP 20 0 ;\nEND DESIGN\n"},
		{"inconsistent rows-only deck at EOF", "ROW a cs 0 0 N DO 4 BY 1 STEP 10 0 ;\nROW b cs 0 50 N DO 4 BY 1 STEP 20 0 ;\n"},
	}
	for _, c := range cases {
		if _, _, err := readAll(t, c.in); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.in)
		}
	}
}

// TestRowsOnlyDeck checks that a deck with rows but no components still
// yields the derived lattice and one implied layer at EOF.
func TestRowsOnlyDeck(t *testing.T) {
	shapes, hdr, err := readAll(t, "ROW r cs 0 0 N DO 4 BY 2 STEP 10 50 ;\nEND DESIGN\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(shapes) != 0 {
		t.Fatalf("rows-only deck produced shapes %v", shapes)
	}
	want := layout.SiteGrid{SiteW: 10, RowH: 50, Rows: 2, Sites: 4}
	if hdr.Sites == nil || *hdr.Sites != want {
		t.Fatalf("derived lattice %+v, want %+v", hdr.Sites, want)
	}
	if hdr.NumLayers != 1 {
		t.Fatalf("NumLayers %d, want 1", hdr.NumLayers)
	}
}

func TestShapeLimit(t *testing.T) {
	deck := "COMPONENTS 3 ;\n" +
		"- a W0_4x4 + PLACED ( 0 0 ) N ;\n" +
		"- b W0_4x4 + PLACED ( 10 0 ) N ;\n" +
		"- c W0_4x4 + PLACED ( 20 0 ) N ;\n"
	sr := NewShapeReader(strings.NewReader(deck), layio.Limits{MaxShapes: 2})
	var err error
	for err == nil {
		_, err = sr.Next()
	}
	if err == io.EOF {
		t.Fatal("MaxShapes limit not enforced")
	}
}

func TestWriterRejects(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewShapeWriter(&buf, layio.Header{Name: "w", Die: geom.R(0, 0, 10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Write(layio.Shape{Layer: 0, Datatype: 7, Rect: geom.R(0, 0, 1, 1)}); err == nil {
		t.Error("writer accepted a non-component datatype")
	}
	sw2, err := NewShapeWriter(&buf, layio.Header{Name: "w", Die: geom.R(0, 0, 10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw2.Write(layio.Shape{Layer: 0, Datatype: layio.DatatypeWire, Rect: geom.R(5, 5, 5, 9)}); err == nil {
		t.Error("writer accepted an empty rect")
	}
}
