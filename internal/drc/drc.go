// Package drc checks dummy-fill solutions against the fill rule set
// (minimum width, minimum area, minimum spacing, maximum dimension, and
// containment in the feasible fill regions). It is used by tests and by
// the harness to certify that the engine's output is legal before scoring.
package drc

import (
	"fmt"

	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
)

// Kind labels a violation class.
type Kind int

// Violation kinds.
const (
	KindWidth Kind = iota
	KindArea
	KindMaxDim
	KindSpacing
	KindOutsideRegion
	KindWireSpacing
	KindSiteAlign
	KindMasterWidth
	KindPadding
)

func (k Kind) String() string {
	switch k {
	case KindWidth:
		return "min-width"
	case KindArea:
		return "min-area"
	case KindMaxDim:
		return "max-dimension"
	case KindSpacing:
		return "fill-spacing"
	case KindOutsideRegion:
		return "outside-fill-region"
	case KindWireSpacing:
		return "wire-spacing"
	case KindSiteAlign:
		return "site-alignment"
	case KindMasterWidth:
		return "master-width"
	case KindPadding:
		return "site-padding"
	default:
		return "unknown"
	}
}

// Violation is one DRC error.
type Violation struct {
	Kind  Kind
	Layer int
	A     geom.Rect // offending fill
	B     geom.Rect // second shape for pairwise violations (zero otherwise)
}

func (v Violation) String() string {
	return fmt.Sprintf("%s on layer %d: %v vs %v", v.Kind, v.Layer, v.A, v.B)
}

// Check runs all fill DRC checks and returns the violations found.
// checkRegions controls whether containment in the layout's declared fill
// regions is enforced (tile-based baselines synthesize their own regions).
func Check(lay *layout.Layout, sol *layout.Solution, checkRegions bool) []Violation {
	var out []Violation
	r := lay.Rules
	perLayer := sol.PerLayer(len(lay.Layers))
	for li, fills := range perLayer {
		// Geometric per-fill rules.
		for _, f := range fills {
			if f.W() < r.MinWidth || f.H() < r.MinWidth {
				out = append(out, Violation{KindWidth, li, f, geom.Rect{}})
			}
			if f.Area() < r.MinArea {
				out = append(out, Violation{KindArea, li, f, geom.Rect{}})
			}
			if r.MaxFillDim > 0 && (f.W() > r.MaxFillDim || f.H() > r.MaxFillDim) {
				out = append(out, Violation{KindMaxDim, li, f, geom.Rect{}})
			}
		}
		// Fill-to-fill spacing.
		ix := geom.NewIndex(lay.Die, 0)
		for _, f := range fills {
			ix.Insert(f)
		}
		for idA, f := range fills {
			ex := f.Expand(r.MinSpace)
			ix.Query(ex, func(idB int, other geom.Rect) bool {
				if idB <= idA {
					return true // report each pair once
				}
				gx, gy := f.Gap(other)
				if gx < r.MinSpace && gy < r.MinSpace {
					out = append(out, Violation{KindSpacing, li, f, other})
				}
				return true
			})
		}
		// Fill-to-wire spacing.
		wix := geom.NewIndex(lay.Die, 0)
		for _, w := range lay.Layers[li].Wires {
			wix.Insert(w)
		}
		for _, f := range fills {
			if wix.AnyWithin(f, r.MinSpace, -1) {
				out = append(out, Violation{KindWireSpacing, li, f, geom.Rect{}})
			}
		}
		// Containment in feasible fill regions.
		if checkRegions {
			rix := geom.NewIndex(lay.Die, 0)
			for _, fr := range lay.Layers[li].FillRegions {
				rix.Insert(fr)
			}
			for _, f := range fills {
				if rix.OverlapArea(f) != f.Area() {
					out = append(out, Violation{KindOutsideRegion, li, f, geom.Rect{}})
				}
			}
		}
	}
	return out
}

// CheckSites verifies a site-mode (filler-cell placement) solution
// against the layout's placement lattice: every fill must be a legal
// site-grid shape (one row tall, edges on site boundaries, inside the
// lattice), its width must be a library master, and it must keep at
// least pad empty sites of horizontal clearance to every same-row wire
// (the placement padding rule). lib nil means the default library.
// Geometric overlap rules are CheckSites' complement, not its subject —
// run Check too (site layouts use MinSpace 0, under which only true
// overlaps violate spacing).
func CheckSites(lay *layout.Layout, sol *layout.Solution, lib *layout.FillLib, pad int) []Violation {
	var out []Violation
	sg := lay.Sites
	if sg == nil {
		return []Violation{{Kind: KindSiteAlign, Layer: -1}}
	}
	if lib == nil {
		lib = layout.DefaultFillLib()
	}
	keep := int64(pad) * sg.SiteW
	perLayer := sol.PerLayer(len(lay.Layers))
	for li, fills := range perLayer {
		wix := geom.NewIndex(lay.Die, 0)
		for _, w := range lay.Layers[li].Wires {
			wix.Insert(w)
		}
		for _, f := range fills {
			if !sg.Aligned(f) {
				out = append(out, Violation{KindSiteAlign, li, f, geom.Rect{}})
				continue
			}
			if sites := f.W() / sg.SiteW; lib.WidthFor(sites) != sites {
				out = append(out, Violation{KindMasterWidth, li, f, geom.Rect{}})
			}
			if keep > 0 {
				v := f
				wix.Query(f.Expand(keep), func(_ int, w geom.Rect) bool {
					if w.YL >= f.YH || w.YH <= f.YL {
						return true // different row: padding is horizontal only
					}
					if gx, _ := f.Gap(w); gx < keep {
						out = append(out, Violation{KindPadding, li, v, w})
						return false
					}
					return true
				})
			}
		}
	}
	return out
}

// CountByKind tallies violations per kind.
func CountByKind(vs []Violation) map[Kind]int {
	out := map[Kind]int{}
	for _, v := range vs {
		out[v.Kind]++
	}
	return out
}
