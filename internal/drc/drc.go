// Package drc checks dummy-fill solutions against the fill rule set
// (minimum width, minimum area, minimum spacing, maximum dimension, and
// containment in the feasible fill regions). It is used by tests and by
// the harness to certify that the engine's output is legal before scoring.
package drc

import (
	"fmt"

	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
)

// Kind labels a violation class.
type Kind int

// Violation kinds.
const (
	KindWidth Kind = iota
	KindArea
	KindMaxDim
	KindSpacing
	KindOutsideRegion
	KindWireSpacing
)

func (k Kind) String() string {
	switch k {
	case KindWidth:
		return "min-width"
	case KindArea:
		return "min-area"
	case KindMaxDim:
		return "max-dimension"
	case KindSpacing:
		return "fill-spacing"
	case KindOutsideRegion:
		return "outside-fill-region"
	case KindWireSpacing:
		return "wire-spacing"
	default:
		return "unknown"
	}
}

// Violation is one DRC error.
type Violation struct {
	Kind  Kind
	Layer int
	A     geom.Rect // offending fill
	B     geom.Rect // second shape for pairwise violations (zero otherwise)
}

func (v Violation) String() string {
	return fmt.Sprintf("%s on layer %d: %v vs %v", v.Kind, v.Layer, v.A, v.B)
}

// Check runs all fill DRC checks and returns the violations found.
// checkRegions controls whether containment in the layout's declared fill
// regions is enforced (tile-based baselines synthesize their own regions).
func Check(lay *layout.Layout, sol *layout.Solution, checkRegions bool) []Violation {
	var out []Violation
	r := lay.Rules
	perLayer := sol.PerLayer(len(lay.Layers))
	for li, fills := range perLayer {
		// Geometric per-fill rules.
		for _, f := range fills {
			if f.W() < r.MinWidth || f.H() < r.MinWidth {
				out = append(out, Violation{KindWidth, li, f, geom.Rect{}})
			}
			if f.Area() < r.MinArea {
				out = append(out, Violation{KindArea, li, f, geom.Rect{}})
			}
			if r.MaxFillDim > 0 && (f.W() > r.MaxFillDim || f.H() > r.MaxFillDim) {
				out = append(out, Violation{KindMaxDim, li, f, geom.Rect{}})
			}
		}
		// Fill-to-fill spacing.
		ix := geom.NewIndex(lay.Die, 0)
		for _, f := range fills {
			ix.Insert(f)
		}
		for idA, f := range fills {
			ex := f.Expand(r.MinSpace)
			ix.Query(ex, func(idB int, other geom.Rect) bool {
				if idB <= idA {
					return true // report each pair once
				}
				gx, gy := f.Gap(other)
				if gx < r.MinSpace && gy < r.MinSpace {
					out = append(out, Violation{KindSpacing, li, f, other})
				}
				return true
			})
		}
		// Fill-to-wire spacing.
		wix := geom.NewIndex(lay.Die, 0)
		for _, w := range lay.Layers[li].Wires {
			wix.Insert(w)
		}
		for _, f := range fills {
			if wix.AnyWithin(f, r.MinSpace, -1) {
				out = append(out, Violation{KindWireSpacing, li, f, geom.Rect{}})
			}
		}
		// Containment in feasible fill regions.
		if checkRegions {
			rix := geom.NewIndex(lay.Die, 0)
			for _, fr := range lay.Layers[li].FillRegions {
				rix.Insert(fr)
			}
			for _, f := range fills {
				if rix.OverlapArea(f) != f.Area() {
					out = append(out, Violation{KindOutsideRegion, li, f, geom.Rect{}})
				}
			}
		}
	}
	return out
}

// CountByKind tallies violations per kind.
func CountByKind(vs []Violation) map[Kind]int {
	out := map[Kind]int{}
	for _, v := range vs {
		out[v.Kind]++
	}
	return out
}
