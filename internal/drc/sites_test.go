package drc

import (
	"testing"

	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
)

// siteLayout is a 4-row, 20-site lattice with one placed cell occupying
// sites 10–13 of the bottom row.
func siteLayout() *layout.Layout {
	return &layout.Layout{
		Name:   "sites",
		Die:    geom.R(0, 0, 200, 200),
		Window: 100,
		Rules:  layout.Rules{MinWidth: 1, MinSpace: 0, MinArea: 1},
		Sites:  &layout.SiteGrid{SiteW: 10, RowH: 50, Rows: 4, Sites: 20},
		Layers: []*layout.Layer{{
			Wires: []geom.Rect{geom.R(100, 0, 140, 50)},
			FillRegions: []geom.Rect{
				geom.R(0, 0, 100, 50), geom.R(140, 0, 200, 50), geom.R(0, 50, 200, 200),
			},
		}},
	}
}

func TestCheckSitesClean(t *testing.T) {
	lay := siteLayout()
	sol := fills(geom.R(0, 0, 20, 50), geom.R(20, 0, 60, 50), geom.R(150, 100, 160, 150))
	if vs := CheckSites(lay, sol, nil, 0); len(vs) != 0 {
		t.Fatalf("clean site solution flagged: %v", vs)
	}
	// Abutting fillers are also legal under the geometric rules
	// (MinSpace 0 means only true overlaps violate spacing).
	if vs := Check(lay, sol, true); len(vs) != 0 {
		t.Fatalf("clean site solution flagged geometrically: %v", vs)
	}
}

func TestCheckSitesNoLattice(t *testing.T) {
	lay := siteLayout()
	lay.Sites = nil
	vs := CheckSites(lay, fills(), nil, 0)
	if len(vs) != 1 || vs[0].Kind != KindSiteAlign || vs[0].Layer != -1 {
		t.Fatalf("want one layer -1 site-alignment violation, got %v", vs)
	}
}

func TestCheckSitesAlignment(t *testing.T) {
	lay := siteLayout()
	for _, f := range []geom.Rect{
		geom.R(5, 0, 25, 50),    // x off the site pitch
		geom.R(0, 10, 20, 60),   // y off the row pitch
		geom.R(0, 0, 20, 40),    // not one row tall
		geom.R(0, 150, 20, 250), // above the lattice
	} {
		vs := CheckSites(lay, fills(f), nil, 0)
		if kinds(vs)[KindSiteAlign] != 1 {
			t.Errorf("fill %v: want a site-alignment violation, got %v", f, vs)
		}
	}
}

func TestCheckSitesMasterWidth(t *testing.T) {
	lay := siteLayout()
	// 3 sites wide: aligned, but FILL_X{1,2,4,…} has no 3-site master.
	vs := CheckSites(lay, fills(geom.R(0, 0, 30, 50)), nil, 0)
	if kinds(vs)[KindMasterWidth] != 1 {
		t.Fatalf("want a master-width violation, got %v", vs)
	}
	// A library that does stock 3-site fillers accepts it.
	lib := &layout.FillLib{Prefix: "FILL_X", Widths: []int64{1, 2, 3}}
	if vs := CheckSites(lay, fills(geom.R(0, 0, 30, 50)), lib, 0); len(vs) != 0 {
		t.Fatalf("custom library still flagged: %v", vs)
	}
}

func TestCheckSitesPadding(t *testing.T) {
	lay := siteLayout()
	abut := fills(geom.R(80, 0, 100, 50))  // touches the cell at x=100
	spaced := fills(geom.R(70, 0, 90, 50)) // one empty site of clearance
	if vs := CheckSites(lay, abut, nil, 0); len(vs) != 0 {
		t.Fatalf("pad 0 flagged an abutting filler: %v", vs)
	}
	vs := CheckSites(lay, abut, nil, 1)
	if kinds(vs)[KindPadding] != 1 {
		t.Fatalf("pad 1: want a padding violation for %v, got %v", abut.Fills[0], vs)
	}
	if vs := CheckSites(lay, spaced, nil, 1); len(vs) != 0 {
		t.Fatalf("pad 1 flagged a spaced filler: %v", vs)
	}
	// Padding is horizontal, same-row only: a filler directly above the
	// cell is legal at any pad.
	if vs := CheckSites(lay, fills(geom.R(100, 50, 140, 100)), nil, 2); len(vs) != 0 {
		t.Fatalf("pad 2 flagged a filler in the row above: %v", vs)
	}
}
