package drc

import (
	"testing"

	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
)

func drcLayout() *layout.Layout {
	return &layout.Layout{
		Name:   "drc",
		Die:    geom.R(0, 0, 200, 200),
		Window: 100,
		Rules:  layout.Rules{MinWidth: 4, MinSpace: 4, MinArea: 16, MaxFillDim: 50},
		Layers: []*layout.Layer{{
			Wires:       []geom.Rect{geom.R(0, 0, 40, 10)},
			FillRegions: []geom.Rect{geom.R(0, 20, 200, 200)},
		}},
	}
}

func fills(rs ...geom.Rect) *layout.Solution {
	s := &layout.Solution{}
	for _, r := range rs {
		s.Fills = append(s.Fills, layout.Fill{Layer: 0, Rect: r})
	}
	return s
}

func kinds(vs []Violation) map[Kind]int { return CountByKind(vs) }

func TestCleanSolution(t *testing.T) {
	lay := drcLayout()
	sol := fills(geom.R(10, 30, 30, 50), geom.R(40, 30, 60, 50))
	if vs := Check(lay, sol, true); len(vs) != 0 {
		t.Fatalf("clean solution flagged: %v", vs)
	}
}

func TestWidthViolation(t *testing.T) {
	lay := drcLayout()
	sol := fills(geom.R(10, 30, 13, 60)) // width 3 < 4
	vs := Check(lay, sol, true)
	if kinds(vs)[KindWidth] != 1 {
		t.Fatalf("want 1 width violation, got %v", vs)
	}
}

func TestAreaViolation(t *testing.T) {
	lay := drcLayout()
	lay.Rules.MinArea = 100
	sol := fills(geom.R(10, 30, 16, 40)) // 60 < 100, but width/height ok
	vs := Check(lay, sol, true)
	if kinds(vs)[KindArea] != 1 {
		t.Fatalf("want 1 area violation, got %v", vs)
	}
}

func TestMaxDimViolation(t *testing.T) {
	lay := drcLayout()
	sol := fills(geom.R(10, 30, 80, 40)) // width 70 > 50
	vs := Check(lay, sol, true)
	if kinds(vs)[KindMaxDim] != 1 {
		t.Fatalf("want 1 max-dim violation, got %v", vs)
	}
	lay.Rules.MaxFillDim = 0 // unlimited
	if vs := Check(lay, sol, true); kinds(vs)[KindMaxDim] != 0 {
		t.Fatalf("unlimited max dim still flagged: %v", vs)
	}
}

func TestSpacingViolationReportedOnce(t *testing.T) {
	lay := drcLayout()
	sol := fills(geom.R(10, 30, 30, 50), geom.R(32, 30, 52, 50)) // gap 2 < 4
	vs := Check(lay, sol, true)
	if kinds(vs)[KindSpacing] != 1 {
		t.Fatalf("want exactly 1 spacing violation, got %v", vs)
	}
	// Diagonal spacing: gaps (3,3) violate.
	sol = fills(geom.R(10, 30, 30, 50), geom.R(33, 53, 53, 73))
	vs = Check(lay, sol, true)
	if kinds(vs)[KindSpacing] != 1 {
		t.Fatalf("diagonal spacing not caught: %v", vs)
	}
	// Exactly at spacing: legal.
	sol = fills(geom.R(10, 30, 30, 50), geom.R(34, 30, 54, 50))
	if vs := Check(lay, sol, true); len(vs) != 0 {
		t.Fatalf("exact spacing flagged: %v", vs)
	}
}

func TestWireSpacingViolation(t *testing.T) {
	lay := drcLayout()
	sol := fills(geom.R(10, 12, 30, 32)) // 2 above the wire (ends y=10)
	vs := Check(lay, sol, false)
	if kinds(vs)[KindWireSpacing] != 1 {
		t.Fatalf("want 1 wire-spacing violation, got %v", vs)
	}
}

func TestOutsideRegionViolation(t *testing.T) {
	lay := drcLayout()
	sol := fills(geom.R(50, 5, 70, 18)) // partially below y=20 region start
	vs := Check(lay, sol, true)
	if kinds(vs)[KindOutsideRegion] != 1 {
		t.Fatalf("want 1 outside-region violation, got %v", vs)
	}
	// With region checking off it is not reported.
	vs = Check(lay, sol, false)
	if kinds(vs)[KindOutsideRegion] != 0 {
		t.Fatalf("region check not disabled: %v", vs)
	}
}

func TestKindString(t *testing.T) {
	for k := KindWidth; k <= KindWireSpacing; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind must stringify to unknown")
	}
	v := Violation{Kind: KindWidth, Layer: 2, A: geom.R(0, 0, 1, 1)}
	if v.String() == "" {
		t.Fatal("violation must stringify")
	}
}

func TestMultiLayerIndependence(t *testing.T) {
	lay := drcLayout()
	lay.Layers = append(lay.Layers, &layout.Layer{
		FillRegions: []geom.Rect{geom.R(0, 0, 200, 200)},
	})
	// Two fills stacked on different layers: no same-layer spacing issue.
	sol := &layout.Solution{Fills: []layout.Fill{
		{Layer: 0, Rect: geom.R(10, 30, 30, 50)},
		{Layer: 1, Rect: geom.R(10, 30, 30, 50)},
	}}
	if vs := Check(lay, sol, true); len(vs) != 0 {
		t.Fatalf("cross-layer stacking flagged: %v", vs)
	}
}
