package fill

import (
	"context"
	"errors"
	"fmt"
	"slices"

	"dummyfill/internal/dlp"
	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
)

// sizeScratch bundles the reusable per-worker state of window sizing: the
// LP solver (warm-started across the windows a worker processes when
// Options.NewSolver is used), the LP arena, the spatial indexes and every
// per-cell buffer of sizingPass. One worker sizes hundreds of windows over
// thousands of passes; with the scratch the whole loop performs no
// steady-state allocation. A sizeScratch is not safe for concurrent use.
type sizeScratch struct {
	solve    dlp.PSolver
	newSolve func() dlp.PSolver
	p        dlp.Problem

	cells   []cell
	wireCov []geom.AreaTable
	wclips  []geom.Rect
	fillIx  []*geom.Index

	// Per-layer accumulators.
	area, surplus, totalCross []int64
	ovStep, plainStep         []int64
	acc                       []budgetAcc

	// Per-cell buffers.
	ov, minDims []int64
	conflicted  []bool
	drop        []bool
	idx         []int
	targets     []int64
	selArea     []int64
}

// budgetAcc accumulates the per-pass shrink-budget classes of one layer.
type budgetAcc struct {
	ovCross, plainCross int64 // Σ cross dims by class
	ovRemovable         int64 // max area the ov class can shed
}

// newSizeScratch builds a scratch with the solver factory resolved from
// opts. The solver itself (and its arenas) is created lazily on first use,
// so scratches for workers that only meet empty windows stay cheap.
func newSizeScratch(opts Options) *sizeScratch {
	return &sizeScratch{newSolve: opts.newSolver}
}

// solver returns the scratch's warm solver, creating it on first use.
func (sc *sizeScratch) solver() dlp.PSolver {
	if sc.solve == nil {
		sc.solve = sc.newSolve()
	}
	return sc.solve
}

// layerSlices resizes the per-layer buffers to nl layers.
func (sc *sizeScratch) layerSlices(nl int) {
	sc.area = growI64(sc.area, nl)
	sc.surplus = growI64(sc.surplus, nl)
	sc.totalCross = growI64(sc.totalCross, nl)
	sc.ovStep = growI64(sc.ovStep, nl)
	sc.plainStep = growI64(sc.plainStep, nl)
	if cap(sc.acc) < nl {
		sc.acc = make([]budgetAcc, nl)
	}
	sc.acc = sc.acc[:nl]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// indexes resizes dst to nl indexes over bounds, reusing Index arenas.
func indexes(dst []*geom.Index, nl int, bounds geom.Rect) []*geom.Index {
	if cap(dst) < nl {
		dst = append(dst[:cap(dst)], make([]*geom.Index, nl-cap(dst))...)
	}
	dst = dst[:nl]
	for l := range dst {
		if dst[l] == nil {
			dst[l] = geom.NewIndex(bounds, 0)
		} else {
			dst[l].Reset(bounds, 0)
		}
	}
	return dst
}

// sizeWindowScratch shrinks the selected candidates of one window so that
// each layer's fill area converges to its target area while overlay with
// neighbouring layers is minimized (§3.3). The non-convex problem (Eqn. 9)
// is relaxed by alternating directions: with heights fixed, widths are the
// solution of a difference-constraint LP (Eqns. 10–13) solved exactly via
// dual min-cost flow (Eqn. 14–16); then the roles swap.
//
// targets[l] is the desired fill area (not density) for layer l within
// this window. Returns the surviving sized fills; the slice aliases the
// caller-owned scratch and is only valid until the next call with the
// same scratch. Solving uses the scratch's own (possibly warm-started)
// solver.
func sizeWindowScratch(ctx context.Context, w *window, lay *layout.Layout, targets []int64, opts Options, sc *sizeScratch) ([]cell, error) {
	return sizeWindowWith(ctx, w, lay, targets, opts, sc, sc.solver())
}

// sizeWindowWith is sizeWindowScratch with an explicit LP solver — the
// hook the engine's fallback chain uses to retry a window on a different
// tier without disturbing the scratch's warm solver.
func sizeWindowWith(ctx context.Context, w *window, lay *layout.Layout, targets []int64, opts Options, sc *sizeScratch, solve dlp.PSolver) ([]cell, error) {
	if len(w.sel) == 0 {
		return nil, nil
	}
	rules := lay.Rules
	cells := append(sc.cells[:0], w.sel...)
	sc.cells = cells

	nl := len(lay.Layers)
	sc.layerSlices(nl)

	// Deletion pre-pass: while a layer's selected area exceeds its target
	// by at least the area of its worst candidate, drop that candidate
	// entirely. Fewer fills → smaller GDSII, and the sizing LP converges
	// from a closer starting point.
	cells = pruneSurplusScratch(cells, targets, nl, sc)

	// Wire coverage tables per layer, reused across passes. The clips are
	// materialized into scratch from the wire indices recorded during
	// preparation (only the wires incident to this window — no rescan of
	// the layout's wire list), and the banded area table answers each
	// per-cell overlay query exactly without a union sweep.
	if cap(sc.wireCov) < nl {
		sc.wireCov = make([]geom.AreaTable, nl)
	}
	sc.wireCov = sc.wireCov[:nl]
	for l := 0; l < nl; l++ {
		sc.wclips = w.wireClips(sc.wclips, lay, l)
		sc.wireCov[l].Build(sc.wclips)
	}

	for pass := 0; pass < opts.MaxSizingPasses; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		horizontal := pass%2 == 0
		changed, err := sizingPass(ctx, cells, w, lay, targets, horizontal, opts, sc, solve)
		for dropN := 1; errors.Is(err, dlp.ErrInfeasible); dropN *= 2 {
			// The spacing chains cannot fit: delete the lowest-quality
			// conflicted cells, doubling the batch on every retry.
			cells, err = dropCrowded(cells, dropN, rules, sc)
			if err != nil {
				return nil, err
			}
			changed, err = sizingPass(ctx, cells, w, lay, targets, horizontal, opts, sc, solve)
		}
		if err != nil {
			return nil, err
		}
		if !changed && pass >= 2 {
			break
		}
	}
	// Drop cells that have been shrunk into illegality (defensive; the
	// bounds should prevent this).
	out := cells[:0]
	for _, c := range cells {
		r := c.rect
		if r.W() >= rules.MinWidth && r.H() >= rules.MinWidth && r.Area() >= rules.MinArea {
			out = append(out, c)
		}
	}
	return out, nil
}

// pruneSurplus removes lowest-quality cells while a layer remains over
// target even without them.
func pruneSurplus(cells []cell, targets []int64, nl int) []cell {
	return pruneSurplusScratch(cells, targets, nl, &sizeScratch{})
}

func pruneSurplusScratch(cells []cell, targets []int64, nl int, sc *sizeScratch) []cell {
	area := growI64(sc.area, nl)
	sc.area = area
	for _, c := range cells {
		area[c.layer] += c.rect.Area()
	}
	// Sort ascending by quality so the worst are considered first; keep
	// original order otherwise (stable for determinism).
	idx := sc.idx[:0]
	for i := range cells {
		idx = append(idx, i)
	}
	sc.idx = idx
	slices.SortStableFunc(idx, func(a, b int) int {
		switch {
		case cells[a].quality < cells[b].quality:
			return -1
		case cells[a].quality > cells[b].quality:
			return 1
		}
		return 0
	})
	drop := growBool(sc.drop, len(cells))
	sc.drop = drop
	for _, i := range idx {
		l := cells[i].layer
		a := cells[i].rect.Area()
		if area[l]-a >= targets[l] {
			drop[i] = true
			area[l] -= a
		}
	}
	out := cells[:0]
	for i, c := range cells {
		if !drop[i] {
			out = append(out, c)
		}
	}
	return out
}

// sizingPass runs one directional LP over all cells in the window,
// resizing cells in place on success. The solution is re-validated
// against the LP before any geometry is touched, so a misbehaving solver
// cannot corrupt the window — it can only fail it.
func sizingPass(ctx context.Context, cells []cell, w *window, lay *layout.Layout, targets []int64, horizontal bool, opts Options, sc *sizeScratch, solve dlp.PSolver) (bool, error) {
	nl := len(lay.Layers)
	rules := lay.Rules
	n := len(cells)
	if n == 0 {
		return false, nil
	}

	// Current per-layer areas and neighbour-shape indexes (wires + fills
	// of the adjacent layers) for overlay linearization.
	area := growI64(sc.area, nl)
	sc.area = area
	sc.fillIx = indexes(sc.fillIx, nl, w.rect)
	fillIx, wireCov := sc.fillIx, sc.wireCov
	for _, c := range cells {
		area[c.layer] += c.rect.Area()
		fillIx[c.layer].Insert(c.rect)
	}
	surplus := growI64(sc.surplus, nl)
	totalCross := growI64(sc.totalCross, nl) // Σ of cross dimension per layer
	sc.surplus, sc.totalCross = surplus, totalCross
	for l := range surplus {
		surplus[l] = area[l] - targets[l]
	}
	for _, c := range cells {
		if horizontal {
			totalCross[c.layer] += c.rect.H()
		} else {
			totalCross[c.layer] += c.rect.W()
		}
	}

	// Per-cell overlay with neighbour layers at current geometry.
	ov := growI64(sc.ov, n)
	sc.ov = ov
	// Fills of one layer are pairwise disjoint (selection enforces spacing
	// and sizing only shrinks), so their overlap is a plain intersection
	// sum; wire coverage comes from the prebuilt summed-area tables.
	for i, c := range cells {
		var o int64
		if c.layer > 0 {
			o += fillIx[c.layer-1].OverlapAreaDisjoint(c.rect) + wireCov[c.layer-1].OverlapArea(c.rect)
		}
		if c.layer+1 < nl {
			o += fillIx[c.layer+1].OverlapAreaDisjoint(c.rect) + wireCov[c.layer+1].OverlapArea(c.rect)
		}
		ov[i] = o
	}

	// Cells involved in a spacing conflict must retain shrink freedom even
	// when their layer is under target, or the spacing constraints below
	// could be infeasible against frozen sizes.
	conflicted := growBool(sc.conflicted, n)
	sc.conflicted = conflicted
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if cells[i].layer != cells[j].layer {
				continue
			}
			gx, gy := cells[i].rect.Gap(cells[j].rect)
			if gx < rules.MinSpace && gy < rules.MinSpace {
				conflicted[i] = true
				conflicted[j] = true
			}
		}
	}

	// Per-pass shrink budget (§3.3.3): only layers above target shed area,
	// and each pass removes at most ≈ the surplus, so fill density cannot
	// keep drifting away from the target once reached. Overlay-carrying
	// cells absorb the budget first; plain cells only shed what remains.
	minDims := growI64(sc.minDims, n)
	sc.minDims = minDims
	acc := sc.acc
	for l := range acc {
		acc[l] = budgetAcc{}
	}
	for i, c := range cells {
		lo, hi, crossDim := edges(c.rect, horizontal)
		dim := hi - lo
		md := minDimFor(rules, crossDim)
		if md > dim {
			md = dim // already at/below the legal minimum: freeze size
		}
		minDims[i] = md
		if ov[i] > 0 {
			acc[c.layer].ovCross += crossDim
			acc[c.layer].ovRemovable += (dim - md) * crossDim
		} else {
			acc[c.layer].plainCross += crossDim
		}
	}
	ovStep := growI64(sc.ovStep, nl)
	plainStep := growI64(sc.plainStep, nl)
	sc.ovStep, sc.plainStep = ovStep, plainStep
	for l := 0; l < nl; l++ {
		s := surplus[l]
		if s <= 0 {
			continue
		}
		if acc[l].ovRemovable >= s {
			// Overlay cells alone can cover the surplus.
			if acc[l].ovCross > 0 {
				ovStep[l] = (s + acc[l].ovCross - 1) / acc[l].ovCross
			}
		} else {
			ovStep[l] = 1 << 40 // full shrink for ov cells
			if rest := s - acc[l].ovRemovable; rest > 0 && acc[l].plainCross > 0 {
				plainStep[l] = (rest + acc[l].plainCross - 1) / acc[l].plainCross
			}
		}
	}

	// Build the difference-constraint LP: two variables per cell (low and
	// high edge in the active direction).
	p := &sc.p
	p.Reset(2 * n)
	for i, c := range cells {
		lo, hi, crossDim := edges(c.rect, horizontal)
		dim := hi - lo
		minDim := minDims[i]
		step := plainStep[c.layer]
		if ov[i] > 0 {
			step = ovStep[c.layer]
		}
		if conflicted[i] {
			// Spacing resolution needs freedom regardless of the budget.
			step = dim - minDim
		}
		// Lithography aspect rule (Options.MaxAspect): cells longer than
		// MaxAspect×cross get enough freedom to shrink to the cap, rule
		// before density.
		var aspectCap int64
		if opts.MaxAspect > 0 {
			aspectCap = int64(opts.MaxAspect * float64(crossDim))
			if aspectCap < minDim {
				aspectCap = 0 // cell too thin to ever satisfy the rule
			} else if dim > aspectCap {
				if need := dim - aspectCap; step < need {
					step = need
				}
			}
		}
		if step > dim-minDim {
			step = dim - minDim
		}
		minKeep := dim - step
		if minKeep < minDim {
			minKeep = minDim
		}
		// Variable bounds: edges stay within the original cell.
		p.Lo[2*i] = lo
		p.Hi[2*i] = hi - minDim
		p.Lo[2*i+1] = lo + minDim
		p.Hi[2*i+1] = hi
		// Width constraint: high − low ≥ minKeep.
		p.AddConstraint(2*i+1, 2*i, minKeep)
		// Aspect cap as a difference constraint: dim ≤ aspectCap, i.e.
		// low − high ≥ −aspectCap.
		if aspectCap > 0 && aspectCap < dim {
			p.AddConstraint(2*i, 2*i+1, -aspectCap)
		}
		// Cost: density-gap slope ± crossDim plus overlay slope η·ov/dim.
		var cost int64
		switch {
		case surplus[c.layer] > 0:
			cost = crossDim
		case surplus[c.layer] < 0:
			cost = -crossDim
		}
		if dim > 0 {
			cost += opts.Eta * (ov[i] / dim)
		}
		p.C[2*i+1] = cost
		p.C[2*i] = -cost
	}

	// Spacing constraints between same-layer cells that are close in the
	// cross direction and separable in the active direction. Each
	// unordered pair is visited exactly once, so no dedup is needed.
	spacingPairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if cells[i].layer != cells[j].layer {
				continue
			}
			gx, gy := cells[i].rect.Gap(cells[j].rect)
			if gx >= rules.MinSpace || gy >= rules.MinSpace {
				continue // already legal and shrink-only keeps it so
			}
			var lowIdx, highIdx int
			var sep bool
			if horizontal {
				switch {
				case cells[i].rect.XH <= cells[j].rect.XL:
					lowIdx, highIdx, sep = i, j, true
				case cells[j].rect.XH <= cells[i].rect.XL:
					lowIdx, highIdx, sep = j, i, true
				}
			} else {
				switch {
				case cells[i].rect.YH <= cells[j].rect.YL:
					lowIdx, highIdx, sep = i, j, true
				case cells[j].rect.YH <= cells[i].rect.YL:
					lowIdx, highIdx, sep = j, i, true
				}
			}
			if !sep {
				continue // the other pass will separate this pair
			}
			// low edge of the right/top cell minus high edge of the
			// left/bottom cell ≥ MinSpace.
			p.AddConstraint(2*highIdx, 2*lowIdx+1, rules.MinSpace)
			spacingPairs++
		}
	}

	x, _, err := solve(ctx, p)
	if err != nil {
		if errors.Is(err, dlp.ErrInfeasible) && spacingPairs > 0 {
			// The spacing chain cannot fit within the shrink bounds; the
			// caller deletes crowded cells and retries.
			return false, err
		}
		return false, fmt.Errorf("fill: sizing LP failed: %w", err)
	}
	if err := p.Check(x); err != nil {
		return false, fmt.Errorf("fill: solver returned invalid solution: %w", err)
	}

	changed := false
	for i := range cells {
		r := cells[i].rect
		if horizontal {
			r.XL, r.XH = x[2*i], x[2*i+1]
		} else {
			r.YL, r.YH = x[2*i], x[2*i+1]
		}
		if r != cells[i].rect {
			changed = true
			cells[i].rect = r
		}
	}
	return changed, nil
}

// edges extracts the (low, high) edges in the active direction and the
// fixed cross dimension.
func edges(r geom.Rect, horizontal bool) (lo, hi, cross int64) {
	if horizontal {
		return r.XL, r.XH, r.H()
	}
	return r.YL, r.YH, r.W()
}

// minDimFor is Eqn. (12): the minimum legal dimension given the fixed
// cross dimension — max(wm, ceil(am/cross)).
func minDimFor(rules layout.Rules, cross int64) int64 {
	m := rules.MinWidth
	if cross > 0 {
		if byArea := (rules.MinArea + cross - 1) / cross; byArea > m {
			m = byArea
		}
	}
	return m
}

// dropCrowded deletes the dropN lowest-quality cells that participate in
// a spacing conflict (ties broken by index for determinism).
func dropCrowded(cells []cell, dropN int, rules layout.Rules, sc *sizeScratch) ([]cell, error) {
	conflictIdx := sc.idx[:0]
	for i := range cells {
		for j := range cells {
			if i == j || cells[i].layer != cells[j].layer {
				continue
			}
			gx, gy := cells[i].rect.Gap(cells[j].rect)
			if gx < rules.MinSpace && gy < rules.MinSpace {
				conflictIdx = append(conflictIdx, i)
				break
			}
		}
	}
	sc.idx = conflictIdx
	if len(conflictIdx) == 0 {
		return nil, fmt.Errorf("fill: sizing infeasible with no spacing conflicts")
	}
	slices.SortFunc(conflictIdx, func(a, b int) int {
		switch {
		case cells[a].quality < cells[b].quality:
			return -1
		case cells[a].quality > cells[b].quality:
			return 1
		}
		return a - b
	})
	if dropN > len(conflictIdx) {
		dropN = len(conflictIdx)
	}
	drop := growBool(sc.drop, len(cells))
	sc.drop = drop
	for _, i := range conflictIdx[:dropN] {
		drop[i] = true
	}
	next := cells[:0]
	for i, c := range cells {
		if !drop[i] {
			next = append(next, c)
		}
	}
	return next, nil
}
