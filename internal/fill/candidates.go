package fill

import (
	"sort"

	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
)

// cell is one candidate fill rectangle inside a window.
type cell struct {
	rect    geom.Rect
	layer   int
	quality float64 // Eqn. (8) score, set during selection
	shared  bool    // lies in the region free on the neighbour layer too
}

// winLayer is the per-window per-layer working state.
type winLayer struct {
	wireArea int64       // union wire area clipped to the window
	free     []geom.Rect // feasible fill region pieces clipped to window
	cells    []cell      // tiled candidate cells (all layers' cells live in window.sel after selection)
}

// window is the unit of independent work.
type window struct {
	rect   geom.Rect
	layers []winLayer
	sel    []cell // selected candidates across layers (output of Alg. 1)
}

// TileRegion splits a free rectangle into candidate fill cells: a uniform
// grid with pitch cell+MinSpace, cells capped at MaxFillDim and no smaller
// than MinWidth/MinArea. Slivers that cannot host a legal fill are
// dropped. Exported for reuse by the baseline fillers.
func TileRegion(r geom.Rect, rules layout.Rules) []geom.Rect {
	maxDim := rules.MaxFillDim
	if maxDim <= 0 {
		maxDim = 16 * rules.MinWidth
	}
	w, h := r.W(), r.H()
	if w < rules.MinWidth || h < rules.MinWidth || w*h < rules.MinArea {
		return nil
	}
	// Smallest cell counts keeping every cell within maxDim.
	nx := int((w + rules.MinSpace + maxDim + rules.MinSpace - 1) / (maxDim + rules.MinSpace))
	if nx < 1 {
		nx = 1
	}
	ny := int((h + rules.MinSpace + maxDim + rules.MinSpace - 1) / (maxDim + rules.MinSpace))
	if ny < 1 {
		ny = 1
	}
	// Cell dimensions after reserving the spacing gutters.
	cw := (w - int64(nx-1)*rules.MinSpace) / int64(nx)
	ch := (h - int64(ny-1)*rules.MinSpace) / int64(ny)
	if cw < rules.MinWidth || ch < rules.MinWidth || cw*ch < rules.MinArea {
		return nil
	}
	out := make([]geom.Rect, 0, nx*ny)
	y := r.YL
	for j := 0; j < ny; j++ {
		x := r.XL
		for i := 0; i < nx; i++ {
			out = append(out, geom.Rect{XL: x, YL: y, XH: x + cw, YH: y + ch})
			x += cw + rules.MinSpace
		}
		y += ch + rules.MinSpace
	}
	return out
}

// coverageBy returns the area of r covered by the union of the rects in
// ix.
func coverageBy(ix *geom.Index, r geom.Rect) int64 { return ix.OverlapArea(r) }

// selectCandidates runs Alg. 1 on one window: odd layers first (preferring
// cells that are free on the neighbour layer too — "Region 3" of
// Figs. 4/5), then even layers ranked by the quality score
// q = −overlay/area + γ·area/aw (Eqn. 8). dt are the per-layer target
// densities; selection stops once the window density reaches λ·dt.
func (w *window) selectCandidates(lay *layout.Layout, dt []float64, lambda, gamma float64) {
	aw := float64(w.rect.Area())
	if aw == 0 {
		return
	}
	nl := len(w.layers)
	w.sel = w.sel[:0]

	// Per-layer indexes of already-selected fills, used for overlay
	// estimation of even layers.
	selIx := make([]*geom.Index, nl)
	for l := range selIx {
		selIx[l] = geom.NewIndex(w.rect, 0)
	}
	// Wire indexes per layer (window-clipped).
	wireIx := make([]*geom.Index, nl)
	for l := 0; l < nl; l++ {
		wireIx[l] = geom.NewIndex(w.rect, 0)
		for _, wr := range lay.Layers[l].Wires {
			c := wr.Intersect(w.rect)
			if !c.Empty() {
				wireIx[l].Insert(c)
			}
		}
	}
	// Free-region indexes per layer for the shared-region test.
	freeIx := make([]*geom.Index, nl)
	for l := 0; l < nl; l++ {
		freeIx[l] = geom.NewIndex(w.rect, 0)
		for _, fr := range w.layers[l].free {
			freeIx[l].Insert(fr)
		}
	}

	assign := func(l int, cells []cell) {
		target := lambda * dt[l] * aw
		cur := float64(w.layers[l].wireArea)
		for _, c := range cells {
			if cur >= target {
				break
			}
			w.sel = append(w.sel, c)
			selIx[l].Insert(c.rect)
			cur += float64(c.rect.Area())
		}
	}
	// assignSpaced additionally skips cells violating spacing against
	// already-selected same-layer cells (the two even-layer batches come
	// from different tilings and may collide).
	assignSpaced := func(l int, cells []cell) {
		target := lambda * dt[l] * aw
		cur := float64(w.layers[l].wireArea)
		for _, c := range cells {
			if cur >= target {
				break
			}
			if selIx[l].AnyWithin(c.rect, lay.Rules.MinSpace, -1) {
				continue
			}
			w.sel = append(w.sel, c)
			selIx[l].Insert(c.rect)
			cur += float64(c.rect.Area())
		}
	}

	// Pass 1: odd layers (1-based odd ⇒ 0-based even indices 0,2,4,…).
	for l := 0; l < nl; l += 2 {
		cells := make([]cell, len(w.layers[l].cells))
		copy(cells, w.layers[l].cells)
		dg := dt[l] - float64(w.layers[l].wireArea)/aw
		useShared := false
		if l+1 < nl {
			dg1 := dt[l+1] - float64(w.layers[l+1].wireArea)/aw
			var sharedArea int64
			for i := range cells {
				cov := coverageBy(freeIx[l+1], cells[i].rect)
				cells[i].shared = cov == cells[i].rect.Area()
				if cells[i].shared {
					sharedArea += cells[i].rect.Area()
				}
			}
			need := (maxF(dg, 0) + maxF(dg1, 0)) * aw
			useShared = float64(sharedArea) >= need
		}
		_ = dg
		if useShared {
			// Zero-overlay case: prefer cells free on both layers, larger
			// first within each class.
			sort.Slice(cells, func(a, b int) bool {
				if cells[a].shared != cells[b].shared {
					return cells[a].shared
				}
				return cells[a].rect.Area() > cells[b].rect.Area()
			})
		} else {
			// Non-zero overlay case: plain size order (Alg. 1 line 16).
			sort.Slice(cells, func(a, b int) bool {
				return cells[a].rect.Area() > cells[b].rect.Area()
			})
		}
		for i := range cells {
			cells[i].quality = gamma * float64(cells[i].rect.Area()) / aw
			if cells[i].shared {
				cells[i].quality += 1 // zero-overlay bonus keeps them preferred later
			}
		}
		assign(l, cells)
	}

	// Pass 2: even layers (0-based odd indices 1,3,5,…). Two candidate
	// batches: first, cells carved from the region with no shape above or
	// below (true Region 3 of Figs. 4/5 — zero overlay by construction);
	// then the ordinary grid cells in quality order (Eqn. 8) to cover the
	// remaining density demand. Grid cells that would violate spacing
	// against already-selected same-layer cells are skipped.
	inset := (lay.Rules.MinSpace + 1) / 2
	for l := 1; l < nl; l += 2 {
		var neighbors []geom.Rect
		collect := func(ix *geom.Index) {
			ix.Query(w.rect, func(_ int, r geom.Rect) bool {
				neighbors = append(neighbors, r)
				return true
			})
		}
		if l-1 >= 0 {
			collect(selIx[l-1])
			collect(wireIx[l-1])
		}
		if l+1 < nl {
			collect(selIx[l+1])
			collect(wireIx[l+1])
		}
		var zero []cell
		for _, piece := range w.layers[l].free {
			vertical := piece.H() > piece.W()
			for _, zr := range geom.DifferenceOriented(piece, neighbors, vertical) {
				for _, r := range TileRegion(zr.Expand(-inset), lay.Rules) {
					zero = append(zero, cell{rect: r, layer: l, shared: true})
				}
			}
		}
		for i := range zero {
			// Zero overlay: quality is the pure area term plus a bonus so
			// these always outrank overlapped cells downstream.
			zero[i].quality = 1 + gamma*float64(zero[i].rect.Area())/aw
		}
		grid := make([]cell, len(w.layers[l].cells))
		copy(grid, w.layers[l].cells)
		for i := range grid {
			var ov int64
			if l-1 >= 0 {
				ov += coverageBy(selIx[l-1], grid[i].rect)
				ov += coverageBy(wireIx[l-1], grid[i].rect)
			}
			if l+1 < nl {
				ov += coverageBy(selIx[l+1], grid[i].rect)
				ov += coverageBy(wireIx[l+1], grid[i].rect)
			}
			area := float64(grid[i].rect.Area())
			grid[i].quality = -float64(ov)/area + gamma*area/aw
		}
		sort.Slice(zero, func(a, b int) bool { return zero[a].rect.Area() > zero[b].rect.Area() })
		sort.Slice(grid, func(a, b int) bool { return grid[a].quality > grid[b].quality })
		// Case I (Fig. 4): the zero-overlay region alone meets the demand —
		// fill entirely inside it. Case II (Fig. 5): it cannot — use the
		// full grid in quality order instead (mixing the two tilings wastes
		// area on spacing conflicts between them).
		var zeroArea int64
		for _, c := range zero {
			zeroArea += c.rect.Area()
		}
		if float64(w.layers[l].wireArea+zeroArea) >= lambda*dt[l]*aw {
			assignSpaced(l, zero)
		} else {
			assignSpaced(l, grid)
		}
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
