package fill

import (
	"sort"
	"sync"

	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
)

// cell is one candidate fill rectangle inside a window.
type cell struct {
	rect    geom.Rect
	layer   int
	quality float64 // Eqn. (8) score, set during selection
	shared  bool    // lies in the region free on the neighbour layer too
}

// winLayer is the per-window per-layer working state. Candidate cells are
// not stored here: they are tiled on demand inside selectCandidates (into
// pooled scratch) and only the selected ones survive in window.sel, so a
// run never materializes every candidate of every window at once.
type winLayer struct {
	wireArea int64       // union wire area clipped to the window
	free     []geom.Rect // feasible fill region pieces clipped to window
	// wires holds the indices (into the layer's wire list) of the wires
	// whose clip to this window is non-empty. Stages that need the clipped
	// geometry re-derive it into scratch via window.wireClips — 4 bytes per
	// incidence retained instead of a rectangle.
	wires []int32
}

// window is the unit of independent work.
type window struct {
	rect   geom.Rect
	layers []winLayer
	sel    []cell // selected candidates across layers (output of Alg. 1)
}

// wireClips materializes layer l's window-clipped wire rectangles from the
// indices recorded during preparation, appending into dst[:0]. The clips
// come out in input (index) order, matching what preparation saw, so every
// union-level computation over them is deterministic.
func (w *window) wireClips(dst []geom.Rect, lay *layout.Layout, l int) []geom.Rect {
	dst = dst[:0]
	wires := lay.Layers[l].Wires
	for _, si := range w.layers[l].wires {
		if c := wires[si].Intersect(w.rect); !c.Empty() {
			dst = append(dst, c)
		}
	}
	return dst
}

// tileGrid computes the tiling of r: the cell counts and cell dimensions
// of the uniform grid with pitch cell+MinSpace, cells capped at MaxFillDim
// and no smaller than MinWidth/MinArea. ok is false when r cannot host a
// legal cell.
func tileGrid(r geom.Rect, rules layout.Rules) (nx, ny int, cw, ch int64, ok bool) {
	maxDim := rules.MaxFillDim
	if maxDim <= 0 {
		maxDim = 16 * rules.MinWidth
	}
	w, h := r.W(), r.H()
	if w < rules.MinWidth || h < rules.MinWidth || w*h < rules.MinArea {
		return 0, 0, 0, 0, false
	}
	// Smallest cell counts keeping every cell within maxDim.
	nx = int((w + rules.MinSpace + maxDim + rules.MinSpace - 1) / (maxDim + rules.MinSpace))
	if nx < 1 {
		nx = 1
	}
	ny = int((h + rules.MinSpace + maxDim + rules.MinSpace - 1) / (maxDim + rules.MinSpace))
	if ny < 1 {
		ny = 1
	}
	// Cell dimensions after reserving the spacing gutters.
	cw = (w - int64(nx-1)*rules.MinSpace) / int64(nx)
	ch = (h - int64(ny-1)*rules.MinSpace) / int64(ny)
	if cw < rules.MinWidth || ch < rules.MinWidth || cw*ch < rules.MinArea {
		return 0, 0, 0, 0, false
	}
	return nx, ny, cw, ch, true
}

// TileRegion splits a free rectangle into candidate fill cells: a uniform
// grid with pitch cell+MinSpace, cells capped at MaxFillDim and no smaller
// than MinWidth/MinArea. Slivers that cannot host a legal fill are
// dropped. Exported for reuse by the baseline fillers.
func TileRegion(r geom.Rect, rules layout.Rules) []geom.Rect {
	nx, ny, cw, ch, ok := tileGrid(r, rules)
	if !ok {
		return nil
	}
	out := make([]geom.Rect, 0, nx*ny)
	y := r.YL
	for j := 0; j < ny; j++ {
		x := r.XL
		for i := 0; i < nx; i++ {
			out = append(out, geom.Rect{XL: x, YL: y, XH: x + cw, YH: y + ch})
			x += cw + rules.MinSpace
		}
		y += ch + rules.MinSpace
	}
	return out
}

// TileRegionArea returns the total candidate area TileRegion would tile
// from r — nx·ny cells of cw×ch — without materializing the cells. Used
// by the first planning round to bound achievable density in O(1) per
// free piece.
func TileRegionArea(r geom.Rect, rules layout.Rules) int64 {
	nx, ny, cw, ch, ok := tileGrid(r, rules)
	if !ok {
		return 0
	}
	return int64(nx) * int64(ny) * cw * ch
}

// appendCells tiles r and appends the cells (layer l, zero quality) to
// dst, in the same row-major order as TileRegion.
func appendCells(dst []cell, r geom.Rect, l int, rules layout.Rules) []cell {
	nx, ny, cw, ch, ok := tileGrid(r, rules)
	if !ok {
		return dst
	}
	y := r.YL
	for j := 0; j < ny; j++ {
		x := r.XL
		for i := 0; i < nx; i++ {
			dst = append(dst, cell{rect: geom.Rect{XL: x, YL: y, XH: x + cw, YH: y + ch}, layer: l})
			x += cw + rules.MinSpace
		}
		y += ch + rules.MinSpace
	}
	return dst
}

// candScratch bundles the reusable per-worker state of candidate
// generation: the per-layer spatial index of already-selected cells, the
// summed-area coverage tables over the window's static shape sets (wires,
// free regions) and every per-batch cell buffer. Pooled via candPool so a
// streaming run performs no steady-state allocation here beyond the
// selected cells themselves.
type candScratch struct {
	selIx   []*geom.Index
	wireCov []geom.AreaTable
	freeCov []geom.AreaTable
	wclips  [][]geom.Rect
	batch   []cell
	zero    []cell
	neigh   []geom.Rect
}

var candPool = sync.Pool{New: func() any { return new(candScratch) }}

// layerSlices resizes the per-layer members to nl layers, resetting the
// selection indexes over the window bounds.
func (cs *candScratch) layerSlices(nl int, bounds geom.Rect) {
	if cap(cs.selIx) < nl {
		cs.selIx = append(cs.selIx[:cap(cs.selIx)], make([]*geom.Index, nl-cap(cs.selIx))...)
	}
	cs.selIx = cs.selIx[:nl]
	for l := range cs.selIx {
		if cs.selIx[l] == nil {
			cs.selIx[l] = geom.NewIndex(bounds, 0)
		} else {
			cs.selIx[l].Reset(bounds, 0)
		}
	}
	if cap(cs.wireCov) < nl {
		cs.wireCov = make([]geom.AreaTable, nl)
	}
	cs.wireCov = cs.wireCov[:nl]
	if cap(cs.freeCov) < nl {
		cs.freeCov = make([]geom.AreaTable, nl)
	}
	cs.freeCov = cs.freeCov[:nl]
	if cap(cs.wclips) < nl {
		cs.wclips = append(cs.wclips[:cap(cs.wclips)], make([][]geom.Rect, nl-cap(cs.wclips))...)
	}
	cs.wclips = cs.wclips[:nl]
}

// selectCandidates runs Alg. 1 on one window using pooled scratch. See
// selectCandidatesScratch.
func (w *window) selectCandidates(lay *layout.Layout, dt []float64, lambda, gamma float64) {
	cs := candPool.Get().(*candScratch)
	w.selectCandidatesScratch(lay, dt, lambda, gamma, cs)
	candPool.Put(cs)
}

// selectCandidatesScratch runs Alg. 1 on one window: odd layers first
// (preferring cells that are free on the neighbour layer too — "Region 3"
// of Figs. 4/5), then even layers ranked by the quality score
// q = −overlay/area + γ·area/aw (Eqn. 8). dt are the per-layer target
// densities; selection stops once the window density reaches λ·dt.
// Candidate cells are tiled on the fly from the window's free pieces into
// scratch, so only the selected cells outlive the call.
func (w *window) selectCandidatesScratch(lay *layout.Layout, dt []float64, lambda, gamma float64, cs *candScratch) {
	aw := float64(w.rect.Area())
	if aw == 0 {
		return
	}
	nl := len(w.layers)
	w.sel = w.sel[:0]
	cs.layerSlices(nl, w.rect)

	// Static coverage tables: free regions of odd layers feed the pass-1
	// shared test, wire clips of even layers feed the pass-2 overlay
	// estimates and neighbour holes. The clips are materialized from the
	// prepared wire indices into scratch (pass 2 only ever consults the
	// even-indexed neighbours of an odd layer), and the banded area tables
	// answer each coverage query without a scanline sweep.
	for l := 0; l < nl; l++ {
		if l%2 == 1 {
			cs.freeCov[l].Build(w.layers[l].free)
		} else {
			cs.wclips[l] = w.wireClips(cs.wclips[l], lay, l)
			cs.wireCov[l].Build(cs.wclips[l])
		}
	}
	selIx := cs.selIx

	assign := func(l int, cells []cell) {
		target := lambda * dt[l] * aw
		cur := float64(w.layers[l].wireArea)
		for _, c := range cells {
			if cur >= target {
				break
			}
			w.sel = append(w.sel, c)
			selIx[l].Insert(c.rect)
			cur += float64(c.rect.Area())
		}
	}
	// assignSpaced additionally skips cells violating spacing against
	// already-selected same-layer cells (the two even-layer batches come
	// from different tilings and may collide).
	assignSpaced := func(l int, cells []cell) {
		target := lambda * dt[l] * aw
		cur := float64(w.layers[l].wireArea)
		for _, c := range cells {
			if cur >= target {
				break
			}
			if selIx[l].AnyWithin(c.rect, lay.Rules.MinSpace, -1) {
				continue
			}
			w.sel = append(w.sel, c)
			selIx[l].Insert(c.rect)
			cur += float64(c.rect.Area())
		}
	}

	// Pass 1: odd layers (1-based odd ⇒ 0-based even indices 0,2,4,…).
	for l := 0; l < nl; l += 2 {
		cells := cs.batch[:0]
		for _, fr := range w.layers[l].free {
			cells = appendCells(cells, fr, l, lay.Rules)
		}
		cs.batch = cells
		useShared := false
		if l+1 < nl {
			dg := dt[l] - float64(w.layers[l].wireArea)/aw
			dg1 := dt[l+1] - float64(w.layers[l+1].wireArea)/aw
			var sharedArea int64
			for i := range cells {
				cov := cs.freeCov[l+1].OverlapArea(cells[i].rect)
				cells[i].shared = cov == cells[i].rect.Area()
				if cells[i].shared {
					sharedArea += cells[i].rect.Area()
				}
			}
			need := (maxF(dg, 0) + maxF(dg1, 0)) * aw
			useShared = float64(sharedArea) >= need
		}
		if useShared {
			// Zero-overlay case: prefer cells free on both layers, larger
			// first within each class.
			sort.Slice(cells, func(a, b int) bool {
				if cells[a].shared != cells[b].shared {
					return cells[a].shared
				}
				return cells[a].rect.Area() > cells[b].rect.Area()
			})
		} else {
			// Non-zero overlay case: plain size order (Alg. 1 line 16).
			sort.Slice(cells, func(a, b int) bool {
				return cells[a].rect.Area() > cells[b].rect.Area()
			})
		}
		for i := range cells {
			cells[i].quality = gamma * float64(cells[i].rect.Area()) / aw
			if cells[i].shared {
				cells[i].quality += 1 // zero-overlay bonus keeps them preferred later
			}
		}
		assign(l, cells)
	}

	// Pass 2: even layers (0-based odd indices 1,3,5,…). Two candidate
	// batches: first, cells carved from the region with no shape above or
	// below (true Region 3 of Figs. 4/5 — zero overlay by construction);
	// then the ordinary grid cells in quality order (Eqn. 8) to cover the
	// remaining density demand. Grid cells that would violate spacing
	// against already-selected same-layer cells are skipped.
	inset := (lay.Rules.MinSpace + 1) / 2
	for l := 1; l < nl; l += 2 {
		neighbors := cs.neigh[:0]
		collectSel := func(ix *geom.Index) {
			for i := 0; i < ix.Len(); i++ {
				neighbors = append(neighbors, ix.Rect(i))
			}
		}
		if l-1 >= 0 {
			collectSel(selIx[l-1])
			neighbors = append(neighbors, cs.wclips[l-1]...)
		}
		if l+1 < nl {
			collectSel(selIx[l+1])
			neighbors = append(neighbors, cs.wclips[l+1]...)
		}
		cs.neigh = neighbors
		zero := cs.zero[:0]
		for _, piece := range w.layers[l].free {
			vertical := piece.H() > piece.W()
			for _, zr := range geom.DifferenceOriented(piece, neighbors, vertical) {
				zero = appendCells(zero, zr.Expand(-inset), l, lay.Rules)
			}
		}
		cs.zero = zero
		for i := range zero {
			// Zero overlay: quality is the pure area term plus a bonus so
			// these always outrank overlapped cells downstream.
			zero[i].shared = true
			zero[i].quality = 1 + gamma*float64(zero[i].rect.Area())/aw
		}
		grid := cs.batch[:0]
		for _, fr := range w.layers[l].free {
			grid = appendCells(grid, fr, l, lay.Rules)
		}
		cs.batch = grid
		for i := range grid {
			var ov int64
			if l-1 >= 0 {
				ov += selIx[l-1].OverlapAreaDisjoint(grid[i].rect)
				ov += cs.wireCov[l-1].OverlapArea(grid[i].rect)
			}
			if l+1 < nl {
				ov += selIx[l+1].OverlapAreaDisjoint(grid[i].rect)
				ov += cs.wireCov[l+1].OverlapArea(grid[i].rect)
			}
			area := float64(grid[i].rect.Area())
			grid[i].quality = -float64(ov)/area + gamma*area/aw
		}
		sort.Slice(zero, func(a, b int) bool { return zero[a].rect.Area() > zero[b].rect.Area() })
		sort.Slice(grid, func(a, b int) bool { return grid[a].quality > grid[b].quality })
		// Case I (Fig. 4): the zero-overlay region alone meets the demand —
		// fill entirely inside it. Case II (Fig. 5): it cannot — use the
		// full grid in quality order instead (mixing the two tilings wastes
		// area on spacing conflicts between them).
		var zeroArea int64
		for _, c := range zero {
			zeroArea += c.rect.Area()
		}
		if float64(w.layers[l].wireArea+zeroArea) >= lambda*dt[l]*aw {
			assignSpaced(l, zero)
		} else {
			assignSpaced(l, grid)
		}
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
