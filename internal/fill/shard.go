package fill

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dummyfill/internal/density"
	"dummyfill/internal/grid"
	"dummyfill/internal/layout"
)

// This file implements the shard-parallel hierarchical density planner
// and the per-shard size+emit scheduler (DESIGN.md §11).
//
// The window grid is split into contiguous row bands ("shards"). Each
// shard assembles its slice of the global planning maps, proposes target
// densities over its own windows plus a halo ring of neighbour rows, and
// sizes/emits its windows through its own reorder buffer into its own
// output segment. A cheap top-level pass reconciles the shard proposals:
// it runs the exact global target search over the assembled maps —
// arithmetic identical to a single global plan — and enforces the global
// min/max density bounds, so the emitted geometry is byte-identical for
// every shard count. The halo-local proposals are scored against the
// reconciled plan and the worst disagreement is reported as
// Health.PlanDivergence: the error a fully local (distributed) planner
// would have committed.

// planOverlapR is the multi-window overlap factor r the planning halo is
// sized for: overlapping analysis windows are placed at offsets that are
// multiples of W/r, so a window starting inside a shard overhangs at most
// W − W/r < W past the shard border — density.PlanHaloRows(planOverlapR)
// rows of halo give a shard's local plan the full cross-border context
// those windows can see.
const planOverlapR = 2

// shard is one row band of the grid plus its canonical window range.
type shard struct {
	id     int
	band   grid.Band
	k0, k1 int // half-open canonical window index range
}

// shards resolves Options.Shards into the run's band decomposition:
// one shard per core by default, never more than the grid has rows. The
// decomposition depends only on the grid and the option value, never on
// scheduling.
func (e *Engine) shards() []shard {
	n := e.opts.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	bands := e.g.Bands(n)
	out := make([]shard, len(bands))
	for i, b := range bands {
		k0, k1 := b.WindowRange(e.g)
		out[i] = shard{id: i, band: b, k0: k0, k1: k1}
	}
	return out
}

// assembleBounds builds the global per-layer planning bounds shard-
// parallel: each shard writes only its own contiguous window range of the
// shared maps, so the assembly needs no locks and the resulting values
// are identical to a serial pass for every shard count. When selected is
// false the upper bound uses the closed-form tileable area of the free
// pieces (round 1) and the per-layer wire-density maps are returned too;
// when true it uses the area of the selected candidates (round 2, wd nil).
// In round 2 a cache-hit window has no selection — its per-layer selected
// area comes from the cache entry, which recorded exactly what candgen
// would have produced, so the assembled bounds (and hence the round-2
// plan) are bit-identical to a cold run's.
func (e *Engine) assembleBounds(ctx context.Context, wins []*window, sh []shard, selected bool, stage string, cst *cacheState) (bounds []density.LayerBounds, wd []*grid.Map, err error) {
	nl := len(e.lay.Layers)
	bounds = make([]density.LayerBounds, nl)
	for li := 0; li < nl; li++ {
		bounds[li] = density.LayerBounds{Lower: grid.NewMap(e.g), Upper: grid.NewMap(e.g)}
	}
	if !selected {
		wd = make([]*grid.Map, nl)
		for li := 0; li < nl; li++ {
			wd[li] = grid.NewMap(e.g)
		}
	}
	err = e.parallelFor(ctx, len(sh), func(ctx context.Context, i int) error {
		pprof.Do(ctx, pprof.Labels("stage", stage, "shard", strconv.Itoa(i)), func(context.Context) {
			s := sh[i]
			selArea := make([]int64, nl)
			for k := s.k0; k < s.k1; k++ {
				w := wins[k]
				aw := float64(w.rect.Area())
				if aw == 0 {
					continue
				}
				if selected {
					if cst.selValid(k) {
						copy(selArea, cst.entries[k].SelArea)
					} else {
						for li := range selArea {
							selArea[li] = 0
						}
						for _, c := range w.sel {
							selArea[c.layer] += c.rect.Area()
						}
					}
				}
				for li := 0; li < nl; li++ {
					wl := w.layers[li]
					var fillable int64
					if selected {
						fillable = selArea[li]
					} else {
						// Closed-form tileable area per free piece — no
						// cell materialization.
						for _, fr := range wl.free {
							fillable += e.mode.fillableArea(fr)
						}
					}
					bounds[li].Lower.V[k] = float64(wl.wireArea) / aw
					bounds[li].Upper.V[k] = float64(wl.wireArea+fillable) / aw
					if wd != nil {
						wd[li].V[k] = float64(wl.wireArea) / aw
					}
				}
			}
		})
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return bounds, wd, nil
}

// shardProposals runs one planning round locally on every shard: target
// search over the shard's windows plus the halo ring, weighted either by
// the global plan weights pw (round 2) or, when wdLocal is non-nil, by
// weights derived from the shard+halo wire densities alone (round 1 — a
// fully local plan, as a distributed planner would compute it). The
// proposals are advisory: the reconcile pass discards them after scoring
// their divergence, so they never influence the emitted geometry.
func (e *Engine) shardProposals(ctx context.Context, sh []shard, bounds []density.LayerBounds, wdLocal []*grid.Map, pw density.PlanWeights, stage string) ([]*density.Plan, error) {
	props := make([]*density.Plan, len(sh))
	err := e.parallelFor(ctx, len(sh), func(ctx context.Context, i int) error {
		var perr error
		pprof.Do(ctx, pprof.Labels("stage", stage, "shard", strconv.Itoa(i)), func(context.Context) {
			halo := sh[i].band.Halo(e.g, density.PlanHaloRows(planOverlapR))
			lb := make([]density.LayerBounds, len(bounds))
			for li := range bounds {
				lb[li] = density.LayerBounds{
					Lower: bounds[li].Lower.Rows(halo),
					Upper: bounds[li].Upper.Rows(halo),
				}
			}
			w := pw
			if wdLocal != nil {
				views := make([]*grid.Map, len(wdLocal))
				for li := range wdLocal {
					views[li] = wdLocal[li].Rows(halo)
				}
				w = e.planWeights(views)
			}
			p, err := density.PlanTargets(lb, w, e.opts.PlanSteps)
			if err != nil {
				perr = err
				return
			}
			e.applyMinDensity(p.Td)
			props[i] = p
		})
		return perr
	})
	if err != nil {
		return nil, err
	}
	return props, nil
}

// emitRec is one buffered window emission of a non-head shard.
type emitRec struct {
	k     int
	fills []layout.Fill
}

// shardEmitter releases per-shard output segments to the sink in shard
// order. The head shard (the lowest incomplete one) emits windows
// straight to the sink; later shards buffer their (window, fills) records
// until every earlier shard has finished, at which point their segment is
// flushed and they switch to direct emission. Because shards own
// contiguous ascending window ranges and emit their own windows in
// ascending order, the sink observes the canonical strictly-increasing
// window sequence for every shard count and worker assignment. The
// emitter never blocks: out-of-order shard progress costs memory (the
// buffered fills), not stalls.
type shardEmitter struct {
	mu   sync.Mutex
	sink Sink
	head int
	segs [][]emitRec
	done []bool
	err  error
}

func newShardEmitter(sink Sink, n int) *shardEmitter {
	return &shardEmitter{sink: sink, segs: make([][]emitRec, n), done: make([]bool, n)}
}

// emit hands window k of shard id (ascending k within a shard, non-empty
// fills only) to the sink or the shard's segment buffer.
func (em *shardEmitter) emit(id, k int, fills []layout.Fill) error {
	em.mu.Lock()
	defer em.mu.Unlock()
	if em.err != nil {
		return em.err
	}
	if id == em.head {
		if err := em.sink.EmitWindow(k, fills); err != nil {
			em.err = err
			return err
		}
		return nil
	}
	em.segs[id] = append(em.segs[id], emitRec{k: k, fills: fills})
	return nil
}

// finish marks shard id complete. When the head shard completes the head
// advances past every finished shard, flushing each newly headed shard's
// buffered segment in window order.
func (em *shardEmitter) finish(id int) error {
	em.mu.Lock()
	defer em.mu.Unlock()
	if em.err != nil {
		return em.err
	}
	em.done[id] = true
	for em.head < len(em.done) && em.done[em.head] {
		em.head++
		if em.head < len(em.done) {
			if err := em.flushLocked(em.head); err != nil {
				return err
			}
		}
	}
	return nil
}

func (em *shardEmitter) flushLocked(id int) error {
	for _, r := range em.segs[id] {
		if err := em.sink.EmitWindow(r.k, r.fills); err != nil {
			em.err = err
			return err
		}
	}
	em.segs[id] = nil
	return nil
}

// sizeAndEmitSharded is the sharded final stage: every shard sizes its
// windows independently and releases them through its own path into the
// shard emitter — no cross-shard barrier, no globally shared reorder
// buffer. Two worker topologies cover the space:
//
//   - workers ≤ shards: worker i owns the chain of shards i, i+W, i+2W, …
//     Each shard is sized by exactly one worker in ascending window
//     order, so its windows reach the emitter already ordered with no
//     reorder buffer at all.
//   - workers > shards: workers are split into per-shard groups; a group
//     claims its shard's windows in ascending order and reorders them
//     through a shard-local bounded buffer, exactly like the unsharded
//     multi-worker path but scoped to the shard's window range.
//
// Either way a worker owns one sizing scratch for its whole lifetime, so
// warm solver state flows window to window as before; the emitted fill
// set is byte-identical across worker counts and shard counts.
func (e *Engine) sizeAndEmitSharded(ctx context.Context, wins []*window, sh []shard, td []float64, sink Sink, hc *healthCollector, start time.Time, cst *cacheState) error {
	workers := e.workerCount(len(wins))
	em := newShardEmitter(sink, len(sh))
	release := func(id, k int, fills []layout.Fill) error {
		w := wins[k]
		w.sel = nil
		for li := range w.layers {
			w.layers[li].wires = nil
		}
		if len(fills) == 0 {
			return nil
		}
		return em.emit(id, k, fills)
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		firstErr error
		once     sync.Once
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		once.Do(func() { firstErr = err })
		cancel()
	}

	if workers <= len(sh) {
		// Chained shards: one worker per chain, windows in ascending
		// order, direct (already ordered) release into the emitter.
		hc.notePeak(1)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sc := newSizeScratch(e.opts)
				for sid := i; sid < len(sh); sid += workers {
					s := sh[sid]
					var serr error
					pprof.Do(wctx, pprof.Labels("stage", "size-emit", "shard", strconv.Itoa(sid)), func(ctx context.Context) {
						for k := s.k0; k < s.k1; k++ {
							if serr = ctx.Err(); serr != nil {
								return
							}
							var fills []layout.Fill
							if fills, serr = e.produceWindow(ctx, k, wins, td, sc, hc, start, cst); serr != nil {
								return
							}
							if serr = release(sid, k, fills); serr != nil {
								return
							}
						}
						serr = em.finish(sid)
					})
					if serr != nil {
						fail(serr)
						return
					}
				}
			}(i)
		}
		wg.Wait()
		cancel()
	} else {
		// Per-shard worker groups with shard-local reorder buffers.
		type shardRun struct {
			next atomic.Int64
			rem  atomic.Int64
			rb   *reorderBuffer
		}
		runs := make([]*shardRun, len(sh))
		for i, s := range sh {
			group := workers/len(sh) + boolToInt(i < workers%len(sh))
			capacity := 2 * group
			if capacity < 4 {
				capacity = 4
			}
			if n := s.k1 - s.k0; capacity > n {
				capacity = n
			}
			r := &shardRun{}
			sid := i
			r.rb = newReorderBuffer(capacity, func(k int, fills []layout.Fill) error {
				return release(sid, k, fills)
			})
			r.rb.base = s.k0
			r.next.Store(int64(s.k0))
			r.rem.Store(int64(s.k1 - s.k0))
			runs[i] = r
		}

		// Abort watcher: wakes group workers blocked on a full shard
		// buffer when the run is cancelled or a sibling failed.
		watcherDone := make(chan struct{})
		go func() {
			defer close(watcherDone)
			<-wctx.Done()
			for _, r := range runs {
				r.rb.abort(context.Cause(wctx))
			}
		}()

		for sid := range sh {
			group := workers/len(sh) + boolToInt(sid < workers%len(sh))
			for g := 0; g < group; g++ {
				wg.Add(1)
				go func(sid int) {
					defer wg.Done()
					s, r := sh[sid], runs[sid]
					sc := newSizeScratch(e.opts)
					pprof.Do(wctx, pprof.Labels("stage", "size-emit", "shard", strconv.Itoa(sid)), func(ctx context.Context) {
						for ctx.Err() == nil {
							k := int(r.next.Add(1)) - 1
							if k >= s.k1 {
								return
							}
							fills, err := e.produceWindow(ctx, k, wins, td, sc, hc, start, cst)
							if err == nil {
								err = r.rb.deliver(k, fills)
							}
							if err != nil {
								fail(err)
								return
							}
							if r.rem.Add(-1) == 0 {
								// Last delivered window of the shard: every
								// release ran (they happen under the buffer
								// lock before the final deliver returns).
								if err := em.finish(sid); err != nil {
									fail(err)
									return
								}
							}
						}
					})
				}(sid)
			}
		}
		wg.Wait()
		cancel()
		<-watcherDone
		for _, r := range runs {
			hc.notePeak(r.rb.peak)
		}
	}

	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
