package fill

import (
	"context"
	"fmt"
	"time"

	"dummyfill/internal/fillcache"
	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
)

// Fill mode names for Options.Mode.
const (
	// ModeRect is the paper's continuous mode: candidate rectangles are
	// tiled from the free space and shrunk continuously by the sizing LP.
	ModeRect = "rect"
	// ModeSite is the filler-cell placement mode: candidates snap to the
	// layout's placement rows and sites, widths come from a discrete
	// master library, and sizing picks per-gap discrete widths instead of
	// shrinking continuously. Requires Layout.Sites.
	ModeSite = "site"
)

// fillMode is the strategy the window pipeline delegates its
// geometry-producing decisions to: how free pieces clip into windows,
// how much fill a piece can hold, how candidates are enumerated, and how
// a window's selection is sized down to its target areas. Everything
// else — window preparation, the two planning rounds, the cache, the
// reorder buffer and the shard emitter — is mode-agnostic, which is what
// lets a new mode inherit the byte-identical determinism contract.
//
// Implementations must be deterministic functions of window content and
// engine options: no wall-clock, scheduling or worker-identity inputs
// (the nodeterm analyzer and the golden-hash tests police this).
type fillMode interface {
	// name is the mode's Options.Mode value.
	name() string
	// cacheID identifies the mode and its geometry-shaping parameters in
	// the engine cache fingerprint, so entries never migrate across modes
	// or mode configurations.
	cacheID() string
	// windowKeyExtra appends mode-specific per-window content to the
	// window cache key — anything beyond the free pieces and wire clips
	// that distinguishes two windows (e.g. the site-lattice phase).
	windowKeyExtra(w *window, h *fillcache.Hasher)
	// clipFree clips one fill-region piece into a window, applying the
	// mode's legality margin (spacing inset, padding keepout).
	clipFree(fr, win geom.Rect) geom.Rect
	// fillableArea bounds the fill area the mode could place in one
	// clipped free piece — the round-1 planning upper bound.
	fillableArea(fr geom.Rect) int64
	// selectCandidates populates w.sel from the window's free pieces
	// under the round-1 target densities td.
	selectCandidates(w *window, td []float64)
	// sizeWindow reduces w.sel toward the per-layer target areas.
	// cacheable reports whether the result is a pure function of window
	// content (fit for the persistent cache); degraded results are not.
	sizeWindow(ctx context.Context, k int, w *window, targets []int64, sc *sizeScratch, hc *healthCollector, start time.Time) (cells []cell, cacheable bool, err error)
}

// newFillMode resolves Options.Mode against the layout.
func newFillMode(e *Engine) (fillMode, error) {
	switch e.opts.Mode {
	case "", ModeRect:
		return rectMode{e}, nil
	case ModeSite:
		if e.lay.Sites == nil {
			return nil, fmt.Errorf("fill: Mode %q requires a layout with a site grid (Layout.Sites)", ModeSite)
		}
		if e.opts.SitePad < 0 {
			return nil, fmt.Errorf("fill: SitePad must be >= 0, got %d", e.opts.SitePad)
		}
		lib := e.opts.SiteLib
		if lib == nil {
			lib = layout.DefaultFillLib()
		}
		if err := lib.Validate(); err != nil {
			return nil, err
		}
		return &siteMode{e: e, grid: *e.lay.Sites, lib: lib, pad: int64(e.opts.SitePad)}, nil
	default:
		return nil, fmt.Errorf("fill: unknown Options.Mode %q (want %q or %q)", e.opts.Mode, ModeRect, ModeSite)
	}
}

// rectMode is the paper's continuous-rect strategy, extracted verbatim
// from the pre-refactor pipeline: the behavior (and hence every golden
// output hash) is identical to the hard-coded code it replaced.
type rectMode struct{ e *Engine }

func (m rectMode) name() string    { return ModeRect }
func (m rectMode) cacheID() string { return ModeRect }

func (m rectMode) windowKeyExtra(*window, *fillcache.Hasher) {}

// clipFree insets every window-clipped piece by half the minimum spacing
// so cells tiled from it are pairwise legal from birth — including
// across window boundaries, which the per-window sizing LP could not
// repair.
func (m rectMode) clipFree(fr, win geom.Rect) geom.Rect {
	inset := (m.e.lay.Rules.MinSpace + 1) / 2
	return fr.Intersect(win).Expand(-inset)
}

// fillableArea is the closed-form tileable candidate area of one piece.
func (m rectMode) fillableArea(fr geom.Rect) int64 {
	return TileRegionArea(fr, m.e.lay.Rules)
}

// selectCandidates runs Alg. 1 (overlay-aware two-pass selection).
func (m rectMode) selectCandidates(w *window, td []float64) {
	w.selectCandidates(m.e.lay, td, m.e.opts.Lambda, m.e.opts.Gamma)
}

// sizeWindow shrinks the selection through the resilient LP fallback
// chain (warm MCF → cold SSP → simplex → no-shrink degradation).
func (m rectMode) sizeWindow(ctx context.Context, k int, w *window, targets []int64, sc *sizeScratch, hc *healthCollector, start time.Time) ([]cell, bool, error) {
	return m.e.sizeWindowResilient(ctx, k, w, targets, sc, hc, start)
}
