// Package fill implements the paper's dummy fill insertion framework
// (Fig. 3): window-level target density planning, candidate fill
// generation with overlay awareness (Alg. 1), and fill sizing via
// alternating-direction dual min-cost flow (§3.3).
package fill

import (
	"time"

	"dummyfill/internal/dlp"
	"dummyfill/internal/faultinject"
	"dummyfill/internal/fillcache"
	"dummyfill/internal/layout"
)

// Options tune the engine. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	// Mode selects the fill-mode strategy. ModeRect (also the empty
	// string) is the paper's continuous mode: rectangles tiled from free
	// space, shrunk continuously by the sizing LP. ModeSite is filler-cell
	// placement: candidates snap to the layout's placement rows/sites and
	// widths come from the discrete SiteLib master library; it requires
	// Layout.Sites. Both modes share the planner, reorder buffer and
	// emitters, so the byte-identical determinism contract holds for each.
	Mode string
	// SitePad is the site-mode padding constraint, in sites: fillers keep
	// at least SitePad empty sites between themselves and any placed cell
	// or wire on the same row (OpenROAD's filler padding). Ignored by
	// ModeRect.
	SitePad int
	// SiteLib is the site-mode filler master library (nil = the
	// power-of-two DefaultFillLib). Ignored by ModeRect.
	SiteLib *layout.FillLib
	// Lambda is the candidate overfill factor λ ≥ 1 of Alg. 1: candidates
	// are generated until each window reaches λ·(target density).
	Lambda float64
	// Gamma is the γ weight of the candidate quality score (Eqn. 8).
	Gamma float64
	// Eta is the overlay weight η in the sizing objective (Eqn. 9a).
	Eta int64
	// PlanSteps is the search resolution of Case-II target density
	// planning (§3.1).
	PlanSteps int
	// MaxSizingPasses bounds the alternating H/V sizing iterations.
	MaxSizingPasses int
	// Solver solves the per-direction difference-constraint LPs. When set
	// it overrides NewSolver; dlp.ViaSSP, dlp.ViaNetworkSimplex and the
	// dense-simplex dlp.ViaSimplexLP are drop-in choices for ablation
	// studies. Leave nil to use NewSolver (the default).
	Solver dlp.PSolver
	// NewSolver supplies a fresh LP solver per worker, letting stateful
	// solvers carry warm-start state across the windows a worker sizes
	// without any cross-worker sharing. DefaultOptions uses
	// dlp.NewWarmSSP, the warm-started dual min-cost-flow solver; a
	// non-nil Solver takes precedence (it is assumed stateless and safe
	// for concurrent use).
	NewSolver func() dlp.PSolver
	// Workers bounds window-level parallelism (0 = GOMAXPROCS).
	Workers int
	// Shards is the number of row-band shards the window grid is split
	// into for hierarchical density planning and per-shard fill emission
	// (0 = one per core, capped by the number of window rows). Each shard
	// assembles its slice of the planning bounds, proposes targets from
	// its own windows plus a halo ring of neighbour rows, and sizes/emits
	// its windows through its own reorder buffer; a cheap top-level pass
	// reconciles the proposals into the global targets. The emitted fill
	// set is byte-identical for every Shards value — sharding changes the
	// schedule, never the geometry.
	Shards int
	// MinDensity is an optional lower density rule: planned targets are
	// floored at this value (0 disables). Foundry fill decks typically
	// require a minimum metal density per window; the contest objective
	// alone would happily leave an empty layer empty.
	MinDensity float64
	// MaxAspect is an optional lithography-friendliness rule (the paper's
	// stated future work): fills are sized toward an aspect ratio of at
	// most MaxAspect where shrinking suffices to achieve it (fills can
	// only shrink, so a cell already thinner than 1/MaxAspect stays as
	// is). 0 disables.
	MaxAspect float64
	// Budget is a soft per-run time budget (0 = unlimited). When it
	// expires mid-run, remaining windows skip LP sizing and emit their
	// candidates unshrunk — still DRC-clean — and the run completes with
	// Result.Health.BudgetExceeded set instead of failing. Contrast with
	// cancelling the RunContext context, which aborts the run with no
	// Result. Negative values are rejected by New: a negative budget is
	// always a caller bug (an elapsed deadline subtraction gone wrong),
	// and silently treating it as unlimited would invert the intent.
	Budget time.Duration
	// Inject enables deterministic fault injection at the engine's solver
	// and sizing sites — a test harness for the degradation paths. Nil
	// (the default) injects nothing.
	Inject *faultinject.Injector
	// Cache enables the persistent content-addressed window cache for
	// incremental (ECO) re-fill: windows whose content and plan targets
	// match a previous run skip candidate generation and sizing and
	// replay the stored fills, byte-identical to a cold run (DESIGN.md
	// §13). Nil (the default) disables caching. The cache is best-effort:
	// corrupt or unwritable entries cost time, never correctness, and
	// are counted in Health.CacheErrors. Runs that inject engine-level
	// faults bypass the cache so fault patterns stay deterministic.
	Cache *fillcache.Cache
}

// DefaultOptions returns the parameters used in the paper's experiments
// where stated (γ = 1, η = 1) and sensible defaults elsewhere.
func DefaultOptions() Options {
	return Options{
		Lambda:          1.15,
		Gamma:           1,
		Eta:             1,
		PlanSteps:       24,
		MaxSizingPasses: 6,
		NewSolver:       dlp.NewWarmSSP,
	}
}

// newSolver resolves the effective per-worker solver: an explicit Solver
// wins, otherwise a fresh instance from the NewSolver factory.
func (o Options) newSolver() dlp.PSolver {
	if o.Solver != nil {
		return o.Solver
	}
	return o.NewSolver()
}
