package fill

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dummyfill/internal/dlp"
	"dummyfill/internal/faultinject"
)

// panicError wraps a recovered panic from a sizing attempt so the fallback
// chain can treat a crashing solver like any other tier failure.
type panicError struct{ val any }

func (p *panicError) Error() string { return fmt.Sprintf("fill: sizing panicked: %v", p.val) }

// attemptSize runs one solver tier over a window with panic isolation: a
// panicking solver, or corrupted intermediate state tripping an internal
// invariant, becomes an error instead of taking down the whole run.
func (e *Engine) attemptSize(ctx context.Context, w *window, targets []int64, sc *sizeScratch, solve dlp.PSolver) (cs []cell, err error) {
	defer func() {
		if r := recover(); r != nil {
			cs, err = nil, &panicError{r}
		}
	}()
	return sizeWindowWith(ctx, w, e.lay, targets, e.opts, sc, solve)
}

// panicSolver stands in for a solver that crashes — the injected
// counterpart of an internal solver bug — to exercise recover isolation.
func panicSolver(context.Context, *dlp.Problem) ([]int64, int64, error) {
	panic("faultinject: injected solver panic")
}

// corruptSolver wraps a solver so its solution is corrupted before the
// engine sees it, exercising the post-solve validation in sizingPass.
func corruptSolver(base dlp.PSolver) dlp.PSolver {
	return func(ctx context.Context, p *dlp.Problem) ([]int64, int64, error) {
		x, obj, err := base(ctx, p)
		if err != nil || len(x) == 0 {
			return x, obj, err
		}
		x[0] = p.Hi[0] + 1 // out of bounds: must be rejected, never applied
		return x, obj, err
	}
}

// sizeWindowResilient sizes one window through the solver fallback chain —
// warm MCF → cold SPFA → dense simplex → no-shrink degradation — with
// per-window panic isolation and the soft time budget. Only context
// cancellation propagates as an error; every other failure degrades the
// window and is accounted in hc. Decisions are keyed by the window index
// k, never by worker identity, so results and health counters are
// identical for any Workers setting.
//
// cacheable reports whether the result is safe to persist in the fill
// cache: only a first-tier solve with no recovered panic qualifies.
// Budget degradation is wall-clock driven and fallback-tier outcomes
// depend on which tier failed — neither is a pure function of window
// content, so neither may become sticky through the cache.
func (e *Engine) sizeWindowResilient(ctx context.Context, k int, w *window, targets []int64, sc *sizeScratch, hc *healthCollector, start time.Time) (cells []cell, cacheable bool, err error) {
	inj := e.opts.Inject
	key := uint64(k)

	// Soft budget. Wall-clock expiry is sticky — once over budget, every
	// remaining window skips straight to degradation so the run finishes
	// promptly. The injected variant is window-keyed (not sticky) to keep
	// fault patterns deterministic across schedules.
	//filllint:allow nodeterm -- Options.Budget degradation is intentionally wall-clock; documented in DESIGN.md §7
	if e.opts.Budget > 0 && !hc.budgetExceeded.Load() && time.Since(start) > e.opts.Budget {
		hc.budgetExceeded.Store(true)
	}
	if (e.opts.Budget > 0 && hc.budgetExceeded.Load()) || inj.Hit(faultinject.SiteBudget, key) {
		hc.degraded.Add(1)
		return e.noShrinkCells(w, targets, sc), false, nil
	}

	tiers := [...]struct {
		site  faultinject.Site
		solve dlp.PSolver
	}{
		{faultinject.SiteWarmSolve, sc.solver()},
		{faultinject.SiteColdSolve, dlp.ViaSSP},
		{faultinject.SiteSimplexSolve, dlp.ViaSimplexLP},
	}
	for t, tier := range tiers {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		if inj.Hit(tier.site, key) {
			continue // injected tier failure: fall through to the next tier
		}
		solve := tier.solve
		if t == 0 {
			// Crash and corruption faults target the warm tier only, so
			// the chain below it stays available to recover.
			if inj.Hit(faultinject.SitePanic, key) {
				solve = panicSolver
			} else if inj.Hit(faultinject.SiteCorrupt, key) {
				solve = corruptSolver(solve)
			}
		}
		cs, err := e.attemptSize(ctx, w, targets, sc, solve)
		if err == nil {
			hc.sized.Add(1)
			switch t {
			case 1:
				hc.cold.Add(1)
			case 2:
				hc.simplex.Add(1)
			}
			return cs, t == 0, nil
		}
		var pe *panicError
		if errors.As(err, &pe) {
			hc.recovered.Add(1)
			if t == 0 && e.opts.Solver == nil {
				// The warm solver's carried state is suspect after a
				// panic; give this scratch a fresh one for later windows.
				sc.solve = e.opts.newSolver()
			}
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, false, cerr // hard abort: cancellation is not degradable
		}
	}

	hc.degraded.Add(1)
	return e.noShrinkCells(w, targets, sc), false, nil
}

// noShrinkCells is the terminal degradation: emit the window's selected
// candidates unshrunk, pruned down to the target areas. Candidates are
// legal from birth (the tiling pitch includes the spacing rule and
// window-border pieces are inset by half of it), so the result stays
// DRC-clean — the window just forgoes density/overlay optimization. The
// returned slice aliases scratch storage.
func (e *Engine) noShrinkCells(w *window, targets []int64, sc *sizeScratch) []cell {
	if len(w.sel) == 0 {
		return nil
	}
	cells := append(sc.cells[:0], w.sel...)
	sc.cells = cells
	cells = pruneSurplusScratch(cells, targets, len(e.lay.Layers), sc)

	// Defensive legalization: even if the candidate set was corrupted,
	// never emit a spacing conflict or a sub-minimum shape. Conflicts keep
	// the higher-quality cell (ties keep the earlier one) — deterministic
	// because candidate order is window-owned.
	rules := e.lay.Rules
	drop := growBool(sc.drop, len(cells))
	sc.drop = drop
	for i := 0; i < len(cells); i++ {
		if drop[i] {
			continue
		}
		for j := i + 1; j < len(cells); j++ {
			if drop[j] || cells[i].layer != cells[j].layer {
				continue
			}
			gx, gy := cells[i].rect.Gap(cells[j].rect)
			if gx < rules.MinSpace && gy < rules.MinSpace {
				if cells[j].quality <= cells[i].quality {
					drop[j] = true
				} else {
					drop[i] = true
					break
				}
			}
		}
	}
	out := cells[:0]
	for i, c := range cells {
		if drop[i] {
			continue
		}
		r := c.rect
		if r.W() >= rules.MinWidth && r.H() >= rules.MinWidth && r.Area() >= rules.MinArea {
			out = append(out, c)
		}
	}
	return out
}
