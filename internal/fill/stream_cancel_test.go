package fill

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"dummyfill/internal/layout"
)

// streamTopologies are the three size+emit schedules: the unsharded
// global reorder buffer, the chained shards with direct ordered release
// (workers ≤ shards), and the per-shard worker groups with shard-local
// reorder buffers (workers > shards).
var streamTopologies = []struct {
	name            string
	workers, shards int
}{
	{"unsharded", 4, 1},
	{"chained", 2, 4},
	{"groups", 8, 2},
}

// leakCheck records the goroutine count and fails the test if it has not
// returned to baseline (with small slack for runtime helpers) by cleanup.
func leakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base+2 {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Errorf("goroutines leaked: %d at start, %d after", base, runtime.NumGoroutine())
	})
}

// TestRunStreamCancelMidStream cancels the run's context from inside the
// sink after a few windows have been emitted, on every topology. The run
// must abort with the context's error — never a hang, never a corrupted
// nil — with all worker and watcher goroutines unwound; the same engine
// must then produce the full canonical output on a clean rerun (worker
// scratches and pooled state survive the abort uncorrupted).
func TestRunStreamCancelMidStream(t *testing.T) {
	for _, topo := range streamTopologies {
		t.Run(topo.name, func(t *testing.T) {
			leakCheck(t)
			lay := gradientLayout()
			opts := DefaultOptions()
			opts.Workers = topo.workers
			opts.Shards = topo.shards
			e, err := New(lay, opts)
			if err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			emitted := 0
			_, err = e.RunStream(ctx, SinkFunc(func(k int, fs []layout.Fill) error {
				emitted++
				if emitted == 3 {
					// A client hanging up mid-response: cancel, then let the
					// emit itself succeed — the abort must come from the
					// pipeline noticing the dead context, not from us.
					cancel()
					<-ctx.Done()
				}
				return nil
			}))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("RunStream after mid-stream cancel: err = %v, want context.Canceled", err)
			}
			if total := lay.Statistics().NumWindows; emitted >= total {
				t.Fatalf("all %d windows emitted despite cancellation at emit 3", emitted)
			}

			// Clean rerun on the same engine: canonical order, full output.
			var ks []int
			res, err := e.RunStream(context.Background(), SinkFunc(func(k int, fs []layout.Fill) error {
				ks = append(ks, k)
				return nil
			}))
			if err != nil {
				t.Fatalf("rerun after aborted run: %v", err)
			}
			assertAscending(t, ks, topo.name+" rerun")
			if res.Health.Sized+res.Health.Skipped != res.Windows {
				t.Fatalf("rerun health inconsistent: %+v", res.Health)
			}
		})
	}
}

// TestRunStreamEmitterFaultPropagates injects a sink failure partway
// through emission on every topology: the run must return exactly that
// error (wrapped or not), stop emitting, and leave no goroutines behind —
// the blocked deliverers of shard-local reorder buffers included.
func TestRunStreamEmitterFaultPropagates(t *testing.T) {
	sentinel := fmt.Errorf("downstream writer failed")
	for _, topo := range streamTopologies {
		t.Run(topo.name, func(t *testing.T) {
			leakCheck(t)
			lay := gradientLayout()
			opts := DefaultOptions()
			opts.Workers = topo.workers
			opts.Shards = topo.shards
			e, err := New(lay, opts)
			if err != nil {
				t.Fatal(err)
			}
			emitted, afterFault := 0, 0
			_, err = e.RunStream(context.Background(), SinkFunc(func(k int, fs []layout.Fill) error {
				if emitted++; emitted == 4 {
					return sentinel
				}
				if emitted > 4 {
					afterFault++
				}
				return nil
			}))
			if !errors.Is(err, sentinel) {
				t.Fatalf("RunStream with failing sink: err = %v, want %v", err, sentinel)
			}
			if afterFault != 0 {
				t.Fatalf("sink called %d times after it failed", afterFault)
			}
		})
	}
}

// TestRunStreamCancelledBeforeStart: a dead context aborts before any
// window is prepared or emitted.
func TestRunStreamCancelledBeforeStart(t *testing.T) {
	e, err := New(gradientLayout(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = e.RunStream(ctx, SinkFunc(func(int, []layout.Fill) error {
		t.Error("sink called under a pre-cancelled context")
		return nil
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestReorderBufferDeliverAfterAbortReturnsCause: deliverers arriving
// after an abort get the abort cause back, not a hang or a nil.
func TestReorderBufferDeliverAfterAbortReturnsCause(t *testing.T) {
	cause := fmt.Errorf("run aborted")
	rb := newReorderBuffer(2, func(int, []layout.Fill) error { return nil })
	rb.abort(cause)
	if err := rb.deliver(0, nil); !errors.Is(err, cause) {
		t.Fatalf("deliver after abort: err = %v, want %v", err, cause)
	}
	// Abort keeps the first cause even if aborted again.
	rb.abort(fmt.Errorf("second cause"))
	if err := rb.deliver(1, nil); !errors.Is(err, cause) {
		t.Fatalf("deliver after double abort: err = %v, want first cause %v", err, cause)
	}
}

// TestShardEmitterFlushFaultSticks injects the sink failure on a window
// that is only reached while flushing a buffered (non-head) segment: the
// error must surface from finish, stick, and poison later emits.
func TestShardEmitterFlushFaultSticks(t *testing.T) {
	sentinel := fmt.Errorf("flush failed")
	em := newShardEmitter(SinkFunc(func(k int, _ []layout.Fill) error {
		if k == 10 {
			return sentinel
		}
		return nil
	}), 3)
	fills := []layout.Fill{{Layer: 0}}
	// Shard 1 buffers windows 10-11 while shard 0 is still the head.
	if err := em.emit(1, 10, fills); err != nil {
		t.Fatal(err)
	}
	if err := em.emit(1, 11, fills); err != nil {
		t.Fatal(err)
	}
	if err := em.finish(1); err != nil {
		t.Fatal(err)
	}
	if err := em.emit(0, 0, fills); err != nil {
		t.Fatal(err)
	}
	// Head shard finishes; the cascade flushes shard 1's segment and hits
	// the fault on window 10.
	if err := em.finish(0); !errors.Is(err, sentinel) {
		t.Fatalf("finish flushing faulty segment: err = %v, want %v", err, sentinel)
	}
	if err := em.emit(2, 20, fills); !errors.Is(err, sentinel) {
		t.Fatalf("emit after emitter failure: err = %v, want sticky %v", err, sentinel)
	}
	if err := em.finish(2); !errors.Is(err, sentinel) {
		t.Fatalf("finish after emitter failure: err = %v, want sticky %v", err, sentinel)
	}
}

// TestNewRejectsNegativeBudget: a negative soft budget is a caller bug
// (usually an elapsed-deadline subtraction), never "unlimited".
func TestNewRejectsNegativeBudget(t *testing.T) {
	opts := DefaultOptions()
	opts.Budget = -time.Second
	if _, err := New(gradientLayout(), opts); err == nil {
		t.Fatal("New accepted a negative Budget")
	}
	opts.Budget = 0
	if _, err := New(gradientLayout(), opts); err != nil {
		t.Fatalf("New rejected a zero (unlimited) Budget: %v", err)
	}
}
