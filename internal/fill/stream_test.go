package fill

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dummyfill/internal/faultinject"
	"dummyfill/internal/layout"
)

// collectStream runs RunStream on gradientLayout and returns the emitted
// window indices and the concatenated fills in emit order.
func collectStream(t *testing.T, workers int, mutate func(*Options)) ([]int, []layout.Fill, *Result) {
	t.Helper()
	lay := gradientLayout()
	opts := DefaultOptions()
	opts.Workers = workers
	if mutate != nil {
		mutate(&opts)
	}
	e, err := New(lay, opts)
	if err != nil {
		t.Fatal(err)
	}
	var ks []int
	var fills []layout.Fill
	res, err := e.RunStream(context.Background(), SinkFunc(func(k int, fs []layout.Fill) error {
		if len(fs) == 0 {
			t.Errorf("EmitWindow(%d) called with empty fills", k)
		}
		ks = append(ks, k)
		fills = append(fills, fs...)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	return ks, fills, res
}

// assertAscending checks emitted window indices are strictly increasing —
// the canonical-order contract of the Sink interface.
func assertAscending(t *testing.T, ks []int, label string) {
	t.Helper()
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatalf("%s: emit order not strictly ascending: k[%d]=%d after k[%d]=%d",
				label, i, ks[i], i-1, ks[i-1])
		}
	}
}

// TestRunStreamMatchesRunContext checks the streaming path emits exactly
// the barrier path's fill set, in canonical window order, for both serial
// and parallel schedules — and that the streamed sequence itself is
// schedule-invariant.
func TestRunStreamMatchesRunContext(t *testing.T) {
	barrier := runWith(t, 1, nil)

	var ref []layout.Fill
	for _, workers := range []int{1, 4} {
		ks, fills, res := collectStream(t, workers, nil)
		assertAscending(t, ks, "stream")
		checkInvariants(t, res.Health)
		if len(res.Solution.Fills) != 0 {
			t.Fatalf("workers=%d: RunStream populated Result.Solution (%d fills)", workers, len(res.Solution.Fills))
		}
		sorted := append([]layout.Fill(nil), fills...)
		sortFills(sorted)
		sameFills(t, barrier.Solution.Fills, sorted, "stream vs barrier")
		if ref == nil {
			ref = fills
			continue
		}
		sameFills(t, ref, fills, "stream workers=1 vs 4")
	}
}

// TestRunStreamFaultInjectionKeepsOrder exhausts the whole solver chain on
// a deterministic subset of windows and panics the sizing worker on
// another: degraded windows must still emit, in canonical order, and the
// streamed fill set must equal the barrier run under identical faults.
func TestRunStreamFaultInjectionKeepsOrder(t *testing.T) {
	mkInj := func() *faultinject.Injector {
		return faultinject.New(42).
			WithRate(faultinject.SiteWarmSolve, 0.5).
			WithRate(faultinject.SiteColdSolve, 1).
			WithRate(faultinject.SiteSimplexSolve, 1).
			WithRate(faultinject.SitePanic, 0.25)
	}
	barrier := runWith(t, 1, func(o *Options) { o.Inject = mkInj() })
	if barrier.Health.Degraded == 0 {
		t.Fatal("seed produced no degraded windows; pick another seed")
	}

	var ref []layout.Fill
	for _, workers := range []int{1, 4} {
		ks, fills, res := collectStream(t, workers, func(o *Options) { o.Inject = mkInj() })
		assertAscending(t, ks, "faulted stream")
		checkInvariants(t, res.Health)
		if res.Health.Degraded != barrier.Health.Degraded {
			t.Fatalf("workers=%d: degraded drifted: %s vs %s", workers, res.Health, barrier.Health)
		}
		sorted := append([]layout.Fill(nil), fills...)
		sortFills(sorted)
		sameFills(t, barrier.Solution.Fills, sorted, "faulted stream vs barrier")
		if ref == nil {
			ref = fills
			continue
		}
		sameFills(t, ref, fills, "faulted stream workers=1 vs 4")
	}
}

// TestRunStreamSinkErrorAborts checks a sink failure aborts the run and
// surfaces the sink's error.
func TestRunStreamSinkErrorAborts(t *testing.T) {
	sentinel := errors.New("sink full")
	for _, workers := range []int{1, 4} {
		e, err := New(gradientLayout(), func() Options {
			o := DefaultOptions()
			o.Workers = workers
			return o
		}())
		if err != nil {
			t.Fatal(err)
		}
		emitted := 0
		_, err = e.RunStream(context.Background(), SinkFunc(func(k int, fs []layout.Fill) error {
			if emitted++; emitted > 2 {
				return sentinel
			}
			return nil
		}))
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sink sentinel", workers, err)
		}
	}
}

// TestRunStreamPeakInFlightBounded checks the health report exposes a
// positive in-flight peak no larger than the reorder capacity.
func TestRunStreamPeakInFlightBounded(t *testing.T) {
	_, _, res := collectStream(t, 4, nil)
	peak := res.Health.PeakInFlight
	if peak < 1 {
		t.Fatalf("PeakInFlight = %d, want >= 1", peak)
	}
	// Capacity for 4 workers is 2*4 clamped to [4, windows].
	if peak > 8 {
		t.Fatalf("PeakInFlight = %d exceeds reorder capacity 8", peak)
	}
}

// TestReorderBufferReleasesInOrder drives the buffer from concurrent
// goroutines claiming ascending indices and delivering after random-ish
// (index-keyed) delays; releases must come out 0..n-1 exactly once each.
func TestReorderBufferReleasesInOrder(t *testing.T) {
	const n, capacity, workers = 64, 4, 8
	var mu sync.Mutex
	var got []int
	rb := newReorderBuffer(capacity, func(k int, fills []layout.Fill) error {
		mu.Lock()
		got = append(got, k)
		mu.Unlock()
		return nil
	})
	var next int64
	var nextMu sync.Mutex
	claim := func() int {
		nextMu.Lock()
		defer nextMu.Unlock()
		k := int(next)
		next++
		return k
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := claim()
				if k >= n {
					return
				}
				// Skew delivery so later claims often finish first.
				time.Sleep(time.Duration(k%3) * time.Millisecond)
				if err := rb.deliver(k, nil); err != nil {
					t.Errorf("deliver(%d): %v", k, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("released %d windows, want %d", len(got), n)
	}
	for i, k := range got {
		if k != i {
			t.Fatalf("release %d was window %d, want %d", i, k, i)
		}
	}
	if rb.peak < 1 || rb.peak > capacity {
		t.Fatalf("peak = %d, want in [1, %d]", rb.peak, capacity)
	}
}

// TestReorderBufferBlocksUntilSpace checks deliver(k) blocks while k is a
// full capacity ahead of base, and unblocks once base catches up.
func TestReorderBufferBlocksUntilSpace(t *testing.T) {
	rb := newReorderBuffer(2, func(k int, fills []layout.Fill) error { return nil })
	blocked := make(chan error, 1)
	go func() { blocked <- rb.deliver(2, nil) }() // k=2 needs base >= 1
	select {
	case err := <-blocked:
		t.Fatalf("deliver(2) returned early (err=%v) with base=0, capacity=2", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := rb.deliver(0, nil); err != nil { // base -> 1, slot frees
		t.Fatal(err)
	}
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("deliver(2) after space freed: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("deliver(2) still blocked after base advanced")
	}
	if err := rb.deliver(1, nil); err != nil {
		t.Fatal(err)
	}
}

// TestReorderBufferAbortWakesBlocked checks abort propagates its cause to
// goroutines blocked in deliver.
func TestReorderBufferAbortWakesBlocked(t *testing.T) {
	rb := newReorderBuffer(1, func(k int, fills []layout.Fill) error { return nil })
	sentinel := errors.New("abort cause")
	blocked := make(chan error, 1)
	go func() { blocked <- rb.deliver(1, nil) }()
	time.Sleep(10 * time.Millisecond)
	rb.abort(sentinel)
	select {
	case err := <-blocked:
		if !errors.Is(err, sentinel) {
			t.Fatalf("blocked deliver returned %v, want abort cause", err)
		}
	case <-time.After(time.Second):
		t.Fatal("abort did not wake blocked deliverer")
	}
	if err := rb.deliver(0, nil); !errors.Is(err, sentinel) {
		t.Fatalf("post-abort deliver returned %v, want abort cause", err)
	}
}

// TestReorderBufferReleaseErrorPropagates checks a release-callback error
// fails the buffer for subsequent deliveries.
func TestReorderBufferReleaseErrorPropagates(t *testing.T) {
	sentinel := errors.New("emit failed")
	rb := newReorderBuffer(4, func(k int, fills []layout.Fill) error {
		if k == 1 {
			return sentinel
		}
		return nil
	})
	if err := rb.deliver(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := rb.deliver(1, nil); !errors.Is(err, sentinel) {
		t.Fatalf("deliver(1) returned %v, want release error", err)
	}
	if err := rb.deliver(2, nil); !errors.Is(err, sentinel) {
		t.Fatalf("deliver(2) after failure returned %v, want release error", err)
	}
}
