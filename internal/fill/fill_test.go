package fill

import (
	"context"
	"testing"

	"dummyfill/internal/density"
	"dummyfill/internal/dlp"
	"dummyfill/internal/drc"
	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
	"dummyfill/internal/score"
)

// sizeWindow is a test convenience over sizeWindowScratch with fresh
// scratch and a background context.
func sizeWindow(w *window, lay *layout.Layout, targets []int64, opts Options) ([]cell, error) {
	return sizeWindowScratch(context.Background(), w, lay, targets, opts, newSizeScratch(opts))
}

func testRules() layout.Rules {
	return layout.Rules{MinWidth: 4, MinSpace: 4, MinArea: 16, MaxFillDim: 40}
}

func TestTileRectBasic(t *testing.T) {
	rules := testRules()
	cells := TileRegion(geom.R(0, 0, 84, 40), rules)
	if len(cells) != 2 {
		t.Fatalf("expected 2 cells (84 = 40+4+40), got %d: %v", len(cells), cells)
	}
	gx, gy := cells[0].Gap(cells[1])
	if gx < rules.MinSpace && gy < rules.MinSpace {
		t.Fatalf("cells violate spacing: %v %v", cells[0], cells[1])
	}
	for _, c := range cells {
		if c.W() < rules.MinWidth || c.H() < rules.MinWidth || c.Area() < rules.MinArea {
			t.Fatalf("illegal cell %v", c)
		}
		if c.W() > rules.MaxFillDim || c.H() > rules.MaxFillDim {
			t.Fatalf("cell exceeds max dim: %v", c)
		}
	}
}

func TestTileRectSliverDropped(t *testing.T) {
	rules := testRules()
	if cells := TileRegion(geom.R(0, 0, 3, 100), rules); cells != nil {
		t.Fatalf("sub-min-width sliver must produce no cells: %v", cells)
	}
	if cells := TileRegion(geom.R(0, 0, 4, 4), rules); len(cells) != 1 {
		t.Fatalf("exactly-minimal rect must produce one cell: %v", cells)
	}
	if cells := TileRegion(geom.R(0, 0, 5, 3), rules); cells != nil {
		t.Fatalf("min-area violating rect must be dropped: %v", cells)
	}
}

func TestTileRectCoversLargeRegion(t *testing.T) {
	rules := testRules()
	r := geom.R(0, 0, 200, 200)
	cells := TileRegion(r, rules)
	if len(cells) == 0 {
		t.Fatal("no cells for large region")
	}
	var area int64
	for i, c := range cells {
		if !r.ContainsRect(c) {
			t.Fatalf("cell %v escapes region", c)
		}
		area += c.Area()
		for j := i + 1; j < len(cells); j++ {
			gx, gy := c.Gap(cells[j])
			if gx < rules.MinSpace && gy < rules.MinSpace {
				t.Fatalf("cells %v and %v violate spacing", c, cells[j])
			}
		}
	}
	if float64(area) < 0.5*float64(r.Area()) {
		t.Fatalf("tiling utilization too low: %d of %d", area, r.Area())
	}
}

// fig4Window builds the Fig. 4 situation: a window where the region free
// on both layers is large enough for both density gaps → fills should land
// only in the shared region, achieving zero overlay.
func fig4Layout() *layout.Layout {
	// Die = one 100x100 window. Layer 0 wires on the left strip, layer 1
	// wires on the right strip. Middle is free on both layers.
	return &layout.Layout{
		Name:   "fig4",
		Die:    geom.R(0, 0, 100, 100),
		Window: 100,
		Rules:  testRules(),
		Layers: []*layout.Layer{
			{
				Wires:       []geom.Rect{geom.R(0, 0, 20, 100)},
				FillRegions: []geom.Rect{geom.R(24, 0, 100, 100)},
			},
			{
				Wires:       []geom.Rect{geom.R(80, 0, 100, 100)},
				FillRegions: []geom.Rect{geom.R(0, 0, 76, 100)},
			},
		},
	}
}

func TestCandidateZeroOverlayCase(t *testing.T) {
	lay := fig4Layout()
	e, err := New(lay, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	wins, _ := e.prepareWindows(context.Background())
	if len(wins) != 1 {
		t.Fatalf("expected 1 window, got %d", len(wins))
	}
	w := wins[0]
	// Targets slightly above wire density: gap fits easily in the shared
	// region x∈[24,76).
	w.selectCandidates(lay, []float64{0.3, 0.3}, 1.0, 1.0)
	if len(w.sel) == 0 {
		t.Fatal("no candidates selected")
	}
	shared := geom.R(24, 0, 76, 100)
	for _, c := range w.sel {
		if c.layer != 0 {
			continue
		}
		if !shared.ContainsRect(c.rect) {
			t.Fatalf("layer-0 fill %v outside shared region in zero-overlay case", c.rect)
		}
	}
	// Layer-1 fills must avoid overlap with both layer-0 wires and the
	// selected layer-0 fills when possible; verify total overlay is zero.
	var l0 []geom.Rect
	for _, c := range w.sel {
		if c.layer == 0 {
			l0 = append(l0, c.rect)
		}
	}
	for _, c := range w.sel {
		if c.layer != 1 {
			continue
		}
		for _, r := range l0 {
			if c.rect.Overlaps(r) {
				t.Fatalf("fill-fill overlay in zero-overlay case: %v vs %v", c.rect, r)
			}
		}
		if c.rect.Overlaps(geom.R(0, 0, 20, 100)) {
			t.Fatalf("layer-1 fill %v overlaps layer-0 wire region", c.rect)
		}
	}
}

func TestCandidateNonZeroOverlayCase(t *testing.T) {
	// Fig. 5: shared free region too small for the demand → fills must
	// extend into Region 1/2 and some overlay is unavoidable.
	lay := fig4Layout()
	e, err := New(lay, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	wins, _ := e.prepareWindows(context.Background())
	w := wins[0]
	w.selectCandidates(lay, []float64{0.7, 0.7}, 1.0, 1.0)
	var area0 int64
	outsideShared := false
	shared := geom.R(24, 0, 76, 100)
	for _, c := range w.sel {
		if c.layer == 0 {
			area0 += c.rect.Area()
			if !shared.ContainsRect(c.rect) {
				outsideShared = true
			}
		}
	}
	if float64(area0) < 0.5*float64(w.rect.Area()) {
		t.Fatalf("high target did not generate enough candidates: %d", area0)
	}
	if !outsideShared {
		t.Fatal("demand exceeds the shared region; fills must spill outside it")
	}
}

func TestSelectRespectsLambda(t *testing.T) {
	lay := fig4Layout()
	e, _ := New(lay, DefaultOptions())
	winsA, _ := e.prepareWindows(context.Background())
	winsA[0].selectCandidates(lay, []float64{0.4, 0.4}, 1.0, 1.0)
	winsB, _ := e.prepareWindows(context.Background())
	winsB[0].selectCandidates(lay, []float64{0.4, 0.4}, 1.5, 1.0)
	areaOf := func(w *window) (a int64) {
		for _, c := range w.sel {
			a += c.rect.Area()
		}
		return
	}
	if areaOf(winsB[0]) <= areaOf(winsA[0]) {
		t.Fatalf("larger λ must select at least as much candidate area: %d vs %d",
			areaOf(winsB[0]), areaOf(winsA[0]))
	}
}

func TestSizeWindowShrinksToTarget(t *testing.T) {
	lay := fig4Layout()
	e, _ := New(lay, DefaultOptions())
	wins, _ := e.prepareWindows(context.Background())
	w := wins[0]
	w.selectCandidates(lay, []float64{0.5, 0.5}, 1.3, 1.0)
	var selArea int64
	for _, c := range w.sel {
		if c.layer == 0 {
			selArea += c.rect.Area()
		}
	}
	target := int64(float64(selArea) * 0.7) // force meaningful shrink
	targets := []int64{target, target}
	sized, err := sizeWindow(w, lay, targets, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	for _, c := range sized {
		if c.layer == 0 {
			got += c.rect.Area()
		}
	}
	// Within 10% of target (integer granularity + min sizes).
	if got > selArea {
		t.Fatalf("sizing grew fills: %d > %d", got, selArea)
	}
	dev := float64(got-target) / float64(target)
	if dev < -0.15 || dev > 0.15 {
		t.Fatalf("sized area %d deviates %.0f%% from target %d", got, dev*100, target)
	}
	// All sized fills stay inside their original cells and remain legal.
	for _, c := range sized {
		r := c.rect
		if r.W() < lay.Rules.MinWidth || r.H() < lay.Rules.MinWidth || r.Area() < lay.Rules.MinArea {
			t.Fatalf("illegal sized fill %v", r)
		}
	}
}

func TestSizingFixesSpacingViolations(t *testing.T) {
	lay := fig4Layout()
	w := &window{rect: geom.R(0, 0, 100, 100), layers: make([]winLayer, 2)}
	// Two abutting cells (gap 0 < MinSpace 4), horizontally separable.
	w.sel = []cell{
		{rect: geom.R(30, 30, 50, 50), layer: 0, quality: 1},
		{rect: geom.R(50, 30, 70, 50), layer: 0, quality: 0.5},
	}
	targets := []int64{800, 0}
	sized, err := sizeWindow(w, lay, targets, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sized) != 2 {
		t.Fatalf("both cells should survive, got %d", len(sized))
	}
	gx, gy := sized[0].rect.Gap(sized[1].rect)
	if gx < lay.Rules.MinSpace && gy < lay.Rules.MinSpace {
		t.Fatalf("spacing violation not fixed: %v vs %v", sized[0].rect, sized[1].rect)
	}
}

func TestSizingDropsHopelesslyCrowdedCells(t *testing.T) {
	lay := fig4Layout()
	w := &window{rect: geom.R(0, 0, 100, 100), layers: make([]winLayer, 2)}
	// Three minimum-size cells stacked with zero gaps: the chain cannot
	// satisfy spacing by shrinking (cells are already at min width), so
	// at least one must be deleted.
	w.sel = []cell{
		{rect: geom.R(30, 30, 34, 34), layer: 0, quality: 3},
		{rect: geom.R(34, 30, 38, 34), layer: 0, quality: 1},
		{rect: geom.R(38, 30, 42, 34), layer: 0, quality: 2},
	}
	sized, err := sizeWindow(w, lay, []int64{48, 0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sized) >= 3 {
		t.Fatalf("over-crowded chain should lose a cell, kept %d", len(sized))
	}
	for i := range sized {
		for j := i + 1; j < len(sized); j++ {
			gx, gy := sized[i].rect.Gap(sized[j].rect)
			if gx < lay.Rules.MinSpace && gy < lay.Rules.MinSpace {
				t.Fatalf("spacing still violated after deletion")
			}
		}
	}
}

func TestPruneSurplus(t *testing.T) {
	cells := []cell{
		{rect: geom.R(0, 0, 10, 10), layer: 0, quality: 0.9},
		{rect: geom.R(20, 0, 30, 10), layer: 0, quality: 0.1},
		{rect: geom.R(40, 0, 50, 10), layer: 0, quality: 0.5},
	}
	out := pruneSurplus(cells, []int64{150}, 1)
	if len(out) != 2 {
		t.Fatalf("expected 2 cells after pruning, got %d", len(out))
	}
	for _, c := range out {
		if c.quality == 0.1 {
			t.Fatal("lowest-quality cell should have been pruned")
		}
	}
	// Exact fit: nothing pruned.
	out = pruneSurplus(cells, []int64{300}, 1)
	if len(out) != 3 {
		t.Fatalf("no surplus but %d cells pruned", 3-len(out))
	}
}

// gradientLayout builds a 4x4-window layout with a strong density gradient
// so the engine has real work to do.
func gradientLayout() *layout.Layout {
	die := geom.R(0, 0, 400, 400)
	rules := testRules()
	mk := func(dens []int64) *layout.Layer {
		l := &layout.Layer{}
		// dens[k] = wire strip width per window column k (0..3).
		for wx := 0; wx < 4; wx++ {
			for wy := 0; wy < 4; wy++ {
				x0 := int64(wx) * 100
				y0 := int64(wy) * 100
				wwidth := dens[(wx+wy)%4]
				if wwidth > 0 {
					l.Wires = append(l.Wires, geom.R(x0+10, y0+10, x0+10+wwidth, y0+90))
				}
				// Free region right of the wire with sm keepout.
				fx := x0 + 10 + wwidth + rules.MinSpace
				if wwidth == 0 {
					fx = x0 + 4
				}
				l.FillRegions = append(l.FillRegions, geom.R(fx, y0+10, x0+96, y0+90))
			}
		}
		return l
	}
	return &layout.Layout{
		Name:   "grad",
		Die:    die,
		Window: 100,
		Rules:  rules,
		Layers: []*layout.Layer{
			mk([]int64{10, 30, 50, 70}),
			mk([]int64{70, 50, 30, 10}),
			mk([]int64{0, 20, 40, 60}),
		},
	}
}

func TestEngineEndToEnd(t *testing.T) {
	lay := gradientLayout()
	e, err := New(lay, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution.Fills) == 0 {
		t.Fatal("engine inserted no fills")
	}
	if res.Candidates < len(res.Solution.Fills) {
		t.Fatalf("candidates %d < final fills %d", res.Candidates, len(res.Solution.Fills))
	}
	// DRC clean.
	if vs := drc.Check(lay, &res.Solution, true); len(vs) != 0 {
		t.Fatalf("DRC violations: %v (total %d)", vs[0], len(vs))
	}
	// Density must improve: σ after fill < σ before.
	g, _ := lay.Grid()
	var before, after float64
	ss, _, _, _, err := score.MeasureDensity(lay, &res.Solution)
	if err != nil {
		t.Fatal(err)
	}
	after = ss
	for li := range lay.Layers {
		before += density.Variation(lay.WireDensityMap(g, li))
	}
	if after >= before {
		t.Fatalf("fill did not improve uniformity: σ %v -> %v", before, after)
	}
	if after > 0.4*before {
		t.Fatalf("fill should cut σ by more than 60%%: %v -> %v", before, after)
	}
}

func TestEngineDeterministic(t *testing.T) {
	lay := gradientLayout()
	opts := DefaultOptions()
	opts.Workers = 4
	run := func() map[layout.Fill]bool {
		e, err := New(lay, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		out := map[layout.Fill]bool{}
		for _, f := range res.Solution.Fills {
			out[f] = true
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("fill count differs across runs: %d vs %d", len(a), len(b))
	}
	for f := range a {
		if !b[f] {
			t.Fatalf("fill %v missing in second run", f)
		}
	}
}

func TestEngineOptionValidation(t *testing.T) {
	lay := gradientLayout()
	bad := DefaultOptions()
	bad.Lambda = 0.5
	if _, err := New(lay, bad); err == nil {
		t.Fatal("λ < 1 must be rejected")
	}
	bad = DefaultOptions()
	bad.Solver, bad.NewSolver = nil, nil
	if _, err := New(lay, bad); err == nil {
		t.Fatal("nil Solver with nil NewSolver must be rejected")
	}
	// Either solver field alone is sufficient.
	ok := DefaultOptions()
	ok.Solver, ok.NewSolver = dlp.ViaSSP, nil
	if _, err := New(lay, ok); err != nil {
		t.Fatalf("explicit Solver alone must be accepted: %v", err)
	}
	ok = DefaultOptions()
	ok.Solver = nil
	if _, err := New(lay, ok); err != nil {
		t.Fatalf("NewSolver alone must be accepted: %v", err)
	}
	bad = DefaultOptions()
	bad.MaxSizingPasses = 0
	if _, err := New(lay, bad); err == nil {
		t.Fatal("zero sizing passes must be rejected")
	}
	if _, err := New(&layout.Layout{}, DefaultOptions()); err == nil {
		t.Fatal("invalid layout must be rejected")
	}
}

func TestEngineOverlayBetterThanGreedy(t *testing.T) {
	// The engine's overlay should be no worse than blindly using every
	// candidate cell at full size.
	lay := gradientLayout()
	e, _ := New(lay, DefaultOptions())
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	engineOv := score.TotalOverlay(lay, &res.Solution)

	wins, _ := e.prepareWindows(context.Background())
	var greedy layout.Solution
	for _, w := range wins {
		for li := range w.layers {
			for _, fr := range w.layers[li].free {
				for _, r := range TileRegion(fr, lay.Rules) {
					greedy.Fills = append(greedy.Fills, layout.Fill{Layer: li, Rect: r})
				}
			}
		}
	}
	greedyOv := score.TotalOverlay(lay, &greedy)
	if engineOv > greedyOv {
		t.Fatalf("engine overlay %d worse than greedy %d", engineOv, greedyOv)
	}
}
