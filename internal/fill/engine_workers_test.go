package fill

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// workerEngine builds an engine over a small layout with the given worker
// count.
func workerEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	opts := DefaultOptions()
	opts.Workers = workers
	e, err := New(gradientLayout(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestParallelForCoversAllTasks checks every index is visited exactly once
// across worker-count edge cases: negative (auto), more workers than
// tasks, single task, and zero tasks.
func TestParallelForCoversAllTasks(t *testing.T) {
	for _, tc := range []struct {
		workers, n int
	}{
		{-3, 17},  // negative → GOMAXPROCS
		{64, 5},   // more workers than tasks
		{4, 1},    // single task
		{4, 0},    // nothing to do
		{1, 9},    // serial path
		{3, 1000}, // many tasks
	} {
		e := workerEngine(t, tc.workers)
		hits := make([]atomic.Int32, tc.n)
		if err := e.parallelFor(context.Background(), tc.n, func(_ context.Context, idx int) error {
			hits[idx].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d n=%d: %v", tc.workers, tc.n, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d n=%d: task %d ran %d times", tc.workers, tc.n, i, got)
			}
		}
	}
}

// TestParallelForPromptCancellation checks that a failing task stops the
// pool promptly: every worker exits after its first error instead of
// draining the queue, so the number of started tasks is bounded by the
// worker count, not the task count.
func TestParallelForPromptCancellation(t *testing.T) {
	const workers, n = 4, 10000
	e := workerEngine(t, workers)
	boom := errors.New("boom")
	var started atomic.Int32
	err := e.parallelFor(context.Background(), n, func(_ context.Context, idx int) error {
		started.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}
	if got := started.Load(); got > workers {
		t.Fatalf("%d tasks started after errors; want <= %d (prompt cancellation)", got, workers)
	}
}

// TestParallelForReturnsFirstError checks an error from a late task is
// still surfaced when earlier tasks succeed.
func TestParallelForReturnsFirstError(t *testing.T) {
	e := workerEngine(t, 3)
	boom := errors.New("late failure")
	err := e.parallelFor(context.Background(), 100, func(_ context.Context, idx int) error {
		if idx == 99 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}
}

// TestParallelForCancelsInFlightSiblings checks that a worker error
// reaches siblings that are already inside fn: they observe ctx.Done()
// immediately instead of running their task to completion, so the pool
// drains in bounded time. Without prompt in-flight cancellation this test
// takes ~(n/workers)×5s; with it, milliseconds.
func TestParallelForCancelsInFlightSiblings(t *testing.T) {
	const workers, n = 4, 100
	e := workerEngine(t, workers)
	boom := errors.New("window 0 failed")
	var started, cancelled atomic.Int32
	begin := time.Now()
	err := e.parallelFor(context.Background(), n, func(ctx context.Context, idx int) error {
		started.Add(1)
		if idx == 0 {
			return boom
		}
		select {
		case <-ctx.Done():
			cancelled.Add(1)
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return nil
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want the worker error, got %v", err)
	}
	if elapsed := time.Since(begin); elapsed > 2*time.Second {
		t.Fatalf("pool drained in %v; in-flight siblings were not cancelled promptly", elapsed)
	}
	if got := started.Load(); got > workers {
		t.Fatalf("%d tasks started; want <= %d after the failure", got, workers)
	}
	if cancelled.Load() == 0 && started.Load() > 1 {
		t.Fatal("no in-flight sibling observed cancellation")
	}
}

// TestParallelForParentCancellation checks the pool returns the parent
// context's error when it is cancelled mid-run and stops claiming tasks.
func TestParallelForParentCancellation(t *testing.T) {
	e := workerEngine(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := e.parallelFor(ctx, 1000, func(ctx context.Context, idx int) error {
		if ran.Add(1) == 1 {
			cancel()
		}
		<-ctx.Done()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := ran.Load(); got > 4 {
		t.Fatalf("%d tasks ran after cancellation; want <= workers", got)
	}
}

// TestEngineWorkerCountsAgree checks the engine output is identical for
// any Workers setting, including more workers than windows.
func TestEngineWorkerCountsAgree(t *testing.T) {
	lay := gradientLayout()
	var ref []int
	for _, workers := range []int{1, 2, 16, -1} {
		opts := DefaultOptions()
		opts.Workers = workers
		e, err := New(lay, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sig := make([]int, 0, len(res.Solution.Fills)*5)
		for _, f := range res.Solution.Fills {
			sig = append(sig, f.Layer, int(f.Rect.XL), int(f.Rect.YL), int(f.Rect.XH), int(f.Rect.YH))
		}
		if ref == nil {
			ref = sig
			continue
		}
		if len(sig) != len(ref) {
			t.Fatalf("workers=%d: %d fills vs %d", workers, len(sig)/5, len(ref)/5)
		}
		for i := range sig {
			if sig[i] != ref[i] {
				t.Fatalf("workers=%d: fill stream diverges at element %d", workers, i)
			}
		}
	}
}
