package fill

import (
	"testing"

	"dummyfill/internal/gdsii"
	"dummyfill/internal/score"
	"dummyfill/internal/synth"
)

func TestAutoTuneLambdaPicksBest(t *testing.T) {
	lay := tinyLayout(t)
	sp := synth.DesignTiny()
	c, err := synth.Coefficients(sp, lay)
	if err != nil {
		t.Fatal(err)
	}
	opts, res, err := AutoTuneLambda(lay, c, DefaultOptions(), []float64{1.0, 1.3})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Lambda != 1.0 && opts.Lambda != 1.3 {
		t.Fatalf("tuned λ = %v not among candidates", opts.Lambda)
	}
	if res == nil || len(res.Solution.Fills) == 0 {
		t.Fatal("no result returned")
	}
	// The tuned result must be at least as good as both candidates
	// individually (it IS one of them).
	for _, lambda := range []float64{1.0, 1.3} {
		o := DefaultOptions()
		o.Lambda = lambda
		e, err := New(lay, o)
		if err != nil {
			t.Fatal(err)
		}
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		sz, err := gdsii.FromSolution(lay.Name, &r.Solution).EncodedSize()
		if err != nil {
			t.Fatal(err)
		}
		raw, err := score.Measure(lay, &r.Solution, sz, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		q := score.Score(raw, c).Quality

		szB, _ := gdsii.FromSolution(lay.Name, &res.Solution).EncodedSize()
		rawB, err := score.Measure(lay, &res.Solution, szB, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if best := score.Score(rawB, c).Quality; best+1e-9 < q {
			t.Fatalf("tuned quality %.4f below candidate λ=%v quality %.4f", best, lambda, q)
		}
	}
}

func TestAutoTuneLambdaRejectsBadCandidates(t *testing.T) {
	lay := tinyLayout(t)
	if _, _, err := AutoTuneLambda(lay, score.Coefficients{}, DefaultOptions(), []float64{0.5}); err == nil {
		t.Fatal("λ < 1 candidate must error")
	}
}

func TestMaxAspectShapesFills(t *testing.T) {
	lay := tinyLayout(t)
	opts := DefaultOptions()
	opts.MaxAspect = 2
	e, err := New(lay, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Measure the aspect distribution: the constrained run must have a
	// lower mean aspect than the unconstrained one (exact enforcement is
	// impossible for cells that are already thin — fills only shrink).
	meanAspect := func(r *Result) float64 {
		var s float64
		for _, f := range r.Solution.Fills {
			w, h := float64(f.Rect.W()), float64(f.Rect.H())
			a := w / h
			if a < 1 {
				a = 1 / a
			}
			s += a
		}
		return s / float64(len(r.Solution.Fills))
	}
	e2, err := New(lay, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if meanAspect(res) >= meanAspect(base) {
		t.Fatalf("MaxAspect did not reduce mean aspect: %.2f vs %.2f",
			meanAspect(res), meanAspect(base))
	}
}
