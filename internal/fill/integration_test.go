package fill

import (
	"context"
	"testing"

	"dummyfill/internal/density"
	"dummyfill/internal/dlp"
	"dummyfill/internal/drc"
	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
	"dummyfill/internal/score"
	"dummyfill/internal/synth"
)

// tinyLayout generates the synthetic tiny design once.
func tinyLayout(t testing.TB) *layout.Layout {
	t.Helper()
	lay, err := synth.Generate(synth.DesignTiny())
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

func TestEngineOnSyntheticDesign(t *testing.T) {
	lay := tinyLayout(t)
	e, err := New(lay, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution.Fills) == 0 {
		t.Fatal("no fills on synthetic design")
	}
	if vs := drc.Check(lay, &res.Solution, true); len(vs) != 0 {
		t.Fatalf("%d DRC violations on synthetic design, first: %v", len(vs), vs[0])
	}
	// Each layer's σ must drop by at least half.
	g, _ := lay.Grid()
	_, _, _, maps, err := score.MeasureDensity(lay, &res.Solution)
	if err != nil {
		t.Fatal(err)
	}
	for li, m := range maps {
		before := density.Variation(lay.WireDensityMap(g, li))
		after := density.Variation(m)
		if after > 0.5*before {
			t.Fatalf("layer %d: σ %.4f -> %.4f (less than 2x improvement)", li, before, after)
		}
	}
}

func TestEngineSolverBackendsEquivalent(t *testing.T) {
	// All three LP backends must produce DRC-clean solutions with
	// essentially the same fill area (identical optima can differ in
	// which vertex is returned, so compare aggregates).
	lay := tinyLayout(t)
	areas := map[string]int64{}
	counts := map[string]int{}
	for _, s := range []struct {
		name   string
		solver dlp.PSolver
	}{
		{"ssp", dlp.ViaSSP},
		{"netsimplex", dlp.ViaNetworkSimplex},
		{"simplex", dlp.ViaSimplexLP},
	} {
		opts := DefaultOptions()
		opts.Solver = s.solver
		e, err := New(lay, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("backend %s: %v", s.name, err)
		}
		if vs := drc.Check(lay, &res.Solution, true); len(vs) != 0 {
			t.Fatalf("backend %s: %d DRC violations", s.name, len(vs))
		}
		var area int64
		for _, f := range res.Solution.Fills {
			area += f.Rect.Area()
		}
		areas[s.name] = area
		counts[s.name] = len(res.Solution.Fills)
	}
	for name, a := range areas {
		ref := areas["ssp"]
		dev := float64(a-ref) / float64(ref)
		if dev < -0.02 || dev > 0.02 {
			t.Fatalf("backend %s fill area deviates %.1f%% from SSP (%d vs %d)",
				name, dev*100, a, ref)
		}
	}
}

func TestEngineEmptyFillRegions(t *testing.T) {
	// A layout with wires but no room to fill: the engine must succeed
	// with an empty solution.
	lay := &layout.Layout{
		Name: "nofree", Die: geom.R(0, 0, 200, 200), Window: 100,
		Rules: testRules(),
		Layers: []*layout.Layer{{
			Wires: []geom.Rect{geom.R(0, 0, 200, 200)},
		}},
	}
	e, err := New(lay, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution.Fills) != 0 {
		t.Fatalf("no free space but %d fills inserted", len(res.Solution.Fills))
	}
}

func TestEngineEmptyLayerAmongOthers(t *testing.T) {
	// One layer has no wires at all (everything fillable), another no
	// fill regions: both extremes in one run.
	lay := &layout.Layout{
		Name: "mixed", Die: geom.R(0, 0, 200, 200), Window: 100,
		Rules: testRules(),
		Layers: []*layout.Layer{
			{FillRegions: []geom.Rect{geom.R(0, 0, 200, 200)}},
			{Wires: []geom.Rect{geom.R(0, 0, 200, 200)}},
		},
	}
	opts := DefaultOptions()
	opts.MinDensity = 0.3 // an all-empty layer is "uniform" at 0; force fill
	e, err := New(lay, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	hasL0 := false
	for _, f := range res.Solution.Fills {
		if f.Layer == 1 {
			t.Fatalf("fill on fully-covered layer: %v", f)
		}
		if f.Layer == 0 {
			hasL0 = true
		}
	}
	if !hasL0 {
		t.Fatal("empty layer received no fills")
	}
	if vs := drc.Check(lay, &res.Solution, true); len(vs) != 0 {
		t.Fatalf("DRC: %v", vs[0])
	}
}

func TestEngineSingleLayer(t *testing.T) {
	// Single layer: no overlay pairs at all; only the odd pass runs.
	lay := &layout.Layout{
		Name: "single", Die: geom.R(0, 0, 300, 300), Window: 100,
		Rules: testRules(),
		Layers: []*layout.Layer{{
			Wires:       []geom.Rect{geom.R(0, 0, 80, 80)},
			FillRegions: []geom.Rect{geom.R(100, 0, 300, 300), geom.R(0, 100, 90, 300)},
		}},
	}
	e, err := New(lay, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution.Fills) == 0 {
		t.Fatal("single-layer layout got no fills")
	}
	if vs := drc.Check(lay, &res.Solution, true); len(vs) != 0 {
		t.Fatalf("DRC: %v", vs[0])
	}
}

func TestEngineFiveLayers(t *testing.T) {
	// More layers than the synthetic designs use: the odd/even passes and
	// overlay pairs must generalize.
	mk := func(seed int64) *layout.Layer {
		return &layout.Layer{
			Wires:       []geom.Rect{geom.R(seed*13%200, seed*29%200, seed*13%200+60, seed*29%200+30)},
			FillRegions: []geom.Rect{geom.R(0, 250, 400, 400), geom.R(250, 0, 400, 240)},
		}
	}
	lay := &layout.Layout{
		Name: "five", Die: geom.R(0, 0, 400, 400), Window: 200,
		Rules:  testRules(),
		Layers: []*layout.Layer{mk(1), mk(2), mk(3), mk(4), mk(5)},
	}
	e, err := New(lay, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	perLayer := res.Solution.PerLayer(5)
	for li, fills := range perLayer {
		if len(fills) == 0 {
			t.Fatalf("layer %d of 5 received no fills", li)
		}
	}
	if vs := drc.Check(lay, &res.Solution, true); len(vs) != 0 {
		t.Fatalf("DRC: %v", vs[0])
	}
}

func TestEngineSingleWindow(t *testing.T) {
	// Window size equal to the die: planning degenerates to one window.
	lay := fig4Layout()
	lay.Window = 100
	e, err := New(lay, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 1 {
		t.Fatalf("expected 1 window, got %d", res.Windows)
	}
}

func TestEngineWindowLargerThanDie(t *testing.T) {
	lay := fig4Layout()
	lay.Window = 1000 // window exceeds the 100x100 die
	e, err := New(lay, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineTinyDesign(b *testing.B) {
	lay := tinyLayout(b)
	for i := 0; i < b.N; i++ {
		e, err := New(lay, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCandidateGeneration(b *testing.B) {
	lay := tinyLayout(b)
	e, err := New(lay, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	wins, _ := e.prepareWindows(context.Background())
	td := []float64{0.4, 0.4, 0.4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range wins {
			w.sel = w.sel[:0]
			w.selectCandidates(lay, td, 1.15, 1.0)
		}
	}
}

func BenchmarkSizeWindow(b *testing.B) {
	lay := tinyLayout(b)
	e, err := New(lay, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	wins, _ := e.prepareWindows(context.Background())
	td := []float64{0.4, 0.4, 0.4}
	for _, w := range wins {
		w.selectCandidates(lay, td, 1.15, 1.0)
	}
	sc := newSizeScratch(e.opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range wins {
			targets := e.windowTargets(w, td, sc)
			if _, err := sizeWindowScratch(context.Background(), w, lay, targets, e.opts, sc); err != nil {
				b.Fatal(err)
			}
		}
	}
}
