package fill

import (
	"context"
	"fmt"
	"sort"
	"time"

	"dummyfill/internal/faultinject"
	"dummyfill/internal/fillcache"
	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
)

// siteMode is the filler-cell placement strategy: candidates snap to the
// layout's placement lattice (whole sites of whole rows), widths come
// from a discrete master library, and sizing picks per-gap discrete
// widths by error diffusion instead of shrinking continuously. It shares
// the planner, cache, reorder buffer and shard emitter with rect mode,
// so the byte-identical determinism contract carries over unchanged.
type siteMode struct {
	e    *Engine
	grid layout.SiteGrid
	lib  *layout.FillLib
	pad  int64 // keepout, in sites, against placed cells and wires
}

func (m *siteMode) name() string { return ModeSite }

// cacheID folds in everything that shapes site-mode geometry beyond the
// window content: the padding rule, the master library and the lattice
// pitch. The lattice *phase* is per-window content and lives in
// windowKeyExtra instead.
func (m *siteMode) cacheID() string {
	return fmt.Sprintf("%s/pad=%d/lib=%s/pitch=%dx%d",
		ModeSite, m.pad, m.lib.ID(), m.grid.SiteW, m.grid.RowH)
}

// windowKeyExtra hashes the window's site-lattice phase. Window cache
// keys are window-relative so identical content anywhere on the die
// shares one entry — but in site mode two content-identical windows at
// different lattice offsets tile into different fillers, so the phase
// must distinguish them.
func (m *siteMode) windowKeyExtra(w *window, h *fillcache.Hasher) {
	h.Int64(mod64(w.rect.XL-m.grid.Origin.X, m.grid.SiteW))
	h.Int64(mod64(w.rect.YL-m.grid.Origin.Y, m.grid.RowH))
}

// clipFree applies the padding keepout to a free piece, then clips it
// into the window. The keepout is applied to the piece — whose vertical
// edges sit against placed cells or wires unless they reach the die edge
// — before the window cut, so padding legality holds globally even when
// a gap spans a window seam.
func (m *siteMode) clipFree(fr, win geom.Rect) geom.Rect {
	if m.pad > 0 {
		die := m.e.lay.Die
		if fr.XL > die.XL {
			fr.XL += m.pad * m.grid.SiteW
		}
		if fr.XH < die.XH {
			fr.XH -= m.pad * m.grid.SiteW
		}
		if fr.XL >= fr.XH {
			return geom.Rect{}
		}
	}
	return fr.Intersect(win)
}

// fillableArea bounds the filler area one clipped piece can host: full
// rows covered × sites coverable by the library, in O(len(Widths)).
func (m *siteMode) fillableArea(fr geom.Rect) int64 {
	j0, j1, i0, i1, ok := m.latticeSpan(fr)
	if !ok {
		return 0
	}
	rem := int64(i1 - i0)
	for k := len(m.lib.Widths) - 1; k >= 0; k-- {
		rem %= m.lib.Widths[k]
	}
	covered := int64(i1-i0) - rem
	return int64(j1-j0) * covered * m.grid.SiteW * m.grid.RowH
}

// latticeSpan snaps a piece to the lattice: rows [j0,j1) fully covered
// vertically and sites [i0,i1) fully covered horizontally. ok is false
// when the piece holds no complete site of a complete row.
func (m *siteMode) latticeSpan(fr geom.Rect) (j0, j1, i0, i1 int, ok bool) {
	g := m.grid
	j0 = int(ceilDiv(fr.YL-g.Origin.Y, g.RowH))
	j1 = int(floorDiv(fr.YH-g.Origin.Y, g.RowH))
	i0 = int(ceilDiv(fr.XL-g.Origin.X, g.SiteW))
	i1 = int(floorDiv(fr.XH-g.Origin.X, g.SiteW))
	if j0 < 0 {
		j0 = 0
	}
	if j1 > g.Rows {
		j1 = g.Rows
	}
	if i0 < 0 {
		i0 = 0
	}
	if i1 > g.Sites {
		i1 = g.Sites
	}
	return j0, j1, i0, i1, j0 < j1 && i0 < i1
}

// appendSiteCells tiles one clipped piece into filler candidates: per
// covered row, a greedy largest-first packing of the site gap with
// library masters, left to right. Greedy-largest maximizes covered area
// for divisor-chain libraries (the power-of-two default) and is
// deterministic for any library.
func (m *siteMode) appendSiteCells(dst []cell, fr geom.Rect, l int) []cell {
	j0, j1, i0, i1, ok := m.latticeSpan(fr)
	if !ok {
		return dst
	}
	g := m.grid
	for j := j0; j < j1; j++ {
		yl := g.RowY(j)
		x := i0
		rem := int64(i1 - i0)
		for k := len(m.lib.Widths) - 1; k >= 0; k-- {
			wN := m.lib.Widths[k]
			for ; rem >= wN; rem -= wN {
				dst = append(dst, cell{
					rect:  geom.Rect{XL: g.SiteX(x), YL: yl, XH: g.SiteX(x + int(wN)), YH: yl + g.RowH},
					layer: l,
				})
				x += int(wN)
			}
		}
	}
	return dst
}

// selectCandidates populates w.sel: per layer, every filler the free
// pieces can host, in size order (largest first, then bottom-to-top,
// left-to-right for determinism), admitted until the window reaches
// λ·(target density). Overlay does not apply to single-layer placement
// lattices, so quality is the pure area term γ·area/aw of Eqn. 8 — the
// shared planner, pruning and reporting code reads it unchanged.
func (m *siteMode) selectCandidates(w *window, td []float64) {
	aw := float64(w.rect.Area())
	if aw == 0 {
		return
	}
	w.sel = w.sel[:0]
	cs := candPool.Get().(*candScratch)
	defer candPool.Put(cs)
	gamma, lambda := m.e.opts.Gamma, m.e.opts.Lambda
	for l := range w.layers {
		cells := cs.batch[:0]
		for _, fr := range w.layers[l].free {
			cells = m.appendSiteCells(cells, fr, l)
		}
		cs.batch = cells
		for i := range cells {
			cells[i].quality = gamma * float64(cells[i].rect.Area()) / aw
		}
		sort.Slice(cells, func(a, b int) bool {
			ra, rb := cells[a].rect, cells[b].rect
			if aa, ab := ra.Area(), rb.Area(); aa != ab {
				return aa > ab
			}
			if ra.YL != rb.YL {
				return ra.YL < rb.YL
			}
			return ra.XL < rb.XL
		})
		target := lambda * td[l] * aw
		cur := float64(w.layers[l].wireArea)
		for _, c := range cells {
			if cur >= target {
				break
			}
			w.sel = append(w.sel, c)
			cur += float64(c.rect.Area())
		}
	}
}

// sizeWindow reduces the selection toward the per-layer target areas by
// per-cell discrete width reduction with error diffusion: each cell's
// ideal share of the target (uniform ratio, plus the error carried from
// earlier cells) rounds down to the largest library master that fits,
// and the rounding remainder diffuses forward so the layer total tracks
// the target despite the discrete widths. Cells are left-anchored and
// only ever shrink, so legality (site alignment, padding, pairwise gaps)
// is inherited from candidate generation. No solver runs, so the whole
// path is a pure function of window content — tier-0 cacheable — except
// the budget degradation, which mirrors rect mode's.
func (m *siteMode) sizeWindow(ctx context.Context, k int, w *window, targets []int64, sc *sizeScratch, hc *healthCollector, start time.Time) ([]cell, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	inj := m.e.opts.Inject
	key := uint64(k)
	//filllint:allow nodeterm -- Options.Budget degradation is intentionally wall-clock; documented in DESIGN.md §7
	if m.e.opts.Budget > 0 && !hc.budgetExceeded.Load() && time.Since(start) > m.e.opts.Budget {
		hc.budgetExceeded.Store(true)
	}
	if (m.e.opts.Budget > 0 && hc.budgetExceeded.Load()) || inj.Hit(faultinject.SiteBudget, key) {
		hc.degraded.Add(1)
		return m.e.noShrinkCells(w, targets, sc), false, nil
	}
	if len(w.sel) == 0 {
		hc.sized.Add(1)
		return nil, true, nil
	}

	cells := append(sc.cells[:0], w.sel...)
	sc.cells = cells
	nl := len(m.e.lay.Layers)
	area := growI64(sc.area, nl)
	sc.area = area
	for _, c := range cells {
		area[c.layer] += c.rect.Area()
	}
	carry := growI64(sc.surplus, nl) // per-layer diffused rounding error
	sc.surplus = carry
	siteArea := m.grid.SiteW * m.grid.RowH
	out := cells[:0]
	for i := range cells {
		l := cells[i].layer
		if area[l] <= targets[l] {
			out = append(out, cells[i])
			continue
		}
		a := cells[i].rect.Area()
		ratio := float64(targets[l]) / float64(area[l])
		des := int64(float64(a)*ratio) + carry[l]
		sites := des / siteArea
		if own := a / siteArea; sites > own {
			sites = own // never grow a cell beyond its gap
		}
		wN := m.lib.WidthFor(sites)
		carry[l] = des - wN*siteArea
		if wN == 0 {
			continue // dropped entirely; its share diffuses forward
		}
		cells[i].rect.XH = cells[i].rect.XL + wN*m.grid.SiteW
		out = append(out, cells[i])
	}
	hc.sized.Add(1)
	return out, true, nil
}

// floorDiv and ceilDiv are Euclidean-style int64 divisions, correct for
// coordinates below the lattice origin.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 { return -floorDiv(-a, b) }

// mod64 is the non-negative remainder of a mod b (b > 0).
func mod64(a, b int64) int64 {
	r := a % b
	if r < 0 {
		r += b
	}
	return r
}
