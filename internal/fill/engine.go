package fill

import (
	"fmt"
	"runtime"
	"sync"

	"dummyfill/internal/density"
	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
	"dummyfill/internal/layout"
	"dummyfill/internal/score"
)

// Engine runs the full fill insertion flow of Fig. 3 over a layout.
type Engine struct {
	lay  *layout.Layout
	opts Options
	g    *grid.Grid
}

// Result is the outcome of a full engine run.
type Result struct {
	Solution layout.Solution
	// FirstTargets and Targets are the per-layer target densities from the
	// two planning rounds (before and after candidate generation).
	FirstTargets []float64
	Targets      []float64
	// Candidates is the number of candidate fills selected by Alg. 1
	// before sizing and pruning.
	Candidates int
	// UpperBounds are the per-layer achievable-density maps used by the
	// second planning round (wire + selected candidate area per window),
	// useful for diagnosing coverage limits.
	UpperBounds []*grid.Map
	// Windows is the number of grid windows processed.
	Windows int
}

// New validates the layout and constructs an engine.
func New(lay *layout.Layout, opts Options) (*Engine, error) {
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	if opts.Lambda < 1 {
		return nil, fmt.Errorf("fill: Lambda must be >= 1, got %v", opts.Lambda)
	}
	if opts.Solver == nil {
		return nil, fmt.Errorf("fill: Options.Solver is required (use DefaultOptions)")
	}
	if opts.MaxSizingPasses < 1 {
		return nil, fmt.Errorf("fill: MaxSizingPasses must be >= 1, got %d", opts.MaxSizingPasses)
	}
	g, err := lay.Grid()
	if err != nil {
		return nil, err
	}
	return &Engine{lay: lay, opts: opts, g: g}, nil
}

// Run executes the flow: prepare windows → density planning → candidate
// generation (Alg. 1) → density re-planning → sizing via dual min-cost
// flow → solution assembly.
func (e *Engine) Run() (*Result, error) {
	wins := e.prepareWindows()

	// Planning round 1: bounds from tileable candidate area.
	bounds := e.bounds(wins, nil)
	plan1, err := density.PlanTargets(bounds, e.planWeights(), e.opts.PlanSteps)
	if err != nil {
		return nil, err
	}
	e.applyMinDensity(plan1.Td)

	// Candidate generation under plan-1 guidance.
	e.forEachWindow(wins, func(w *window) error {
		w.selectCandidates(e.lay, plan1.Td, e.opts.Lambda, e.opts.Gamma)
		return nil
	})
	numCand := 0
	for _, w := range wins {
		numCand += len(w.sel)
	}

	// Planning round 2: bounds restricted to what was actually selected
	// (§3 — "another round of density planning is performed due to the
	// inconsistency between candidate fills and initial plans").
	bounds2 := e.bounds(wins, selectedAreas(wins, len(e.lay.Layers)))
	plan2, err := density.PlanTargets(bounds2, e.planWeights(), e.opts.PlanSteps)
	if err != nil {
		return nil, err
	}
	e.applyMinDensity(plan2.Td)
	uppers := make([]*grid.Map, len(bounds2))
	for i := range bounds2 {
		uppers[i] = bounds2[i].Upper
	}

	// Sizing per window.
	var mu sync.Mutex
	sol := layout.Solution{}
	err = e.forEachWindow(wins, func(w *window) error {
		targets := e.windowTargets(w, plan2.Td)
		sized, err := sizeWindow(w, e.lay, targets, e.opts)
		if err != nil {
			return err
		}
		mu.Lock()
		for _, c := range sized {
			sol.Fills = append(sol.Fills, layout.Fill{Layer: c.layer, Rect: c.rect})
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	return &Result{
		Solution:     sol,
		FirstTargets: plan1.Td,
		Targets:      plan2.Td,
		Candidates:   numCand,
		UpperBounds:  uppers,
		Windows:      len(wins),
	}, nil
}

// applyMinDensity floors the planned targets at Options.MinDensity.
func (e *Engine) applyMinDensity(td []float64) {
	if e.opts.MinDensity <= 0 {
		return
	}
	for l := range td {
		if td[l] < e.opts.MinDensity {
			td[l] = e.opts.MinDensity
		}
	}
}

// planWeights derives planning weights from contest α weights with
// layout-scale βs: planning only needs relative weighting, so βs are set
// from the unfilled layout's metrics (worst case) to keep all three terms
// in range.
func (e *Engine) planWeights() density.PlanWeights {
	c := score.ContestAlphas()
	// Baseline metrics of the unfilled layout.
	var sumSigma, sumLine, sumOut float64
	for li := range e.lay.Layers {
		m := density.Measure(e.lay.WireDensityMap(e.g, li))
		sumSigma += m.Sigma
		sumLine += m.Line
		sumOut += m.Outlier
	}
	w := density.PlanWeights{
		AlphaVar: c.AlphaVar, BetaVar: sumSigma,
		AlphaLine: c.AlphaLine, BetaLine: sumLine,
		AlphaOutlier: c.AlphaOutlier, BetaOutlier: sumSigma * sumOut,
	}
	// Guard against perfectly uniform inputs.
	if w.BetaVar <= 0 {
		w.BetaVar = 1
	}
	if w.BetaLine <= 0 {
		w.BetaLine = 1
	}
	if w.BetaOutlier <= 0 {
		w.BetaOutlier = 1
	}
	return w
}

// prepareWindows clips fill regions and wires into windows and tiles the
// free regions into candidate cells.
func (e *Engine) prepareWindows() []*window {
	nw := e.g.NumWindows()
	nl := len(e.lay.Layers)
	wins := make([]*window, nw)
	for k := 0; k < nw; k++ {
		i, j := k%e.g.NX, k/e.g.NX
		wins[k] = &window{rect: e.g.Window(i, j), layers: make([]winLayer, nl)}
	}
	// Free-region pieces (and hence the cells tiled from them) may abut:
	// Difference-slab decomposition splits regions into touching slabs and
	// window clipping cuts regions at window borders. Insetting every
	// window-clipped piece by half the minimum spacing makes all cells
	// pairwise legal from birth — including across window boundaries,
	// which the per-window sizing LP could not repair.
	inset := (e.lay.Rules.MinSpace + 1) / 2
	for li, layer := range e.lay.Layers {
		// Free regions per window.
		for _, fr := range layer.FillRegions {
			e.g.RangeOverlapping(fr, func(i, j int, clip geom.Rect) {
				clip = clip.Expand(-inset)
				if clip.Empty() {
					return
				}
				wl := &wins[j*e.g.NX+i].layers[li]
				wl.free = append(wl.free, clip)
			})
		}
		// Wire area per window (union-exact).
		perWin := make(map[int][]geom.Rect)
		for _, wr := range layer.Wires {
			e.g.RangeOverlapping(wr, func(i, j int, clip geom.Rect) {
				k := j*e.g.NX + i
				perWin[k] = append(perWin[k], clip)
			})
		}
		for k, rects := range perWin {
			wins[k].layers[li].wireArea = geom.UnionArea(rects)
		}
	}
	// Tile free regions into candidate cells.
	e.forEachWindow(wins, func(w *window) error {
		for li := range w.layers {
			wl := &w.layers[li]
			for _, fr := range wl.free {
				for _, r := range TileRegion(fr, e.lay.Rules) {
					wl.cells = append(wl.cells, cell{rect: r, layer: li})
				}
			}
		}
		return nil
	})
	return wins
}

// bounds derives per-layer planning bounds. When selected is nil the upper
// bound uses all tileable cells; otherwise the given per-window selected
// areas.
func (e *Engine) bounds(wins []*window, selected [][]int64) []density.LayerBounds {
	nl := len(e.lay.Layers)
	out := make([]density.LayerBounds, nl)
	for li := 0; li < nl; li++ {
		lower := grid.NewMap(e.g)
		upper := grid.NewMap(e.g)
		for k, w := range wins {
			aw := float64(w.rect.Area())
			if aw == 0 {
				continue
			}
			wl := w.layers[li]
			var fillable int64
			if selected != nil {
				fillable = selected[k][li]
			} else {
				for _, c := range wl.cells {
					fillable += c.rect.Area()
				}
			}
			lower.V[k] = float64(wl.wireArea) / aw
			upper.V[k] = float64(wl.wireArea+fillable) / aw
		}
		out[li] = density.LayerBounds{Lower: lower, Upper: upper}
	}
	return out
}

// selectedAreas sums the selected candidate area per window per layer.
func selectedAreas(wins []*window, nl int) [][]int64 {
	out := make([][]int64, len(wins))
	for k, w := range wins {
		out[k] = make([]int64, nl)
		for _, c := range w.sel {
			out[k][c.layer] += c.rect.Area()
		}
	}
	return out
}

// windowTargets converts the per-layer target densities into per-window
// target fill areas, clamped to what the window can hold (Eqn. 5).
func (e *Engine) windowTargets(w *window, td []float64) []int64 {
	nl := len(w.layers)
	out := make([]int64, nl)
	selArea := make([]int64, nl)
	for _, c := range w.sel {
		selArea[c.layer] += c.rect.Area()
	}
	aw := float64(w.rect.Area())
	for l := 0; l < nl; l++ {
		want := int64(td[l]*aw) - w.layers[l].wireArea
		if want < 0 {
			want = 0
		}
		if want > selArea[l] {
			want = selArea[l]
		}
		out[l] = want
	}
	return out
}

// forEachWindow applies fn to every window, in parallel across workers.
// The first error wins; all workers drain.
func (e *Engine) forEachWindow(wins []*window, fn func(*window) error) error {
	workers := e.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(wins) {
		workers = len(wins)
	}
	if workers <= 1 {
		for _, w := range wins {
			if err := fn(w); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	work := make(chan *window)
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for w := range work {
				if err := fn(w); err != nil {
					select {
					case errCh <- err:
					default:
					}
				}
			}
		}()
	}
	for _, w := range wins {
		work <- w
	}
	close(work)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}
