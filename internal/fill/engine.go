package fill

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"slices"
	"sync"
	"sync/atomic"

	"dummyfill/internal/density"
	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
	"dummyfill/internal/layout"
	"dummyfill/internal/score"
)

// Engine runs the full fill insertion flow of Fig. 3 over a layout.
type Engine struct {
	lay  *layout.Layout
	opts Options
	g    *grid.Grid
	mode fillMode
}

// Result is the outcome of a full engine run.
type Result struct {
	Solution layout.Solution
	// FirstTargets and Targets are the per-layer target densities from the
	// two planning rounds (before and after candidate generation).
	FirstTargets []float64
	Targets      []float64
	// Candidates is the number of candidate fills selected by Alg. 1
	// before sizing and pruning.
	Candidates int
	// UpperBounds are the per-layer achievable-density maps used by the
	// second planning round (wire + selected candidate area per window),
	// useful for diagnosing coverage limits.
	UpperBounds []*grid.Map
	// Windows is the number of grid windows processed.
	Windows int
	// Health reports how gracefully the run completed: solver fallback
	// counts, degraded/skipped windows, recovered panics, budget use.
	Health Health
}

// New validates the layout and constructs an engine.
func New(lay *layout.Layout, opts Options) (*Engine, error) {
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	if opts.Lambda < 1 {
		return nil, fmt.Errorf("fill: Lambda must be >= 1, got %v", opts.Lambda)
	}
	if opts.Solver == nil && opts.NewSolver == nil {
		return nil, fmt.Errorf("fill: Options.Solver or Options.NewSolver is required (use DefaultOptions)")
	}
	if opts.MaxSizingPasses < 1 {
		return nil, fmt.Errorf("fill: MaxSizingPasses must be >= 1, got %d", opts.MaxSizingPasses)
	}
	if opts.Budget < 0 {
		return nil, fmt.Errorf("fill: Budget must be >= 0 (0 = unlimited), got %v", opts.Budget)
	}
	g, err := lay.Grid()
	if err != nil {
		return nil, err
	}
	e := &Engine{lay: lay, opts: opts, g: g}
	if e.mode, err = newFillMode(e); err != nil {
		return nil, err
	}
	return e, nil
}

// Run executes the flow: prepare windows → density planning → candidate
// generation (Alg. 1) → density re-planning → sizing via dual min-cost
// flow → solution assembly. It is RunContext without cancellation.
func (e *Engine) Run() (*Result, error) { return e.RunContext(context.Background()) }

// RunContext is Run under a context. Cancellation is a hard abort: the
// run stops at the next phase boundary, window claim or solver stride and
// returns the context's error with no partial Result. For graceful
// time-limited runs use Options.Budget instead, which degrades remaining
// windows and still returns a complete, DRC-clean solution.
//
// The result is deterministic regardless of Workers: every parallel stage
// writes only window-owned state, fault and fallback decisions are keyed
// by window index, and the sized fills are released to the solution in
// canonical window order (then canonically sorted) no matter how workers
// were scheduled.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	sink := &solutionSink{fills: make([]layout.Fill, 0)}
	res, err := e.runPipeline(ctx, sink)
	if err != nil {
		return nil, err
	}
	sortFills(sink.fills)
	res.Solution = layout.Solution{Fills: sink.fills}
	return res, nil
}

// sortFills orders fills by (layer, YL, XL, YH, XH) — a canonical order
// independent of worker scheduling and window traversal.
func sortFills(fills []layout.Fill) {
	cmp64 := func(a, b int64) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	slices.SortFunc(fills, func(a, b layout.Fill) int {
		if a.Layer != b.Layer {
			return a.Layer - b.Layer
		}
		if c := cmp64(a.Rect.YL, b.Rect.YL); c != 0 {
			return c
		}
		if c := cmp64(a.Rect.XL, b.Rect.XL); c != 0 {
			return c
		}
		if c := cmp64(a.Rect.YH, b.Rect.YH); c != 0 {
			return c
		}
		return cmp64(a.Rect.XH, b.Rect.XH)
	})
}

// applyMinDensity floors the planned targets at Options.MinDensity.
func (e *Engine) applyMinDensity(td []float64) {
	if e.opts.MinDensity <= 0 {
		return
	}
	for l := range td {
		if td[l] < e.opts.MinDensity {
			td[l] = e.opts.MinDensity
		}
	}
}

// planWeights derives planning weights from contest α weights with
// layout-scale βs: planning only needs relative weighting, so βs are set
// from the unfilled layout's metrics (worst case) to keep all three terms
// in range. wd are the prep-derived wire density maps.
func (e *Engine) planWeights(wd []*grid.Map) density.PlanWeights {
	c := score.ContestAlphas()
	// Baseline metrics of the unfilled layout.
	var sumSigma, sumLine, sumOut float64
	for _, m := range wd {
		met := density.Measure(m)
		sumSigma += met.Sigma
		sumLine += met.Line
		sumOut += met.Outlier
	}
	w := density.PlanWeights{
		AlphaVar: c.AlphaVar, BetaVar: sumSigma,
		AlphaLine: c.AlphaLine, BetaLine: sumLine,
		AlphaOutlier: c.AlphaOutlier, BetaOutlier: sumSigma * sumOut,
	}
	// Guard against perfectly uniform inputs.
	if w.BetaVar <= 0 {
		w.BetaVar = 1
	}
	if w.BetaLine <= 0 {
		w.BetaLine = 1
	}
	if w.BetaOutlier <= 0 {
		w.BetaOutlier = 1
	}
	return w
}

// prepScratch is the per-task scratch of the parallel window preparation.
type prepScratch struct {
	clips [][]geom.Rect
	cnt   []int32
}

var prepPool = sync.Pool{New: func() any { return new(prepScratch) }}

// prepareWindows clips fill regions and wires into windows: each window
// layer ends up with its inset free pieces and the disjoint union slabs
// (plus exact union area) of its wires. Candidate cells are not
// materialized here — selection tiles them on demand from the free pieces.
//
// The work is sharded per (layer, window-row) stripe: a serial binning
// pass assigns each shape to the rows it overlaps, then stripe tasks run
// on the worker pool, each exclusively owning the (window, layer) states
// of its row. Appends follow input shape order, so the prepared windows
// are identical to a serial run. A non-nil error is only ever the
// context's cancellation error.
func (e *Engine) prepareWindows(ctx context.Context) ([]*window, error) {
	nw := e.g.NumWindows()
	nl := len(e.lay.Layers)
	nx, ny := e.g.NX, e.g.NY
	wins := make([]*window, nw)
	winStore := make([]window, nw)
	layerStore := make([]winLayer, nw*nl)
	for k := 0; k < nw; k++ {
		i, j := k%nx, k/nx
		winStore[k] = window{rect: e.g.Window(i, j), layers: layerStore[k*nl : (k+1)*nl : (k+1)*nl]}
		wins[k] = &winStore[k]
	}

	// Serial binning: per layer, the fill-region and wire indices hitting
	// each window row. Index arithmetic only — no clipping yet.
	type rowBins struct {
		free, wire [][]int32
	}
	bins := make([]rowBins, nl)
	for li := range e.lay.Layers {
		layer := e.lay.Layers[li]
		bins[li].free = make([][]int32, ny)
		bins[li].wire = make([][]int32, ny)
		for si, fr := range layer.FillRegions {
			if _, j0, _, j1, ok := e.g.CellRange(fr); ok {
				for j := j0; j <= j1; j++ {
					bins[li].free[j] = append(bins[li].free[j], int32(si))
				}
			}
		}
		for si, wr := range layer.Wires {
			if _, j0, _, j1, ok := e.g.CellRange(wr); ok {
				for j := j0; j <= j1; j++ {
					bins[li].wire[j] = append(bins[li].wire[j], int32(si))
				}
			}
		}
	}

	// Free-region pieces (and hence the cells tiled from them) may abut:
	// Difference-slab decomposition splits regions into touching slabs and
	// window clipping cuts regions at window borders. The mode's clipFree
	// applies its legality margin to every window-clipped piece (rect mode
	// insets by half the minimum spacing; site mode shrinks by the padding
	// keepout) so cells placed in it are pairwise legal from birth —
	// including across window boundaries, which per-window sizing could
	// not repair.

	// Stripe tasks: task t covers layer t/ny, window row t%ny.
	err := e.parallelForStage(ctx, nl*ny, "prep", func(_ context.Context, t int) error {
		li, j := t/ny, t%ny
		layer := e.lay.Layers[li]
		sc := prepPool.Get().(*prepScratch)
		defer prepPool.Put(sc)
		if cap(sc.clips) < nx {
			sc.clips = make([][]geom.Rect, nx)
		}
		clips := sc.clips[:nx]
		if cap(sc.cnt) < nx {
			sc.cnt = make([]int32, nx)
		}
		cnt := sc.cnt[:nx]
		for i := range cnt {
			cnt[i] = 0
		}

		// Free regions: count per window, then fill exact-capacity buckets.
		for _, si := range bins[li].free[j] {
			if i0, _, i1, _, ok := e.g.CellRange(layer.FillRegions[si]); ok {
				for i := i0; i <= i1; i++ {
					cnt[i]++
				}
			}
		}
		for i := 0; i < nx; i++ {
			if cnt[i] > 0 {
				wins[j*nx+i].layers[li].free = make([]geom.Rect, 0, cnt[i])
			}
		}
		for _, si := range bins[li].free[j] {
			fr := layer.FillRegions[si]
			i0, _, i1, _, ok := e.g.CellRange(fr)
			if !ok {
				continue
			}
			for i := i0; i <= i1; i++ {
				clip := e.mode.clipFree(fr, wins[j*nx+i].rect)
				if clip.Empty() {
					continue
				}
				wl := &wins[j*nx+i].layers[li]
				wl.free = append(wl.free, clip)
			}
		}

		// Wires: record per-window incident wire indices (4 bytes each,
		// retained until the window is emitted) and compute the exact
		// union wire area from per-column clip buckets. Later stages
		// re-clip from the indices into pooled scratch on demand — no
		// stage rescans the layout's full wire list, and no clipped wire
		// geometry is retained across the run.
		for i := range cnt {
			cnt[i] = 0
		}
		for _, si := range bins[li].wire[j] {
			if i0, _, i1, _, ok := e.g.CellRange(layer.Wires[si]); ok {
				for i := i0; i <= i1; i++ {
					cnt[i]++
				}
			}
		}
		for i := 0; i < nx; i++ {
			if cnt[i] > 0 {
				wins[j*nx+i].layers[li].wires = make([]int32, 0, cnt[i])
			}
		}
		for _, si := range bins[li].wire[j] {
			wr := layer.Wires[si]
			i0, _, i1, _, ok := e.g.CellRange(wr)
			if !ok {
				continue
			}
			for i := i0; i <= i1; i++ {
				if c := wr.Intersect(wins[j*nx+i].rect); !c.Empty() {
					wl := &wins[j*nx+i].layers[li]
					wl.wires = append(wl.wires, int32(si))
					clips[i] = append(clips[i], c)
				}
			}
		}
		for i := 0; i < nx; i++ {
			if len(clips[i]) > 0 {
				wins[j*nx+i].layers[li].wireArea = geom.UnionArea(clips[i])
				clips[i] = clips[i][:0]
			}
		}
		sc.clips = clips
		return nil
	})
	if err != nil {
		return nil, err
	}
	return wins, nil
}

// windowTargets converts the per-layer target densities into per-window
// target fill areas, clamped to what the window can hold (Eqn. 5). The
// returned slice aliases scratch storage.
func (e *Engine) windowTargets(w *window, td []float64, sc *sizeScratch) []int64 {
	nl := len(w.layers)
	out := growI64(sc.targets, nl)
	sc.targets = out
	selArea := growI64(sc.selArea, nl)
	sc.selArea = selArea
	for _, c := range w.sel {
		selArea[c.layer] += c.rect.Area()
	}
	aw := float64(w.rect.Area())
	for l := 0; l < nl; l++ {
		want := int64(td[l]*aw) - w.layers[l].wireArea
		if want < 0 {
			want = 0
		}
		if want > selArea[l] {
			want = selArea[l]
		}
		out[l] = want
	}
	return out
}

// workerCount resolves the worker-pool size for n independent tasks.
func (e *Engine) workerCount(n int) int {
	workers := e.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelFor runs fn(ctx, idx) for every idx in [0,n) across the worker
// pool. The first error cancels the run promptly and is returned: the
// pool's derived context is cancelled immediately, so in-flight siblings
// blocked inside fn observe ctx.Done() without waiting for a task
// boundary, and no new task is claimed after a failure. Cancellation of
// the parent context likewise stops the pool and returns its error.
func (e *Engine) parallelFor(ctx context.Context, n int, fn func(ctx context.Context, idx int) error) error {
	return e.parallelForStage(ctx, n, "", fn)
}

// parallelForStage is parallelFor with a pprof stage label: when stage is
// non-empty, every worker (and the serial path) runs under
// {"stage": stage} so CPU profiles attribute samples to pipeline stages.
func (e *Engine) parallelForStage(ctx context.Context, n int, stage string, fn func(ctx context.Context, idx int) error) error {
	body := func(ctx context.Context, run func(ctx context.Context)) {
		if stage == "" {
			run(ctx)
			return
		}
		pprof.Do(ctx, pprof.Labels("stage", stage), run)
	}
	workers := e.workerCount(n)
	if workers <= 1 {
		var serr error
		body(ctx, func(ctx context.Context) {
			for idx := 0; idx < n; idx++ {
				if serr = ctx.Err(); serr != nil {
					return
				}
				if serr = fn(ctx, idx); serr != nil {
					return
				}
			}
		})
		return serr
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		firstErr error
		once     sync.Once
		wg       sync.WaitGroup
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(wctx, func(ctx context.Context) {
				for ctx.Err() == nil {
					idx := int(next.Add(1)) - 1
					if idx >= n {
						return
					}
					if err := fn(ctx, idx); err != nil {
						once.Do(func() { firstErr = err })
						cancel()
						return
					}
				}
			})
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// forEachWindow applies fn to every window, in parallel across workers.
// The first error wins and cancels outstanding work.
func (e *Engine) forEachWindow(ctx context.Context, wins []*window, fn func(ctx context.Context, k int, w *window) error) error {
	return e.forEachWindowStage(ctx, wins, "", fn)
}

// forEachWindowStage is forEachWindow under a pprof stage label.
func (e *Engine) forEachWindowStage(ctx context.Context, wins []*window, stage string, fn func(ctx context.Context, k int, w *window) error) error {
	return e.parallelForStage(ctx, len(wins), stage, func(ctx context.Context, k int) error { return fn(ctx, k, wins[k]) })
}
