package fill

import (
	"strings"
	"testing"

	"dummyfill/internal/synth"
)

// TestNewFillModeValidation covers the mode resolver's error surface:
// unknown mode names, site mode on a lattice-free layout, and negative
// padding must all fail engine construction with a telling error.
func TestNewFillModeValidation(t *testing.T) {
	row, err := synth.Generate(synth.DesignRow())
	if err != nil {
		t.Fatal(err)
	}
	flat, err := synth.Generate(synth.DesignTiny())
	if err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions()
	opts.Mode = "hexagonal"
	if _, err := New(row, opts); err == nil || !strings.Contains(err.Error(), "hexagonal") {
		t.Errorf("unknown mode: got %v, want an error naming the mode", err)
	}

	opts = DefaultOptions()
	opts.Mode = ModeSite
	if _, err := New(flat, opts); err == nil {
		t.Error("site mode accepted a layout without a site lattice")
	}

	opts = DefaultOptions()
	opts.Mode = ModeSite
	opts.SitePad = -1
	if _, err := New(row, opts); err == nil {
		t.Error("site mode accepted negative padding")
	}

	for _, name := range []string{"", ModeRect} {
		opts = DefaultOptions()
		opts.Mode = name
		if _, err := New(row, opts); err != nil {
			t.Errorf("mode %q: %v", name, err)
		}
	}
	opts = DefaultOptions()
	opts.Mode = ModeSite
	if _, err := New(row, opts); err != nil {
		t.Errorf("site mode on the row design: %v", err)
	}
}

// TestModeCacheIDs checks that the cache identity separates what must
// never share entries: rect vs site results, and site results under
// different paddings (padding changes the legal free space).
func TestModeCacheIDs(t *testing.T) {
	row, err := synth.Generate(synth.DesignRow())
	if err != nil {
		t.Fatal(err)
	}
	id := func(mode string, pad int) string {
		opts := DefaultOptions()
		opts.Mode = mode
		opts.SitePad = pad
		e, err := New(row, opts)
		if err != nil {
			t.Fatal(err)
		}
		return e.mode.cacheID()
	}
	rect, site0, site1 := id(ModeRect, 0), id(ModeSite, 0), id(ModeSite, 1)
	if rect == site0 {
		t.Errorf("rect and site modes share cache identity %q", rect)
	}
	if site0 == site1 {
		t.Errorf("site pads 0 and 1 share cache identity %q", site0)
	}
	if id(ModeSite, 1) != site1 {
		t.Error("site cache identity is not deterministic")
	}
}
