package fill

import (
	"context"
	"math"
	"reflect"
	"runtime"
	"sync"

	"dummyfill/internal/faultinject"
	"dummyfill/internal/fillcache"
	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
	"dummyfill/internal/layout"
)

// This file threads the persistent content-addressed window cache
// (internal/fillcache) through the streaming pipeline.
//
// Caching leans on the determinism contract the golden-hash tests pin:
// a window's sized fills are a pure function of (window content, plan-1
// targets, plan-2 targets, engine options) — never of scheduling, worker
// identity, or warm solver state. So the cache keys on the content and
// the fingerprint alone, stores the plan targets inside the entry, and
// validates them bit-for-bit at use time:
//
//   - key miss, or Td1 drift ........ full recompute, entry overwritten
//   - Td1 match ("selection hit") ... candgen is skipped; the entry's
//     per-layer selected area feeds planning round 2 (it is exactly what
//     candgen would have produced, so round 2 sees identical bounds)
//   - Td1+Td2 match ("replay") ...... sizing is skipped too; the stored
//     fills are translated to the window's position and released into
//     the ordinary reorder/emitter path
//   - Td1 match, Td2 drift ("stale").. candgen reruns late from the
//     retained free pieces, sizing runs normally, entry is overwritten
//
// Storing targets instead of keying on them is what makes ECO loops
// cache well: plans are global, so keying on them would invalidate every
// window whenever any window changed.
//
// Interactions with the robustness machinery:
//   - engine-level fault injection (solver/budget sites) is keyed by
//     window index, not content; replaying healthy cached results would
//     silently defuse the requested fault pattern, so the cache disables
//     itself for the run when any such site is active. SiteCacheLoad is
//     the cache's own site and does not disable it.
//   - budget-degraded and no-shrink windows are never written back:
//     degradation is wall-clock (or fault) driven, not content-driven,
//     and must not become sticky through the cache. Only tier-0 (warm
//     solver, no panic) results are stored.
//   - a corrupt, truncated or torn entry — organic or injected — counts
//     in Health.CacheErrors and falls back to a clean recompute.

// engineCacheVersion names the geometry-producing algorithm generation.
// Bump it whenever a change alters emitted fills for unchanged inputs
// (i.e. whenever the golden GDS hashes are re-recorded), so stale
// entries from older binaries can never replay into new runs.
const engineCacheVersion = "dummyfill/fill-engine/v1"

// cacheStatus is the per-window outcome of the lookup/resolve phases.
type cacheStatus uint8

const (
	cacheMiss   cacheStatus = iota // no usable entry: recompute + write back
	cacheSel                       // Td1 matched: selection known, Td2 pending
	cacheReplay                    // Td1+Td2 matched: replay stored fills
	cacheStale                     // Td2 drifted: rerun candgen + sizing, overwrite
)

// cacheState is the run-local cache bookkeeping: one key, status and
// (for hits) entry per window. It is created after planning round 1 and
// mutated only at phase boundaries or under window ownership, so the
// parallel stages need no locking beyond the error counter.
type cacheState struct {
	c        *fillcache.Cache
	inj      *faultinject.Injector
	keys     []fillcache.Key
	status   []cacheStatus
	entries  []*fillcache.Entry
	td1, td2 []float64
	errs     *healthCollector
}

// selValid reports whether window k's selection summary (SelArea,
// NumSel) may substitute for running candidate generation.
func (cs *cacheState) selValid(k int) bool {
	return cs != nil && cs.status[k] != cacheMiss
}

// replay reports whether window k's stored fills may be emitted as-is.
func (cs *cacheState) replay(k int) bool {
	return cs != nil && cs.status[k] == cacheReplay
}

// cacheActive decides whether this run uses the cache at all. See the
// file comment for why engine-level fault injection disables it.
func (e *Engine) cacheActive() bool {
	if e.opts.Cache == nil {
		return false
	}
	return !e.opts.Inject.ActiveAny(
		faultinject.SiteWarmSolve, faultinject.SiteColdSolve, faultinject.SiteSimplexSolve,
		faultinject.SitePanic, faultinject.SiteCorrupt, faultinject.SiteBudget,
	)
}

// solverID names the configured solver for the fingerprint. Different
// solvers may legitimately produce different (all-valid) solutions, so
// entries must not migrate between them. The runtime symbol name is
// stable across runs and builds of the same source.
func solverID(o Options) string {
	var p uintptr
	if o.Solver != nil {
		p = reflect.ValueOf(o.Solver).Pointer()
	} else {
		p = reflect.ValueOf(o.NewSolver).Pointer()
	}
	if f := runtime.FuncForPC(p); f != nil {
		return f.Name()
	}
	return "unknown-solver"
}

// cacheFingerprint hashes every run-level input that shapes per-window
// geometry besides the window content and the plan targets: engine
// version, DRC rules, and the sizing/selection options. PlanSteps and
// MinDensity are deliberately absent — they only act through the plan
// targets, which entries validate directly. Workers, Shards, Budget and
// Inject affect scheduling, wall-clock or fault patterns, never the
// fills of a healthy window.
func (e *Engine) cacheFingerprint() fillcache.Key {
	h := fillcache.NewHasher()
	h.String(engineCacheVersion)
	r := e.lay.Rules
	h.Int64(r.MinWidth)
	h.Int64(r.MinSpace)
	h.Int64(r.MinArea)
	h.Int64(r.MaxFillDim)
	o := e.opts
	h.Float64(o.Lambda)
	h.Float64(o.Gamma)
	h.Int64(o.Eta)
	h.Int64(int64(o.MaxSizingPasses))
	h.Float64(o.MaxAspect)
	h.String(solverID(o))
	h.String(e.mode.cacheID())
	return h.Sum()
}

// keyScratch is the pooled per-worker scratch of the lookup stage.
type keyScratch struct {
	h     *fillcache.Hasher
	clips []geom.Rect
}

var keyPool = sync.Pool{New: func() any { return &keyScratch{h: fillcache.NewHasher()} }}

// windowKey hashes window w's content under the fingerprint prefix. All
// coordinates are window-relative, so identical windows anywhere on the
// die (or in other designs sharing the fingerprint) address one entry.
// The serialization order is fixed: window extent, then per layer the
// free pieces, the wire clips (in preparation index order — the same
// order every downstream consumer sees) and the union wire area.
func (e *Engine) windowKey(fp fillcache.Key, w *window, ks *keyScratch) fillcache.Key {
	h := ks.h
	h.Reset()
	h.Bytes(fp[:])
	ox, oy := w.rect.XL, w.rect.YL
	h.Int64(w.rect.XH - ox)
	h.Int64(w.rect.YH - oy)
	h.Int64(int64(len(w.layers)))
	for li := range w.layers {
		wl := &w.layers[li]
		h.Int64(int64(len(wl.free)))
		for _, fr := range wl.free {
			h.Rect(fr.Translate(-ox, -oy))
		}
		ks.clips = w.wireClips(ks.clips, e.lay, li)
		h.Int64(int64(len(ks.clips)))
		for _, c := range ks.clips {
			h.Rect(c.Translate(-ox, -oy))
		}
		h.Int64(wl.wireArea)
	}
	e.mode.windowKeyExtra(w, h)
	return h.Sum()
}

// equalBits compares target-density slices bit-for-bit: the cache's
// notion of "same plan" is exact reproduction, not numeric closeness.
func equalBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// cacheLookup runs after planning round 1: it keys every window, loads
// candidate entries, and validates their Td1 against the fresh plan.
// Returns nil when the cache is inactive for this run.
func (e *Engine) cacheLookup(ctx context.Context, wins []*window, td1 []float64, hc *healthCollector) (*cacheState, error) {
	if !e.cacheActive() {
		return nil, nil
	}
	cs := &cacheState{
		c:       e.opts.Cache,
		inj:     e.opts.Inject,
		keys:    make([]fillcache.Key, len(wins)),
		status:  make([]cacheStatus, len(wins)),
		entries: make([]*fillcache.Entry, len(wins)),
		td1:     td1,
		errs:    hc,
	}
	fp := e.cacheFingerprint()
	err := e.forEachWindowStage(ctx, wins, "cache", func(_ context.Context, k int, w *window) error {
		ks := keyPool.Get().(*keyScratch)
		defer keyPool.Put(ks)
		cs.keys[k] = e.windowKey(fp, w, ks)
		ent, err := cs.c.Get(cs.keys[k])
		if err != nil {
			hc.cacheErrs.Add(1)
			return nil // corrupt entry: clean miss
		}
		if ent != nil && cs.inj.Hit(faultinject.SiteCacheLoad, uint64(k)) {
			// Injected torn read: discard the loaded entry exactly as the
			// integrity check would have.
			hc.cacheErrs.Add(1)
			ent = nil
		}
		if ent == nil || !equalBits(ent.Td1, td1) {
			return nil
		}
		cs.entries[k] = ent
		cs.status[k] = cacheSel
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cs, nil
}

// cacheResolve runs after planning round 2: selection hits whose Td2
// also matches become replays; the rest are stale and rerun candidate
// generation now (late, from the free pieces the candgen stage retained
// for them). Replay windows drop their free pieces here. The final
// status counts feed Health.
func (e *Engine) cacheResolve(ctx context.Context, wins []*window, cs *cacheState, td2 []float64, hc *healthCollector) error {
	if cs == nil {
		return nil
	}
	cs.td2 = td2
	var stale []int
	hits, misses := 0, 0
	for k, st := range cs.status {
		switch st {
		case cacheMiss:
			misses++
		case cacheSel:
			if equalBits(cs.entries[k].Td2, td2) {
				cs.status[k] = cacheReplay
				hits++
				w := wins[k]
				for li := range w.layers {
					w.layers[li].free = nil
				}
			} else {
				cs.status[k] = cacheStale
				stale = append(stale, k)
			}
		}
	}
	hc.cacheHits = hits
	hc.cacheMisses = misses
	hc.cacheStale = len(stale)
	if len(stale) == 0 {
		return nil
	}
	return e.parallelForStage(ctx, len(stale), "candgen", func(_ context.Context, i int) error {
		w := wins[stale[i]]
		e.mode.selectCandidates(w, cs.td1)
		for li := range w.layers {
			w.layers[li].free = nil
		}
		return nil
	})
}

// replayFills translates window k's cached fills from window-relative to
// die coordinates, counting the window as sized (or skipped when the
// cached result is empty) so Health matches a cold run.
func (cs *cacheState) replayFills(k int, w *window, hc *healthCollector) []layout.Fill {
	ent := cs.entries[k]
	if len(ent.Fills) == 0 {
		hc.skipped.Add(1)
		return nil
	}
	hc.sized.Add(1)
	ox, oy := w.rect.XL, w.rect.YL
	fills := make([]layout.Fill, len(ent.Fills))
	for i, f := range ent.Fills {
		fills[i] = layout.Fill{Layer: f.Layer, Rect: f.Rect.Translate(ox, oy)}
	}
	return fills
}

// store writes window k's freshly computed result back. Called from the
// size+emit workers (window-owned state only; fillcache.Put is atomic
// and concurrency-safe). cacheable is false for degraded / fallback-tier
// windows, which must never enter the cache. Errors are best-effort:
// they count in Health.CacheErrors and the run proceeds.
func (cs *cacheState) store(k int, w *window, fills []layout.Fill, cacheable bool, hc *healthCollector) {
	if cs == nil || cs.status[k] == cacheReplay || !cacheable {
		return
	}
	nl := len(w.layers)
	ent := &fillcache.Entry{
		Td1:     cs.td1,
		Td2:     cs.td2,
		SelArea: make([]int64, nl),
		NumSel:  len(w.sel),
	}
	for _, c := range w.sel {
		ent.SelArea[c.layer] += c.rect.Area()
	}
	if len(fills) > 0 {
		ox, oy := w.rect.XL, w.rect.YL
		ent.Fills = make([]layout.Fill, len(fills))
		for i, f := range fills {
			ent.Fills[i] = layout.Fill{Layer: f.Layer, Rect: f.Rect.Translate(-ox, -oy)}
		}
	}
	if err := cs.c.Put(cs.keys[k], ent); err != nil {
		hc.cacheErrs.Add(1)
	}
}

// WindowDigest summarizes one window's cache-relevant content for
// `fillgen -diff`: Key is the full content address (what the cache
// actually keys on), and the three sub-digests attribute a difference to
// its cause. Interior covers wires lying entirely inside the window,
// Halo the clipped parts of wires crossing the window border (i.e.
// geometry reaching in from neighbours), Regions the free fill-region
// pieces. All coordinates are window-relative, like the cache key.
type WindowDigest struct {
	Key      fillcache.Key
	Interior fillcache.Key
	Halo     fillcache.Key
	Regions  fillcache.Key
}

// WindowDigests prepares lay's windows exactly as a run would and
// returns the per-window digests in canonical window order, plus the
// grid for index↔position mapping. opts must be the options the runs
// use: the full Key embeds the engine fingerprint, so digests predict
// cache invalidation exactly.
func WindowDigests(ctx context.Context, lay *layout.Layout, opts Options) (*grid.Grid, []WindowDigest, error) {
	e, err := New(lay, opts)
	if err != nil {
		return nil, nil, err
	}
	wins, err := e.prepareWindows(ctx)
	if err != nil {
		return nil, nil, err
	}
	fp := e.cacheFingerprint()
	ds := make([]WindowDigest, len(wins))
	err = e.forEachWindowStage(ctx, wins, "digest", func(_ context.Context, k int, w *window) error {
		ks := keyPool.Get().(*keyScratch)
		defer keyPool.Put(ks)
		ds[k].Key = e.windowKey(fp, w, ks)

		interior, halo, regions := fillcache.NewHasher(), fillcache.NewHasher(), fillcache.NewHasher()
		ox, oy := w.rect.XL, w.rect.YL
		for li := range w.layers {
			wl := &w.layers[li]
			interior.Int64(int64(li))
			halo.Int64(int64(li))
			regions.Int64(int64(li))
			for _, fr := range wl.free {
				regions.Rect(fr.Translate(-ox, -oy))
			}
			wires := lay.Layers[li].Wires
			for _, si := range wl.wires {
				wr := wires[si]
				c := wr.Intersect(w.rect)
				if c.Empty() {
					continue
				}
				if w.rect.ContainsRect(wr) {
					interior.Rect(c.Translate(-ox, -oy))
				} else {
					halo.Rect(c.Translate(-ox, -oy))
				}
			}
		}
		ds[k].Interior = interior.Sum()
		ds[k].Halo = halo.Sum()
		ds[k].Regions = regions.Sum()
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return e.g, ds, nil
}
