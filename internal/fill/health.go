package fill

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Health reports how gracefully a run completed: how many windows were
// sized by which solver tier, how many degraded to unshrunk candidates,
// and whether the soft time budget expired. A fully healthy run has
// Sized+Skipped == Windows and all other counters zero.
//
// The per-window counters are deterministic for a given layout, options
// and fault seed — they count window-keyed decisions, not scheduling
// accidents — so they are safe to assert on across Workers settings.
// BudgetExceeded and Elapsed are wall-clock dependent.
type Health struct {
	// Windows is the number of grid windows processed.
	Windows int `json:"windows"`
	// Sized counts windows whose sizing LP converged on some solver tier.
	Sized int `json:"sized"`
	// Skipped counts windows with no selected candidates (nothing to size).
	Skipped int `json:"skipped,omitempty"`
	// FallbackCold counts sized windows that needed the cold SPFA tier
	// after the warm-started solver failed.
	FallbackCold int `json:"fallback_cold,omitempty"`
	// FallbackSimplex counts sized windows that fell through to the dense
	// simplex tier.
	FallbackSimplex int `json:"fallback_simplex,omitempty"`
	// Degraded counts windows that exhausted the solver chain (or hit the
	// budget) and emitted their candidates unshrunk.
	Degraded int `json:"degraded,omitempty"`
	// Recovered counts solver panics caught by per-window isolation.
	Recovered int `json:"recovered,omitempty"`
	// BudgetExceeded records that the soft budget expired mid-sizing.
	BudgetExceeded bool `json:"budget_exceeded,omitempty"`
	// Budget echoes Options.Budget (0 = unlimited).
	Budget time.Duration `json:"budget,omitempty"`
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration `json:"elapsed"`
	// PeakInFlight is the maximum number of windows resident in the
	// sizing→emit stage at once (claimed by a worker but not yet released
	// toward the sink). With shards it is the worst per-shard reorder
	// buffer occupancy. Like Elapsed it depends on worker scheduling, not
	// on the input alone.
	PeakInFlight int `json:"peak_in_flight,omitempty"`
	// Shards is the number of row-band shards the run planned and emitted
	// through (1 = unsharded global pass).
	Shards int `json:"shards,omitempty"`
	// PlanDivergence is the worst absolute target-density gap between any
	// shard's halo-local planning proposal and the reconciled global
	// targets, across both planning rounds. It is deterministic for a
	// given layout and options (including Shards) and 0 when a single
	// shard covers the grid — the distributed-planning readiness signal:
	// how wrong would fully local planning have been.
	PlanDivergence float64 `json:"plan_divergence,omitempty"`
	// CacheHits counts windows replayed verbatim from Options.Cache
	// (content and both plan rounds matched a stored entry). Zero when
	// the cache is nil or bypassed.
	CacheHits int `json:"cache_hits,omitempty"`
	// CacheMisses counts windows with no usable cache entry (absent,
	// corrupt, or solved under different round-1 targets); they computed
	// from scratch and were written back.
	CacheMisses int `json:"cache_misses,omitempty"`
	// CacheStale counts windows whose entry matched content and round-1
	// targets but not round-2: candidate generation was reused, sizing
	// reran, and the entry was overwritten.
	CacheStale int `json:"cache_stale,omitempty"`
	// CacheErrors counts corrupt/torn entry loads (organic or injected)
	// and failed write-backs. Each one degraded to a clean recompute;
	// like Elapsed it is environment-dependent, not deterministic.
	CacheErrors int `json:"cache_errors,omitempty"`
}

// Healthy reports whether every window was sized normally: no fallbacks,
// no degradation, no recovered panics, no budget expiry.
func (h Health) Healthy() bool {
	return h.FallbackCold == 0 && h.FallbackSimplex == 0 &&
		h.Degraded == 0 && h.Recovered == 0 && !h.BudgetExceeded
}

// String renders the report as one line, e.g.
//
//	windows=256 sized=250 skipped=4 cold=1 simplex=0 degraded=2 recovered=1 budget-exceeded elapsed=1.2s
func (h Health) String() string {
	s := fmt.Sprintf("windows=%d sized=%d skipped=%d cold=%d simplex=%d degraded=%d recovered=%d",
		h.Windows, h.Sized, h.Skipped, h.FallbackCold, h.FallbackSimplex, h.Degraded, h.Recovered)
	if h.BudgetExceeded {
		s += " budget-exceeded"
	}
	if h.Shards > 1 {
		s += fmt.Sprintf(" shards=%d plan-div=%.4f", h.Shards, h.PlanDivergence)
	}
	if h.CacheHits+h.CacheMisses+h.CacheStale+h.CacheErrors > 0 {
		s += fmt.Sprintf(" cache-hits=%d cache-misses=%d cache-stale=%d cache-errors=%d",
			h.CacheHits, h.CacheMisses, h.CacheStale, h.CacheErrors)
	}
	return s + fmt.Sprintf(" elapsed=%s", h.Elapsed.Round(time.Millisecond))
}

// healthCollector accumulates Health counters across window workers.
type healthCollector struct {
	sized, skipped, cold, simplex, degraded, recovered atomic.Int64
	peak                                               atomic.Int64
	cacheErrs                                          atomic.Int64
	budgetExceeded                                     atomic.Bool
	// shards, planDivergence and the cache status counts are written only
	// by the coordinating pipeline goroutine, between parallel phases —
	// no atomics needed.
	shards         int
	planDivergence float64
	cacheHits      int
	cacheMisses    int
	cacheStale     int
}

// noteDivergence records a shard proposal's divergence from the
// reconciled plan (max wins). Called only from the pipeline goroutine.
func (hc *healthCollector) noteDivergence(d float64) {
	if d > hc.planDivergence {
		hc.planDivergence = d
	}
}

// notePeak records an observed in-flight peak (max wins).
func (hc *healthCollector) notePeak(p int) {
	for {
		cur := hc.peak.Load()
		if int64(p) <= cur || hc.peak.CompareAndSwap(cur, int64(p)) {
			return
		}
	}
}

// health snapshots the counters into a Health report.
func (hc *healthCollector) health(windows int, budget, elapsed time.Duration) Health {
	return Health{
		Windows:         windows,
		Sized:           int(hc.sized.Load()),
		Skipped:         int(hc.skipped.Load()),
		FallbackCold:    int(hc.cold.Load()),
		FallbackSimplex: int(hc.simplex.Load()),
		Degraded:        int(hc.degraded.Load()),
		Recovered:       int(hc.recovered.Load()),
		BudgetExceeded:  hc.budgetExceeded.Load(),
		Budget:          budget,
		Elapsed:         elapsed,
		PeakInFlight:    int(hc.peak.Load()),
		Shards:          hc.shards,
		PlanDivergence:  hc.planDivergence,
		CacheHits:       hc.cacheHits,
		CacheMisses:     hc.cacheMisses,
		CacheStale:      hc.cacheStale,
		CacheErrors:     int(hc.cacheErrs.Load()),
	}
}
