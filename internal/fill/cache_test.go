package fill

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dummyfill/internal/faultinject"
	"dummyfill/internal/fillcache"
	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
)

func translateRects(rs []geom.Rect, dx, dy int64) []geom.Rect {
	out := make([]geom.Rect, len(rs))
	for i, r := range rs {
		out[i] = r.Translate(dx, dy)
	}
	return out
}

func translateFills(fs []layout.Fill, dx, dy int64) []layout.Fill {
	out := make([]layout.Fill, len(fs))
	for i, f := range fs {
		out[i] = layout.Fill{Layer: f.Layer, Rect: f.Rect.Translate(dx, dy)}
	}
	return out
}

// runCache runs the engine on lay with opts, failing the test on error.
func runCache(t *testing.T, lay *layout.Layout, opts Options) *Result {
	t.Helper()
	e, err := New(lay, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func openCache(t *testing.T) *fillcache.Cache {
	t.Helper()
	c, err := fillcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCacheWarmMatchesCold is the core equivalence contract: a cold run
// that populates the cache and a warm run that replays from it produce
// identical solutions, targets and candidate counts, and the warm run's
// health accounts every window as a hit.
func TestCacheWarmMatchesCold(t *testing.T) {
	lay := tinyLayout(t)
	ref := runCache(t, lay, DefaultOptions()) // no cache at all

	cache := openCache(t)
	opts := DefaultOptions()
	opts.Cache = cache

	cold := runCache(t, lay, opts)
	sameFills(t, cold.Solution.Fills, ref.Solution.Fills, "cold-vs-uncached")
	if h := cold.Health; h.CacheHits != 0 || h.CacheMisses != h.Windows || h.CacheStale != 0 {
		t.Fatalf("cold cache counters: %+v", h)
	}

	for _, workers := range []int{1, 4} {
		warm := *&opts
		warm.Workers = workers
		res := runCache(t, lay, warm)
		sameFills(t, res.Solution.Fills, ref.Solution.Fills, "warm")
		h := res.Health
		if h.CacheHits != h.Windows || h.CacheMisses != 0 || h.CacheStale != 0 || h.CacheErrors != 0 {
			t.Fatalf("warm workers=%d cache counters: %+v", workers, h)
		}
		if res.Candidates != ref.Candidates {
			t.Fatalf("warm candidates %d, want %d", res.Candidates, ref.Candidates)
		}
		if !equalBits(res.FirstTargets, ref.FirstTargets) || !equalBits(res.Targets, ref.Targets) {
			t.Fatalf("warm plan targets drifted")
		}
		if h.Sized+h.Skipped != h.Windows {
			t.Fatalf("warm sized+skipped=%d windows=%d", h.Sized+h.Skipped, h.Windows)
		}
	}
}

// TestCacheCorruptEntriesRecompute flips and truncates real on-disk
// entries and asserts the warm run silently recomputes those windows:
// identical output, errors counted, nothing propagated.
func TestCacheCorruptEntriesRecompute(t *testing.T) {
	lay := tinyLayout(t)
	cache := openCache(t)
	opts := DefaultOptions()
	opts.Cache = cache
	cold := runCache(t, lay, opts)

	var files []string
	err := filepath.WalkDir(cache.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".dfc" {
			files = append(files, path)
		}
		return err
	})
	if err != nil || len(files) < 3 {
		t.Fatalf("want >=3 entries, got %d (err %v)", len(files), err)
	}
	// Truncate one entry, bit-flip another, empty a third.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0xff
	if err := os.WriteFile(files[1], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[2], nil, 0o644); err != nil {
		t.Fatal(err)
	}

	warm := runCache(t, lay, opts)
	sameFills(t, warm.Solution.Fills, cold.Solution.Fills, "corrupt-warm")
	h := warm.Health
	if h.CacheErrors < 3 {
		t.Fatalf("CacheErrors = %d, want >= 3", h.CacheErrors)
	}
	if h.CacheHits+h.CacheMisses+h.CacheStale != h.Windows {
		t.Fatalf("cache counters don't cover windows: %+v", h)
	}

	// The recomputed windows were written back: a third run is all hits.
	again := runCache(t, lay, opts)
	sameFills(t, again.Solution.Fills, cold.Solution.Fills, "healed-warm")
	if again.Health.CacheHits != again.Health.Windows || again.Health.CacheErrors != 0 {
		t.Fatalf("healed run counters: %+v", again.Health)
	}
}

// TestCacheInjectedTornLoad drives SiteCacheLoad: injected torn reads on
// a deterministic subset of windows must fall back to clean recomputes —
// byte-identical output, never a wrong fill or a panic.
func TestCacheInjectedTornLoad(t *testing.T) {
	lay := tinyLayout(t)
	cache := openCache(t)
	opts := DefaultOptions()
	opts.Cache = cache
	cold := runCache(t, lay, opts)

	inj := faultinject.New(42).WithRate(faultinject.SiteCacheLoad, 0.5)
	torn := opts
	torn.Inject = inj
	for _, workers := range []int{1, 4} {
		inj.ResetCounters()
		run := torn
		run.Workers = workers
		res := runCache(t, lay, run)
		sameFills(t, res.Solution.Fills, cold.Solution.Fills, "torn-load")
		h := res.Health
		fired := int(inj.Hits(faultinject.SiteCacheLoad))
		if fired == 0 {
			t.Fatal("injector never fired; rate too low for this design?")
		}
		if h.CacheErrors != fired {
			t.Fatalf("CacheErrors = %d, injector fired %d", h.CacheErrors, fired)
		}
		if h.CacheHits != h.Windows-fired {
			t.Fatalf("CacheHits = %d, want %d (windows %d - torn %d)",
				h.CacheHits, h.Windows-fired, h.Windows, fired)
		}
	}
}

// TestCacheBypassedUnderEngineFaults: engine-site faults are keyed by
// window index, not content — replaying cached healthy results would
// change the fault pattern a test requested, so the cache must stand
// aside entirely (no reads, no writes) and the faulted output must match
// the uncached faulted output.
func TestCacheBypassedUnderEngineFaults(t *testing.T) {
	lay := tinyLayout(t)
	cache := openCache(t)

	warmup := DefaultOptions()
	warmup.Cache = cache
	runCache(t, lay, warmup) // populate with healthy results

	faulted := DefaultOptions()
	faulted.Inject = faultinject.New(7).WithRate(faultinject.SitePanic, 0.3)
	ref := runCache(t, lay, faulted)
	if ref.Health.Recovered == 0 {
		t.Fatal("fault rate produced no panics; test is vacuous")
	}

	cached := faulted
	cached.Cache = cache
	before := cache.Stats()
	res := runCache(t, lay, cached)
	sameFills(t, res.Solution.Fills, ref.Solution.Fills, "faulted")
	h := res.Health
	if h.CacheHits != 0 || h.CacheMisses != 0 || h.CacheStale != 0 {
		t.Fatalf("cache used despite engine faults: %+v", h)
	}
	after := cache.Stats()
	if after != before {
		t.Fatalf("cache touched despite engine faults: %+v -> %+v", before, after)
	}
}

// TestCacheSkipsDegradedWindows: a run degraded by the wall-clock budget
// must not poison the cache — the degraded geometry never replays into a
// healthy run.
func TestCacheSkipsDegradedWindows(t *testing.T) {
	lay := tinyLayout(t)
	ref := runCache(t, lay, DefaultOptions())

	cache := openCache(t)
	degraded := DefaultOptions()
	degraded.Cache = cache
	degraded.Budget = time.Nanosecond // expires before the first window
	res := runCache(t, lay, degraded)
	if res.Health.Degraded == 0 {
		t.Fatal("budget did not degrade anything; test is vacuous")
	}

	healthy := DefaultOptions()
	healthy.Cache = cache
	out := runCache(t, lay, healthy)
	sameFills(t, out.Solution.Fills, ref.Solution.Fills, "post-degraded")
	// Only empty (skipped) windows may have been cached by the degraded
	// run; every degraded window must have missed.
	if h := out.Health; h.CacheHits > h.Skipped {
		t.Fatalf("degraded windows leaked into the cache: %+v", h)
	}
}

// TestCacheConcurrentShardWriters exercises concurrent write-back from
// sharded workers into one cache directory, then a sharded warm read.
// Meaningful mainly under -race (CI runs it there).
func TestCacheConcurrentShardWriters(t *testing.T) {
	lay := tinyLayout(t)
	ref := runCache(t, lay, DefaultOptions())
	cache := openCache(t)

	cold := DefaultOptions()
	cold.Cache = cache
	cold.Workers = 8
	cold.Shards = 4
	res := runCache(t, lay, cold)
	sameFills(t, res.Solution.Fills, ref.Solution.Fills, "sharded-cold")

	warm := cold
	warm.Workers = 6
	warm.Shards = 2
	res = runCache(t, lay, warm)
	sameFills(t, res.Solution.Fills, ref.Solution.Fills, "sharded-warm")
	if h := res.Health; h.CacheHits != h.Windows {
		t.Fatalf("sharded warm run not fully hit: %+v", h)
	}
}

// TestCachePositionIndependence: the cache key is window-relative, so a
// design translated to a different die origin replays the same entries.
func TestCachePositionIndependence(t *testing.T) {
	lay := tinyLayout(t)
	cache := openCache(t)
	opts := DefaultOptions()
	opts.Cache = cache
	runCache(t, lay, opts)

	const dx, dy = 100000, 60000
	moved := &layout.Layout{
		Name:   lay.Name,
		Die:    lay.Die.Translate(dx, dy),
		Window: lay.Window,
		Rules:  lay.Rules,
		Layers: make([]*layout.Layer, len(lay.Layers)),
	}
	for li, l := range lay.Layers {
		moved.Layers[li] = &layout.Layer{
			Wires:       translateRects(l.Wires, dx, dy),
			FillRegions: translateRects(l.FillRegions, dx, dy),
		}
	}
	res := runCache(t, lay, opts) // unmoved warm control
	if res.Health.CacheHits != res.Health.Windows {
		t.Fatalf("control warm run not fully hit: %+v", res.Health)
	}
	mres := runCache(t, moved, opts)
	if mres.Health.CacheHits != mres.Health.Windows {
		t.Fatalf("translated design missed the cache: %+v", mres.Health)
	}
	// And the fills are the originals, translated.
	want := translateFills(res.Solution.Fills, dx, dy)
	sameFills(t, mres.Solution.Fills, want, "translated")
}
