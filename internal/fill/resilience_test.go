package fill

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"dummyfill/internal/drc"
	"dummyfill/internal/faultinject"
	"dummyfill/internal/layout"
)

// runWith runs the engine on gradientLayout with the given knobs.
func runWith(t *testing.T, workers int, mutate func(*Options)) *Result {
	t.Helper()
	lay := gradientLayout()
	opts := DefaultOptions()
	opts.Workers = workers
	if mutate != nil {
		mutate(&opts)
	}
	e, err := New(lay, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if vs := drc.Check(lay, &res.Solution, true); len(vs) != 0 {
		t.Fatalf("%d DRC violations, first: %v", len(vs), vs[0])
	}
	return res
}

// sameFills asserts two solutions are geometrically identical.
func sameFills(t *testing.T, a, b []layout.Fill, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d fills vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: fill %d differs: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

// checkInvariants asserts the Health counter identities.
func checkInvariants(t *testing.T, h Health) {
	t.Helper()
	if h.Sized+h.Skipped+h.Degraded != h.Windows {
		t.Fatalf("health counters inconsistent: %s", h)
	}
	if h.FallbackCold+h.FallbackSimplex > h.Sized {
		t.Fatalf("more fallbacks than sized windows: %s", h)
	}
}

// expectedHits counts the windows in [0, windows) whose fault at site
// would fire — the deterministic ground truth for the health counters.
func expectedHits(in *faultinject.Injector, site faultinject.Site, windows int) int {
	n := 0
	for k := 0; k < windows; k++ {
		if in.Would(site, uint64(k)) {
			n++
		}
	}
	return n
}

// TestHealthyRunReportsHealthy checks the no-fault baseline: every window
// sized or skipped, nothing degraded, and the Health line renders.
func TestHealthyRunReportsHealthy(t *testing.T) {
	res := runWith(t, 4, nil)
	h := res.Health
	checkInvariants(t, h)
	if !h.Healthy() {
		t.Fatalf("no faults injected but unhealthy: %s", h)
	}
	if h.Windows != 16 || h.Sized == 0 {
		t.Fatalf("unexpected counts: %s", h)
	}
	if h.String() == "" || h.Elapsed <= 0 {
		t.Fatalf("bad render: %q", h.String())
	}
}

// TestWarmFailureFallsBackCold forces the warm MCF tier to fail on ~25%
// of windows. The run must complete DRC-clean, produce identical fills
// for Workers=1 and Workers=4, and report the exact deterministic count
// of cold-tier fallbacks.
func TestWarmFailureFallsBackCold(t *testing.T) {
	mkInj := func() *faultinject.Injector {
		return faultinject.New(42).WithRate(faultinject.SiteWarmSolve, 0.25)
	}
	baseline := runWith(t, 1, nil)
	var ref *Result
	for _, workers := range []int{1, 4} {
		inj := mkInj()
		res := runWith(t, workers, func(o *Options) { o.Inject = inj })
		h := res.Health
		checkInvariants(t, h)
		if h.Skipped != baseline.Health.Skipped {
			t.Fatalf("workers=%d: skipped drifted: %s", workers, h)
		}
		// Every faulted, non-skipped window must land exactly on the cold
		// tier; the layout has candidates in all 16 windows, so the
		// expected count is the raw injector prediction.
		want := expectedHits(inj, faultinject.SiteWarmSolve, h.Windows)
		if h.Skipped != 0 {
			t.Fatalf("workers=%d: test assumes no skipped windows, got %s", workers, h)
		}
		if want == 0 {
			t.Fatal("seed produced no faults; pick another seed")
		}
		if h.FallbackCold != want {
			t.Fatalf("workers=%d: FallbackCold = %d, want %d (%s)", workers, h.FallbackCold, want, h)
		}
		if h.Degraded != 0 || h.Recovered != 0 {
			t.Fatalf("workers=%d: unexpected degradation: %s", workers, h)
		}
		if got := inj.Hits(faultinject.SiteWarmSolve); int(got) != want {
			t.Fatalf("workers=%d: injector counted %d hits, want %d", workers, got, want)
		}
		if ref == nil {
			ref = res
			continue
		}
		sameFills(t, ref.Solution.Fills, res.Solution.Fills, "workers=1 vs 4")
		if ref.Health.FallbackCold != h.FallbackCold {
			t.Fatalf("health not schedule-invariant: %s vs %s", ref.Health, h)
		}
	}
	// The cold tier solves the same LPs exactly, so the solution should
	// match the fault-free run bit for bit.
	sameFills(t, baseline.Solution.Fills, ref.Solution.Fills, "faulted vs fault-free")
}

// TestChainExhaustionDegradesNoShrink fails all three solver tiers on
// every window: the run must still complete with a DRC-clean, non-empty
// solution built from unshrunk candidates.
func TestChainExhaustionDegradesNoShrink(t *testing.T) {
	var ref *Result
	for _, workers := range []int{1, 4} {
		res := runWith(t, workers, func(o *Options) {
			o.Inject = faultinject.New(7).
				WithRate(faultinject.SiteWarmSolve, 1).
				WithRate(faultinject.SiteColdSolve, 1).
				WithRate(faultinject.SiteSimplexSolve, 1)
		})
		h := res.Health
		checkInvariants(t, h)
		if h.Degraded != h.Windows-h.Skipped || h.Sized != 0 {
			t.Fatalf("workers=%d: want full degradation, got %s", workers, h)
		}
		if len(res.Solution.Fills) == 0 {
			t.Fatal("degraded run emitted no fills at all")
		}
		if ref == nil {
			ref = res
			continue
		}
		sameFills(t, ref.Solution.Fills, res.Solution.Fills, "workers=1 vs 4 (degraded)")
	}
}

// TestPanicIsolation injects solver panics on ~25% of windows: each must
// be recovered, fall back to the cold tier, and leave the rest of the run
// untouched and deterministic.
func TestPanicIsolation(t *testing.T) {
	var ref *Result
	for _, workers := range []int{1, 4} {
		inj := faultinject.New(1234).WithRate(faultinject.SitePanic, 0.25)
		res := runWith(t, workers, func(o *Options) { o.Inject = inj })
		h := res.Health
		checkInvariants(t, h)
		want := expectedHits(inj, faultinject.SitePanic, h.Windows)
		if want == 0 {
			t.Fatal("seed produced no panics; pick another seed")
		}
		if h.Recovered != want || h.FallbackCold != want {
			t.Fatalf("workers=%d: recovered=%d cold=%d, want both %d (%s)",
				workers, h.Recovered, h.FallbackCold, want, h)
		}
		if h.Degraded != 0 {
			t.Fatalf("workers=%d: panics should fall back, not degrade: %s", workers, h)
		}
		if ref == nil {
			ref = res
			continue
		}
		sameFills(t, ref.Solution.Fills, res.Solution.Fills, "workers=1 vs 4 (panics)")
	}
}

// TestCorruptSolutionNeverApplied corrupts the warm tier's solution
// vector on ~25% of windows. The engine-side validation must reject it —
// falling back cold — and no corrupted coordinate may reach the output.
func TestCorruptSolutionNeverApplied(t *testing.T) {
	inj := faultinject.New(99).WithRate(faultinject.SiteCorrupt, 0.25)
	res := runWith(t, 4, func(o *Options) { o.Inject = inj })
	h := res.Health
	checkInvariants(t, h)
	want := expectedHits(inj, faultinject.SiteCorrupt, h.Windows)
	if want == 0 {
		t.Fatal("seed produced no corruptions; pick another seed")
	}
	if h.FallbackCold != want {
		t.Fatalf("FallbackCold = %d, want %d (%s)", h.FallbackCold, want, h)
	}
	baseline := runWith(t, 4, nil)
	sameFills(t, baseline.Solution.Fills, res.Solution.Fills, "corrupted vs fault-free")
}

// TestBudgetDegradesRemainingWindows sets a 1 ns budget: every window is
// past the deadline, so the whole run degrades to unshrunk candidates but
// still completes DRC-clean with BudgetExceeded reported.
func TestBudgetDegradesRemainingWindows(t *testing.T) {
	res := runWith(t, 4, func(o *Options) { o.Budget = time.Nanosecond })
	h := res.Health
	checkInvariants(t, h)
	if !h.BudgetExceeded {
		t.Fatalf("1 ns budget not reported exceeded: %s", h)
	}
	if h.Degraded != h.Windows-h.Skipped {
		t.Fatalf("want all non-skipped windows degraded, got %s", h)
	}
	if h.Budget != time.Nanosecond {
		t.Fatalf("budget not echoed: %s", h)
	}
	if len(res.Solution.Fills) == 0 {
		t.Fatal("budget-degraded run emitted no fills")
	}
}

// TestInjectedBudgetIsWindowKeyed exercises SiteBudget: a deterministic
// subset of windows degrades as if the budget had expired there, without
// any wall-clock dependence, so the pattern is schedule-invariant.
func TestInjectedBudgetIsWindowKeyed(t *testing.T) {
	var ref *Result
	for _, workers := range []int{1, 4} {
		inj := faultinject.New(5).WithRate(faultinject.SiteBudget, 0.5)
		res := runWith(t, workers, func(o *Options) { o.Inject = inj })
		h := res.Health
		checkInvariants(t, h)
		want := expectedHits(inj, faultinject.SiteBudget, h.Windows)
		if want == 0 {
			t.Fatal("seed produced no budget faults; pick another seed")
		}
		if h.Degraded != want {
			t.Fatalf("workers=%d: Degraded = %d, want %d (%s)", workers, h.Degraded, want, h)
		}
		if h.BudgetExceeded {
			t.Fatalf("workers=%d: injected budget must not set the wall-clock flag: %s", workers, h)
		}
		if ref == nil {
			ref = res
			continue
		}
		sameFills(t, ref.Solution.Fills, res.Solution.Fills, "workers=1 vs 4 (budget)")
	}
}

// TestRunContextAlreadyCancelled checks a pre-cancelled context aborts
// before any work: context.Canceled, no partial Result.
func TestRunContextAlreadyCancelled(t *testing.T) {
	e, err := New(gradientLayout(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a partial Result")
	}
}

// countdownCtx is a context whose Err flips to Canceled after the first
// `after` calls — a deterministic way to cancel at the N-th check the
// engine performs, sweeping every phase boundary without timing races.
// Done is inherited from Background (never closes), so only explicit
// Err checks observe the cancellation; the engine must not rely on Done
// alone. Serial runs only (Workers=1 keeps the check sequence fixed).
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestRunContextCancelsAtEveryPhaseBoundary sweeps the cancellation point
// across all context checks of a serial run. Every prefix must abort with
// context.Canceled and no Result; once the sweep passes the total number
// of checks, the run completes normally.
func TestRunContextCancelsAtEveryPhaseBoundary(t *testing.T) {
	lay := gradientLayout()
	opts := DefaultOptions()
	opts.Workers = 1
	run := func(after int64) (*Result, error, int64) {
		e, err := New(lay, opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &countdownCtx{Context: context.Background(), after: after}
		res, rerr := e.RunContext(ctx)
		return res, rerr, ctx.calls.Load()
	}

	// Probe the total number of Err checks in a full run.
	res, err, total := run(1 << 62)
	if err != nil || res == nil {
		t.Fatalf("probe run failed: %v", err)
	}
	if total < 10 {
		t.Fatalf("expected many context checks across phases, saw %d", total)
	}

	cancelled, completed := 0, 0
	for after := int64(0); after <= total+1; after += max(1, total/50) {
		res, err, _ := run(after)
		switch {
		case err == nil && res != nil:
			completed++
		case errors.Is(err, context.Canceled) && res == nil:
			cancelled++
		default:
			t.Fatalf("after=%d: res=%v err=%v — partial result or wrong error", after, res != nil, err)
		}
	}
	if cancelled == 0 || completed == 0 {
		t.Fatalf("sweep did not cover both outcomes: %d cancelled, %d completed", cancelled, completed)
	}
}

// TestRunContextCancelMidSizing cancels concurrently with a parallel run
// and checks the hard-abort contract under real scheduling: either the
// run finished before the cancel landed, or it aborts with the context
// error and no Result.
func TestRunContextCancelMidSizing(t *testing.T) {
	lay := gradientLayout()
	opts := DefaultOptions()
	opts.Workers = 4
	e, err := New(lay, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	res, err := e.RunContext(ctx)
	if err == nil {
		if res == nil {
			t.Fatal("nil result with nil error")
		}
		return // run won the race; fine
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a partial Result")
	}
}
