package fill

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dummyfill/internal/faultinject"
	"dummyfill/internal/layout"
)

// TestShardsResolution checks the Options.Shards → band decomposition:
// shards cover the full canonical window range contiguously, the count is
// capped by the grid's rows, and the split depends only on the option.
func TestShardsResolution(t *testing.T) {
	e, err := New(gradientLayout(), DefaultOptions()) // 4x4 windows
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ opt, want int }{
		{1, 1}, {2, 2}, {3, 3}, {4, 4},
		{100, 4}, // capped at NY rows
	} {
		e.opts.Shards = tc.opt
		sh := e.shards()
		if len(sh) != tc.want {
			t.Fatalf("Shards=%d: got %d shards, want %d", tc.opt, len(sh), tc.want)
		}
		next := 0
		for i, s := range sh {
			if s.id != i {
				t.Fatalf("Shards=%d: shard %d has id %d", tc.opt, i, s.id)
			}
			if s.k0 != next || s.k1 <= s.k0 {
				t.Fatalf("Shards=%d: shard %d range [%d,%d), want start %d",
					tc.opt, i, s.k0, s.k1, next)
			}
			next = s.k1
		}
		if next != e.g.NumWindows() {
			t.Fatalf("Shards=%d: shards cover %d windows, grid has %d",
				tc.opt, next, e.g.NumWindows())
		}
	}
	// Default (0) resolves to at least one shard.
	e.opts.Shards = 0
	if sh := e.shards(); len(sh) < 1 {
		t.Fatalf("default shards: got %d", len(sh))
	}
}

// orderSink records the window indices it receives and fails on demand.
type orderSink struct {
	ks      []int
	failAtK int // emit error when this k arrives (-1 = never)
}

func (s *orderSink) EmitWindow(k int, fills []layout.Fill) error {
	if s.failAtK >= 0 && k == s.failAtK {
		return errors.New("sink boom")
	}
	s.ks = append(s.ks, k)
	return nil
}

// TestShardEmitterCanonicalOrder drives the emitter with shards finishing
// in adversarial orders and checks the sink always observes the canonical
// strictly increasing window sequence.
func TestShardEmitterCanonicalOrder(t *testing.T) {
	// 4 shards × 3 windows each; emit window k of shard id = 3*id+j.
	const nShards, perShard = 4, 3
	finishOrders := [][]int{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{2, 0, 3, 1},
		{1, 3, 0, 2},
	}
	for _, order := range finishOrders {
		sink := &orderSink{failAtK: -1}
		em := newShardEmitter(sink, nShards)
		for _, id := range order {
			for j := 0; j < perShard; j++ {
				k := id*perShard + j
				if err := em.emit(id, k, []layout.Fill{{Layer: k}}); err != nil {
					t.Fatalf("order %v: emit(%d,%d): %v", order, id, k, err)
				}
			}
			if err := em.finish(id); err != nil {
				t.Fatalf("order %v: finish(%d): %v", order, id, err)
			}
		}
		if len(sink.ks) != nShards*perShard {
			t.Fatalf("order %v: sink saw %d windows, want %d", order, len(sink.ks), nShards*perShard)
		}
		for i, k := range sink.ks {
			if k != i {
				t.Fatalf("order %v: sink position %d got window %d", order, i, k)
			}
		}
	}
}

// TestShardEmitterInterleaved interleaves emissions across unfinished
// shards: the head shard's windows pass straight through while later
// shards buffer, and each buffered segment flushes exactly when the head
// advances onto it.
func TestShardEmitterInterleaved(t *testing.T) {
	sink := &orderSink{failAtK: -1}
	em := newShardEmitter(sink, 3)
	// Shard 2 and 1 emit before shard 0 has produced anything.
	for _, step := range []struct{ id, k int }{
		{2, 20}, {1, 10}, {2, 21}, {0, 0}, {1, 11}, {0, 1},
	} {
		if err := em.emit(step.id, step.k, []layout.Fill{{Layer: step.k}}); err != nil {
			t.Fatal(err)
		}
	}
	// Only the head shard's windows have reached the sink so far.
	if fmt.Sprint(sink.ks) != "[0 1]" {
		t.Fatalf("before finishes sink saw %v, want [0 1]", sink.ks)
	}
	// Finishing out of order: 2 first (no flush), then 0 (flushes 1's
	// buffer; 1 still open), then 1 (flushes 2's buffer).
	if err := em.finish(2); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sink.ks) != "[0 1]" {
		t.Fatalf("after finish(2) sink saw %v", sink.ks)
	}
	if err := em.finish(0); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sink.ks) != "[0 1 10 11]" {
		t.Fatalf("after finish(0) sink saw %v", sink.ks)
	}
	if err := em.finish(1); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sink.ks) != "[0 1 10 11 20 21]" {
		t.Fatalf("after finish(1) sink saw %v", sink.ks)
	}
}

// TestShardEmitterSinkErrorSticks checks a sink failure poisons the
// emitter: the failing emit returns the error and so does every later
// emit or finish, from any shard.
func TestShardEmitterSinkErrorSticks(t *testing.T) {
	sink := &orderSink{failAtK: 1}
	em := newShardEmitter(sink, 2)
	if err := em.emit(0, 0, []layout.Fill{{}}); err != nil {
		t.Fatal(err)
	}
	if err := em.emit(0, 1, []layout.Fill{{}}); err == nil {
		t.Fatal("sink error not propagated")
	}
	if err := em.emit(1, 5, []layout.Fill{{}}); err == nil {
		t.Fatal("emitter accepted work after sink failure")
	}
	if err := em.finish(0); err == nil {
		t.Fatal("finish succeeded after sink failure")
	}
}

// TestShardedRunsByteIdentical runs the engine across the shard × worker
// topology matrix — serial, chained shards (workers ≤ shards) and
// per-shard worker groups (workers > shards) — and requires geometrically
// identical solutions plus correctly reported shard health everywhere.
func TestShardedRunsByteIdentical(t *testing.T) {
	ref := runWith(t, 1, func(o *Options) { o.Shards = 1 })
	if ref.Health.Shards != 1 || ref.Health.PlanDivergence != 0 {
		t.Fatalf("unsharded health: %+v", ref.Health)
	}
	var divAt2 []float64
	for _, shards := range []int{1, 2, 3, 4} {
		for _, workers := range []int{1, 2, 3, 8} {
			label := fmt.Sprintf("shards=%d workers=%d", shards, workers)
			res := runWith(t, workers, func(o *Options) { o.Shards = shards })
			sameFills(t, ref.Solution.Fills, res.Solution.Fills, label)
			checkInvariants(t, res.Health)
			if res.Health.Shards != shards {
				t.Fatalf("%s: Health.Shards = %d", label, res.Health.Shards)
			}
			if shards == 1 && res.Health.PlanDivergence != 0 {
				t.Fatalf("%s: single shard diverged: %v", label, res.Health.PlanDivergence)
			}
			if shards == 2 {
				divAt2 = append(divAt2, res.Health.PlanDivergence)
			}
		}
	}
	// PlanDivergence is a pure function of layout and options — identical
	// across worker counts for a fixed shard count.
	for _, d := range divAt2 {
		if d != divAt2[0] {
			t.Fatalf("PlanDivergence varies across workers at shards=2: %v", divAt2)
		}
	}
}

// TestShardedHealthString checks the shard fields render in the one-line
// health report.
func TestShardedHealthString(t *testing.T) {
	h := Health{Windows: 4, Sized: 4, Shards: 3, PlanDivergence: 0.125}
	if s := h.String(); !strings.Contains(s, "shards=3") || !strings.Contains(s, "plan-div=0.1250") {
		t.Fatalf("shard fields missing from %q", s)
	}
	if s := (Health{Windows: 4, Sized: 4, Shards: 1}).String(); strings.Contains(s, "shards=") {
		t.Fatalf("unsharded report mentions shards: %q", s)
	}
}

// TestShardedResilience checks fault degradation under sharding: injected
// solver faults are window-keyed, so the degraded fill set and health
// counters must match the unsharded run exactly for every topology.
func TestShardedResilience(t *testing.T) {
	mk := func(workers, shards int) *Result {
		return runWith(t, workers, func(o *Options) {
			o.Shards = shards
			o.Inject = faultinject.New(42).
				WithRate(faultinject.SiteWarmSolve, 0.5).
				WithRate(faultinject.SiteColdSolve, 0.5)
		})
	}
	ref := mk(1, 1)
	checkInvariants(t, ref.Health)
	if ref.Health.Healthy() {
		t.Fatal("faults injected but run reports healthy")
	}
	for _, tc := range []struct{ workers, shards int }{
		{2, 4}, {4, 2}, {8, 3},
	} {
		res := mk(tc.workers, tc.shards)
		label := fmt.Sprintf("shards=%d workers=%d", tc.shards, tc.workers)
		sameFills(t, ref.Solution.Fills, res.Solution.Fills, label)
		checkInvariants(t, res.Health)
		if res.Health.FallbackCold != ref.Health.FallbackCold ||
			res.Health.FallbackSimplex != ref.Health.FallbackSimplex ||
			res.Health.Degraded != ref.Health.Degraded {
			t.Fatalf("%s: health %s differs from unsharded %s", label, res.Health, ref.Health)
		}
	}
}
