package fill

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"dummyfill/internal/density"
	"dummyfill/internal/grid"
	"dummyfill/internal/layout"
)

// Sink consumes sized fills as windows complete. EmitWindow is called at
// most once per window, in strictly increasing window index order (the
// canonical row-major grid order), from a single goroutine at a time, and
// only with a non-empty fill slice the sink may retain. A sink error
// aborts the run.
type Sink interface {
	EmitWindow(k int, fills []layout.Fill) error
}

// SinkFunc adapts a function to a Sink.
type SinkFunc func(k int, fills []layout.Fill) error

// EmitWindow calls f.
func (f SinkFunc) EmitWindow(k int, fills []layout.Fill) error { return f(k, fills) }

// solutionSink accumulates emitted fills for Solution assembly.
type solutionSink struct {
	fills []layout.Fill
}

func (s *solutionSink) EmitWindow(_ int, fills []layout.Fill) error {
	s.fills = append(s.fills, fills...)
	return nil
}

// RunStream runs the flow like RunContext but streams each window's sized
// fills to sink in canonical window order instead of assembling them into
// Result.Solution (which is left empty). Fills arrive grouped by window —
// ordered by window index, not globally sorted — which is what the
// streaming GDSII/OASIS writers need to emit shapes with bounded memory.
// The emitted fill set is identical to RunContext's for any Workers
// setting.
func (e *Engine) RunStream(ctx context.Context, sink Sink) (*Result, error) {
	return e.runPipeline(ctx, sink)
}

// runPipeline is the shared shard-parallel streaming pipeline behind
// RunContext and RunStream:
//
//	prep (stream) → plan 1 → candgen (stream) → plan 2 → size+emit (stream)
//
// The two density-planning rounds are hierarchical (DESIGN.md §11): each
// row-band shard assembles its slice of the global planning maps and
// proposes targets over its halo neighbourhood in parallel, then a cheap
// top-level reconcile runs the exact global target search over the
// assembled maps — so planning synchronizes the shards only on the
// O(windows) map reduction, never on per-window geometry work, and the
// reconciled targets are byte-identical for every shard count. After the
// second round each shard sizes and emits its windows independently
// through its own reorder path; segments concatenate in canonical window
// order. No stage materializes all candidate cells or all sized fills at
// once.
func (e *Engine) runPipeline(ctx context.Context, sink Sink) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	//filllint:allow nodeterm -- Options.Budget is a documented wall-clock soft deadline; fill geometry stays schedule-independent
	start := time.Now()
	wins, err := e.prepareWindows(ctx)
	if err != nil {
		return nil, err
	}
	sh := e.shards()
	hc := &healthCollector{shards: len(sh)}

	// Planning round 1: bounds from tileable candidate area, assembled
	// per shard; halo-local shard proposals scored against the reconciled
	// global plan (single-shard runs skip the proposal — it would be the
	// global plan itself).
	bounds, wd, err := e.assembleBounds(ctx, wins, sh, false, "plan1", nil)
	if err != nil {
		return nil, err
	}
	pw := e.planWeights(wd)
	var props []*density.Plan
	if len(sh) > 1 {
		if props, err = e.shardProposals(ctx, sh, bounds, wd, pw, "plan1"); err != nil {
			return nil, err
		}
	}
	plan1, err := density.PlanTargets(bounds, pw, e.opts.PlanSteps)
	if err != nil {
		return nil, err
	}
	e.applyMinDensity(plan1.Td)
	for _, p := range props {
		hc.noteDivergence(density.Divergence(p, plan1))
	}

	// Cache lookup (nil when Options.Cache is off or bypassed): windows
	// whose content and round-1 targets match a stored entry skip
	// candidate generation; whether their fills replay too is decided
	// after round 2 (DESIGN.md §13).
	cst, err := e.cacheLookup(ctx, wins, plan1.Td, hc)
	if err != nil {
		return nil, err
	}

	// Candidate generation under plan-1 guidance. The free pieces are
	// consumed here: once a window's candidates are selected, only the
	// selection and the wire slabs are still needed downstream. Cache-hit
	// windows keep their free pieces for now — if round 2 drifts from the
	// entry they rerun candgen late in cacheResolve.
	err = e.forEachWindowStage(ctx, wins, "candgen", func(_ context.Context, k int, w *window) error {
		if cst.selValid(k) {
			return nil
		}
		e.mode.selectCandidates(w, plan1.Td)
		for li := range w.layers {
			w.layers[li].free = nil
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	numCand := 0
	for k, w := range wins {
		if cst.selValid(k) {
			numCand += cst.entries[k].NumSel
		} else {
			numCand += len(w.sel)
		}
	}

	// Planning round 2: bounds restricted to what was actually selected
	// (§3 — "another round of density planning is performed due to the
	// inconsistency between candidate fills and initial plans").
	bounds2, _, err := e.assembleBounds(ctx, wins, sh, true, "plan2", cst)
	if err != nil {
		return nil, err
	}
	if len(sh) > 1 {
		if props, err = e.shardProposals(ctx, sh, bounds2, nil, pw, "plan2"); err != nil {
			return nil, err
		}
	}
	plan2, err := density.PlanTargets(bounds2, pw, e.opts.PlanSteps)
	if err != nil {
		return nil, err
	}
	e.applyMinDensity(plan2.Td)
	for _, p := range props {
		hc.noteDivergence(density.Divergence(p, plan2))
	}
	// Cache resolve: decide replay vs stale now that round-2 targets are
	// known; stale windows rerun candgen here.
	if err := e.cacheResolve(ctx, wins, cst, plan2.Td, hc); err != nil {
		return nil, err
	}
	uppers := make([]*grid.Map, len(bounds2))
	for i := range bounds2 {
		uppers[i] = bounds2[i].Upper
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if e.workerCount(len(wins)) <= 1 || len(sh) == 1 {
		err = e.sizeAndEmit(ctx, wins, plan2.Td, sink, hc, start, cst)
	} else {
		err = e.sizeAndEmitSharded(ctx, wins, sh, plan2.Td, sink, hc, start, cst)
	}
	if err != nil {
		return nil, err
	}

	return &Result{
		FirstTargets: plan1.Td,
		Targets:      plan2.Td,
		Candidates:   numCand,
		UpperBounds:  uppers,
		Windows:      len(wins),
		//filllint:allow nodeterm -- Health reports observed wall-clock spend; it never feeds back into geometry
		Health: hc.health(len(wins), e.opts.Budget, time.Since(start)),
	}, nil
}

// produceWindow sizes window k through the resilient fallback chain and
// converts the surviving cells to fills. It is the shared per-window work
// of both the unsharded and the sharded size+emit stages; a nil fill
// slice (window skipped or everything shrunk away) still counts as
// produced and must be released to advance the emission frontier.
//
// With an active cache, replay windows return their stored fills without
// touching the solver, and every cleanly computed window (including
// empty ones — "nothing to place here" is a result too) is written back.
func (e *Engine) produceWindow(ctx context.Context, k int, wins []*window, td []float64, sc *sizeScratch, hc *healthCollector, start time.Time, cst *cacheState) ([]layout.Fill, error) {
	w := wins[k]
	if cst.replay(k) {
		return cst.replayFills(k, w, hc), nil
	}
	if len(w.sel) == 0 {
		hc.skipped.Add(1)
		cst.store(k, w, nil, true, hc)
		return nil, nil
	}
	targets := e.windowTargets(w, td, sc)
	cs, cacheable, err := e.mode.sizeWindow(ctx, k, w, targets, sc, hc, start)
	if err != nil {
		return nil, err
	}
	var fills []layout.Fill
	if len(cs) > 0 {
		fills = make([]layout.Fill, len(cs))
		for i, c := range cs {
			fills[i] = layout.Fill{Layer: c.layer, Rect: c.rect}
		}
	}
	cst.store(k, w, fills, cacheable, hc)
	return fills, nil
}

// sizeAndEmit is the fused final stage: each window is sized through the
// resilient fallback chain and its fills released to the sink in
// canonical window order via a bounded reorder buffer. A window's
// retained state (selection, wire slabs) is dropped at release, so the
// number of windows resident between claim and emit is bounded by the
// buffer capacity regardless of run size. Workers claim windows in
// ascending order, which guarantees the worker holding the smallest
// in-flight window always finds buffer space — the stage cannot deadlock.
//
// Each worker owns one lazily-initialized sizing scratch for its whole
// lifetime (the warm solver state flows from window to window), so the
// run creates exactly min(Workers, windows) scratches.
func (e *Engine) sizeAndEmit(ctx context.Context, wins []*window, td []float64, sink Sink, hc *healthCollector, start time.Time, cst *cacheState) error {
	nw := len(wins)
	if nw == 0 {
		return nil
	}

	produce := func(ctx context.Context, k int, sc *sizeScratch) ([]layout.Fill, error) {
		return e.produceWindow(ctx, k, wins, td, sc, hc, start, cst)
	}
	release := func(k int, fills []layout.Fill) error {
		w := wins[k]
		w.sel = nil
		for li := range w.layers {
			w.layers[li].wires = nil
		}
		if len(fills) == 0 {
			return nil
		}
		return sink.EmitWindow(k, fills)
	}

	workers := e.workerCount(nw)
	if workers <= 1 {
		sc := newSizeScratch(e.opts)
		hc.notePeak(1)
		var serr error
		pprof.Do(ctx, pprof.Labels("stage", "size-emit"), func(ctx context.Context) {
			for k := 0; k < nw; k++ {
				if serr = ctx.Err(); serr != nil {
					return
				}
				var fills []layout.Fill
				if fills, serr = produce(ctx, k, sc); serr != nil {
					return
				}
				if serr = release(k, fills); serr != nil {
					return
				}
			}
		})
		return serr
	}

	// Buffer capacity: enough slack that workers rarely stall on an
	// out-of-order slow window, small enough to bound resident windows.
	capacity := 2 * workers
	if capacity < 4 {
		capacity = 4
	}
	if capacity > nw {
		capacity = nw
	}
	rb := newReorderBuffer(capacity, release)

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Abort watcher: wakes workers blocked on a full buffer when the run
	// is cancelled (or a sibling failed and cancelled wctx).
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		<-wctx.Done()
		rb.abort(context.Cause(wctx))
	}()

	var (
		next     atomic.Int64
		firstErr error
		once     sync.Once
		wg       sync.WaitGroup
	)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newSizeScratch(e.opts)
			pprof.Do(wctx, pprof.Labels("stage", "size-emit"), func(ctx context.Context) {
				for ctx.Err() == nil {
					k := int(next.Add(1)) - 1
					if k >= nw {
						return
					}
					fills, err := produce(ctx, k, sc)
					if err == nil {
						err = rb.deliver(k, fills)
					}
					if err != nil {
						once.Do(func() { firstErr = err })
						cancel()
						return
					}
				}
			})
		}()
	}
	wg.Wait()
	cancel()
	<-watcherDone
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	hc.notePeak(rb.peak)
	return nil
}

// reorderBuffer releases out-of-order window results in canonical window
// index order through a bounded ring. deliver(k, …) blocks while k is
// more than the capacity ahead of the oldest unreleased window; the
// release callback runs under the buffer lock, serialized in strictly
// increasing k. Safe against deadlock as long as window indices are
// claimed in ascending order across the delivering goroutines: the
// goroutine holding the smallest in-flight index always has k == base.
type reorderBuffer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ring    [][]layout.Fill
	filled  []bool
	base    int // next window index to release
	err     error
	release func(k int, fills []layout.Fill) error
	peak    int // max windows in flight (claimed, not yet released)
}

func newReorderBuffer(capacity int, release func(k int, fills []layout.Fill) error) *reorderBuffer {
	rb := &reorderBuffer{
		ring:    make([][]layout.Fill, capacity),
		filled:  make([]bool, capacity),
		release: release,
	}
	rb.cond = sync.NewCond(&rb.mu)
	return rb
}

// deliver hands window k's fills (possibly nil) to the buffer, blocking
// while the ring has no slot for k. Every claimed window must be
// delivered exactly once; nil fills still advance the release frontier.
func (rb *reorderBuffer) deliver(k int, fills []layout.Fill) error {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	n := len(rb.ring)
	for rb.err == nil && k >= rb.base+n {
		rb.cond.Wait()
	}
	if rb.err != nil {
		return rb.err
	}
	if inFlight := k + 1 - rb.base; inFlight > rb.peak {
		rb.peak = inFlight
	}
	rb.ring[k%n] = fills
	rb.filled[k%n] = true
	if k != rb.base {
		return nil
	}
	for rb.filled[rb.base%n] {
		fills := rb.ring[rb.base%n]
		rb.ring[rb.base%n] = nil
		rb.filled[rb.base%n] = false
		if err := rb.release(rb.base, fills); err != nil {
			rb.failLocked(err)
			return err
		}
		rb.base++
	}
	rb.cond.Broadcast()
	return nil
}

// abort fails the buffer, waking all blocked deliverers.
func (rb *reorderBuffer) abort(err error) {
	if err == nil {
		err = context.Canceled
	}
	rb.mu.Lock()
	rb.failLocked(err)
	rb.mu.Unlock()
}

func (rb *reorderBuffer) failLocked(err error) {
	if rb.err == nil {
		rb.err = err
	}
	rb.cond.Broadcast()
}
