package fill

import (
	"fmt"

	"dummyfill/internal/gdsii"
	"dummyfill/internal/layout"
	"dummyfill/internal/score"
)

// AutoTuneLambda runs the engine at several candidate overfill factors λ
// and returns the options whose solution scores the best Testcase Quality
// under the given coefficients (runtime/memory excluded — they are
// environment noise at tuning time). The paper treats λ as a free
// parameter ("λ is a parameter to control how many fills to generate");
// this helper picks it empirically per design.
func AutoTuneLambda(lay *layout.Layout, c score.Coefficients, base Options, candidates []float64) (Options, *Result, error) {
	if len(candidates) == 0 {
		candidates = []float64{1.0, 1.15, 1.3, 1.5}
	}
	var bestOpts Options
	var bestRes *Result
	bestQ := -1.0
	for _, lambda := range candidates {
		if lambda < 1 {
			return Options{}, nil, fmt.Errorf("fill: candidate λ %v < 1", lambda)
		}
		opts := base
		opts.Lambda = lambda
		e, err := New(lay, opts)
		if err != nil {
			return Options{}, nil, err
		}
		res, err := e.Run()
		if err != nil {
			return Options{}, nil, err
		}
		sz, err := gdsii.FromSolution(lay.Name, &res.Solution).EncodedSize()
		if err != nil {
			return Options{}, nil, err
		}
		raw, err := score.Measure(lay, &res.Solution, sz, 0, 0)
		if err != nil {
			return Options{}, nil, err
		}
		rep := score.Score(raw, c)
		if rep.Quality > bestQ {
			bestQ = rep.Quality
			bestOpts = opts
			bestRes = res
		}
	}
	return bestOpts, bestRes, nil
}
