package dlp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// bruteForce exhaustively searches integer assignments for tiny problems.
func bruteForce(p *Problem) ([]int64, int64, bool) {
	n := p.N()
	x := make([]int64, n)
	best := make([]int64, n)
	var bestObj int64 = math.MaxInt64
	found := false
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if p.Check(x) != nil {
				return
			}
			obj := p.Objective(x)
			if !found || obj < bestObj {
				found = true
				bestObj = obj
				copy(best, x)
			}
			return
		}
		for v := p.Lo[i]; v <= p.Hi[i]; v++ {
			x[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestObj, found
}

func TestPaperFig6Example(t *testing.T) {
	// min x1 + 2x2 + 3x3 + 4x4, x1-x2 >= 5, x4-x3 >= 6, 0 <= x <= 10.
	// The paper's solution (Fig. 6(b)) is x = (5, 0, 0, 6) with value 29.
	p := NewProblem(4, 10)
	p.C = []int64{1, 2, 3, 4}
	p.AddConstraint(0, 1, 5)
	p.AddConstraint(3, 2, 6)
	for _, solver := range []struct {
		name string
		s    Solver
	}{{"SSP", SSP}, {"NetworkSimplex", NetworkSimplex}} {
		t.Run(solver.name, func(t *testing.T) {
			x, obj, err := p.SolveWith(solver.s)
			if err != nil {
				t.Fatal(err)
			}
			want := []int64{5, 0, 0, 6}
			for i := range want {
				if x[i] != want[i] {
					t.Fatalf("x = %v, want %v", x, want)
				}
			}
			if obj != 29 {
				t.Fatalf("objective = %d, want 29", obj)
			}
		})
	}
}

func TestUnconstrainedGoesToBound(t *testing.T) {
	p := NewProblem(3, 100)
	p.C = []int64{1, -1, 0}
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 {
		t.Fatalf("positive-cost variable should sit at lower bound, got %d", x[0])
	}
	if x[1] != 100 {
		t.Fatalf("negative-cost variable should sit at upper bound, got %d", x[1])
	}
	if obj != -100 {
		t.Fatalf("objective = %d, want -100", obj)
	}
}

func TestNonzeroLowerBounds(t *testing.T) {
	p := NewProblem(2, 50)
	p.C = []int64{3, 1}
	p.Lo = []int64{7, 2}
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 2 {
		t.Fatalf("x = %v, want [7 2]", x)
	}
	if obj != 23 {
		t.Fatalf("objective = %d, want 23", obj)
	}
}

func TestNegativeBoundsRange(t *testing.T) {
	p := NewProblem(2, 0)
	p.Lo = []int64{-10, -10}
	p.Hi = []int64{10, 10}
	p.C = []int64{1, -1}
	p.AddConstraint(1, 0, 5) // x1 - x0 >= 5
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Check(x); err != nil {
		t.Fatal(err)
	}
	// Optimal: x0 = -10, x1 = 10 (constraint slack), obj = -20.
	if obj != -20 {
		t.Fatalf("objective = %d (x=%v), want -20", obj, x)
	}
}

func TestInfeasibleConstraintVsBounds(t *testing.T) {
	p := NewProblem(2, 3)
	p.AddConstraint(0, 1, 10) // x0 - x1 >= 10 impossible within [0,3]
	_, _, err := p.Solve()
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleCycle(t *testing.T) {
	p := NewProblem(2, 100)
	p.AddConstraint(0, 1, 5)
	p.AddConstraint(1, 0, 5) // x0-x1>=5 and x1-x0>=5: impossible
	_, _, err := p.Solve()
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestEmptyBoundRange(t *testing.T) {
	p := NewProblem(1, 10)
	p.Lo[0] = 20
	_, _, err := p.Solve()
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestChainOfConstraints(t *testing.T) {
	// x0 >= x1 + 2 >= x2 + 4 >= x3 + 6, all in [0,10], min x0 - x3:
	// forces x0 - x3 >= 6, optimum = 6.
	p := NewProblem(4, 10)
	p.C = []int64{1, 0, 0, -1}
	p.AddConstraint(0, 1, 2)
	p.AddConstraint(1, 2, 2)
	p.AddConstraint(2, 3, 2)
	x, obj, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if obj != 6 {
		t.Fatalf("objective = %d (x=%v), want 6", obj, x)
	}
}

func TestRandomVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for it := 0; it < 300; it++ {
		n := 1 + rng.Intn(4)
		p := NewProblem(n, int64(2+rng.Intn(4)))
		for i := 0; i < n; i++ {
			p.C[i] = int64(rng.Intn(11) - 5)
			p.Lo[i] = int64(rng.Intn(2))
		}
		nc := rng.Intn(4)
		for k := 0; k < nc; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			p.AddConstraint(i, j, int64(rng.Intn(7)-3))
		}
		wantX, wantObj, feasible := bruteForce(p)
		x, obj, err := p.Solve()
		if !feasible {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("it %d: brute says infeasible, solver says %v (x=%v)", it, err, x)
			}
			continue
		}
		if err != nil {
			t.Fatalf("it %d: brute found %v obj %d but solver errored: %v", it, wantX, wantObj, err)
		}
		if obj != wantObj {
			t.Fatalf("it %d: obj %d (x=%v), brute %d (x=%v), problem %+v", it, obj, x, wantObj, wantX, p)
		}
	}
}

func TestRandomSolverAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for it := 0; it < 100; it++ {
		n := 2 + rng.Intn(20)
		p := NewProblem(n, int64(10+rng.Intn(100)))
		for i := 0; i < n; i++ {
			p.C[i] = int64(rng.Intn(201) - 100)
			p.Lo[i] = int64(rng.Intn(5))
		}
		for k := 0; k < rng.Intn(3*n); k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			p.AddConstraint(i, j, int64(rng.Intn(21)-10))
		}
		_, o1, e1 := p.SolveWith(SSP)
		_, o2, e2 := p.SolveWith(NetworkSimplex)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("it %d: disagreement: %v vs %v", it, e1, e2)
		}
		if e1 == nil && o1 != o2 {
			t.Fatalf("it %d: objective mismatch %d vs %d", it, o1, o2)
		}
	}
}

func TestCheckRejects(t *testing.T) {
	p := NewProblem(2, 10)
	p.AddConstraint(0, 1, 5)
	if err := p.Check([]int64{2, 0}); err == nil {
		t.Fatal("violated constraint must fail Check")
	}
	if err := p.Check([]int64{11, 0}); err == nil {
		t.Fatal("out-of-bounds value must fail Check")
	}
	if err := p.Check([]int64{5}); err == nil {
		t.Fatal("wrong length must fail Check")
	}
	if err := p.Check([]int64{7, 1}); err != nil {
		t.Fatalf("valid solution rejected: %v", err)
	}
}

func TestValidateBadProblem(t *testing.T) {
	p := &Problem{C: []int64{1}, Lo: []int64{0, 0}, Hi: []int64{5}}
	if _, _, err := p.Solve(); err == nil {
		t.Fatal("inconsistent slice lengths must error")
	}
	p2 := NewProblem(2, 10)
	p2.AddConstraint(0, 0, 1)
	if _, _, err := p2.Solve(); err == nil {
		t.Fatal("self-referential constraint must error")
	}
	p3 := NewProblem(2, 10)
	p3.AddConstraint(0, 5, 1)
	if _, _, err := p3.Solve(); err == nil {
		t.Fatal("out-of-range constraint must error")
	}
}

func BenchmarkDualMCFChain100(b *testing.B) {
	// A 100-variable chain like a row of fills with spacing constraints.
	n := 100
	p := NewProblem(n, 1000)
	for i := 0; i < n; i++ {
		p.C[i] = int64(i%7 + 1)
	}
	for i := 0; i+1 < n; i++ {
		p.AddConstraint(i+1, i, 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
