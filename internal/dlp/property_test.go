package dlp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestShiftInvariance: adding a constant c to all bounds of a
// difference-constraint problem shifts the optimal objective by c·Σcost
// (the constraints only see differences, so the optimal point shifts
// rigidly).
func TestShiftInvariance(t *testing.T) {
	f := func(seed int64, shiftQ uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		p := NewProblem(n, int64(4+rng.Intn(8)))
		var sumC int64
		for i := 0; i < n; i++ {
			p.C[i] = int64(rng.Intn(9) - 4)
			sumC += p.C[i]
		}
		for k := 0; k < rng.Intn(n); k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				p.AddConstraint(i, j, int64(rng.Intn(5)-2))
			}
		}
		_, obj1, err1 := p.Solve()

		shift := int64(shiftQ%17) - 8
		q := NewProblem(n, 0)
		copy(q.C, p.C)
		for i := 0; i < n; i++ {
			q.Lo[i] = p.Lo[i] + shift
			q.Hi[i] = p.Hi[i] + shift
		}
		q.Cons = append(q.Cons, p.Cons...)
		_, obj2, err2 := q.Solve()

		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return obj2 == obj1+shift*sumC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestCostScaling: multiplying every cost by a positive constant scales
// the optimal objective by the same constant (the argmin set is
// unchanged).
func TestCostScaling(t *testing.T) {
	f := func(seed int64, kQ uint8) bool {
		k := int64(kQ%5) + 1
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		p := NewProblem(n, int64(3+rng.Intn(6)))
		for i := 0; i < n; i++ {
			p.C[i] = int64(rng.Intn(9) - 4)
		}
		for c := 0; c < rng.Intn(n); c++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				p.AddConstraint(i, j, int64(rng.Intn(5)-2))
			}
		}
		_, obj1, err1 := p.Solve()

		q := NewProblem(n, 0)
		copy(q.Lo, p.Lo)
		copy(q.Hi, p.Hi)
		for i := range q.C {
			q.C[i] = k * p.C[i]
		}
		q.Cons = append(q.Cons, p.Cons...)
		_, obj2, err2 := q.Solve()

		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return obj2 == k*obj1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestTighteningBoundsNeverImproves: shrinking the feasible box can only
// keep the optimum equal or make it worse (larger).
func TestTighteningBoundsNeverImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for it := 0; it < 100; it++ {
		n := 2 + rng.Intn(5)
		p := NewProblem(n, int64(6+rng.Intn(6)))
		for i := 0; i < n; i++ {
			p.C[i] = int64(rng.Intn(9) - 4)
		}
		for c := 0; c < rng.Intn(n); c++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				p.AddConstraint(i, j, int64(rng.Intn(5)-2))
			}
		}
		_, obj1, err1 := p.Solve()
		if err1 != nil {
			continue
		}
		q := NewProblem(n, 0)
		copy(q.C, p.C)
		q.Cons = append(q.Cons, p.Cons...)
		for i := 0; i < n; i++ {
			q.Lo[i] = p.Lo[i] + int64(rng.Intn(2))
			q.Hi[i] = p.Hi[i] - int64(rng.Intn(2))
		}
		_, obj2, err2 := q.Solve()
		if err2 != nil {
			continue // tightening made it infeasible: fine
		}
		if obj2 < obj1 {
			t.Fatalf("it %d: tightening improved the optimum: %d < %d", it, obj2, obj1)
		}
	}
}
