// Package dlp solves integer linear programs with only differential
// constraints and variable bounds (Eqn. 14 of the paper):
//
//	min  Σ c_i·x_i
//	s.t. x_i − x_j ≥ b_ij   for (i,j) ∈ E
//	     l_i ≤ x_i ≤ u_i
//	     x integral
//
// by transforming to a dual min-cost-flow problem (Eqn. 15/16 and Fig. 6
// of the paper) and reading the solution off the optimal node potentials.
// The constraint matrix is totally unimodular, so the LP optimum is
// integral and the ILP is solved exactly.
package dlp

import (
	"context"
	"errors"
	"fmt"

	"dummyfill/internal/mcf"
)

// Constraint encodes x[I] − x[J] ≥ B.
type Constraint struct {
	I, J int
	B    int64
}

// Problem is a differential-constraint LP instance. All three slices C,
// Lo, Hi must have the same length (the variable count).
type Problem struct {
	C      []int64
	Lo, Hi []int64
	Cons   []Constraint
}

// NewProblem returns a problem with n variables, zero costs and bounds
// [0, hi] for all variables.
func NewProblem(n int, hi int64) *Problem {
	p := &Problem{
		C:  make([]int64, n),
		Lo: make([]int64, n),
		Hi: make([]int64, n),
	}
	for i := range p.Hi {
		p.Hi[i] = hi
	}
	return p
}

// N returns the variable count.
func (p *Problem) N() int { return len(p.C) }

// Reset reinitializes p to n variables with zero costs, zero bounds and no
// constraints, reusing the underlying storage — the counterpart of
// NewProblem(n, 0) for callers that rebuild a problem every pass.
func (p *Problem) Reset(n int) {
	if cap(p.C) < n {
		p.C = make([]int64, n)
		p.Lo = make([]int64, n)
		p.Hi = make([]int64, n)
	} else {
		p.C = p.C[:n]
		p.Lo = p.Lo[:n]
		p.Hi = p.Hi[:n]
		for i := 0; i < n; i++ {
			p.C[i], p.Lo[i], p.Hi[i] = 0, 0, 0
		}
	}
	p.Cons = p.Cons[:0]
}

// AddConstraint appends x_i − x_j ≥ b.
func (p *Problem) AddConstraint(i, j int, b int64) {
	p.Cons = append(p.Cons, Constraint{i, j, b})
}

// ErrInfeasible is returned when the constraint system admits no solution
// within the bounds.
var ErrInfeasible = errors.New("dlp: infeasible constraint system")

// validate checks structural sanity.
func (p *Problem) validate() error {
	n := len(p.C)
	if len(p.Lo) != n || len(p.Hi) != n {
		return fmt.Errorf("dlp: inconsistent lengths C=%d Lo=%d Hi=%d", n, len(p.Lo), len(p.Hi))
	}
	for i := 0; i < n; i++ {
		if p.Lo[i] > p.Hi[i] {
			return fmt.Errorf("%w: variable %d has empty bound range [%d,%d]", ErrInfeasible, i, p.Lo[i], p.Hi[i])
		}
	}
	for _, c := range p.Cons {
		if c.I < 0 || c.I >= n || c.J < 0 || c.J >= n {
			return fmt.Errorf("dlp: constraint references variable out of range: %+v", c)
		}
		if c.I == c.J {
			return fmt.Errorf("dlp: self-referential constraint on variable %d", c.I)
		}
	}
	return nil
}

// Solver solves a min-cost-flow instance; the two implementations in
// package mcf both satisfy this signature.
type Solver func(*mcf.Graph) (*mcf.Result, error)

// SSP and NetworkSimplex adapt the mcf solvers to the Solver type.
func SSP(g *mcf.Graph) (*mcf.Result, error)            { return g.SolveSSP() }
func NetworkSimplex(g *mcf.Graph) (*mcf.Result, error) { return g.SolveNetworkSimplex() }

// PSolver solves a whole difference-constraint problem. The three
// implementations — dual min-cost flow via SSP or network simplex, and a
// dense general-purpose simplex — are interchangeable (the constraint
// matrix is totally unimodular, so all return integral optima) and exist
// so the engine can be benchmarked per backend, reproducing the paper's
// §3.3.3 dual-MCF-beats-LP claim end to end.
//
// The context propagates cancellation into the solve: the SSP backend
// checks it mid-augmentation, the one-shot backends check it up front. A
// cancelled solve returns an error unwrapping to ctx.Err().
type PSolver func(ctx context.Context, p *Problem) ([]int64, int64, error)

// ViaSSP solves through the dual min-cost flow with successive shortest
// paths (the default). Cancellation is honoured mid-solve.
func ViaSSP(ctx context.Context, p *Problem) ([]int64, int64, error) {
	return p.SolveWith(func(g *mcf.Graph) (*mcf.Result, error) {
		var ws mcf.Workspace
		out := &mcf.Result{}
		if err := ws.SolveSSP(ctx, g, false, out); err != nil {
			return nil, err
		}
		return out, nil
	})
}

// ViaNetworkSimplex solves through the dual min-cost flow with network
// simplex (the LEMON-style solver the paper used). The underlying solver
// is one-shot, so cancellation is only checked before it starts.
func ViaNetworkSimplex(ctx context.Context, p *Problem) ([]int64, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	return p.SolveWith(NetworkSimplex)
}

// Solve optimizes the problem via dual min-cost flow using the SSP solver
// and returns the optimal variable assignment and objective value.
func (p *Problem) Solve() ([]int64, int64, error) { return p.SolveWith(SSP) }

// SolveWith is Solve with an explicit min-cost-flow solver.
//
// Construction (following Eqn. 15/16): one flow node per variable plus a
// reference node 0 pinned at x=0. Each constraint x_i − x_j ≥ b becomes an
// uncapacitated arc j→i with cost −b; bounds become constraints against
// the reference node. Node supplies are −c_i (the reference node absorbs
// +Σc_i so supplies balance). Optimal node potentials y of the flow
// problem are dual-optimal for the LP, and x_i = y_i − y_0.
func (p *Problem) SolveWith(solve Solver) ([]int64, int64, error) {
	if err := p.validate(); err != nil {
		return nil, 0, err
	}
	n := len(p.C)
	g := mcf.NewGraph(n + 1) // node 0 = reference, node i+1 = variable i

	var sumC int64
	for i, c := range p.C {
		g.SetSupply(i+1, -c)
		sumC += c
	}
	g.SetSupply(0, sumC)

	for _, c := range p.Cons {
		// x_I − x_J ≥ B  →  arc J→I, cost −B.
		g.AddArc(c.J+1, c.I+1, mcf.InfCap, -c.B)
	}
	for i := 0; i < n; i++ {
		// x_i − x_0 ≥ Lo[i]  →  arc 0→i, cost −Lo[i].
		g.AddArc(0, i+1, mcf.InfCap, -p.Lo[i])
		// x_0 − x_i ≥ −Hi[i] →  arc i→0, cost Hi[i].
		g.AddArc(i+1, 0, mcf.InfCap, p.Hi[i])
	}

	res, err := solve(g)
	if err != nil {
		if errors.Is(err, mcf.ErrUnbounded) || errors.Is(err, mcf.ErrInfeasible) {
			// An unbounded dual (negative residual cycle) means the primal
			// difference constraints are inconsistent with the bounds.
			return nil, 0, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
		return nil, 0, err
	}

	x := make([]int64, n)
	y0 := res.Potential[0]
	var obj int64
	for i := 0; i < n; i++ {
		x[i] = res.Potential[i+1] - y0
		obj += p.C[i] * x[i]
	}
	if err := p.Check(x); err != nil {
		return nil, 0, fmt.Errorf("dlp: internal error, solver produced invalid solution: %v", err)
	}
	return x, obj, nil
}

// Check verifies that x satisfies all bounds and constraints.
func (p *Problem) Check(x []int64) error {
	if len(x) != len(p.C) {
		return fmt.Errorf("dlp: solution length %d, want %d", len(x), len(p.C))
	}
	for i := range x {
		if x[i] < p.Lo[i] || x[i] > p.Hi[i] {
			return fmt.Errorf("dlp: x[%d]=%d outside [%d,%d]", i, x[i], p.Lo[i], p.Hi[i])
		}
	}
	for _, c := range p.Cons {
		if x[c.I]-x[c.J] < c.B {
			return fmt.Errorf("dlp: constraint x[%d]-x[%d] >= %d violated (%d-%d)", c.I, c.J, c.B, x[c.I], x[c.J])
		}
	}
	return nil
}

// Objective returns Σ c_i x_i.
func (p *Problem) Objective(x []int64) int64 {
	var obj int64
	for i, c := range p.C {
		obj += c * x[i]
	}
	return obj
}
