package dlp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dummyfill/internal/lps"
)

// ViaSimplexLP solves the difference-constraint problem with the dense
// general-purpose simplex instead of the dual min-cost-flow transform —
// the "LP/ILP" baseline the paper's §3.3.3 speedup is measured against.
// The optimum is integral by total unimodularity; values are rounded to
// guard against float noise and re-checked. The dense solver is one-shot,
// so cancellation is only checked before it starts.
func ViaSimplexLP(ctx context.Context, p *Problem) ([]int64, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if err := p.validate(); err != nil {
		return nil, 0, err
	}
	lp := lps.NewProblem()
	for i := 0; i < p.N(); i++ {
		lp.AddVar(float64(p.C[i]), float64(p.Lo[i]), float64(p.Hi[i]))
	}
	for _, c := range p.Cons {
		lp.AddConstraint(map[int]float64{c.I: 1, c.J: -1}, lps.GE, float64(c.B))
	}
	res, err := lp.Solve()
	if err != nil {
		if errors.Is(err, lps.ErrInfeasible) {
			return nil, 0, fmt.Errorf("%w: simplex phase 1", ErrInfeasible)
		}
		return nil, 0, err
	}
	x := make([]int64, p.N())
	for i, v := range res.X {
		x[i] = int64(math.Round(v))
	}
	if err := p.Check(x); err != nil {
		return nil, 0, fmt.Errorf("dlp: simplex rounding produced invalid solution: %v", err)
	}
	return x, p.Objective(x), nil
}
