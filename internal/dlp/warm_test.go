package dlp

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// randomProblem builds a random feasible-or-not difference-constraint
// instance shaped like a sizing pass.
func randomProblem(rng *rand.Rand, n int) *Problem {
	p := NewProblem(n, 0)
	for i := 0; i < n; i++ {
		lo := int64(rng.Intn(50))
		p.Lo[i] = lo
		p.Hi[i] = lo + int64(rng.Intn(100))
		p.C[i] = int64(rng.Intn(41) - 20)
	}
	for k := 0; k < n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		p.AddConstraint(i, j, int64(rng.Intn(30)-15))
	}
	return p
}

// TestWarmMatchesCold cross-validates the warm solver against the one-shot
// path over a stream of random instances reusing one WarmSolver: same
// objective value (and same feasibility verdict) every time.
func TestWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewWarmSolver()
	solved := 0
	for it := 0; it < 300; it++ {
		p := randomProblem(rng, 2+rng.Intn(12))
		xw, objW, errW := s.Solve(context.Background(), p)
		xc, objC, errC := p.Solve()
		if (errW == nil) != (errC == nil) {
			t.Fatalf("it %d: verdict mismatch warm=%v cold=%v", it, errW, errC)
		}
		if errW != nil {
			if !errors.Is(errW, ErrInfeasible) {
				t.Fatalf("it %d: unexpected error %v", it, errW)
			}
			continue
		}
		solved++
		if objW != objC {
			t.Fatalf("it %d: objective mismatch warm=%d cold=%d", it, objW, objC)
		}
		if err := p.Check(xw); err != nil {
			t.Fatalf("it %d: warm solution invalid: %v", it, err)
		}
		if err := p.Check(xc); err != nil {
			t.Fatalf("it %d: cold solution invalid: %v", it, err)
		}
	}
	if solved == 0 {
		t.Fatal("no feasible instances exercised")
	}
}

// TestWarmSequenceReusesState mimics the alternating-direction sizing
// loop: repeated solves of one instance with slightly perturbed costs must
// all return the instance optimum.
func TestWarmSequenceReusesState(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewWarmSolver()
	base := randomProblem(rng, 20)
	for pass := 0; pass < 10; pass++ {
		for i := range base.C {
			base.C[i] += int64(rng.Intn(5) - 2)
		}
		_, objW, errW := s.Solve(context.Background(), base)
		_, objC, errC := base.Solve()
		if (errW == nil) != (errC == nil) {
			t.Fatalf("pass %d: verdict mismatch warm=%v cold=%v", pass, errW, errC)
		}
		if errW == nil && objW != objC {
			t.Fatalf("pass %d: objective mismatch warm=%d cold=%d", pass, objW, objC)
		}
	}
}

// TestWarmAfterInfeasible checks the solver recovers cleanly after an
// infeasible instance (the dropCrowded retry pattern).
func TestWarmAfterInfeasible(t *testing.T) {
	s := NewWarmSolver()
	bad := NewProblem(2, 10)
	bad.AddConstraint(0, 1, 5)
	bad.AddConstraint(1, 0, 5) // x0-x1 >= 5 and x1-x0 >= 5: impossible
	if _, _, err := s.Solve(context.Background(), bad); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	good := NewProblem(2, 10)
	good.C = []int64{1, 1}
	good.AddConstraint(0, 1, 3)
	x, obj, err := s.Solve(context.Background(), good)
	if err != nil {
		t.Fatal(err)
	}
	if obj != 3 || x[0]-x[1] < 3 {
		t.Fatalf("bad recovery solution x=%v obj=%d", x, obj)
	}
}

// TestProblemReset verifies Reset matches NewProblem semantics.
func TestProblemReset(t *testing.T) {
	p := NewProblem(3, 7)
	p.C[0] = 5
	p.AddConstraint(0, 1, 2)
	p.Reset(2)
	if p.N() != 2 || len(p.Cons) != 0 {
		t.Fatalf("reset left n=%d cons=%d", p.N(), len(p.Cons))
	}
	for i := 0; i < 2; i++ {
		if p.C[i] != 0 || p.Lo[i] != 0 || p.Hi[i] != 0 {
			t.Fatalf("reset left non-zero state at %d", i)
		}
	}
	// Growing beyond previous capacity must work too.
	p.Reset(64)
	if p.N() != 64 {
		t.Fatalf("reset grow failed: n=%d", p.N())
	}
}

// BenchmarkWarmVsCold quantifies the warm-start win on a sizing-shaped LP
// re-solved with perturbed costs (run with -benchmem: the warm path must
// be allocation-light).
func BenchmarkWarmVsCold(b *testing.B) {
	build := func(n int) *Problem {
		p := NewProblem(2*n, 0)
		for i := 0; i < n; i++ {
			lo := int64(i * 110)
			hi := lo + 100
			p.Lo[2*i], p.Hi[2*i] = lo, hi-8
			p.Lo[2*i+1], p.Hi[2*i+1] = lo+8, hi
			p.C[2*i+1] = int64(50 + i%17)
			p.C[2*i] = -p.C[2*i+1]
			p.AddConstraint(2*i+1, 2*i, 8)
			if i > 0 {
				p.AddConstraint(2*i, 2*(i-1)+1, 10)
			}
		}
		return p
	}
	for _, n := range []int{50, 200} {
		p := build(n)
		b.Run("Cold/n="+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.C[2*(i%n)+1]++ // perturb like an overlay-cost drift
				if _, _, err := p.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
		p = build(n)
		b.Run("Warm/n="+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			s := NewWarmSolver()
			for i := 0; i < b.N; i++ {
				p.C[2*(i%n)+1]++
				if _, _, err := s.Solve(context.Background(), p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
