package dlp

import (
	"context"
	"errors"
	"fmt"

	"dummyfill/internal/mcf"
)

// WarmSolver solves a sequence of related difference-constraint problems,
// reusing one min-cost-flow graph arena and carrying node potentials from
// solve to solve. The alternating-direction sizing loop (§3.3) produces
// exactly this workload: consecutive passes solve near-identical LPs, so
// the previous pass's dual solution is usually still feasible — the solver
// then skips the Bellman-Ford initialization and goes straight to Dijkstra
// augmentation over reduced costs, and in steady state performs no
// allocations beyond the returned solution buffer.
//
// The warm-start contract: Solve may be called with problems of any shape;
// carried potentials are validated in O(m) against the new instance and
// silently discarded when stale (different variable count or no longer
// dual-feasible), so warm starting is a pure optimization — results are
// bit-for-bit the optima of each instance in isolation. The returned
// solution slice is reused by the next Solve call; callers that retain it
// must copy.
//
// A WarmSolver is not safe for concurrent use; give each worker its own.
type WarmSolver struct {
	g      mcf.Graph
	ws     mcf.Workspace
	res    mcf.Result
	x      []int64
	warmed bool
	lastN  int
}

// NewWarmSolver returns an empty warm-startable solver.
func NewWarmSolver() *WarmSolver { return &WarmSolver{} }

// NewWarmSSP returns a PSolver backed by a fresh WarmSolver — the factory
// used by the fill engine to give each window worker its own reusable
// solver state.
func NewWarmSSP() PSolver { return NewWarmSolver().Solve }

// Solve optimizes p exactly like Problem.Solve, but through the reusable
// arena, honouring cancellation mid-solve. The returned slice is valid
// until the next Solve call.
func (s *WarmSolver) Solve(ctx context.Context, p *Problem) ([]int64, int64, error) {
	if err := p.validate(); err != nil {
		return nil, 0, err
	}
	n := len(p.C)
	s.g.Reset(n + 1) // node 0 = reference, node i+1 = variable i

	var sumC int64
	for i, c := range p.C {
		s.g.SetSupply(i+1, -c)
		sumC += c
	}
	s.g.SetSupply(0, sumC)

	for _, c := range p.Cons {
		// x_I − x_J ≥ B  →  arc J→I, cost −B. Endpoints are in range by
		// validate; a failure here is surfaced by the solver via Graph.Err.
		s.g.AddArc(c.J+1, c.I+1, mcf.InfCap, -c.B)
	}
	for i := 0; i < n; i++ {
		// x_i − x_0 ≥ Lo[i]  →  arc 0→i, cost −Lo[i].
		s.g.AddArc(0, i+1, mcf.InfCap, -p.Lo[i])
		// x_0 − x_i ≥ −Hi[i] →  arc i→0, cost Hi[i].
		s.g.AddArc(i+1, 0, mcf.InfCap, p.Hi[i])
	}

	warm := s.warmed && s.lastN == n+1
	err := s.ws.SolveSSP(ctx, &s.g, warm, &s.res)
	if err != nil {
		s.warmed = false
		if errors.Is(err, mcf.ErrUnbounded) || errors.Is(err, mcf.ErrInfeasible) {
			// An unbounded dual (negative residual cycle) means the primal
			// difference constraints are inconsistent with the bounds.
			return nil, 0, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
		return nil, 0, err
	}
	s.warmed = true
	s.lastN = n + 1

	if cap(s.x) < n {
		s.x = make([]int64, n)
	}
	s.x = s.x[:n]
	y0 := s.res.Potential[0]
	var obj int64
	for i := 0; i < n; i++ {
		s.x[i] = s.res.Potential[i+1] - y0
		obj += p.C[i] * s.x[i]
	}
	if err := p.Check(s.x); err != nil {
		return nil, 0, fmt.Errorf("dlp: internal error, solver produced invalid solution: %v", err)
	}
	return s.x, obj, nil
}

// Reset drops the carried warm-start state (potentials stay allocated but
// are revalidated from scratch on the next Solve).
func (s *WarmSolver) Reset() { s.warmed = false }
