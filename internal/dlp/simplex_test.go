package dlp

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// TestAllBackendsAgree cross-checks the three problem-level solvers —
// dual MCF via SSP, dual MCF via network simplex, and the dense simplex —
// on random difference-constraint problems. Total unimodularity means all
// must report the same optimal objective (and the same feasibility
// verdict).
func TestAllBackendsAgree(t *testing.T) {
	backends := []struct {
		name string
		s    PSolver
	}{
		{"ViaSSP", ViaSSP},
		{"ViaNetworkSimplex", ViaNetworkSimplex},
		{"ViaSimplexLP", ViaSimplexLP},
	}
	rng := rand.New(rand.NewSource(31))
	for it := 0; it < 80; it++ {
		n := 2 + rng.Intn(8)
		p := NewProblem(n, int64(5+rng.Intn(20)))
		for i := 0; i < n; i++ {
			p.C[i] = int64(rng.Intn(21) - 10)
			p.Lo[i] = int64(rng.Intn(3))
		}
		for k := 0; k < rng.Intn(2*n); k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			p.AddConstraint(i, j, int64(rng.Intn(9)-4))
		}
		type outcome struct {
			obj      int64
			feasible bool
		}
		var ref outcome
		for bi, b := range backends {
			x, obj, err := b.s(context.Background(), p)
			o := outcome{obj, err == nil}
			if err != nil && !errors.Is(err, ErrInfeasible) {
				t.Fatalf("it %d %s: unexpected error %v", it, b.name, err)
			}
			if err == nil {
				if cErr := p.Check(x); cErr != nil {
					t.Fatalf("it %d %s: invalid solution: %v", it, b.name, cErr)
				}
			}
			if bi == 0 {
				ref = o
				continue
			}
			if o.feasible != ref.feasible {
				t.Fatalf("it %d %s: feasibility %v, ref %v", it, b.name, o.feasible, ref.feasible)
			}
			if o.feasible && o.obj != ref.obj {
				t.Fatalf("it %d %s: objective %d, ref %d", it, b.name, o.obj, ref.obj)
			}
		}
	}
}

func TestViaSimplexLPFig6(t *testing.T) {
	p := NewProblem(4, 10)
	p.C = []int64{1, 2, 3, 4}
	p.AddConstraint(0, 1, 5)
	p.AddConstraint(3, 2, 6)
	x, obj, err := ViaSimplexLP(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if obj != 29 {
		t.Fatalf("objective = %d (x=%v), want 29", obj, x)
	}
}

func TestViaSimplexLPInfeasible(t *testing.T) {
	p := NewProblem(2, 3)
	p.AddConstraint(0, 1, 10)
	_, _, err := ViaSimplexLP(context.Background(), p)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestViaSimplexLPValidates(t *testing.T) {
	p := &Problem{C: []int64{1}, Lo: []int64{0, 0}, Hi: []int64{5}}
	if _, _, err := ViaSimplexLP(context.Background(), p); err == nil {
		t.Fatal("inconsistent problem must error")
	}
}
