package ingest_test

import (
	"bytes"
	"runtime"
	"testing"

	dummyfill "dummyfill"
	"dummyfill/internal/gdsii"
	"dummyfill/internal/ingest"
)

// allocTotal runs f and returns its cumulative allocation in bytes
// (TotalAlloc delta — deterministic, unlike sampled live heap).
func allocTotal(t *testing.T, f func()) uint64 {
	t.Helper()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestStreamingIngestAllocBelowLibrary guards the point of the streaming
// reader path: ingesting a real deck (design "m") through FromShapes
// must allocate measurably less than parsing a full gdsii.Library first
// and ingesting that. The 0.95 factor leaves headroom for allocator
// noise while still failing if someone reintroduces materialization on
// the streaming path.
func TestStreamingIngestAllocBelowLibrary(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc comparison on design m skipped under -short")
	}
	lay, _, err := dummyfill.GenerateBenchmark("m")
	if err != nil {
		t.Fatal(err)
	}
	var deck bytes.Buffer
	if err := dummyfill.WriteGDS(&deck, lay, nil); err != nil {
		t.Fatal(err)
	}
	data := deck.Bytes()
	opts := ingest.Options{Die: lay.Die, Window: lay.Window, Rules: lay.Rules}

	var libLay, strLay *dummyfill.Layout
	libAlloc := allocTotal(t, func() {
		lib, err := gdsii.Read(bytes.NewReader(data))
		if err != nil {
			t.Error(err)
			return
		}
		libLay, err = ingest.FromGDS(lib, opts)
		if err != nil {
			t.Error(err)
		}
	})
	strAlloc := allocTotal(t, func() {
		var err error
		strLay, err = ingest.FromShapes(gdsii.NewShapeReader(bytes.NewReader(data), gdsii.DefaultLimits()), opts)
		if err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	if libLay.NumShapes() != strLay.NumShapes() {
		t.Fatalf("paths disagree: library %d shapes, stream %d", libLay.NumShapes(), strLay.NumShapes())
	}
	t.Logf("deck %d bytes, %d shapes: library path %d B allocated, streaming path %d B (%.2fx)",
		len(data), strLay.NumShapes(), libAlloc, strAlloc, float64(strAlloc)/float64(libAlloc))
	if float64(strAlloc) > 0.95*float64(libAlloc) {
		t.Fatalf("streaming ingest allocated %d B, library path %d B: want stream ≤ 0.95× library", strAlloc, libAlloc)
	}
}
