// Package ingest builds fill-flow inputs from external data: it converts
// streamed layout shapes into a layout.Layout, performing the front half
// of the paper's flow — polygon-to-rectangle conversion ([16]) and
// feasible fill-region extraction (free space minus the wire spacing
// keepout), window by window.
package ingest

import (
	"fmt"
	"io"

	"dummyfill/internal/gdsii"
	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
	"dummyfill/internal/layio"
	"dummyfill/internal/layout"
)

// Options control layout construction.
type Options struct {
	// Window is the density-analysis window size. Zero picks the stream
	// header's window if it carries one, else 1/16 of the die's larger
	// dimension.
	Window int64
	// Rules is the fill rule set. The zero value defers to the stream
	// header's rules (text layouts carry them); a stream without rules then
	// fails validation.
	Rules layout.Rules
	// Die overrides the die area; zero value uses the stream header's die
	// if present, else the bounding box of all shapes.
	Die geom.Rect
	// KeepFills controls whether existing fill shapes (datatype 1) found
	// in the input are treated as wires (blocking new fill) or dropped.
	KeepFills bool
}

// FromShapes drains a streaming shape reader into a Layout ready for the
// fill engine, without materializing any per-format library. Wires
// (datatype 0) block fill; existing fills (datatype 1) are kept as wires
// or dropped per Options.KeepFills; explicit fill regions (datatype 2,
// text layouts) are trusted as-is. For formats without layout metadata
// (GDSII, OASIS) the feasible fill regions are computed: the free space
// at least MinSpace away from any shape, extracted per window with the
// slab orientation chosen per layer from the dominant wire direction.
func FromShapes(sr layio.ShapeReader, opts Options) (*layout.Layout, error) {
	if opts.Rules != (layout.Rules{}) {
		if err := opts.Rules.Validate(); err != nil {
			return nil, err
		}
	}

	ensure := func(sl *[][]geom.Rect, n int) error {
		if n > layout.MaxBuilderLayers {
			return fmt.Errorf("ingest: layer count %d exceeds cap %d", n, layout.MaxBuilderLayers)
		}
		for len(*sl) < n {
			*sl = append(*sl, nil)
		}
		return nil
	}
	var wires, fills, regions [][]geom.Rect // dense, per layer
	var bbox geom.Rect
	nshapes := 0
	for {
		s, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if s.Layer < 0 {
			return nil, fmt.Errorf("ingest: negative layer id %d", s.Layer)
		}
		dst := &wires
		switch s.Datatype {
		case layio.DatatypeFill:
			if !opts.KeepFills {
				continue
			}
			dst = &fills
		case layio.DatatypeRegion:
			dst = &regions
		}
		if err := ensure(dst, s.Layer+1); err != nil {
			return nil, err
		}
		(*dst)[s.Layer] = append((*dst)[s.Layer], s.Rect)
		if dst != &regions {
			bbox = bbox.Union(s.Rect)
			nshapes++
		}
	}
	hdr := sr.Header()

	if nshapes == 0 && !hdr.HasLayoutMeta {
		return nil, fmt.Errorf("ingest: library %q contains no shapes", hdr.Name)
	}
	die := opts.Die
	if die.Empty() {
		die = hdr.Die
	}
	if die.Empty() {
		die = bbox
	}
	window := opts.Window
	if window <= 0 {
		window = hdr.Window
	}
	if window <= 0 {
		window = max64(die.W(), die.H()) / 16
		if window < 1 {
			window = 1
		}
	}
	rules := opts.Rules
	if rules == (layout.Rules{}) {
		rules = hdr.Rules
	}
	if err := rules.Validate(); err != nil {
		return nil, err
	}
	numLayers := len(wires)
	for _, n := range [...]int{len(fills), len(regions), hdr.NumLayers} {
		if n > numLayers {
			numLayers = n
		}
	}

	b := layout.NewBuilder().
		SetName(hdr.Name).SetDie(die).SetWindow(window).SetRules(rules).
		EnsureLayers(numLayers)
	if hdr.Sites != nil {
		b.SetSites(*hdr.Sites)
	}
	at := func(sl [][]geom.Rect, li int) []geom.Rect {
		if li < len(sl) {
			return sl[li]
		}
		return nil
	}
	if hdr.HasLayoutMeta {
		// The file states its own geometry; trust it unmodified and let
		// validation police it.
		for li := 0; li < numLayers; li++ {
			for _, r := range at(wires, li) {
				b.AddWire(li, r)
			}
			for _, r := range at(fills, li) {
				b.AddWire(li, r)
			}
			for _, r := range at(regions, li) {
				b.AddFillRegion(li, r)
			}
		}
	} else {
		g, err := grid.New(die, window)
		if err != nil {
			return nil, err
		}
		for li := 0; li < numLayers; li++ {
			shapes := append(append([]geom.Rect(nil), at(wires, li)...), at(fills, li)...)
			clipped := make([]geom.Rect, 0, len(shapes))
			for _, s := range shapes {
				if c := s.Intersect(die); !c.Empty() {
					clipped = append(clipped, c)
				}
			}
			for _, r := range clipped {
				b.AddWire(li, r)
			}
			for _, r := range ExtractFillRegions(g, clipped, rules) {
				b.AddFillRegion(li, r)
			}
		}
	}
	lay, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("ingest: constructed layout invalid: %v", err)
	}
	return lay, nil
}

// FromGDS converts an already-parsed GDSII library into a Layout. It is
// a materializing convenience over FromShapes; streaming callers should
// feed a format ShapeReader to FromShapes directly.
func FromGDS(lib *gdsii.Library, opts Options) (*layout.Layout, error) {
	return FromShapes(gdsii.LibraryReader(lib), opts)
}

// ExtractFillRegions computes the feasible fill regions of one layer:
// per window, the free space after expanding every shape by the minimum
// spacing, with the slab orientation picked from the layer's dominant
// wire direction, and slivers unable to host a legal fill dropped.
func ExtractFillRegions(g *grid.Grid, shapes []geom.Rect, rules layout.Rules) []geom.Rect {
	// Dominant direction: compare summed widths vs. heights.
	var sumW, sumH int64
	for _, s := range shapes {
		sumW += s.W()
		sumH += s.H()
	}
	vertical := sumH > sumW

	perWin := make([][]geom.Rect, g.NumWindows())
	for _, s := range shapes {
		ex := s.Expand(rules.MinSpace)
		g.RangeOverlapping(ex, func(i, j int, clip geom.Rect) {
			k := j*g.NX + i
			perWin[k] = append(perWin[k], clip)
		})
	}
	var out []geom.Rect
	for k := 0; k < g.NumWindows(); k++ {
		win := g.Window(k%g.NX, k/g.NX)
		for _, f := range geom.DifferenceOriented(win, perWin[k], vertical) {
			if f.W() >= rules.MinWidth && f.H() >= rules.MinWidth && f.Area() >= rules.MinArea {
				out = append(out, f)
			}
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
