// Package ingest builds fill-flow inputs from external data: it converts
// a GDSII library into a layout.Layout, performing the front half of the
// paper's flow — polygon-to-rectangle conversion ([16]) and feasible
// fill-region extraction (free space minus the wire spacing keepout),
// window by window.
package ingest

import (
	"fmt"
	"sort"

	"dummyfill/internal/gdsii"
	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
	"dummyfill/internal/layout"
)

// Options control layout construction.
type Options struct {
	// Window is the density-analysis window size. Zero picks 1/16 of the
	// die's larger dimension.
	Window int64
	// Rules is the fill rule set (required).
	Rules layout.Rules
	// Die overrides the die area; zero value uses the bounding box of all
	// shapes.
	Die geom.Rect
	// KeepFills controls whether existing fill shapes (datatype 1) found
	// in the input are treated as wires (blocking new fill) or dropped.
	KeepFills bool
}

// FromGDS converts a parsed GDSII library into a Layout ready for the
// fill engine. Boundaries with datatype 0 are wires; datatype-1 fills are
// kept as wires or dropped per Options.KeepFills; polygons are decomposed
// into rectangles. Feasible fill regions are the free space at least
// MinSpace away from any shape, extracted per window with the slab
// orientation chosen per layer from the dominant wire direction.
func FromGDS(lib *gdsii.Library, opts Options) (*layout.Layout, error) {
	if err := opts.Rules.Validate(); err != nil {
		return nil, err
	}
	wires, fills, err := lib.ExtractShapes()
	if err != nil {
		return nil, err
	}
	if !opts.KeepFills {
		fills = nil
	}

	// Collect layer ids and the overall bounding box.
	layerSet := map[int]bool{}
	var bbox geom.Rect
	for li, rs := range wires {
		layerSet[li] = true
		for _, r := range rs {
			bbox = bbox.Union(r)
		}
	}
	for li, rs := range fills {
		layerSet[li] = true
		for _, r := range rs {
			bbox = bbox.Union(r)
		}
	}
	if len(layerSet) == 0 {
		return nil, fmt.Errorf("ingest: library %q contains no shapes", lib.Name)
	}
	die := opts.Die
	if die.Empty() {
		die = bbox
	}
	var layerIDs []int
	for li := range layerSet {
		if li < 0 {
			return nil, fmt.Errorf("ingest: negative layer id %d", li)
		}
		layerIDs = append(layerIDs, li)
	}
	sort.Ints(layerIDs)
	maxLayer := layerIDs[len(layerIDs)-1]

	window := opts.Window
	if window <= 0 {
		window = max64(die.W(), die.H()) / 16
		if window < 1 {
			window = 1
		}
	}
	g, err := grid.New(die, window)
	if err != nil {
		return nil, err
	}

	lay := &layout.Layout{
		Name:   lib.Name,
		Die:    die,
		Window: window,
		Rules:  opts.Rules,
	}
	for li := 0; li <= maxLayer; li++ {
		shapes := append(append([]geom.Rect(nil), wires[li]...), fills[li]...)
		clipped := make([]geom.Rect, 0, len(shapes))
		for _, s := range shapes {
			if c := s.Intersect(die); !c.Empty() {
				clipped = append(clipped, c)
			}
		}
		lay.Layers = append(lay.Layers, &layout.Layer{
			Wires:       clipped,
			FillRegions: ExtractFillRegions(g, clipped, opts.Rules),
		})
	}
	if err := lay.Validate(); err != nil {
		return nil, fmt.Errorf("ingest: constructed layout invalid: %v", err)
	}
	return lay, nil
}

// ExtractFillRegions computes the feasible fill regions of one layer:
// per window, the free space after expanding every shape by the minimum
// spacing, with the slab orientation picked from the layer's dominant
// wire direction, and slivers unable to host a legal fill dropped.
func ExtractFillRegions(g *grid.Grid, shapes []geom.Rect, rules layout.Rules) []geom.Rect {
	// Dominant direction: compare summed widths vs. heights.
	var sumW, sumH int64
	for _, s := range shapes {
		sumW += s.W()
		sumH += s.H()
	}
	vertical := sumH > sumW

	perWin := make([][]geom.Rect, g.NumWindows())
	for _, s := range shapes {
		ex := s.Expand(rules.MinSpace)
		g.RangeOverlapping(ex, func(i, j int, clip geom.Rect) {
			k := j*g.NX + i
			perWin[k] = append(perWin[k], clip)
		})
	}
	var out []geom.Rect
	for k := 0; k < g.NumWindows(); k++ {
		win := g.Window(k%g.NX, k/g.NX)
		for _, f := range geom.DifferenceOriented(win, perWin[k], vertical) {
			if f.W() >= rules.MinWidth && f.H() >= rules.MinWidth && f.Area() >= rules.MinArea {
				out = append(out, f)
			}
		}
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
