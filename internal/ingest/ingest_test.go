package ingest

import (
	"bytes"
	"testing"

	"dummyfill/internal/drc"
	"dummyfill/internal/fill"
	"dummyfill/internal/gdsii"
	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
	"dummyfill/internal/layout"
	"dummyfill/internal/synth"
)

func testOpts() Options {
	return Options{
		Window: 500,
		Rules:  layout.Rules{MinWidth: 8, MinSpace: 8, MinArea: 64, MaxFillDim: 200},
	}
}

func TestFromGDSRoundTripSynthDesign(t *testing.T) {
	// synth design → GDS → ingest → layout: wires must survive exactly,
	// and the reconstructed layout must drive the fill engine to a
	// DRC-clean solution.
	src, err := synth.Generate(synth.DesignTiny())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gdsii.FromLayout(src, nil).Write(&buf); err != nil {
		t.Fatal(err)
	}
	lib, err := gdsii.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts()
	opts.Die = src.Die
	opts.Rules = src.Rules
	opts.Window = src.Window
	lay, err := FromGDS(lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	if lay.NumShapes() != src.NumShapes() {
		t.Fatalf("wires lost: %d vs %d", lay.NumShapes(), src.NumShapes())
	}
	if len(lay.Layers) != len(src.Layers) {
		t.Fatalf("layers: %d vs %d", len(lay.Layers), len(src.Layers))
	}
	e, err := fill.New(lay, fill.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution.Fills) == 0 {
		t.Fatal("ingested layout produced no fills")
	}
	if vs := drc.Check(lay, &res.Solution, true); len(vs) != 0 {
		t.Fatalf("%d DRC violations, first: %v", len(vs), vs[0])
	}
}

func TestFromGDSPolygonWires(t *testing.T) {
	// An L-shaped wire must be decomposed and its keepout respected.
	lib := &gdsii.Library{Name: "poly", Structs: []gdsii.Structure{{
		Name: "TOP",
		Boundaries: []gdsii.Boundary{{
			Layer:    1,
			Datatype: 0,
			Pts: []geom.Point{
				{X: 100, Y: 100}, {X: 300, Y: 100}, {X: 300, Y: 200},
				{X: 200, Y: 200}, {X: 200, Y: 300}, {X: 100, Y: 300},
			},
		}},
	}}}
	opts := testOpts()
	opts.Die = geom.R(0, 0, 1000, 1000)
	lay, err := FromGDS(lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wireArea int64
	for _, w := range lay.Layers[0].Wires {
		wireArea += w.Area()
	}
	if wireArea != 30000 { // L-shape area
		t.Fatalf("decomposed wire area = %d, want 30000", wireArea)
	}
	// No fill region may touch the L-shape's keepout.
	for _, fr := range lay.Layers[0].FillRegions {
		for _, w := range lay.Layers[0].Wires {
			gx, gy := fr.Gap(w)
			if gx < opts.Rules.MinSpace && gy < opts.Rules.MinSpace {
				t.Fatalf("fill region %v inside keepout of wire %v", fr, w)
			}
		}
	}
}

func TestFromGDSKeepFills(t *testing.T) {
	lib := &gdsii.Library{Name: "kf", Structs: []gdsii.Structure{{
		Name: "TOP",
		Boundaries: []gdsii.Boundary{
			{Layer: 1, Datatype: 0, Pts: rectPts(geom.R(0, 0, 100, 100))},
			{Layer: 1, Datatype: 1, Pts: rectPts(geom.R(300, 300, 400, 400))},
		},
	}}}
	opts := testOpts()
	opts.Die = geom.R(0, 0, 1000, 1000)

	lay, err := FromGDS(lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(lay.Layers[0].Wires) != 1 {
		t.Fatalf("dropped-fills mode: wires = %d, want 1", len(lay.Layers[0].Wires))
	}

	opts.KeepFills = true
	lay, err = FromGDS(lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(lay.Layers[0].Wires) != 2 {
		t.Fatalf("keep-fills mode: blocking shapes = %d, want 2", len(lay.Layers[0].Wires))
	}
}

func TestFromGDSDefaults(t *testing.T) {
	lib := &gdsii.Library{Name: "def", Structs: []gdsii.Structure{{
		Name: "TOP",
		Boundaries: []gdsii.Boundary{
			{Layer: 1, Datatype: 0, Pts: rectPts(geom.R(0, 0, 1600, 50))},
		},
	}}}
	opts := Options{Rules: testOpts().Rules} // no window, no die
	lay, err := FromGDS(lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Window != 100 { // 1600/16
		t.Fatalf("default window = %d, want 100", lay.Window)
	}
	if lay.Die != (geom.Rect{XL: 0, YL: 0, XH: 1600, YH: 50}) {
		t.Fatalf("default die = %v", lay.Die)
	}
}

func TestFromGDSErrors(t *testing.T) {
	empty := &gdsii.Library{Name: "empty"}
	if _, err := FromGDS(empty, testOpts()); err == nil {
		t.Fatal("shapeless library must error")
	}
	lib := &gdsii.Library{Name: "x", Structs: []gdsii.Structure{{
		Name:       "TOP",
		Boundaries: []gdsii.Boundary{{Layer: 1, Pts: rectPts(geom.R(0, 0, 10, 10))}},
	}}}
	if _, err := FromGDS(lib, Options{}); err == nil {
		t.Fatal("zero rules must error")
	}
}

func TestExtractFillRegionsOrientation(t *testing.T) {
	rules := testOpts().Rules
	g, err := grid.New(geom.R(0, 0, 1000, 1000), 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Vertical wires → vertical slabs preferred → free pieces should be
	// tall, not wide.
	var vert []geom.Rect
	for x := int64(100); x < 900; x += 100 {
		vert = append(vert, geom.R(x, 0, x+16, 1000))
	}
	regions := ExtractFillRegions(g, vert, rules)
	if len(regions) == 0 {
		t.Fatal("no regions extracted")
	}
	tall := 0
	for _, r := range regions {
		if r.H() > r.W() {
			tall++
		}
	}
	if tall < len(regions)/2 {
		t.Fatalf("vertical wires should produce mostly tall regions: %d of %d", tall, len(regions))
	}
}

func rectPts(r geom.Rect) []geom.Point {
	return []geom.Point{
		{X: r.XL, Y: r.YL}, {X: r.XH, Y: r.YL},
		{X: r.XH, Y: r.YH}, {X: r.XL, Y: r.YH},
	}
}
