package gdsii

import (
	"bufio"
	"fmt"
	"io"

	"dummyfill/internal/geom"
	"dummyfill/internal/layio"
	"dummyfill/internal/layout"
)

// Boundary is one polygon element.
type Boundary struct {
	Layer    int
	Datatype int
	// Pts is the vertex ring without the closing point (GDSII repeats the
	// first vertex on disk; the library strips/adds it).
	Pts []geom.Point
}

// Structure is a GDSII structure (cell).
type Structure struct {
	Name       string
	Boundaries []Boundary
}

// Library is a GDSII library.
type Library struct {
	Name     string
	UserUnit float64 // user units per database unit (typically 1e-3)
	MeterDBU float64 // meters per database unit (typically 1e-9)
	Structs  []Structure
}

// Datatype conventions used by this repository when emitting layouts:
// wires carry datatype 0, dummy fills datatype 1 (so fills can be
// separated on read-back).
const (
	DatatypeWire = 0
	DatatypeFill = 1
)

// Write emits the library as a GDSII stream. It is a convenience over
// StreamWriter (and produces byte-identical output): the streaming
// interface avoids materializing Structs for large shape sets.
func (lib *Library) Write(w io.Writer) error {
	sw := NewStreamWriter(w)
	if err := sw.BeginLibrary(lib.Name, lib.UserUnit, lib.MeterDBU); err != nil {
		return err
	}
	for _, st := range lib.Structs {
		if err := sw.BeginStructure(st.Name); err != nil {
			return err
		}
		for _, b := range st.Boundaries {
			if err := sw.WriteBoundary(b); err != nil {
				return err
			}
		}
		if err := sw.EndStructure(); err != nil {
			return err
		}
	}
	return sw.Close()
}

// Read parses a GDSII stream into a Library under DefaultLimits.
// Unsupported elements (paths, references, texts) are skipped.
func Read(r io.Reader) (*Library, error) {
	return ReadLimited(r, DefaultLimits())
}

// ReadLimited is Read with caller-chosen resource limits; exceeding one
// returns an error wrapping ErrLimit.
func ReadLimited(r io.Reader, lim Limits) (*Library, error) {
	br := bufio.NewReader(r)
	lib := &Library{}
	var cur *Structure
	var curB *Boundary
	sawHeader := false
	var records, shapes int64
	for {
		rec, err := readRecord(br)
		if err == io.EOF {
			if sawHeader {
				return nil, fmt.Errorf("gdsii: missing ENDLIB")
			}
			return nil, fmt.Errorf("gdsii: empty stream")
		}
		if err != nil {
			return nil, err
		}
		records++
		if lim.MaxRecords > 0 && records > lim.MaxRecords {
			return nil, fmt.Errorf("gdsii: %w: more than %d records", ErrLimit, lim.MaxRecords)
		}
		switch rec.typ {
		case RecHeader:
			sawHeader = true
		case RecLibName:
			lib.Name = rec.str()
		case RecUnits:
			vals := rec.real8s()
			if len(vals) >= 2 {
				lib.UserUnit, lib.MeterDBU = vals[0], vals[1]
			}
		case RecBgnStr:
			lib.Structs = append(lib.Structs, Structure{})
			cur = &lib.Structs[len(lib.Structs)-1]
		case RecStrName:
			if cur != nil {
				cur.Name = rec.str()
			}
		case RecEndStr:
			cur = nil
		case RecBoundary:
			shapes++
			if lim.MaxShapes > 0 && shapes > lim.MaxShapes {
				return nil, fmt.Errorf("gdsii: %w: more than %d shapes", ErrLimit, lim.MaxShapes)
			}
			curB = &Boundary{}
		case RecLayer:
			if curB != nil {
				v, err := rec.int16s()
				if err != nil || len(v) == 0 {
					return nil, fmt.Errorf("gdsii: bad LAYER record: %v", err)
				}
				curB.Layer = int(v[0])
			}
		case RecDatatype:
			if curB != nil {
				v, err := rec.int16s()
				if err != nil || len(v) == 0 {
					return nil, fmt.Errorf("gdsii: bad DATATYPE record: %v", err)
				}
				curB.Datatype = int(v[0])
			}
		case RecXY:
			if curB != nil {
				v, err := rec.int32s()
				if err != nil {
					return nil, err
				}
				if len(v)%2 != 0 {
					return nil, fmt.Errorf("gdsii: odd XY coordinate count")
				}
				for i := 0; i+1 < len(v); i += 2 {
					curB.Pts = append(curB.Pts, geom.Point{X: int64(v[i]), Y: int64(v[i+1])})
				}
				// Strip the closing vertex.
				if n := len(curB.Pts); n >= 2 && curB.Pts[0] == curB.Pts[n-1] {
					curB.Pts = curB.Pts[:n-1]
				}
			}
		case RecEndEl:
			if curB != nil && cur != nil {
				cur.Boundaries = append(cur.Boundaries, *curB)
			}
			curB = nil
		case RecEndLib:
			return lib, nil
		default:
			// Skip records we do not model.
		}
	}
}

// FromLayout converts a layout plus an optional fill solution into a
// single-structure library. Wires get DatatypeWire, fills DatatypeFill.
// GDSII layer numbers are 1-based.
func FromLayout(lay *layout.Layout, sol *layout.Solution) *Library {
	st := Structure{Name: "TOP"}
	for li, layer := range lay.Layers {
		for _, wRect := range layer.Wires {
			st.Boundaries = append(st.Boundaries, rectBoundary(li+1, DatatypeWire, wRect))
		}
	}
	if sol != nil {
		for _, f := range sol.Fills {
			st.Boundaries = append(st.Boundaries, rectBoundary(f.Layer+1, DatatypeFill, f.Rect))
		}
	}
	return &Library{Name: lay.Name, Structs: []Structure{st}}
}

// FromSolution converts just the fill solution into a library — the
// contest's output format, whose byte size the file-size score measures.
func FromSolution(name string, sol *layout.Solution) *Library {
	st := Structure{Name: "FILL"}
	for _, f := range sol.Fills {
		st.Boundaries = append(st.Boundaries, rectBoundary(f.Layer+1, DatatypeFill, f.Rect))
	}
	return &Library{Name: name, Structs: []Structure{st}}
}

func rectBoundary(layer, dt int, r geom.Rect) Boundary {
	return Boundary{
		Layer:    layer,
		Datatype: dt,
		Pts: []geom.Point{
			{X: r.XL, Y: r.YL}, {X: r.XH, Y: r.YL},
			{X: r.XH, Y: r.YH}, {X: r.XL, Y: r.YH},
		},
	}
}

// ExtractShapes converts the library's boundaries back into per-layer
// rectangle sets, separated by datatype. Non-rectangular boundaries are
// decomposed via polygon-to-rectangle conversion (Gourley–Green style).
// Layer numbers are returned 0-based (GDS layer − 1).
func (lib *Library) ExtractShapes() (wires, fills map[int][]geom.Rect, err error) {
	wires = map[int][]geom.Rect{}
	fills = map[int][]geom.Rect{}
	for _, st := range lib.Structs {
		for _, b := range st.Boundaries {
			poly := geom.Polygon{Pts: b.Pts}
			rects, err := poly.ToRects()
			if err != nil {
				return nil, nil, fmt.Errorf("gdsii: structure %q: %v", st.Name, err)
			}
			li := b.Layer - 1
			if b.Datatype == DatatypeFill {
				fills[li] = append(fills[li], rects...)
			} else {
				wires[li] = append(wires[li], rects...)
			}
		}
	}
	return wires, fills, nil
}

// EncodedSize returns the byte size the library would occupy on disk.
func (lib *Library) EncodedSize() (int64, error) {
	return layio.EncodedSize(lib.Write)
}
