package gdsii

import (
	"encoding/binary"
	"io"

	"dummyfill/internal/layio"
)

// FormatName is this package's layio registry key.
const FormatName = "gds"

func init() {
	layio.Register(layio.Format{
		Name:   FormatName,
		Detect: sniff,
		NewShapeReader: func(r io.Reader, lim layio.Limits) layio.ShapeReader {
			return NewShapeReader(r, lim)
		},
		NewShapeWriter: newShapeWriter,
		Limits:         DefaultLimits(),
		EmitsWires:     true,
	})
}

// sniff recognizes a GDSII stream by its first record: a HEADER
// (type 0x00) carrying an int16 payload, with a sane record length.
func sniff(prefix []byte) bool {
	if len(prefix) < 4 {
		return false
	}
	n := binary.BigEndian.Uint16(prefix[0:2])
	return prefix[2] == RecHeader && prefix[3] == DTInt16 && n >= 4 && n%2 == 0
}

// shapeWriter adapts StreamWriter to the layio.ShapeWriter interface:
// one library, one structure, rectangles streamed in. Layer numbers are
// translated from zero-based layout indices to the 1-based on-disk
// convention.
type shapeWriter struct{ sw *StreamWriter }

func newShapeWriter(w io.Writer, h layio.Header) (layio.ShapeWriter, error) {
	sw := NewStreamWriter(w)
	if err := sw.BeginLibrary(h.Name, 0, 0); err != nil {
		return nil, err
	}
	st := h.Struct
	if st == "" {
		st = "TOP"
	}
	if err := sw.BeginStructure(st); err != nil {
		return nil, err
	}
	return &shapeWriter{sw: sw}, nil
}

func (w *shapeWriter) Write(s layio.Shape) error {
	return w.sw.WriteRect(s.Layer+1, s.Datatype, s.Rect)
}

func (w *shapeWriter) Close() error {
	if err := w.sw.EndStructure(); err != nil {
		return err
	}
	return w.sw.Close()
}
