package gdsii

import (
	"bytes"
	"errors"
	"testing"
)

func TestReadLimitedMaxShapes(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLibrary().Write(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes() // two boundaries

	if _, err := ReadLimited(bytes.NewReader(valid), Limits{MaxShapes: 2}); err != nil {
		t.Fatalf("limit equal to shape count must pass: %v", err)
	}
	_, err := ReadLimited(bytes.NewReader(valid), Limits{MaxShapes: 1})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("MaxShapes=1 on 2-shape stream: got %v, want ErrLimit", err)
	}
}

func TestReadLimitedMaxRecords(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLibrary().Write(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	_, err := ReadLimited(bytes.NewReader(valid), Limits{MaxRecords: 3})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("tiny MaxRecords: got %v, want ErrLimit", err)
	}
	if _, err := ReadLimited(bytes.NewReader(valid), Limits{MaxRecords: 1 << 20}); err != nil {
		t.Fatalf("generous MaxRecords must pass: %v", err)
	}
}

func TestReadLimitedZeroIsUnlimited(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLibrary().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLimited(bytes.NewReader(buf.Bytes()), Limits{}); err != nil {
		t.Fatalf("Limits{} must be unlimited: %v", err)
	}
}

// TestReadLimitedStopsRecordBomb builds a stream that is one HEADER
// followed by an endless run of minimal records: the record cap must cut
// parsing off with ErrLimit instead of looping to the end.
func TestReadLimitedStopsRecordBomb(t *testing.T) {
	bomb := []byte{0x00, 0x06, 0x00, 0x02, 0x02, 0x58} // HEADER v600
	endel := []byte{0x00, 0x04, RecEndEl, 0x00}
	for i := 0; i < 10000; i++ {
		bomb = append(bomb, endel...)
	}
	_, err := ReadLimited(bytes.NewReader(bomb), Limits{MaxRecords: 100})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("record bomb: got %v, want ErrLimit", err)
	}
}
