package gdsii

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
)

func TestReal8KnownValues(t *testing.T) {
	// 1.0 in GDSII real: exponent 65 (16^1), mantissa 1/16 → 0x4110000000000000.
	if got := encodeReal8(1.0); got != 0x4110000000000000 {
		t.Fatalf("encode(1.0) = %#016x", got)
	}
	if got := decodeReal8(0x4110000000000000); got != 1.0 {
		t.Fatalf("decode = %v, want 1.0", got)
	}
	if got := encodeReal8(0); got != 0 {
		t.Fatalf("encode(0) = %#x", got)
	}
	if got := decodeReal8(0); got != 0 {
		t.Fatalf("decode(0) = %v", got)
	}
}

func TestReal8RoundTrip(t *testing.T) {
	vals := []float64{1e-9, 1e-3, 0.5, 2, 1024, -3.25, 6.25e-10, 123456789}
	for _, v := range vals {
		got := decodeReal8(encodeReal8(v))
		if math.Abs(got-v) > math.Abs(v)*1e-12 {
			t.Errorf("roundtrip(%v) = %v", v, got)
		}
	}
}

func TestQuickReal8RoundTrip(t *testing.T) {
	f := func(mant int32, scale uint8) bool {
		v := float64(mant) * math.Pow(10, float64(int(scale%20)-10))
		got := decodeReal8(encodeReal8(v))
		if v == 0 {
			return got == 0
		}
		return math.Abs(got-v) <= math.Abs(v)*1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func sampleLibrary() *Library {
	return &Library{
		Name: "LIB",
		Structs: []Structure{{
			Name: "TOP",
			Boundaries: []Boundary{
				{Layer: 1, Datatype: 0, Pts: []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 5}, {X: 0, Y: 5}}},
				{Layer: 2, Datatype: 1, Pts: []geom.Point{{X: 3, Y: 3}, {X: 8, Y: 3}, {X: 8, Y: 9}, {X: 3, Y: 9}}},
			},
		}},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	lib := sampleLibrary()
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "LIB" {
		t.Fatalf("lib name %q", got.Name)
	}
	if math.Abs(got.UserUnit-1e-3) > 1e-18 || math.Abs(got.MeterDBU-1e-9) > 1e-24 {
		t.Fatalf("units %v %v", got.UserUnit, got.MeterDBU)
	}
	if len(got.Structs) != 1 || got.Structs[0].Name != "TOP" {
		t.Fatalf("structs %+v", got.Structs)
	}
	bs := got.Structs[0].Boundaries
	if len(bs) != 2 {
		t.Fatalf("boundaries %d", len(bs))
	}
	if bs[0].Layer != 1 || bs[1].Layer != 2 || bs[1].Datatype != 1 {
		t.Fatalf("boundary metadata wrong: %+v", bs)
	}
	if len(bs[0].Pts) != 4 {
		t.Fatalf("closing point not stripped: %v", bs[0].Pts)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream must error")
	}
	// Stream without ENDLIB.
	var buf bytes.Buffer
	if err := writeInt16s(&buf, RecHeader, 600); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("missing ENDLIB must error")
	}
	// Truncated record.
	if _, err := Read(bytes.NewReader([]byte{0x00, 0x08, 0x00, 0x02, 0x01})); err == nil {
		t.Fatal("truncated record must error")
	}
}

func TestBoundaryTooFewPoints(t *testing.T) {
	lib := &Library{Name: "X", Structs: []Structure{{
		Name:       "S",
		Boundaries: []Boundary{{Layer: 1, Pts: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}}},
	}}}
	if err := lib.Write(&bytes.Buffer{}); err == nil {
		t.Fatal("degenerate boundary must error")
	}
}

func fillTestLayout() *layout.Layout {
	return &layout.Layout{
		Name:   "fl",
		Die:    geom.R(0, 0, 1000, 1000),
		Window: 500,
		Rules:  layout.Rules{MinWidth: 2, MinSpace: 2, MinArea: 4},
		Layers: []*layout.Layer{
			{Wires: []geom.Rect{geom.R(0, 0, 100, 50), geom.R(200, 200, 300, 220)}},
			{Wires: []geom.Rect{geom.R(500, 500, 800, 520)}},
		},
	}
}

func TestFromLayoutAndExtract(t *testing.T) {
	lay := fillTestLayout()
	sol := &layout.Solution{Fills: []layout.Fill{
		{Layer: 0, Rect: geom.R(400, 400, 450, 450)},
		{Layer: 1, Rect: geom.R(100, 100, 150, 160)},
	}}
	lib := FromLayout(lay, sol)
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wires, fills, err := back.ExtractShapes()
	if err != nil {
		t.Fatal(err)
	}
	if len(wires[0]) != 2 || len(wires[1]) != 1 {
		t.Fatalf("wires extracted wrong: %v", wires)
	}
	if len(fills[0]) != 1 || len(fills[1]) != 1 {
		t.Fatalf("fills extracted wrong: %v", fills)
	}
	if fills[0][0] != geom.R(400, 400, 450, 450) {
		t.Fatalf("fill rect mismatch: %v", fills[0][0])
	}
}

func TestEncodedSizeMatchesWrite(t *testing.T) {
	lib := sampleLibrary()
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := lib.EncodedSize()
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("EncodedSize = %d, written %d", n, buf.Len())
	}
}

func TestFileSizeGrowsWithFills(t *testing.T) {
	lay := fillTestLayout()
	few := &layout.Solution{Fills: []layout.Fill{{Layer: 0, Rect: geom.R(0, 100, 10, 110)}}}
	rng := rand.New(rand.NewSource(1))
	var many layout.Solution
	for i := 0; i < 500; i++ {
		x := rng.Int63n(900)
		y := rng.Int63n(900)
		many.Fills = append(many.Fills, layout.Fill{Layer: 0, Rect: geom.R(x, y, x+5, y+5)})
	}
	sFew, err := FromLayout(lay, few).EncodedSize()
	if err != nil {
		t.Fatal(err)
	}
	sMany, err := FromLayout(lay, &many).EncodedSize()
	if err != nil {
		t.Fatal(err)
	}
	if sMany <= sFew {
		t.Fatalf("more fills must produce a bigger file: %d vs %d", sMany, sFew)
	}
	// Each rectangle boundary costs a fixed 64 bytes (BOUNDARY 4 + LAYER 6
	// + DATATYPE 6 + XY 4+5·8 closed ring + ENDEL 4): check the delta.
	perFill := (sMany - sFew) / 499
	if perFill != 64 {
		t.Fatalf("per-fill encoding cost = %d bytes, want 64", perFill)
	}
}

func TestNonRectangularBoundaryExtraction(t *testing.T) {
	lib := &Library{Name: "L", Structs: []Structure{{
		Name: "S",
		Boundaries: []Boundary{{
			Layer: 1,
			Pts: []geom.Point{
				{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 5}, {X: 5, Y: 5}, {X: 5, Y: 10}, {X: 0, Y: 10},
			},
		}},
	}}}
	wires, _, err := lib.ExtractShapes()
	if err != nil {
		t.Fatal(err)
	}
	var area int64
	for _, r := range wires[0] {
		area += r.Area()
	}
	if area != 75 {
		t.Fatalf("L-shape decomposed area = %d, want 75", area)
	}
}
