package gdsii

import "errors"

// ErrLimit is wrapped by ReadLimited errors when an input stream exceeds
// a configured resource limit; detect it with errors.Is. It guards the
// ingest path against hostile or corrupted streams whose record counts
// would otherwise drive unbounded allocation or parse time.
var ErrLimit = errors.New("resource limit exceeded")

// Limits bounds the resources a single parse may consume. A zero field
// disables that limit, so the zero value Limits{} is fully unlimited.
type Limits struct {
	// MaxRecords caps the total number of records in the stream. The
	// format already bounds each record's payload at 65531 bytes, so this
	// also caps total parse work.
	MaxRecords int64
	// MaxShapes caps the total number of BOUNDARY elements.
	MaxShapes int64
}

// DefaultLimits returns the caps Read enforces: far beyond any realistic
// fill deck, but finite, so a length-bomb stream fails cleanly instead of
// exhausting memory.
func DefaultLimits() Limits {
	return Limits{MaxRecords: 256 << 20, MaxShapes: 64 << 20}
}
