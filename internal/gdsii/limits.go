package gdsii

import "dummyfill/internal/layio"

// ErrLimit is wrapped by ReadLimited errors when an input stream exceeds
// a configured resource limit; detect it with errors.Is. It is the
// shared layio sentinel, so errors.Is works across formats.
var ErrLimit = layio.ErrLimit

// Limits bounds the resources a single parse may consume — the shared
// layio ingest-cap type. A zero field disables that limit, so the zero
// value Limits{} is fully unlimited. The format already bounds each
// record's payload at 65531 bytes, so MaxRecords also caps total parse
// work; MaxShapes caps the number of BOUNDARY elements.
type Limits = layio.Limits

// DefaultLimits returns the caps Read enforces: far beyond any realistic
// fill deck, but finite, so a length-bomb stream fails cleanly instead of
// exhausting memory.
func DefaultLimits() Limits { return layio.DefaultLimits() }
