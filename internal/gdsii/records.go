// Package gdsii reads and writes the GDSII stream format, the IO format of
// the ICCAD 2014 contest (the file-size score component is measured on the
// solution GDSII bytes). Only the subset needed for fill flows is
// implemented: libraries, structures and BOUNDARY elements.
package gdsii

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Record types (GDSII stream spec).
const (
	RecHeader   = 0x00
	RecBgnLib   = 0x01
	RecLibName  = 0x02
	RecUnits    = 0x03
	RecEndLib   = 0x04
	RecBgnStr   = 0x05
	RecStrName  = 0x06
	RecEndStr   = 0x07
	RecBoundary = 0x08
	RecPath     = 0x09
	RecSRef     = 0x0A
	RecLayer    = 0x0D
	RecDatatype = 0x0E
	RecWidth    = 0x0F
	RecXY       = 0x10
	RecEndEl    = 0x11
	RecSName    = 0x12
)

// Data types within records.
const (
	DTNone   = 0x00
	DTBitArr = 0x01
	DTInt16  = 0x02
	DTInt32  = 0x03
	DTReal4  = 0x04
	DTReal8  = 0x05
	DTASCII  = 0x06
)

// record is one GDSII stream record.
type record struct {
	typ  byte
	dt   byte
	data []byte
}

// maxRecordPayload is the largest payload a single record can carry
// (record length is a uint16 that includes the 4 header bytes).
const maxRecordPayload = 0xFFFF - 4

// writeRecord emits one record.
func writeRecord(w io.Writer, typ, dt byte, data []byte) error {
	if len(data) > maxRecordPayload {
		return fmt.Errorf("gdsii: record 0x%02x payload %d exceeds %d", typ, len(data), maxRecordPayload)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], uint16(len(data)+4))
	hdr[2] = typ
	hdr[3] = dt
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(data) > 0 {
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	return nil
}

func writeInt16s(w io.Writer, typ byte, vals ...int16) error {
	data := make([]byte, 2*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint16(data[2*i:], uint16(v))
	}
	return writeRecord(w, typ, DTInt16, data)
}

func writeInt32s(w io.Writer, typ byte, vals ...int32) error {
	data := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint32(data[4*i:], uint32(v))
	}
	return writeRecord(w, typ, DTInt32, data)
}

func writeString(w io.Writer, typ byte, s string) error {
	data := []byte(s)
	if len(data)%2 == 1 {
		data = append(data, 0) // GDSII strings are padded to even length
	}
	return writeRecord(w, typ, DTASCII, data)
}

// readRecord reads the next record from r. Returns io.EOF cleanly at end.
func readRecord(r io.Reader) (*record, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("gdsii: truncated record header")
		}
		return nil, err
	}
	n := int(binary.BigEndian.Uint16(hdr[0:2]))
	if n < 4 {
		return nil, fmt.Errorf("gdsii: record length %d < 4", n)
	}
	rec := &record{typ: hdr[2], dt: hdr[3]}
	if n > 4 {
		rec.data = make([]byte, n-4)
		if _, err := io.ReadFull(r, rec.data); err != nil {
			return nil, fmt.Errorf("gdsii: truncated record 0x%02x: %v", rec.typ, err)
		}
	}
	return rec, nil
}

func (rec *record) int16s() ([]int16, error) {
	if len(rec.data)%2 != 0 {
		return nil, fmt.Errorf("gdsii: record 0x%02x has odd int16 payload", rec.typ)
	}
	out := make([]int16, len(rec.data)/2)
	for i := range out {
		out[i] = int16(binary.BigEndian.Uint16(rec.data[2*i:]))
	}
	return out, nil
}

func (rec *record) int32s() ([]int32, error) {
	if len(rec.data)%4 != 0 {
		return nil, fmt.Errorf("gdsii: record 0x%02x has non-multiple-of-4 int32 payload", rec.typ)
	}
	out := make([]int32, len(rec.data)/4)
	for i := range out {
		out[i] = int32(binary.BigEndian.Uint32(rec.data[4*i:]))
	}
	return out, nil
}

func (rec *record) str() string {
	d := rec.data
	for len(d) > 0 && d[len(d)-1] == 0 {
		d = d[:len(d)-1]
	}
	return string(d)
}
