package gdsii

import (
	"bytes"
	"math/rand"
	"testing"

	"dummyfill/internal/geom"
)

// TestReadNeverPanicsOnMutatedStreams feeds randomly corrupted versions of
// a valid stream to the reader: every outcome must be a clean error or a
// parsed library, never a panic or hang.
func TestReadNeverPanicsOnMutatedStreams(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLibrary().Write(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(77))
	for it := 0; it < 500; it++ {
		mut := append([]byte(nil), valid...)
		// 1-4 random byte mutations.
		for k := 0; k < 1+rng.Intn(4); k++ {
			mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("it %d: reader panicked: %v", it, r)
				}
			}()
			lib, err := Read(bytes.NewReader(mut))
			if err == nil && lib == nil {
				t.Fatalf("it %d: nil library without error", it)
			}
		}()
	}
}

func TestReadTruncatedStreams(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLibrary().Write(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	// Every strict prefix must fail cleanly (never panic, never succeed
	// except the full stream).
	for n := 0; n < len(valid); n++ {
		if _, err := Read(bytes.NewReader(valid[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes parsed without error", n, len(valid))
		}
	}
	if _, err := Read(bytes.NewReader(valid)); err != nil {
		t.Fatalf("full stream failed: %v", err)
	}
}

func TestHugeCoordinatesSurviveRoundTrip(t *testing.T) {
	// Near the int32 extremes of the XY record, kept within the library's
	// area budget (die extents must stay below ~2^31 DBU so rect areas and
	// their sums fit in int64).
	r := geom.R(-1000000000, -1000000000, 1000000000, 1000000000)
	lib := &Library{Name: "big", Structs: []Structure{{
		Name:       "S",
		Boundaries: []Boundary{rectBoundary(1, 0, r)},
	}}}
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wires, _, err := back.ExtractShapes()
	if err != nil {
		t.Fatal(err)
	}
	if len(wires[0]) != 1 || wires[0][0] != r {
		t.Fatalf("extreme rect corrupted: %v", wires[0])
	}
}

func TestManyStructuresRoundTrip(t *testing.T) {
	lib := &Library{Name: "multi"}
	for i := 0; i < 20; i++ {
		st := Structure{Name: string(rune('A' + i))}
		for j := 0; j < 5; j++ {
			st.Boundaries = append(st.Boundaries,
				rectBoundary(i%4+1, j%2, geom.R(int64(j*10), int64(i*10), int64(j*10+5), int64(i*10+5))))
		}
		lib.Structs = append(lib.Structs, st)
	}
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Structs) != 20 {
		t.Fatalf("structures lost: %d", len(back.Structs))
	}
	for i, st := range back.Structs {
		if len(st.Boundaries) != 5 {
			t.Fatalf("structure %d boundaries = %d", i, len(st.Boundaries))
		}
	}
}

func TestOddLengthStringPadding(t *testing.T) {
	lib := &Library{Name: "ODD"} // 3 chars -> padded to 4 on disk
	lib.Structs = []Structure{{Name: "X", Boundaries: []Boundary{
		rectBoundary(1, 0, geom.R(0, 0, 1, 1)),
	}}}
	var buf bytes.Buffer
	if err := lib.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len()%2 != 0 {
		t.Fatal("GDSII streams must be even-length")
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "ODD" || back.Structs[0].Name != "X" {
		t.Fatalf("padded names corrupted: %q %q", back.Name, back.Structs[0].Name)
	}
}
