package gdsii

import (
	"encoding/binary"
	"math"
)

// GDSII 8-byte reals are excess-64 base-16 floating point: bit 0 is the
// sign, bits 1-7 the exponent (power of 16, biased by 64), bits 8-63 a
// 56-bit unsigned mantissa interpreted as a fraction in [1/16, 1).

// encodeReal8 converts a float64 to the GDSII 8-byte real representation.
func encodeReal8(f float64) uint64 {
	if f == 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	var sign uint64
	if f < 0 {
		sign = 1 << 63
		f = -f
	}
	// Normalize: find e such that f = mant * 16^e with mant in [1/16, 1).
	exp := 0
	for f >= 1 {
		f /= 16
		exp++
	}
	for f < 1.0/16 {
		f *= 16
		exp--
	}
	mant := uint64(f * (1 << 56))
	if mant >= 1<<56 { // rounding overflow
		mant >>= 4
		exp++
	}
	e := uint64(exp+64) & 0x7F
	return sign | e<<56 | mant
}

// decodeReal8 converts a GDSII 8-byte real to float64.
func decodeReal8(bits uint64) float64 {
	if bits == 0 {
		return 0
	}
	sign := 1.0
	if bits&(1<<63) != 0 {
		sign = -1
	}
	exp := int((bits>>56)&0x7F) - 64
	mant := float64(bits&((1<<56)-1)) / float64(uint64(1)<<56)
	return sign * mant * math.Pow(16, float64(exp))
}

func writeReal8s(w interface{ Write([]byte) (int, error) }, typ byte, vals ...float64) error {
	data := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(data[8*i:], encodeReal8(v))
	}
	return writeRecord(w, typ, DTReal8, data)
}

func (rec *record) real8s() []float64 {
	out := make([]float64, len(rec.data)/8)
	for i := range out {
		out[i] = decodeReal8(binary.BigEndian.Uint64(rec.data[8*i:]))
	}
	return out
}
