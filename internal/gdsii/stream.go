package gdsii

import (
	"bufio"
	"fmt"
	"io"

	"dummyfill/internal/geom"
)

// StreamWriter emits a GDSII stream incrementally: library header, then
// any number of structures, each receiving boundaries one at a time, then
// the library trailer. It is the bounded-memory counterpart of
// Library.Write — the whole shape set never has to exist in memory — and
// Library.Write is implemented on top of it, so both paths produce
// byte-identical output for the same shape sequence.
//
// Call order: BeginLibrary, then for each structure BeginStructure /
// WriteBoundary·WriteRect… / EndStructure, then Close. A StreamWriter is
// not safe for concurrent use.
type StreamWriter struct {
	bw       *bufio.Writer
	zero12   [12]int16 // deterministic zero timestamps
	began    bool
	inStruct bool
	closed   bool
	xy       []int32 // scratch for boundary coordinate records
}

// NewStreamWriter wraps w; output is buffered and flushed by Close.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{bw: bufio.NewWriter(w)}
}

// BeginLibrary writes the library header. Zero uu/mdbu select the
// defaults (1e-3 user units, 1e-9 meters per database unit).
func (sw *StreamWriter) BeginLibrary(name string, uu, mdbu float64) error {
	if sw.began {
		return fmt.Errorf("gdsii: BeginLibrary called twice")
	}
	sw.began = true
	if err := writeInt16s(sw.bw, RecHeader, 600); err != nil {
		return err
	}
	if err := writeInt16s(sw.bw, RecBgnLib, sw.zero12[:]...); err != nil {
		return err
	}
	if err := writeString(sw.bw, RecLibName, name); err != nil {
		return err
	}
	if uu == 0 {
		uu = 1e-3
	}
	if mdbu == 0 {
		mdbu = 1e-9
	}
	return writeReal8s(sw.bw, RecUnits, uu, mdbu)
}

// BeginStructure opens a structure (cell).
func (sw *StreamWriter) BeginStructure(name string) error {
	if !sw.began || sw.closed {
		return fmt.Errorf("gdsii: BeginStructure outside an open library")
	}
	if sw.inStruct {
		return fmt.Errorf("gdsii: nested BeginStructure")
	}
	sw.inStruct = true
	if err := writeInt16s(sw.bw, RecBgnStr, sw.zero12[:]...); err != nil {
		return err
	}
	return writeString(sw.bw, RecStrName, name)
}

// layerRecords validates layer/datatype against the 2-byte GDSII fields
// and writes their records.
func (sw *StreamWriter) layerRecords(layer, datatype int) error {
	l16, ok := geom.I16(layer)
	if !ok {
		return fmt.Errorf("gdsii: layer %d overflows the 2-byte LAYER field", layer)
	}
	d16, ok := geom.I16(datatype)
	if !ok {
		return fmt.Errorf("gdsii: datatype %d overflows the 2-byte DATATYPE field", datatype)
	}
	if err := writeInt16s(sw.bw, RecLayer, l16); err != nil {
		return err
	}
	return writeInt16s(sw.bw, RecDatatype, d16)
}

// WriteBoundary emits one polygon element into the open structure.
func (sw *StreamWriter) WriteBoundary(b Boundary) error {
	if !sw.inStruct {
		return fmt.Errorf("gdsii: WriteBoundary outside a structure")
	}
	if len(b.Pts) < 3 {
		return fmt.Errorf("gdsii: boundary needs >= 3 points, got %d", len(b.Pts))
	}
	if err := writeRecord(sw.bw, RecBoundary, DTNone, nil); err != nil {
		return err
	}
	if err := sw.layerRecords(b.Layer, b.Datatype); err != nil {
		return err
	}
	xy := sw.xy[:0]
	for _, p := range b.Pts {
		x, okx := geom.I32(p.X)
		y, oky := geom.I32(p.Y)
		if !okx || !oky {
			return fmt.Errorf("gdsii: point %v overflows the 4-byte XY field", p)
		}
		xy = append(xy, x, y)
	}
	// Close the ring.
	xy = append(xy, xy[0], xy[1])
	sw.xy = xy
	if err := writeInt32s(sw.bw, RecXY, xy...); err != nil {
		return err
	}
	return writeRecord(sw.bw, RecEndEl, DTNone, nil)
}

// WriteRect emits one rectangle as a 4-point boundary — identical bytes
// to WriteBoundary over rectBoundary, without building the Boundary.
func (sw *StreamWriter) WriteRect(layer, datatype int, r geom.Rect) error {
	if !sw.inStruct {
		return fmt.Errorf("gdsii: WriteRect outside a structure")
	}
	if err := writeRecord(sw.bw, RecBoundary, DTNone, nil); err != nil {
		return err
	}
	if err := sw.layerRecords(layer, datatype); err != nil {
		return err
	}
	xl, okXL := geom.I32(r.XL)
	yl, okYL := geom.I32(r.YL)
	xh, okXH := geom.I32(r.XH)
	yh, okYH := geom.I32(r.YH)
	if !okXL || !okYL || !okXH || !okYH {
		return fmt.Errorf("gdsii: rect %v overflows the 4-byte XY field", r)
	}
	xy := append(sw.xy[:0],
		xl, yl, xh, yl,
		xh, yh, xl, yh,
		xl, yl)
	sw.xy = xy
	if err := writeInt32s(sw.bw, RecXY, xy...); err != nil {
		return err
	}
	return writeRecord(sw.bw, RecEndEl, DTNone, nil)
}

// EndStructure closes the open structure.
func (sw *StreamWriter) EndStructure() error {
	if !sw.inStruct {
		return fmt.Errorf("gdsii: EndStructure without BeginStructure")
	}
	sw.inStruct = false
	return writeRecord(sw.bw, RecEndStr, DTNone, nil)
}

// Close writes the library trailer and flushes. The StreamWriter is
// unusable afterwards.
func (sw *StreamWriter) Close() error {
	if sw.closed {
		return nil
	}
	if sw.inStruct {
		return fmt.Errorf("gdsii: Close with an open structure")
	}
	sw.closed = true
	if err := writeRecord(sw.bw, RecEndLib, DTNone, nil); err != nil {
		return err
	}
	return sw.bw.Flush()
}
