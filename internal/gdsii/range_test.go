package gdsii

import (
	"io"
	"strings"
	"testing"

	"dummyfill/internal/geom"
)

// TestWriterRejectsOverflow: coordinates beyond the 4-byte XY field and
// layers beyond the 2-byte LAYER field must fail loudly, not truncate
// silently into a corrupted (but well-formed) stream.
func TestWriterRejectsOverflow(t *testing.T) {
	open := func(t *testing.T) *StreamWriter {
		t.Helper()
		sw := NewStreamWriter(io.Discard)
		if err := sw.BeginLibrary("LIB", 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := sw.BeginStructure("TOP"); err != nil {
			t.Fatal(err)
		}
		return sw
	}

	cases := []struct {
		name    string
		write   func(sw *StreamWriter) error
		wantSub string
	}{
		{
			"rect coordinate overflow",
			func(sw *StreamWriter) error {
				return sw.WriteRect(0, 0, geom.Rect{XL: 0, YL: 0, XH: 1 << 32, YH: 10})
			},
			"XY field",
		},
		{
			"boundary point overflow",
			func(sw *StreamWriter) error {
				return sw.WriteBoundary(Boundary{Layer: 0, Pts: []geom.Point{
					{X: 0, Y: 0}, {X: 1 << 33, Y: 0}, {X: 0, Y: 5},
				}})
			},
			"XY field",
		},
		{
			"layer overflow",
			func(sw *StreamWriter) error {
				return sw.WriteRect(1<<16, 0, geom.Rect{XL: 0, YL: 0, XH: 1, YH: 1})
			},
			"LAYER field",
		},
		{
			"datatype overflow",
			func(sw *StreamWriter) error {
				return sw.WriteRect(0, 1<<20, geom.Rect{XL: 0, YL: 0, XH: 1, YH: 1})
			},
			"DATATYPE field",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sw := open(t)
			err := c.write(sw)
			if err == nil {
				t.Fatalf("%s: overflow not rejected", c.name)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("%s: error %q does not mention %q", c.name, err, c.wantSub)
			}
		})
	}

	// In-range extremes still write fine.
	sw := open(t)
	if err := sw.WriteRect(1<<15-1, 0, geom.Rect{XL: -1 << 31, YL: -1 << 31, XH: 1<<31 - 1, YH: 1<<31 - 1}); err != nil {
		t.Fatalf("in-range extreme rect rejected: %v", err)
	}
	if err := sw.EndStructure(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
}
