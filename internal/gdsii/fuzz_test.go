package gdsii

import (
	"bytes"
	"testing"
)

// FuzzRead exercises the GDSII reader with arbitrary byte streams; any
// input must produce a clean error or a parsed library, never a panic.
// Run with `go test -fuzz FuzzRead ./internal/gdsii` for deep exploration;
// plain `go test` replays the seed corpus.
func FuzzRead(f *testing.F) {
	var valid bytes.Buffer
	if err := sampleLibrary().Write(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x06, 0x00, 0x02, 0x02, 0x58}) // lone HEADER
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})             // absurd record length
	f.Add(valid.Bytes()[:10])

	f.Fuzz(func(t *testing.T, data []byte) {
		lib, err := Read(bytes.NewReader(data))
		if err == nil {
			if lib == nil {
				t.Fatal("nil library without error")
			}
			// A successfully parsed library must re-encode.
			if _, err := lib.EncodedSize(); err != nil {
				// Re-encoding can legitimately fail (e.g. boundaries with
				// fewer than 3 points survive parsing); it must not panic.
				_ = err
			}
		}
	})
}
