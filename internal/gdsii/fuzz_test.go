package gdsii

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzRead exercises the GDSII reader with arbitrary byte streams; any
// input must produce a clean error or a parsed library, never a panic.
// Run with `go test -fuzz FuzzRead ./internal/gdsii` for deep exploration;
// plain `go test` replays the seed corpus.
func FuzzRead(f *testing.F) {
	var valid bytes.Buffer
	if err := sampleLibrary().Write(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x06, 0x00, 0x02, 0x02, 0x58}) // lone HEADER
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})             // absurd record length
	f.Add(valid.Bytes()[:10])
	// Record bomb: header followed by a long run of minimal records,
	// exercising the MaxRecords cap.
	bomb := []byte{0x00, 0x06, 0x00, 0x02, 0x02, 0x58}
	bomb = append(bomb, bytes.Repeat([]byte{0x00, 0x04, RecEndEl, 0x00}, 512)...)
	f.Add(bomb)
	// Shape bomb: header followed by a run of bare BOUNDARY records,
	// exercising the MaxShapes cap.
	shapes := []byte{0x00, 0x06, 0x00, 0x02, 0x02, 0x58}
	shapes = append(shapes, bytes.Repeat([]byte{0x00, 0x04, RecBoundary, 0x00}, 512)...)
	f.Add(shapes)
	// Record claiming the maximum payload but truncated after the header.
	f.Add([]byte{0xFF, 0xFF, RecXY, 0x03, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		lib, err := Read(bytes.NewReader(data))
		if err == nil {
			if lib == nil {
				t.Fatal("nil library without error")
			}
			// A successfully parsed library must re-encode.
			if _, err := lib.EncodedSize(); err != nil {
				// Re-encoding can legitimately fail (e.g. boundaries with
				// fewer than 3 points survive parsing); it must not panic.
				_ = err
			}
		}
		// Tight limits must fail with a clean error (wrapping ErrLimit when
		// it is the limit that trips), never a panic.
		if _, err := ReadLimited(bytes.NewReader(data), Limits{MaxRecords: 16, MaxShapes: 2}); err != nil {
			_ = errors.Is(err, ErrLimit)
		}
		// The streaming reader must drain any input without panicking and
		// with sticky errors (a failed Next keeps failing).
		sr := NewShapeReader(bytes.NewReader(data), Limits{MaxRecords: 4096, MaxShapes: 256})
		for {
			if _, err := sr.Next(); err != nil {
				if _, err2 := sr.Next(); err2 != err {
					t.Fatalf("non-sticky ShapeReader error: %v then %v", err, err2)
				}
				break
			}
		}
	})
}
