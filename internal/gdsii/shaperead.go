package gdsii

import (
	"bufio"
	"fmt"
	"io"

	"dummyfill/internal/geom"
	"dummyfill/internal/layio"
)

// ShapeReader streams (layer, datatype, rectangle) shapes out of a
// GDSII stream without ever materializing a Library: each BOUNDARY is
// decomposed into rectangles as it is parsed and handed out one at a
// time, so ingesting an arbitrarily large design holds at most one
// polygon's worth of state. Layer numbers are translated from the
// on-disk 1-based convention to zero-based layout indices, mirroring
// Library.ExtractShapes. Unsupported elements (paths, references,
// texts) are skipped.
type ShapeReader struct {
	br  *bufio.Reader
	lim Limits
	hdr layio.Header

	// Rectangles of the boundary being drained.
	pend    []geom.Rect
	pendIdx int
	pendLay int
	pendDT  int

	// Element being accumulated.
	inElem bool
	layer  int
	dt     int
	pts    []geom.Point

	inStruct   bool
	structName string
	sawHeader  bool
	done       bool
	err        error

	records, shapes int64
}

// NewShapeReader opens a streaming reader over r under lim.
func NewShapeReader(r io.Reader, lim Limits) *ShapeReader {
	return &ShapeReader{br: bufio.NewReader(r), lim: lim}
}

// Header returns the stream metadata gathered so far (the library name,
// once the LIBNAME record has been parsed).
func (sr *ShapeReader) Header() layio.Header { return sr.hdr }

// Next returns the next shape, io.EOF after ENDLIB, or a terminal parse
// error. Errors are sticky.
func (sr *ShapeReader) Next() (layio.Shape, error) {
	if sr.err != nil {
		return layio.Shape{}, sr.err
	}
	for {
		if sr.pendIdx < len(sr.pend) {
			r := sr.pend[sr.pendIdx]
			sr.pendIdx++
			return layio.Shape{Layer: sr.pendLay - 1, Datatype: sr.pendDT, Rect: r}, nil
		}
		if sr.done {
			return layio.Shape{}, io.EOF
		}
		if err := sr.advance(); err != nil {
			if err != io.EOF {
				sr.err = err
			}
			return layio.Shape{}, err
		}
	}
}

// advance consumes records until a boundary completes (filling pend) or
// the stream ends (setting done).
func (sr *ShapeReader) advance() error {
	for {
		rec, err := readRecord(sr.br)
		if err == io.EOF {
			if sr.sawHeader {
				return fmt.Errorf("gdsii: missing ENDLIB")
			}
			return fmt.Errorf("gdsii: empty stream")
		}
		if err != nil {
			return err
		}
		sr.records++
		if sr.lim.MaxRecords > 0 && sr.records > sr.lim.MaxRecords {
			return fmt.Errorf("gdsii: %w: more than %d records", ErrLimit, sr.lim.MaxRecords)
		}
		switch rec.typ {
		case RecHeader:
			sr.sawHeader = true
		case RecLibName:
			sr.hdr.Name = rec.str()
		case RecBgnStr:
			sr.inStruct = true
			sr.structName = ""
		case RecStrName:
			if sr.inStruct {
				sr.structName = rec.str()
			}
		case RecEndStr:
			sr.inStruct = false
		case RecBoundary:
			sr.shapes++
			if sr.lim.MaxShapes > 0 && sr.shapes > sr.lim.MaxShapes {
				return fmt.Errorf("gdsii: %w: more than %d shapes", ErrLimit, sr.lim.MaxShapes)
			}
			sr.inElem = true
			sr.layer, sr.dt = 0, 0
			sr.pts = sr.pts[:0]
		case RecLayer:
			if sr.inElem {
				v, err := rec.int16s()
				if err != nil || len(v) == 0 {
					return fmt.Errorf("gdsii: bad LAYER record: %v", err)
				}
				sr.layer = int(v[0])
			}
		case RecDatatype:
			if sr.inElem {
				v, err := rec.int16s()
				if err != nil || len(v) == 0 {
					return fmt.Errorf("gdsii: bad DATATYPE record: %v", err)
				}
				sr.dt = int(v[0])
			}
		case RecXY:
			if sr.inElem {
				v, err := rec.int32s()
				if err != nil {
					return err
				}
				if len(v)%2 != 0 {
					return fmt.Errorf("gdsii: odd XY coordinate count")
				}
				for i := 0; i+1 < len(v); i += 2 {
					sr.pts = append(sr.pts, geom.Point{X: int64(v[i]), Y: int64(v[i+1])})
				}
				if n := len(sr.pts); n >= 2 && sr.pts[0] == sr.pts[n-1] {
					sr.pts = sr.pts[:n-1]
				}
			}
		case RecEndEl:
			if sr.inElem && sr.inStruct {
				rects, err := (geom.Polygon{Pts: sr.pts}).ToRects()
				if err != nil {
					return fmt.Errorf("gdsii: structure %q: %v", sr.structName, err)
				}
				sr.inElem = false
				if len(rects) > 0 {
					sr.pend, sr.pendIdx = rects, 0
					sr.pendLay, sr.pendDT = sr.layer, sr.dt
					return nil
				}
			}
			sr.inElem = false
		case RecEndLib:
			sr.done = true
			return nil
		default:
			// Skip records we do not model.
		}
	}
}

// LibraryReader adapts an already-parsed Library to the streaming shape
// interface, so in-memory and on-the-wire ingest share one construction
// path. Boundaries are decomposed exactly like ExtractShapes (layer
// numbers returned zero-based).
func LibraryReader(lib *Library) layio.ShapeReader {
	return &libReader{lib: lib}
}

type libReader struct {
	lib     *Library
	si, bi  int
	pend    []geom.Rect
	pendIdx int
	pendLay int
	pendDT  int
}

func (lr *libReader) Header() layio.Header { return layio.Header{Name: lr.lib.Name} }

func (lr *libReader) Next() (layio.Shape, error) {
	for {
		if lr.pendIdx < len(lr.pend) {
			r := lr.pend[lr.pendIdx]
			lr.pendIdx++
			return layio.Shape{Layer: lr.pendLay - 1, Datatype: lr.pendDT, Rect: r}, nil
		}
		if lr.si >= len(lr.lib.Structs) {
			return layio.Shape{}, io.EOF
		}
		st := &lr.lib.Structs[lr.si]
		if lr.bi >= len(st.Boundaries) {
			lr.si++
			lr.bi = 0
			continue
		}
		b := &st.Boundaries[lr.bi]
		lr.bi++
		rects, err := (geom.Polygon{Pts: b.Pts}).ToRects()
		if err != nil {
			return layio.Shape{}, fmt.Errorf("gdsii: structure %q: %v", st.Name, err)
		}
		lr.pend, lr.pendIdx = rects, 0
		lr.pendLay, lr.pendDT = b.Layer, b.Datatype
	}
}
