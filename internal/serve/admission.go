package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errQueueFull is returned by acquire when the wait queue is at capacity:
// the job is shed immediately (429) instead of queueing unboundedly.
var errQueueFull = errors.New("serve: job queue full")

// admission is the bounded job queue: at most `slots` jobs run
// concurrently and at most `maxQueue` more may wait for a slot. Beyond
// that, acquire fails fast — admission control is load shedding, not
// buffering. Both depths are observable for the /metrics gauges, and an
// EWMA of job duration feeds the Retry-After estimate.
type admission struct {
	running  chan struct{}
	maxQueue int64
	queued   atomic.Int64
	inFlight atomic.Int64 // jobs holding a slot
	// ewmaJobMicros tracks a decaying mean job duration (µs) for
	// Retry-After estimation; 0 until the first job completes.
	ewmaJobMicros atomic.Int64
}

func newAdmission(slots, maxQueue int) *admission {
	return &admission{
		running:  make(chan struct{}, slots),
		maxQueue: int64(maxQueue),
	}
}

// acquire claims a run slot, waiting in the bounded queue if all slots
// are busy. It fails with errQueueFull when the queue is at capacity and
// with ctx.Err() when the caller's context ends first. On success the
// caller must release() exactly once.
func (a *admission) acquire(ctx context.Context) (wait time.Duration, err error) {
	// Fast path: take a free run slot without touching the queue bound,
	// so a simultaneous burst larger than maxQueue is never shed while
	// workers sit idle. Only acquirers that actually have to wait count
	// against the queue.
	select {
	case a.running <- struct{}{}:
		a.inFlight.Add(1)
		return 0, nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return 0, errQueueFull
	}
	start := time.Now()
	select {
	case a.running <- struct{}{}:
		a.queued.Add(-1)
		a.inFlight.Add(1)
		return time.Since(start), nil
	case <-ctx.Done():
		a.queued.Add(-1)
		return time.Since(start), ctx.Err()
	}
}

// release returns a run slot and folds the job's duration into the EWMA.
func (a *admission) release(jobDur time.Duration) {
	a.inFlight.Add(-1)
	<-a.running
	micros := jobDur.Microseconds()
	for {
		old := a.ewmaJobMicros.Load()
		next := micros
		if old > 0 {
			next = (old*7 + micros) / 8
		}
		if a.ewmaJobMicros.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfter estimates how long a shed client should back off: the mean
// job duration times the number of jobs ahead of it per slot, floored at
// one second. With no completed jobs yet it answers 1s.
func (a *admission) retryAfter() time.Duration {
	mean := time.Duration(a.ewmaJobMicros.Load()) * time.Microsecond
	if mean <= 0 {
		return time.Second
	}
	ahead := a.queued.Load() + a.inFlight.Load()
	slots := int64(cap(a.running))
	est := mean * time.Duration(ahead+slots) / time.Duration(slots)
	if est < time.Second {
		est = time.Second
	}
	if est > 5*time.Minute {
		est = 5 * time.Minute
	}
	return est
}
