package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// metrics is a minimal Prometheus-style registry: named counters with one
// optional label dimension, gauges read through callbacks at scrape time,
// and fixed-bucket histograms. Everything is lock-free on the hot path
// (atomic adds); the scrape path takes a registry snapshot under a mutex.
// It exists so the server can export Health- and queue-derived telemetry
// without pulling a client library into the module.
type metrics struct {
	mu     sync.Mutex
	counts map[string]*atomic.Int64  //filllint:guard mu -- "name{label}" → count
	gauges map[string]func() float64 //filllint:guard mu
	hists  map[string]*histogram     //filllint:guard mu
}

func newMetrics() *metrics {
	return &metrics{
		counts: map[string]*atomic.Int64{},
		gauges: map[string]func() float64{},
		hists:  map[string]*histogram{},
	}
}

// counter returns (creating on first use) the counter for name with an
// optional {k="v"} label pair rendered into the series key.
func (m *metrics) counter(name, labels string) *atomic.Int64 {
	key := name
	if labels != "" {
		key = name + "{" + labels + "}"
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counts[key]
	if !ok {
		c = new(atomic.Int64)
		m.counts[key] = c
	}
	return c
}

// add increments a labelled counter by delta.
func (m *metrics) add(name, labels string, delta int64) {
	m.counter(name, labels).Add(delta)
}

// gauge registers a callback sampled at scrape time.
func (m *metrics) gauge(name string, fn func() float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gauges[name] = fn
}

// histogram is a fixed-bucket cumulative histogram in the Prometheus
// exposition shape (le-labelled buckets plus _sum and _count).
type histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound, plus +Inf at the end
	sum    atomic.Int64   // micro-units to stay integral
	n      atomic.Int64
}

// defaultSecondsBuckets covers queue waits and job runtimes from 1 ms to
// ~2 minutes.
var defaultSecondsBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

func (m *metrics) hist(name string, bounds []float64) *histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[name]
	if !ok {
		h = &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		m.hists[name] = h
	}
	return h
}

// observe records one sample.
func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(int64(v * 1e6))
	h.n.Add(1)
}

// write renders the registry in the Prometheus text exposition format.
// Series are emitted in sorted key order so scrapes are diffable. The
// maps are snapshotted (keys and pointer/callback values) under the
// mutex so a scrape never reads them concurrently with a first-use
// series insert in counter()/hist().
func (m *metrics) write(w io.Writer) {
	m.mu.Lock()
	counts := make(map[string]*atomic.Int64, len(m.counts))
	countKeys := make([]string, 0, len(m.counts))
	for k, v := range m.counts {
		counts[k] = v
		countKeys = append(countKeys, k)
	}
	gauges := make(map[string]func() float64, len(m.gauges))
	gaugeKeys := make([]string, 0, len(m.gauges))
	for k, v := range m.gauges {
		gauges[k] = v
		gaugeKeys = append(gaugeKeys, k)
	}
	hists := make(map[string]*histogram, len(m.hists))
	histKeys := make([]string, 0, len(m.hists))
	for k, v := range m.hists {
		hists[k] = v
		histKeys = append(histKeys, k)
	}
	m.mu.Unlock()
	sort.Strings(countKeys)
	sort.Strings(gaugeKeys)
	sort.Strings(histKeys)

	for _, k := range countKeys {
		fmt.Fprintf(w, "%s %d\n", k, counts[k].Load())
	}
	for _, k := range gaugeKeys {
		fmt.Fprintf(w, "%s %g\n", k, gauges[k]())
	}
	for _, k := range histKeys {
		h := hists[k]
		var cum int64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", k, trimFloat(b), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", k, cum)
		fmt.Fprintf(w, "%s_sum %g\n", k, float64(h.sum.Load())/1e6)
		fmt.Fprintf(w, "%s_count %d\n", k, h.n.Load())
	}
}

// trimFloat renders a bucket bound without trailing zeros ("0.5", "10").
func trimFloat(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
