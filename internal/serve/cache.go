package serve

import (
	"container/list"
	"sync"

	"dummyfill/internal/layout"
)

// layoutCache memoizes ingested layouts by content hash so repeat
// submissions of the same payload skip the parse entirely. Concurrent
// requests for the same key are single-flighted: the first caller parses
// while the rest block on its result, so a burst of identical submissions
// costs one parse, not N. Entries are evicted LRU; failed parses are
// never cached (the next submission retries).
//
// Cached layouts are shared across concurrent jobs — safe because the
// engine treats its input layout as read-only (all mutable state lives in
// per-run window structures).
type layoutCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry //filllint:guard mu
	lru     *list.List             //filllint:guard mu -- front = most recent; values are keys
}

type cacheEntry struct {
	ready chan struct{} // closed when lay/err are set
	lay   *layout.Layout
	err   error
	elem  *list.Element
}

// newLayoutCache returns a cache holding up to capacity layouts; a
// capacity ≤ 0 disables caching (get always parses).
func newLayoutCache(capacity int) *layoutCache {
	return &layoutCache{cap: capacity, entries: map[string]*cacheEntry{}, lru: list.New()}
}

// get returns the layout for key, parsing it with parse on a miss. Only
// one caller per key runs parse at a time; its outcome is broadcast to
// every waiter. hit reports whether the layout came from cache (false
// for the caller that parsed and for all single-flight waiters on it).
func (c *layoutCache) get(key string, parse func() (*layout.Layout, error)) (lay *layout.Layout, hit bool, err error) {
	if c.cap <= 0 {
		lay, err = parse()
		return lay, false, err
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The flight we joined failed; retry our own parse without
			// caching (the entry was already removed by the leader).
			lay, err = parse()
			return lay, false, err
		}
		return e.lay, true, nil
	}
	e := &cacheEntry{ready: make(chan struct{})}
	e.elem = c.lru.PushFront(key)
	c.entries[key] = e
	c.mu.Unlock()

	e.lay, e.err = parse()
	c.mu.Lock()
	if e.err != nil {
		// Drop our entry only if it is still the one in the map: it may
		// have been LRU-evicted mid-parse and replaced by a fresh flight
		// for the same key, which must not be torn down.
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
			c.lru.Remove(e.elem)
		}
	} else {
		for c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.entries, oldest.Value.(string))
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return e.lay, false, e.err
}

// len reports the number of cached (or in-flight) entries.
func (c *layoutCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
