// Package serve is the fill-as-a-service front end: an HTTP/JSON +
// raw-stream API over the streaming fill engine, built for failure
// first. Jobs pass a bounded admission queue (load is shed with 429 +
// Retry-After, never buffered unboundedly), run under a per-job deadline
// that maps onto the engine's soft Options.Budget (an overloaded job
// degrades windows instead of failing), and report a Health-derived
// status taxonomy: ok, degraded, aborted, rejected. Repeat submissions
// of the same payload skip the parse via a content-hash layout cache
// with single-flight dedup; ingest is capped by layio.Limits and a body
// size bound. Shutdown drains in-flight jobs under a deadline and
// hard-aborts stragglers via context. /metrics exports Prometheus-style
// counters and histograms from the queue and every job's Health.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dummyfill/internal/faultinject"
	"dummyfill/internal/fill"
	"dummyfill/internal/fillcache"
	"dummyfill/internal/ingest"
	"dummyfill/internal/layio"
	"dummyfill/internal/layout"
)

// Status is the job outcome taxonomy derived from Result.Health and the
// admission/abort paths.
type Status string

const (
	// StatusOK: the job completed with a fully healthy engine run.
	StatusOK Status = "ok"
	// StatusDegraded: the job completed and the output is complete and
	// DRC-clean, but some windows fell back or degraded (solver
	// fallbacks, budget expiry, recovered panics).
	StatusDegraded Status = "degraded"
	// StatusAborted: the job started but did not complete — client
	// cancellation, hard deadline, drain abort, or an internal fault.
	StatusAborted Status = "aborted"
	// StatusRejected: the job never ran — queue full, draining,
	// oversized or malformed payload, or invalid parameters.
	StatusRejected Status = "rejected"
)

// Config tunes a Server. The zero value is usable: every field defaults
// sensibly in New.
type Config struct {
	// Workers is the maximum number of concurrently running jobs
	// (0 = GOMAXPROCS).
	Workers int
	// QueueDepth is how many admitted jobs may wait for a run slot
	// beyond the running ones (0 = 2×Workers). Requests beyond it are
	// shed with 429.
	QueueDepth int
	// DefaultDeadline is the per-job deadline when the request names
	// none (0 = 60s).
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-requested deadlines (0 = 5m).
	MaxDeadline time.Duration
	// BudgetFraction is the share of a job's remaining deadline granted
	// to the engine's soft Options.Budget; the rest is headroom so the
	// run degrades windows and still completes before the hard abort
	// (0 = 0.8).
	BudgetFraction float64
	// MaxBodyBytes caps an ingest payload (0 = 256 MiB).
	MaxBodyBytes int64
	// Limits tightens the per-format ingest caps; zero fields keep each
	// format's defaults.
	Limits layio.Limits
	// CacheEntries is the content-hash layout cache capacity
	// (0 = 64; negative disables caching).
	CacheEntries int
	// Rules is the fill rule deck applied to formats that carry no rule
	// metadata (GDSII, OASIS). Required for those formats: a zero Rules
	// rejects binary payloads at ingest validation.
	Rules layout.Rules
	// Options is the base engine configuration jobs start from
	// (zero Lambda = fill.DefaultOptions()). Per-request parameters
	// (workers, shards, lambda, deadline) override per job.
	Options fill.Options
	// FillCache is the persistent per-window fill cache — the second
	// caching tier under the layout LRU. The layout cache short-circuits
	// byte-identical requests; the fill cache accelerates *similar* ones
	// (an edited layout resubmitted after an ECO) by replaying every
	// unchanged window from disk. nil disables the tier.
	FillCache *fillcache.Cache
}

// withDefaults resolves the zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.BudgetFraction <= 0 || c.BudgetFraction >= 1 {
		c.BudgetFraction = 0.8
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 64
	}
	if c.Options.Lambda == 0 {
		c.Options = fill.DefaultOptions()
	}
	return c
}

// Server is the fill service. It implements http.Handler; route every
// method through it (it multiplexes /fill, /metrics, /healthz, /stats).
type Server struct {
	cfg   Config
	adm   *admission
	cache *layoutCache
	met   *metrics

	// hardCtx aborts in-flight jobs when the drain deadline expires.
	hardCtx    context.Context
	hardCancel context.CancelFunc
	draining   atomic.Bool
	// drainMu orders job registration against the draining flip so
	// jobs.Add never races jobs.Wait: handlers register under RLock,
	// Shutdown flips the flag under Lock before waiting. The lockguard
	// annotation makes the ordering checkable; Shutdown's Wait is the one
	// deliberate (and documented) exception.
	drainMu sync.RWMutex
	jobs    sync.WaitGroup //filllint:guard drainMu

	// inject is the chaos hook at the serving layer's own fault sites
	// (nil injects nothing). Engine-level sites flow through each job's
	// Options.Inject.
	inject *faultinject.Injector

	// outBufs pools per-job output buffers; gets/puts are balanced on
	// every exit path (asserted by the chaos suite).
	outBufs          sync.Pool
	bufGets, bufPuts atomic.Int64

	// maxDivergence tracks the worst Health.PlanDivergence seen.
	maxDivergence atomic.Uint64 // math.Float64bits
}

// New constructs a Server from cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		adm:   newAdmission(cfg.Workers, cfg.QueueDepth),
		cache: newLayoutCache(cfg.CacheEntries),
		met:   newMetrics(),
	}
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	s.outBufs.New = func() any { return new(bytes.Buffer) }
	s.met.gauge("fillserved_queue_depth", func() float64 { return float64(s.adm.queued.Load()) })
	s.met.gauge("fillserved_jobs_running", func() float64 { return float64(s.adm.inFlight.Load()) })
	s.met.gauge("fillserved_cache_entries", func() float64 { return float64(s.cache.len()) })
	s.met.gauge("fillserved_plan_divergence_max", func() float64 {
		return bitsToFloat(s.maxDivergence.Load())
	})
	// Touch the series the dashboards key on so a fresh scrape shows them
	// at zero instead of absent.
	for _, st := range []Status{StatusOK, StatusDegraded, StatusAborted, StatusRejected} {
		s.met.counter("fillserved_jobs_total", `status="`+string(st)+`"`)
	}
	s.met.hist("fillserved_queue_wait_seconds", defaultSecondsBuckets)
	s.met.hist("fillserved_job_seconds", defaultSecondsBuckets)
	return s
}

// SetInjector installs the serving-layer chaos injector (sites
// SiteServeIngest/SiteServePanic/SiteServeEmit, keyed by payload content
// hash). Call before serving traffic.
func (s *Server) SetInjector(in *faultinject.Injector) { s.inject = in }

// PoolBalance reports how many pooled output buffers were acquired and
// released — equal after every job has finished, or scratch leaked.
func (s *Server) PoolBalance() (gets, puts int64) {
	return s.bufGets.Load(), s.bufPuts.Load()
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// beginJob registers a job with the drain tracker unless draining has
// begun. On true the caller must s.jobs.Done() when the job finishes.
func (s *Server) beginJob() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return false
	}
	s.jobs.Add(1)
	return true
}

// Shutdown drains the server: new jobs are rejected with 503 while
// in-flight ones run to completion. If ctx ends first, the stragglers
// are hard-aborted through their contexts and Shutdown returns ctx's
// error once they have unwound.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		//filllint:allow lockguard -- Wait must not hold drainMu (beginJob's RLock would deadlock); the Lock/Unlock flip above already ordered every Add before this Wait
		s.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.hardCancel()
		<-done
		return ctx.Err()
	}
}

// errorReply is the JSON body of every non-200 response.
type errorReply struct {
	Status        Status `json:"status"`
	Error         string `json:"error"`
	RetryAfterSec int    `json:"retry_after_sec,omitempty"`
}

// ServeHTTP multiplexes the service endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/fill" && r.Method == http.MethodPost:
		s.handleFill(w, r)
	case r.URL.Path == "/metrics" && r.Method == http.MethodGet:
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.met.write(w)
	case r.URL.Path == "/healthz" && r.Method == http.MethodGet:
		s.writeJSON(w, http.StatusOK, map[string]any{
			"status":   map[bool]string{false: "ok", true: "draining"}[s.draining.Load()],
			"queued":   s.adm.queued.Load(),
			"running":  s.adm.inFlight.Load(),
			"capacity": s.cfg.Workers,
		})
	case r.URL.Path == "/stats" && r.Method == http.MethodGet:
		gets, puts := s.PoolBalance()
		s.writeJSON(w, http.StatusOK, map[string]any{
			"draining":      s.draining.Load(),
			"queued":        s.adm.queued.Load(),
			"running":       s.adm.inFlight.Load(),
			"workers":       s.cfg.Workers,
			"queue_depth":   s.cfg.QueueDepth,
			"cache_entries": s.cache.len(),
			"buf_gets":      gets,
			"buf_puts":      puts,
		})
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// jobParams are the per-request engine knobs parsed from the query.
type jobParams struct {
	format, oformat string
	deadline        time.Duration
	workers, shards int
	lambda          float64
	window          int64
}

// parseParams validates the request's query parameters. Zero/negative
// deadlines are rejected outright — a disabled soft deadline must be the
// server's explicit choice (DefaultDeadline), never a silent client typo.
func (s *Server) parseParams(r *http.Request) (jobParams, error) {
	q := r.URL.Query()
	p := jobParams{
		format:   q.Get("format"),
		oformat:  q.Get("oformat"),
		deadline: s.cfg.DefaultDeadline,
	}
	if p.oformat == "" {
		p.oformat = "gds"
	}
	if v := q.Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return p, fmt.Errorf("bad deadline %q: %v", v, err)
		}
		if d <= 0 {
			return p, fmt.Errorf("deadline must be positive, got %v", d)
		}
		p.deadline = d
	}
	if p.deadline > s.cfg.MaxDeadline {
		p.deadline = s.cfg.MaxDeadline
	}
	var err error
	if v := q.Get("workers"); v != "" {
		if p.workers, err = strconv.Atoi(v); err != nil || p.workers < 0 {
			return p, fmt.Errorf("bad workers %q", v)
		}
		if max := runtime.GOMAXPROCS(0); p.workers > max {
			p.workers = max
		}
	}
	if v := q.Get("shards"); v != "" {
		if p.shards, err = strconv.Atoi(v); err != nil || p.shards < 0 {
			return p, fmt.Errorf("bad shards %q", v)
		}
	}
	if v := q.Get("lambda"); v != "" {
		if p.lambda, err = strconv.ParseFloat(v, 64); err != nil || p.lambda < 1 {
			return p, fmt.Errorf("bad lambda %q (must be >= 1)", v)
		}
	}
	if v := q.Get("window"); v != "" {
		if p.window, err = strconv.ParseInt(v, 10, 64); err != nil || p.window < 0 {
			return p, fmt.Errorf("bad window %q", v)
		}
	}
	return p, nil
}

// handleFill runs one fill job end to end: bounded body read, admission,
// cached ingest, engine run under the mapped budget, buffered response.
func (s *Server) handleFill(w http.ResponseWriter, r *http.Request) {
	arrival := time.Now()
	if s.draining.Load() {
		s.reject(w, http.StatusServiceUnavailable, "draining", "server is draining", int(s.adm.retryAfter().Seconds()))
		return
	}
	p, err := s.parseParams(r)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	ofmt, err := layio.Lookup(p.oformat)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}

	// Bounded body read, before admission: a slow or oversized client
	// costs its own handler goroutine, never a run slot. The full payload
	// is needed anyway for content-hash caching.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.reject(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("payload exceeds %d bytes", tooBig.Limit), 0)
			return
		}
		s.noteAborted("client", arrival)
		return // client went away mid-upload; nothing to write
	}

	// Admission: wait for a run slot under the job's own deadline, shed
	// immediately when the queue is at capacity.
	actx, acancel := context.WithTimeout(r.Context(), p.deadline)
	defer acancel()
	wait, err := s.adm.acquire(actx)
	if err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			s.reject(w, http.StatusTooManyRequests, "queue_full", "job queue full", int(s.adm.retryAfter().Seconds()))
		case r.Context().Err() != nil:
			s.noteAborted("client", arrival)
		default: // deadline exhausted while queued
			s.reject(w, http.StatusTooManyRequests, "deadline", "deadline exhausted while queued", int(s.adm.retryAfter().Seconds()))
		}
		return
	}
	s.met.hist("fillserved_queue_wait_seconds", defaultSecondsBuckets).observe(wait.Seconds())
	jobStart := time.Now()
	released := false
	release := func() {
		if !released {
			released = true
			s.adm.release(time.Since(jobStart))
		}
	}
	defer release()
	if !s.beginJob() {
		s.reject(w, http.StatusServiceUnavailable, "draining", "server is draining", int(s.adm.retryAfter().Seconds()))
		return
	}
	defer s.jobs.Done()

	remaining := p.deadline - time.Since(arrival)
	if remaining <= 0 {
		s.reject(w, http.StatusTooManyRequests, "deadline", "deadline exhausted while queued", int(s.adm.retryAfter().Seconds()))
		return
	}

	// Content-hash ingest with single-flight dedup. The key covers the
	// payload and everything that shapes the parsed layout.
	sum := sha256.Sum256(body)
	jobKey := binary.BigEndian.Uint64(sum[:8])
	cacheKey := fmt.Sprintf("%x|%s|%d|%v", sum, p.format, p.window, s.cfg.Rules)
	lay, hit, err := s.cache.get(cacheKey, func() (*layout.Layout, error) {
		if ierr := s.inject.Fail(faultinject.SiteServeIngest, jobKey); ierr != nil {
			return nil, ierr
		}
		return s.parseLayout(body, p)
	})
	if err != nil {
		s.reject(w, http.StatusBadRequest, "malformed", "ingest: "+err.Error(), 0)
		return
	}
	if hit {
		s.met.add("fillserved_cache_total", `event="hit"`, 1)
	} else {
		s.met.add("fillserved_cache_total", `event="miss"`, 1)
	}

	// Run the engine under the remaining deadline. The soft budget is a
	// fraction of it, so an overloaded job degrades windows and still
	// finishes before the hard abort; the drain deadline hard-aborts too.
	jctx, jcancel := context.WithTimeout(r.Context(), remaining)
	defer jcancel()
	stopAbort := context.AfterFunc(s.hardCtx, jcancel)
	defer stopAbort()

	opts := s.cfg.Options
	opts.Workers = p.workers
	opts.Shards = p.shards
	if p.lambda > 0 {
		opts.Lambda = p.lambda
	}
	opts.Budget = time.Duration(float64(remaining) * s.cfg.BudgetFraction)
	opts.Cache = s.cfg.FillCache

	buf := s.getBuf()
	res, fills, err := s.runJob(jctx, lay, opts, ofmt, jobKey, buf)
	if err != nil {
		s.putBuf(buf)
		switch {
		case r.Context().Err() != nil:
			s.noteAborted("client", arrival)
		case s.hardCtx.Err() != nil:
			s.noteAborted("drain", arrival)
			s.writeJSON(w, http.StatusServiceUnavailable, errorReply{Status: StatusAborted, Error: "job aborted: drain deadline exceeded"})
			return
		case jctx.Err() != nil:
			s.noteAborted("deadline", arrival)
			s.reject(w, http.StatusServiceUnavailable, "deadline", "hard deadline exceeded", int(s.adm.retryAfter().Seconds()))
			return
		default:
			s.noteAborted("internal", arrival)
			s.writeJSON(w, http.StatusInternalServerError, errorReply{Status: StatusAborted, Error: err.Error()})
			return
		}
		return
	}

	// The engine is done: free the run slot before streaming the body so
	// a slow reader costs only its own handler goroutine, never capacity.
	release()

	status := StatusOK
	if !res.Health.Healthy() {
		status = StatusDegraded
	}
	s.noteHealth(res.Health)
	s.met.add("fillserved_jobs_total", `status="`+string(status)+`"`, 1)
	s.met.hist("fillserved_job_seconds", defaultSecondsBuckets).observe(time.Since(jobStart).Seconds())

	h := w.Header()
	h.Set("Content-Type", contentType(ofmt.Name))
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	h.Set("X-Fill-Status", string(status))
	h.Set("X-Fill-Health", res.Health.String())
	h.Set("X-Fill-Windows", strconv.Itoa(res.Windows))
	h.Set("X-Fill-Fills", strconv.Itoa(fills))
	h.Set("X-Fill-Cache", map[bool]string{true: "hit", false: "miss"}[hit])
	if s.cfg.FillCache != nil {
		h.Set("X-Fill-Window-Cache", fmt.Sprintf("hits=%d misses=%d stale=%d errors=%d",
			res.Health.CacheHits, res.Health.CacheMisses, res.Health.CacheStale, res.Health.CacheErrors))
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes()) // client-side write errors are the client's problem
	s.putBuf(buf)
}

// runJob executes one engine run with per-job panic isolation, emitting
// the solution deck (fills only, struct FILL — byte-identical to offline
// `fillgen -stream` output for the same layout and options) into buf.
func (s *Server) runJob(ctx context.Context, lay *layout.Layout, opts fill.Options, ofmt layio.Format, jobKey uint64, buf *bytes.Buffer) (res *fill.Result, fills int, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, fills, err = nil, 0, fmt.Errorf("serve: job panicked: %v", r)
		}
	}()
	if s.inject.Hit(faultinject.SiteServePanic, jobKey) {
		panic("faultinject: injected job panic")
	}
	eng, err := fill.New(lay, opts)
	if err != nil {
		return nil, 0, err
	}
	sw, err := ofmt.NewShapeWriter(buf, layio.Header{Name: lay.Name, Struct: "FILL"})
	if err != nil {
		return nil, 0, err
	}
	emitFault := s.inject.Hit(faultinject.SiteServeEmit, jobKey)
	windows := 0
	res, err = eng.RunStream(ctx, fill.SinkFunc(func(_ int, fs []layout.Fill) error {
		windows++
		if emitFault && windows == 2 {
			return fmt.Errorf("%w: %s", faultinject.ErrInjected, faultinject.SiteServeEmit)
		}
		for _, f := range fs {
			if werr := sw.Write(layio.Shape{Layer: f.Layer, Datatype: layio.DatatypeFill, Rect: f.Rect}); werr != nil {
				return werr
			}
		}
		fills += len(fs)
		return nil
	}))
	if err != nil {
		return nil, 0, err
	}
	if err := sw.Close(); err != nil {
		return nil, 0, err
	}
	return res, fills, nil
}

// parseLayout ingests a payload under the format's limits tightened by
// the server's own.
func (s *Server) parseLayout(body []byte, p jobParams) (*layout.Layout, error) {
	var f layio.Format
	var src io.Reader = bytes.NewReader(body)
	var err error
	if p.format == "" || p.format == "auto" {
		if f, src, err = layio.DetectReader(src); err != nil {
			return nil, err
		}
	} else if f, err = layio.Lookup(p.format); err != nil {
		return nil, err
	}
	iopts := ingest.Options{Window: p.window}
	if !f.CarriesMeta {
		iopts.Rules = s.cfg.Rules
	}
	return ingest.FromShapes(f.NewShapeReader(src, mergeLimits(f.Limits, s.cfg.Limits)), iopts)
}

// mergeLimits tightens format defaults with the server's caps (zero
// fields keep the default).
func mergeLimits(def, cap layio.Limits) layio.Limits {
	if cap.MaxRecords > 0 && (def.MaxRecords == 0 || cap.MaxRecords < def.MaxRecords) {
		def.MaxRecords = cap.MaxRecords
	}
	if cap.MaxShapes > 0 && (def.MaxShapes == 0 || cap.MaxShapes < def.MaxShapes) {
		def.MaxShapes = cap.MaxShapes
	}
	return def
}

// getBuf/putBuf wrap the output-buffer pool with balance accounting; the
// pairing spans the wrappers, with PoolBalance as the runtime assertion.
func (s *Server) getBuf() *bytes.Buffer {
	s.bufGets.Add(1)
	//filllint:allow poolpair -- paired with putBuf across the job lifecycle; the chaos suite asserts bufGets == bufPuts
	buf := s.outBufs.Get().(*bytes.Buffer)
	buf.Reset()
	return buf
}

func (s *Server) putBuf(b *bytes.Buffer) {
	s.bufPuts.Add(1)
	s.outBufs.Put(b)
}

// reject writes a JSON rejection and accounts it.
func (s *Server) reject(w http.ResponseWriter, code int, reason, msg string, retrySec int) {
	s.met.add("fillserved_jobs_total", `status="rejected"`, 1)
	s.met.add("fillserved_rejects_total", `reason="`+reason+`"`, 1)
	if retrySec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retrySec))
	}
	s.writeJSON(w, code, errorReply{Status: StatusRejected, Error: msg, RetryAfterSec: retrySec})
}

// noteAborted accounts a job that started (or was uploading) and did not
// complete.
func (s *Server) noteAborted(cause string, arrival time.Time) {
	s.met.add("fillserved_jobs_total", `status="aborted"`, 1)
	s.met.add("fillserved_aborts_total", `cause="`+cause+`"`, 1)
	s.met.hist("fillserved_job_seconds", defaultSecondsBuckets).observe(time.Since(arrival).Seconds())
}

// noteHealth folds one job's Health into the window-level counters — the
// same vocabulary benchjson rows report (degraded windows, fallbacks,
// plan divergence).
func (s *Server) noteHealth(h fill.Health) {
	s.met.add("fillserved_windows_total", `kind="sized"`, int64(h.Sized))
	s.met.add("fillserved_windows_total", `kind="skipped"`, int64(h.Skipped))
	s.met.add("fillserved_windows_total", `kind="degraded"`, int64(h.Degraded))
	s.met.add("fillserved_windows_total", `kind="recovered"`, int64(h.Recovered))
	s.met.add("fillserved_windows_total", `kind="fallback_cold"`, int64(h.FallbackCold))
	s.met.add("fillserved_windows_total", `kind="fallback_simplex"`, int64(h.FallbackSimplex))
	if h.CacheHits+h.CacheMisses+h.CacheStale+h.CacheErrors > 0 {
		s.met.add("fillserved_fill_cache_windows_total", `result="hit"`, int64(h.CacheHits))
		s.met.add("fillserved_fill_cache_windows_total", `result="miss"`, int64(h.CacheMisses))
		s.met.add("fillserved_fill_cache_windows_total", `result="stale"`, int64(h.CacheStale))
		s.met.add("fillserved_fill_cache_windows_total", `result="error"`, int64(h.CacheErrors))
	}
	if h.BudgetExceeded {
		s.met.add("fillserved_budget_exceeded_total", "", 1)
	}
	for {
		old := s.maxDivergence.Load()
		if h.PlanDivergence <= bitsToFloat(old) {
			return
		}
		if s.maxDivergence.CompareAndSwap(old, floatToBits(h.PlanDivergence)) {
			return
		}
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// contentType maps an output format name to its media type.
func contentType(format string) string {
	if format == "text" {
		return "text/plain; charset=utf-8"
	}
	return "application/octet-stream"
}

func floatToBits(f float64) uint64 { return math.Float64bits(f) }
func bitsToFloat(b uint64) float64 { return math.Float64frombits(b) }
