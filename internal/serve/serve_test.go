package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dummyfill/internal/fill"
	"dummyfill/internal/fillcache"
	"dummyfill/internal/ingest"
	"dummyfill/internal/layio"
	"dummyfill/internal/layout"
	"dummyfill/internal/synth"
	"dummyfill/internal/textfmt"

	_ "dummyfill/internal/gdsii"
	_ "dummyfill/internal/oasis"
)

// tinyLayoutBytes returns the tiny synthetic design serialized in the
// text format — the standard upload payload for these tests.
var tinyLayoutBytes = sync.OnceValue(func() []byte {
	lay, err := synth.Generate(synth.DesignTiny())
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := textfmt.WriteLayout(&buf, lay); err != nil {
		panic(err)
	}
	return buf.Bytes()
})

// offlineFill computes the reference response body for a payload: the
// same ingest path and the same engine options the server uses, written
// through the same shape writer. 200 responses must match it byte for
// byte.
func offlineFill(t *testing.T, payload []byte, opts fill.Options, oformat string) []byte {
	t.Helper()
	f, err := layio.Lookup("text")
	if err != nil {
		t.Fatal(err)
	}
	lay, err := ingest.FromShapes(f.NewShapeReader(bytes.NewReader(payload), f.Limits), ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := fill.New(lay, opts)
	if err != nil {
		t.Fatal(err)
	}
	of, err := layio.Lookup(oformat)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw, err := of.NewShapeWriter(&buf, layio.Header{Name: lay.Name, Struct: "FILL"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunStream(context.Background(), fill.SinkFunc(func(_ int, fs []layout.Fill) error {
		for _, fl := range fs {
			if werr := sw.Write(layio.Shape{Layer: fl.Layer, Datatype: layio.DatatypeFill, Rect: fl.Rect}); werr != nil {
				return werr
			}
		}
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postFill(t *testing.T, ts *httptest.Server, query string, payload []byte) *http.Response {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/fill"+query, "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFillEndToEndByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("engine run; skipping in -short")
	}
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	payload := tinyLayoutBytes()
	for _, oformat := range []string{"text", "gds"} {
		resp := postFill(t, ts, "?format=text&oformat="+oformat+"&workers=2", payload)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("oformat=%s: status %d, body %s", oformat, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Fill-Status"); got != string(StatusOK) && got != string(StatusDegraded) {
			t.Fatalf("oformat=%s: X-Fill-Status = %q", oformat, got)
		}
		opts := fill.DefaultOptions()
		opts.Workers = 2
		want := offlineFill(t, payload, opts, oformat)
		if !bytes.Equal(body, want) {
			t.Fatalf("oformat=%s: response (%d bytes) differs from offline reference (%d bytes)",
				oformat, len(body), len(want))
		}
		if resp.Header.Get("X-Fill-Windows") == "" || resp.Header.Get("X-Fill-Fills") == "" {
			t.Fatalf("oformat=%s: missing X-Fill-Windows/X-Fill-Fills headers", oformat)
		}
	}

	// Same payload again: served from the layout cache.
	resp := postFill(t, ts, "?format=text&oformat=text&workers=2", payload)
	readBody(t, resp)
	if got := resp.Header.Get("X-Fill-Cache"); got != "hit" {
		t.Fatalf("repeat submission: X-Fill-Cache = %q, want hit", got)
	}

	gets, puts := s.PoolBalance()
	if gets == 0 || gets != puts {
		t.Fatalf("pooled buffers leaked: gets=%d puts=%d", gets, puts)
	}
}

func TestFillRejectsBadRequests(t *testing.T) {
	s := New(Config{MaxBodyBytes: 1 << 20})
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		name, query string
		payload     []byte
		wantCode    int
	}{
		{"zero deadline", "?deadline=0s", []byte("layout x\n"), http.StatusBadRequest},
		{"negative deadline", "?deadline=-5s", []byte("layout x\n"), http.StatusBadRequest},
		{"bad lambda", "?lambda=0.5", []byte("layout x\n"), http.StatusBadRequest},
		{"bad workers", "?workers=-1", []byte("layout x\n"), http.StatusBadRequest},
		{"unknown format", "?format=dxf", []byte("layout x\n"), http.StatusBadRequest},
		{"unknown oformat", "?oformat=dxf", []byte("layout x\n"), http.StatusBadRequest},
		{"malformed payload", "?format=text", []byte("layout x\nwire 1 2 3\n"), http.StatusBadRequest},
		{"undetectable payload", "", []byte{0x00, 0x01, 0x02, 0x03}, http.StatusBadRequest},
		{"oversized body", "", bytes.Repeat([]byte("x"), 2<<20), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp := postFill(t, ts, tc.query, tc.payload)
		body := readBody(t, resp)
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, resp.StatusCode, tc.wantCode, body)
		}
		if !bytes.Contains(body, []byte(`"rejected"`)) {
			t.Errorf("%s: body lacks rejected status: %s", tc.name, body)
		}
	}
	if gets, puts := s.PoolBalance(); gets != puts {
		t.Fatalf("pooled buffers leaked on reject paths: gets=%d puts=%d", gets, puts)
	}
}

func TestFillShedsLoadWhenQueueFull(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Occupy the only run slot and the only queue seat directly.
	if _, err := s.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	qctx, qcancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, err := s.adm.acquire(qctx)
		queued <- err
	}()
	waitFor(t, func() bool { return s.adm.queued.Load() == 1 })

	resp := postFill(t, ts, "", []byte("layout x\n"))
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	qcancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued waiter: err = %v, want context.Canceled", err)
	}
	s.adm.release(time.Millisecond)
}

func TestFillDeadlineExhaustedWhileQueued(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	if _, err := s.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.adm.release(time.Millisecond)

	resp := postFill(t, ts, "?deadline=30ms", []byte("layout x\n"))
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("queued")) {
		t.Fatalf("body should name the queue wait: %s", body)
	}
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with no jobs: %v", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after Shutdown")
	}
	resp := postFill(t, ts, "", []byte("layout x\n"))
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 draining response missing Retry-After")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("engine run; skipping in -short")
	}
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	readBody(t, postFill(t, ts, "?format=text&oformat=text", tinyLayoutBytes()))
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readBody(t, resp))
	for _, series := range []string{
		`fillserved_jobs_total{status="ok"}`,
		`fillserved_jobs_total{status="rejected"}`,
		"fillserved_queue_depth",
		"fillserved_jobs_running",
		`fillserved_windows_total{kind="sized"}`,
		`fillserved_cache_total{event="miss"}`,
		`fillserved_job_seconds_bucket{le="+Inf"}`,
		"fillserved_job_seconds_count",
		"fillserved_queue_wait_seconds_sum",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics missing series %s", series)
		}
	}
	if t.Failed() {
		t.Logf("metrics payload:\n%s", text)
	}
}

func TestHealthzAndStats(t *testing.T) {
	s := New(Config{Workers: 3})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("/healthz: status %d body %s", resp.StatusCode, body)
	}
	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); !bytes.Contains(body, []byte(`"workers":3`)) {
		t.Fatalf("/stats: body %s", body)
	}
}

func TestAdmissionQueueBoundsAndRetryAfter(t *testing.T) {
	a := newAdmission(2, 1)
	ctx := context.Background()
	if _, err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := a.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Slots full; one queue seat. Fill it with a blocked waiter.
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	got := make(chan error, 1)
	go func() { _, err := a.acquire(wctx); got <- err }()
	waitFor(t, func() bool { return a.queued.Load() == 1 })
	if _, err := a.acquire(ctx); !errors.Is(err, errQueueFull) {
		t.Fatalf("over-capacity acquire: err = %v, want errQueueFull", err)
	}

	// Freeing a slot admits the waiter.
	a.release(40 * time.Millisecond)
	if err := <-got; err != nil {
		t.Fatalf("queued waiter after release: %v", err)
	}

	if ra := a.retryAfter(); ra < time.Second || ra > 5*time.Minute {
		t.Fatalf("retryAfter = %v, want clamped to [1s, 5m]", ra)
	}
	a.release(40 * time.Millisecond)
	a.release(40 * time.Millisecond)
	if q, f := a.queued.Load(), a.inFlight.Load(); q != 0 || f != 0 {
		t.Fatalf("counters not restored: queued=%d inFlight=%d", q, f)
	}
}

func TestAdmissionFastPathBypassesQueueBound(t *testing.T) {
	// With free slots, acquire must succeed without counting against the
	// queue bound: a burst larger than maxQueue is never shed while
	// workers sit idle. The zero-depth queue makes that deterministic —
	// any acquire that touches the queue bound fails immediately.
	a := newAdmission(2, 0)
	for i := 0; i < 2; i++ {
		if _, err := a.acquire(context.Background()); err != nil {
			t.Fatalf("acquire %d with free slots: %v", i, err)
		}
		if q := a.queued.Load(); q != 0 {
			t.Fatalf("fast-path acquire counted against queue: queued=%d", q)
		}
	}
	// Slots exhausted: now the queue bound applies.
	if _, err := a.acquire(context.Background()); !errors.Is(err, errQueueFull) {
		t.Fatalf("over-capacity acquire: err = %v, want errQueueFull", err)
	}
	a.release(time.Millisecond)
	a.release(time.Millisecond)
	if q, f := a.queued.Load(), a.inFlight.Load(); q != 0 || f != 0 {
		t.Fatalf("counters not restored: queued=%d inFlight=%d", q, f)
	}
}

func TestLayoutCacheSingleFlight(t *testing.T) {
	c := newLayoutCache(4)
	var parses int32
	block := make(chan struct{})
	parse := func() (*layout.Layout, error) {
		<-block
		parses++
		return &layout.Layout{Name: "x"}, nil
	}
	// parses is written only by the single flight leader while the rest
	// wait on ready, so unsynchronized increments are race-safe here iff
	// single-flight works — the race detector is the assertion.
	const waiters = 8
	var wg sync.WaitGroup
	hits := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lay, hit, err := c.get("k", parse)
			if err != nil || lay == nil {
				t.Errorf("get: lay=%v err=%v", lay, err)
			}
			hits[i] = hit
		}(i)
	}
	waitFor(t, func() bool { return c.len() == 1 })
	close(block)
	wg.Wait()
	if parses != 1 {
		t.Fatalf("parse ran %d times, want 1 (single-flight)", parses)
	}
	misses := 0
	for _, h := range hits {
		if !h {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d callers reported a miss, want exactly the flight leader", misses)
	}

	// A later get is a pure hit.
	if _, hit, _ := c.get("k", parse); !hit {
		t.Fatal("warm get: hit = false")
	}

	// Failed parses are not cached; the next get retries.
	fails := 0
	failParse := func() (*layout.Layout, error) { fails++; return nil, fmt.Errorf("nope") }
	if _, _, err := c.get("bad", failParse); err == nil {
		t.Fatal("failed parse: err = nil")
	}
	if _, _, err := c.get("bad", failParse); err == nil || fails != 2 {
		t.Fatalf("failed parse not retried: err=%v fails=%d", err, fails)
	}

	// LRU eviction holds the cap.
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		okParse := func() (*layout.Layout, error) { return &layout.Layout{Name: k}, nil }
		if _, _, err := c.get(k, okParse); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.len(); n != 4 {
		t.Fatalf("cache len = %d, want cap 4", n)
	}
}

func TestLayoutCacheFailedLeaderEvictedMidParse(t *testing.T) {
	// A parse leader whose in-flight entry is LRU-evicted (and replaced by
	// a fresh flight for the same key) must not tear down the replacement
	// when it fails.
	c := newLayoutCache(1)
	block := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := c.get("k", func() (*layout.Layout, error) {
			<-block
			return nil, fmt.Errorf("boom")
		})
		done <- err
	}()
	waitFor(t, func() bool { return c.len() == 1 })
	// Completing another key evicts "k"'s in-flight entry (cap 1) …
	if _, _, err := c.get("other", func() (*layout.Layout, error) { return &layout.Layout{Name: "o"}, nil }); err != nil {
		t.Fatal(err)
	}
	// … and a new flight for "k" caches a replacement.
	if _, _, err := c.get("k", func() (*layout.Layout, error) { return &layout.Layout{Name: "k2"}, nil }); err != nil {
		t.Fatal(err)
	}
	close(block)
	if err := <-done; err == nil {
		t.Fatal("evicted leader: err = nil, want parse failure")
	}
	lay, hit, err := c.get("k", func() (*layout.Layout, error) {
		return nil, fmt.Errorf("replacement entry was torn down")
	})
	if err != nil || !hit || lay == nil || lay.Name != "k2" {
		t.Fatalf("get after failed leader: lay=%v hit=%v err=%v, want cached replacement", lay, hit, err)
	}
	if n := c.len(); n != 1 {
		t.Fatalf("cache len = %d, want 1", n)
	}
}

func TestMetricsConcurrentScrapeAndInsert(t *testing.T) {
	// Scrapes must never read the series maps concurrently with a
	// first-use insert in counter()/hist() — the race detector is the
	// assertion.
	const inserts = 2000
	m := newMetrics()
	var done atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Fresh series keys every iteration so map inserts keep happening
		// for the whole scrape loop, not just a warm-up burst.
		for i := 0; i < inserts; i++ {
			m.add("churn_total", fmt.Sprintf(`i="%d"`, i), 1)
			m.hist(fmt.Sprintf("churn_%d_seconds", i), defaultSecondsBuckets).observe(0.01)
			done.Add(1)
		}
	}()
	// Scrape until the inserter has finished, so scrapes provably overlap
	// the whole insert stream.
	for done.Load() < inserts {
		m.write(io.Discard)
	}
	wg.Wait()
}

func TestMetricsExposition(t *testing.T) {
	m := newMetrics()
	m.add("x_total", `status="ok"`, 3)
	m.gauge("x_depth", func() float64 { return 2.5 })
	h := m.hist("x_seconds", []float64{0.1, 1})
	h.observe(0.05)
	h.observe(0.5)
	h.observe(10)
	var buf bytes.Buffer
	m.write(&buf)
	out := buf.String()
	for _, line := range []string{
		`x_total{status="ok"} 3`,
		"x_depth 2.5",
		`x_seconds_bucket{le="0.1"} 1`,
		`x_seconds_bucket{le="1"} 2`,
		`x_seconds_bucket{le="+Inf"} 3`,
		"x_seconds_count 3",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}

// TestFillWindowCacheTier exercises the second caching tier: the layout
// LRU short-circuits byte-identical payloads, while the fill cache
// accelerates *edited* ones — an ECO resubmission replays every
// unchanged window and the response stays byte-identical to an offline
// uncached run on the same layout.
func TestFillWindowCacheTier(t *testing.T) {
	if testing.Short() {
		t.Skip("engine runs; skipping in -short")
	}
	fc, err := fillcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Disable the layout LRU so resubmissions demonstrably flow through
	// the engine and hit the window tier instead.
	s := New(Config{CacheEntries: -1, FillCache: fc})
	ts := httptest.NewServer(s)
	defer ts.Close()

	parseWC := func(resp *http.Response) (hits, misses int) {
		t.Helper()
		wc := resp.Header.Get("X-Fill-Window-Cache")
		if _, err := fmt.Sscanf(wc, "hits=%d misses=%d", &hits, &misses); err != nil {
			t.Fatalf("X-Fill-Window-Cache = %q: %v", wc, err)
		}
		return
	}

	payload := tinyLayoutBytes()
	resp := postFill(t, ts, "?format=text&oformat=text&workers=2", payload)
	cold := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold: status %d, body %s", resp.StatusCode, cold)
	}
	hits, misses := parseWC(resp)
	if hits != 0 || misses == 0 {
		t.Fatalf("cold run: hits=%d misses=%d", hits, misses)
	}

	// Identical resubmission (layout LRU off): every window replays.
	resp = postFill(t, ts, "?format=text&oformat=text&workers=2", payload)
	warm := readBody(t, resp)
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm response differs from cold")
	}
	hits, misses = parseWC(resp)
	if misses != 0 || hits == 0 {
		t.Fatalf("warm run: hits=%d misses=%d", hits, misses)
	}

	// ECO resubmission: an edited layout still replays its unchanged
	// windows, and the body matches an offline run without any cache.
	lay, err := synth.Generate(synth.DesignTiny())
	if err != nil {
		t.Fatal(err)
	}
	eco, _, err := synth.PerturbECO(lay, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := textfmt.WriteLayout(&buf, eco); err != nil {
		t.Fatal(err)
	}
	resp = postFill(t, ts, "?format=text&oformat=text&workers=2", buf.Bytes())
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eco: status %d, body %s", resp.StatusCode, body)
	}
	hits, misses = parseWC(resp)
	if hits == 0 || misses == 0 {
		t.Fatalf("eco run should mix replays and recomputes: hits=%d misses=%d", hits, misses)
	}
	opts := fill.DefaultOptions()
	opts.Workers = 2
	if want := offlineFill(t, buf.Bytes(), opts, "text"); !bytes.Equal(body, want) {
		t.Fatal("eco response differs from offline uncached reference")
	}

	// The tier shows up on /metrics.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met := string(readBody(t, mresp))
	if !strings.Contains(met, `fillserved_fill_cache_windows_total{result="hit"}`) {
		t.Fatalf("metrics missing fill cache series:\n%s", met)
	}
}
