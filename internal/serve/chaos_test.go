package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"dummyfill/internal/faultinject"
	"dummyfill/internal/fill"
)

// Chaos configuration: seeds chosen so the eight payload variants cover
// every serving-layer fault class deterministically (decisions are pure
// in (seed, site, key)): variants 0-4 run clean, 5 hits an emit fault,
// 6 an ingest fault, 7 a serving-layer panic.
const (
	chaosServeSeed  = 1
	chaosServeRate  = 0.15
	chaosEngineSeed = 42
	chaosVariants   = 8
)

func chaosServeInjector() *faultinject.Injector {
	return faultinject.New(chaosServeSeed).
		WithRate(faultinject.SiteServeIngest, chaosServeRate).
		WithRate(faultinject.SiteServePanic, chaosServeRate).
		WithRate(faultinject.SiteServeEmit, chaosServeRate)
}

// chaosEngineInjector exercises the engine's own degradation paths under
// load: warm-solver failures, sizing panics, corrupted solutions. All
// window-keyed, so output stays deterministic and the offline reference
// (same seed, same rates) matches byte for byte.
func chaosEngineInjector() *faultinject.Injector {
	return faultinject.New(chaosEngineSeed).
		WithRate(faultinject.SiteWarmSolve, 0.3).
		WithRate(faultinject.SitePanic, 0.05).
		WithRate(faultinject.SiteCorrupt, 0.1)
}

func chaosPayload(variant int) []byte {
	return append([]byte(fmt.Sprintf("# chaos variant %d\n", variant)), tinyLayoutBytes()...)
}

func chaosJobKey(payload []byte) uint64 {
	sum := sha256.Sum256(payload)
	return binary.BigEndian.Uint64(sum[:8])
}

// chaosClass predicts how the server must handle a payload, mirroring
// the fault-site precedence in handleFill/runJob (ingest before panic
// before emit).
func chaosClass(in *faultinject.Injector, key uint64) string {
	switch {
	case in.Would(faultinject.SiteServeIngest, key):
		return "ingest"
	case in.Would(faultinject.SiteServePanic, key):
		return "panic"
	case in.Would(faultinject.SiteServeEmit, key):
		return "emit"
	}
	return "ok"
}

// TestChaosServingUnderFaults is the headline chaos run: 24 concurrent
// clients (valid, fault-injected, malformed, and mid-flight-cancelling)
// against a 1-slot/2-seat server with engine- and serving-layer faults
// active. It asserts the failure-first contract: load is shed with 429s,
// fault classes map to their status taxonomy deterministically, every
// 200 body is byte-identical to the offline reference, the server drains
// cleanly, and nothing leaks — goroutines or pooled buffers.
func TestChaosServingUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run; skipping in -short")
	}
	baseGoroutines := runtime.NumGoroutine()

	s := New(Config{Workers: 1, QueueDepth: 2, DefaultDeadline: 2 * time.Minute})
	s.cfg.Options.Inject = chaosEngineInjector()
	serveInj := chaosServeInjector()
	s.SetInjector(serveInj)
	ts := httptest.NewServer(s)

	// Expected per-variant class and, for clean variants, the reference
	// body (engine faults included — same seed, so same degradations).
	classes := make([]string, chaosVariants)
	refs := make([][]byte, chaosVariants)
	refOpts := fill.DefaultOptions()
	refOpts.Workers = 2
	refOpts.Inject = chaosEngineInjector()
	for v := 0; v < chaosVariants; v++ {
		p := chaosPayload(v)
		classes[v] = chaosClass(serveInj, chaosJobKey(p))
		if classes[v] == "ok" {
			refs[v] = offlineFill(t, p, refOpts, "text")
		}
	}
	for _, want := range []string{"ok", "ingest", "panic", "emit"} {
		found := false
		for _, c := range classes {
			found = found || c == want
		}
		if !found {
			t.Fatalf("chaos seed no longer covers class %q; re-probe seeds", want)
		}
	}

	type outcome struct {
		variant int
		kind    string // "status:<code>" or "transport"
		body    []byte
	}
	const clients = 24
	results := make(chan outcome, clients)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			variant := i % chaosVariants
			payload := chaosPayload(variant)
			switch i % 6 {
			case 4: // malformed payload
				variant = -1
				payload = []byte("layout broken\nwire 1 2 3\n")
			case 5: // client gives up mid-flight
				variant = -2
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(5+i)*time.Millisecond)
				defer cancel()
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/fill?format=text&oformat=text&workers=2", bytes.NewReader(payload))
			if err != nil {
				t.Error(err)
				return
			}
			<-start
			resp, err := ts.Client().Do(req)
			if err != nil {
				results <- outcome{variant, "transport", nil}
				return
			}
			results <- outcome{variant, fmt.Sprintf("status:%d", resp.StatusCode), readBody(t, resp)}
		}(i)
	}
	close(start)
	wg.Wait()
	close(results)

	counts := map[string]int{}
	for out := range results {
		counts[out.kind]++
		switch out.kind {
		case "transport":
			if out.variant != -2 {
				t.Errorf("variant %d: unexpected transport error (only cancelled clients may)", out.variant)
			}
			continue
		case "status:200":
			if out.variant < 0 {
				t.Errorf("variant %d: malformed/cancelled client got 200", out.variant)
				continue
			}
			if classes[out.variant] != "ok" {
				t.Errorf("variant %d (class %s): got 200, want a fault", out.variant, classes[out.variant])
				continue
			}
			if !bytes.Equal(out.body, refs[out.variant]) {
				t.Errorf("variant %d: 200 body (%d bytes) differs from offline reference (%d bytes)",
					out.variant, len(out.body), len(refs[out.variant]))
			}
		case "status:400":
			if out.variant >= 0 && classes[out.variant] != "ingest" {
				t.Errorf("variant %d (class %s): unexpected 400: %s", out.variant, classes[out.variant], out.body)
			}
		case "status:500":
			if out.variant >= 0 && classes[out.variant] != "panic" && classes[out.variant] != "emit" {
				t.Errorf("variant %d (class %s): unexpected 500: %s", out.variant, classes[out.variant], out.body)
			}
		case "status:429", "status:503":
			// Load shed or deadline-exhausted — any client may draw these
			// under a saturated 1-slot server.
		default:
			t.Errorf("variant %d: unexpected outcome %s: %s", out.variant, out.kind, out.body)
		}
	}
	t.Logf("chaos outcomes: %v", counts)
	if counts["status:429"] == 0 {
		t.Error("no 429s: 24 clients against 1 slot + 2 seats must shed load")
	}

	// Clean drain: no in-flight jobs remain, then the server refuses work.
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Shutdown(dctx); err != nil {
		t.Fatalf("Shutdown after chaos: %v", err)
	}
	resp := postFill(t, ts, "", []byte("layout x\n"))
	if readBody(t, resp); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status %d, want 503", resp.StatusCode)
	}
	ts.Close()

	if q, f := s.adm.queued.Load(), s.adm.inFlight.Load(); q != 0 || f != 0 {
		t.Errorf("admission counters leaked: queued=%d inFlight=%d", q, f)
	}
	gets, puts := s.PoolBalance()
	if gets == 0 || gets != puts {
		t.Errorf("pooled output buffers leaked: gets=%d puts=%d", gets, puts)
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseGoroutines+3 })
}

// TestChaosDrainHardAbortsStragglers verifies the two-phase shutdown:
// Shutdown with an already-expired context must hard-abort in-flight
// jobs through their contexts, return promptly, and leave no leaks.
func TestChaosDrainHardAbortsStragglers(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run; skipping in -short")
	}
	s := New(Config{Workers: 2, QueueDepth: 4, DefaultDeadline: time.Minute})
	ts := httptest.NewServer(s)

	const clients = 6
	var wg sync.WaitGroup
	codes := make(chan int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postFill(t, ts, "?format=text&oformat=text", chaosPayload(i))
			readBody(t, resp)
			codes <- resp.StatusCode
		}(i)
	}

	// Let jobs get in flight, then demand an instant drain.
	waitFor(t, func() bool { return s.adm.inFlight.Load() > 0 })
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(expired) }()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Shutdown(expired ctx) = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return: hard abort failed to unwind jobs")
	}

	wg.Wait()
	close(codes)
	for code := range codes {
		// Jobs that finished before the drain get 200; aborted ones 503;
		// late arrivals are rejected as draining (503) or shed (429).
		if code != http.StatusOK && code != http.StatusServiceUnavailable && code != http.StatusTooManyRequests {
			t.Errorf("straggler got status %d", code)
		}
	}
	ts.Close()
	if gets, puts := s.PoolBalance(); gets != puts {
		t.Errorf("pooled output buffers leaked across hard abort: gets=%d puts=%d", gets, puts)
	}
	if q, f := s.adm.queued.Load(), s.adm.inFlight.Load(); q != 0 || f != 0 {
		t.Errorf("admission counters leaked: queued=%d inFlight=%d", q, f)
	}
}

// TestChaosCancelledClientsReleaseSlots floods the server with clients
// that all abandon their requests mid-flight and asserts every slot,
// queue seat, and pooled buffer comes back.
func TestChaosCancelledClientsReleaseSlots(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run; skipping in -short")
	}
	s := New(Config{Workers: 1, QueueDepth: 4, DefaultDeadline: time.Minute})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(2+i*2)*time.Millisecond)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/fill?format=text&oformat=text", bytes.NewReader(chaosPayload(i%chaosVariants)))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := ts.Client().Do(req)
			if err == nil {
				readBody(t, resp)
			}
		}(i)
	}
	wg.Wait()

	waitFor(t, func() bool { return s.adm.queued.Load() == 0 && s.adm.inFlight.Load() == 0 })
	gets, puts := s.PoolBalance()
	if gets != puts {
		t.Errorf("pooled output buffers leaked under client cancellation: gets=%d puts=%d", gets, puts)
	}
}
