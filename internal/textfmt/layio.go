package textfmt

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"dummyfill/internal/layio"
)

// FormatName is this package's layio registry key.
const FormatName = "text"

func init() {
	layio.Register(layio.Format{
		Name:   FormatName,
		Detect: sniff,
		NewShapeReader: func(r io.Reader, lim layio.Limits) layio.ShapeReader {
			return NewShapeReader(r, lim)
		},
		NewShapeWriter: newShapeWriter,
		Limits:         DefaultLimits(),
		// The writer side emits the solution grammar (fills only); wires
		// come in through the reader's layout grammar.
		EmitsWires:  false,
		CarriesMeta: true,
	})
}

// sniff recognizes a text layout or solution file: after leading
// whitespace the stream opens with a grammar keyword or a comment.
func sniff(prefix []byte) bool {
	s := bytes.TrimLeft(prefix, " \t\r\n")
	if len(s) == 0 {
		return false
	}
	if s[0] == '#' {
		return true
	}
	for _, kw := range [...]string{"layout", "solution"} {
		if len(s) >= len(kw) {
			if string(s[:len(kw)]) == kw {
				return true
			}
		} else if string(s) == kw[:len(s)] {
			return true
		}
	}
	return false
}

// shapeWriter emits the solution grammar: a header line then one fill
// directive per shape. Layer indices are written as-is (the text format
// is zero-based throughout).
type shapeWriter struct {
	bw  *bufio.Writer
	err error
}

func newShapeWriter(w io.Writer, h layio.Header) (layio.ShapeWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "solution %s\n", sanitizeName(h.Name)); err != nil {
		return nil, err
	}
	return &shapeWriter{bw: bw}, nil
}

func (sw *shapeWriter) Write(s layio.Shape) error {
	if sw.err != nil {
		return sw.err
	}
	if s.Datatype != layio.DatatypeFill {
		sw.err = fmt.Errorf("textfmt: stream writer emits fills only, got datatype %d", s.Datatype)
		return sw.err
	}
	_, err := fmt.Fprintf(sw.bw, "fill %d %d %d %d %d\n",
		s.Layer, s.Rect.XL, s.Rect.YL, s.Rect.XH, s.Rect.YH)
	if err != nil {
		sw.err = err
	}
	return err
}

func (sw *shapeWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	return sw.bw.Flush()
}
