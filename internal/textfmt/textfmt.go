// Package textfmt implements a line-oriented text format for layouts and
// fill solutions — the human-authorable counterpart to the GDSII binary
// path, in the spirit of the plain-text benchmark descriptions DFM
// contests distribute alongside GDSII.
//
// Layout file grammar (one directive per line, '#' comments):
//
//	layout <name>
//	die <xl> <yl> <xh> <yh>
//	window <size>
//	rules <minwidth> <minspace> <minarea> <maxfilldim>
//	layer <index>
//	wire <xl> <yl> <xh> <yh>      # belongs to the last 'layer'
//	region <xl> <yl> <xh> <yh>    # feasible fill region
//
// Solution file grammar:
//
//	solution <name>
//	fill <layer> <xl> <yl> <xh> <yh>
package textfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
)

// WriteLayout emits lay in the text format.
func WriteLayout(w io.Writer, lay *layout.Layout) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "layout %s\n", sanitizeName(lay.Name))
	fmt.Fprintf(bw, "die %d %d %d %d\n", lay.Die.XL, lay.Die.YL, lay.Die.XH, lay.Die.YH)
	fmt.Fprintf(bw, "window %d\n", lay.Window)
	fmt.Fprintf(bw, "rules %d %d %d %d\n",
		lay.Rules.MinWidth, lay.Rules.MinSpace, lay.Rules.MinArea, lay.Rules.MaxFillDim)
	for li, layer := range lay.Layers {
		fmt.Fprintf(bw, "layer %d\n", li)
		for _, r := range layer.Wires {
			fmt.Fprintf(bw, "wire %d %d %d %d\n", r.XL, r.YL, r.XH, r.YH)
		}
		for _, r := range layer.FillRegions {
			fmt.Fprintf(bw, "region %d %d %d %d\n", r.XL, r.YL, r.XH, r.YH)
		}
	}
	return bw.Flush()
}

// ReadLayout parses the text format into a Layout (validated).
func ReadLayout(r io.Reader) (*layout.Layout, error) {
	lay := &layout.Layout{}
	cur := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func(msg string) error {
			return fmt.Errorf("textfmt: line %d: %s: %q", lineNo, msg, line)
		}
		switch fields[0] {
		case "layout":
			if len(fields) != 2 {
				return nil, bad("layout needs a name")
			}
			lay.Name = fields[1]
		case "die":
			r, err := parseRect(fields[1:])
			if err != nil {
				return nil, bad(err.Error())
			}
			lay.Die = r
		case "window":
			if len(fields) != 2 {
				return nil, bad("window needs a size")
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, bad(err.Error())
			}
			lay.Window = v
		case "rules":
			if len(fields) != 5 {
				return nil, bad("rules needs 4 values")
			}
			vals, err := parseInts(fields[1:])
			if err != nil {
				return nil, bad(err.Error())
			}
			lay.Rules = layout.Rules{
				MinWidth: vals[0], MinSpace: vals[1],
				MinArea: vals[2], MaxFillDim: vals[3],
			}
		case "layer":
			if len(fields) != 2 {
				return nil, bad("layer needs an index")
			}
			idx, err := strconv.Atoi(fields[1])
			if err != nil || idx != len(lay.Layers) {
				return nil, bad("layer indices must be sequential from 0")
			}
			lay.Layers = append(lay.Layers, &layout.Layer{})
			cur = idx
		case "wire", "region":
			if cur < 0 {
				return nil, bad("shape before any 'layer' directive")
			}
			r, err := parseRect(fields[1:])
			if err != nil {
				return nil, bad(err.Error())
			}
			if fields[0] == "wire" {
				lay.Layers[cur].Wires = append(lay.Layers[cur].Wires, r)
			} else {
				lay.Layers[cur].FillRegions = append(lay.Layers[cur].FillRegions, r)
			}
		default:
			return nil, bad("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := lay.Validate(); err != nil {
		return nil, fmt.Errorf("textfmt: %v", err)
	}
	return lay, nil
}

// WriteSolution emits sol in the text format.
func WriteSolution(w io.Writer, name string, sol *layout.Solution) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "solution %s\n", sanitizeName(name))
	for _, f := range sol.Fills {
		fmt.Fprintf(bw, "fill %d %d %d %d %d\n", f.Layer, f.Rect.XL, f.Rect.YL, f.Rect.XH, f.Rect.YH)
	}
	return bw.Flush()
}

// ReadSolution parses a text solution.
func ReadSolution(r io.Reader) (name string, sol *layout.Solution, err error) {
	sol = &layout.Solution{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "solution":
			if len(fields) != 2 {
				return "", nil, fmt.Errorf("textfmt: line %d: solution needs a name", lineNo)
			}
			name = fields[1]
		case "fill":
			if len(fields) != 6 {
				return "", nil, fmt.Errorf("textfmt: line %d: fill needs 5 values", lineNo)
			}
			li, err := strconv.Atoi(fields[1])
			if err != nil || li < 0 {
				return "", nil, fmt.Errorf("textfmt: line %d: bad layer %q", lineNo, fields[1])
			}
			r, err := parseRect(fields[2:])
			if err != nil {
				return "", nil, fmt.Errorf("textfmt: line %d: %v", lineNo, err)
			}
			sol.Fills = append(sol.Fills, layout.Fill{Layer: li, Rect: r})
		default:
			return "", nil, fmt.Errorf("textfmt: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	return name, sol, sc.Err()
}

func parseRect(fields []string) (geom.Rect, error) {
	if len(fields) != 4 {
		return geom.Rect{}, fmt.Errorf("rect needs 4 coordinates")
	}
	vals, err := parseInts(fields)
	if err != nil {
		return geom.Rect{}, err
	}
	r := geom.Rect{XL: vals[0], YL: vals[1], XH: vals[2], YH: vals[3]}
	if r.Empty() {
		return geom.Rect{}, fmt.Errorf("degenerate rect %v", r)
	}
	return r, nil
}

func parseInts(fields []string) ([]int64, error) {
	out := make([]int64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out[i] = v
	}
	return out, nil
}

func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}
