// Package textfmt implements a line-oriented text format for layouts and
// fill solutions — the human-authorable counterpart to the GDSII binary
// path, in the spirit of the plain-text benchmark descriptions DFM
// contests distribute alongside GDSII.
//
// Layout file grammar (one directive per line, '#' comments):
//
//	layout <name>
//	die <xl> <yl> <xh> <yh>
//	window <size>
//	rules <minwidth> <minspace> <minarea> <maxfilldim>
//	layer <index>
//	wire <xl> <yl> <xh> <yh>      # belongs to the last 'layer'
//	region <xl> <yl> <xh> <yh>    # feasible fill region
//
// Solution file grammar:
//
//	solution <name>
//	fill <layer> <xl> <yl> <xh> <yh>
package textfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dummyfill/internal/geom"
	"dummyfill/internal/layio"
	"dummyfill/internal/layout"
)

// WriteLayout emits lay in the text format.
func WriteLayout(w io.Writer, lay *layout.Layout) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "layout %s\n", sanitizeName(lay.Name))
	fmt.Fprintf(bw, "die %d %d %d %d\n", lay.Die.XL, lay.Die.YL, lay.Die.XH, lay.Die.YH)
	fmt.Fprintf(bw, "window %d\n", lay.Window)
	fmt.Fprintf(bw, "rules %d %d %d %d\n",
		lay.Rules.MinWidth, lay.Rules.MinSpace, lay.Rules.MinArea, lay.Rules.MaxFillDim)
	for li, layer := range lay.Layers {
		fmt.Fprintf(bw, "layer %d\n", li)
		for _, r := range layer.Wires {
			fmt.Fprintf(bw, "wire %d %d %d %d\n", r.XL, r.YL, r.XH, r.YH)
		}
		for _, r := range layer.FillRegions {
			fmt.Fprintf(bw, "region %d %d %d %d\n", r.XL, r.YL, r.XH, r.YH)
		}
	}
	return bw.Flush()
}

// ReadLayout parses the text format into a Layout (validated). It is a
// materializing convenience over the streaming parser, restricted to the
// layout grammar.
func ReadLayout(r io.Reader) (*layout.Layout, error) {
	sr := newShapeReader(r, Limits{}, modeLayout)
	lay := &layout.Layout{}
	ensure := func(n int) {
		for len(lay.Layers) < n {
			lay.Layers = append(lay.Layers, &layout.Layer{})
		}
	}
	for {
		s, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		ensure(s.Layer + 1)
		if s.Datatype == layio.DatatypeRegion {
			lay.Layers[s.Layer].FillRegions = append(lay.Layers[s.Layer].FillRegions, s.Rect)
		} else {
			lay.Layers[s.Layer].Wires = append(lay.Layers[s.Layer].Wires, s.Rect)
		}
	}
	hdr := sr.Header()
	lay.Name = hdr.Name
	lay.Die = hdr.Die
	lay.Window = hdr.Window
	lay.Rules = hdr.Rules
	ensure(hdr.NumLayers)
	if err := lay.Validate(); err != nil {
		return nil, fmt.Errorf("textfmt: %v", err)
	}
	return lay, nil
}

// WriteSolution emits sol in the text format.
func WriteSolution(w io.Writer, name string, sol *layout.Solution) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "solution %s\n", sanitizeName(name))
	for _, f := range sol.Fills {
		fmt.Fprintf(bw, "fill %d %d %d %d %d\n", f.Layer, f.Rect.XL, f.Rect.YL, f.Rect.XH, f.Rect.YH)
	}
	return bw.Flush()
}

// ReadSolution parses a text solution. It is a materializing convenience
// over the streaming parser, restricted to the solution grammar.
func ReadSolution(r io.Reader) (name string, sol *layout.Solution, err error) {
	sr := newShapeReader(r, Limits{}, modeSolution)
	sol = &layout.Solution{}
	for {
		s, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return "", nil, err
		}
		sol.Fills = append(sol.Fills, layout.Fill{Layer: s.Layer, Rect: s.Rect})
	}
	return sr.Header().Name, sol, nil
}

func parseRect(fields []string) (geom.Rect, error) {
	if len(fields) != 4 {
		return geom.Rect{}, fmt.Errorf("rect needs 4 coordinates")
	}
	vals, err := parseInts(fields)
	if err != nil {
		return geom.Rect{}, err
	}
	r := geom.Rect{XL: vals[0], YL: vals[1], XH: vals[2], YH: vals[3]}
	if r.Empty() {
		return geom.Rect{}, fmt.Errorf("degenerate rect %v", r)
	}
	return r, nil
}

func parseInts(fields []string) ([]int64, error) {
	out := make([]int64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out[i] = v
	}
	return out, nil
}

func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}
