package textfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dummyfill/internal/layio"
	"dummyfill/internal/layout"
)

// Limits bounds the resources a single parse may consume — the shared
// layio ingest-cap type (MaxRecords caps directive lines, MaxShapes the
// wire/region/fill directives among them).
type Limits = layio.Limits

// DefaultLimits returns the caps the package-level readers enforce.
func DefaultLimits() Limits { return layio.DefaultLimits() }

// ErrLimit is the shared layio sentinel wrapped when a limit trips.
var ErrLimit = layio.ErrLimit

// grammarMode restricts which directives a parse accepts: the layout
// grammar, the solution grammar, or (for format-agnostic streaming)
// either.
type grammarMode int

const (
	modeAny grammarMode = iota
	modeLayout
	modeSolution
)

// ShapeReader streams shapes out of a text layout or solution file,
// accepting either grammar: wires and fill regions carry the layer of
// the preceding 'layer' directive, fills their inline layer. Metadata
// directives (layout/die/window/rules) accumulate into Header.
type ShapeReader struct {
	sc   *bufio.Scanner
	lim  Limits
	mode grammarMode
	hdr  layio.Header

	cur    int // last 'layer' index, -1 before any
	lineNo int
	done   bool
	err    error

	records, shapes int64
}

// NewShapeReader opens a streaming reader over r under lim, accepting
// both the layout and solution grammars.
func NewShapeReader(r io.Reader, lim Limits) *ShapeReader {
	return newShapeReader(r, lim, modeAny)
}

func newShapeReader(r io.Reader, lim Limits, mode grammarMode) *ShapeReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	return &ShapeReader{sc: sc, lim: lim, mode: mode, cur: -1}
}

// Header returns the metadata gathered so far; after Next has returned
// io.EOF it is complete.
func (sr *ShapeReader) Header() layio.Header { return sr.hdr }

// Next returns the next shape, io.EOF at end of input, or a terminal
// parse error. Errors are sticky.
func (sr *ShapeReader) Next() (layio.Shape, error) {
	if sr.err != nil {
		return layio.Shape{}, sr.err
	}
	if sr.done {
		return layio.Shape{}, io.EOF
	}
	s, err := sr.advance()
	if err != nil && err != io.EOF {
		sr.err = err
	}
	return s, err
}

func (sr *ShapeReader) advance() (layio.Shape, error) {
	for sr.sc.Scan() {
		sr.lineNo++
		line := strings.TrimSpace(sr.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sr.records++
		if sr.lim.MaxRecords > 0 && sr.records > sr.lim.MaxRecords {
			return layio.Shape{}, fmt.Errorf("textfmt: %w: more than %d records", ErrLimit, sr.lim.MaxRecords)
		}
		fields := strings.Fields(line)
		// Layout-grammar diagnostics quote the whole line; solution-grammar
		// diagnostics predate that style and name only the bad token.
		bad := func(msg string) error {
			return fmt.Errorf("textfmt: line %d: %s: %q", sr.lineNo, msg, line)
		}
		switch fields[0] {
		case "layout":
			if sr.mode == modeSolution {
				return layio.Shape{}, fmt.Errorf("textfmt: line %d: unknown directive %q", sr.lineNo, fields[0])
			}
			if len(fields) != 2 {
				return layio.Shape{}, bad("layout needs a name")
			}
			sr.hdr.Name = fields[1]
			sr.hdr.HasLayoutMeta = true
		case "die":
			if sr.mode == modeSolution {
				return layio.Shape{}, fmt.Errorf("textfmt: line %d: unknown directive %q", sr.lineNo, fields[0])
			}
			r, err := parseRect(fields[1:])
			if err != nil {
				return layio.Shape{}, bad(err.Error())
			}
			sr.hdr.Die = r
		case "window":
			if sr.mode == modeSolution {
				return layio.Shape{}, fmt.Errorf("textfmt: line %d: unknown directive %q", sr.lineNo, fields[0])
			}
			if len(fields) != 2 {
				return layio.Shape{}, bad("window needs a size")
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return layio.Shape{}, bad(err.Error())
			}
			sr.hdr.Window = v
		case "rules":
			if sr.mode == modeSolution {
				return layio.Shape{}, fmt.Errorf("textfmt: line %d: unknown directive %q", sr.lineNo, fields[0])
			}
			if len(fields) != 5 {
				return layio.Shape{}, bad("rules needs 4 values")
			}
			vals, err := parseInts(fields[1:])
			if err != nil {
				return layio.Shape{}, bad(err.Error())
			}
			sr.hdr.Rules = layout.Rules{
				MinWidth: vals[0], MinSpace: vals[1],
				MinArea: vals[2], MaxFillDim: vals[3],
			}
		case "layer":
			if sr.mode == modeSolution {
				return layio.Shape{}, fmt.Errorf("textfmt: line %d: unknown directive %q", sr.lineNo, fields[0])
			}
			if len(fields) != 2 {
				return layio.Shape{}, bad("layer needs an index")
			}
			idx, err := strconv.Atoi(fields[1])
			if err != nil || idx != sr.hdr.NumLayers {
				return layio.Shape{}, bad("layer indices must be sequential from 0")
			}
			sr.cur = idx
			sr.hdr.NumLayers = idx + 1
		case "wire", "region":
			if sr.mode == modeSolution {
				return layio.Shape{}, fmt.Errorf("textfmt: line %d: unknown directive %q", sr.lineNo, fields[0])
			}
			if sr.cur < 0 {
				return layio.Shape{}, bad("shape before any 'layer' directive")
			}
			r, err := parseRect(fields[1:])
			if err != nil {
				return layio.Shape{}, bad(err.Error())
			}
			sr.shapes++
			if sr.lim.MaxShapes > 0 && sr.shapes > sr.lim.MaxShapes {
				return layio.Shape{}, fmt.Errorf("textfmt: %w: more than %d shapes", ErrLimit, sr.lim.MaxShapes)
			}
			dt := layio.DatatypeWire
			if fields[0] == "region" {
				dt = layio.DatatypeRegion
			}
			return layio.Shape{Layer: sr.cur, Datatype: dt, Rect: r}, nil
		case "solution":
			if sr.mode == modeLayout {
				return layio.Shape{}, bad("unknown directive")
			}
			if len(fields) != 2 {
				return layio.Shape{}, fmt.Errorf("textfmt: line %d: solution needs a name", sr.lineNo)
			}
			sr.hdr.Name = fields[1]
		case "fill":
			if sr.mode == modeLayout {
				return layio.Shape{}, bad("unknown directive")
			}
			if len(fields) != 6 {
				return layio.Shape{}, fmt.Errorf("textfmt: line %d: fill needs 5 values", sr.lineNo)
			}
			li, err := strconv.Atoi(fields[1])
			if err != nil || li < 0 {
				return layio.Shape{}, fmt.Errorf("textfmt: line %d: bad layer %q", sr.lineNo, fields[1])
			}
			r, err := parseRect(fields[2:])
			if err != nil {
				return layio.Shape{}, fmt.Errorf("textfmt: line %d: %v", sr.lineNo, err)
			}
			sr.shapes++
			if sr.lim.MaxShapes > 0 && sr.shapes > sr.lim.MaxShapes {
				return layio.Shape{}, fmt.Errorf("textfmt: %w: more than %d shapes", ErrLimit, sr.lim.MaxShapes)
			}
			if li+1 > sr.hdr.NumLayers {
				sr.hdr.NumLayers = li + 1
			}
			return layio.Shape{Layer: li, Datatype: layio.DatatypeFill, Rect: r}, nil
		default:
			if sr.mode == modeSolution {
				return layio.Shape{}, fmt.Errorf("textfmt: line %d: unknown directive %q", sr.lineNo, fields[0])
			}
			return layio.Shape{}, bad("unknown directive")
		}
	}
	if err := sr.sc.Err(); err != nil {
		return layio.Shape{}, err
	}
	sr.done = true
	return layio.Shape{}, io.EOF
}
