package textfmt

import (
	"bytes"
	"strings"
	"testing"

	"dummyfill/internal/fill"
	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
	"dummyfill/internal/synth"
)

func TestLayoutRoundTrip(t *testing.T) {
	src, err := synth.Generate(synth.DesignTiny())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLayout(&buf, src); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLayout(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != src.Name || back.Die != src.Die || back.Window != src.Window || back.Rules != src.Rules {
		t.Fatalf("header mismatch: %+v", back)
	}
	if len(back.Layers) != len(src.Layers) {
		t.Fatalf("layers %d vs %d", len(back.Layers), len(src.Layers))
	}
	for li := range src.Layers {
		if len(back.Layers[li].Wires) != len(src.Layers[li].Wires) {
			t.Fatalf("layer %d wires differ", li)
		}
		for i, w := range src.Layers[li].Wires {
			if back.Layers[li].Wires[i] != w {
				t.Fatalf("layer %d wire %d mismatch", li, i)
			}
		}
		if len(back.Layers[li].FillRegions) != len(src.Layers[li].FillRegions) {
			t.Fatalf("layer %d regions differ", li)
		}
	}
}

func TestSolutionRoundTrip(t *testing.T) {
	src, err := synth.Generate(synth.DesignTiny())
	if err != nil {
		t.Fatal(err)
	}
	e, err := fill.New(src, fill.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSolution(&buf, src.Name, &res.Solution); err != nil {
		t.Fatal(err)
	}
	name, sol, err := ReadSolution(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != src.Name {
		t.Fatalf("name %q", name)
	}
	if len(sol.Fills) != len(res.Solution.Fills) {
		t.Fatalf("fills %d vs %d", len(sol.Fills), len(res.Solution.Fills))
	}
	for i := range sol.Fills {
		if sol.Fills[i] != res.Solution.Fills[i] {
			t.Fatalf("fill %d mismatch", i)
		}
	}
}

func TestReadLayoutHandWritten(t *testing.T) {
	in := `
# a tiny hand-written layout
layout demo
die 0 0 200 200
window 100
rules 8 8 64 80

layer 0
wire 10 10 90 30
region 10 40 190 190

layer 1
region 10 10 190 190
`
	lay, err := ReadLayout(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if lay.Name != "demo" || len(lay.Layers) != 2 {
		t.Fatalf("parsed %+v", lay)
	}
	if lay.Layers[0].Wires[0] != geom.R(10, 10, 90, 30) {
		t.Fatalf("wire parsed wrong: %v", lay.Layers[0].Wires[0])
	}
}

func TestReadLayoutErrors(t *testing.T) {
	cases := []string{
		"wire 0 0 10 10",                        // shape before layer
		"layout x\ndie 0 0 10 10\nlayer 1",      // non-sequential layer
		"layout x\ndie 0 0",                     // bad die
		"layout x\nfrobnicate 1",                // unknown directive
		"layout x\ndie 0 0 100 100\nwindow zap", // bad int
		"layout x\ndie 0 0 100 100\nwindow 50\nrules 8 8 64 0\nlayer 0\nwire 5 5 5 9", // degenerate rect
	}
	for i, c := range cases {
		if _, err := ReadLayout(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d parsed without error", i)
		}
	}
}

func TestReadSolutionErrors(t *testing.T) {
	cases := []string{
		"fill 0 0 0 10",     // missing a coordinate
		"fill -1 0 0 10 10", // negative layer
		"bogus",             // unknown directive
		"fill a 0 0 10 10",  // bad layer
	}
	for i, c := range cases {
		if _, _, err := ReadSolution(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d parsed without error", i)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	var buf bytes.Buffer
	lay := &layout.Layout{
		Name: "has spaces", Die: geom.R(0, 0, 100, 100), Window: 50,
		Rules:  layout.Rules{MinWidth: 4, MinSpace: 4, MinArea: 16},
		Layers: []*layout.Layer{{Wires: []geom.Rect{geom.R(0, 0, 10, 10)}}},
	}
	if err := WriteLayout(&buf, lay); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLayout(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "has_spaces" {
		t.Fatalf("name not sanitized: %q", back.Name)
	}
}
