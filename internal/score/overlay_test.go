package score

import (
	"math/rand"
	"testing"

	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
)

func TestOverlaySingleLayerNoPairs(t *testing.T) {
	lay := &layout.Layout{
		Name: "one", Die: geom.R(0, 0, 100, 100), Window: 50,
		Rules:  layout.Rules{MinWidth: 2, MinSpace: 2, MinArea: 4},
		Layers: []*layout.Layer{{FillRegions: []geom.Rect{geom.R(0, 0, 100, 100)}}},
	}
	sol := &layout.Solution{Fills: []layout.Fill{{Layer: 0, Rect: geom.R(0, 0, 50, 50)}}}
	if ovs := OverlayAreas(lay, sol); len(ovs) != 0 {
		t.Fatalf("single layer must have no overlay pairs: %v", ovs)
	}
	if ov := TotalOverlay(lay, sol); ov != 0 {
		t.Fatalf("total overlay = %d", ov)
	}
}

func TestOverlayEmptySolution(t *testing.T) {
	lay := twoLayerLayout()
	if ov := TotalOverlay(lay, &layout.Solution{}); ov != 0 {
		t.Fatalf("empty solution overlay = %d", ov)
	}
}

// TestOverlayBruteForce cross-checks the indexed overlay computation
// against an O(n²) reference on random solutions.
func TestOverlayBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for it := 0; it < 30; it++ {
		lay := &layout.Layout{
			Name: "bf", Die: geom.R(0, 0, 200, 200), Window: 100,
			Rules: layout.Rules{MinWidth: 2, MinSpace: 2, MinArea: 4},
			Layers: []*layout.Layer{
				{Wires: randDisjointRects(rng, 5)},
				{Wires: randDisjointRects(rng, 5)},
			},
		}
		// Random fills (disjoint per layer to match the DRC contract).
		sol := &layout.Solution{}
		for li := 0; li < 2; li++ {
			for _, r := range randDisjointRects(rng, 6) {
				sol.Fills = append(sol.Fills, layout.Fill{Layer: li, Rect: r})
			}
		}
		got := TotalOverlay(lay, sol)
		want := bruteOverlay(lay, sol)
		if got != want {
			t.Fatalf("it %d: overlay %d, brute %d", it, got, want)
		}
	}
}

// randDisjointRects returns rects on a coarse grid so they never overlap
// within one set.
func randDisjointRects(rng *rand.Rand, n int) []geom.Rect {
	used := map[int]bool{}
	var out []geom.Rect
	for len(out) < n {
		cell := rng.Intn(25) // 5x5 grid of 40x40 cells
		if used[cell] {
			continue
		}
		used[cell] = true
		cx := int64(cell%5) * 40
		cy := int64(cell/5) * 40
		w := 10 + rng.Int63n(28)
		h := 10 + rng.Int63n(28)
		out = append(out, geom.R(cx+1, cy+1, cx+1+w, cy+1+h))
	}
	return out
}

// bruteOverlay computes the §2.1 overlay definition directly: per pair
// (l,l+1), area of fills(l)∩(wires(l+1)∪fills(l+1)) + wires(l)∩fills(l+1).
func bruteOverlay(lay *layout.Layout, sol *layout.Solution) int64 {
	nl := len(lay.Layers)
	per := sol.PerLayer(nl)
	var total int64
	for l := 0; l+1 < nl; l++ {
		upper := append(append([]geom.Rect{}, lay.Layers[l+1].Wires...), per[l+1]...)
		for _, f := range per[l] {
			var pieces []geom.Rect
			for _, u := range upper {
				if c := f.Intersect(u); !c.Empty() {
					pieces = append(pieces, c)
				}
			}
			total += geom.UnionArea(pieces)
		}
		for _, w := range lay.Layers[l].Wires {
			var pieces []geom.Rect
			for _, u := range per[l+1] {
				if c := w.Intersect(u); !c.Empty() {
					pieces = append(pieces, c)
				}
			}
			total += geom.UnionArea(pieces)
		}
	}
	return total
}

func BenchmarkTotalOverlay(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	lay := &layout.Layout{
		Name: "bo", Die: geom.R(0, 0, 10000, 10000), Window: 1000,
		Rules: layout.Rules{MinWidth: 2, MinSpace: 2, MinArea: 4},
		Layers: []*layout.Layer{
			{}, {},
		},
	}
	sol := &layout.Solution{}
	for i := 0; i < 5000; i++ {
		x, y := rng.Int63n(9900), rng.Int63n(9900)
		sol.Fills = append(sol.Fills, layout.Fill{Layer: i % 2, Rect: geom.R(x, y, x+90, y+90)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TotalOverlay(lay, sol)
	}
}
