// Package score implements the ICCAD 2014 contest scoring model the paper
// evaluates against (§2.3, Eqns. 3–4): per-component scores
// f(x) = max(0, 1 − x/β) weighted by α, covering overlay, density
// variation, line hotspots, outlier hotspots, GDSII file size, runtime and
// memory. Testcase Quality excludes the runtime and memory components.
package score

import (
	"fmt"
	"sync"

	"dummyfill/internal/density"
	"dummyfill/internal/geom"
	"dummyfill/internal/grid"
	"dummyfill/internal/layout"
)

// Coefficients are the α/β parameters of one benchmark (one row of
// Table 2). β units: overlay in DBU² (raw area), variation dimensionless,
// line/outlier in density units, size in MiB, runtime in seconds, memory
// in MiB.
type Coefficients struct {
	AlphaOverlay, BetaOverlay float64
	AlphaVar, BetaVar         float64
	AlphaLine, BetaLine       float64
	AlphaOutlier, BetaOutlier float64
	AlphaSize, BetaSize       float64
	AlphaRuntime, BetaRuntime float64
	AlphaMemory, BetaMemory   float64
}

// ContestAlphas returns coefficients with the contest's α weights
// (overlay 0.2, variation 0.2, line 0.2, outlier 0.15, size 0.05,
// runtime 0.15, memory 0.05) and zero βs; callers fill in βs per design.
func ContestAlphas() Coefficients {
	return Coefficients{
		AlphaOverlay: 0.2,
		AlphaVar:     0.2,
		AlphaLine:    0.2,
		AlphaOutlier: 0.15,
		AlphaSize:    0.05,
		AlphaRuntime: 0.15,
		AlphaMemory:  0.05,
	}
}

// PlanWeights extracts the density-planning weights from c.
func (c Coefficients) PlanWeights() density.PlanWeights {
	return density.PlanWeights{
		AlphaVar: c.AlphaVar, BetaVar: c.BetaVar,
		AlphaLine: c.AlphaLine, BetaLine: c.BetaLine,
		AlphaOutlier: c.AlphaOutlier, BetaOutlier: c.BetaOutlier,
	}
}

// F is Eqn. (4): max(0, 1 − x/β). A non-positive β yields 0.
func F(x, beta float64) float64 {
	if beta <= 0 {
		return 0
	}
	if s := 1 - x/beta; s > 0 {
		return s
	}
	return 0
}

// Raw holds the unscored measurements of a solution.
type Raw struct {
	Overlay    int64   // Σ_l ov(l,l+1), DBU²
	SumSigma   float64 // Σ_l σ(l)
	SumLine    float64 // Σ_l lh(l)
	SumOutlier float64 // Σ_l oh(l)
	FileSizeB  int64   // solution GDSII bytes
	RuntimeSec float64
	MemoryMiB  float64
	NumFills   int
}

// Report is a fully scored solution (one row of Table 3).
type Report struct {
	Raw Raw
	// Component scores in [0,1].
	Overlay, Variation, Line, Outlier, Size, Runtime, Memory float64
	// Quality = weighted sum excluding runtime and memory; Total includes
	// them.
	Quality, Total float64
}

// Score converts raw measurements into a report under c.
func Score(raw Raw, c Coefficients) *Report {
	r := &Report{Raw: raw}
	r.Overlay = F(float64(raw.Overlay), c.BetaOverlay)
	r.Variation = F(raw.SumSigma, c.BetaVar)
	r.Line = F(raw.SumLine, c.BetaLine)
	r.Outlier = F(raw.SumSigma*raw.SumOutlier, c.BetaOutlier)
	r.Size = F(float64(raw.FileSizeB)/(1<<20), c.BetaSize)
	r.Runtime = F(raw.RuntimeSec, c.BetaRuntime)
	r.Memory = F(raw.MemoryMiB, c.BetaMemory)
	r.Quality = c.AlphaOverlay*r.Overlay + c.AlphaVar*r.Variation +
		c.AlphaLine*r.Line + c.AlphaOutlier*r.Outlier + c.AlphaSize*r.Size
	r.Total = r.Quality + c.AlphaRuntime*r.Runtime + c.AlphaMemory*r.Memory
	return r
}

// MeasureDensity computes the post-fill density metrics summed over
// layers. Fill shapes are assumed disjoint from wires and from each other
// (guaranteed by construction and checked by the DRC package).
func MeasureDensity(lay *layout.Layout, sol *layout.Solution) (sumSigma, sumLine, sumOutlier float64, maps []*grid.Map, err error) {
	g, err := lay.Grid()
	if err != nil {
		return 0, 0, 0, nil, err
	}
	perLayer := sol.PerLayer(len(lay.Layers))
	nl := len(lay.Layers)
	maps = make([]*grid.Map, nl)
	mets := make([]density.Metrics, nl)
	var wg sync.WaitGroup
	for li := 0; li < nl; li++ {
		wg.Add(1)
		go func(li int) {
			defer wg.Done()
			wire := lay.WireDensityMap(g, li)
			fillArea := grid.AreaMap(g, perLayer[li])
			fill := grid.DensityMap(fillArea)
			total := grid.NewMap(g)
			for k := range total.V {
				total.V[k] = wire.V[k] + fill.V[k]
			}
			mets[li] = density.Measure(total)
			maps[li] = total
		}(li)
	}
	wg.Wait()
	for _, m := range mets {
		sumSigma += m.Sigma
		sumLine += m.Line
		sumOutlier += m.Outlier
	}
	return sumSigma, sumLine, sumOutlier, maps, nil
}

// OverlayAreas computes the fill-induced overlay area between each pair of
// vertically adjacent layers (§2.1): for pair (l, l+1) it counts
// fills(l)∩(wires(l+1)∪fills(l+1)) plus wires(l)∩fills(l+1) — i.e. every
// overlap that involves at least one fill; wire-wire overlap is the
// pre-existing design and is not charged.
func OverlayAreas(lay *layout.Layout, sol *layout.Solution) []int64 {
	nl := len(lay.Layers)
	perLayer := sol.PerLayer(nl)
	if nl < 2 {
		return nil
	}
	out := make([]int64, nl-1)
	var wg sync.WaitGroup
	for l := 0; l+1 < nl; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			out[l] = pairOverlay(lay, perLayer, l)
		}(l)
	}
	wg.Wait()
	return out
}

// pairOverlay computes the overlay area between layer l and l+1.
func pairOverlay(lay *layout.Layout, perLayer [][]geom.Rect, l int) int64 {
	{
		upper := geom.NewIndex(lay.Die, 0)
		for _, w := range lay.Layers[l+1].Wires {
			upper.Insert(w)
		}
		for _, f := range perLayer[l+1] {
			upper.Insert(f)
		}
		var ov int64
		// fills(l) vs everything above.
		for _, f := range perLayer[l] {
			ov += upper.OverlapArea(f)
		}
		// wires(l) vs fills above only.
		fillUpper := geom.NewIndex(lay.Die, 0)
		for _, f := range perLayer[l+1] {
			fillUpper.Insert(f)
		}
		for _, w := range lay.Layers[l].Wires {
			ov += fillUpper.OverlapArea(w)
		}
		return ov
	}
}

// TotalOverlay sums OverlayAreas.
func TotalOverlay(lay *layout.Layout, sol *layout.Solution) int64 {
	var t int64
	for _, v := range OverlayAreas(lay, sol) {
		t += v
	}
	return t
}

// Measure computes the full raw metrics of a solution. fileSize, runtime
// and memory are supplied by the harness (they depend on IO and process
// state, not geometry).
func Measure(lay *layout.Layout, sol *layout.Solution, fileSizeB int64, runtimeSec, memMiB float64) (Raw, error) {
	ss, sl, so, _, err := MeasureDensity(lay, sol)
	if err != nil {
		return Raw{}, err
	}
	return Raw{
		Overlay:    TotalOverlay(lay, sol),
		SumSigma:   ss,
		SumLine:    sl,
		SumOutlier: so,
		FileSizeB:  fileSizeB,
		RuntimeSec: runtimeSec,
		MemoryMiB:  memMiB,
		NumFills:   len(sol.Fills),
	}, nil
}

// String renders a compact one-line summary of the report.
func (r *Report) String() string {
	return fmt.Sprintf("ov=%.3f var=%.3f line=%.3f outl=%.3f size=%.3f rt=%.3f mem=%.3f quality=%.3f total=%.3f",
		r.Overlay, r.Variation, r.Line, r.Outlier, r.Size, r.Runtime, r.Memory, r.Quality, r.Total)
}
