package score

import (
	"math"
	"testing"

	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
)

func TestF(t *testing.T) {
	cases := []struct {
		x, beta, want float64
	}{
		{0, 10, 1},
		{5, 10, 0.5},
		{10, 10, 0},
		{20, 10, 0},   // clamped at 0
		{5, 0, 0},     // degenerate β
		{-5, 10, 1.5}, // negative raw values can exceed 1 (not used in practice)
	}
	for _, c := range cases {
		if got := F(c.x, c.beta); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("F(%v,%v) = %v, want %v", c.x, c.beta, got, c.want)
		}
	}
}

func TestContestAlphasSumToOne(t *testing.T) {
	c := ContestAlphas()
	sum := c.AlphaOverlay + c.AlphaVar + c.AlphaLine + c.AlphaOutlier +
		c.AlphaSize + c.AlphaRuntime + c.AlphaMemory
	if math.Abs(sum-1.0) > 1e-12 {
		t.Fatalf("α sum = %v, want 1.0", sum)
	}
}

func testCoeffs() Coefficients {
	c := ContestAlphas()
	c.BetaOverlay = 1000
	c.BetaVar = 0.5
	c.BetaLine = 10
	c.BetaOutlier = 1
	c.BetaSize = 1
	c.BetaRuntime = 60
	c.BetaMemory = 1024
	return c
}

func TestScoreQualityExcludesRuntimeMemory(t *testing.T) {
	raw := Raw{Overlay: 500, SumSigma: 0.25, SumLine: 5, SumOutlier: 0.5,
		FileSizeB: 1 << 19, RuntimeSec: 30, MemoryMiB: 512}
	c := testCoeffs()
	r := Score(raw, c)
	wantQuality := 0.2*0.5 + 0.2*0.5 + 0.2*0.5 + 0.15*(1-0.25*0.5/1) + 0.05*0.5
	if math.Abs(r.Quality-wantQuality) > 1e-12 {
		t.Fatalf("quality = %v, want %v", r.Quality, wantQuality)
	}
	wantTotal := wantQuality + 0.15*0.5 + 0.05*0.5
	if math.Abs(r.Total-wantTotal) > 1e-12 {
		t.Fatalf("total = %v, want %v", r.Total, wantTotal)
	}
	if r.String() == "" {
		t.Fatal("String must render")
	}
}

// twoLayerLayout builds a deterministic 2-layer layout for overlay and
// density measurement tests.
func twoLayerLayout() *layout.Layout {
	return &layout.Layout{
		Name:   "ov",
		Die:    geom.R(0, 0, 100, 100),
		Window: 50,
		Rules:  layout.Rules{MinWidth: 2, MinSpace: 2, MinArea: 4},
		Layers: []*layout.Layer{
			{
				Wires:       []geom.Rect{geom.R(0, 0, 20, 20)},
				FillRegions: []geom.Rect{geom.R(30, 30, 100, 100)},
			},
			{
				Wires:       []geom.Rect{geom.R(40, 40, 60, 60)},
				FillRegions: []geom.Rect{geom.R(0, 0, 30, 30)},
			},
		},
	}
}

func TestOverlayAreasFillVsWire(t *testing.T) {
	lay := twoLayerLayout()
	// One fill on layer 0 overlapping the layer-1 wire by 10x10.
	sol := &layout.Solution{Fills: []layout.Fill{
		{Layer: 0, Rect: geom.R(30, 30, 50, 50)},
	}}
	ovs := OverlayAreas(lay, sol)
	if len(ovs) != 1 {
		t.Fatalf("expected 1 layer pair, got %d", len(ovs))
	}
	if ovs[0] != 100 {
		t.Fatalf("overlay = %d, want 100", ovs[0])
	}
}

func TestOverlayAreasWireVsFill(t *testing.T) {
	lay := twoLayerLayout()
	// Fill on layer 1 under the layer-0 wire: counted via wires(l)∩fills(l+1).
	sol := &layout.Solution{Fills: []layout.Fill{
		{Layer: 1, Rect: geom.R(10, 10, 30, 30)},
	}}
	if ov := TotalOverlay(lay, sol); ov != 100 {
		t.Fatalf("overlay = %d, want 100", ov)
	}
}

func TestOverlayFillVsFill(t *testing.T) {
	lay := twoLayerLayout()
	sol := &layout.Solution{Fills: []layout.Fill{
		{Layer: 0, Rect: geom.R(30, 30, 40, 40)},
		{Layer: 1, Rect: geom.R(25, 25, 30, 30)}, // no overlap with above fill
		{Layer: 1, Rect: geom.R(0, 0, 5, 5)},     // under layer-0 wire: 25
	}}
	// fill(0) 30..40 vs fills(1): no overlap (25..30 touches only).
	// wires(0) 0..20 vs fill(1) 0..5 → 25.
	if ov := TotalOverlay(lay, sol); ov != 25 {
		t.Fatalf("overlay = %d, want 25", ov)
	}
}

func TestOverlayWireWireNotCharged(t *testing.T) {
	lay := twoLayerLayout()
	lay.Layers[0].Wires = []geom.Rect{geom.R(40, 40, 60, 60)} // directly under layer-1 wire
	lay.Layers[0].FillRegions = nil
	sol := &layout.Solution{}
	if ov := TotalOverlay(lay, sol); ov != 0 {
		t.Fatalf("wire-wire overlap charged: %d", ov)
	}
}

func TestMeasureDensityUniformFill(t *testing.T) {
	lay := &layout.Layout{
		Name:   "uni",
		Die:    geom.R(0, 0, 100, 100),
		Window: 50,
		Rules:  layout.Rules{MinWidth: 2, MinSpace: 2, MinArea: 4},
		Layers: []*layout.Layer{{
			FillRegions: []geom.Rect{geom.R(0, 0, 100, 100)},
		}},
	}
	// Fill each window with the same 10x10 fill → perfectly uniform.
	sol := &layout.Solution{Fills: []layout.Fill{
		{Layer: 0, Rect: geom.R(0, 0, 10, 10)},
		{Layer: 0, Rect: geom.R(50, 0, 60, 10)},
		{Layer: 0, Rect: geom.R(0, 50, 10, 60)},
		{Layer: 0, Rect: geom.R(50, 50, 60, 60)},
	}}
	ss, sl, so, maps, err := MeasureDensity(lay, sol)
	if err != nil {
		t.Fatal(err)
	}
	if ss != 0 || sl != 0 || so != 0 {
		t.Fatalf("uniform fill must have zero metrics: σ=%v lh=%v oh=%v", ss, sl, so)
	}
	if len(maps) != 1 || maps[0].At(0, 0) != 0.04 {
		t.Fatalf("density map wrong: %v", maps[0].V)
	}
}

func TestMeasureCombines(t *testing.T) {
	lay := twoLayerLayout()
	sol := &layout.Solution{Fills: []layout.Fill{
		{Layer: 0, Rect: geom.R(30, 30, 50, 50)},
	}}
	raw, err := Measure(lay, sol, 2048, 1.5, 128)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Overlay != 100 {
		t.Fatalf("overlay = %d", raw.Overlay)
	}
	if raw.FileSizeB != 2048 || raw.RuntimeSec != 1.5 || raw.MemoryMiB != 128 {
		t.Fatalf("pass-through raw fields wrong: %+v", raw)
	}
	if raw.NumFills != 1 {
		t.Fatalf("NumFills = %d", raw.NumFills)
	}
	if raw.SumSigma <= 0 {
		t.Fatal("non-uniform layout must have positive σ")
	}
}

func TestPlanWeightsExtraction(t *testing.T) {
	c := testCoeffs()
	w := c.PlanWeights()
	if w.AlphaVar != c.AlphaVar || w.BetaLine != c.BetaLine || w.AlphaOutlier != c.AlphaOutlier {
		t.Fatalf("plan weights mismatch: %+v", w)
	}
}
