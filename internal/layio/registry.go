package layio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Format describes one registered layout interchange format. Format
// packages register themselves in init (importing the package is enough
// to make it detectable), mirroring image.RegisterFormat.
type Format struct {
	// Name is the registry key ("gds", "oasis", "text").
	Name string
	// Detect reports whether prefix — the first SniffLen bytes of a
	// stream, possibly fewer near EOF — looks like this format.
	Detect func(prefix []byte) bool
	// NewShapeReader opens a streaming reader over r under lim.
	NewShapeReader func(r io.Reader, lim Limits) ShapeReader
	// NewShapeWriter opens a streaming writer on w, emitting the
	// stream preamble from h.
	NewShapeWriter func(w io.Writer, h Header) (ShapeWriter, error)
	// Limits are the format's default ingest caps.
	Limits Limits
	// EmitsWires reports whether full-layout emission in this format
	// carries the wire shapes too (GDSII) or only the fill solution
	// (OASIS and text, whose outputs are contest-style fill decks).
	EmitsWires bool
	// CarriesMeta reports whether streams in this format state their own
	// layout metadata (die, window, fill rules) so ingest need not be
	// given any. True for the text format, false for the binary ones.
	CarriesMeta bool
	// Priority orders Detect: higher-priority formats sniff first.
	// Keyword-text formats with specific magic (DEF) register above the
	// permissive default 0 so a generic text sniffer — which claims any
	// comment-leading stream — cannot shadow them. Ties keep registration
	// order.
	Priority int
}

// SniffLen is how many leading bytes Detect implementations may
// inspect.
const SniffLen = 64

var (
	regMu   sync.RWMutex
	formats []Format
)

// Register adds a format to the registry. It panics on a missing name
// or constructor, or a duplicate name — registration bugs are
// programmer errors caught at init time.
func Register(f Format) {
	if f.Name == "" || f.Detect == nil || f.NewShapeReader == nil || f.NewShapeWriter == nil {
		panic("layio: Register with incomplete Format")
	}
	regMu.Lock()
	defer regMu.Unlock()
	for _, g := range formats {
		if g.Name == f.Name {
			panic("layio: duplicate format " + f.Name)
		}
	}
	formats = append(formats, f)
	sort.SliceStable(formats, func(i, j int) bool {
		return formats[i].Priority > formats[j].Priority
	})
}

// Formats returns the registered format names, sorted.
func Formats() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(formats))
	for i, f := range formats {
		out[i] = f.Name
	}
	sort.Strings(out)
	return out
}

// Lookup returns the format registered under name, or an error wrapping
// ErrUnknownFormat naming the registered alternatives.
func Lookup(name string) (Format, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, f := range formats {
		if f.Name == name {
			return f, nil
		}
	}
	known := make([]string, len(formats))
	for i, f := range formats {
		known[i] = f.Name
	}
	sort.Strings(known)
	return Format{}, fmt.Errorf("layio: %w: %q (have %v)", ErrUnknownFormat, name, known)
}

// Detect sniffs the format of a stream from its opening bytes (pass up
// to SniffLen of them). It returns an error wrapping ErrUnknownFormat
// when no registered format matches.
func Detect(prefix []byte) (Format, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, f := range formats {
		if f.Detect(prefix) {
			return f, nil
		}
	}
	return Format{}, fmt.Errorf("layio: %w (%d registered)", ErrUnknownFormat, len(formats))
}

// DetectReader sniffs r's format without consuming it: it wraps r in a
// bufio.Reader, peeks at most SniffLen bytes, and returns the matched
// format together with the wrapped reader positioned at the start of
// the stream.
func DetectReader(r io.Reader) (Format, *bufio.Reader, error) {
	br := bufio.NewReader(r)
	prefix, err := br.Peek(SniffLen)
	if err != nil && err != io.EOF && err != bufio.ErrBufferFull {
		return Format{}, nil, err
	}
	f, err := Detect(prefix)
	if err != nil {
		return Format{}, nil, err
	}
	return f, br, nil
}
