package layio

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// The layio package itself imports no format package, so this test
// binary's registry holds exactly the fakes registered here.

func fakeFormat(name string, magic byte) Format {
	return Format{
		Name:   name,
		Detect: func(prefix []byte) bool { return len(prefix) > 0 && prefix[0] == magic },
		NewShapeReader: func(r io.Reader, lim Limits) ShapeReader {
			return eofReader{}
		},
		NewShapeWriter: func(w io.Writer, h Header) (ShapeWriter, error) {
			return nopWriter{}, nil
		},
	}
}

type eofReader struct{}

func (eofReader) Next() (Shape, error) { return Shape{}, io.EOF }
func (eofReader) Header() Header       { return Header{} }

type nopWriter struct{}

func (nopWriter) Write(Shape) error { return nil }
func (nopWriter) Close() error      { return nil }

func init() {
	Register(fakeFormat("zzfake", 'Z'))
	Register(fakeFormat("aafake", 'A'))
}

func TestRegisterPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    Format
	}{
		{"missing name", fakeFormat("", 'X')},
		{"missing detect", func() Format { f := fakeFormat("x", 'X'); f.Detect = nil; return f }()},
		{"missing reader", func() Format { f := fakeFormat("x", 'X'); f.NewShapeReader = nil; return f }()},
		{"missing writer", func() Format { f := fakeFormat("x", 'X'); f.NewShapeWriter = nil; return f }()},
		{"duplicate", fakeFormat("zzfake", 'Z')},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%s) did not panic", tc.name)
				}
			}()
			Register(tc.f)
		})
	}
}

func TestFormatsSorted(t *testing.T) {
	got := Formats()
	if len(got) != 2 || got[0] != "aafake" || got[1] != "zzfake" {
		t.Fatalf("Formats() = %v, want [aafake zzfake]", got)
	}
}

func TestLookup(t *testing.T) {
	f, err := Lookup("aafake")
	if err != nil || f.Name != "aafake" {
		t.Fatalf("Lookup(aafake) = %v, %v", f.Name, err)
	}
	_, err = Lookup("nope")
	if !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("Lookup(nope) error %v, want ErrUnknownFormat", err)
	}
	// The message names the alternatives so a CLI user can self-correct.
	for _, want := range []string{"nope", "aafake", "zzfake"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Lookup error %q does not mention %q", err, want)
		}
	}
}

func TestDetect(t *testing.T) {
	f, err := Detect([]byte("Z rest of stream"))
	if err != nil || f.Name != "zzfake" {
		t.Fatalf("Detect(Z...) = %v, %v", f.Name, err)
	}
	if _, err := Detect([]byte("unclaimed")); !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("Detect(unclaimed) error %v, want ErrUnknownFormat", err)
	}
	if _, err := Detect(nil); !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("Detect(nil) error %v, want ErrUnknownFormat", err)
	}
}

func TestDetectReader(t *testing.T) {
	// Shorter than SniffLen: Peek returns io.EOF, which must not abort
	// detection, and the returned reader must replay the whole stream.
	const stream = "A short stream"
	f, br, err := DetectReader(strings.NewReader(stream))
	if err != nil || f.Name != "aafake" {
		t.Fatalf("DetectReader = %v, %v", f.Name, err)
	}
	rest, err := io.ReadAll(br)
	if err != nil || string(rest) != stream {
		t.Fatalf("post-detect read = %q, %v; want full stream", rest, err)
	}

	// A tiny bufio.Reader upstream can surface ErrBufferFull from Peek;
	// DetectReader must tolerate that too.
	small := bufio.NewReaderSize(strings.NewReader(strings.Repeat("Z", 2*SniffLen)), 16)
	if f, _, err := DetectReader(small); err != nil || f.Name != "zzfake" {
		t.Fatalf("DetectReader(small buffer) = %v, %v", f.Name, err)
	}

	if _, _, err := DetectReader(strings.NewReader("???")); !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("DetectReader(unknown) error %v, want ErrUnknownFormat", err)
	}
}

func TestCountWriter(t *testing.T) {
	var cw CountWriter
	for _, chunk := range []string{"abc", "", "defg"} {
		n, err := cw.Write([]byte(chunk))
		if err != nil || n != len(chunk) {
			t.Fatalf("Write(%q) = %d, %v", chunk, n, err)
		}
	}
	if cw.N != 7 {
		t.Fatalf("CountWriter.N = %d, want 7", cw.N)
	}

	n, err := EncodedSize(func(w io.Writer) error {
		_, err := w.Write(bytes.Repeat([]byte{0}, 100))
		return err
	})
	if err != nil || n != 100 {
		t.Fatalf("EncodedSize = %d, %v; want 100", n, err)
	}
	wantErr := errors.New("emit failed")
	if _, err := EncodedSize(func(io.Writer) error { return wantErr }); err != wantErr {
		t.Fatalf("EncodedSize error = %v, want %v", err, wantErr)
	}
}
