// Package layio is the format-neutral streaming layout I/O layer. It
// defines the unit every registered format reads and writes — a
// (layer, datatype, rectangle) Shape — plus the shared ingest resource
// caps, the error taxonomy, and a format registry with magic-byte
// detection, so adding a new interchange format (or a network ingest
// source) is a single Register call instead of another hand-wired
// Read/Write surface.
//
// The design goal is bounded-memory ingest: a ShapeReader yields shapes
// one at a time straight off the wire, so reading a multi-gigabyte
// design never materializes a per-format in-memory library. The
// symmetric ShapeWriter is the unit the streaming fill pipeline emits
// into, window by window.
package layio

import (
	"errors"
	"io"

	"dummyfill/internal/geom"
	"dummyfill/internal/layout"
)

// Datatype conventions shared by every registered format: wires carry
// datatype 0, dummy fills datatype 1 (so fills separate on read-back),
// and feasible fill regions — carried only by formats whose layout
// grammar models them, like textfmt — datatype 2.
const (
	DatatypeWire   = 0
	DatatypeFill   = 1
	DatatypeRegion = 2
)

// Shape is one rectangle with its layer and datatype — the
// format-neutral unit of streaming layout I/O. Layer is the zero-based
// layout layer index; binary formats that number layers from 1 on disk
// (GDSII, OASIS per this repository's convention) translate on the way
// in and out.
type Shape struct {
	Layer    int
	Datatype int
	Rect     geom.Rect
}

// Header carries the stream-level metadata a format surfaces alongside
// its shapes. Only Name is universal; the layout-grammar fields are set
// (with HasLayoutMeta true) by formats that model them, like textfmt.
// A reader's Header is fully populated once Next has returned io.EOF;
// writers consume it to emit their preamble.
type Header struct {
	// Name is the library / cell / layout name.
	Name string
	// Struct selects the GDSII structure name on output (default "TOP");
	// other formats ignore it.
	Struct string
	// Layout-grammar metadata (HasLayoutMeta guards the group).
	Die           geom.Rect
	Window        int64
	Rules         layout.Rules
	NumLayers     int
	HasLayoutMeta bool
	// Sites is the standard-cell placement lattice for formats that carry
	// one (DEF ROW statements). Readers populate it alongside the shape
	// stream; the DEF writer needs it to emit ROWs and to name
	// site-aligned filler masters. Nil for formats without row/site
	// geometry.
	Sites *layout.SiteGrid
	// FillLib names the filler master library used for site-aligned fills
	// on output (DEF); nil uses layout.DefaultFillLib. Formats without
	// master naming ignore it.
	FillLib *layout.FillLib
}

// ErrLimit is wrapped by reader errors when an input stream exceeds a
// configured resource limit; detect it with errors.Is. It guards the
// ingest path against hostile or corrupted streams whose record counts
// would otherwise drive unbounded allocation or parse time.
var ErrLimit = errors.New("resource limit exceeded")

// ErrUnknownFormat is returned by Detect (and wrapped by callers) when
// no registered format claims a stream's opening bytes.
var ErrUnknownFormat = errors.New("unknown layout format")

// Limits bounds the resources a single parse may consume, shared by
// every registered format. A zero field disables that limit, so the
// zero value Limits{} is fully unlimited.
type Limits struct {
	// MaxRecords caps the total number of records (lines, for text
	// formats) in the stream.
	MaxRecords int64
	// MaxShapes caps the total number of shape-bearing elements.
	MaxShapes int64
}

// DefaultLimits returns the caps the default readers enforce: far
// beyond any realistic fill deck, but finite, so a length-bomb stream
// fails cleanly instead of exhausting memory.
func DefaultLimits() Limits {
	return Limits{MaxRecords: 256 << 20, MaxShapes: 64 << 20}
}

// ShapeReader streams shapes out of a layout stream without
// materializing it. Next returns io.EOF after the last shape of a
// well-formed stream; any other error is terminal.
type ShapeReader interface {
	Next() (Shape, error)
	// Header returns the stream metadata gathered so far; it is fully
	// populated once Next has returned io.EOF (name records may appear
	// anywhere in a stream).
	Header() Header
}

// ShapeWriter consumes shapes one at a time. Close finalizes the stream
// (trailer records, buffered-writer flush); a ShapeWriter is not safe
// for concurrent use.
type ShapeWriter interface {
	Write(Shape) error
	Close() error
}

// CountWriter is an io.Writer that only counts: the shared
// EncodedSize building block (file size is a scored objective, so
// every format measures its output without materializing it).
type CountWriter struct{ N int64 }

// Write discards p, accumulating its length.
func (c *CountWriter) Write(p []byte) (int, error) {
	c.N += int64(len(p))
	return len(p), nil
}

// EncodedSize measures the bytes emit would produce.
func EncodedSize(emit func(io.Writer) error) (int64, error) {
	var cw CountWriter
	if err := emit(&cw); err != nil {
		return 0, err
	}
	return cw.N, nil
}
