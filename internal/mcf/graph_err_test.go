package mcf

import (
	"errors"
	"testing"
)

// TestAddArcRejectsMalformedArcs checks the construction API returns
// errors (never panics) for out-of-range endpoints and negative
// capacities, records the first error stickily, and that every solver
// refuses to run a graph with a recorded construction error.
func TestAddArcRejectsMalformedArcs(t *testing.T) {
	g := NewGraph(2)
	if _, err := g.AddArc(0, 5, 1, 0); !errors.Is(err, ErrBadArc) {
		t.Fatalf("out-of-range endpoint: err = %v, want ErrBadArc", err)
	}
	if _, err := g.AddArc(-1, 0, 1, 0); !errors.Is(err, ErrBadArc) {
		t.Fatalf("negative endpoint: err = %v, want ErrBadArc", err)
	}
	if _, err := g.AddArc(0, 1, -3, 0); !errors.Is(err, ErrBadArc) {
		t.Fatalf("negative capacity: err = %v, want ErrBadArc", err)
	}
	if g.M() != 0 {
		t.Fatalf("malformed arcs were stored: M() = %d", g.M())
	}
	if err := g.Err(); !errors.Is(err, ErrBadArc) {
		t.Fatalf("sticky Err() = %v, want ErrBadArc", err)
	}
	var se *SolverError
	if !errors.As(g.Err(), &se) || se.Op != "addarc" {
		t.Fatalf("Err() = %#v, want *SolverError{Op: addarc}", g.Err())
	}

	for _, solver := range []struct {
		name string
		run  func() (*Result, error)
	}{
		{"ssp", g.SolveSSP},
		{"netsimplex", g.SolveNetworkSimplex},
		{"cyclecancel", g.SolveCycleCanceling},
	} {
		if _, err := solver.run(); !errors.Is(err, ErrBadArc) {
			t.Fatalf("%s on poisoned graph: err = %v, want ErrBadArc", solver.name, err)
		}
	}

	// Reset clears the sticky error and the graph becomes usable again.
	g.Reset(2)
	if g.Err() != nil {
		t.Fatalf("Err() after Reset = %v, want nil", g.Err())
	}
	if id, err := g.AddArc(0, 1, 1, 0); err != nil || id != 0 {
		t.Fatalf("AddArc after Reset = (%d, %v), want (0, nil)", id, err)
	}
	g.SetSupply(0, 1)
	g.SetSupply(1, -1)
	if _, err := g.SolveSSP(); err != nil {
		t.Fatalf("solve after Reset: %v", err)
	}
}
