package mcf

import (
	"errors"
	"math/rand"
	"testing"
)

// solvers under test.
var solvers = []struct {
	name  string
	solve func(*Graph) (*Result, error)
}{
	{"SSP", (*Graph).SolveSSP},
	{"NetworkSimplex", (*Graph).SolveNetworkSimplex},
}

func TestTrivialTwoNode(t *testing.T) {
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			g := NewGraph(2)
			g.SetSupply(0, 5)
			g.SetSupply(1, -5)
			g.AddArc(0, 1, 10, 3)
			res, err := s.solve(g)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost != 15 {
				t.Fatalf("cost = %d, want 15", res.Cost)
			}
			if _, err := g.Validate(res); err != nil {
				t.Fatal(err)
			}
			if err := g.VerifyOptimal(res); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			g := NewGraph(4)
			g.SetSupply(0, 10)
			g.SetSupply(3, -10)
			g.AddArc(0, 1, 10, 1)
			g.AddArc(1, 3, 10, 1) // cheap path cost 2
			g.AddArc(0, 2, 10, 5)
			g.AddArc(2, 3, 10, 5) // expensive path cost 10
			res, err := s.solve(g)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost != 20 {
				t.Fatalf("cost = %d, want 20", res.Cost)
			}
			if res.Flow[0] != 10 || res.Flow[2] != 0 {
				t.Fatalf("flow not on cheap path: %v", res.Flow)
			}
		})
	}
}

func TestCapacitySplitsFlow(t *testing.T) {
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			g := NewGraph(4)
			g.SetSupply(0, 10)
			g.SetSupply(3, -10)
			g.AddArc(0, 1, 4, 1)
			g.AddArc(1, 3, 4, 1)
			g.AddArc(0, 2, 10, 5)
			g.AddArc(2, 3, 10, 5)
			res, err := s.solve(g)
			if err != nil {
				t.Fatal(err)
			}
			// 4 units at cost 2, 6 units at cost 10.
			if res.Cost != 4*2+6*10 {
				t.Fatalf("cost = %d, want 68", res.Cost)
			}
			if _, err := g.Validate(res); err != nil {
				t.Fatal(err)
			}
			if err := g.VerifyOptimal(res); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestNegativeCostArc(t *testing.T) {
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			g := NewGraph(3)
			g.SetSupply(0, 1)
			g.SetSupply(2, -1)
			g.AddArc(0, 1, 5, -4)
			g.AddArc(1, 2, 5, 1)
			g.AddArc(0, 2, 5, 0)
			res, err := s.solve(g)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost != -3 {
				t.Fatalf("cost = %d, want -3", res.Cost)
			}
			if err := g.VerifyOptimal(res); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestInfeasibleSupplies(t *testing.T) {
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			g := NewGraph(3)
			g.SetSupply(0, 5)
			g.SetSupply(2, -5)
			g.AddArc(0, 1, 10, 1) // no arc into node 2
			_, err := s.solve(g)
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("err = %v, want ErrInfeasible", err)
			}
		})
	}
}

func TestUnbalancedSupplies(t *testing.T) {
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			g := NewGraph(2)
			g.SetSupply(0, 5)
			g.SetSupply(1, -3)
			g.AddArc(0, 1, 10, 1)
			_, err := s.solve(g)
			if !errors.Is(err, ErrUnbalanced) {
				t.Fatalf("err = %v, want ErrUnbalanced", err)
			}
		})
	}
}

func TestNegativeCycleUnbounded(t *testing.T) {
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			g := NewGraph(3)
			g.SetSupply(0, 1)
			g.SetSupply(2, -1)
			g.AddArc(0, 2, InfCap, 0)
			g.AddArc(0, 1, InfCap, -5)
			g.AddArc(1, 0, InfCap, -5) // negative 2-cycle, infinite capacity
			_, err := s.solve(g)
			if !errors.Is(err, ErrUnbounded) {
				t.Fatalf("err = %v, want ErrUnbounded", err)
			}
		})
	}
}

func TestZeroSupplyWithNegativeArcs(t *testing.T) {
	// Even with all supplies zero, negative arcs with capacity should be
	// saturated by an optimal circulation... our solvers treat the zero
	// flow as optimal only if no negative residual cycle exists. A single
	// negative arc (no cycle) admits no circulation, so zero flow is
	// optimal with cost 0.
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			g := NewGraph(2)
			g.AddArc(0, 1, 10, -7)
			res, err := s.solve(g)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost != 0 {
				t.Fatalf("cost = %d, want 0", res.Cost)
			}
		})
	}
}

func TestPaperFig6Graph(t *testing.T) {
	// The min-cost-flow instance of Fig. 6(a): nodes y0..y4 with supplies
	// (-10, 1, 2, 3, 4); bound arcs between y0 and each variable with
	// costs 0 (lower bound 0) and 10 (upper bound 10); constraint arcs
	// y2->y1 cost -5 and y3->y4 cost -6. The solution graph in Fig. 6(b)
	// has potentials y = (-8, -3, -8, -8, -2), i.e. x = y_i - y_0 =
	// (5, 0, 0, 6).
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			g := NewGraph(5) // 0 = reference, 1..4 = variables
			// Supplies: -c_i for variables, +Σc for reference.
			g.SetSupply(0, 10)
			g.SetSupply(1, -1)
			g.SetSupply(2, -2)
			g.SetSupply(3, -3)
			g.SetSupply(4, -4)
			for i := 1; i <= 4; i++ {
				g.AddArc(0, i, InfCap, 0)  // x_i >= 0
				g.AddArc(i, 0, InfCap, 10) // x_i <= 10
			}
			g.AddArc(2, 1, InfCap, -5) // x1 - x2 >= 5
			g.AddArc(3, 4, InfCap, -6) // x4 - x3 >= 6
			res, err := s.solve(g)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.VerifyOptimal(res); err != nil {
				t.Fatal(err)
			}
			y0 := res.Potential[0]
			want := []int64{5, 0, 0, 6}
			for i, w := range want {
				if got := res.Potential[i+1] - y0; got != w {
					t.Fatalf("x[%d] = %d, want %d (potentials %v)", i+1, got, w, res.Potential)
				}
			}
		})
	}
}

// randomInstance builds a random feasible balanced instance.
func randomInstance(rng *rand.Rand, n, m int) *Graph {
	g := NewGraph(n)
	// Random spanning path with large capacity guarantees feasibility.
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		g.AddArc(perm[i], perm[i+1], 1000, int64(rng.Intn(21)-10))
		g.AddArc(perm[i+1], perm[i], 1000, int64(rng.Intn(21))) // avoid free negative 2-cycles
	}
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		g.AddArc(u, v, int64(rng.Intn(50)), int64(rng.Intn(41)-10))
	}
	// Balanced random supplies.
	var tot int64
	for i := 0; i < n-1; i++ {
		s := int64(rng.Intn(21) - 10)
		g.SetSupply(i, s)
		tot += s
	}
	g.SetSupply(n-1, -tot)
	return g
}

func TestCrossValidateSolvers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for it := 0; it < 200; it++ {
		n := 2 + rng.Intn(8)
		g := randomInstance(rng, n, rng.Intn(12))
		r1, err1 := g.SolveSSP()
		r2, err2 := g.SolveNetworkSimplex()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("it %d: solver disagreement: ssp=%v ns=%v", it, err1, err2)
		}
		if err1 != nil {
			if !errors.Is(err1, ErrUnbounded) && !errors.Is(err1, ErrInfeasible) {
				t.Fatalf("it %d: unexpected error %v", it, err1)
			}
			continue
		}
		if r1.Cost != r2.Cost {
			t.Fatalf("it %d: cost mismatch ssp=%d ns=%d", it, r1.Cost, r2.Cost)
		}
		for name, r := range map[string]*Result{"ssp": r1, "ns": r2} {
			if c, err := g.Validate(r); err != nil || c != r.Cost {
				t.Fatalf("it %d %s: validate: %v (cost %d vs %d)", it, name, err, c, r.Cost)
			}
			if err := g.VerifyOptimal(r); err != nil {
				t.Fatalf("it %d %s: optimality: %v", it, name, err)
			}
		}
	}
}

func TestLargerCrossValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 20; it++ {
		g := randomInstance(rng, 40, 120)
		r1, err1 := g.SolveSSP()
		r2, err2 := g.SolveNetworkSimplex()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("it %d: disagreement: %v vs %v", it, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if r1.Cost != r2.Cost {
			t.Fatalf("it %d: cost mismatch %d vs %d", it, r1.Cost, r2.Cost)
		}
	}
}

func TestValidateRejectsBadFlows(t *testing.T) {
	g := NewGraph(2)
	g.SetSupply(0, 1)
	g.SetSupply(1, -1)
	g.AddArc(0, 1, 5, 1)
	if _, err := g.Validate(&Result{Flow: []int64{9}}); err == nil {
		t.Fatal("over-capacity flow must fail validation")
	}
	if _, err := g.Validate(&Result{Flow: []int64{0}}); err == nil {
		t.Fatal("non-conserving flow must fail validation")
	}
	if _, err := g.Validate(&Result{Flow: []int64{}}); err == nil {
		t.Fatal("wrong-length flow must fail validation")
	}
}

func BenchmarkSSPMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomInstance(rng, 200, 800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.SolveSSP(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetworkSimplexMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomInstance(rng, 200, 800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.SolveNetworkSimplex(); err != nil {
			b.Fatal(err)
		}
	}
}
