package mcf

import (
	"context"
	"math"
)

// SolveSSP solves the min-cost flow problem with the successive shortest
// path algorithm. It is a convenience wrapper over Workspace.SolveSSP with
// a fresh workspace and no warm start: node potentials are initialized
// once with SPFA (queue-based Bellman-Ford, so negative arc costs need no
// pre-transformation), negative residual cycles are cancelled (or reported
// as ErrUnbounded when uncapacitated), and every augmentation then runs
// Dijkstra over reduced costs.
//
// Callers solving many related instances should hold a Workspace and call
// its SolveSSP directly: the arena and potentials carry over, making the
// steady-state solve allocation-free and often Bellman-Ford-free.
func (g *Graph) SolveSSP() (*Result, error) {
	var ws Workspace
	out := &Result{}
	if err := ws.SolveSSP(context.Background(), g, false, out); err != nil {
		return nil, err
	}
	return out, nil
}

// cancelNegativeCycles repeatedly finds a negative-cost cycle in the
// residual graph via Bellman-Ford with parent tracking and saturates it.
// Cycles whose bottleneck is effectively infinite indicate an unbounded
// objective. Shared by the cycle-canceling solver.
func cancelNegativeCycles(n int, first, next, head []int, cost, res []int64) error {
	dist := make([]int64, n)
	parentArc := make([]int, n)
	for {
		for i := range dist {
			dist[i] = 0 // virtual source to all nodes at cost 0
			parentArc[i] = -1
		}
		cycleNode := -1
		for iter := 0; iter < n; iter++ {
			changed := false
			for u := 0; u < n; u++ {
				du := dist[u]
				for e := first[u]; e != -1; e = next[e] {
					if res[e] <= 0 {
						continue
					}
					v := head[e]
					if nd := du + cost[e]; nd < dist[v] {
						dist[v] = nd
						parentArc[v] = e
						changed = true
						if iter == n-1 {
							cycleNode = v
						}
					}
				}
			}
			if !changed {
				return nil // no negative cycle
			}
		}
		if cycleNode == -1 {
			return nil
		}
		// Walk parents n times to land inside the cycle, then extract it.
		v := cycleNode
		for i := 0; i < n; i++ {
			v = head[parentArc[v]^1]
		}
		var cyc []int
		start := v
		for {
			e := parentArc[v]
			cyc = append(cyc, e)
			v = head[e^1]
			if v == start {
				break
			}
		}
		var bottleneck int64 = math.MaxInt64
		for _, e := range cyc {
			if res[e] < bottleneck {
				bottleneck = res[e]
			}
		}
		if bottleneck >= InfCap/2 {
			return ErrUnbounded
		}
		for _, e := range cyc {
			res[e] -= bottleneck
			res[e^1] += bottleneck
		}
	}
}

// residualPotentials runs Bellman-Ford from a virtual source connected to
// all nodes by zero-cost arcs over residual arcs (res > 0) and returns
// -dist as potentials. Shared by the cycle-canceling solver.
func residualPotentials(n int, first, next, head []int, cost, res []int64) ([]int64, error) {
	dist := make([]int64, n)
	// Virtual source: dist starts at 0 for all nodes.
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			du := dist[u]
			for e := first[u]; e != -1; e = next[e] {
				if res[e] <= 0 {
					continue
				}
				v := head[e]
				if nd := du + cost[e]; nd < dist[v] {
					dist[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter == n-1 && changed {
			return nil, ErrUnbounded
		}
	}
	pot := make([]int64, n)
	for i := range pot {
		pot[i] = -dist[i]
	}
	return pot, nil
}
