package mcf

import "math"

// SolveSSP solves the min-cost flow problem with the successive shortest
// path algorithm. Shortest paths are computed with SPFA (queue-based
// Bellman-Ford), so negative arc costs are handled without an initial
// potential transformation. Negative cycles reachable along residual
// capacity are detected and reported as ErrUnbounded.
//
// Complexity is O(F · n · m) worst case where F is the number of
// augmentations; the window-sized instances produced by the fill engine
// (tens to a few thousand nodes) solve in microseconds to milliseconds.
func (g *Graph) SolveSSP() (*Result, error) {
	if err := g.checkBalance(); err != nil {
		return nil, err
	}
	n := len(g.supply)
	m := len(g.arcs)

	// Residual representation: arc i has forward residual res[2i] and
	// backward residual res[2i+1]; costs negate on the backward side.
	res := make([]int64, 2*m)
	head := make([]int, 2*m) // target node
	cost := make([]int64, 2*m)
	first := make([]int, n)
	next := make([]int, 2*m)
	for i := range first {
		first[i] = -1
	}
	for i, a := range g.arcs {
		f, b := 2*i, 2*i+1
		res[f], res[b] = a.Cap, 0
		head[f], head[b] = a.To, a.From
		cost[f], cost[b] = a.Cost, -a.Cost
		next[f] = first[a.From]
		first[a.From] = f
		next[b] = first[a.To]
		first[a.To] = b
	}

	excess := make([]int64, n)
	copy(excess, g.supply)

	// Phase 1: cancel negative residual cycles so the zero-excess part of
	// the flow is optimal; successive shortest-path augmentation then
	// preserves the no-negative-cycle invariant. A negative cycle whose
	// bottleneck is the "infinite" capacity means the problem is unbounded.
	if err := cancelNegativeCycles(n, first, next, head, cost, res); err != nil {
		return nil, err
	}

	dist := make([]int64, n)
	inQueue := make([]bool, n)
	relaxCnt := make([]int, n)
	prevArc := make([]int, n)

	// cancelNegativeCycles removes any negative-cost residual cycle by
	// saturating it; with InfCap arcs a negative cycle means the LP is
	// unbounded, so detect and bail.
	spfa := func(src int) ([]int64, []int, error) {
		for i := range dist {
			dist[i] = math.MaxInt64
			inQueue[i] = false
			relaxCnt[i] = 0
			prevArc[i] = -1
		}
		dist[src] = 0
		queue := make([]int, 0, n)
		queue = append(queue, src)
		inQueue[src] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			inQueue[u] = false
			du := dist[u]
			for e := first[u]; e != -1; e = next[e] {
				if res[e] <= 0 {
					continue
				}
				v := head[e]
				nd := du + cost[e]
				if nd < dist[v] {
					dist[v] = nd
					prevArc[v] = e
					if !inQueue[v] {
						relaxCnt[v]++
						if relaxCnt[v] > n+1 {
							return nil, nil, ErrUnbounded
						}
						queue = append(queue, v)
						inQueue[v] = true
					}
				}
			}
		}
		d := make([]int64, n)
		p := make([]int, n)
		copy(d, dist)
		copy(p, prevArc)
		return d, p, nil
	}

	flowLeft := func() (src int, ok bool) {
		for i, e := range excess {
			if e > 0 {
				return i, true
			}
		}
		return 0, false
	}

	for {
		src, ok := flowLeft()
		if !ok {
			break
		}
		d, p, err := spfa(src)
		if err != nil {
			return nil, err
		}
		// Pick the reachable deficit node with the smallest distance so
		// each augmentation is a true shortest path.
		sink := -1
		for i := range excess {
			if excess[i] < 0 && d[i] < math.MaxInt64 {
				if sink == -1 || d[i] < d[sink] {
					sink = i
				}
			}
		}
		if sink == -1 {
			return nil, ErrInfeasible
		}
		// Bottleneck along the path.
		amt := excess[src]
		if -excess[sink] < amt {
			amt = -excess[sink]
		}
		for v := sink; v != src; {
			e := p[v]
			if res[e] < amt {
				amt = res[e]
			}
			v = head[e^1]
		}
		for v := sink; v != src; {
			e := p[v]
			res[e] -= amt
			res[e^1] += amt
			v = head[e^1]
		}
		excess[src] -= amt
		excess[sink] += amt
	}

	// Extract flows.
	out := &Result{Flow: make([]int64, m)}
	for i, a := range g.arcs {
		out.Flow[i] = a.Cap - res[2*i]
		out.Cost += out.Flow[i] * a.Cost
	}

	// Final potentials: Bellman-Ford over the residual graph from a
	// virtual source reaching every node with zero-cost arcs. For an
	// optimal flow the residual graph has no negative cycles, so dist is
	// well-defined; Potential = -dist satisfies complementary slackness.
	pot, err := residualPotentials(n, first, next, head, cost, res)
	if err != nil {
		return nil, err
	}
	out.Potential = pot
	return out, nil
}

// cancelNegativeCycles repeatedly finds a negative-cost cycle in the
// residual graph via Bellman-Ford with parent tracking and saturates it.
// Cycles whose bottleneck is effectively infinite indicate an unbounded
// objective.
func cancelNegativeCycles(n int, first, next, head []int, cost, res []int64) error {
	dist := make([]int64, n)
	parentArc := make([]int, n)
	for {
		for i := range dist {
			dist[i] = 0 // virtual source to all nodes at cost 0
			parentArc[i] = -1
		}
		cycleNode := -1
		for iter := 0; iter < n; iter++ {
			changed := false
			for u := 0; u < n; u++ {
				du := dist[u]
				for e := first[u]; e != -1; e = next[e] {
					if res[e] <= 0 {
						continue
					}
					v := head[e]
					if nd := du + cost[e]; nd < dist[v] {
						dist[v] = nd
						parentArc[v] = e
						changed = true
						if iter == n-1 {
							cycleNode = v
						}
					}
				}
			}
			if !changed {
				return nil // no negative cycle
			}
		}
		if cycleNode == -1 {
			return nil
		}
		// Walk parents n times to land inside the cycle, then extract it.
		v := cycleNode
		for i := 0; i < n; i++ {
			v = head[parentArc[v]^1]
		}
		var cyc []int
		start := v
		for {
			e := parentArc[v]
			cyc = append(cyc, e)
			v = head[e^1]
			if v == start {
				break
			}
		}
		var bottleneck int64 = math.MaxInt64
		for _, e := range cyc {
			if res[e] < bottleneck {
				bottleneck = res[e]
			}
		}
		if bottleneck >= InfCap/2 {
			return ErrUnbounded
		}
		for _, e := range cyc {
			res[e] -= bottleneck
			res[e^1] += bottleneck
		}
	}
}

// residualPotentials runs Bellman-Ford from a virtual source connected to
// all nodes by zero-cost arcs over residual arcs (res > 0) and returns
// -dist as potentials.
func residualPotentials(n int, first, next, head []int, cost, res []int64) ([]int64, error) {
	dist := make([]int64, n)
	// Virtual source: dist starts at 0 for all nodes.
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			du := dist[u]
			for e := first[u]; e != -1; e = next[e] {
				if res[e] <= 0 {
					continue
				}
				v := head[e]
				if nd := du + cost[e]; nd < dist[v] {
					dist[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
		if iter == n-1 && changed {
			return nil, ErrUnbounded
		}
	}
	pot := make([]int64, n)
	for i := range pot {
		pot[i] = -dist[i]
	}
	return pot, nil
}
