package mcf

import (
	"errors"
	"math/rand"
	"testing"
)

func TestCycleCancelingBasics(t *testing.T) {
	g := NewGraph(4)
	g.SetSupply(0, 10)
	g.SetSupply(3, -10)
	g.AddArc(0, 1, 10, 1)
	g.AddArc(1, 3, 10, 1)
	g.AddArc(0, 2, 10, 5)
	g.AddArc(2, 3, 10, 5)
	res, err := g.SolveCycleCanceling()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 20 {
		t.Fatalf("cost = %d, want 20", res.Cost)
	}
	if _, err := g.Validate(res); err != nil {
		t.Fatal(err)
	}
	if err := g.VerifyOptimal(res); err != nil {
		t.Fatal(err)
	}
}

func TestCycleCancelingInfeasible(t *testing.T) {
	g := NewGraph(3)
	g.SetSupply(0, 5)
	g.SetSupply(2, -5)
	g.AddArc(0, 1, 10, 1)
	if _, err := g.SolveCycleCanceling(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestThreeSolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for it := 0; it < 120; it++ {
		n := 2 + rng.Intn(7)
		g := randomInstance(rng, n, rng.Intn(10))
		r1, e1 := g.SolveSSP()
		r2, e2 := g.SolveNetworkSimplex()
		r3, e3 := g.SolveCycleCanceling()
		if (e1 == nil) != (e2 == nil) || (e1 == nil) != (e3 == nil) {
			t.Fatalf("it %d: feasibility disagreement: %v / %v / %v", it, e1, e2, e3)
		}
		if e1 != nil {
			continue
		}
		if r1.Cost != r2.Cost || r1.Cost != r3.Cost {
			t.Fatalf("it %d: costs differ: %d / %d / %d", it, r1.Cost, r2.Cost, r3.Cost)
		}
		if _, err := g.Validate(r3); err != nil {
			t.Fatalf("it %d: cycle-canceling flow invalid: %v", it, err)
		}
		if err := g.VerifyOptimal(r3); err != nil {
			t.Fatalf("it %d: cycle-canceling not optimal: %v", it, err)
		}
	}
}

func TestSolversAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for it := 0; it < 60; it++ {
		// Very small instances so exhaustive enumeration is tractable.
		n := 2 + rng.Intn(3)
		g := NewGraph(n)
		m := 1 + rng.Intn(4)
		for k := 0; k < m; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			g.AddArc(u, v, int64(rng.Intn(4)), int64(rng.Intn(11)-5))
		}
		var tot int64
		for i := 0; i < n-1; i++ {
			s := int64(rng.Intn(5) - 2)
			g.SetSupply(i, s)
			tot += s
		}
		g.SetSupply(n-1, -tot)

		want, feasible := g.bruteForceMinCost(4)
		res, err := g.SolveSSP()
		if !feasible {
			if err == nil {
				t.Fatalf("it %d: brute says infeasible, SSP cost %d", it, res.Cost)
			}
			continue
		}
		if err != nil {
			// Brute found a feasible flow, solver must too — unless the
			// instance is unbounded (negative cycle), which brute cannot
			// detect. Distinguish: unbounded instances have a negative
			// cycle with capacity.
			if errors.Is(err, ErrUnbounded) {
				continue
			}
			t.Fatalf("it %d: SSP error %v but brute found cost %d", it, err, want)
		}
		if res.Cost != want {
			t.Fatalf("it %d: SSP cost %d, brute %d", it, res.Cost, want)
		}
	}
}

func BenchmarkCycleCancelingMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomInstance(rng, 200, 800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.SolveCycleCanceling(); err != nil {
			b.Fatal(err)
		}
	}
}
