package mcf

import "fmt"

// SolveNetworkSimplex solves the min-cost flow problem with the network
// simplex method (the algorithm family used by LEMON, the solver the paper
// used). It starts from an artificial big-M basis rooted at a virtual
// node, pivots with Dantzig (most negative reduced cost) selection, and
// breaks blocking-arc ties with Cunningham's last-blocking rule to avoid
// cycling on degenerate pivots.
func (g *Graph) SolveNetworkSimplex() (*Result, error) {
	if err := g.checkSolvable(); err != nil {
		return nil, err
	}
	n := len(g.supply)
	m := len(g.arcs)
	root := n
	nn := n + 1 // including root

	// Arc arrays: original arcs 0..m-1, artificial arcs m..m+n-1.
	na := m + n
	from := make([]int, na)
	to := make([]int, na)
	capa := make([]int64, na)
	cost := make([]int64, na)
	flow := make([]int64, na)

	var maxAbs int64 = 1
	for i, a := range g.arcs {
		from[i], to[i], capa[i], cost[i] = a.From, a.To, a.Cap, a.Cost
		c := a.Cost
		if c < 0 {
			c = -c
		}
		if c > maxAbs {
			maxAbs = c
		}
	}
	bigM := maxAbs * int64(nn+1)
	if bigM <= 0 {
		return nil, fmt.Errorf("mcf: big-M overflow (max |cost| %d, %d nodes)", maxAbs, nn)
	}
	for i := 0; i < n; i++ {
		ai := m + i
		capa[ai] = InfCap
		cost[ai] = bigM
		if g.supply[i] >= 0 {
			from[ai], to[ai] = i, root
			flow[ai] = g.supply[i]
		} else {
			from[ai], to[ai] = root, i
			flow[ai] = -g.supply[i]
		}
	}

	// Spanning tree: initially all artificial arcs.
	inTree := make([]bool, na)
	parent := make([]int, nn)
	parentArc := make([]int, nn)
	depth := make([]int, nn)
	pot := make([]int64, nn)
	for i := 0; i < n; i++ {
		inTree[m+i] = true
	}

	// rebuildTree recomputes parent/depth/potential by BFS over tree arcs.
	adj := make([][]int, nn)
	rebuildTree := func() {
		for i := range adj {
			adj[i] = adj[i][:0]
		}
		for a := 0; a < na; a++ {
			if inTree[a] {
				adj[from[a]] = append(adj[from[a]], a)
				adj[to[a]] = append(adj[to[a]], a)
			}
		}
		for i := range parent {
			parent[i] = -1
			parentArc[i] = -1
		}
		parent[root] = root
		depth[root] = 0
		pot[root] = 0
		queue := []int{root}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range adj[u] {
				v := from[a] + to[a] - u
				if parent[v] != -1 {
					continue
				}
				parent[v] = u
				parentArc[v] = a
				depth[v] = depth[u] + 1
				// Reduced cost zero on tree arcs: cost - pot[from] + pot[to] = 0.
				if from[a] == u { // arc u -> v
					pot[v] = pot[u] - cost[a]
				} else { // arc v -> u
					pot[v] = pot[u] + cost[a]
				}
				queue = append(queue, v)
			}
		}
	}
	rebuildTree()

	type cycleArc struct {
		arc     int
		forward bool // true if the arc points along the cycle direction
	}

	maxPivots := 200 * (na + nn) * 8
	for pivot := 0; ; pivot++ {
		if pivot > maxPivots {
			return nil, fmt.Errorf("mcf: network simplex exceeded %d pivots", maxPivots)
		}
		// Entering arc: Dantzig rule.
		enter := -1
		var enterRC int64
		enterUp := true // true: flow increases on entering arc
		for a := 0; a < na; a++ {
			if inTree[a] || capa[a] == 0 {
				continue
			}
			rc := cost[a] - pot[from[a]] + pot[to[a]]
			if flow[a] == 0 && rc < 0 {
				if enter == -1 || rc < enterRC {
					enter, enterRC, enterUp = a, rc, true
				}
			} else if flow[a] == capa[a] && rc > 0 {
				if enter == -1 || -rc < enterRC {
					enter, enterRC, enterUp = a, -rc, false
				}
			}
		}
		if enter == -1 {
			break // optimal
		}

		// Build the pivot cycle. Cycle direction follows the entering arc
		// from tail to head when increasing (or head to tail when
		// decreasing flow from the upper bound).
		u, v := from[enter], to[enter]
		if !enterUp {
			u, v = v, u
		}
		// Find LCA.
		uu, vv := u, v
		for depth[uu] > depth[vv] {
			uu = parent[uu]
		}
		for depth[vv] > depth[uu] {
			vv = parent[vv]
		}
		for uu != vv {
			uu = parent[uu]
			vv = parent[vv]
		}
		apex := uu

		// Cycle arcs in direction order starting at the apex:
		// apex -> u (down the u side), entering arc, v -> apex (up).
		var cyc []cycleArc
		var uSide []cycleArc
		for x := u; x != apex; x = parent[x] {
			a := parentArc[x]
			// Traversal here walks x up toward apex, i.e. against the
			// cycle direction on the u side; the cycle moves apex->x.
			fwd := to[a] == x // arc points parent->x, same as cycle direction
			uSide = append(uSide, cycleArc{a, fwd})
		}
		for i := len(uSide) - 1; i >= 0; i-- {
			cyc = append(cyc, uSide[i])
		}
		cyc = append(cyc, cycleArc{enter, enterUp})
		for x := v; x != apex; x = parent[x] {
			a := parentArc[x]
			fwd := from[a] == x // arc points x->parent, same as cycle direction
			cyc = append(cyc, cycleArc{a, fwd})
		}

		// Max augmentation Δ = min residual along the cycle direction;
		// leaving arc = LAST blocking arc in direction order (Cunningham).
		var delta int64 = InfCap
		leaveIdx := -1
		for i, ca := range cyc {
			var r int64
			if ca.forward {
				r = capa[ca.arc] - flow[ca.arc]
			} else {
				r = flow[ca.arc]
			}
			if ca.arc == enter && !enterUp {
				// Entering at upper bound: flow decreases by Δ, residual
				// is the current flow; direction bookkeeping above already
				// handles this because forward==enterUp flips with u,v.
				r = flow[ca.arc]
			}
			if r < delta {
				delta = r
				leaveIdx = i
			} else if r == delta {
				leaveIdx = i // last blocking
			}
		}
		if delta >= InfCap/2 {
			return nil, ErrUnbounded
		}
		// Apply Δ around the cycle.
		if delta > 0 {
			for _, ca := range cyc {
				if ca.forward {
					flow[ca.arc] += delta
				} else {
					flow[ca.arc] -= delta
				}
			}
		}
		leave := cyc[leaveIdx].arc
		if leave != enter {
			inTree[leave] = false
			inTree[enter] = true
			rebuildTree()
		}
		// If leave == enter the arc goes from one bound to the other and
		// the tree is unchanged.
	}

	// Feasibility: artificial arcs must be empty.
	for i := 0; i < n; i++ {
		if flow[m+i] != 0 {
			return nil, ErrInfeasible
		}
	}
	out := &Result{Flow: make([]int64, m), Potential: make([]int64, n)}
	for i := 0; i < m; i++ {
		out.Flow[i] = flow[i]
		out.Cost += flow[i] * cost[i]
	}
	copy(out.Potential, pot[:n])
	return out, nil
}
