package mcf

import "math"

// SolveCycleCanceling solves the min-cost flow problem with Klein's
// negative-cycle-canceling algorithm: first establish any feasible flow
// (cost-blind augmentation), then repeatedly cancel negative-cost
// residual cycles until none remain. It is asymptotically the slowest of
// the three solvers but structurally independent of both SSP and network
// simplex, which makes it a valuable cross-validation oracle.
func (g *Graph) SolveCycleCanceling() (*Result, error) {
	if err := g.checkSolvable(); err != nil {
		return nil, err
	}
	n := len(g.supply)
	m := len(g.arcs)

	res := make([]int64, 2*m)
	head := make([]int, 2*m)
	cost := make([]int64, 2*m)
	first := make([]int, n)
	next := make([]int, 2*m)
	for i := range first {
		first[i] = -1
	}
	for i, a := range g.arcs {
		f, b := 2*i, 2*i+1
		res[f], res[b] = a.Cap, 0
		head[f], head[b] = a.To, a.From
		cost[f], cost[b] = a.Cost, -a.Cost
		next[f] = first[a.From]
		first[a.From] = f
		next[b] = first[a.To]
		first[a.To] = b
	}

	// Phase 1: feasible flow via BFS augmentation from excess nodes to
	// deficit nodes, ignoring costs.
	excess := make([]int64, n)
	copy(excess, g.supply)
	parent := make([]int, n)
	for {
		src := -1
		for i, e := range excess {
			if e > 0 {
				src = i
				break
			}
		}
		if src == -1 {
			break
		}
		// BFS over residual arcs.
		for i := range parent {
			parent[i] = -1
		}
		queue := []int{src}
		parent[src] = -2
		sink := -1
		for len(queue) > 0 && sink == -1 {
			u := queue[0]
			queue = queue[1:]
			for e := first[u]; e != -1; e = next[e] {
				if res[e] <= 0 {
					continue
				}
				v := head[e]
				if parent[v] != -1 {
					continue
				}
				parent[v] = e
				if excess[v] < 0 {
					sink = v
					break
				}
				queue = append(queue, v)
			}
		}
		if sink == -1 {
			return nil, ErrInfeasible
		}
		amt := excess[src]
		if -excess[sink] < amt {
			amt = -excess[sink]
		}
		for v := sink; v != src; {
			e := parent[v]
			if res[e] < amt {
				amt = res[e]
			}
			v = head[e^1]
		}
		for v := sink; v != src; {
			e := parent[v]
			res[e] -= amt
			res[e^1] += amt
			v = head[e^1]
		}
		excess[src] -= amt
		excess[sink] += amt
	}

	// Phase 2: cancel negative residual cycles (reuses the SSP helper).
	if err := cancelNegativeCycles(n, first, next, head, cost, res); err != nil {
		return nil, err
	}

	out := &Result{Flow: make([]int64, m)}
	for i, a := range g.arcs {
		out.Flow[i] = a.Cap - res[2*i]
		out.Cost += out.Flow[i] * a.Cost
	}
	pot, err := residualPotentials(n, first, next, head, cost, res)
	if err != nil {
		return nil, err
	}
	out.Potential = pot
	return out, nil
}

// bruteForceMinCost exhaustively enumerates integer flows for tiny
// instances (every arc capacity and every |supply| small). Exposed for
// tests only via the mcf package's internal test file; kept here so the
// enumeration logic stays close to the data structures it validates.
func (g *Graph) bruteForceMinCost(maxFlowPerArc int64) (int64, bool) {
	m := len(g.arcs)
	flow := make([]int64, m)
	best := int64(math.MaxInt64)
	found := false
	var rec func(i int)
	rec = func(i int) {
		if i == m {
			imb := make([]int64, len(g.supply))
			copy(imb, g.supply)
			var c int64
			for k, a := range g.arcs {
				imb[a.From] -= flow[k]
				imb[a.To] += flow[k]
				c += flow[k] * a.Cost
			}
			for _, v := range imb {
				if v != 0 {
					return
				}
			}
			if c < best {
				best = c
				found = true
			}
			return
		}
		limit := g.arcs[i].Cap
		if limit > maxFlowPerArc {
			limit = maxFlowPerArc
		}
		for f := int64(0); f <= limit; f++ {
			flow[i] = f
			rec(i + 1)
		}
		flow[i] = 0
	}
	rec(0)
	return best, found
}
