// Package mcf implements minimum-cost flow on directed graphs with node
// supplies, arc capacities and (possibly negative) arc costs. It provides
// two independent solvers — successive shortest paths (SPFA-based, robust
// to negative costs) and network simplex (the algorithm family used by
// LEMON, which the paper relied on) — plus solution validation helpers.
//
// It is the substrate for the dual min-cost-flow formulation (Eqn. 15/16
// of the paper) used to size dummy fills.
package mcf

import (
	"errors"
	"fmt"
	"math"
)

// InfCap is the capacity used for uncapacitated arcs. It is large enough
// to never bind yet leaves headroom against overflow in cost arithmetic.
const InfCap int64 = math.MaxInt64 / 8

// Arc is a directed arc with capacity and per-unit cost.
type Arc struct {
	From, To  int
	Cap, Cost int64
}

// Graph is a min-cost-flow problem instance. Node supplies must balance
// (sum to zero) for a feasible flow to exist. The zero value is an empty
// graph; add nodes with AddNode.
type Graph struct {
	supply []int64
	arcs   []Arc
	err    error // first construction error; sticky until Reset
}

// NewGraph returns a graph with n nodes and zero supplies.
func NewGraph(n int) *Graph {
	return &Graph{supply: make([]int64, n)}
}

// N returns the node count.
func (g *Graph) N() int { return len(g.supply) }

// M returns the arc count.
func (g *Graph) M() int { return len(g.arcs) }

// Reset reinitializes g to n nodes with zero supplies and no arcs,
// reusing the underlying storage. It lets a caller that rebuilds similar
// problems repeatedly (e.g. one per sizing pass) keep a graph arena alive
// instead of allocating a fresh Graph each time.
func (g *Graph) Reset(n int) {
	if cap(g.supply) < n {
		g.supply = make([]int64, n)
	} else {
		g.supply = g.supply[:n]
		for i := range g.supply {
			g.supply[i] = 0
		}
	}
	g.arcs = g.arcs[:0]
	g.err = nil
}

// AddNode appends a node with zero supply and returns its id.
func (g *Graph) AddNode() int {
	g.supply = append(g.supply, 0)
	return len(g.supply) - 1
}

// SetSupply sets the supply of node i (negative = demand).
func (g *Graph) SetSupply(i int, s int64) { g.supply[i] = s }

// AddSupply adds s to the supply of node i.
func (g *Graph) AddSupply(i int, s int64) { g.supply[i] += s }

// Supply returns the supply of node i.
func (g *Graph) Supply(i int) int64 { return g.supply[i] }

// AddArc appends an arc and returns its id. Capacity must be >= 0 and
// both endpoints must be existing nodes; a malformed arc is rejected with
// an error wrapping ErrBadArc instead of being stored. The error is also
// recorded on the graph (see Err), so callers building many arcs may
// ignore the per-call error and check once before solving — the solvers
// refuse to run a graph with a recorded construction error. That sticky
// record is why the errsink annotation below holds: a dropped per-call
// error is never lost, it resurfaces from the first Solve attempt.
//
//filllint:errsink
func (g *Graph) AddArc(from, to int, cap, cost int64) (int, error) {
	if from < 0 || from >= len(g.supply) || to < 0 || to >= len(g.supply) {
		return -1, g.fail(&SolverError{Op: "addarc", Err: fmt.Errorf("%w: endpoint out of range (%d,%d) with %d nodes", ErrBadArc, from, to, len(g.supply))})
	}
	if cap < 0 {
		return -1, g.fail(&SolverError{Op: "addarc", Err: fmt.Errorf("%w: negative capacity %d on (%d,%d)", ErrBadArc, cap, from, to)})
	}
	g.arcs = append(g.arcs, Arc{from, to, cap, cost})
	return len(g.arcs) - 1, nil
}

// fail records the first construction error and returns err unchanged.
func (g *Graph) fail(err error) error {
	if g.err == nil {
		g.err = err
	}
	return err
}

// Err returns the first construction error recorded on the graph (nil if
// the graph is well-formed).
func (g *Graph) Err() error { return g.err }

// Arc returns the i-th arc.
func (g *Graph) Arc(i int) Arc { return g.arcs[i] }

// Result holds a min-cost-flow solution.
type Result struct {
	// Flow[i] is the flow on arc i.
	Flow []int64
	// Potential[i] is an optimal node potential (dual variable) such that
	// reduced costs Cost - Pot[from] + Pot[to] are >= 0 on residual arcs.
	Potential []int64
	// Cost is the total cost sum(Flow[i]*Cost[i]).
	Cost int64
}

// Errors returned by the solvers. Together with SolverError they form the
// failure taxonomy callers dispatch on: ErrBadArc is a construction bug in
// the caller, ErrUnbalanced/ErrInfeasible/ErrUnbounded describe the
// instance, and anything else is an internal solver failure.
var (
	ErrUnbalanced = errors.New("mcf: node supplies do not sum to zero")
	ErrInfeasible = errors.New("mcf: no feasible flow")
	ErrUnbounded  = errors.New("mcf: negative-cost cycle with unbounded capacity")
	ErrBadArc     = errors.New("mcf: invalid arc")
)

// SolverError wraps a min-cost-flow failure with the operation that
// produced it. It unwraps to one of the sentinel errors above (or to a
// context error when a solve was cancelled), so errors.Is dispatch works
// through it.
type SolverError struct {
	Op  string // "addarc", "ssp", "netsimplex", "cyclecancel"
	Err error
}

func (e *SolverError) Error() string { return fmt.Sprintf("mcf: %s: %v", e.Op, e.Err) }
func (e *SolverError) Unwrap() error { return e.Err }

// checkSolvable verifies the graph carries no construction error and that
// supplies sum to zero.
func (g *Graph) checkSolvable() error {
	if g.err != nil {
		return g.err
	}
	var s int64
	for _, v := range g.supply {
		s += v
	}
	if s != 0 {
		return fmt.Errorf("%w (sum=%d)", ErrUnbalanced, s)
	}
	return nil
}

// Validate checks that res is a feasible flow for g and returns its cost.
// It verifies capacity bounds and flow conservation.
func (g *Graph) Validate(res *Result) (int64, error) {
	if len(res.Flow) != len(g.arcs) {
		return 0, fmt.Errorf("mcf: flow vector length %d, want %d", len(res.Flow), len(g.arcs))
	}
	imb := make([]int64, len(g.supply))
	copy(imb, g.supply)
	var cost int64
	for i, a := range g.arcs {
		f := res.Flow[i]
		if f < 0 || f > a.Cap {
			return 0, fmt.Errorf("mcf: arc %d flow %d outside [0,%d]", i, f, a.Cap)
		}
		imb[a.From] -= f
		imb[a.To] += f
		cost += f * a.Cost
	}
	for i, v := range imb {
		if v != 0 {
			return 0, fmt.Errorf("mcf: node %d conservation violated by %d", i, v)
		}
	}
	return cost, nil
}

// VerifyOptimal checks complementary slackness of res against its own
// potentials: every residual arc must have non-negative reduced cost.
func (g *Graph) VerifyOptimal(res *Result) error {
	if len(res.Potential) != len(g.supply) {
		return fmt.Errorf("mcf: potential vector length %d, want %d", len(res.Potential), len(g.supply))
	}
	for i, a := range g.arcs {
		rc := a.Cost - res.Potential[a.From] + res.Potential[a.To]
		if res.Flow[i] < a.Cap && rc < 0 {
			return fmt.Errorf("mcf: arc %d (%d->%d) has residual capacity and reduced cost %d < 0", i, a.From, a.To, rc)
		}
		if res.Flow[i] > 0 && rc > 0 {
			return fmt.Errorf("mcf: arc %d (%d->%d) carries flow with reduced cost %d > 0", i, a.From, a.To, rc)
		}
	}
	return nil
}
