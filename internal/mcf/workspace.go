package mcf

import (
	"context"
	"math"
)

// Workspace is a reusable min-cost-flow solver state: the residual-graph
// arena, the shortest-path buffers and the node potentials of the last
// solve. Reusing one Workspace across many solves of similarly-sized
// problems keeps the hot path allocation-free, and consecutive solves of
// near-identical instances can warm-start from the carried potentials
// (skipping the Bellman-Ford initialization entirely when they are still
// dual-feasible).
//
// A Workspace is not safe for concurrent use; give each goroutine its own.
// The zero value is ready to use.
type Workspace struct {
	// Residual representation: arc i of the input graph becomes forward
	// residual res[2i] and backward residual res[2i+1]; costs negate on the
	// backward side, head[e] is the target node and e^1 the reverse arc.
	res, cost  []int64
	head, next []int
	first      []int

	excess  []int64
	dist    []int64
	pot     []int64 // potentials carried across solves (warm-start seed)
	prevArc []int

	// SPFA state.
	inQueue  []bool
	relaxCnt []int32
	queue    []int

	// Dijkstra state.
	heap    []heapEntry
	visited []bool
}

type heapEntry struct {
	dist int64
	node int
}

// grow (re)sizes the workspace buffers for n nodes and m arcs without
// shrinking capacity.
func (ws *Workspace) grow(n, m int) {
	ws.res = growI64(ws.res, 2*m)
	ws.cost = growI64(ws.cost, 2*m)
	ws.head = growInt(ws.head, 2*m)
	ws.next = growInt(ws.next, 2*m)
	ws.first = growInt(ws.first, n)
	ws.excess = growI64(ws.excess, n)
	ws.dist = growI64(ws.dist, n)
	ws.prevArc = growInt(ws.prevArc, n)
	if cap(ws.inQueue) < n {
		ws.inQueue = make([]bool, n)
	}
	ws.inQueue = ws.inQueue[:n]
	if cap(ws.relaxCnt) < n {
		ws.relaxCnt = make([]int32, n)
	}
	ws.relaxCnt = ws.relaxCnt[:n]
	if cap(ws.visited) < n {
		ws.visited = make([]bool, n)
	}
	ws.visited = ws.visited[:n]
	ws.queue = ws.queue[:0]
	ws.heap = ws.heap[:0]
}

func growI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// ctxCheckStride is how many augmentations (or SPFA scan rounds) pass
// between cancellation checks — frequent enough that a cancelled solve
// returns within microseconds, rare enough to stay off the profile.
const ctxCheckStride = 64

// SolveSSP solves g by successive shortest paths into out, reusing the
// workspace buffers. When warm is true and the potentials left by the
// previous solve are still dual-feasible for g (checked in O(m)), the
// Bellman-Ford initialization is skipped and every augmentation runs
// Dijkstra on reduced costs directly.
//
// The context is honoured mid-solve: cancellation is checked every
// ctxCheckStride augmentations, so a runaway instance can be abandoned
// promptly. A cancelled solve returns a SolverError unwrapping to
// ctx.Err() and leaves no usable warm-start state.
//
// out's slices are resized in place, so a caller that reuses one Result
// across solves performs no allocations in steady state.
func (ws *Workspace) SolveSSP(ctx context.Context, g *Graph, warm bool, out *Result) error {
	if err := g.checkSolvable(); err != nil {
		return err
	}
	n := len(g.supply)
	m := len(g.arcs)
	ws.grow(n, m)

	for i := 0; i < n; i++ {
		ws.first[i] = -1
	}
	for i, a := range g.arcs {
		f, b := 2*i, 2*i+1
		ws.res[f], ws.res[b] = a.Cap, 0
		ws.head[f], ws.head[b] = a.To, a.From
		ws.cost[f], ws.cost[b] = a.Cost, -a.Cost
		ws.next[f] = ws.first[a.From]
		ws.first[a.From] = f
		ws.next[b] = ws.first[a.To]
		ws.first[a.To] = b
	}
	copy(ws.excess, g.supply)

	// Potential initialization. A warm seed is usable iff every residual
	// arc has non-negative reduced cost under it (the flow is zero, so the
	// residual arcs are exactly the forward arcs). Otherwise fall back to
	// Bellman-Ford from a virtual source, cancelling any finite negative
	// cycles on the way (an InfCap-bottleneck cycle means unbounded).
	warmOK := warm && len(ws.pot) == n
	if warmOK {
		for i, a := range g.arcs {
			if ws.res[2*i] > 0 && a.Cost-ws.pot[a.From]+ws.pot[a.To] < 0 {
				warmOK = false
				break
			}
		}
	}
	if !warmOK {
		ws.pot = growI64(ws.pot, n)
		if err := ws.initPotentials(ctx, n); err != nil {
			return err
		}
	} else {
		ws.pot = ws.pot[:n]
	}

	// Successive shortest paths: repeatedly send flow from an excess node
	// to its nearest deficit node along a shortest path in reduced costs.
	src := 0
	augment := 0
	for {
		for src < n && ws.excess[src] <= 0 {
			src++
		}
		if src == n {
			break
		}
		if augment++; augment%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return &SolverError{Op: "ssp", Err: err}
			}
		}
		sink, err := ws.dijkstra(n, src)
		if err != nil {
			return err
		}
		dt := ws.dist[sink]
		// Potential update keeps all residual reduced costs non-negative
		// and zeroes them along the augmenting path.
		for v := 0; v < n; v++ {
			d := ws.dist[v]
			if d > dt {
				d = dt
			}
			ws.pot[v] -= d
		}
		// Bottleneck along the path, then augment.
		amt := ws.excess[src]
		if -ws.excess[sink] < amt {
			amt = -ws.excess[sink]
		}
		for v := sink; v != src; {
			e := ws.prevArc[v]
			if ws.res[e] < amt {
				amt = ws.res[e]
			}
			v = ws.head[e^1]
		}
		for v := sink; v != src; {
			e := ws.prevArc[v]
			ws.res[e] -= amt
			ws.res[e^1] += amt
			v = ws.head[e^1]
		}
		ws.excess[src] -= amt
		ws.excess[sink] += amt
	}

	// Extract flows and potentials into out, reusing its slices.
	out.Flow = growI64(out.Flow, m)
	out.Potential = growI64(out.Potential, n)
	out.Cost = 0
	for i, a := range g.arcs {
		f := a.Cap - ws.res[2*i]
		out.Flow[i] = f
		out.Cost += f * a.Cost
	}
	copy(out.Potential, ws.pot)
	return nil
}

// Potentials returns the node potentials carried from the last solve (the
// warm-start seed). The slice aliases workspace state; do not modify.
func (ws *Workspace) Potentials() []int64 { return ws.pot }

// initPotentials runs SPFA from a virtual source reaching every node at
// distance zero over the (all-forward) residual graph and sets pot = -dist.
// Negative cycles are detected via relaxation counting; finite-capacity
// cycles are cancelled and the search restarts, infinite ones are reported
// as ErrUnbounded.
func (ws *Workspace) initPotentials(ctx context.Context, n int) error {
restart:
	for i := 0; i < n; i++ {
		ws.dist[i] = 0
		ws.inQueue[i] = true
		ws.relaxCnt[i] = 0
		ws.prevArc[i] = -1
	}
	ws.queue = ws.queue[:0]
	for i := 0; i < n; i++ {
		ws.queue = append(ws.queue, i)
	}
	for qi := 0; qi < len(ws.queue); qi++ {
		if qi%(ctxCheckStride*64) == 0 && qi > 0 {
			if err := ctx.Err(); err != nil {
				return &SolverError{Op: "ssp", Err: err}
			}
		}
		u := ws.queue[qi]
		ws.inQueue[u] = false
		du := ws.dist[u]
		for e := ws.first[u]; e != -1; e = ws.next[e] {
			if ws.res[e] <= 0 {
				continue
			}
			v := ws.head[e]
			if nd := du + ws.cost[e]; nd < ws.dist[v] {
				ws.dist[v] = nd
				ws.prevArc[v] = e
				if !ws.inQueue[v] {
					ws.relaxCnt[v]++
					if int(ws.relaxCnt[v]) > n+1 {
						// Negative cycle somewhere: cancel all of them (or
						// report unbounded), then redo the search.
						if err := ws.cancelNegativeCycles(ctx, n); err != nil {
							return err
						}
						goto restart
					}
					ws.queue = append(ws.queue, v)
					ws.inQueue[v] = true
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		ws.pot[i] = -ws.dist[i]
	}
	return nil
}

// cancelNegativeCycles repeatedly finds a negative-cost cycle in the
// residual graph via Bellman-Ford with parent tracking and saturates it.
// A node still relaxed in the n-th iteration has a parent chain of length
// >= n, which with n nodes must contain a cycle, so the n-step parent walk
// below always lands inside one. Cycles whose bottleneck is effectively
// infinite indicate an unbounded objective. This is the rare path: it runs
// only when the SPFA initialization detects a cycle (infeasible or
// adversarial instances), never on well-formed sizing LPs.
func (ws *Workspace) cancelNegativeCycles(ctx context.Context, n int) error {
	for {
		if err := ctx.Err(); err != nil {
			return &SolverError{Op: "ssp", Err: err}
		}
		for i := 0; i < n; i++ {
			ws.dist[i] = 0 // virtual source to all nodes at cost 0
			ws.prevArc[i] = -1
		}
		cycleNode := -1
		for iter := 0; iter < n; iter++ {
			changed := false
			for u := 0; u < n; u++ {
				du := ws.dist[u]
				for e := ws.first[u]; e != -1; e = ws.next[e] {
					if ws.res[e] <= 0 {
						continue
					}
					v := ws.head[e]
					if nd := du + ws.cost[e]; nd < ws.dist[v] {
						ws.dist[v] = nd
						ws.prevArc[v] = e
						changed = true
						if iter == n-1 {
							cycleNode = v
						}
					}
				}
			}
			if !changed {
				return nil // no negative cycle
			}
		}
		if cycleNode == -1 {
			return nil
		}
		// Walk parents n times to land inside the cycle, then extract it.
		v := cycleNode
		for i := 0; i < n; i++ {
			v = ws.head[ws.prevArc[v]^1]
		}
		start := v
		var bottleneck int64 = math.MaxInt64
		for {
			e := ws.prevArc[v]
			if ws.res[e] < bottleneck {
				bottleneck = ws.res[e]
			}
			v = ws.head[e^1]
			if v == start {
				break
			}
		}
		if bottleneck >= InfCap/2 {
			return ErrUnbounded
		}
		for {
			e := ws.prevArc[v]
			ws.res[e] -= bottleneck
			ws.res[e^1] += bottleneck
			v = ws.head[e^1]
			if v == start {
				break
			}
		}
	}
}

// dijkstra computes shortest distances from src over residual arcs with
// reduced costs (non-negative by the potential invariant), stopping once
// the nearest deficit node is finalized. It returns that node or
// ErrInfeasible if no deficit is reachable. dist holds tentative distances
// capped usage: unvisited entries beyond the sink's distance are only used
// via min(dist, dist[sink]) by the caller.
func (ws *Workspace) dijkstra(n, src int) (int, error) {
	const inf = math.MaxInt64
	for i := 0; i < n; i++ {
		ws.dist[i] = inf
		ws.visited[i] = false
		ws.prevArc[i] = -1
	}
	ws.heap = ws.heap[:0]
	ws.dist[src] = 0
	ws.heapPush(heapEntry{0, src})
	for len(ws.heap) > 0 {
		it := ws.heapPop()
		u := it.node
		if ws.visited[u] || it.dist > ws.dist[u] {
			continue
		}
		ws.visited[u] = true
		if ws.excess[u] < 0 {
			return u, nil
		}
		du := ws.dist[u]
		pu := ws.pot[u]
		for e := ws.first[u]; e != -1; e = ws.next[e] {
			if ws.res[e] <= 0 {
				continue
			}
			v := ws.head[e]
			if ws.visited[v] {
				continue
			}
			// Reduced cost: cost - pot[u] + pot[v] >= 0.
			nd := du + ws.cost[e] - pu + ws.pot[v]
			if nd < ws.dist[v] {
				ws.dist[v] = nd
				ws.prevArc[v] = e
				ws.heapPush(heapEntry{nd, v})
			}
		}
	}
	return 0, ErrInfeasible
}

func (ws *Workspace) heapPush(it heapEntry) {
	ws.heap = append(ws.heap, it)
	i := len(ws.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if ws.heap[p].dist <= ws.heap[i].dist {
			break
		}
		ws.heap[p], ws.heap[i] = ws.heap[i], ws.heap[p]
		i = p
	}
}

func (ws *Workspace) heapPop() heapEntry {
	top := ws.heap[0]
	last := len(ws.heap) - 1
	ws.heap[0] = ws.heap[last]
	ws.heap = ws.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(ws.heap) && ws.heap[l].dist < ws.heap[s].dist {
			s = l
		}
		if r < len(ws.heap) && ws.heap[r].dist < ws.heap[s].dist {
			s = r
		}
		if s == i {
			break
		}
		ws.heap[i], ws.heap[s] = ws.heap[s], ws.heap[i]
		i = s
	}
	return top
}
