package lps

import (
	"errors"
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestBoundsOnlyMinimization(t *testing.T) {
	p := NewProblem()
	p.AddVar(2, 1, 5)  // pos cost -> lower bound
	p.AddVar(-3, 0, 4) // neg cost -> upper bound
	p.AddVar(0, -2, 7) // zero cost -> lower bound
	res, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 4, -2}
	for i, w := range want {
		if !approx(res.X[i], w) {
			t.Fatalf("x = %v, want %v", res.X, want)
		}
	}
	if !approx(res.Obj, 2-12) {
		t.Fatalf("obj = %v, want -10", res.Obj)
	}
}

func TestClassicTwoVarLP(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
	// (Dantzig's classic): optimum x=2, y=6, obj=36.
	p := NewProblem()
	x := p.AddVar(-3, 0, Inf)
	y := p.AddVar(-5, 0, Inf)
	p.AddConstraint(map[int]float64{x: 1}, LE, 4)
	p.AddConstraint(map[int]float64{y: 2}, LE, 12)
	p.AddConstraint(map[int]float64{x: 3, y: 2}, LE, 18)
	res, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.X[x], 2) || !approx(res.X[y], 6) {
		t.Fatalf("x=%v", res.X)
	}
	if !approx(res.Obj, -36) {
		t.Fatalf("obj = %v, want -36", res.Obj)
	}
}

func TestGEConstraints(t *testing.T) {
	// min x + y s.t. x + y >= 10, x >= 3 → obj 10.
	p := NewProblem()
	x := p.AddVar(1, 3, Inf)
	y := p.AddVar(1, 0, Inf)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, GE, 10)
	res, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Obj, 10) {
		t.Fatalf("obj = %v, want 10 (x=%v)", res.Obj, res.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min 2x + y s.t. x + y = 5, 0 <= x,y <= 4 → x=1,y=4, obj 6.
	p := NewProblem()
	x := p.AddVar(2, 0, 4)
	y := p.AddVar(1, 0, 4)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, EQ, 5)
	res, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.X[x], 1) || !approx(res.X[y], 4) || !approx(res.Obj, 6) {
		t.Fatalf("x=%v obj=%v", res.X, res.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1, 0, 5)
	p.AddConstraint(map[int]float64{x: 1}, GE, 10)
	_, err := p.Solve()
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 0, 1)
	y := p.AddVar(0, 0, 1)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, EQ, 5)
	_, err := p.Solve()
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	p.AddVar(-1, 0, Inf)
	y := p.AddVar(0, 0, 10)
	p.AddConstraint(map[int]float64{y: 1}, LE, 10)
	_, err := p.Solve()
	if !errors.Is(err, ErrUnboundedP) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestUpperBoundedTechnique(t *testing.T) {
	// min -x - y s.t. x + y <= 8 with x <= 3, y <= 4: optimum (3,4), -7.
	// The x+y<=8 row is slack; bounds do the work.
	p := NewProblem()
	x := p.AddVar(-1, 0, 3)
	y := p.AddVar(-1, 0, 4)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, LE, 8)
	res, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Obj, -7) {
		t.Fatalf("obj = %v, want -7 (x=%v)", res.Obj, res.X)
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// min x s.t. x + y >= -5, y <= 2, x >= -10 → x = -7 at y=2.
	p := NewProblem()
	x := p.AddVar(1, -10, Inf)
	y := p.AddVar(0, 0, 2)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, GE, -5)
	res, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Obj, -7) {
		t.Fatalf("obj = %v, want -7 (x=%v)", res.Obj, res.X)
	}
}

func TestMaxMinDensityStyleLP(t *testing.T) {
	// The tile-LP shape: maximize z s.t. per-window Σ fills + wires >= z,
	// fills bounded by capacity, Σ fill area per window <= free area.
	// 2 windows, wires 10 and 40, capacities 25 and 5: best equalized
	// min-density z = 35 (window1: 10+25, window2: 40+5 → min(35,45)=35).
	p := NewProblem()
	z := p.AddVar(-1, 0, Inf)
	f1 := p.AddVar(0, 0, 25)
	f2 := p.AddVar(0, 0, 5)
	p.AddConstraint(map[int]float64{f1: 1, z: -1}, GE, -10)
	p.AddConstraint(map[int]float64{f2: 1, z: -1}, GE, -40)
	res, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Obj, -35) {
		t.Fatalf("obj = %v, want -35 (x=%v)", res.Obj, res.X)
	}
}

func TestDegenerateRedundantRows(t *testing.T) {
	// Duplicate constraints should not break the solver.
	p := NewProblem()
	x := p.AddVar(-1, 0, Inf)
	for i := 0; i < 5; i++ {
		p.AddConstraint(map[int]float64{x: 1}, LE, 7)
	}
	res, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Obj, -7) {
		t.Fatalf("obj = %v, want -7", res.Obj)
	}
}

func TestFixedVariable(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1, 3, 3) // fixed at 3
	y := p.AddVar(1, 0, Inf)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, GE, 10)
	res, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.X[x], 3) || !approx(res.X[y], 7) {
		t.Fatalf("x=%v", res.X)
	}
}

func BenchmarkSimplexDifferenceChain60(b *testing.B) {
	n := 60
	build := func() *Problem {
		p := NewProblem()
		for i := 0; i < n; i++ {
			p.AddVar(float64(i%7+1), 0, 1000)
		}
		for i := 0; i+1 < n; i++ {
			p.AddConstraint(map[int]float64{i + 1: 1, i: -1}, GE, 3)
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build().Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
