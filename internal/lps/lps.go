// Package lps is a dense two-phase primal simplex solver for linear
// programs with bounded variables:
//
//	min  c·x
//	s.t. A x {<=,=,>=} b
//	     lo <= x <= hi   (entries may be ±Inf)
//
// It exists as the substrate for the tile-based LP fill baseline
// (Kahng et al.-style formulations the paper compares against) and as the
// runtime comparison point for the dual min-cost-flow solver: on the
// fill-sizing problems the constraint matrix is totally unimodular, so the
// LP optimum is integral and equals the ILP optimum.
//
// The implementation is the classic full-tableau simplex with the
// upper-bounding technique (bounds handled implicitly, not as rows) and a
// phase-1 artificial objective. It is deliberately simple, dense and
// deterministic; problem sizes in this repository stay in the low
// thousands of variables.
package lps

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sense of a linear constraint row.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // a·x <= b
	GE              // a·x >= b
	EQ              // a·x == b
)

// Problem is an LP instance under construction. Use NewProblem, AddVar and
// AddConstraint.
type Problem struct {
	c      []float64
	lo, hi []float64
	rows   []row
}

// coefTerm is one nonzero of a constraint row, stored as a slice sorted
// by variable index: the solver accumulates float sums over these terms,
// and a fixed order makes every rounding decision — and therefore every
// pivot sequence and every solution — reproducible across runs. (A map
// here once made the dense-simplex fallback tier the only nondeterministic
// solver in the chain.)
type coefTerm struct {
	j int
	v float64
}

type row struct {
	coef  []coefTerm
	sense Sense
	b     float64
}

// Inf is a convenience re-export for unbounded variable bounds.
var Inf = math.Inf(1)

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.c) }

// NumRows returns the number of constraints added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddVar appends a variable with the given objective coefficient and
// bounds, returning its index.
func (p *Problem) AddVar(cost, lo, hi float64) int {
	p.c = append(p.c, cost)
	p.lo = append(p.lo, lo)
	p.hi = append(p.hi, hi)
	return len(p.c) - 1
}

// AddConstraint appends a row Σ coef[i]·x_i (sense) b. The coefficient map
// is copied into a dense term list sorted by variable index, fixing the
// float accumulation order for the solver.
func (p *Problem) AddConstraint(coef map[int]float64, sense Sense, b float64) {
	cp := make([]coefTerm, 0, len(coef))
	for k, v := range coef { //filllint:allow nodeterm -- terms are sorted by index below
		cp = append(cp, coefTerm{k, v})
	}
	sort.Slice(cp, func(a, b int) bool { return cp[a].j < cp[b].j })
	p.rows = append(p.rows, row{cp, sense, b})
}

// Result is an LP solution.
type Result struct {
	X     []float64
	Obj   float64
	Iters int // total simplex pivots across both phases
}

// Solver failure modes.
var (
	ErrInfeasible = errors.New("lps: infeasible")
	ErrUnboundedP = errors.New("lps: unbounded")
	ErrNumerical  = errors.New("lps: numerical failure / iteration limit")
)

const eps = 1e-9

// Solve runs two-phase simplex and returns the optimal solution.
func (p *Problem) Solve() (*Result, error) {
	n := len(p.c)
	m := len(p.rows)
	if m == 0 {
		// Pure bound minimization.
		x := make([]float64, n)
		var obj float64
		for i := range x {
			switch {
			case p.c[i] > 0:
				x[i] = p.lo[i]
			case p.c[i] < 0:
				x[i] = p.hi[i]
			default:
				x[i] = p.lo[i]
			}
			if math.IsInf(x[i], 0) {
				return nil, ErrUnboundedP
			}
			obj += p.c[i] * x[i]
		}
		return &Result{X: x, Obj: obj}, nil
	}

	// Total variable layout: structural [0,n) | slack [n, n+m) | artificial
	// [n+m, n+2m) (artificials created lazily, one per row).
	t := newTableau(p)
	if err := t.phase1(); err != nil {
		return nil, err
	}
	if err := t.phase2(); err != nil {
		return nil, err
	}
	x := make([]float64, n)
	full := t.values()
	copy(x, full[:n])
	var obj float64
	for i := range x {
		obj += p.c[i] * x[i]
	}
	return &Result{X: x, Obj: obj, Iters: t.iters}, nil
}

// tableau is the dense simplex working state.
type tableau struct {
	m, n     int       // rows, total columns (structural+slack+artificial)
	ns       int       // structural count
	a        []float64 // m×n dense matrix, row-major (B^-1 A maintained in place)
	bval     []float64 // current basic variable values (length m)
	lo, hi   []float64 // per-column bounds
	cPhase2  []float64 // phase-2 costs per column
	basis    []int     // basic column per row
	atUpper  []bool    // nonbasic-at-upper flag per column
	xN       []float64 // cached nonbasic values per column (lo or hi)
	iters    int
	maxIters int
}

func newTableau(p *Problem) *tableau {
	m := len(p.rows)
	ns := len(p.c)
	n := ns + 2*m
	t := &tableau{
		m: m, n: n, ns: ns,
		a:       make([]float64, m*n),
		bval:    make([]float64, m),
		lo:      make([]float64, n),
		hi:      make([]float64, n),
		cPhase2: make([]float64, n),
		basis:   make([]int, m),
		atUpper: make([]bool, n),
		xN:      make([]float64, n),
	}
	t.maxIters = 2000 + 200*(m+ns)
	copy(t.cPhase2, p.c)
	copy(t.lo, p.lo)
	copy(t.hi, p.hi)
	for i := 0; i < m; i++ {
		r := p.rows[i]
		for _, term := range r.coef {
			t.a[i*t.n+term.j] = term.v
		}
		sl := ns + i
		art := ns + m + i
		// Slack bounds by sense: <=: s in [0,inf) with +1; >=: s in
		// (-inf,0]; =: s fixed 0.
		t.a[i*t.n+sl] = 1
		switch r.sense {
		case LE:
			t.lo[sl], t.hi[sl] = 0, Inf
		case GE:
			t.lo[sl], t.hi[sl] = math.Inf(-1), 0
		case EQ:
			t.lo[sl], t.hi[sl] = 0, 0
		}
		// Artificial column: created with coefficient set during phase-1
		// basis construction.
		t.a[i*t.n+art] = 1
		t.lo[art], t.hi[art] = 0, 0 // tightened to [0,inf) only if used
	}

	// Nonbasic structural vars start at their finite bound nearest zero.
	for j := 0; j < ns; j++ {
		t.xN[j] = t.startValue(j)
		t.atUpper[j] = !math.IsInf(t.hi[j], 1) && t.xN[j] == t.hi[j] && t.xN[j] != t.lo[j]
	}

	// Initial basis: prefer the slack; if the slack's bounds cannot absorb
	// the row residual, use the artificial.
	for i := 0; i < m; i++ {
		r := p.rows[i]
		resid := r.b
		for _, term := range r.coef {
			resid -= term.v * t.xN[term.j]
		}
		sl := ns + i
		art := ns + m + i
		if resid >= t.lo[sl]-eps && resid <= t.hi[sl]+eps {
			t.basis[i] = sl
			t.bval[i] = clamp(resid, t.lo[sl], t.hi[sl])
			// xN of the unused artificial stays fixed at 0.
		} else {
			// Slack pinned at its nearest bound; artificial absorbs the rest.
			sv := clamp(resid, t.lo[sl], t.hi[sl])
			if math.IsInf(sv, 0) {
				sv = 0
			}
			t.xN[sl] = sv
			t.atUpper[sl] = sv == t.hi[sl] && t.lo[sl] != t.hi[sl]
			gap := resid - sv
			if gap < 0 {
				t.a[i*t.n+art] = -1
				gap = -gap
			}
			t.lo[art], t.hi[art] = 0, Inf
			t.basis[i] = art
			t.bval[i] = gap
		}
	}
	return t
}

func (t *tableau) startValue(j int) float64 {
	lo, hi := t.lo[j], t.hi[j]
	switch {
	case !math.IsInf(lo, 0):
		return lo
	case !math.IsInf(hi, 0):
		return hi
	default:
		return 0
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// phase1 drives artificial variables to zero.
func (t *tableau) phase1() error {
	c := make([]float64, t.n)
	anyArt := false
	for i := 0; i < t.m; i++ {
		art := t.ns + t.m + i
		if t.hi[art] > 0 { // artificial in use
			c[art] = 1
			anyArt = true
		}
	}
	if !anyArt {
		return nil
	}
	if err := t.iterate(c); err != nil {
		if errors.Is(err, ErrUnboundedP) {
			return ErrNumerical // phase-1 objective is bounded below by 0
		}
		return err
	}
	// Check artificials are zero.
	var infeas float64
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.ns+t.m {
			infeas += math.Abs(t.bval[i])
		}
	}
	for j := t.ns + t.m; j < t.n; j++ {
		if !t.isBasic(j) && t.xN[j] != 0 {
			infeas += math.Abs(t.xN[j])
		}
	}
	if infeas > 1e-6 {
		return ErrInfeasible
	}
	// Freeze artificials at zero so phase 2 cannot reuse them.
	for j := t.ns + t.m; j < t.n; j++ {
		t.lo[j], t.hi[j] = 0, 0
		if !t.isBasic(j) {
			t.xN[j] = 0
			t.atUpper[j] = false
		}
	}
	return nil
}

func (t *tableau) isBasic(j int) bool {
	for _, b := range t.basis {
		if b == j {
			return true
		}
	}
	return false
}

// phase2 optimizes the true objective.
func (t *tableau) phase2() error {
	return t.iterate(t.cPhase2)
}

// iterate runs bounded-variable simplex pivots until optimality.
func (t *tableau) iterate(c []float64) error {
	m, n := t.m, t.n
	basicMark := make([]bool, n)
	y := make([]float64, m) // c_B
	for {
		t.iters++
		if t.iters > t.maxIters {
			return ErrNumerical
		}
		for j := range basicMark {
			basicMark[j] = false
		}
		for i, b := range t.basis {
			basicMark[b] = true
			y[i] = c[b]
		}
		// Reduced cost d_j = c_j - y·A_j (A is the current tableau, so
		// basic columns are unit vectors and y·A_j is a dot product).
		enter := -1
		var enterDir float64 // +1 increase from lower, -1 decrease from upper
		var bestScore float64 = -eps
		for j := 0; j < n; j++ {
			if basicMark[j] || t.lo[j] == t.hi[j] && t.lo[j] == 0 && j >= t.ns+t.m {
				continue
			}
			if t.lo[j] == t.hi[j] {
				continue // fixed variable can never improve
			}
			var d float64 = c[j]
			for i := 0; i < m; i++ {
				aij := t.a[i*n+j]
				if aij != 0 {
					d -= y[i] * aij
				}
			}
			if !t.atUpper[j] && d < bestScore {
				enter, enterDir, bestScore = j, +1, d
			} else if t.atUpper[j] && -d < bestScore {
				enter, enterDir, bestScore = j, -1, -d
			}
		}
		if enter == -1 {
			return nil // optimal
		}

		// Ratio test: how far can x_enter move (delta >= 0 in direction
		// enterDir) before a basic variable or the entering variable's
		// opposite bound blocks?
		limit := math.Inf(1)
		if !math.IsInf(t.hi[enter], 1) && !math.IsInf(t.lo[enter], -1) {
			limit = t.hi[enter] - t.lo[enter]
		}
		leave := -1 // row index; -1 means bound flip
		leaveToUpper := false
		for i := 0; i < m; i++ {
			aij := t.a[i*n+enter] * enterDir
			if math.Abs(aij) < eps {
				continue
			}
			bi := t.basis[i]
			// x_B[i] moves by -aij * delta.
			var bound float64
			toUpper := false
			if aij > 0 {
				bound = t.lo[bi] // decreasing basic var hits lower bound
			} else {
				bound = t.hi[bi]
				toUpper = true
			}
			if math.IsInf(bound, 0) {
				continue
			}
			ratio := (t.bval[i] - bound) / aij
			if ratio < -eps {
				ratio = 0
			}
			if ratio < 0 {
				ratio = 0
			}
			if ratio < limit-eps {
				limit = ratio
				leave = i
				leaveToUpper = toUpper
			} else if ratio < limit+eps && leave != -1 && t.basis[i] > t.basis[leave] {
				// Bland-ish tie-break on variable index for determinism.
				leave = i
				leaveToUpper = toUpper
			}
		}
		if math.IsInf(limit, 1) {
			return ErrUnboundedP
		}
		delta := limit * enterDir

		// Update basic values.
		for i := 0; i < m; i++ {
			t.bval[i] -= t.a[i*n+enter] * delta
		}
		if leave == -1 {
			// Bound flip: entering variable moves to its other bound.
			t.atUpper[enter] = enterDir > 0
			if enterDir > 0 {
				t.xN[enter] = t.hi[enter]
			} else {
				t.xN[enter] = t.lo[enter]
			}
			continue
		}
		// Pivot: entering becomes basic in row 'leave'.
		lv := t.basis[leave]
		t.atUpper[lv] = leaveToUpper
		if leaveToUpper {
			t.xN[lv] = t.hi[lv]
		} else {
			t.xN[lv] = t.lo[lv]
		}
		newVal := t.valueOf(enter) + delta
		t.pivot(leave, enter)
		t.basis[leave] = enter
		t.bval[leave] = newVal
	}
}

// valueOf returns the current value of column j (basic or nonbasic).
func (t *tableau) valueOf(j int) float64 {
	for i, b := range t.basis {
		if b == j {
			return t.bval[i]
		}
	}
	return t.xN[j]
}

// pivot performs Gaussian elimination making column 'col' a unit vector
// with 1 in row 'prow'.
func (t *tableau) pivot(prow, col int) {
	n := t.n
	pv := t.a[prow*n+col]
	inv := 1 / pv
	prowBase := prow * n
	for j := 0; j < n; j++ {
		t.a[prowBase+j] *= inv
	}
	t.a[prowBase+col] = 1
	for i := 0; i < t.m; i++ {
		if i == prow {
			continue
		}
		f := t.a[i*n+col]
		if f == 0 {
			continue
		}
		base := i * n
		for j := 0; j < n; j++ {
			t.a[base+j] -= f * t.a[prowBase+j]
		}
		t.a[base+col] = 0
	}
}

// values reconstructs the full variable vector.
func (t *tableau) values() []float64 {
	x := make([]float64, t.n)
	for j := 0; j < t.n; j++ {
		x[j] = t.xN[j]
	}
	for i, b := range t.basis {
		x[b] = t.bval[i]
	}
	return x
}

// String summarises the problem dimensions (debug aid).
func (p *Problem) String() string {
	return fmt.Sprintf("lps.Problem{vars: %d, rows: %d}", len(p.c), len(p.rows))
}
